#include "nn/layers.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace vnfm::nn {
namespace {

TEST(Linear, ForwardComputesAffineMap) {
  Linear layer(2, 2);
  // W = [[1, 2], [3, 4]] (row-major [out, in]), b = [0.5, -0.5].
  layer.weights().value.at(0, 0) = 1.0F;
  layer.weights().value.at(0, 1) = 2.0F;
  layer.weights().value.at(1, 0) = 3.0F;
  layer.weights().value.at(1, 1) = 4.0F;
  layer.bias().value.at(0, 0) = 0.5F;
  layer.bias().value.at(0, 1) = -0.5F;

  Matrix x(1, 2);
  x.at(0, 0) = 1.0F;
  x.at(0, 1) = -1.0F;
  Matrix y;
  layer.forward(x, y);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1.0F - 2.0F + 0.5F);
  EXPECT_FLOAT_EQ(y.at(0, 1), 3.0F - 4.0F - 0.5F);
}

TEST(Linear, BackwardGradientsMatchManual) {
  Linear layer(2, 1);
  layer.weights().value.at(0, 0) = 2.0F;
  layer.weights().value.at(0, 1) = -1.0F;
  Matrix x(1, 2);
  x.at(0, 0) = 3.0F;
  x.at(0, 1) = 4.0F;
  Matrix y;
  layer.forward(x, y);
  // d(loss)/dy = 1 => dW = x, db = 1, dx = W.
  Matrix d_out(1, 1, 1.0F);
  Matrix d_in;
  layer.backward(d_out, d_in);
  EXPECT_FLOAT_EQ(layer.weights().grad.at(0, 0), 3.0F);
  EXPECT_FLOAT_EQ(layer.weights().grad.at(0, 1), 4.0F);
  EXPECT_FLOAT_EQ(layer.bias().grad.at(0, 0), 1.0F);
  EXPECT_FLOAT_EQ(d_in.at(0, 0), 2.0F);
  EXPECT_FLOAT_EQ(d_in.at(0, 1), -1.0F);
}

TEST(Linear, GradientsAccumulateAcrossBackwardCalls) {
  Linear layer(1, 1);
  layer.weights().value.at(0, 0) = 1.0F;
  Matrix x(1, 1, 2.0F), y, d_out(1, 1, 1.0F), d_in;
  layer.forward(x, y);
  layer.backward(d_out, d_in);
  layer.forward(x, y);
  layer.backward(d_out, d_in);
  EXPECT_FLOAT_EQ(layer.weights().grad.at(0, 0), 4.0F);  // 2 + 2
  layer.weights().zero_grad();
  EXPECT_FLOAT_EQ(layer.weights().grad.at(0, 0), 0.0F);
}

TEST(Linear, InitProducesFiniteSpreadWeights) {
  Linear layer(100, 50);
  Rng rng(3);
  layer.init(rng);
  double sum = 0.0, sum_sq = 0.0;
  for (const float w : layer.weights().value.flat()) {
    ASSERT_TRUE(std::isfinite(w));
    sum += w;
    sum_sq += static_cast<double>(w) * w;
  }
  const double n = 100.0 * 50.0;
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 2.0 / 100.0, 0.005);  // He init variance 2/in
}

TEST(Linear, RejectsZeroDimensions) {
  EXPECT_THROW(Linear(0, 3), std::invalid_argument);
  EXPECT_THROW(Linear(3, 0), std::invalid_argument);
}

TEST(Linear, ForwardShapeMismatchThrows) {
  Linear layer(3, 2);
  Matrix x(1, 4), y;
  EXPECT_THROW(layer.forward(x, y), std::invalid_argument);
}

TEST(ActivationLayer, ReluForwardBackward) {
  ActivationLayer relu(Activation::kReLU);
  Matrix x(1, 3);
  x.at(0, 0) = -1.0F;
  x.at(0, 1) = 0.0F;
  x.at(0, 2) = 2.0F;
  Matrix y;
  relu.forward(x, y);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0F);
  EXPECT_FLOAT_EQ(y.at(0, 1), 0.0F);
  EXPECT_FLOAT_EQ(y.at(0, 2), 2.0F);
  Matrix d_out(1, 3, 1.0F), d_in;
  relu.backward(d_out, d_in);
  EXPECT_FLOAT_EQ(d_in.at(0, 0), 0.0F);
  EXPECT_FLOAT_EQ(d_in.at(0, 1), 0.0F);  // subgradient at 0 -> 0
  EXPECT_FLOAT_EQ(d_in.at(0, 2), 1.0F);
}

TEST(ActivationLayer, TanhForwardBackward) {
  ActivationLayer tanh_layer(Activation::kTanh);
  Matrix x(1, 1, 0.5F), y;
  tanh_layer.forward(x, y);
  EXPECT_NEAR(y.at(0, 0), std::tanh(0.5F), 1e-6);
  Matrix d_out(1, 1, 1.0F), d_in;
  tanh_layer.backward(d_out, d_in);
  const float t = std::tanh(0.5F);
  EXPECT_NEAR(d_in.at(0, 0), 1.0F - t * t, 1e-6);
}

TEST(ActivationLayer, IdentityPassesThrough) {
  ActivationLayer identity(Activation::kIdentity);
  Matrix x(2, 2, 3.0F), y;
  identity.forward(x, y);
  EXPECT_FLOAT_EQ(y.at(1, 1), 3.0F);
  Matrix d_out(2, 2, 0.7F), d_in;
  identity.backward(d_out, d_in);
  EXPECT_FLOAT_EQ(d_in.at(0, 0), 0.7F);
}

TEST(ActivationLayer, ToStringNames) {
  EXPECT_STREQ(to_string(Activation::kReLU), "relu");
  EXPECT_STREQ(to_string(Activation::kTanh), "tanh");
  EXPECT_STREQ(to_string(Activation::kIdentity), "identity");
}

}  // namespace
}  // namespace vnfm::nn
