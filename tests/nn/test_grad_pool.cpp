// Unit tests of the data-parallel gradient engine primitives: GradWorkPool
// scheduling/exception semantics, block-wise Mlp forward bit-equality with
// the monolithic forward, and the worker-count invariance of the blocked
// backward (per-block accumulators reduced in fixed block order).
#include "nn/grad_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "nn/mlp.hpp"

namespace vnfm::nn {
namespace {

MlpConfig make_config(bool dueling) {
  MlpConfig config;
  config.input_dim = 11;
  config.hidden_dims = {16, 16};
  config.output_dim = 5;
  config.activation = Activation::kReLU;
  config.dueling = dueling;
  return config;
}

Matrix random_batch(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (float& v : m.flat()) v = static_cast<float>(rng.uniform() * 2.0 - 1.0);
  return m;
}

TEST(GradWorkPool, RunsEveryBlockExactlyOnce) {
  GradWorkPool pool(4);
  EXPECT_EQ(pool.workers(), 4u);
  constexpr std::size_t kBlocks = 23;
  std::vector<std::atomic<int>> hits(kBlocks);
  pool.run(kBlocks, [&](std::size_t block, std::size_t worker) {
    ASSERT_LT(worker, 4u);
    hits[block].fetch_add(1);
  });
  for (std::size_t b = 0; b < kBlocks; ++b) EXPECT_EQ(hits[b].load(), 1) << b;
}

TEST(GradWorkPool, SingleWorkerRunsInline) {
  GradWorkPool pool(1);
  std::size_t sum = 0;  // no synchronisation: everything on the caller
  pool.run(5, [&](std::size_t block, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    sum += block;
  });
  EXPECT_EQ(sum, 0u + 1 + 2 + 3 + 4);
}

TEST(GradWorkPool, ZeroWorkersClampsToOne) {
  GradWorkPool pool(0);
  EXPECT_EQ(pool.workers(), 1u);
}

TEST(GradWorkPool, WorkerExceptionPropagates) {
  GradWorkPool pool(3);
  EXPECT_THROW(pool.run(8,
                        [&](std::size_t block, std::size_t) {
                          if (block == 5) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  // The pool survives a failed job and runs the next one.
  std::atomic<int> count{0};
  pool.run(4, [&](std::size_t, std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
}

TEST(MlpBlocks, ForwardBlockMatchesMonolithicForwardBitForBit) {
  for (const bool dueling : {false, true}) {
    Mlp net(make_config(dueling));
    Rng rng(7);
    net.init(rng);
    const Matrix input = random_batch(21, 11, 3);  // 3 blocks, ragged tail

    Matrix full;
    net.forward(input, full);

    Matrix blocked(21, 5);
    MlpWorkspace ws;
    for (std::size_t b = 0; b < grad_block_count(21); ++b) {
      const std::size_t row0 = b * kGradBlockRows;
      const std::size_t rows = std::min(kGradBlockRows, 21 - row0);
      net.forward_block(input, row0, rows, blocked, ws);
    }
    for (std::size_t i = 0; i < full.flat().size(); ++i)
      EXPECT_EQ(full.flat()[i], blocked.flat()[i]) << (dueling ? "dueling " : "")
                                                   << "element " << i;
  }
}

TEST(MlpBlocks, BlockedBackwardCloselyMatchesMonolithicBackward) {
  // The blocked path re-associates the row summation of dW/db at block
  // boundaries, so it is not bit-equal to the monolithic backward — but it
  // must be the same gradient numerically.
  for (const bool dueling : {false, true}) {
    Mlp net(make_config(dueling));
    Rng rng(7);
    net.init(rng);
    const Matrix input = random_batch(24, 11, 3);
    const Matrix d_out = random_batch(24, 5, 4);

    Matrix output;
    net.forward(input, output);
    net.zero_grad();
    net.backward(d_out);
    std::vector<std::vector<float>> reference;
    for (const Param* p : std::as_const(net).parameters())
      reference.emplace_back(p->grad.flat().begin(), p->grad.flat().end());

    Matrix blocked_out(24, 5);
    MlpWorkspace ws;
    Matrix d_block;
    std::vector<GradAccumulator> accums(grad_block_count(24));
    for (std::size_t b = 0; b < accums.size(); ++b) {
      const std::size_t row0 = b * kGradBlockRows;
      const std::size_t rows = std::min(kGradBlockRows, 24 - row0);
      net.forward_block(input, row0, rows, blocked_out, ws);
      d_block.resize(rows, 5);
      for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < 5; ++c)
          d_block.at(r, c) = d_out.at(row0 + r, c);
      accums[b].reset(net);
      net.backward_block(d_block, ws, accums[b]);
    }
    net.zero_grad();
    for (const GradAccumulator& accum : accums) net.apply_gradients(accum);

    const auto params = std::as_const(net).parameters();
    for (std::size_t i = 0; i < params.size(); ++i) {
      const auto grad = params[i]->grad.flat();
      for (std::size_t j = 0; j < grad.size(); ++j)
        EXPECT_NEAR(grad[j], reference[i][j],
                    1e-5 * std::max(1.0F, std::fabs(reference[i][j])))
            << "param " << i << " element " << j;
    }
  }
}

TEST(MlpBlocks, BlockedBackwardIsWorkerCountInvariantBitForBit) {
  for (const bool dueling : {false, true}) {
    const Matrix input = random_batch(29, 11, 5);  // 4 blocks, ragged tail
    const Matrix d_out = random_batch(29, 5, 6);
    const std::size_t blocks = grad_block_count(29);

    std::vector<std::vector<float>> reference;
    for (const std::size_t workers : {1, 2, 4}) {
      Mlp net(make_config(dueling));
      Rng rng(7);
      net.init(rng);
      GradWorkPool pool(workers);
      std::vector<MlpWorkspace> ws(pool.workers());
      std::vector<Matrix> d_block(pool.workers());
      std::vector<GradAccumulator> accums(blocks);
      Matrix output(29, 5);
      pool.run(blocks, [&](std::size_t b, std::size_t w) {
        const std::size_t row0 = b * kGradBlockRows;
        const std::size_t rows = std::min(kGradBlockRows, 29 - row0);
        net.forward_block(input, row0, rows, output, ws[w]);
        d_block[w].resize(rows, 5);
        for (std::size_t r = 0; r < rows; ++r)
          for (std::size_t c = 0; c < 5; ++c)
            d_block[w].at(r, c) = d_out.at(row0 + r, c);
        accums[b].reset(net);
        net.backward_block(d_block[w], ws[w], accums[b]);
      });
      net.zero_grad();
      for (const GradAccumulator& accum : accums) net.apply_gradients(accum);

      std::vector<std::vector<float>> grads;
      for (const Param* p : std::as_const(net).parameters())
        grads.emplace_back(p->grad.flat().begin(), p->grad.flat().end());
      if (reference.empty()) {
        reference = grads;
      } else {
        // Bit-for-bit: float equality, not tolerance.
        ASSERT_EQ(grads.size(), reference.size());
        for (std::size_t i = 0; i < grads.size(); ++i)
          EXPECT_EQ(grads[i], reference[i])
              << (dueling ? "dueling " : "") << workers << " workers, param " << i;
      }
    }
  }
}

}  // namespace
}  // namespace vnfm::nn
