// Unit tests of the data-parallel gradient engine primitives: GradWorkPool
// scheduling/exception semantics, block-wise Mlp forward bit-equality with
// the monolithic forward, and the worker-count invariance of the blocked
// backward (per-block accumulators reduced in fixed block order).
#include "nn/grad_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "nn/mlp.hpp"

namespace vnfm::nn {
namespace {

MlpConfig make_config(bool dueling) {
  MlpConfig config;
  config.input_dim = 11;
  config.hidden_dims = {16, 16};
  config.output_dim = 5;
  config.activation = Activation::kReLU;
  config.dueling = dueling;
  return config;
}

Matrix random_batch(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (float& v : m.flat()) v = static_cast<float>(rng.uniform() * 2.0 - 1.0);
  return m;
}

TEST(GradWorkPool, RunsEveryBlockExactlyOnce) {
  GradWorkPool pool(4);
  EXPECT_EQ(pool.workers(), 4u);
  constexpr std::size_t kBlocks = 23;
  std::vector<std::atomic<int>> hits(kBlocks);
  pool.run(kBlocks, [&](std::size_t block, std::size_t worker) {
    ASSERT_LT(worker, 4u);
    hits[block].fetch_add(1);
  });
  for (std::size_t b = 0; b < kBlocks; ++b) EXPECT_EQ(hits[b].load(), 1) << b;
}

TEST(GradWorkPool, SingleWorkerRunsInline) {
  GradWorkPool pool(1);
  std::size_t sum = 0;  // no synchronisation: everything on the caller
  pool.run(5, [&](std::size_t block, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    sum += block;
  });
  EXPECT_EQ(sum, 0u + 1 + 2 + 3 + 4);
}

TEST(GradWorkPool, ZeroWorkersClampsToOne) {
  GradWorkPool pool(0);
  EXPECT_EQ(pool.workers(), 1u);
}

TEST(GradWorkPool, WorkerExceptionPropagates) {
  GradWorkPool pool(3);
  EXPECT_THROW(pool.run(8,
                        [&](std::size_t block, std::size_t) {
                          if (block == 5) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  // The pool survives a failed job and runs the next one.
  std::atomic<int> count{0};
  pool.run(4, [&](std::size_t, std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
}

TEST(GradWorkPool, InlineFallbackWhenFewerBlocksThanWorkers) {
  // With blocks < workers the job must run inline on the caller: every
  // invocation on worker 0 and on the calling thread (no wake/park latency).
  GradWorkPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> worker_ids;
  std::vector<std::thread::id> thread_ids;
  pool.run(3, [&](std::size_t block, std::size_t worker) {
    EXPECT_EQ(block, worker_ids.size());
    worker_ids.push_back(worker);
    thread_ids.push_back(std::this_thread::get_id());
  });
  ASSERT_EQ(worker_ids.size(), 3u);
  for (const std::size_t w : worker_ids) EXPECT_EQ(w, 0u);
  for (const auto& id : thread_ids) EXPECT_EQ(id, caller);
}

TEST(GradWorkPool, RunPhasesBarrierOrderingAndPrepare) {
  // Three phases: blocks of phase p+1 must observe ALL writes of phase p
  // (barrier), and each prepare hook runs exactly once, on the caller,
  // after the previous phase completed.
  for (const std::size_t workers : {1u, 2u, 4u}) {
    GradWorkPool pool(workers);
    const auto caller = std::this_thread::get_id();
    constexpr std::size_t kBlocks = 16;  // >= workers: pooled path when workers > 1
    std::vector<int> stage1(kBlocks, 0);
    std::vector<int> stage2(kBlocks, 0);
    int prepare_runs = 0;
    long prepare_sum = -1;

    auto phase1 = [&](std::size_t b, std::size_t) { stage1[b] = static_cast<int>(b) + 1; };
    auto prepare = [&] {
      EXPECT_EQ(std::this_thread::get_id(), caller);
      ++prepare_runs;
      prepare_sum = 0;
      for (const int v : stage1) prepare_sum += v;  // sees every phase-1 write
    };
    auto phase2 = [&](std::size_t b, std::size_t) {
      stage2[b] = stage1[b] * 2;  // cross-phase read
    };
    std::atomic<long> total{0};
    auto phase3 = [&](std::size_t b, std::size_t) { total.fetch_add(stage2[b]); };

    const std::array<GradWorkPool::Phase, 3> phases = {
        GradWorkPool::make_phase(kBlocks, phase1),
        GradWorkPool::make_phase(prepare, kBlocks, phase2),
        GradWorkPool::make_phase(kBlocks, phase3)};
    pool.run_phases({phases.data(), phases.size()});

    constexpr long kExpectedSum = kBlocks * (kBlocks + 1) / 2;
    EXPECT_EQ(prepare_runs, 1);
    EXPECT_EQ(prepare_sum, kExpectedSum);
    EXPECT_EQ(total.load(), 2 * kExpectedSum) << workers << " workers";
  }
}

TEST(GradWorkPool, RunPhasesWholeJobInlineWhenEveryPhaseIsSmall) {
  // max blocks over all phases < workers -> the entire phased job runs
  // inline on the caller, including prepare hooks.
  GradWorkPool pool(8);
  const auto caller = std::this_thread::get_id();
  std::size_t invocations = 0;
  auto block_fn = [&](std::size_t, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++invocations;
  };
  auto prepare = [&] { EXPECT_EQ(invocations, 3u); };
  const std::array<GradWorkPool::Phase, 2> phases = {
      GradWorkPool::make_phase(3, block_fn),
      GradWorkPool::make_phase(prepare, 5, block_fn)};
  pool.run_phases({phases.data(), phases.size()});
  EXPECT_EQ(invocations, 8u);
}

TEST(GradWorkPool, RunPhasesBlockExceptionPropagatesAndPoolSurvives) {
  GradWorkPool pool(3);
  auto ok = [&](std::size_t, std::size_t) {};
  auto boom = [&](std::size_t b, std::size_t) {
    if (b == 2) throw std::runtime_error("phase boom");
  };
  const std::array<GradWorkPool::Phase, 2> phases = {GradWorkPool::make_phase(6, boom),
                                                     GradWorkPool::make_phase(6, ok)};
  EXPECT_THROW(pool.run_phases({phases.data(), phases.size()}), std::runtime_error);
  std::atomic<int> count{0};
  pool.run(6, [&](std::size_t, std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 6);
}

TEST(GradWorkPool, RunPhasesPrepareExceptionPropagatesAndSkipsWork) {
  GradWorkPool pool(3);
  std::atomic<int> phase2_runs{0};
  auto phase1 = [&](std::size_t, std::size_t) {};
  auto prepare = [&]() { throw std::runtime_error("prepare boom"); };
  auto phase2 = [&](std::size_t, std::size_t) { phase2_runs.fetch_add(1); };
  const std::array<GradWorkPool::Phase, 2> phases = {
      GradWorkPool::make_phase(6, phase1),
      GradWorkPool::make_phase(prepare, 6, phase2)};
  EXPECT_THROW(pool.run_phases({phases.data(), phases.size()}), std::runtime_error);
  // Blocks after a failed prepare are skipped (abort), not executed.
  EXPECT_EQ(phase2_runs.load(), 0);
}

TEST(GradWorkPool, RunPhasesHandlesZeroBlockPhases) {
  GradWorkPool pool(2);
  std::atomic<int> runs{0};
  int prepare_runs = 0;
  auto empty = [&](std::size_t, std::size_t) { FAIL() << "zero-block phase ran"; };
  auto prepare = [&] { ++prepare_runs; };
  auto work = [&](std::size_t, std::size_t) { runs.fetch_add(1); };
  const std::array<GradWorkPool::Phase, 3> phases = {
      GradWorkPool::make_phase(0, empty), GradWorkPool::make_phase(prepare, 4, work),
      GradWorkPool::make_phase(0, empty)};
  pool.run_phases({phases.data(), phases.size()});
  EXPECT_EQ(runs.load(), 4);
  EXPECT_EQ(prepare_runs, 1);
}

TEST(ElemBlocks, SplitsParamsIntoFixedSizeBlocks) {
  const std::array<std::size_t, 3> sizes = {kOptBlockElems * 2 + 100, 7, kOptBlockElems};
  const auto blocks = make_elem_blocks({sizes.data(), sizes.size()});
  ASSERT_EQ(blocks.size(), 5u);
  EXPECT_EQ(blocks[0].param, 0u);
  EXPECT_EQ(blocks[0].offset, 0u);
  EXPECT_EQ(blocks[0].count, kOptBlockElems);
  EXPECT_EQ(blocks[1].offset, kOptBlockElems);
  EXPECT_EQ(blocks[1].count, kOptBlockElems);
  EXPECT_EQ(blocks[2].offset, 2 * kOptBlockElems);
  EXPECT_EQ(blocks[2].count, 100u);
  EXPECT_EQ(blocks[3].param, 1u);
  EXPECT_EQ(blocks[3].count, 7u);
  EXPECT_EQ(blocks[4].param, 2u);
  EXPECT_EQ(blocks[4].count, kOptBlockElems);
}

TEST(MlpBlocks, ForwardBlockMatchesMonolithicForwardBitForBit) {
  for (const bool dueling : {false, true}) {
    Mlp net(make_config(dueling));
    Rng rng(7);
    net.init(rng);
    const Matrix input = random_batch(21, 11, 3);  // 3 blocks, ragged tail

    Matrix full;
    net.forward(input, full);

    Matrix blocked(21, 5);
    MlpWorkspace ws;
    for (std::size_t b = 0; b < grad_block_count(21); ++b) {
      const std::size_t row0 = b * kGradBlockRows;
      const std::size_t rows = std::min(kGradBlockRows, 21 - row0);
      net.forward_block(input, row0, rows, blocked, ws);
    }
    for (std::size_t i = 0; i < full.flat().size(); ++i)
      EXPECT_EQ(full.flat()[i], blocked.flat()[i]) << (dueling ? "dueling " : "")
                                                   << "element " << i;
  }
}

TEST(MlpBlocks, BlockedBackwardCloselyMatchesMonolithicBackward) {
  // The blocked path re-associates the row summation of dW/db at block
  // boundaries, so it is not bit-equal to the monolithic backward — but it
  // must be the same gradient numerically.
  for (const bool dueling : {false, true}) {
    Mlp net(make_config(dueling));
    Rng rng(7);
    net.init(rng);
    const Matrix input = random_batch(24, 11, 3);
    const Matrix d_out = random_batch(24, 5, 4);

    Matrix output;
    net.forward(input, output);
    net.zero_grad();
    net.backward(d_out);
    std::vector<std::vector<float>> reference;
    for (const Param* p : std::as_const(net).parameters())
      reference.emplace_back(p->grad.flat().begin(), p->grad.flat().end());

    Matrix blocked_out(24, 5);
    MlpWorkspace ws;
    Matrix d_block;
    std::vector<GradAccumulator> accums(grad_block_count(24));
    for (std::size_t b = 0; b < accums.size(); ++b) {
      const std::size_t row0 = b * kGradBlockRows;
      const std::size_t rows = std::min(kGradBlockRows, 24 - row0);
      net.forward_block(input, row0, rows, blocked_out, ws);
      d_block.resize(rows, 5);
      for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < 5; ++c)
          d_block.at(r, c) = d_out.at(row0 + r, c);
      accums[b].reset(net);
      net.backward_block(d_block, ws, accums[b]);
    }
    net.zero_grad();
    for (const GradAccumulator& accum : accums) net.apply_gradients(accum);

    const auto params = std::as_const(net).parameters();
    for (std::size_t i = 0; i < params.size(); ++i) {
      const auto grad = params[i]->grad.flat();
      for (std::size_t j = 0; j < grad.size(); ++j)
        EXPECT_NEAR(grad[j], reference[i][j],
                    1e-5 * std::max(1.0F, std::fabs(reference[i][j])))
            << "param " << i << " element " << j;
    }
  }
}

TEST(MlpBlocks, BlockedBackwardIsWorkerCountInvariantBitForBit) {
  for (const bool dueling : {false, true}) {
    const Matrix input = random_batch(29, 11, 5);  // 4 blocks, ragged tail
    const Matrix d_out = random_batch(29, 5, 6);
    const std::size_t blocks = grad_block_count(29);

    std::vector<std::vector<float>> reference;
    for (const std::size_t workers : {1, 2, 4}) {
      Mlp net(make_config(dueling));
      Rng rng(7);
      net.init(rng);
      GradWorkPool pool(workers);
      std::vector<MlpWorkspace> ws(pool.workers());
      std::vector<Matrix> d_block(pool.workers());
      std::vector<GradAccumulator> accums(blocks);
      Matrix output(29, 5);
      pool.run(blocks, [&](std::size_t b, std::size_t w) {
        const std::size_t row0 = b * kGradBlockRows;
        const std::size_t rows = std::min(kGradBlockRows, 29 - row0);
        net.forward_block(input, row0, rows, output, ws[w]);
        d_block[w].resize(rows, 5);
        for (std::size_t r = 0; r < rows; ++r)
          for (std::size_t c = 0; c < 5; ++c)
            d_block[w].at(r, c) = d_out.at(row0 + r, c);
        accums[b].reset(net);
        net.backward_block(d_block[w], ws[w], accums[b]);
      });
      net.zero_grad();
      for (const GradAccumulator& accum : accums) net.apply_gradients(accum);

      std::vector<std::vector<float>> grads;
      for (const Param* p : std::as_const(net).parameters())
        grads.emplace_back(p->grad.flat().begin(), p->grad.flat().end());
      if (reference.empty()) {
        reference = grads;
      } else {
        // Bit-for-bit: float equality, not tolerance.
        ASSERT_EQ(grads.size(), reference.size());
        for (std::size_t i = 0; i < grads.size(); ++i)
          EXPECT_EQ(grads[i], reference[i])
              << (dueling ? "dueling " : "") << workers << " workers, param " << i;
      }
    }
  }
}

}  // namespace
}  // namespace vnfm::nn
