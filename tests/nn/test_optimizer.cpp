#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/loss.hpp"
#include "nn/mlp.hpp"

namespace vnfm::nn {
namespace {

/// A single scalar parameter wrapped as a Param for optimizer tests.
struct ScalarParam {
  Param p;
  ScalarParam(float value) {
    p.value.resize(1, 1);
    p.grad.resize(1, 1);
    p.value.at(0, 0) = value;
  }
  float value() const { return p.value.at(0, 0); }
  void set_grad(float g) { p.grad.at(0, 0) = g; }
};

TEST(Sgd, StepsDownhill) {
  ScalarParam x(10.0F);
  Sgd opt({&x.p}, {.learning_rate = 0.1F});
  x.set_grad(2.0F);
  opt.step();
  EXPECT_FLOAT_EQ(x.value(), 10.0F - 0.1F * 2.0F);
}

TEST(Sgd, MomentumAccumulates) {
  ScalarParam x(0.0F);
  Sgd opt({&x.p}, {.learning_rate = 1.0F, .momentum = 0.5F});
  x.set_grad(1.0F);
  opt.step();  // v=1, x=-1
  opt.step();  // v=1.5, x=-2.5
  EXPECT_FLOAT_EQ(x.value(), -2.5F);
}

TEST(Sgd, WeightDecayShrinks) {
  ScalarParam x(10.0F);
  Sgd opt({&x.p}, {.learning_rate = 0.1F, .weight_decay = 0.5F});
  x.set_grad(0.0F);
  opt.step();
  EXPECT_FLOAT_EQ(x.value(), 10.0F - 0.1F * 0.5F * 10.0F);
}

TEST(Sgd, MinimizesQuadratic) {
  // f(x) = (x - 3)^2, gradient 2(x - 3).
  ScalarParam x(0.0F);
  Sgd opt({&x.p}, {.learning_rate = 0.1F});
  for (int i = 0; i < 200; ++i) {
    x.set_grad(2.0F * (x.value() - 3.0F));
    opt.step();
  }
  EXPECT_NEAR(x.value(), 3.0F, 1e-4);
}

TEST(Sgd, RejectsEmptyParams) {
  EXPECT_THROW(Sgd({}, {}), std::invalid_argument);
}

TEST(Adam, MinimizesQuadratic) {
  ScalarParam x(0.0F);
  Adam opt({&x.p}, {.learning_rate = 0.1F});
  for (int i = 0; i < 500; ++i) {
    x.set_grad(2.0F * (x.value() - 3.0F));
    opt.step();
  }
  EXPECT_NEAR(x.value(), 3.0F, 1e-3);
}

TEST(Adam, FirstStepIsLearningRateSized) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  ScalarParam x(0.0F);
  Adam opt({&x.p}, {.learning_rate = 0.01F});
  x.set_grad(123.0F);
  opt.step();
  EXPECT_NEAR(x.value(), -0.01F, 1e-4);
}

TEST(Adam, CountsSteps) {
  ScalarParam x(0.0F);
  Adam opt({&x.p}, {});
  EXPECT_EQ(opt.steps_taken(), 0u);
  x.set_grad(1.0F);
  opt.step();
  opt.step();
  EXPECT_EQ(opt.steps_taken(), 2u);
}

TEST(Adam, RejectsEmptyParams) {
  EXPECT_THROW(Adam({}, {}), std::invalid_argument);
}

TEST(Adam, TrainsMlpToFitXor) {
  // End-to-end sanity: a small MLP + Adam fits XOR.
  MlpConfig config;
  config.input_dim = 2;
  config.hidden_dims = {16};
  config.output_dim = 1;
  config.activation = Activation::kTanh;
  Mlp mlp(config);
  Rng rng(10);
  mlp.init(rng);
  Adam opt(mlp.parameters(), {.learning_rate = 0.02F});

  Matrix x(4, 2), target(4, 1);
  const float inputs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const float labels[4] = {0, 1, 1, 0};
  for (std::size_t i = 0; i < 4; ++i) {
    x.at(i, 0) = inputs[i][0];
    x.at(i, 1) = inputs[i][1];
    target.at(i, 0) = labels[i];
  }
  double loss = 1.0;
  for (int epoch = 0; epoch < 2000 && loss > 1e-3; ++epoch) {
    Matrix y, grad;
    mlp.forward(x, y);
    loss = mse_loss(y, target, grad);
    mlp.zero_grad();
    mlp.backward(grad);
    opt.step();
  }
  EXPECT_LT(loss, 1e-3);
}

}  // namespace
}  // namespace vnfm::nn
