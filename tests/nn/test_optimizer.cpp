#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/loss.hpp"
#include "nn/mlp.hpp"

namespace vnfm::nn {
namespace {

/// A single scalar parameter wrapped as a Param for optimizer tests.
struct ScalarParam {
  Param p;
  ScalarParam(float value) {
    p.value.resize(1, 1);
    p.grad.resize(1, 1);
    p.value.at(0, 0) = value;
  }
  float value() const { return p.value.at(0, 0); }
  void set_grad(float g) { p.grad.at(0, 0) = g; }
};

TEST(Sgd, StepsDownhill) {
  ScalarParam x(10.0F);
  Sgd opt({&x.p}, {.learning_rate = 0.1F});
  x.set_grad(2.0F);
  opt.step();
  EXPECT_FLOAT_EQ(x.value(), 10.0F - 0.1F * 2.0F);
}

TEST(Sgd, MomentumAccumulates) {
  ScalarParam x(0.0F);
  Sgd opt({&x.p}, {.learning_rate = 1.0F, .momentum = 0.5F});
  x.set_grad(1.0F);
  opt.step();  // v=1, x=-1
  opt.step();  // v=1.5, x=-2.5
  EXPECT_FLOAT_EQ(x.value(), -2.5F);
}

TEST(Sgd, WeightDecayShrinks) {
  ScalarParam x(10.0F);
  Sgd opt({&x.p}, {.learning_rate = 0.1F, .weight_decay = 0.5F});
  x.set_grad(0.0F);
  opt.step();
  EXPECT_FLOAT_EQ(x.value(), 10.0F - 0.1F * 0.5F * 10.0F);
}

TEST(Sgd, MinimizesQuadratic) {
  // f(x) = (x - 3)^2, gradient 2(x - 3).
  ScalarParam x(0.0F);
  Sgd opt({&x.p}, {.learning_rate = 0.1F});
  for (int i = 0; i < 200; ++i) {
    x.set_grad(2.0F * (x.value() - 3.0F));
    opt.step();
  }
  EXPECT_NEAR(x.value(), 3.0F, 1e-4);
}

TEST(Sgd, RejectsEmptyParams) {
  EXPECT_THROW(Sgd({}, {}), std::invalid_argument);
}

TEST(Adam, MinimizesQuadratic) {
  ScalarParam x(0.0F);
  Adam opt({&x.p}, {.learning_rate = 0.1F});
  for (int i = 0; i < 500; ++i) {
    x.set_grad(2.0F * (x.value() - 3.0F));
    opt.step();
  }
  EXPECT_NEAR(x.value(), 3.0F, 1e-3);
}

TEST(Adam, FirstStepIsLearningRateSized) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  ScalarParam x(0.0F);
  Adam opt({&x.p}, {.learning_rate = 0.01F});
  x.set_grad(123.0F);
  opt.step();
  EXPECT_NEAR(x.value(), -0.01F, 1e-4);
}

TEST(Adam, CountsSteps) {
  ScalarParam x(0.0F);
  Adam opt({&x.p}, {});
  EXPECT_EQ(opt.steps_taken(), 0u);
  x.set_grad(1.0F);
  opt.step();
  opt.step();
  EXPECT_EQ(opt.steps_taken(), 2u);
}

TEST(Adam, RejectsEmptyParams) {
  EXPECT_THROW(Adam({}, {}), std::invalid_argument);
}

TEST(Adam, TrainsMlpToFitXor) {
  // End-to-end sanity: a small MLP + Adam fits XOR.
  MlpConfig config;
  config.input_dim = 2;
  config.hidden_dims = {16};
  config.output_dim = 1;
  config.activation = Activation::kTanh;
  Mlp mlp(config);
  Rng rng(10);
  mlp.init(rng);
  Adam opt(mlp.parameters(), {.learning_rate = 0.02F});

  Matrix x(4, 2), target(4, 1);
  const float inputs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const float labels[4] = {0, 1, 1, 0};
  for (std::size_t i = 0; i < 4; ++i) {
    x.at(i, 0) = inputs[i][0];
    x.at(i, 1) = inputs[i][1];
    target.at(i, 0) = labels[i];
  }
  double loss = 1.0;
  for (int epoch = 0; epoch < 2000 && loss > 1e-3; ++epoch) {
    Matrix y, grad;
    mlp.forward(x, y);
    loss = mse_loss(y, target, grad);
    mlp.zero_grad();
    mlp.backward(grad);
    opt.step();
  }
  EXPECT_LT(loss, 1e-3);
}

// ---- Block API bit-identity -------------------------------------------------
// Adam/Sgd step_block over the fixed kOptBlockElems split must reproduce the
// serial step() bit for bit, regardless of block execution order or the pool
// worker count (the updates are elementwise; nothing crosses a block edge).

MlpConfig blocky_config() {
  // 128 x 80 weight = 10240 elements: 2 full element blocks + a 2048 tail,
  // so the split is actually exercised (not one block per parameter).
  MlpConfig config;
  config.input_dim = 128;
  config.hidden_dims = {80};
  config.output_dim = 6;
  config.activation = Activation::kReLU;
  return config;
}

void fill_grads(Mlp& net, std::uint64_t seed) {
  Rng rng(seed);
  for (Param* p : net.parameters())
    for (float& g : p->grad.flat()) g = static_cast<float>(rng.normal());
}

std::vector<std::vector<float>> snapshot_values(Mlp& net) {
  std::vector<std::vector<float>> values;
  for (Param* p : net.parameters())
    values.emplace_back(p->value.flat().begin(), p->value.flat().end());
  return values;
}

template <typename Optimizer>
void expect_blocked_steps_match_serial(typename Optimizer::Options options) {
  Mlp serial_net(blocky_config()), blocked_net(blocky_config());
  Rng rng(11);
  serial_net.init(rng);
  blocked_net.copy_weights_from(serial_net);
  Optimizer serial_opt(serial_net.parameters(), options);
  Optimizer blocked_opt(blocked_net.parameters(), options);
  ASSERT_GT(blocked_opt.block_count(), 2u);

  GradWorkPool pool(4);
  for (int step = 0; step < 3; ++step) {
    fill_grads(serial_net, 100 + static_cast<std::uint64_t>(step));
    fill_grads(blocked_net, 100 + static_cast<std::uint64_t>(step));
    serial_opt.step();
    // Blocked: begin once on the caller, blocks across pool workers.
    blocked_opt.begin_step();
    pool.run(blocked_opt.block_count(),
             [&](std::size_t b, std::size_t) { blocked_opt.step_block(b); });
    EXPECT_EQ(snapshot_values(serial_net), snapshot_values(blocked_net))
        << "diverged at step " << step;
  }
}

TEST(Adam, BlockedStepBitIdenticalToSerialStep) {
  expect_blocked_steps_match_serial<Adam>({.learning_rate = 1e-3F, .weight_decay = 1e-4F});
}

TEST(Sgd, BlockedStepBitIdenticalToSerialStep) {
  expect_blocked_steps_match_serial<Sgd>(
      {.learning_rate = 1e-2F, .momentum = 0.9F, .weight_decay = 1e-4F});
}

TEST(Adam, BlockedStepOrderIndependent) {
  // Reverse block order must still match (elementwise independence).
  Mlp forward_net(blocky_config()), reverse_net(blocky_config());
  Rng rng(13);
  forward_net.init(rng);
  reverse_net.copy_weights_from(forward_net);
  Adam forward_opt(forward_net.parameters(), {});
  Adam reverse_opt(reverse_net.parameters(), {});
  fill_grads(forward_net, 5);
  fill_grads(reverse_net, 5);
  forward_opt.step();
  reverse_opt.begin_step();
  for (std::size_t b = reverse_opt.block_count(); b-- > 0;) reverse_opt.step_block(b);
  EXPECT_EQ(snapshot_values(forward_net), snapshot_values(reverse_net));
}

TEST(Mlp, BlockedSoftUpdateBitIdenticalToSoftUpdateFrom) {
  Mlp reference_dst(blocky_config()), blocked_dst(blocky_config()), src(blocky_config());
  Rng rng(17);
  reference_dst.init(rng);
  src.init(rng);
  blocked_dst.copy_weights_from(reference_dst);
  ASSERT_GT(blocked_dst.param_block_count(), 2u);

  reference_dst.soft_update_from(src, 0.01F);
  GradWorkPool pool(4);
  pool.run(blocked_dst.param_block_count(),
           [&](std::size_t b, std::size_t) { blocked_dst.soft_update_block(src, 0.01F, b); });
  EXPECT_EQ(snapshot_values(reference_dst), snapshot_values(blocked_dst));
}

}  // namespace
}  // namespace vnfm::nn
