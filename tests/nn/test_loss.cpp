#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace vnfm::nn {
namespace {

TEST(MseLoss, ValueAndGradient) {
  Matrix pred(1, 2), target(1, 2), grad;
  pred.at(0, 0) = 1.0F;
  pred.at(0, 1) = 3.0F;
  target.at(0, 0) = 0.0F;
  target.at(0, 1) = 3.0F;
  const double loss = mse_loss(pred, target, grad);
  EXPECT_NEAR(loss, 0.5, 1e-6);  // (1 + 0) / 2
  EXPECT_NEAR(grad.at(0, 0), 2.0 * 1.0 / 2.0, 1e-6);
  EXPECT_NEAR(grad.at(0, 1), 0.0, 1e-6);
}

TEST(MseLoss, ZeroWhenEqual) {
  Matrix pred(2, 2, 1.5F), target(2, 2, 1.5F), grad;
  EXPECT_DOUBLE_EQ(mse_loss(pred, target, grad), 0.0);
  for (const float g : grad.flat()) EXPECT_FLOAT_EQ(g, 0.0F);
}

TEST(MseLoss, ShapeMismatchThrows) {
  Matrix pred(1, 2), target(2, 1), grad;
  EXPECT_THROW(mse_loss(pred, target, grad), std::invalid_argument);
}

TEST(HuberLoss, QuadraticInsideDelta) {
  Matrix pred(1, 1, 0.5F), target(1, 1, 0.0F), grad;
  const double loss = huber_loss(pred, target, grad, 1.0F);
  EXPECT_NEAR(loss, 0.5 * 0.25, 1e-6);
  EXPECT_NEAR(grad.at(0, 0), 0.5, 1e-6);
}

TEST(HuberLoss, LinearOutsideDelta) {
  Matrix pred(1, 1, 5.0F), target(1, 1, 0.0F), grad;
  const double loss = huber_loss(pred, target, grad, 1.0F);
  EXPECT_NEAR(loss, 1.0 * (5.0 - 0.5), 1e-6);
  EXPECT_NEAR(grad.at(0, 0), 1.0, 1e-6);  // clipped gradient
}

TEST(HuberLoss, NegativeErrorsSymmetric) {
  Matrix pred(1, 1, -5.0F), target(1, 1, 0.0F), grad;
  huber_loss(pred, target, grad, 1.0F);
  EXPECT_NEAR(grad.at(0, 0), -1.0, 1e-6);
}

// huber_term is the per-element definition behind the DQN block-parallel
// gradient engine; these hand-computed values pin its absolute numerics
// (the engine's own tests only compare runs against each other, which a
// uniform numeric regression would pass).
TEST(HuberTerm, QuadraticInsideDelta) {
  const HuberTerm t = huber_term(0.5F, 1.0F, 4.0);
  EXPECT_NEAR(t.loss, 0.5 * 0.25, 1e-9);        // 0.5 * diff^2, un-normalised
  EXPECT_NEAR(t.grad, 0.5 / 4.0, 1e-7);         // diff / norm
}

TEST(HuberTerm, LinearOutsideDelta) {
  const HuberTerm t = huber_term(5.0F, 1.0F, 2.0);
  EXPECT_NEAR(t.loss, 1.0 * (5.0 - 0.5), 1e-9);  // delta * (|diff| - delta/2)
  EXPECT_NEAR(t.grad, 1.0 / 2.0, 1e-7);          // clipped to delta / norm
}

TEST(HuberTerm, NegativeErrorsSymmetric) {
  const HuberTerm inside = huber_term(-0.5F, 1.0F, 1.0);
  EXPECT_NEAR(inside.loss, 0.5 * 0.25, 1e-9);
  EXPECT_NEAR(inside.grad, -0.5, 1e-7);
  const HuberTerm outside = huber_term(-5.0F, 1.0F, 1.0);
  EXPECT_NEAR(outside.loss, 4.5, 1e-9);
  EXPECT_NEAR(outside.grad, -1.0, 1e-7);
}

TEST(HuberTerm, ZeroErrorIsZero) {
  const HuberTerm t = huber_term(0.0F, 1.0F, 32.0);
  EXPECT_DOUBLE_EQ(t.loss, 0.0);
  EXPECT_FLOAT_EQ(t.grad, 0.0F);
}

TEST(HuberTerm, BoundaryUsesQuadraticBranch) {
  // |diff| == delta belongs to the quadratic branch (<=), where the two
  // branches agree in value and gradient.
  const HuberTerm t = huber_term(1.0F, 1.0F, 1.0);
  EXPECT_NEAR(t.loss, 0.5, 1e-9);
  EXPECT_NEAR(t.grad, 1.0, 1e-7);
}

TEST(HuberLoss, GradientIsFiniteDifferenceOfLoss) {
  Matrix pred(1, 3), target(1, 3), grad;
  pred.at(0, 0) = 0.3F;
  pred.at(0, 1) = -2.0F;
  pred.at(0, 2) = 0.9F;
  target.fill(0.0F);
  huber_loss(pred, target, grad, 1.0F);
  const float eps = 1e-3F;
  for (std::size_t j = 0; j < 3; ++j) {
    Matrix grad_unused;
    Matrix plus = pred, minus = pred;
    plus.at(0, j) += eps;
    minus.at(0, j) -= eps;
    const double l_plus = huber_loss(plus, target, grad_unused, 1.0F);
    const double l_minus = huber_loss(minus, target, grad_unused, 1.0F);
    EXPECT_NEAR(grad.at(0, j), (l_plus - l_minus) / (2 * eps), 1e-3);
  }
}

}  // namespace
}  // namespace vnfm::nn
