#include "nn/mlp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.hpp"
#include "nn/loss.hpp"

namespace vnfm::nn {
namespace {

MlpConfig small_config(bool dueling) {
  MlpConfig config;
  config.input_dim = 5;
  config.hidden_dims = {8, 6};
  config.output_dim = 4;
  config.activation = Activation::kTanh;  // smooth for gradient checks
  config.dueling = dueling;
  return config;
}

Matrix random_input(std::size_t batch, std::size_t dim, Rng& rng) {
  Matrix x(batch, dim);
  for (float& v : x.flat()) v = static_cast<float>(rng.normal() * 0.5);
  return x;
}

TEST(Mlp, ForwardShapes) {
  Mlp mlp(small_config(false));
  Rng rng(1);
  mlp.init(rng);
  Matrix x = random_input(3, 5, rng);
  Matrix y;
  mlp.forward(x, y);
  EXPECT_EQ(y.rows(), 3u);
  EXPECT_EQ(y.cols(), 4u);
}

TEST(Mlp, ForwardRowMatchesBatched) {
  Mlp mlp(small_config(false));
  Rng rng(2);
  mlp.init(rng);
  Matrix x = random_input(1, 5, rng);
  Matrix y;
  mlp.forward(x, y);
  const auto row = mlp.forward_row(x.row(0));
  ASSERT_EQ(row.size(), 4u);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_FLOAT_EQ(row[j], y.at(0, j));
}

TEST(Mlp, ForwardIsConstCallable) {
  // Inference needs no const_cast: forward/forward_row are const (the
  // backward caches are mutable implementation detail).
  Mlp mlp(small_config(true));
  Rng rng(7);
  mlp.init(rng);
  Matrix x = random_input(2, 5, rng);
  const Mlp& view = mlp;
  Matrix y;
  view.forward(x, y);
  EXPECT_EQ(y.rows(), 2u);
  const auto row = view.forward_row(x.row(1));
  for (std::size_t j = 0; j < 4; ++j) EXPECT_FLOAT_EQ(row[j], y.at(1, j));
  EXPECT_EQ(view.parameters().size(), mlp.parameters().size());
}

TEST(Mlp, ScratchForwardRowMatchesAllocatingOverload) {
  Mlp mlp(small_config(false));
  Rng rng(9);
  mlp.init(rng);
  std::vector<float> out;
  for (int repeat = 0; repeat < 3; ++repeat) {
    Matrix x = random_input(1, 5, rng);
    const auto expected = mlp.forward_row(x.row(0));
    mlp.forward_row(x.row(0), out);
    ASSERT_EQ(out.size(), expected.size());
    for (std::size_t j = 0; j < expected.size(); ++j)
      EXPECT_EQ(out[j], expected[j]) << "repeat " << repeat;
  }
}

TEST(Mlp, DuelingOutputDecomposition) {
  // In a dueling head Q = V + A - mean(A), so mean_a(Q(s,·)) == V(s); the
  // advantage stream contributes zero mean.
  Mlp mlp(small_config(true));
  Rng rng(3);
  mlp.init(rng);
  Matrix x = random_input(4, 5, rng);
  Matrix q;
  mlp.forward(x, q);
  EXPECT_EQ(q.cols(), 4u);
  // Check outputs vary per action (the advantage stream is alive).
  bool varies = false;
  for (std::size_t j = 1; j < 4; ++j)
    if (std::fabs(q.at(0, j) - q.at(0, 0)) > 1e-6) varies = true;
  EXPECT_TRUE(varies);
}

TEST(Mlp, ParameterCountMatchesArchitecture) {
  Mlp mlp(small_config(false));
  // 5->8: 40+8; 8->6: 48+6; 6->4: 24+4 = 130.
  EXPECT_EQ(mlp.parameter_count(), 130u);
  Mlp dueling(small_config(true));
  // trunk 40+8+48+6 = 102; V: 6+1; A: 24+4 => 137.
  EXPECT_EQ(dueling.parameter_count(), 137u);
}

TEST(Mlp, ZeroGradClearsAll) {
  Mlp mlp(small_config(false));
  Rng rng(4);
  mlp.init(rng);
  Matrix x = random_input(2, 5, rng), y;
  mlp.forward(x, y);
  Matrix d(2, 4, 1.0F);
  mlp.backward(d);
  mlp.zero_grad();
  for (Param* p : mlp.parameters())
    for (const float g : p->grad.flat()) EXPECT_FLOAT_EQ(g, 0.0F);
}

TEST(Mlp, CopyWeightsMakesNetworksIdentical) {
  Mlp a(small_config(false)), b(small_config(false));
  Rng rng(5);
  a.init(rng);
  b.init(rng);
  b.copy_weights_from(a);
  Matrix x = random_input(2, 5, rng), ya, yb;
  a.forward(x, ya);
  b.forward(x, yb);
  for (std::size_t i = 0; i < ya.size(); ++i)
    EXPECT_FLOAT_EQ(ya.flat()[i], yb.flat()[i]);
}

TEST(Mlp, SoftUpdateInterpolates) {
  Mlp a(small_config(false)), b(small_config(false));
  Rng rng(6);
  a.init(rng);
  b.init(rng);
  const float a0 = a.parameters()[0]->value.flat()[0];
  const float b0 = b.parameters()[0]->value.flat()[0];
  a.soft_update_from(b, 0.25F);
  EXPECT_NEAR(a.parameters()[0]->value.flat()[0], 0.25F * b0 + 0.75F * a0, 1e-6);
}

TEST(Mlp, SaveLoadRoundTrip) {
  Mlp mlp(small_config(true));
  Rng rng(7);
  mlp.init(rng);
  std::stringstream stream;
  mlp.save(stream);
  Mlp restored = Mlp::load(stream);
  Matrix x = random_input(3, 5, rng), y1, y2;
  mlp.forward(x, y1);
  restored.forward(x, y2);
  for (std::size_t i = 0; i < y1.size(); ++i)
    EXPECT_NEAR(y1.flat()[i], y2.flat()[i], 1e-5);
}

TEST(Mlp, LoadRejectsGarbage) {
  std::stringstream stream("not-a-network");
  EXPECT_THROW(Mlp::load(stream), std::runtime_error);
}

TEST(Mlp, ClipGradNormScalesDown) {
  Mlp mlp(small_config(false));
  Rng rng(8);
  mlp.init(rng);
  Matrix x = random_input(4, 5, rng), y;
  mlp.forward(x, y);
  Matrix d(4, 4, 100.0F);  // huge gradient
  mlp.backward(d);
  const double pre_norm = mlp.clip_grad_norm(1.0);
  EXPECT_GT(pre_norm, 1.0);
  double post_sq = 0.0;
  for (Param* p : mlp.parameters())
    for (const float g : p->grad.flat()) post_sq += static_cast<double>(g) * g;
  EXPECT_NEAR(std::sqrt(post_sq), 1.0, 1e-4);
}

TEST(Mlp, RejectsZeroDims) {
  MlpConfig config;
  config.input_dim = 0;
  config.output_dim = 2;
  EXPECT_THROW(Mlp{config}, std::invalid_argument);
}

/// Finite-difference gradient check across architectures: backprop gradients
/// of 0.5*||y||^2 must match numerical gradients for every parameter.
class MlpGradientCheck : public ::testing::TestWithParam<bool> {};

TEST_P(MlpGradientCheck, BackpropMatchesFiniteDifference) {
  MlpConfig config = small_config(GetParam());
  config.hidden_dims = {6};
  Mlp mlp(config);
  Rng rng(9);
  mlp.init(rng);
  Matrix x = random_input(2, 5, rng);

  auto loss_value = [&]() {
    Matrix y;
    mlp.forward(x, y);
    double loss = 0.0;
    for (const float v : y.flat()) loss += 0.5 * static_cast<double>(v) * v;
    return loss;
  };

  // Analytic gradient: d(loss)/dy = y.
  Matrix y;
  mlp.forward(x, y);
  mlp.zero_grad();
  mlp.backward(y);

  const float eps = 1e-3F;
  int checked = 0;
  for (Param* p : mlp.parameters()) {
    auto values = p->value.flat();
    const auto grads = p->grad.flat();
    // Sample a few coordinates per tensor to keep the test fast.
    for (std::size_t i = 0; i < values.size(); i += std::max<std::size_t>(1, values.size() / 5)) {
      const float original = values[i];
      values[i] = original + eps;
      const double plus = loss_value();
      values[i] = original - eps;
      const double minus = loss_value();
      values[i] = original;
      const double numeric = (plus - minus) / (2.0 * eps);
      EXPECT_NEAR(grads[i], numeric, 5e-2 * std::max(1.0, std::fabs(numeric)))
          << "param coordinate " << i;
      ++checked;
    }
  }
  EXPECT_GT(checked, 10);
}

INSTANTIATE_TEST_SUITE_P(Architectures, MlpGradientCheck, ::testing::Bool());

}  // namespace
}  // namespace vnfm::nn
