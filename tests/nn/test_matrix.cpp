#include "nn/matrix.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <tuple>

#include "common/rng.hpp"

namespace vnfm::nn {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (float& v : m.flat()) v = static_cast<float>(rng.normal());
  return m;
}

/// Reference O(n^3) matmul used to validate the optimised kernels.
Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0F;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a.at(i, k) * b.at(k, j);
      out.at(i, j) = acc;
    }
  return out;
}

Matrix transpose(const Matrix& m) {
  Matrix t(m.cols(), m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j) t.at(j, i) = m.at(i, j);
  return t;
}

void expect_matrix_near(const Matrix& a, const Matrix& b, float tol = 1e-4F) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      EXPECT_NEAR(a.at(i, j), b.at(i, j), tol) << "at (" << i << "," << j << ")";
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5F);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_FLOAT_EQ(m.at(1, 2), 1.5F);
  m.at(0, 0) = -2.0F;
  EXPECT_FLOAT_EQ(m.at(0, 0), -2.0F);
}

TEST(Matrix, FromRow) {
  const float values[] = {1.0F, 2.0F, 3.0F};
  const Matrix m = Matrix::from_row(values);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FLOAT_EQ(m.at(0, 1), 2.0F);
}

TEST(Matrix, RowSpanViewsUnderlyingData) {
  Matrix m(2, 2);
  m.row(1)[0] = 9.0F;
  EXPECT_FLOAT_EQ(m.at(1, 0), 9.0F);
}

TEST(Matrix, MatmulIdentity) {
  Rng rng(1);
  const Matrix a = random_matrix(3, 4, rng);
  Matrix eye(4, 4);
  for (std::size_t i = 0; i < 4; ++i) eye.at(i, i) = 1.0F;
  Matrix out;
  matmul(a, eye, out);
  expect_matrix_near(out, a);
}

TEST(Matrix, MatmulShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3), out;
  EXPECT_THROW(matmul(a, b, out), std::invalid_argument);
}

TEST(Matrix, AddRowVector) {
  Matrix m(2, 3, 1.0F);
  const float bias[] = {1.0F, 2.0F, 3.0F};
  add_row_vector(m, bias);
  EXPECT_FLOAT_EQ(m.at(0, 0), 2.0F);
  EXPECT_FLOAT_EQ(m.at(1, 2), 4.0F);
}

TEST(Matrix, ColumnSumsAccumulate) {
  Matrix m(2, 2);
  m.at(0, 0) = 1.0F;
  m.at(1, 0) = 2.0F;
  m.at(0, 1) = 3.0F;
  m.at(1, 1) = 4.0F;
  std::vector<float> sums(2, 10.0F);  // pre-seeded: accumulates, not overwrites
  column_sums(m, sums);
  EXPECT_FLOAT_EQ(sums[0], 13.0F);
  EXPECT_FLOAT_EQ(sums[1], 17.0F);
}

TEST(Matrix, AxpyAccumulates) {
  Matrix a(1, 2, 1.0F), out(1, 2, 0.5F);
  axpy(2.0F, a, out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 2.5F);
}

TEST(Matrix, AxpyShapeMismatchThrows) {
  Matrix a(1, 2), out(2, 1);
  EXPECT_THROW(axpy(1.0F, a, out), std::invalid_argument);
}

/// Property sweep: the three matmul kernels agree with the naive reference
/// across shapes.
class MatmulSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(MatmulSweep, MatmulMatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 100 + k * 10 + n);
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);
  Matrix out;
  matmul(a, b, out);
  expect_matrix_near(out, naive_matmul(a, b));
}

TEST_P(MatmulSweep, MatmulAtBMatchesTransposedNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 100 + k * 10 + n + 1);
  const Matrix a = random_matrix(k, m, rng);  // will be transposed
  const Matrix b = random_matrix(k, n, rng);
  Matrix out;
  matmul_at_b(a, b, out);
  expect_matrix_near(out, naive_matmul(transpose(a), b));
}

TEST_P(MatmulSweep, MatmulABtMatchesTransposedNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 100 + k * 10 + n + 2);
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(n, k, rng);  // will be transposed
  Matrix out;
  matmul_a_bt(a, b, out);
  expect_matrix_near(out, naive_matmul(a, transpose(b)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulSweep,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 5, 3),
                      std::make_tuple(4, 4, 4), std::make_tuple(7, 3, 9),
                      std::make_tuple(16, 32, 8), std::make_tuple(33, 17, 5)));

TEST(Matrix, ResizeZeroFillsEvenWhenShapeUnchanged) {
  Matrix m(2, 3, 7.0F);
  m.resize(2, 3);  // documented contract: zero-fill on EVERY call
  for (const float v : m.flat()) EXPECT_EQ(v, 0.0F);
}

TEST(Matrix, ResizeForOverwriteKeepsShapeAndSkipsZeroFill) {
  Matrix m(2, 3, 7.0F);
  m.resize_for_overwrite(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  m.resize_for_overwrite(4, 5);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 5u);
  EXPECT_EQ(m.size(), 20u);
  // Contents are unspecified; a full overwrite must leave no trace of them.
  m.fill(1.0F);
  for (const float v : m.flat()) EXPECT_EQ(v, 1.0F);
}

TEST(Matrix, SimdPathReportsAValidName) {
  const SimdPath path = matmul_simd_path();
  const char* name = to_string(path);
  ASSERT_NE(name, nullptr);
  EXPECT_TRUE(std::string(name) == "avx2" || std::string(name) == "neon" ||
              std::string(name) == "scalar")
      << name;
#if defined(__x86_64__)
  if (__builtin_cpu_supports("avx2")) EXPECT_EQ(path, SimdPath::kAvx2);
#endif
}

// Regression for the removed `if (a == 0) continue;` skip branches: a zero
// activation times an Inf gradient is NaN and must POISON the result, not
// be silently dropped (silent drops masked exploding-gradient bugs).
TEST(Matrix, ZeroTimesInfPoisonsMatmul) {
  Matrix a(1, 2);
  a.at(0, 0) = 0.0F;
  a.at(0, 1) = 1.0F;
  Matrix b(2, 2);
  b.at(0, 0) = std::numeric_limits<float>::infinity();
  b.at(0, 1) = 1.0F;
  b.at(1, 0) = 1.0F;
  b.at(1, 1) = 1.0F;
  Matrix out;
  matmul(a, b, out);  // out[0][0] = 0 * Inf + 1 * 1 = NaN
  EXPECT_TRUE(std::isnan(out.at(0, 0)));
  EXPECT_FLOAT_EQ(out.at(0, 1), 2.0F);
  Matrix out_scalar;
  matmul_scalar(a, b, out_scalar);
  EXPECT_TRUE(std::isnan(out_scalar.at(0, 0)));
}

TEST(Matrix, ZeroTimesInfPoisonsWeightGradient) {
  // matmul_at_b is the dW kernel: an Inf activation row must poison the
  // weight gradient even where d_out is exactly zero.
  Matrix d_out(1, 2);  // (batch=1, out=2): gradient zero for output 0
  d_out.at(0, 0) = 0.0F;
  d_out.at(0, 1) = 1.0F;
  Matrix x(1, 2);  // (batch=1, in=2): exploded activation
  x.at(0, 0) = std::numeric_limits<float>::infinity();
  x.at(0, 1) = 1.0F;
  Matrix dw;
  matmul_at_b(d_out, x, dw);  // dW = d_out^T * x
  EXPECT_TRUE(std::isnan(dw.at(0, 0))) << "0 * Inf must not be skipped";
  EXPECT_EQ(dw.at(0, 1), 0.0F);
  EXPECT_TRUE(std::isinf(dw.at(1, 0)));
  EXPECT_FLOAT_EQ(dw.at(1, 1), 1.0F);
  Matrix dw_scalar;
  matmul_at_b_scalar(d_out, x, dw_scalar);
  EXPECT_TRUE(std::isnan(dw_scalar.at(0, 0)));
}

// ---- Scalar-vs-dispatched bit-equality -------------------------------------
// The dispatched kernels (AVX2 on this CI's x86 runners, NEON on aarch64,
// scalar otherwise) must produce the exact bit patterns of the scalar
// reference. Tail shapes matter most: k % 8 != 0, k < 8, and empty.

void expect_bit_identical(const Matrix& got, const Matrix& want) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (std::size_t i = 0; i < got.flat().size(); ++i) {
    const auto got_bits = std::bit_cast<std::uint32_t>(got.flat()[i]);
    const auto want_bits = std::bit_cast<std::uint32_t>(want.flat()[i]);
    EXPECT_EQ(got_bits, want_bits) << "element " << i;
  }
}

class SimdBitEquality
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(SimdBitEquality, MatmulABtDispatchedMatchesScalarBitForBit) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 1000 + k * 100 + n);
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(n, k, rng);
  Matrix dispatched, scalar;
  matmul_a_bt(a, b, dispatched);
  matmul_a_bt_scalar(a, b, scalar);
  expect_bit_identical(dispatched, scalar);
}

TEST_P(SimdBitEquality, MatmulDispatchedMatchesScalarBitForBit) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 1000 + k * 100 + n + 1);
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);
  Matrix dispatched, scalar;
  matmul(a, b, dispatched);
  matmul_scalar(a, b, scalar);
  expect_bit_identical(dispatched, scalar);
}

TEST_P(SimdBitEquality, MatmulAtBDispatchedMatchesScalarBitForBit) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 1000 + k * 100 + n + 2);
  const Matrix a = random_matrix(k, m, rng);
  const Matrix b = random_matrix(k, n, rng);
  Matrix dispatched, scalar;
  matmul_at_b(a, b, dispatched);
  matmul_at_b_scalar(a, b, scalar);
  expect_bit_identical(dispatched, scalar);
}

INSTANTIATE_TEST_SUITE_P(
    TailShapes, SimdBitEquality,
    ::testing::Values(std::make_tuple(3, 0, 2),     // empty reduction
                      std::make_tuple(0, 8, 0),     // empty output
                      std::make_tuple(2, 1, 2),     // k < 8
                      std::make_tuple(5, 7, 3),     // k < 8 ragged
                      std::make_tuple(4, 8, 4),     // exactly one vector
                      std::make_tuple(3, 9, 5),     // k % 8 == 1
                      std::make_tuple(6, 13, 7),    // k % 8 == 5, odd n
                      std::make_tuple(8, 16, 8),    // two vectors
                      std::make_tuple(9, 23, 11),   // ragged everything
                      std::make_tuple(64, 67, 33),  // large ragged
                      std::make_tuple(16, 128, 32)  // DQN-shaped
                      ));

}  // namespace
}  // namespace vnfm::nn
