#include "nn/matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "common/rng.hpp"

namespace vnfm::nn {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (float& v : m.flat()) v = static_cast<float>(rng.normal());
  return m;
}

/// Reference O(n^3) matmul used to validate the optimised kernels.
Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0F;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a.at(i, k) * b.at(k, j);
      out.at(i, j) = acc;
    }
  return out;
}

Matrix transpose(const Matrix& m) {
  Matrix t(m.cols(), m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j) t.at(j, i) = m.at(i, j);
  return t;
}

void expect_matrix_near(const Matrix& a, const Matrix& b, float tol = 1e-4F) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      EXPECT_NEAR(a.at(i, j), b.at(i, j), tol) << "at (" << i << "," << j << ")";
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5F);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_FLOAT_EQ(m.at(1, 2), 1.5F);
  m.at(0, 0) = -2.0F;
  EXPECT_FLOAT_EQ(m.at(0, 0), -2.0F);
}

TEST(Matrix, FromRow) {
  const float values[] = {1.0F, 2.0F, 3.0F};
  const Matrix m = Matrix::from_row(values);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FLOAT_EQ(m.at(0, 1), 2.0F);
}

TEST(Matrix, RowSpanViewsUnderlyingData) {
  Matrix m(2, 2);
  m.row(1)[0] = 9.0F;
  EXPECT_FLOAT_EQ(m.at(1, 0), 9.0F);
}

TEST(Matrix, MatmulIdentity) {
  Rng rng(1);
  const Matrix a = random_matrix(3, 4, rng);
  Matrix eye(4, 4);
  for (std::size_t i = 0; i < 4; ++i) eye.at(i, i) = 1.0F;
  Matrix out;
  matmul(a, eye, out);
  expect_matrix_near(out, a);
}

TEST(Matrix, MatmulShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3), out;
  EXPECT_THROW(matmul(a, b, out), std::invalid_argument);
}

TEST(Matrix, AddRowVector) {
  Matrix m(2, 3, 1.0F);
  const float bias[] = {1.0F, 2.0F, 3.0F};
  add_row_vector(m, bias);
  EXPECT_FLOAT_EQ(m.at(0, 0), 2.0F);
  EXPECT_FLOAT_EQ(m.at(1, 2), 4.0F);
}

TEST(Matrix, ColumnSumsAccumulate) {
  Matrix m(2, 2);
  m.at(0, 0) = 1.0F;
  m.at(1, 0) = 2.0F;
  m.at(0, 1) = 3.0F;
  m.at(1, 1) = 4.0F;
  std::vector<float> sums(2, 10.0F);  // pre-seeded: accumulates, not overwrites
  column_sums(m, sums);
  EXPECT_FLOAT_EQ(sums[0], 13.0F);
  EXPECT_FLOAT_EQ(sums[1], 17.0F);
}

TEST(Matrix, AxpyAccumulates) {
  Matrix a(1, 2, 1.0F), out(1, 2, 0.5F);
  axpy(2.0F, a, out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 2.5F);
}

TEST(Matrix, AxpyShapeMismatchThrows) {
  Matrix a(1, 2), out(2, 1);
  EXPECT_THROW(axpy(1.0F, a, out), std::invalid_argument);
}

/// Property sweep: the three matmul kernels agree with the naive reference
/// across shapes.
class MatmulSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(MatmulSweep, MatmulMatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 100 + k * 10 + n);
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);
  Matrix out;
  matmul(a, b, out);
  expect_matrix_near(out, naive_matmul(a, b));
}

TEST_P(MatmulSweep, MatmulAtBMatchesTransposedNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 100 + k * 10 + n + 1);
  const Matrix a = random_matrix(k, m, rng);  // will be transposed
  const Matrix b = random_matrix(k, n, rng);
  Matrix out;
  matmul_at_b(a, b, out);
  expect_matrix_near(out, naive_matmul(transpose(a), b));
}

TEST_P(MatmulSweep, MatmulABtMatchesTransposedNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 100 + k * 10 + n + 2);
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(n, k, rng);  // will be transposed
  Matrix out;
  matmul_a_bt(a, b, out);
  expect_matrix_near(out, naive_matmul(a, transpose(b)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulSweep,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 5, 3),
                      std::make_tuple(4, 4, 4), std::make_tuple(7, 3, 9),
                      std::make_tuple(16, 32, 8), std::make_tuple(33, 17, 5)));

}  // namespace
}  // namespace vnfm::nn
