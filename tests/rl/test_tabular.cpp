#include "rl/tabular.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace vnfm::rl {
namespace {

TabularQConfig toy_config(std::size_t actions) {
  TabularQConfig config;
  config.action_dim = actions;
  config.learning_rate = 0.2;
  config.gamma = 0.9;
  config.epsilon_decay_steps = 2000;
  config.seed = 31;
  return config;
}

TEST(TabularQAgent, UpdateMovesTowardTarget) {
  TabularQAgent agent(toy_config(2));
  agent.update(1, 0, 1.0, 2, true, {});
  EXPECT_NEAR(agent.q_value(1, 0), 0.2, 1e-12);  // lr * (1 - 0)
  agent.update(1, 0, 1.0, 2, true, {});
  EXPECT_NEAR(agent.q_value(1, 0), 0.36, 1e-12);
}

TEST(TabularQAgent, BootstrapsFromNextState) {
  TabularQAgent agent(toy_config(2));
  // Seed Q(s2, a1) = 1 by repeated terminal updates.
  for (int i = 0; i < 200; ++i) agent.update(2, 1, 1.0, 0, true, {});
  EXPECT_NEAR(agent.q_value(2, 1), 1.0, 1e-3);
  agent.update(1, 0, 0.0, 2, false, {});
  // Target = 0 + gamma * max_a Q(2, a) ~= 0.9.
  EXPECT_NEAR(agent.q_value(1, 0), 0.2 * 0.9, 1e-3);
}

TEST(TabularQAgent, LearnsChainMdp) {
  // States 0..3; action 0 advances (reward 1 at state 3), action 1 resets
  // with reward 0.1. Optimal is to advance everywhere.
  TabularQAgent agent(toy_config(2));
  Rng rng(1);
  for (int episode = 0; episode < 2000; ++episode) {
    std::uint64_t s = 0;
    for (int step = 0; step < 20; ++step) {
      const int a = agent.act(s, {});
      if (a == 1) {
        agent.update(s, a, 0.1, 0, true, {});
        break;
      }
      if (s == 3) {
        agent.update(s, a, 1.0, 0, true, {});
        break;
      }
      agent.update(s, a, 0.0, s + 1, false, {});
      s += 1;
    }
  }
  for (std::uint64_t s = 0; s < 4; ++s)
    EXPECT_EQ(agent.act_greedy(s, {}), 0) << "state " << s;
}

TEST(TabularQAgent, MaskRestrictsActions) {
  TabularQAgent agent(toy_config(3));
  const std::vector<std::uint8_t> mask{0, 0, 1};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(agent.act(7, mask), 2);
}

TEST(TabularQAgent, MaskedBootstrapIgnoresInvalid) {
  TabularQAgent agent(toy_config(2));
  for (int i = 0; i < 100; ++i) agent.update(5, 0, 1.0, 0, true, {});  // Q(5,0) -> 1
  const std::vector<std::uint8_t> next_mask{0, 1};  // only action 1 valid next
  agent.update(4, 0, 0.0, 5, false, next_mask);
  // Bootstrap must use Q(5,1)=0, not Q(5,0)=1.
  EXPECT_NEAR(agent.q_value(4, 0), 0.0, 1e-9);
}

TEST(TabularQAgent, EpsilonDecays) {
  TabularQAgent agent(toy_config(2));
  const double eps0 = agent.epsilon();
  for (int i = 0; i < 1000; ++i) (void)agent.act(0, {});
  EXPECT_LT(agent.epsilon(), eps0);
}

TEST(TabularQAgent, TableGrowsOnlyOnUpdates) {
  TabularQAgent agent(toy_config(2));
  (void)agent.act_greedy(1, {});
  EXPECT_EQ(agent.table_size(), 0u);  // reads do not allocate
  agent.update(1, 0, 1.0, 2, true, {});
  EXPECT_EQ(agent.table_size(), 1u);
}

TEST(TabularQAgent, DiscretizeIsDeterministicAndBucketed) {
  const std::vector<float> a{0.1F, 0.9F};
  const std::vector<float> b{0.12F, 0.91F};  // same buckets at 4 levels
  const std::vector<float> c{0.6F, 0.9F};    // different bucket
  EXPECT_EQ(TabularQAgent::discretize(a, 4), TabularQAgent::discretize(b, 4));
  EXPECT_NE(TabularQAgent::discretize(a, 4), TabularQAgent::discretize(c, 4));
}

TEST(TabularQAgent, DiscretizeClampsOutOfRange) {
  const std::vector<float> low{-5.0F};
  const std::vector<float> zero{0.0F};
  const std::vector<float> high{7.0F};
  const std::vector<float> one{1.0F};
  EXPECT_EQ(TabularQAgent::discretize(low, 8), TabularQAgent::discretize(zero, 8));
  EXPECT_EQ(TabularQAgent::discretize(high, 8), TabularQAgent::discretize(one, 8));
}

TEST(TabularQAgent, RejectsZeroActions) {
  TabularQConfig config;
  config.action_dim = 0;
  EXPECT_THROW(TabularQAgent{config}, std::invalid_argument);
}

TEST(TabularQAgent, IngestMatchesUpdateAndAdvancesSchedule) {
  TabularQAgent reference(toy_config(2));
  TabularQAgent learner(toy_config(2));
  reference.update(1, 0, 1.0, 2, true, {});
  learner.ingest(1, 0, 1.0, 2, true, {});
  EXPECT_EQ(reference.q_value(1, 0), learner.q_value(1, 0));
  // update() leaves the schedule alone; ingest() drives it (the pipeline
  // learner never acts, so ingested steps are its only clock).
  EXPECT_EQ(reference.steps(), 0u);
  EXPECT_EQ(learner.steps(), 1u);
  for (int i = 0; i < 99; ++i) learner.ingest(1, 0, 1.0, 2, true, {});
  EXPECT_LT(learner.epsilon(), reference.epsilon());
}

TEST(TabularActorView, SnapshotIsFrozenUntilSync) {
  TabularQAgent learner(toy_config(2));
  for (int i = 0; i < 100; ++i) learner.update(7, 1, 1.0, 0, true, {});
  TabularActorView view(learner);
  view.set_exploration_enabled(false);
  EXPECT_EQ(view.act(7, {}), 1);
  // Learner moves on; the view must not see it until sync().
  for (int i = 0; i < 500; ++i) learner.update(7, 0, 5.0, 0, true, {});
  EXPECT_EQ(learner.act_greedy(7, {}), 0);
  EXPECT_EQ(view.act(7, {}), 1);
  view.sync(learner);
  EXPECT_EQ(view.act(7, {}), 0);
}

TEST(TabularActorView, ExplorationRespectsMask) {
  TabularQAgent learner(toy_config(3));
  TabularActorView view(learner);  // epsilon_start = 1.0: always exploring
  const std::vector<std::uint8_t> mask{0, 1, 0};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(view.act(3, mask), 1);
}

TEST(TabularActorView, ReseededViewsShareActionStream) {
  TabularQAgent learner(toy_config(3));
  TabularActorView a(learner);
  TabularActorView b(learner);
  a.reseed(99);
  b.reseed(99);
  const std::vector<std::uint8_t> mask{1, 1, 1};
  for (int i = 0; i < 200; ++i) EXPECT_EQ(a.act(0, mask), b.act(0, mask));
}

}  // namespace
}  // namespace vnfm::rl
