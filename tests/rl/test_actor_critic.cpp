#include "rl/actor_critic.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace vnfm::rl {
namespace {

ActorCriticConfig toy_config(std::size_t state_dim, std::size_t action_dim) {
  ActorCriticConfig config;
  config.state_dim = state_dim;
  config.action_dim = action_dim;
  config.hidden_dims = {16};
  config.actor_lr = 3e-3F;
  config.critic_lr = 1e-2F;
  config.gamma = 0.9F;
  config.seed = 23;
  return config;
}

std::vector<float> one_hot(std::size_t i, std::size_t n) {
  std::vector<float> v(n, 0.0F);
  v[i] = 1.0F;
  return v;
}

TEST(ActorCriticAgent, LearnsTwoArmedBandit) {
  ActorCriticAgent agent(toy_config(1, 2));
  const std::vector<float> state{1.0F};
  for (int step = 0; step < 3000; ++step) {
    const int action = agent.act(state, {});
    (void)agent.learn(action == 1 ? 1.0F : 0.0F, state, /*done=*/true);
  }
  const auto probs = agent.action_probabilities(state, {});
  EXPECT_GT(probs[1], 0.8F);
}

TEST(ActorCriticAgent, CriticConvergesToExpectedReturn) {
  ActorCriticAgent agent(toy_config(1, 2));
  const std::vector<float> state{1.0F};
  for (int step = 0; step < 4000; ++step) {
    const int action = agent.act(state, {});
    (void)agent.learn(action == 1 ? 1.0F : 0.0F, state, true);
  }
  // Once the policy is near-deterministic on arm 1, V(s) ~ 1.
  EXPECT_NEAR(agent.state_value(state), 1.0F, 0.25F);
}

TEST(ActorCriticAgent, LearnsContextDependentPolicy) {
  ActorCriticAgent agent(toy_config(2, 2));
  Rng env_rng(7);
  for (int step = 0; step < 6000; ++step) {
    const std::size_t context = env_rng.uniform_index(2);
    const auto state = one_hot(context, 2);
    const int action = agent.act(state, {});
    (void)agent.learn(static_cast<std::size_t>(action) == context ? 1.0F : 0.0F, state,
                      true);
  }
  EXPECT_EQ(agent.act_greedy(one_hot(0, 2), {}), 0);
  EXPECT_EQ(agent.act_greedy(one_hot(1, 2), {}), 1);
}

TEST(ActorCriticAgent, BootstrapsAcrossSteps) {
  // Two-step chain: step 0 (no reward) -> step 1 (reward 1, done). After
  // training, V(s0) ~ gamma * 1 and V(s1) ~ 1.
  ActorCriticAgent agent(toy_config(2, 1));
  const auto s0 = one_hot(0, 2);
  const auto s1 = one_hot(1, 2);
  for (int episode = 0; episode < 2500; ++episode) {
    (void)agent.act(s0, {});
    (void)agent.learn(0.0F, s1, false);
    (void)agent.act(s1, {});
    (void)agent.learn(1.0F, s1, true);
  }
  EXPECT_NEAR(agent.state_value(s1), 1.0F, 0.2F);
  EXPECT_NEAR(agent.state_value(s0), 0.9F, 0.2F);
}

TEST(ActorCriticAgent, RespectsMask) {
  ActorCriticAgent agent(toy_config(1, 3));
  const std::vector<float> state{1.0F};
  const std::vector<std::uint8_t> mask{1, 0, 1};
  for (int i = 0; i < 100; ++i) {
    const int action = agent.act(state, mask);
    EXPECT_NE(action, 1);
    (void)agent.learn(0.0F, state, true);
  }
  const auto probs = agent.action_probabilities(state, mask);
  EXPECT_FLOAT_EQ(probs[1], 0.0F);
}

TEST(ActorCriticAgent, LearnWithoutActThrows) {
  ActorCriticAgent agent(toy_config(1, 2));
  const std::vector<float> state{1.0F};
  EXPECT_THROW((void)agent.learn(0.0F, state, true), std::runtime_error);
}

TEST(ActorCriticAgent, TdErrorShrinksOnRepeatedState) {
  ActorCriticAgent agent(toy_config(1, 1));
  const std::vector<float> state{1.0F};
  double first = 0.0, last = 0.0;
  for (int i = 0; i < 500; ++i) {
    (void)agent.act(state, {});
    const double td = agent.learn(1.0F, state, true);
    if (i == 0) first = std::abs(td);
    last = std::abs(td);
  }
  EXPECT_LT(last, first);
  EXPECT_EQ(agent.updates(), 500u);
}

TEST(ActorCriticAgent, RejectsZeroDims) {
  ActorCriticConfig config;
  config.state_dim = 0;
  config.action_dim = 2;
  EXPECT_THROW(ActorCriticAgent{config}, std::invalid_argument);
}

}  // namespace
}  // namespace vnfm::rl
