#include "rl/schedule.hpp"

#include <gtest/gtest.h>

namespace vnfm::rl {
namespace {

TEST(LinearSchedule, InterpolatesAndClamps) {
  LinearSchedule s(1.0, 0.1, 100);
  EXPECT_DOUBLE_EQ(s.value(0), 1.0);
  EXPECT_NEAR(s.value(50), 0.55, 1e-12);
  EXPECT_DOUBLE_EQ(s.value(100), 0.1);
  EXPECT_DOUBLE_EQ(s.value(1'000'000), 0.1);
}

TEST(LinearSchedule, ZeroHorizonIsConstantEnd) {
  LinearSchedule s(1.0, 0.2, 0);
  EXPECT_DOUBLE_EQ(s.value(0), 0.2);
}

TEST(LinearSchedule, CanIncrease) {
  LinearSchedule s(0.4, 1.0, 10);  // e.g. prioritized-replay beta annealing
  EXPECT_DOUBLE_EQ(s.value(0), 0.4);
  EXPECT_NEAR(s.value(5), 0.7, 1e-12);
  EXPECT_DOUBLE_EQ(s.value(20), 1.0);
}

TEST(ExponentialSchedule, DecaysAndFloors) {
  ExponentialSchedule s(1.0, 0.01, 0.9);
  EXPECT_DOUBLE_EQ(s.value(0), 1.0);
  EXPECT_NEAR(s.value(1), 0.9, 1e-12);
  EXPECT_NEAR(s.value(2), 0.81, 1e-12);
  EXPECT_DOUBLE_EQ(s.value(10'000), 0.01);
}

}  // namespace
}  // namespace vnfm::rl
