#include "rl/replay.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace vnfm::rl {
namespace {

Transition make_transition(float reward) {
  Transition t;
  t.state = {reward};
  t.action = 0;
  t.reward = reward;
  t.next_state = {reward + 1.0F};
  t.done = false;
  return t;
}

TEST(ReplayBuffer, PushAndSize) {
  ReplayBuffer buffer(4);
  EXPECT_TRUE(buffer.empty());
  buffer.push(make_transition(1.0F));
  buffer.push(make_transition(2.0F));
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.capacity(), 4u);
}

TEST(ReplayBuffer, OverwritesOldestWhenFull) {
  ReplayBuffer buffer(3);
  for (int i = 0; i < 5; ++i) buffer.push(make_transition(static_cast<float>(i)));
  EXPECT_EQ(buffer.size(), 3u);
  // Contents must be exactly {2, 3, 4}.
  std::map<float, int> seen;
  for (std::size_t i = 0; i < buffer.size(); ++i) ++seen[buffer.at(i).reward];
  EXPECT_EQ(seen.count(2.0F), 1u);
  EXPECT_EQ(seen.count(3.0F), 1u);
  EXPECT_EQ(seen.count(4.0F), 1u);
  EXPECT_EQ(seen.count(0.0F), 0u);
}

TEST(ReplayBuffer, SampleFromEmptyThrows) {
  ReplayBuffer buffer(2);
  Rng rng(1);
  EXPECT_THROW(buffer.sample(1, rng), std::runtime_error);
}

TEST(ReplayBuffer, SampleReturnsStoredPointers) {
  ReplayBuffer buffer(8);
  for (int i = 0; i < 8; ++i) buffer.push(make_transition(static_cast<float>(i)));
  Rng rng(2);
  const auto batch = buffer.sample(100, rng);
  EXPECT_EQ(batch.size(), 100u);
  for (const Transition* t : batch) {
    EXPECT_GE(t->reward, 0.0F);
    EXPECT_LE(t->reward, 7.0F);
  }
}

TEST(ReplayBuffer, ZeroCapacityRejected) {
  EXPECT_THROW(ReplayBuffer(0), std::invalid_argument);
}

TEST(SumTree, TotalTracksUpdates) {
  SumTree tree(4);
  EXPECT_DOUBLE_EQ(tree.total(), 0.0);
  tree.set(0, 1.0);
  tree.set(3, 2.0);
  EXPECT_DOUBLE_EQ(tree.total(), 3.0);
  tree.set(0, 0.5);
  EXPECT_DOUBLE_EQ(tree.total(), 2.5);
  EXPECT_DOUBLE_EQ(tree.get(0), 0.5);
}

TEST(SumTree, FindPrefixSelectsCorrectLeaf) {
  SumTree tree(4);
  tree.set(0, 1.0);
  tree.set(1, 2.0);
  tree.set(2, 3.0);
  tree.set(3, 4.0);
  EXPECT_EQ(tree.find_prefix(0.5), 0u);
  EXPECT_EQ(tree.find_prefix(1.5), 1u);
  EXPECT_EQ(tree.find_prefix(3.5), 2u);
  EXPECT_EQ(tree.find_prefix(9.9), 3u);
}

TEST(SumTree, NonPowerOfTwoCapacity) {
  SumTree tree(5);
  for (std::size_t i = 0; i < 5; ++i) tree.set(i, 1.0);
  EXPECT_DOUBLE_EQ(tree.total(), 5.0);
  EXPECT_EQ(tree.find_prefix(4.5), 4u);
}

TEST(SumTree, RejectsBadInput) {
  SumTree tree(4);
  EXPECT_THROW(tree.set(4, 1.0), std::out_of_range);
  EXPECT_THROW(tree.set(0, -1.0), std::invalid_argument);
  EXPECT_THROW(tree.set(0, std::nan("")), std::invalid_argument);
}

TEST(SumTree, SamplingFrequencyProportionalToPriority) {
  SumTree tree(3);
  tree.set(0, 1.0);
  tree.set(1, 2.0);
  tree.set(2, 7.0);
  Rng rng(3);
  std::vector<int> counts(3, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i)
    ++counts[tree.find_prefix(rng.uniform() * tree.total())];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.01);
}

TEST(PrioritizedReplay, NewTransitionsGetSampled) {
  PrioritizedReplay replay({.capacity = 16});
  for (int i = 0; i < 8; ++i) replay.push(make_transition(static_cast<float>(i)));
  Rng rng(4);
  const auto sample = replay.sample(32, rng);
  EXPECT_EQ(sample.transitions.size(), 32u);
  EXPECT_EQ(sample.weights.size(), 32u);
  for (const float w : sample.weights) {
    EXPECT_GT(w, 0.0F);
    EXPECT_LE(w, 1.0F + 1e-6F);
  }
}

TEST(PrioritizedReplay, HighTdErrorSampledMoreOften) {
  PrioritizedReplay replay({.capacity = 8, .alpha = 1.0});
  for (int i = 0; i < 4; ++i) replay.push(make_transition(static_cast<float>(i)));
  // Give index 2 a much higher TD error than the rest.
  replay.update_priorities({0, 1, 2, 3}, {0.1F, 0.1F, 10.0F, 0.1F});
  Rng rng(5);
  std::map<float, int> counts;
  for (int i = 0; i < 20'000; ++i) {
    const auto sample = replay.sample(1, rng);
    ++counts[sample.transitions[0]->reward];
  }
  EXPECT_GT(counts[2.0F], counts[0.0F] * 10);
}

TEST(PrioritizedReplay, WeightsCompensateForBias) {
  PrioritizedReplay replay({.capacity = 8, .alpha = 1.0, .beta = 1.0});
  replay.push(make_transition(0.0F));
  replay.push(make_transition(1.0F));
  replay.update_priorities({0, 1}, {1.0F, 9.0F});
  Rng rng(6);
  // With beta = 1, within a batch containing both transitions the rare
  // (low-priority) one must carry the larger normalised IS weight, with
  // ratio equal to the inverse priority ratio (~9x).
  bool compared = false;
  for (int i = 0; i < 1000 && !compared; ++i) {
    const auto s = replay.sample(8, rng);
    float w_low = -1.0F, w_high = -1.0F;
    for (std::size_t j = 0; j < s.transitions.size(); ++j) {
      if (s.transitions[j]->reward == 0.0F) w_low = s.weights[j];
      else w_high = s.weights[j];
    }
    if (w_low < 0.0F || w_high < 0.0F) continue;
    EXPECT_GT(w_low, w_high);
    EXPECT_NEAR(w_low / w_high, (9.0F + 1e-3F) / (1.0F + 1e-3F), 0.5);
    compared = true;
  }
  EXPECT_TRUE(compared) << "never sampled both transitions in one batch";
}

TEST(PrioritizedReplay, UpdateArityMismatchThrows) {
  PrioritizedReplay replay({.capacity = 4});
  replay.push(make_transition(0.0F));
  EXPECT_THROW(replay.update_priorities({0, 1}, {1.0F}), std::invalid_argument);
}

TEST(PrioritizedReplay, WrapsAroundCapacity) {
  PrioritizedReplay replay({.capacity = 4});
  for (int i = 0; i < 10; ++i) replay.push(make_transition(static_cast<float>(i)));
  EXPECT_EQ(replay.size(), 4u);
  Rng rng(7);
  const auto s = replay.sample(16, rng);
  for (const Transition* t : s.transitions) EXPECT_GE(t->reward, 6.0F);
}

TEST(ReplayCheckpoint, RoundTripRestoresContentsAndCursor) {
  ReplayBuffer original(4);
  for (int i = 0; i < 6; ++i) original.push(make_transition(static_cast<float>(i)));
  Serializer out;
  original.save(out);

  ReplayBuffer restored(4);
  Deserializer in(out.bytes());
  restored.load(in);
  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i)
    EXPECT_EQ(restored.at(i).reward, original.at(i).reward) << i;
  // The ring cursor continues where the original would: the next push must
  // overwrite the same slot in both buffers.
  original.push(make_transition(100.0F));
  restored.push(make_transition(100.0F));
  for (std::size_t i = 0; i < original.size(); ++i)
    EXPECT_EQ(restored.at(i).reward, original.at(i).reward) << "post-push " << i;
}

TEST(ReplayCheckpoint, RejectsOutOfRangeCursorAndOversizedCount) {
  // Hand-built archives with internally consistent CRCs but hostile values:
  // the loaders must throw SerializeError, never index or allocate wildly.
  {
    Serializer out;
    out.begin_chunk("replay");
    out.write_u64(4);   // capacity (matches)
    out.write_u64(99);  // cursor way past capacity
    out.write_u64(0);   // no transitions
    out.end_chunk();
    ReplayBuffer buffer(4);
    Deserializer in(out.bytes());
    EXPECT_THROW(buffer.load(in), SerializeError);
  }
  {
    Serializer out;
    out.begin_chunk("replay");
    out.write_u64(4);
    out.write_u64(0);
    out.write_u64(1ULL << 60);  // absurd transition count
    out.end_chunk();
    ReplayBuffer buffer(4);
    Deserializer in(out.bytes());
    EXPECT_THROW(buffer.load(in), SerializeError);
  }
  {
    Serializer out;
    out.begin_chunk("per");
    out.write_u64(4);
    out.write_u64(7);  // cursor out of range
    out.write_f64(1.0);
    out.write_f64(0.4);
    out.write_u64(0);
    out.end_chunk();
    PrioritizedReplay replay({.capacity = 4});
    Deserializer in(out.bytes());
    EXPECT_THROW(replay.load(in), SerializeError);
  }
}

}  // namespace
}  // namespace vnfm::rl
