#include "rl/dqn.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

namespace vnfm::rl {
namespace {

DqnConfig toy_config(std::size_t state_dim, std::size_t action_dim) {
  DqnConfig config;
  config.state_dim = state_dim;
  config.action_dim = action_dim;
  config.hidden_dims = {24};
  config.learning_rate = 5e-3F;
  config.gamma = 0.9F;
  config.batch_size = 16;
  config.replay_capacity = 2000;
  config.min_replay_before_training = 64;
  config.train_period = 1;
  config.target_update_period = 50;
  config.epsilon_start = 1.0;
  config.epsilon_end = 0.05;
  config.epsilon_decay_steps = 1500;
  config.seed = 17;
  return config;
}

std::vector<float> one_hot(std::size_t i, std::size_t n) {
  std::vector<float> v(n, 0.0F);
  v[i] = 1.0F;
  return v;
}

/// Contextual bandit: action must match the state index for reward 1.
void train_on_matching_bandit(DqnAgent& agent, int steps) {
  Rng env_rng(123);
  for (int t = 0; t < steps; ++t) {
    const std::size_t context = env_rng.uniform_index(2);
    const auto state = one_hot(context, 2);
    const int action = agent.act(state, {});
    Transition tr;
    tr.state = state;
    tr.action = action;
    tr.reward = (static_cast<std::size_t>(action) == context) ? 1.0F : 0.0F;
    tr.next_state = one_hot(0, 2);
    tr.done = true;
    agent.observe(std::move(tr));
  }
}

TEST(DqnAgent, LearnsContextualBandit) {
  DqnAgent agent(toy_config(2, 2));
  train_on_matching_bandit(agent, 2500);
  EXPECT_EQ(agent.act_greedy(one_hot(0, 2), {}), 0);
  EXPECT_EQ(agent.act_greedy(one_hot(1, 2), {}), 1);
  const auto q0 = agent.q_values(one_hot(0, 2));
  EXPECT_GT(q0[0], q0[1]);
  EXPECT_NEAR(q0[0], 1.0, 0.25);  // terminal reward 1, no bootstrap
}

TEST(DqnAgent, BootstrapsThroughChain) {
  // Chain of 3 states; "advance" (a0) pays 1.0 only at the end, "quit" (a1)
  // pays 0.2 immediately. With gamma=0.9 advancing is optimal everywhere.
  DqnConfig config = toy_config(3, 2);
  config.epsilon_decay_steps = 4000;
  DqnAgent agent(config);
  for (int episode = 0; episode < 900; ++episode) {
    std::size_t pos = 0;
    while (true) {
      const auto state = one_hot(pos, 3);
      const int action = agent.act(state, {});
      Transition tr;
      tr.state = state;
      tr.action = action;
      if (action == 1) {
        tr.reward = 0.2F;
        tr.done = true;
        tr.next_state = one_hot(0, 3);
        agent.observe(std::move(tr));
        break;
      }
      if (pos == 2) {
        tr.reward = 1.0F;
        tr.done = true;
        tr.next_state = one_hot(0, 3);
        agent.observe(std::move(tr));
        break;
      }
      tr.reward = 0.0F;
      tr.done = false;
      tr.next_state = one_hot(pos + 1, 3);
      agent.observe(std::move(tr));
      ++pos;
    }
  }
  for (std::size_t s = 0; s < 3; ++s)
    EXPECT_EQ(agent.act_greedy(one_hot(s, 3), {}), 0) << "state " << s;
  // Q(s0, advance) should approximate gamma^2 * 1.
  const auto q = agent.q_values(one_hot(0, 3));
  EXPECT_NEAR(q[0], 0.81, 0.3);
}

TEST(DqnAgent, RespectsActionMask) {
  DqnAgent agent(toy_config(2, 3));
  const auto state = one_hot(0, 2);
  const std::vector<std::uint8_t> mask{0, 1, 0};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(agent.act(state, mask), 1);
  EXPECT_EQ(agent.act_greedy(state, mask), 1);
}

TEST(DqnAgent, ThrowsWhenNoValidAction) {
  DqnAgent agent(toy_config(2, 2));
  const auto state = one_hot(0, 2);
  const std::vector<std::uint8_t> mask{0, 0};
  EXPECT_THROW((void)agent.act_greedy(state, mask), std::runtime_error);
}

TEST(DqnAgent, EpsilonDecays) {
  DqnAgent agent(toy_config(2, 2));
  const double eps0 = agent.epsilon();
  const auto state = one_hot(0, 2);
  for (int i = 0; i < 1000; ++i) (void)agent.act(state, {});
  EXPECT_LT(agent.epsilon(), eps0);
}

TEST(DqnAgent, ExplorationCanBeDisabled) {
  DqnAgent agent(toy_config(2, 2));
  agent.set_exploration_enabled(false);
  EXPECT_DOUBLE_EQ(agent.epsilon(), 0.0);
}

TEST(DqnAgent, RejectsWrongStateDimension) {
  DqnAgent agent(toy_config(2, 2));
  Transition tr;
  tr.state = {1.0F, 0.0F, 0.0F};  // 3 != 2
  tr.next_state = {0.0F, 0.0F};
  EXPECT_THROW(agent.observe(std::move(tr)), std::invalid_argument);
}

TEST(DqnAgent, SaveLoadPreservesPolicy) {
  DqnAgent agent(toy_config(2, 2));
  train_on_matching_bandit(agent, 1500);
  std::stringstream stream;
  agent.save(stream);
  DqnAgent restored(toy_config(2, 2));
  restored.load(stream);
  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(restored.act_greedy(one_hot(s, 2), {}),
              agent.act_greedy(one_hot(s, 2), {}));
  }
}

TEST(DqnAgent, TrainingReducesLoss) {
  DqnAgent agent(toy_config(2, 2));
  // Fill replay with a deterministic pattern.
  Rng env_rng(9);
  std::vector<double> losses;
  for (int t = 0; t < 1200; ++t) {
    const std::size_t context = env_rng.uniform_index(2);
    const auto state = one_hot(context, 2);
    const int action = agent.act(state, {});
    Transition tr;
    tr.state = state;
    tr.action = action;
    tr.reward = (static_cast<std::size_t>(action) == context) ? 1.0F : 0.0F;
    tr.next_state = one_hot(0, 2);
    tr.done = true;
    const auto loss = agent.observe(std::move(tr));
    if (loss) losses.push_back(*loss);
  }
  ASSERT_GT(losses.size(), 200u);
  double early = 0.0, late = 0.0;
  for (std::size_t i = 0; i < 100; ++i) early += losses[i];
  for (std::size_t i = losses.size() - 100; i < losses.size(); ++i) late += losses[i];
  EXPECT_LT(late, early);
}

TEST(DqnAgent, NStepAggregatesRewards) {
  DqnConfig config = toy_config(3, 2);
  config.n_step = 3;
  config.min_replay_before_training = 1;
  config.train_period = 0;  // never train automatically; inspect replay only
  DqnAgent agent(config);
  // Feed one 3-step episode with rewards 1, 2, 4.
  const float rewards[3] = {1.0F, 2.0F, 4.0F};
  for (int i = 0; i < 3; ++i) {
    Transition t;
    t.state = one_hot(static_cast<std::size_t>(i), 3);
    t.action = 0;
    t.reward = rewards[i];
    t.done = i == 2;
    t.next_state = one_hot(static_cast<std::size_t>(std::min(i + 1, 2)), 3);
    agent.observe(std::move(t));
  }
  // On episode end every suffix flushes: 3 aggregated transitions.
  EXPECT_EQ(agent.replay_size(), 3u);
}

TEST(DqnAgent, NStepSolvesChainFaster) {
  // With n_step = 3 the terminal reward reaches state 0's value directly.
  DqnConfig config = toy_config(3, 2);
  config.n_step = 3;
  config.epsilon_decay_steps = 2500;
  DqnAgent agent(config);
  for (int episode = 0; episode < 500; ++episode) {
    std::size_t pos = 0;
    while (true) {
      const auto state = one_hot(pos, 3);
      const int action = agent.act(state, {});
      Transition tr;
      tr.state = state;
      tr.action = action;
      if (action == 1 || pos == 2) {
        tr.reward = action == 1 ? 0.2F : 1.0F;
        tr.done = true;
        tr.next_state = one_hot(0, 3);
        agent.observe(std::move(tr));
        break;
      }
      tr.reward = 0.0F;
      tr.done = false;
      tr.next_state = one_hot(pos + 1, 3);
      agent.observe(std::move(tr));
      ++pos;
    }
  }
  for (std::size_t s = 0; s < 3; ++s)
    EXPECT_EQ(agent.act_greedy(one_hot(s, 3), {}), 0) << "state " << s;
}

TEST(DqnAgent, SoftTargetUpdateSolvesBandit) {
  DqnConfig config = toy_config(2, 2);
  config.soft_target_tau = 0.01F;
  config.target_update_period = 0;
  DqnAgent agent(config);
  train_on_matching_bandit(agent, 2500);
  EXPECT_EQ(agent.act_greedy(one_hot(0, 2), {}), 0);
  EXPECT_EQ(agent.act_greedy(one_hot(1, 2), {}), 1);
}

/// Variant sweep: every DQN flavour must solve the contextual bandit.
struct DqnVariant {
  bool double_dqn;
  bool dueling;
  bool prioritized;
};

class DqnVariantSweep : public ::testing::TestWithParam<DqnVariant> {};

TEST_P(DqnVariantSweep, SolvesBandit) {
  const DqnVariant variant = GetParam();
  DqnConfig config = toy_config(2, 2);
  config.double_dqn = variant.double_dqn;
  config.dueling = variant.dueling;
  config.prioritized_replay = variant.prioritized;
  DqnAgent agent(config);
  train_on_matching_bandit(agent, 2500);
  EXPECT_EQ(agent.act_greedy(one_hot(0, 2), {}), 0);
  EXPECT_EQ(agent.act_greedy(one_hot(1, 2), {}), 1);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, DqnVariantSweep,
    ::testing::Values(DqnVariant{false, false, false}, DqnVariant{true, false, false},
                      DqnVariant{false, true, false}, DqnVariant{true, true, false},
                      DqnVariant{true, false, true}, DqnVariant{true, true, true}));

// ---- Actor view (parallel actor-learner split) -----------------------------

TEST(DqnActorView, GreedyMatchesLearnerPolicy) {
  DqnAgent agent(toy_config(2, 2));
  train_on_matching_bandit(agent, 800);
  const DqnActorView view(agent);
  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(view.act_greedy(one_hot(s, 2), {}), agent.act_greedy(one_hot(s, 2), {}))
        << "state " << s;
  }
}

TEST(DqnActorView, SnapshotsTheLearnerEpsilon) {
  DqnAgent agent(toy_config(2, 2));
  DqnActorView view(agent);
  EXPECT_DOUBLE_EQ(view.epsilon(), agent.epsilon());  // fresh: epsilon_start
  for (int i = 0; i < 500; ++i) (void)agent.act(one_hot(0, 2), {});
  EXPECT_GT(view.epsilon(), agent.epsilon());  // view froze the old rate
  view.sync(agent);
  EXPECT_DOUBLE_EQ(view.epsilon(), agent.epsilon());
  view.set_exploration_enabled(false);
  EXPECT_DOUBLE_EQ(view.epsilon(), 0.0);
}

TEST(DqnActorView, ReseedReproducesTheActionStream) {
  // At epsilon_start = 1.0 every action is an exploration draw, so the
  // stream is a pure function of the RNG seed.
  DqnAgent agent(toy_config(2, 4));
  DqnActorView view(agent);
  const auto state = one_hot(0, 2);
  auto draw = [&](std::uint64_t seed) {
    view.reseed(seed);
    std::vector<int> actions;
    for (int i = 0; i < 64; ++i) actions.push_back(view.act(state, {}));
    return actions;
  };
  const auto first = draw(5);
  const auto replay = draw(5);
  EXPECT_EQ(first, replay);
  EXPECT_NE(first, draw(6));
}

TEST(DqnActorView, SyncTracksLearnerWeights) {
  DqnAgent agent(toy_config(2, 2));
  DqnActorView view(agent);
  train_on_matching_bandit(agent, 2500);  // the view's snapshot goes stale
  view.sync(agent);
  for (std::size_t s = 0; s < 2; ++s)
    EXPECT_EQ(view.act_greedy(one_hot(s, 2), {}),
              agent.act_greedy(one_hot(s, 2), {}));
}

TEST(DqnActorView, RespectsActionMask) {
  DqnAgent agent(toy_config(2, 3));
  DqnActorView view(agent);
  view.reseed(3);
  const auto state = one_hot(0, 2);
  const std::vector<std::uint8_t> mask{0, 1, 0};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(view.act(state, mask), 1);
  EXPECT_EQ(view.act_greedy(state, mask), 1);
}

TEST(DqnAgent, IngestCountsStepsAndTrains) {
  DqnConfig config = toy_config(2, 2);
  config.min_replay_before_training = 16;
  config.train_period = 4;
  DqnAgent agent(config);
  Rng env_rng(3);
  for (int t = 0; t < 64; ++t) {
    const std::size_t context = env_rng.uniform_index(2);
    Transition tr;
    tr.state = one_hot(context, 2);
    tr.action = static_cast<int>(env_rng.uniform_index(2));
    tr.reward = tr.action == static_cast<int>(context) ? 1.0F : 0.0F;
    tr.next_state = one_hot(0, 2);
    tr.done = true;
    (void)agent.ingest(std::move(tr));
  }
  // The learner never acted, yet steps advanced once per ingested
  // transition and gradient steps ran on the train_period cadence.
  EXPECT_EQ(agent.steps(), 64u);
  EXPECT_GT(agent.gradient_steps(), 0u);
  EXPECT_EQ(agent.replay_size(), 64u);
}

}  // namespace
}  // namespace vnfm::rl
