#include "rl/policy_gradient.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace vnfm::rl {
namespace {

ReinforceConfig toy_config(std::size_t state_dim, std::size_t action_dim) {
  ReinforceConfig config;
  config.state_dim = state_dim;
  config.action_dim = action_dim;
  config.hidden_dims = {16};
  config.learning_rate = 5e-3F;
  config.gamma = 0.95F;
  config.entropy_bonus = 1e-3F;
  config.seed = 21;
  return config;
}

std::vector<float> one_hot(std::size_t i, std::size_t n) {
  std::vector<float> v(n, 0.0F);
  v[i] = 1.0F;
  return v;
}

TEST(ReinforceAgent, LearnsTwoArmedBandit) {
  ReinforceAgent agent(toy_config(1, 2));
  const std::vector<float> state{1.0F};
  for (int episode = 0; episode < 1500; ++episode) {
    const int action = agent.act(state, {});
    agent.record_reward(action == 1 ? 1.0F : 0.0F);
    agent.finish_episode();
  }
  const auto probs = agent.action_probabilities(state, {});
  EXPECT_GT(probs[1], 0.85F);
}

TEST(ReinforceAgent, LearnsContextDependentPolicy) {
  ReinforceAgent agent(toy_config(2, 2));
  Rng env_rng(5);
  for (int episode = 0; episode < 3000; ++episode) {
    const std::size_t context = env_rng.uniform_index(2);
    const auto state = one_hot(context, 2);
    const int action = agent.act(state, {});
    agent.record_reward(static_cast<std::size_t>(action) == context ? 1.0F : 0.0F);
    agent.finish_episode();
  }
  EXPECT_EQ(agent.act_greedy(one_hot(0, 2), {}), 0);
  EXPECT_EQ(agent.act_greedy(one_hot(1, 2), {}), 1);
}

TEST(ReinforceAgent, MaskedActionsNeverSampled) {
  ReinforceAgent agent(toy_config(1, 3));
  const std::vector<float> state{1.0F};
  const std::vector<std::uint8_t> mask{1, 0, 1};
  for (int i = 0; i < 200; ++i) {
    const int action = agent.act(state, mask);
    EXPECT_NE(action, 1);
    agent.record_reward(0.0F);
  }
  agent.finish_episode();
  const auto probs = agent.action_probabilities(state, mask);
  EXPECT_FLOAT_EQ(probs[1], 0.0F);
  EXPECT_NEAR(probs[0] + probs[2], 1.0F, 1e-5);
}

TEST(ReinforceAgent, ThrowsWithAllMasked) {
  ReinforceAgent agent(toy_config(1, 2));
  const std::vector<float> state{1.0F};
  const std::vector<std::uint8_t> mask{0, 0};
  EXPECT_THROW((void)agent.act(state, mask), std::runtime_error);
}

TEST(ReinforceAgent, RecordRewardBeforeActThrows) {
  ReinforceAgent agent(toy_config(1, 2));
  EXPECT_THROW(agent.record_reward(1.0F), std::runtime_error);
}

TEST(ReinforceAgent, FinishEpisodeReturnsDiscountedReturn) {
  ReinforceAgent agent(toy_config(1, 2));
  const std::vector<float> state{1.0F};
  (void)agent.act(state, {});
  agent.record_reward(1.0F);
  (void)agent.act(state, {});
  agent.record_reward(1.0F);
  const double ret = agent.finish_episode();
  EXPECT_NEAR(ret, 1.0 + 0.95, 1e-5);
  EXPECT_EQ(agent.trajectory_length(), 0u);  // trajectory cleared
}

TEST(ReinforceAgent, EmptyEpisodeIsNoop) {
  ReinforceAgent agent(toy_config(1, 2));
  EXPECT_DOUBLE_EQ(agent.finish_episode(), 0.0);
}

TEST(ReinforceAgent, ProbabilitiesSumToOne) {
  ReinforceAgent agent(toy_config(3, 4));
  const auto probs = agent.action_probabilities(one_hot(1, 3), {});
  float total = 0.0F;
  for (const float p : probs) {
    EXPECT_GE(p, 0.0F);
    total += p;
  }
  EXPECT_NEAR(total, 1.0F, 1e-5);
}

}  // namespace
}  // namespace vnfm::rl
