// Statistical and determinism gate for the generative fault processes
// (edgesim::FaultModel): empirical inter-failure/repair means must match the
// configured MTBF/MTTR, rack draws must move whole racks atomically, and
// streams must be a pure function of their seeds.
#include "edgesim/fault_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <set>
#include <vector>

namespace vnfm::edgesim {
namespace {

bool events_equal(const ScheduledEvent& a, const ScheduledEvent& b) {
  return std::memcmp(&a.time_s, &b.time_s, sizeof(a.time_s)) == 0 &&
         a.kind == b.kind && a.node == b.node &&
         std::memcmp(&a.factor, &b.factor, sizeof(a.factor)) == 0;
}

bool streams_equal(const std::vector<ScheduledEvent>& a,
                   const std::vector<ScheduledEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!events_equal(a[i], b[i])) return false;
  return true;
}

class FaultModelTest : public ::testing::Test {
 protected:
  Topology topo_ = make_world_topology({.node_count = 8});
  FaultContext context_{.seed = 42, .rack_size = 4};
};

// ---- Statistical properties -------------------------------------------------

TEST_F(FaultModelTest, EmpiricalUpAndDownTimesMatchMtbfAndMttr) {
  // Long horizon so every node cycles hundreds of times; the sample mean of
  // an Exp(mean m) over ~n draws concentrates within a few m/sqrt(n).
  const MtbfFaultOptions options{.mtbf_s = 4'000.0, .mttr_s = 500.0};
  MtbfFaultModel model(topo_, context_, options);
  const double horizon = 4'000.0 * 1'000.0;
  std::map<std::uint32_t, double> last_failure;
  std::map<std::uint32_t, double> last_recovery;
  double up_sum = 0.0, down_sum = 0.0;
  std::size_t up_n = 0, down_n = 0;
  while (model.next_time() <= horizon) {
    const ScheduledEvent event = model.pop();
    const auto node = index(event.node);
    if (event.kind == EventKind::kNodeFailure) {
      // Up-time: recovery (or t=0) -> failure.
      const auto it = last_recovery.find(node);
      up_sum += event.time_s - (it == last_recovery.end() ? 0.0 : it->second);
      ++up_n;
      last_failure[node] = event.time_s;
    } else {
      ASSERT_EQ(event.kind, EventKind::kNodeRecovery);
      down_sum += event.time_s - last_failure.at(node);
      ++down_n;
      last_recovery[node] = event.time_s;
    }
  }
  ASSERT_GT(up_n, 2'000U);
  ASSERT_GT(down_n, 2'000U);
  // ~8000 samples each: 5% tolerance is > 4 standard errors.
  EXPECT_NEAR(up_sum / static_cast<double>(up_n), options.mtbf_s,
              0.05 * options.mtbf_s);
  EXPECT_NEAR(down_sum / static_cast<double>(down_n), options.mttr_s,
              0.05 * options.mttr_s);
}

TEST_F(FaultModelTest, LinkFlapDownTimesAreBoundedAndMeanShrinks) {
  // With a cap well below the exponential mean, every observed down-time
  // must respect the cap and the empirical mean must land below the
  // uncapped mttr_s.
  const LinkFlapOptions options{
      .mtbf_s = 1'000.0, .mttr_s = 400.0, .down_cap_s = 300.0};
  LinkFlapModel model(topo_, context_, options);
  std::map<std::uint32_t, double> down_at;
  double down_sum = 0.0;
  std::size_t down_n = 0;
  while (model.next_time() <= 1'000.0 * 2'000.0) {
    const ScheduledEvent event = model.pop();
    const auto anchor = index(event.node);
    if (event.kind == EventKind::kLinkFailure) {
      down_at[anchor] = event.time_s;
    } else {
      ASSERT_EQ(event.kind, EventKind::kLinkRecovery);
      const double down = event.time_s - down_at.at(anchor);
      EXPECT_LE(down, options.down_cap_s + 1e-9);
      down_sum += down;
      ++down_n;
    }
  }
  ASSERT_GT(down_n, 1'000U);
  EXPECT_LT(down_sum / static_cast<double>(down_n), options.mttr_s);
  // E[min(Exp(400), 300)] = 400 * (1 - e^(-300/400)) ~ 211.
  EXPECT_NEAR(down_sum / static_cast<double>(down_n), 211.3, 15.0);
}

// ---- Rack correlation -------------------------------------------------------

TEST_F(FaultModelTest, RackDrawMovesEveryHostOfTheRackAtOneInstant) {
  RackFaultModel model(topo_, context_, {.mtbf_s = 2'000.0, .mttr_s = 400.0});
  ASSERT_EQ(model.rack_count(), 2U);  // 8 hosts / rack_size 4
  const auto events = drain_fault_stream(model, 2'000.0 * 200.0, 100'000);
  ASSERT_FALSE(events.empty());
  // Events of one rack transition are contiguous: same timestamp and kind,
  // hosts ascending and covering the rack exactly.
  for (std::size_t i = 0; i < events.size();) {
    const std::uint32_t anchor = index(events[i].node);
    const std::uint32_t rack = anchor / 4;
    EXPECT_EQ(anchor % 4, 0U) << "rack group must start at its anchor host";
    for (std::uint32_t h = 0; h < 4; ++h) {
      ASSERT_LT(i + h, events.size());
      EXPECT_EQ(index(events[i + h].node), rack * 4 + h);
      EXPECT_EQ(std::memcmp(&events[i + h].time_s, &events[i].time_s,
                            sizeof(double)),
                0)
          << "whole rack must transition at one instant";
      EXPECT_EQ(events[i + h].kind, events[i].kind);
    }
    i += 4;
  }
}

TEST_F(FaultModelTest, RackUplinkModeEmitsOneLinkEventPerTransition) {
  RackFaultModel model(topo_, context_,
                       {.mtbf_s = 2'000.0, .mttr_s = 400.0,
                        .mode = RackFaultMode::kUplinks});
  const auto events = drain_fault_stream(model, 2'000.0 * 100.0, 10'000);
  ASSERT_FALSE(events.empty());
  for (const ScheduledEvent& event : events) {
    EXPECT_TRUE(event.kind == EventKind::kLinkFailure ||
                event.kind == EventKind::kLinkRecovery);
    EXPECT_EQ(index(event.node) % 4, 0U) << "uplink events anchor at the rack head";
  }
}

TEST_F(FaultModelTest, RackSizeZeroInheritsTheFabricWidthFromContext) {
  FaultContext wide = context_;
  wide.rack_size = 8;
  RackFaultModel model(topo_, wide, {.rack_size = 0});
  EXPECT_EQ(model.rack_count(), 1U);
  RackFaultModel narrow(topo_, wide, {.rack_size = 2});
  EXPECT_EQ(narrow.rack_count(), 4U);
}

// ---- Seed determinism -------------------------------------------------------

TEST_F(FaultModelTest, IdenticalSeedsEmitByteIdenticalStreams) {
  const MtbfFaultOptions options{.mtbf_s = 900.0, .mttr_s = 200.0};
  MtbfFaultModel a(topo_, context_, options);
  MtbfFaultModel b(topo_, context_, options);
  EXPECT_TRUE(streams_equal(drain_fault_stream(a, 100'000.0, 5'000),
                            drain_fault_stream(b, 100'000.0, 5'000)));
}

TEST_F(FaultModelTest, DisjointSeedsEmitDistinctStreams) {
  const MtbfFaultOptions options{.mtbf_s = 900.0, .mttr_s = 200.0};
  MtbfFaultModel base(topo_, context_, options);
  FaultContext reseeded = context_;
  reseeded.seed = 43;
  MtbfFaultModel other_episode(topo_, reseeded, options);
  MtbfFaultOptions overlay = options;
  overlay.fault_seed = 1;
  MtbfFaultModel other_overlay(topo_, context_, overlay);
  const auto reference = drain_fault_stream(base, 100'000.0, 5'000);
  EXPECT_FALSE(
      streams_equal(reference, drain_fault_stream(other_episode, 100'000.0, 5'000)));
  EXPECT_FALSE(
      streams_equal(reference, drain_fault_stream(other_overlay, 100'000.0, 5'000)));
}

TEST_F(FaultModelTest, StreamsAreTimeOrderedWithDeterministicTieBreak) {
  MtbfFaultModel model(topo_, context_, {.mtbf_s = 500.0, .mttr_s = 100.0});
  const auto events = drain_fault_stream(model, 500.0 * 500.0, 50'000);
  ASSERT_GT(events.size(), 1'000U);
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LE(events[i - 1].time_s, events[i].time_s);
}

TEST_F(FaultModelTest, CompositeMergesChildrenInTimeOrder) {
  std::vector<std::unique_ptr<FaultModel>> children;
  children.push_back(std::make_unique<MtbfFaultModel>(
      topo_, context_, MtbfFaultOptions{.mtbf_s = 700.0, .mttr_s = 150.0}));
  children.push_back(std::make_unique<LinkFlapModel>(
      topo_, context_, LinkFlapOptions{.mtbf_s = 900.0, .mttr_s = 120.0}));
  CompositeFaultModel composite(std::move(children));
  EXPECT_EQ(composite.child_count(), 2U);
  const auto events = drain_fault_stream(composite, 700.0 * 100.0, 20'000);
  ASSERT_FALSE(events.empty());
  std::set<EventKind> kinds;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) EXPECT_LE(events[i - 1].time_s, events[i].time_s);
    kinds.insert(events[i].kind);
  }
  // Both processes must be represented in the merged stream.
  EXPECT_TRUE(kinds.count(EventKind::kNodeFailure) > 0);
  EXPECT_TRUE(kinds.count(EventKind::kLinkFailure) > 0);
}

TEST_F(FaultModelTest, FactoriesComposeAndRejectBadOptions) {
  const FaultModelFactory composed = compose_fault_factories(
      mtbf_fault_factory({.mtbf_s = 700.0}), link_flap_factory({.mtbf_s = 900.0}));
  const auto model = composed(topo_, context_);
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->name(), "composite(mtbf-faults+link-flaps)");
  // Empty halves collapse to the other side instead of wrapping.
  EXPECT_EQ(compose_fault_factories({}, {}), nullptr);
  const auto single = compose_fault_factories({}, mtbf_fault_factory({}))(topo_, context_);
  EXPECT_EQ(single->name(), "mtbf-faults");
  EXPECT_THROW(MtbfFaultModel(topo_, context_, {.mtbf_s = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(MtbfFaultModel(topo_, context_, {.mttr_s = -1.0}),
               std::invalid_argument);
  EXPECT_THROW(LinkFlapModel(topo_, context_, {.down_cap_s = 0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace vnfm::edgesim
