// WAN bandwidth substrate: inter-node chain hops consume each endpoint's
// WAN budget; intra-node hops and user access are free.
#include <gtest/gtest.h>

#include "edgesim/cluster.hpp"

namespace vnfm::edgesim {
namespace {

class BandwidthTest : public ::testing::Test {
 protected:
  BandwidthTest()
      : topo_(make_world_topology({.node_count = 3, .capacity_jitter = 0.0})),
        vnfs_(VnfCatalog::standard()),
        sfcs_(SfcCatalog::standard(vnfs_)),
        cluster_(topo_, vnfs_, sfcs_,
                 {.idle_timeout_s = 60.0, .wan_bandwidth_rps = 10.0}) {}

  Request make_request(const char* sfc_name, double rate) {
    Request r;
    r.id = RequestId{next_id_++};
    r.arrival_time = cluster_.now();
    r.source_region = NodeId{0};
    r.sfc = sfcs_.by_name(sfc_name).id;
    r.rate_rps = rate;
    r.duration_s = 1000.0;
    return r;
  }

  Topology topo_;
  VnfCatalog vnfs_;
  SfcCatalog sfcs_;
  ClusterState cluster_;
  std::uint64_t next_id_ = 0;
};

TEST_F(BandwidthTest, IntraNodeHopsAreFree) {
  const Request r = make_request("web", 4.0);
  cluster_.start_chain(r);
  while (!cluster_.pending_complete()) cluster_.place_next(NodeId{0});
  (void)cluster_.commit_chain();
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(cluster_.wan_used_rps(NodeId{static_cast<std::uint32_t>(i)}), 0.0);
}

TEST_F(BandwidthTest, InterNodeHopChargesBothEndpoints) {
  const Request r = make_request("voip", 4.0);  // nat -> firewall
  cluster_.start_chain(r);
  cluster_.place_next(NodeId{0});
  cluster_.place_next(NodeId{1});
  (void)cluster_.commit_chain();
  EXPECT_DOUBLE_EQ(cluster_.wan_used_rps(NodeId{0}), 4.0);
  EXPECT_DOUBLE_EQ(cluster_.wan_used_rps(NodeId{1}), 4.0);
  EXPECT_DOUBLE_EQ(cluster_.wan_used_rps(NodeId{2}), 0.0);
}

TEST_F(BandwidthTest, CanLinkRespectsBudget) {
  EXPECT_TRUE(cluster_.can_link(NodeId{0}, NodeId{1}, 10.0));
  EXPECT_FALSE(cluster_.can_link(NodeId{0}, NodeId{1}, 10.1));
  EXPECT_TRUE(cluster_.can_link(NodeId{0}, NodeId{0}, 1e9));  // intra free
}

TEST_F(BandwidthTest, PlaceNextThrowsBeyondBudget) {
  // First chain consumes 8 of the 10 units between nodes 0 and 1.
  const Request r1 = make_request("voip", 8.0);
  cluster_.start_chain(r1);
  cluster_.place_next(NodeId{0});
  cluster_.place_next(NodeId{1});
  (void)cluster_.commit_chain();
  // Second chain needs 4 more units on the same hop: must be refused.
  const Request r2 = make_request("voip", 4.0);
  cluster_.start_chain(r2);
  cluster_.place_next(NodeId{0});
  EXPECT_FALSE(cluster_.can_link(NodeId{0}, NodeId{1}, 4.0));
  EXPECT_THROW(cluster_.place_next(NodeId{1}), std::runtime_error);
  // Routing within node 0 still works.
  cluster_.place_next(NodeId{0});
  (void)cluster_.commit_chain();
}

TEST_F(BandwidthTest, AbortAndExpiryReleaseBandwidth) {
  const Request r = make_request("voip", 6.0);
  cluster_.start_chain(r);
  cluster_.place_next(NodeId{0});
  cluster_.place_next(NodeId{1});
  cluster_.abort_chain();
  EXPECT_DOUBLE_EQ(cluster_.wan_used_rps(NodeId{0}), 0.0);
  EXPECT_DOUBLE_EQ(cluster_.wan_used_rps(NodeId{1}), 0.0);

  const Request r2 = make_request("voip", 6.0);
  cluster_.start_chain(r2);
  cluster_.place_next(NodeId{0});
  cluster_.place_next(NodeId{1});
  (void)cluster_.commit_chain();
  cluster_.advance_to(2000.0);  // chain expires
  EXPECT_DOUBLE_EQ(cluster_.wan_used_rps(NodeId{0}), 0.0);
  EXPECT_DOUBLE_EQ(cluster_.wan_used_rps(NodeId{1}), 0.0);
}

TEST_F(BandwidthTest, MigrationReroutesBandwidth) {
  const Request r = make_request("voip", 5.0);
  cluster_.start_chain(r);
  cluster_.place_next(NodeId{0});
  cluster_.place_next(NodeId{1});
  (void)cluster_.commit_chain();
  // Move the firewall (position 1) from node 1 to node 2.
  (void)cluster_.migrate_chain_vnf(r.id, 1, NodeId{2});
  EXPECT_DOUBLE_EQ(cluster_.wan_used_rps(NodeId{0}), 5.0);
  EXPECT_DOUBLE_EQ(cluster_.wan_used_rps(NodeId{1}), 0.0);
  EXPECT_DOUBLE_EQ(cluster_.wan_used_rps(NodeId{2}), 5.0);
}

TEST_F(BandwidthTest, MigrationBeyondBudgetThrows) {
  // Saturate node 2's WAN budget with a 0->2 chain.
  const Request r1 = make_request("voip", 8.0);
  cluster_.start_chain(r1);
  cluster_.place_next(NodeId{0});
  cluster_.place_next(NodeId{2});
  (void)cluster_.commit_chain();
  // A second chain placed entirely on node 1 (no WAN use). Moving its
  // firewall to node 2 would create a 1->2 hop of 5 units, but node 2 only
  // has 2 units of budget left.
  const Request r2 = make_request("voip", 5.0);
  cluster_.start_chain(r2);
  cluster_.place_next(NodeId{1});
  cluster_.place_next(NodeId{1});
  (void)cluster_.commit_chain();
  EXPECT_THROW((void)cluster_.migrate_chain_vnf(r2.id, 1, NodeId{2}),
               std::runtime_error);
}

TEST_F(BandwidthTest, DefaultBudgetIsUnlimited) {
  ClusterState unlimited(topo_, vnfs_, sfcs_, {});
  EXPECT_TRUE(unlimited.can_link(NodeId{0}, NodeId{1}, 1e12));
}

}  // namespace
}  // namespace vnfm::edgesim
