#include "edgesim/types.hpp"

#include <gtest/gtest.h>

namespace vnfm::edgesim {
namespace {

TEST(Haversine, ZeroForSamePoint) {
  const GeoPoint p{40.0, -74.0};
  EXPECT_NEAR(haversine_km(p, p), 0.0, 1e-9);
}

TEST(Haversine, KnownDistances) {
  const GeoPoint new_york{40.71, -74.01};
  const GeoPoint london{51.51, -0.13};
  // Great-circle NYC-London is ~5570 km.
  EXPECT_NEAR(haversine_km(new_york, london), 5570.0, 60.0);

  const GeoPoint tokyo{35.68, 139.69};
  const GeoPoint sydney{-33.87, 151.21};
  // Tokyo-Sydney is ~7820 km.
  EXPECT_NEAR(haversine_km(tokyo, sydney), 7820.0, 100.0);
}

TEST(Haversine, Symmetric) {
  const GeoPoint a{10.0, 20.0};
  const GeoPoint b{-30.0, 140.0};
  EXPECT_DOUBLE_EQ(haversine_km(a, b), haversine_km(b, a));
}

TEST(Haversine, AntipodalIsHalfCircumference) {
  const GeoPoint a{0.0, 0.0};
  const GeoPoint b{0.0, 180.0};
  EXPECT_NEAR(haversine_km(a, b), 6371.0 * 3.14159265, 10.0);
}

TEST(Ids, IndexRoundTrip) {
  const NodeId node{7};
  EXPECT_EQ(index(node), 7u);
  const VnfTypeId vnf{3};
  EXPECT_EQ(index(vnf), 3u);
  const RequestId req{123456789ULL};
  EXPECT_EQ(index(req), 123456789ULL);
}

TEST(Ids, StrongTypesAreDistinct) {
  // Compile-time property: NodeId and VnfTypeId cannot be mixed. This test
  // documents the intent; the static_asserts are the real check.
  static_assert(!std::is_convertible_v<NodeId, VnfTypeId>);
  static_assert(!std::is_convertible_v<std::uint32_t, NodeId>);
  SUCCEED();
}

TEST(Ids, InstanceIdHashable) {
  std::hash<InstanceId> hasher;
  EXPECT_NE(hasher(InstanceId{1}), hasher(InstanceId{2}));
}

}  // namespace
}  // namespace vnfm::edgesim
