#include "edgesim/events.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "edgesim/cluster.hpp"
#include "edgesim/metrics.hpp"

namespace vnfm::edgesim {
namespace {

TEST(MetricsInterruption, KilledChainsAreChargedTheSlaPenalty) {
  CostModel cost;
  cost.w_sla_violation = 5.0;
  MetricsCollector metrics(cost);
  const double before = metrics.total_cost();
  metrics.on_chains_killed(3);
  EXPECT_EQ(metrics.chains_killed(), 3U);
  EXPECT_DOUBLE_EQ(metrics.total_cost() - before, 15.0);
  metrics.on_chains_killed(0);  // no-op
  EXPECT_EQ(metrics.chains_killed(), 3U);
}

TEST(EventSchedule, KeepsEventsSortedByTime) {
  EventSchedule schedule;
  schedule.fail_node(300.0, NodeId{1})
      .recover_node(600.0, NodeId{1})
      .scale_capacity(100.0, NodeId{0}, 0.5);
  ASSERT_EQ(schedule.size(), 3U);
  EXPECT_DOUBLE_EQ(schedule.events()[0].time_s, 100.0);
  EXPECT_DOUBLE_EQ(schedule.events()[1].time_s, 300.0);
  EXPECT_DOUBLE_EQ(schedule.events()[2].time_s, 600.0);
}

TEST(EventSchedule, TiesKeepInsertionOrder) {
  EventSchedule schedule;
  schedule.fail_node(100.0, NodeId{0}).recover_node(100.0, NodeId{1});
  ASSERT_EQ(schedule.size(), 2U);
  EXPECT_EQ(schedule.events()[0].kind, EventKind::kNodeFailure);
  EXPECT_EQ(schedule.events()[1].kind, EventKind::kNodeRecovery);
}

TEST(EventSchedule, MergeCombinesSchedulesInTimeOrder) {
  EventSchedule a;
  a.fail_node(500.0, NodeId{0});
  EventSchedule b;
  b.scale_capacity(200.0, NodeId{1}, 0.5).recover_node(900.0, NodeId{0});
  a.merge(b);
  ASSERT_EQ(a.size(), 3U);
  EXPECT_DOUBLE_EQ(a.events()[0].time_s, 200.0);
  EXPECT_DOUBLE_EQ(a.events()[2].time_s, 900.0);
}

TEST(EventSchedule, RejectsInvalidEvents) {
  EventSchedule schedule;
  EXPECT_THROW(schedule.fail_node(-1.0, NodeId{0}), std::invalid_argument);
  EXPECT_THROW(schedule.scale_capacity(10.0, NodeId{0}, 0.0), std::invalid_argument);
  EXPECT_THROW(schedule.scale_capacity(10.0, NodeId{0},
                                       std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

class ClusterFaultTest : public ::testing::Test {
 protected:
  ClusterFaultTest()
      : topo_(make_world_topology({.node_count = 4, .cpu_capacity_mean = 32.0,
                                   .capacity_jitter = 0.0})),
        vnfs_(VnfCatalog::standard()),
        sfcs_(SfcCatalog::standard(vnfs_)),
        cluster_(topo_, vnfs_, sfcs_, {.idle_timeout_s = 60.0}) {}

  Request make_request(const char* sfc_name, double rate = 2.0, double duration = 100.0,
                       std::uint32_t region = 0) {
    Request r;
    r.id = RequestId{next_id_++};
    r.arrival_time = cluster_.now();
    r.source_region = NodeId{region};
    r.sfc = sfcs_.by_name(sfc_name).id;
    r.rate_rps = rate;
    r.duration_s = duration;
    return r;
  }

  ChainPlacement place_chain_on(const Request& r, NodeId node) {
    cluster_.start_chain(r);
    while (!cluster_.pending_complete()) cluster_.place_next(node);
    return cluster_.commit_chain();
  }

  Topology topo_;
  VnfCatalog vnfs_;
  SfcCatalog sfcs_;
  ClusterState cluster_;
  std::uint64_t next_id_ = 0;
};

TEST_F(ClusterFaultTest, FailNodeKillsItsChainsAndReleasesInstances) {
  place_chain_on(make_request("voip"), NodeId{0});
  place_chain_on(make_request("voip"), NodeId{1});
  ASSERT_EQ(cluster_.active_chain_count(), 2U);
  const std::size_t instances_before = cluster_.total_instance_count();

  const std::size_t killed = cluster_.fail_node(NodeId{0});
  EXPECT_EQ(killed, 1U);
  EXPECT_EQ(cluster_.chains_killed(), 1U);
  EXPECT_TRUE(cluster_.node_failed(NodeId{0}));
  EXPECT_EQ(cluster_.active_chain_count(), 1U);  // node 1's chain survives
  EXPECT_LT(cluster_.total_instance_count(), instances_before);
  EXPECT_DOUBLE_EQ(cluster_.cpu_used(NodeId{0}), 0.0);
  EXPECT_DOUBLE_EQ(cluster_.mem_used(NodeId{0}), 0.0);

  // Failed nodes accept nothing.
  const auto nat = vnfs_.by_name("nat").id;
  EXPECT_FALSE(cluster_.can_deploy(NodeId{0}, nat));
  EXPECT_FALSE(cluster_.can_serve(NodeId{0}, nat, 1.0));
  EXPECT_TRUE(std::isinf(cluster_.estimated_proc_delay_ms(NodeId{0}, nat, 1.0)));

  // Repeating the failure is a no-op.
  EXPECT_EQ(cluster_.fail_node(NodeId{0}), 0U);
  EXPECT_EQ(cluster_.chains_killed(), 1U);
}

TEST_F(ClusterFaultTest, FailNodeKillsMultiNodeChainsCrossingIt) {
  const Request r = make_request("voip", 2.0, 100.0, 0);
  cluster_.start_chain(r);
  cluster_.place_next(NodeId{0});
  cluster_.place_next(NodeId{1});
  (void)cluster_.commit_chain();
  ASSERT_EQ(cluster_.active_chain_count(), 1U);

  // Failing node 1 kills the chain and releases node 0's load too.
  EXPECT_EQ(cluster_.fail_node(NodeId{1}), 1U);
  EXPECT_EQ(cluster_.active_chain_count(), 0U);
  // Node 0 survives with an idle instance (released later by GC).
  EXPECT_FALSE(cluster_.node_failed(NodeId{0}));
  EXPECT_TRUE(cluster_.can_serve(NodeId{0}, vnfs_.by_name("nat").id, 1.0));
}

TEST_F(ClusterFaultTest, RecoveryMakesTheNodeDeployableAgain) {
  place_chain_on(make_request("voip"), NodeId{0});
  cluster_.fail_node(NodeId{0});
  const auto nat = vnfs_.by_name("nat").id;
  ASSERT_FALSE(cluster_.can_deploy(NodeId{0}, nat));

  cluster_.recover_node(NodeId{0});
  EXPECT_FALSE(cluster_.node_failed(NodeId{0}));
  EXPECT_TRUE(cluster_.can_deploy(NodeId{0}, nat));
  EXPECT_EQ(cluster_.total_instance_count(), 0U);  // recovered empty
  place_chain_on(make_request("voip"), NodeId{0});
  EXPECT_EQ(cluster_.active_chain_count(), 1U);
}

TEST_F(ClusterFaultTest, CapacityScaleLimitsDeploymentsWithoutEvicting) {
  place_chain_on(make_request("voip"), NodeId{0});
  const double used = cluster_.cpu_used(NodeId{0});
  ASSERT_GT(used, 0.0);

  // Scale the node down to exactly what is in use: nothing new fits.
  cluster_.set_capacity_scale(NodeId{0}, used / topo_.node(NodeId{0}).cpu_capacity);
  EXPECT_DOUBLE_EQ(cluster_.effective_cpu_capacity(NodeId{0}), used);
  EXPECT_FALSE(cluster_.can_deploy(NodeId{0}, vnfs_.by_name("ids").id));
  EXPECT_EQ(cluster_.active_chain_count(), 1U);  // nothing evicted
  EXPECT_NEAR(cluster_.cpu_utilization(NodeId{0}), 1.0, 1e-12);

  // Restoring nominal capacity re-opens the node.
  cluster_.set_capacity_scale(NodeId{0}, 1.0);
  EXPECT_TRUE(cluster_.can_deploy(NodeId{0}, vnfs_.by_name("ids").id));
  EXPECT_THROW(cluster_.set_capacity_scale(NodeId{0}, -0.5), std::invalid_argument);
}

}  // namespace
}  // namespace vnfm::edgesim
