#include <gtest/gtest.h>

#include "edgesim/cluster.hpp"

namespace vnfm::edgesim {
namespace {

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest()
      : topo_(make_world_topology({.node_count = 4, .capacity_jitter = 0.0})),
        vnfs_(VnfCatalog::standard()),
        sfcs_(SfcCatalog::standard(vnfs_)),
        cluster_(topo_, vnfs_, sfcs_, {.idle_timeout_s = 60.0}) {}

  Request make_request(const char* sfc_name, double rate = 2.0, double duration = 500.0,
                       std::uint32_t region = 0) {
    Request r;
    r.id = RequestId{next_id_++};
    r.arrival_time = cluster_.now();
    r.source_region = NodeId{region};
    r.sfc = sfcs_.by_name(sfc_name).id;
    r.rate_rps = rate;
    r.duration_s = duration;
    return r;
  }

  ChainPlacement place_chain_on(const Request& r, NodeId node) {
    cluster_.start_chain(r);
    while (!cluster_.pending_complete()) cluster_.place_next(node);
    return cluster_.commit_chain();
  }

  Topology topo_;
  VnfCatalog vnfs_;
  SfcCatalog sfcs_;
  ClusterState cluster_;
  std::uint64_t next_id_ = 0;
};

TEST_F(MigrationTest, MigrationMovesLoadBetweenNodes) {
  const Request r = make_request("voip");
  place_chain_on(r, NodeId{3});  // sydney: far from the NYC user
  // Seed a reusable NAT instance on the local node.
  const auto nat = vnfs_.by_name("nat").id;
  cluster_.deploy_pinned(NodeId{0}, nat);
  const double cpu_before_src = cluster_.cpu_used(NodeId{3});

  const auto result = cluster_.migrate_chain_vnf(r.id, 0, NodeId{0});
  EXPECT_FALSE(result.deployed_new);  // reused the pinned instance
  EXPECT_LT(result.new_latency_ms, result.old_latency_ms);
  EXPECT_EQ(cluster_.total_migrations(), 1u);
  // Source node keeps the (now idle) instance until GC, but its NAT load
  // is gone: another full-capacity flow fits again.
  EXPECT_DOUBLE_EQ(cluster_.cpu_used(NodeId{3}), cpu_before_src);
  EXPECT_NEAR(cluster_.residual_capacity_rps(NodeId{3}, nat),
              vnfs_.by_name("nat").capacity_rps * 0.95, 1e-9);
}

TEST_F(MigrationTest, MigrationUpdatesChainRecord) {
  const Request r = make_request("voip");
  place_chain_on(r, NodeId{2});
  (void)cluster_.migrate_chain_vnf(r.id, 1, NodeId{0});
  const auto& chain = cluster_.active_chains().at(r.id);
  EXPECT_EQ(index(chain.nodes[1]), 0u);
  EXPECT_EQ(index(chain.nodes[0]), 2u);
}

TEST_F(MigrationTest, MigrationCanDeployWhenNoReuse) {
  const Request r = make_request("voip");
  place_chain_on(r, NodeId{1});
  const auto deployments_before = cluster_.total_deployments();
  const auto result = cluster_.migrate_chain_vnf(r.id, 0, NodeId{0});
  EXPECT_TRUE(result.deployed_new);
  EXPECT_EQ(cluster_.total_deployments(), deployments_before + 1);
}

TEST_F(MigrationTest, IdleSourceInstanceIsEventuallyCollected) {
  const Request r = make_request("voip", 2.0, /*duration=*/1000.0);
  place_chain_on(r, NodeId{1});
  (void)cluster_.migrate_chain_vnf(r.id, 0, NodeId{0});
  (void)cluster_.migrate_chain_vnf(r.id, 1, NodeId{0});
  EXPECT_GT(cluster_.total_instance_count(), 2u);  // old + new instances
  cluster_.advance_to(100.0);                       // > idle timeout
  // Only the two serving instances on node 0 remain.
  EXPECT_EQ(cluster_.total_instance_count(), 2u);
  EXPECT_DOUBLE_EQ(cluster_.cpu_used(NodeId{1}), 0.0);
}

TEST_F(MigrationTest, RecomputeMatchesCommitSnapshotAtAdmission) {
  const Request r = make_request("web");
  const ChainPlacement placement = place_chain_on(r, NodeId{0});
  const double recomputed = cluster_.recompute_chain_latency(placement);
  EXPECT_NEAR(recomputed, placement.latency_ms, 1e-9);
}

TEST_F(MigrationTest, MigrationValidation) {
  const Request r = make_request("voip");
  place_chain_on(r, NodeId{0});
  EXPECT_THROW((void)cluster_.migrate_chain_vnf(RequestId{999}, 0, NodeId{1}),
               std::out_of_range);
  EXPECT_THROW((void)cluster_.migrate_chain_vnf(r.id, 5, NodeId{1}), std::out_of_range);
  EXPECT_THROW((void)cluster_.migrate_chain_vnf(r.id, 0, NodeId{0}),
               std::invalid_argument);  // same node
}

TEST_F(MigrationTest, MigrationToFullNodeThrows) {
  const Request r = make_request("voip");
  place_chain_on(r, NodeId{0});
  // Saturate node 1 completely with IDS instances.
  const auto ids = vnfs_.by_name("ids").id;
  while (cluster_.can_deploy(NodeId{1}, ids)) cluster_.deploy_pinned(NodeId{1}, ids);
  EXPECT_THROW((void)cluster_.migrate_chain_vnf(r.id, 0, NodeId{1}), std::runtime_error);
}

TEST_F(MigrationTest, ExpiryAfterMigrationReleasesNewAssignment) {
  const Request r = make_request("voip", 2.0, /*duration=*/50.0);
  place_chain_on(r, NodeId{1});
  (void)cluster_.migrate_chain_vnf(r.id, 0, NodeId{0});
  cluster_.advance_to(200.0);  // chain expired + idle GC everywhere
  EXPECT_EQ(cluster_.total_instance_count(), 0u);
  EXPECT_DOUBLE_EQ(cluster_.cpu_used(NodeId{0}), 0.0);
  EXPECT_DOUBLE_EQ(cluster_.cpu_used(NodeId{1}), 0.0);
}

}  // namespace
}  // namespace vnfm::edgesim
