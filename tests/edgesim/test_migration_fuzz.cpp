// Property fuzz: interleave placements, expiries, and random migrations and
// assert the cluster's resource-accounting invariants never break.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "edgesim/cluster.hpp"

namespace vnfm::edgesim {
namespace {

class MigrationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MigrationFuzz, InvariantsHoldUnderRandomMigrations) {
  const std::uint64_t seed = GetParam();
  Topology topo = make_world_topology({.node_count = 5, .capacity_jitter = 0.0});
  VnfCatalog vnfs = VnfCatalog::standard();
  SfcCatalog sfcs = SfcCatalog::standard(vnfs);
  ClusterState cluster(topo, vnfs, sfcs, {.idle_timeout_s = 90.0});
  PoissonDiurnalModel gen(topo, sfcs, {.global_arrival_rate = 2.0, .seed = seed});
  Rng rng(seed * 31 + 1);

  SimTime now = 0.0;
  std::vector<RequestId> live;
  for (int iteration = 0; iteration < 300; ++iteration) {
    Request r = gen.next(now);
    now = r.arrival_time;
    cluster.advance_to(now);

    // Place the chain on random feasible nodes.
    cluster.start_chain(r);
    bool ok = true;
    while (ok && !cluster.pending_complete()) {
      std::vector<NodeId> feasible;
      for (const auto& node : topo.nodes())
        if (cluster.can_serve(node.id, cluster.pending_vnf_type(), r.rate_rps))
          feasible.push_back(node.id);
      if (feasible.empty()) {
        ok = false;
        break;
      }
      cluster.place_next(feasible[rng.uniform_index(feasible.size())]);
    }
    if (ok) {
      (void)cluster.commit_chain();
      live.push_back(r.id);
    } else {
      cluster.abort_chain();
    }

    // Random migration attempt on a random live chain.
    if (!cluster.active_chains().empty() && rng.bernoulli(0.5)) {
      const auto& chains = cluster.active_chains();
      auto it = chains.begin();
      std::advance(it, static_cast<long>(rng.uniform_index(chains.size())));
      const ChainPlacement chain = it->second;
      const auto position = rng.uniform_index(chain.nodes.size());
      const NodeId target{static_cast<std::uint32_t>(rng.uniform_index(topo.node_count()))};
      if (target != chain.nodes[position] &&
          cluster.can_serve(target, cluster.instance(chain.instances[position]).type,
                            chain.rate_rps)) {
        const auto result = cluster.migrate_chain_vnf(it->first, position, target);
        // Migration must re-snapshot the chain's latency consistently.
        const auto& migrated = cluster.active_chains().at(it->first);
        ASSERT_NEAR(result.new_latency_ms, migrated.latency_ms, 1e-9);
        ASSERT_NEAR(cluster.recompute_chain_latency(migrated), migrated.latency_ms,
                    1e-6);
      }
    }

    // Invariants: per-node CPU equals the sum over live instances and never
    // exceeds capacity.
    for (const auto& node : topo.nodes()) {
      double cpu = 0.0;
      for (const auto& vnf : vnfs.all())
        cpu += static_cast<double>(cluster.instance_count(node.id, vnf.id)) *
               vnf.cpu_units;
      ASSERT_NEAR(cluster.cpu_used(node.id), cpu, 1e-9);
      ASSERT_LE(cluster.cpu_used(node.id), node.cpu_capacity + 1e-9);
    }
  }
  // Drain everything; the system must return to empty.
  cluster.advance_to(now + 1e7);
  EXPECT_EQ(cluster.total_instance_count(), 0u);
  EXPECT_EQ(cluster.active_chain_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrationFuzz, ::testing::Values(1, 7, 42, 1337));

}  // namespace
}  // namespace vnfm::edgesim
