// Round-trip of the trace-recording hook: any composed workload's request
// stream, dumped to CSV by TraceRecordingModel (or the REPRO_TRACE_DUMP
// environment variable at the environment level), must replay verbatim
// through TraceReplayModel.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/environment.hpp"
#include "edgesim/topology.hpp"
#include "edgesim/vnf.hpp"
#include "edgesim/workload_model.hpp"
#include "exp/scenario.hpp"

namespace vnfm::edgesim {
namespace {

struct World {
  World() : topology(make_world_topology({})), vnfs(VnfCatalog::standard()),
            sfcs(SfcCatalog::standard(vnfs)) {}
  Topology topology;
  VnfCatalog vnfs;
  SfcCatalog sfcs;
};

TEST(HotspotOverlay, BoostsExactlyOneRegionDuringItsWindow) {
  World world;
  WorkloadOptions options;
  options.seed = 7;
  HotspotOptions hotspot;
  hotspot.region = 2;
  hotspot.magnitude = 6.0;
  hotspot.start_s = 100.0;
  hotspot.duration_s = 50.0;
  HotspotOverlay overlay(
      world.topology, world.sfcs, options,
      std::make_unique<PoissonDiurnalModel>(world.topology, world.sfcs, options),
      hotspot);
  EXPECT_EQ(overlay.name(), "incast(poisson-diurnal)");
  EXPECT_EQ(overlay.hotspot_region(), NodeId{2});
  const double base_in = overlay.inner().region_rate(NodeId{2}, 120.0);
  const double base_out = overlay.inner().region_rate(NodeId{3}, 120.0);
  EXPECT_DOUBLE_EQ(overlay.region_rate(NodeId{2}, 120.0), base_in * 6.0);
  EXPECT_DOUBLE_EQ(overlay.region_rate(NodeId{3}, 120.0), base_out);  // other region
  EXPECT_DOUBLE_EQ(overlay.region_rate(NodeId{2}, 99.0),
                   overlay.inner().region_rate(NodeId{2}, 99.0));  // before window
  EXPECT_DOUBLE_EQ(overlay.region_rate(NodeId{2}, 150.0),
                   overlay.inner().region_rate(NodeId{2}, 150.0));  // after window
  EXPECT_GE(overlay.peak_total_rate(), overlay.inner().peak_total_rate());
}

TEST(TraceRecording, StreamIsUnchangedAndReplaysVerbatim) {
  World world;
  WorkloadOptions options;
  options.seed = 42;

  // Reference stream: the bare model.
  PoissonDiurnalModel reference(world.topology, world.sfcs, options);
  std::vector<Request> expected;
  double t = 0.0;
  for (int i = 0; i < 40; ++i) {
    expected.push_back(reference.next(t));
    t = expected.back().arrival_time;
  }

  // Recorded stream: identical model wrapped in the recorder.
  const std::string path = ::testing::TempDir() + "trace_roundtrip.csv";
  TraceRecordingModel recorder(
      std::make_unique<PoissonDiurnalModel>(world.topology, world.sfcs, options), path);
  EXPECT_EQ(recorder.name(), "trace-recording(poisson-diurnal)");
  t = 0.0;
  for (const Request& want : expected) {
    const Request got = recorder.next(t);
    EXPECT_EQ(got.arrival_time, want.arrival_time);  // recording never perturbs
    EXPECT_EQ(got.source_region, want.source_region);
    EXPECT_EQ(got.rate_rps, want.rate_rps);
    t = got.arrival_time;
  }
  EXPECT_EQ(recorder.rows_recorded(), expected.size());

  // Replay: loop 0 of TraceReplayModel must reproduce every field bit-exactly
  // (the recorder writes round-trip-precision doubles).
  auto trace = std::make_shared<const std::vector<TraceRow>>(
      TraceReplayModel::load(path));
  ASSERT_EQ(trace->size(), expected.size());
  TraceReplayModel replay(world.topology, world.sfcs, options, trace);
  t = 0.0;
  for (const Request& want : expected) {
    const Request got = replay.next(t);
    EXPECT_EQ(got.arrival_time, want.arrival_time);
    EXPECT_EQ(got.source_region, want.source_region);
    EXPECT_EQ(got.sfc, want.sfc);
    EXPECT_EQ(got.rate_rps, want.rate_rps);
    EXPECT_EQ(got.duration_s, want.duration_s);
    t = got.arrival_time;
  }
  EXPECT_EQ(replay.loops_completed(), 0U);

  // Cloning drops the recorder (documented: cloned streams would interleave
  // rows non-deterministically in one file).
  EXPECT_EQ(recorder.clone()->name(), "poisson-diurnal");
}

TEST(TraceRecording, EnvDumpHookCapturesAComposedScenario) {
  const std::string path = ::testing::TempDir() + "trace_env_dump.csv";
  ASSERT_EQ(setenv("REPRO_TRACE_DUMP", path.c_str(), 1), 0);
  std::size_t requests_seen = 0;
  std::vector<double> arrivals;
  {
    core::VnfEnv env(
        exp::ScenarioCatalog::instance().build("geo-distributed+incast", Config{}));
    env.reset(11);
    EXPECT_EQ(env.workload().name(), "trace-recording(incast(poisson-diurnal))");
    for (int r = 0; r < 25; ++r) {
      ASSERT_TRUE(env.begin_next_request());
      ++requests_seen;
      arrivals.push_back(env.pending_request().arrival_time);
      while (env.has_pending_chain()) (void)env.step(env.reject_action());
    }
  }
  ASSERT_EQ(unsetenv("REPRO_TRACE_DUMP"), 0);

  const std::vector<TraceRow> trace = TraceReplayModel::load(path);
  ASSERT_EQ(trace.size(), requests_seen);
  for (std::size_t i = 0; i < trace.size(); ++i)
    EXPECT_EQ(trace[i].offset_s, arrivals[i]);
}

}  // namespace
}  // namespace vnfm::edgesim
