#include "edgesim/workload.hpp"

#include <gtest/gtest.h>

#include <map>

namespace vnfm::edgesim {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  Topology topo_ = make_world_topology({.node_count = 6});
  VnfCatalog vnfs_ = VnfCatalog::standard();
  SfcCatalog sfcs_ = SfcCatalog::standard(vnfs_);
};

TEST_F(WorkloadTest, ArrivalsAreStrictlyOrdered) {
  PoissonDiurnalModel gen(topo_, sfcs_, {.global_arrival_rate = 5.0, .seed = 1});
  SimTime now = 0.0;
  for (int i = 0; i < 500; ++i) {
    const Request r = gen.next(now);
    EXPECT_GT(r.arrival_time, now);
    now = r.arrival_time;
  }
}

TEST_F(WorkloadTest, RequestIdsMonotone) {
  PoissonDiurnalModel gen(topo_, sfcs_, {.global_arrival_rate = 5.0, .seed = 2});
  SimTime now = 0.0;
  std::uint64_t prev = 0;
  for (int i = 0; i < 100; ++i) {
    const Request r = gen.next(now);
    now = r.arrival_time;
    if (i > 0) { EXPECT_EQ(index(r.id), prev + 1); }
    prev = index(r.id);
  }
}

TEST_F(WorkloadTest, MeanArrivalRateMatchesConfig) {
  const double rate = 4.0;
  PoissonDiurnalModel gen(topo_, sfcs_,
                        {.global_arrival_rate = rate, .diurnal_enabled = false, .seed = 3});
  SimTime now = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) now = gen.next(now).arrival_time;
  EXPECT_NEAR(n / now, rate, rate * 0.05);
}

TEST_F(WorkloadTest, RegionSharesFollowTrafficWeights) {
  PoissonDiurnalModel gen(topo_, sfcs_,
                        {.global_arrival_rate = 10.0, .diurnal_enabled = false, .seed = 4});
  std::map<std::uint32_t, int> counts;
  SimTime now = 0.0;
  const int n = 30'000;
  for (int i = 0; i < n; ++i) {
    const Request r = gen.next(now);
    now = r.arrival_time;
    ++counts[index(r.source_region)];
  }
  const double total_weight = topo_.total_traffic_weight();
  for (const auto& node : topo_.nodes()) {
    const double expected = node.traffic_weight / total_weight;
    const double actual = counts[index(node.id)] / static_cast<double>(n);
    EXPECT_NEAR(actual, expected, 0.02) << node.name;
  }
}

TEST_F(WorkloadTest, DiurnalRateOscillates) {
  PoissonDiurnalModel gen(topo_, sfcs_,
                        {.global_arrival_rate = 10.0, .diurnal_amplitude = 0.8, .seed = 5});
  const NodeId nyc{0};
  double min_rate = 1e18, max_rate = 0.0;
  for (int hour = 0; hour < 24; ++hour) {
    const double r = gen.region_rate(nyc, hour * kSecondsPerHour);
    min_rate = std::min(min_rate, r);
    max_rate = std::max(max_rate, r);
  }
  EXPECT_GT(max_rate, 2.0 * min_rate);  // amplitude 0.8 -> swing 9:1 at extremes
}

TEST_F(WorkloadTest, DiurnalPeaksFollowTimezones) {
  PoissonDiurnalModel gen(topo_, sfcs_,
                        {.global_arrival_rate = 10.0, .diurnal_amplitude = 0.8,
                         .peak_local_hour = 14.0, .seed = 6});
  // Find UTC hour of peak for New York (tz -5): expect ~19 UTC.
  const NodeId nyc{0};
  int peak_hour = -1;
  double best = -1.0;
  for (int hour = 0; hour < 24; ++hour) {
    const double r = gen.region_rate(nyc, hour * kSecondsPerHour);
    if (r > best) {
      best = r;
      peak_hour = hour;
    }
  }
  EXPECT_EQ(peak_hour, 19);
  // Tokyo (tz +9): peak at 14 - 9 = 5 UTC.
  const NodeId tokyo{2};
  peak_hour = -1;
  best = -1.0;
  for (int hour = 0; hour < 24; ++hour) {
    const double r = gen.region_rate(tokyo, hour * kSecondsPerHour);
    if (r > best) {
      best = r;
      peak_hour = hour;
    }
  }
  EXPECT_EQ(peak_hour, 5);
}

TEST_F(WorkloadTest, TotalRateBoundedByPeak) {
  PoissonDiurnalModel gen(topo_, sfcs_,
                        {.global_arrival_rate = 7.0, .diurnal_amplitude = 0.6, .seed = 7});
  for (int hour = 0; hour < 48; ++hour) {
    EXPECT_LE(gen.total_rate(hour * kSecondsPerHour), gen.peak_total_rate() + 1e-9);
  }
}

TEST_F(WorkloadTest, RequestFieldsWithinModelBounds) {
  PoissonDiurnalModel gen(topo_, sfcs_, {.global_arrival_rate = 5.0, .rate_jitter = 0.5,
                                       .seed = 8});
  SimTime now = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const Request r = gen.next(now);
    now = r.arrival_time;
    const SfcTemplate& sfc = sfcs_.sfc(r.sfc);
    EXPECT_GE(r.rate_rps, 0.1);
    EXPECT_LE(r.rate_rps, sfc.mean_rate_rps * 1.5 + 1e-9);
    EXPECT_GE(r.rate_rps, sfc.mean_rate_rps * 0.5 - 1e-9);
    EXPECT_GT(r.duration_s, 0.0);
    EXPECT_LT(index(r.source_region), topo_.node_count());
  }
}

TEST_F(WorkloadTest, AllSfcTypesAppear) {
  PoissonDiurnalModel gen(topo_, sfcs_, {.global_arrival_rate = 5.0, .seed = 9});
  std::map<std::uint32_t, int> counts;
  SimTime now = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const Request r = gen.next(now);
    now = r.arrival_time;
    ++counts[index(r.sfc)];
  }
  EXPECT_EQ(counts.size(), sfcs_.size());
  for (const auto& [sfc, count] : counts) EXPECT_GT(count, 100) << "sfc " << sfc;
}

TEST_F(WorkloadTest, DeterministicForSeed) {
  PoissonDiurnalModel a(topo_, sfcs_, {.global_arrival_rate = 5.0, .seed = 10});
  PoissonDiurnalModel b(topo_, sfcs_, {.global_arrival_rate = 5.0, .seed = 10});
  SimTime now_a = 0.0, now_b = 0.0;
  for (int i = 0; i < 100; ++i) {
    const Request ra = a.next(now_a);
    const Request rb = b.next(now_b);
    now_a = ra.arrival_time;
    now_b = rb.arrival_time;
    EXPECT_DOUBLE_EQ(ra.arrival_time, rb.arrival_time);
    EXPECT_EQ(index(ra.source_region), index(rb.source_region));
    EXPECT_EQ(index(ra.sfc), index(rb.sfc));
    EXPECT_DOUBLE_EQ(ra.rate_rps, rb.rate_rps);
  }
}

TEST_F(WorkloadTest, RejectsBadOptions) {
  EXPECT_THROW(PoissonDiurnalModel(topo_, sfcs_, {.global_arrival_rate = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(PoissonDiurnalModel(topo_, sfcs_, {.diurnal_amplitude = 1.5}),
               std::invalid_argument);
}

// Golden stream captured from the pre-refactor WorkloadGenerator (6 metros,
// rate 5.0, seed 77). PoissonDiurnalModel must reproduce it bit-for-bit:
// the polymorphic split is a pure restructuring of the legacy generator.
TEST_F(WorkloadTest, BitIdenticalToPreRefactorGenerator) {
  struct Golden {
    double arrival_time;
    std::uint32_t region;
    std::uint32_t sfc;
    double rate_rps;
    double duration_s;
  };
  const Golden golden[] = {
      {0.10282155435658082, 3, 4, 0.97628234363139921, 1571.1628962928428},
      {0.51283340354941542, 5, 0, 4.5537183787614266, 625.46332620407213},
      {0.56484537863644835, 0, 1, 1.7031974059522594, 507.15129985459754},
      {0.68401951013548656, 3, 3, 3.0960904116492545, 826.00992028273083},
      {0.70381163006229874, 5, 4, 0.54502209117119249, 89.881257217923775},
      {1.1244166701827043, 3, 3, 5.4553146496053495, 30.592962829999824},
      {1.3325829797869948, 0, 1, 2.6871614693518575, 1155.7034145072946},
      {1.4690474932158071, 0, 2, 5.4830232592230814, 396.51432460425633},
  };
  PoissonDiurnalModel gen(topo_, sfcs_, {.global_arrival_rate = 5.0, .seed = 77});
  SimTime now = 0.0;
  for (const Golden& expected : golden) {
    const Request r = gen.next(now);
    now = r.arrival_time;
    EXPECT_DOUBLE_EQ(r.arrival_time, expected.arrival_time);
    EXPECT_EQ(index(r.source_region), expected.region);
    EXPECT_EQ(index(r.sfc), expected.sfc);
    EXPECT_DOUBLE_EQ(r.rate_rps, expected.rate_rps);
    EXPECT_DOUBLE_EQ(r.duration_s, expected.duration_s);
  }
}

TEST_F(WorkloadTest, CloneContinuesTheStreamExactly) {
  PoissonDiurnalModel gen(topo_, sfcs_, {.global_arrival_rate = 5.0, .seed = 12});
  SimTime now = 0.0;
  for (int i = 0; i < 50; ++i) now = gen.next(now).arrival_time;
  const auto clone = gen.clone();
  SimTime now_clone = now;
  for (int i = 0; i < 50; ++i) {
    const Request a = gen.next(now);
    const Request b = clone->next(now_clone);
    now = a.arrival_time;
    now_clone = b.arrival_time;
    EXPECT_DOUBLE_EQ(a.arrival_time, b.arrival_time);
    EXPECT_EQ(index(a.source_region), index(b.source_region));
    EXPECT_DOUBLE_EQ(a.rate_rps, b.rate_rps);
  }
}

/// Property sweep: thinning preserves the configured mean rate across
/// amplitudes (the envelope method must not bias the arrival process).
class DiurnalSweep : public ::testing::TestWithParam<double> {};

TEST_P(DiurnalSweep, LongRunRateUnbiased) {
  const double amplitude = GetParam();
  Topology topo = make_world_topology({.node_count = 6});
  VnfCatalog vnfs = VnfCatalog::standard();
  SfcCatalog sfcs = SfcCatalog::standard(vnfs);
  PoissonDiurnalModel gen(topo, sfcs,
                        {.global_arrival_rate = 6.0, .diurnal_amplitude = amplitude,
                         .seed = 11});
  SimTime now = 0.0;
  const int n = 30'000;
  for (int i = 0; i < n; ++i) now = gen.next(now).arrival_time;
  // Thinning must be unbiased against the integrated rate surface over the
  // observed window (the window is a fraction of a day, so we compare to the
  // numerically integrated rate rather than the nominal mean).
  double integrated_rate = 0.0;
  const double dt = 30.0;
  int samples = 0;
  for (double t = 0.0; t < now; t += dt) {
    integrated_rate += gen.total_rate(t);
    ++samples;
  }
  const double expected_mean_rate = integrated_rate / samples;
  EXPECT_NEAR(n / now, expected_mean_rate, expected_mean_rate * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Amplitudes, DiurnalSweep, ::testing::Values(0.0, 0.3, 0.6, 0.9));

}  // namespace
}  // namespace vnfm::edgesim
