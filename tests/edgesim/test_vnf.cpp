#include "edgesim/vnf.hpp"

#include <gtest/gtest.h>

#include <set>

namespace vnfm::edgesim {
namespace {

TEST(VnfCatalog, StandardHasSixTypes) {
  const VnfCatalog catalog = VnfCatalog::standard();
  EXPECT_EQ(catalog.size(), 6u);
  const std::set<std::string> expected{"firewall", "nat", "ids", "lb", "wan_opt", "vpn"};
  std::set<std::string> actual;
  for (const auto& t : catalog.all()) actual.insert(t.name);
  EXPECT_EQ(actual, expected);
}

TEST(VnfCatalog, IdsAreDense) {
  const VnfCatalog catalog = VnfCatalog::standard();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(index(catalog.type(VnfTypeId{static_cast<std::uint32_t>(i)}).id), i);
  }
}

TEST(VnfCatalog, ByNameFindsAndThrows) {
  const VnfCatalog catalog = VnfCatalog::standard();
  EXPECT_EQ(catalog.by_name("ids").name, "ids");
  EXPECT_THROW((void)catalog.by_name("quantum_router"), std::out_of_range);
}

TEST(VnfCatalog, AllTypesHavePositiveParameters) {
  for (const auto& t : VnfCatalog::standard().all()) {
    EXPECT_GT(t.cpu_units, 0.0) << t.name;
    EXPECT_GT(t.mem_gb, 0.0) << t.name;
    EXPECT_GT(t.capacity_rps, 0.0) << t.name;
    EXPECT_GT(t.proc_delay_ms, 0.0) << t.name;
    EXPECT_GT(t.deploy_cost, 0.0) << t.name;
    EXPECT_GT(t.run_cost_per_hour, 0.0) << t.name;
  }
}

TEST(VnfCatalog, IdsIsHeaviest) {
  // Deep-packet inspection should be the most expensive middlebox; several
  // benches rely on this asymmetry for interesting placement decisions.
  const VnfCatalog catalog = VnfCatalog::standard();
  const VnfType& ids = catalog.by_name("ids");
  for (const auto& t : catalog.all()) {
    EXPECT_LE(t.cpu_units, ids.cpu_units) << t.name;
  }
}

TEST(VnfCatalog, RejectsEmptyAndNonDense) {
  EXPECT_THROW(VnfCatalog({}), std::invalid_argument);
  std::vector<VnfType> bad(1);
  bad[0].id = VnfTypeId{5};
  EXPECT_THROW(VnfCatalog(std::move(bad)), std::invalid_argument);
}

TEST(SfcCatalog, StandardHasFiveChains) {
  const VnfCatalog vnfs = VnfCatalog::standard();
  const SfcCatalog sfcs = SfcCatalog::standard(vnfs);
  EXPECT_EQ(sfcs.size(), 5u);
  EXPECT_EQ(sfcs.by_name("web").chain.size(), 3u);
  EXPECT_EQ(sfcs.by_name("voip").chain.size(), 2u);
  EXPECT_EQ(sfcs.max_chain_length(), 3u);
}

TEST(SfcCatalog, ChainsReferenceValidVnfs) {
  const VnfCatalog vnfs = VnfCatalog::standard();
  const SfcCatalog sfcs = SfcCatalog::standard(vnfs);
  for (const auto& sfc : sfcs.all()) {
    for (const VnfTypeId id : sfc.chain) {
      EXPECT_LT(index(id), vnfs.size()) << sfc.name;
    }
  }
}

TEST(SfcCatalog, GamingHasTightestSla) {
  const VnfCatalog vnfs = VnfCatalog::standard();
  const SfcCatalog sfcs = SfcCatalog::standard(vnfs);
  const double gaming_sla = sfcs.by_name("gaming").sla_latency_ms;
  for (const auto& sfc : sfcs.all()) {
    EXPECT_GE(sfc.sla_latency_ms, gaming_sla) << sfc.name;
  }
}

TEST(SfcCatalog, PositiveQosParameters) {
  const VnfCatalog vnfs = VnfCatalog::standard();
  for (const auto& sfc : SfcCatalog::standard(vnfs).all()) {
    EXPECT_GT(sfc.sla_latency_ms, 0.0) << sfc.name;
    EXPECT_GT(sfc.mean_rate_rps, 0.0) << sfc.name;
    EXPECT_GT(sfc.mean_duration_s, 0.0) << sfc.name;
    EXPECT_GT(sfc.revenue, 0.0) << sfc.name;
  }
}

TEST(SfcCatalog, RejectsEmptyChain) {
  std::vector<SfcTemplate> bad(1);
  bad[0].id = SfcId{0};
  EXPECT_THROW(SfcCatalog(std::move(bad)), std::invalid_argument);
}

}  // namespace
}  // namespace vnfm::edgesim
