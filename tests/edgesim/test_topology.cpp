#include "edgesim/topology.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace vnfm::edgesim {
namespace {

TEST(LatencyModel, IntraNodeHopIsSmall) {
  const LatencyModel model;
  const GeoPoint p{40.0, -74.0};
  EXPECT_DOUBLE_EQ(model.latency_ms(p, p), model.intra_node_ms);
}

TEST(LatencyModel, ScalesWithDistance) {
  const LatencyModel model;
  const GeoPoint nyc{40.71, -74.01};
  const GeoPoint chi{41.88, -87.63};
  const GeoPoint lon{51.51, -0.13};
  EXPECT_LT(model.latency_ms(nyc, chi), model.latency_ms(nyc, lon));
  // NYC-London one way should be in the tens of ms (fibre realistic).
  const double transatlantic = model.latency_ms(nyc, lon);
  EXPECT_GT(transatlantic, 20.0);
  EXPECT_LT(transatlantic, 60.0);
}

TEST(Topology, WorldTopologyBasics) {
  const Topology topo = make_world_topology({.node_count = 8});
  EXPECT_EQ(topo.node_count(), 8u);
  EXPECT_EQ(topo.node(NodeId{0}).name, "new_york");
  EXPECT_EQ(topo.node(NodeId{2}).name, "tokyo");
  EXPECT_GT(topo.total_traffic_weight(), 0.0);
}

TEST(Topology, LatencyMatrixSymmetricAndPositive) {
  const Topology topo = make_world_topology({.node_count = 6});
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      const NodeId a{static_cast<std::uint32_t>(i)}, b{static_cast<std::uint32_t>(j)};
      EXPECT_DOUBLE_EQ(topo.latency_ms(a, b), topo.latency_ms(b, a));
      EXPECT_GT(topo.latency_ms(a, b), 0.0);
      if (i != j) { EXPECT_GT(topo.latency_ms(a, b), topo.latency_ms(a, a)); }
    }
  }
}

TEST(Topology, UserLatencyLocalIsLastMileOnly) {
  const Topology topo = make_world_topology({.node_count = 4});
  const double local = topo.user_latency_ms(NodeId{0}, NodeId{0});
  const double remote = topo.user_latency_ms(NodeId{0}, NodeId{2});
  EXPECT_NEAR(local, 2.0, 1e-9);
  EXPECT_GT(remote, local + 10.0);  // NYC user -> Tokyo node crosses the Pacific
}

TEST(Topology, CapacityJitterWithinBounds) {
  const TopologyOptions options{.node_count = 10, .cpu_capacity_mean = 40.0,
                                .capacity_jitter = 0.25, .seed = 3};
  const Topology topo = make_world_topology(options);
  for (const auto& node : topo.nodes()) {
    EXPECT_GE(node.cpu_capacity, 40.0 * 0.75 - 1e-9);
    EXPECT_LE(node.cpu_capacity, 40.0 * 1.25 + 1e-9);
    EXPECT_DOUBLE_EQ(node.mem_capacity_gb, 2.0 * node.cpu_capacity);
  }
}

TEST(Topology, DeterministicForSeed) {
  const Topology a = make_world_topology({.node_count = 5, .seed = 9});
  const Topology b = make_world_topology({.node_count = 5, .seed = 9});
  for (std::size_t i = 0; i < 5; ++i) {
    const NodeId id{static_cast<std::uint32_t>(i)};
    EXPECT_DOUBLE_EQ(a.node(id).cpu_capacity, b.node(id).cpu_capacity);
  }
}

TEST(Topology, RejectsBadNodeCount) {
  EXPECT_THROW(make_world_topology({.node_count = 0}), std::invalid_argument);
}

TEST(Topology, SynthesisesNodesBeyondMetroList) {
  const std::size_t metros = world_metro_count();
  const Topology topo = make_world_topology({.node_count = 50, .seed = 7});
  ASSERT_EQ(topo.node_count(), 50u);
  // Base metros keep their legacy names; synthetic sites get an index suffix.
  EXPECT_EQ(topo.node(NodeId{0}).name, "new_york");
  EXPECT_EQ(topo.node(NodeId{static_cast<std::uint32_t>(metros)}).name,
            "new_york_" + std::to_string(metros));
  // Synthetic sites sit near their base metro, not on top of it.
  const EdgeNode& base = topo.node(NodeId{0});
  const EdgeNode& synth = topo.node(NodeId{static_cast<std::uint32_t>(metros)});
  EXPECT_NE(base.location, synth.location);
  EXPECT_LE(std::abs(base.location.lat_deg - synth.location.lat_deg), 3.0 + 1e-9);
  EXPECT_LE(std::abs(base.location.lon_deg - synth.location.lon_deg), 3.0 + 1e-9);
  EXPECT_DOUBLE_EQ(base.tz_offset_hours, synth.tz_offset_hours);
}

TEST(Topology, FirstMetrosBitIdenticalAcrossNodeCounts) {
  // Growing node_count must not perturb the shared prefix: the generator
  // draws each node's randomness sequentially, so small topologies embed
  // exactly into large ones.
  const Topology small = make_world_topology({.node_count = 16, .seed = 42});
  const Topology large = make_world_topology({.node_count = 200, .seed = 42});
  for (std::uint32_t i = 0; i < 16; ++i) {
    const NodeId id{i};
    EXPECT_EQ(small.node(id).name, large.node(id).name);
    EXPECT_EQ(small.node(id).location, large.node(id).location);
    EXPECT_DOUBLE_EQ(small.node(id).cpu_capacity, large.node(id).cpu_capacity);
  }
}

TEST(Topology, LargeTopologyLatencyMatchesModelWithoutMatrix) {
  // Above kDenseLatencyMatrixMaxNodes the n^2 matrix is skipped; on-demand
  // latencies must equal what the matrix construction would have stored.
  const Topology topo =
      make_world_topology({.node_count = kDenseLatencyMatrixMaxNodes + 8, .seed = 5});
  const LatencyModel& model = topo.latency_model();
  const NodeId a{3}, b{517};
  EXPECT_DOUBLE_EQ(topo.latency_ms(a, a), model.intra_node_ms);
  EXPECT_DOUBLE_EQ(topo.latency_ms(a, b),
                   model.latency_ms(topo.node(a).location, topo.node(b).location));
  EXPECT_DOUBLE_EQ(topo.latency_ms(a, b), topo.latency_ms(b, a));
}

TEST(Topology, TimezonesSpanTheGlobe) {
  const Topology topo = make_world_topology({.node_count = 8});
  double min_tz = 99.0, max_tz = -99.0;
  for (const auto& node : topo.nodes()) {
    min_tz = std::min(min_tz, node.tz_offset_hours);
    max_tz = std::max(max_tz, node.tz_offset_hours);
  }
  // Needed for the follow-the-sun experiments: at least 12h of spread.
  EXPECT_GE(max_tz - min_tz, 12.0);
}

TEST(Topology, RejectsNonDenseNodeIds) {
  std::vector<EdgeNode> nodes(2);
  nodes[0].id = NodeId{0};
  nodes[1].id = NodeId{5};
  EXPECT_THROW(Topology(std::move(nodes), LatencyModel{}), std::invalid_argument);
}

}  // namespace
}  // namespace vnfm::edgesim
