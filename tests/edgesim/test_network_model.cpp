#include "edgesim/network_model.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <vector>

#include "edgesim/link.hpp"
#include "edgesim/topology.hpp"

namespace vnfm::edgesim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

FlowKey key(std::uint64_t request, std::uint32_t hop = 0) {
  return FlowKey{RequestId{request}, hop};
}

Topology eight_metros() {
  TopologyOptions options;
  options.node_count = 8;
  return make_world_topology(options);
}

// ---- Constant model: verbatim delegation (the bit-identity anchor) --------

TEST(ConstantLatencyModel, DelegatesEveryQueryToTheTopology) {
  const Topology topology = eight_metros();
  ConstantLatencyModel model(topology);
  for (std::uint32_t a = 0; a < topology.node_count(); ++a) {
    for (std::uint32_t b = 0; b < topology.node_count(); ++b) {
      EXPECT_EQ(model.hop_latency_ms(NodeId{a}, NodeId{b}),
                topology.latency_ms(NodeId{a}, NodeId{b}));
      EXPECT_EQ(model.user_latency_ms(NodeId{a}, NodeId{b}),
                topology.user_latency_ms(NodeId{a}, NodeId{b}));
      EXPECT_TRUE(model.can_route(NodeId{a}, NodeId{b}));
    }
  }
  // Flow registration is a no-op that returns the matching probe.
  EXPECT_EQ(model.add_flow(key(1, 1), NodeId{0}, NodeId{3}, 5.0),
            topology.latency_ms(NodeId{0}, NodeId{3}));
  EXPECT_EQ(model.add_access_flow(key(1, 0), NodeId{2}, NodeId{3}, 5.0),
            topology.user_latency_ms(NodeId{2}, NodeId{3}));
  EXPECT_EQ(model.add_return_flow(key(1, 2), NodeId{3}, NodeId{2}, 5.0),
            topology.user_latency_ms(NodeId{2}, NodeId{3}));
  EXPECT_EQ(model.active_flow_count(), 0U);
  EXPECT_TRUE(model.fail_link_at(NodeId{0}).empty());
}

// ---- Fabric structure ------------------------------------------------------

TEST(NetworkGraph, TwoTierEdgeShape) {
  FlowNetworkOptions options;
  options.rack_size = 4;
  const NetworkGraph graph = make_two_tier_edge(8, options);
  // 8 hosts + 2 ToRs + 1 core; every host cable and ToR uplink is 2 directed
  // links: 8*2 + 2*2 = 20.
  EXPECT_EQ(graph.host_count(), 8U);
  EXPECT_EQ(graph.vertex_count(), 11U);
  EXPECT_EQ(graph.link_count(), 20U);
  EXPECT_EQ(graph.kind(0), VertexKind::kHost);
  EXPECT_EQ(graph.kind(8), VertexKind::kTor);
  EXPECT_EQ(graph.kind(10), VertexKind::kCore);
  EXPECT_EQ(graph.tor_of(0), graph.tor_of(3));  // same rack
  EXPECT_NE(graph.tor_of(3), graph.tor_of(4));  // rack boundary
  // Single-homed: one uplink pair per rack — failing it strands the rack.
  EXPECT_EQ(graph.rack_uplinks(0).size(), 1U);
}

TEST(NetworkGraph, FatTreeKSelection) {
  EXPECT_EQ(fat_tree_k_for(1, 0), 4U);     // floor at k=4 (16 slots)
  EXPECT_EQ(fat_tree_k_for(16, 0), 4U);    // exactly full
  EXPECT_EQ(fat_tree_k_for(17, 0), 6U);    // next even k (54 slots)
  EXPECT_EQ(fat_tree_k_for(100, 0), 8U);   // 128 slots
  EXPECT_EQ(fat_tree_k_for(4, 6), 6U);     // min_k respected
  EXPECT_EQ(fat_tree_k_for(4, 5), 6U);     // odd min_k rounded up to even
}

TEST(NetworkGraph, FatTreeHasRedundantUplinks) {
  const NetworkGraph graph = make_fat_tree(16, 4, FlowNetworkOptions{});
  EXPECT_EQ(graph.host_count(), 16U);
  // k=4: 16 hosts + 8 edge + 8 agg + 4 core.
  EXPECT_EQ(graph.vertex_count(), 36U);
  // Edge switches have k/2 = 2 uplink pairs: one failure must not strand.
  EXPECT_EQ(graph.rack_uplinks(0).size(), 2U);
}

TEST(NetworkGraph, RoutesAreDeterministicAndRespectFailures) {
  const NetworkGraph graph = make_fat_tree(16, 4, FlowNetworkOptions{});
  const std::vector<std::uint8_t> none(graph.link_count(), 0);
  const auto route_a = graph.route(0, 15, none);
  const auto route_b = graph.route(0, 15, none);
  ASSERT_FALSE(route_a.empty());
  EXPECT_EQ(route_a, route_b);  // pure function of endpoints + mask
  EXPECT_TRUE(graph.route(3, 3, none).empty());
  // Fail the route's edge->agg uplink (index 1; index 0 is the host's only
  // access link): the redundant fabric must offer a different route.
  ASSERT_GE(route_a.size(), 2U);
  std::vector<std::uint8_t> failed(graph.link_count(), 0);
  failed[route_a[1]] = 1;
  const auto rerouted = graph.route(0, 15, failed);
  ASSERT_FALSE(rerouted.empty());
  EXPECT_NE(rerouted, route_a);
  EXPECT_TRUE(graph.reachable(0, 15, failed));
}

// ---- Max-min fair sharing --------------------------------------------------

class FlowModelTest : public ::testing::Test {
 protected:
  FlowModelTest() : topology_(eight_metros()) {}

  FlowNetworkModel make_two_tier() {
    FlowNetworkOptions options;  // 10 Gbps access, 40 Gbps core, 8 Mbit payload
    return FlowNetworkModel(topology_, make_two_tier_edge(8, options), options);
  }

  Topology topology_;
};

TEST_F(FlowModelTest, SingleElasticFlowGetsTheBottleneckLink) {
  FlowNetworkModel model = make_two_tier();
  // Cross-rack route host0 -> host4: 4 links of 0.05 ms; the 10 Gbps host
  // uplink bottlenecks an elastic flow, so transfer = 8 Mbit / 10 Gbps.
  model.add_flow(key(1, 1), NodeId{0}, NodeId{4}, 5.0);
  EXPECT_DOUBLE_EQ(model.flow(key(1, 1)).alloc_gbps, 10.0);
  EXPECT_DOUBLE_EQ(model.flow_latency_ms(key(1, 1)), 4 * 0.05 + 8.0 / 10.0);
}

TEST_F(FlowModelTest, ElasticFlowsSplitASharedLinkEqually) {
  FlowNetworkModel model = make_two_tier();
  model.add_flow(key(1, 1), NodeId{0}, NodeId{1}, 5.0);
  model.add_flow(key(2, 1), NodeId{0}, NodeId{2}, 5.0);
  // Both cross host0's 10 Gbps uplink: max-min gives 5 each.
  EXPECT_DOUBLE_EQ(model.flow(key(1, 1)).alloc_gbps, 5.0);
  EXPECT_DOUBLE_EQ(model.flow(key(2, 1)).alloc_gbps, 5.0);
}

TEST_F(FlowModelTest, DemandCappedFlowFreesBandwidthForElasticOnes) {
  FlowNetworkModel model = make_two_tier();
  const auto up = model.graph().out_links(0).front();  // host0's uplink route
  const auto uplink_src = model.graph().link(up).src;
  ASSERT_EQ(uplink_src, 0U);
  // Three flows over host0's 10 Gbps uplink: demands {2, inf, inf} must
  // allocate {2, 4, 4} — the textbook max-min fixture.
  model.add_flow_between(key(1), 0, 1, 2.0);
  model.add_flow_between(key(2), 0, 2, kInf);
  model.add_flow_between(key(3), 0, 3, kInf);
  EXPECT_DOUBLE_EQ(model.flow(key(1)).alloc_gbps, 2.0);
  EXPECT_DOUBLE_EQ(model.flow(key(2)).alloc_gbps, 4.0);
  EXPECT_DOUBLE_EQ(model.flow(key(3)).alloc_gbps, 4.0);
  EXPECT_DOUBLE_EQ(model.link_utilization_gbps(up), 10.0);
  model.remove_flow(key(2));
  EXPECT_DOUBLE_EQ(model.flow(key(1)).alloc_gbps, 2.0);
  EXPECT_DOUBLE_EQ(model.flow(key(3)).alloc_gbps, 8.0);
}

TEST_F(FlowModelTest, ProbeEstimatesTheShareOfOneMoreFlow) {
  FlowNetworkModel model = make_two_tier();
  model.add_flow(key(1, 1), NodeId{0}, NodeId{1}, 5.0);
  // A second flow over host0's uplink would get 10/2 = 5 Gbps.
  EXPECT_DOUBLE_EQ(model.hop_latency_ms(NodeId{0}, NodeId{2}),
                   2 * 0.05 + 8.0 / 5.0);
  // Same-node hops never touch the fabric.
  EXPECT_EQ(model.hop_latency_ms(NodeId{3}, NodeId{3}),
            topology_.latency_ms(NodeId{3}, NodeId{3}));
}

TEST_F(FlowModelTest, IncrementalRecomputeMatchesAFreshRebuildBitExactly) {
  FlowNetworkModel incremental = make_two_tier();
  // A churny history: adds and removes across racks in interleaved order.
  incremental.add_flow(key(1, 1), NodeId{0}, NodeId{5}, 1.0);
  incremental.add_flow_between(key(2), 1, 5, 3.0);
  incremental.add_flow(key(3, 1), NodeId{0}, NodeId{1}, 1.0);
  incremental.add_access_flow(key(4, 0), NodeId{2}, NodeId{6}, 1.0);
  incremental.remove_flow(key(1, 1));
  incremental.add_return_flow(key(5, 2), NodeId{6}, NodeId{2}, 1.0);
  incremental.add_flow(key(6, 1), NodeId{4}, NodeId{7}, 1.0);
  incremental.remove_flow(key(3, 1));

  // Fresh model registering only the surviving flows, in a different order.
  FlowNetworkModel fresh = make_two_tier();
  fresh.add_flow(key(6, 1), NodeId{4}, NodeId{7}, 1.0);
  fresh.add_return_flow(key(5, 2), NodeId{6}, NodeId{2}, 1.0);
  fresh.add_flow_between(key(2), 1, 5, 3.0);
  fresh.add_access_flow(key(4, 0), NodeId{2}, NodeId{6}, 1.0);

  ASSERT_EQ(incremental.active_flow_count(), fresh.active_flow_count());
  for (const FlowKey k : {key(2), key(4, 0), key(5, 2), key(6, 1)}) {
    EXPECT_EQ(incremental.flow(k).links, fresh.flow(k).links);
    // Bit-exact, not approximately equal: the per-component water-fill makes
    // the allocation a pure function of the surviving flow set.
    EXPECT_EQ(incremental.flow(k).alloc_gbps, fresh.flow(k).alloc_gbps);
    EXPECT_EQ(incremental.flow_latency_ms(k), fresh.flow_latency_ms(k));
  }
}

// ---- Faults ----------------------------------------------------------------

TEST_F(FlowModelTest, UplinkFailureStrandsTheRackInTwoTier) {
  FlowNetworkModel model = make_two_tier();
  model.add_flow(key(1, 1), NodeId{0}, NodeId{5}, 1.0);  // crosses rack 0's uplink
  model.add_flow(key(2, 1), NodeId{4}, NodeId{5}, 1.0);  // stays in rack 1
  const auto doomed = model.fail_link_at(NodeId{0});
  ASSERT_EQ(doomed.size(), 1U);
  EXPECT_EQ(doomed.front(), key(1, 1));
  EXPECT_EQ(model.failed_link_count(), 2U);  // one pair, both directions
  EXPECT_FALSE(model.can_route(NodeId{0}, NodeId{5}));
  EXPECT_TRUE(model.can_route(NodeId{4}, NodeId{5}));
  EXPECT_DOUBLE_EQ(model.flow(key(2, 1)).alloc_gbps, 10.0);  // untouched

  model.recover_link_at(NodeId{0});
  EXPECT_EQ(model.failed_link_count(), 0U);
  EXPECT_TRUE(model.can_route(NodeId{0}, NodeId{5}));
}

TEST_F(FlowModelTest, FatTreeReroutesThenKillsWhenTheRackIsCut) {
  FlowNetworkOptions options;
  FlowNetworkModel model(topology_, make_fat_tree(8, 4, options), options);
  model.add_flow(key(1, 1), NodeId{0}, NodeId{7}, 1.0);  // pod 0 -> pod 1
  // k=4 edge switches have two uplink pairs: the first failure reroutes (or
  // leaves the flow on the surviving uplink), never kills.
  const auto first = model.fail_link_at(NodeId{0});
  EXPECT_TRUE(first.empty());
  EXPECT_EQ(model.failed_link_count(), 2U);
  EXPECT_TRUE(model.can_route(NodeId{0}, NodeId{7}));
  EXPECT_GT(model.flow(key(1, 1)).alloc_gbps, 0.0);
  // The second failure cuts the edge switch off the fabric: fail-stop.
  const auto second = model.fail_link_at(NodeId{0});
  ASSERT_EQ(second.size(), 1U);
  EXPECT_EQ(second.front(), key(1, 1));
  EXPECT_FALSE(model.can_route(NodeId{0}, NodeId{7}));
  model.recover_link_at(NodeId{0});
  EXPECT_EQ(model.failed_link_count(), 0U);
  EXPECT_TRUE(model.can_route(NodeId{0}, NodeId{7}));
}

TEST_F(FlowModelTest, LifecycleEdgeCases) {
  FlowNetworkModel model = make_two_tier();
  model.remove_flow(key(9, 9));  // unknown key: no-op by contract
  model.add_flow(key(1, 1), NodeId{0}, NodeId{1}, 1.0);
  EXPECT_THROW(model.add_flow(key(1, 1), NodeId{0}, NodeId{2}, 1.0),
               std::invalid_argument);  // duplicate registration
  EXPECT_THROW((void)model.flow(key(9, 9)), std::out_of_range);
}

// ---- Factory ---------------------------------------------------------------

TEST(MakeNetworkModel, ParsesTopologyNames) {
  const Topology topology = eight_metros();
  NetworkOptions options;
  EXPECT_EQ(make_network_model(topology, options)->name(), "constant-latency");
  options.topology = "two-tier-edge";
  EXPECT_EQ(make_network_model(topology, options)->name(), "flow-network");
  options.topology = "fat-tree-k4";
  EXPECT_EQ(make_network_model(topology, options)->name(), "flow-network");
  options.topology = "fat-tree-kX";
  EXPECT_THROW((void)make_network_model(topology, options), std::invalid_argument);
  options.topology = "nonsense";
  EXPECT_THROW((void)make_network_model(topology, options), std::invalid_argument);
}

}  // namespace
}  // namespace vnfm::edgesim
