#include "edgesim/workload_model.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <string>

namespace vnfm::edgesim {
namespace {

class WorkloadModelTest : public ::testing::Test {
 protected:
  Topology topo_ = make_world_topology({.node_count = 6});
  VnfCatalog vnfs_ = VnfCatalog::standard();
  SfcCatalog sfcs_ = SfcCatalog::standard(vnfs_);

  std::shared_ptr<const std::vector<TraceRow>> small_trace() const {
    std::vector<TraceRow> rows;
    for (int i = 0; i < 20; ++i) {
      TraceRow row;
      row.offset_s = 5.0 * (i + 1);
      row.region = static_cast<std::uint32_t>(i % 4);
      row.sfc = static_cast<std::uint32_t>(i % 3);
      row.rate_rps = 1.0 + 0.25 * i;
      row.duration_s = 120.0;
      rows.push_back(row);
    }
    return std::make_shared<const std::vector<TraceRow>>(std::move(rows));
  }
};

TEST_F(WorkloadModelTest, TraceReplayEmitsTheTraceVerbatimOnLoopZero) {
  TraceReplayModel model(topo_, sfcs_, {.seed = 3}, small_trace());
  SimTime now = 0.0;
  for (int i = 0; i < 20; ++i) {
    const Request r = model.next(now);
    now = r.arrival_time;
    EXPECT_DOUBLE_EQ(r.arrival_time, 5.0 * (i + 1));
    EXPECT_EQ(index(r.source_region), static_cast<std::uint32_t>(i % 4));
    EXPECT_EQ(index(r.sfc), static_cast<std::uint32_t>(i % 3));
    EXPECT_DOUBLE_EQ(r.rate_rps, 1.0 + 0.25 * i);
    EXPECT_DOUBLE_EQ(r.duration_s, 120.0);
  }
  EXPECT_EQ(model.loops_completed(), 0U);
}

TEST_F(WorkloadModelTest, TraceReplayLoopsWithJitteredReseeding) {
  TraceReplayModel model(topo_, sfcs_, {.rate_jitter = 0.5, .seed = 4}, small_trace());
  SimTime now = 0.0;
  // Drain loop 0 then read one full second loop.
  for (int i = 0; i < 20; ++i) now = model.next(now).arrival_time;
  bool any_jittered = false;
  for (int i = 0; i < 20; ++i) {
    const Request r = model.next(now);
    EXPECT_GT(r.arrival_time, now);
    EXPECT_GT(r.arrival_time, model.span_s());  // shifted into the second loop
    now = r.arrival_time;
    const double base = 1.0 + 0.25 * i;
    EXPECT_GE(r.rate_rps, base * 0.5 - 1e-9);
    EXPECT_LE(r.rate_rps, base * 1.5 + 1e-9);
    if (std::abs(r.rate_rps - base) > 1e-12) any_jittered = true;
  }
  EXPECT_EQ(model.loops_completed(), 1U);
  EXPECT_TRUE(any_jittered);  // re-seeded loops must not replay verbatim
}

TEST_F(WorkloadModelTest, TraceReplayDeterministicPerSeedAndClonable) {
  const auto trace = small_trace();
  TraceReplayModel a(topo_, sfcs_, {.rate_jitter = 0.5, .seed = 9}, trace);
  TraceReplayModel b(topo_, sfcs_, {.rate_jitter = 0.5, .seed = 9}, trace);
  SimTime now_a = 0.0, now_b = 0.0;
  for (int i = 0; i < 30; ++i) {
    const Request ra = a.next(now_a);
    const Request rb = b.next(now_b);
    now_a = ra.arrival_time;
    now_b = rb.arrival_time;
    EXPECT_DOUBLE_EQ(ra.arrival_time, rb.arrival_time);
    EXPECT_DOUBLE_EQ(ra.rate_rps, rb.rate_rps);
  }
  const auto clone = a.clone();
  for (int i = 0; i < 30; ++i) {
    const Request ra = a.next(now_a);
    const Request rc = clone->next(now_b);
    now_a = ra.arrival_time;
    now_b = rc.arrival_time;
    EXPECT_DOUBLE_EQ(ra.arrival_time, rc.arrival_time);
    EXPECT_DOUBLE_EQ(ra.rate_rps, rc.rate_rps);
  }
}

TEST_F(WorkloadModelTest, TraceReplayKeepsTiedOffsets) {
  // Second-resolution traces often record several arrivals at one offset;
  // none may be dropped, in any loop.
  std::vector<TraceRow> rows;
  for (int i = 0; i < 6; ++i) {
    TraceRow row;
    row.offset_s = 10.0 * (1 + i / 2);  // pairs of tied offsets: 10,10,20,20,30,30
    row.region = static_cast<std::uint32_t>(i);
    row.rate_rps = 1.0;
    row.duration_s = 60.0;
    rows.push_back(row);
  }
  TraceReplayModel model(topo_, sfcs_, {.rate_jitter = 0.0, .seed = 2},
                         std::make_shared<const std::vector<TraceRow>>(rows));
  SimTime now = 0.0;
  for (int loop = 0; loop < 3; ++loop) {
    for (int i = 0; i < 6; ++i) {
      const Request r = model.next(now);
      EXPECT_GE(r.arrival_time, now);
      EXPECT_EQ(index(r.source_region), static_cast<std::uint32_t>(i));  // none skipped
      now = r.arrival_time;
    }
  }
  EXPECT_EQ(model.generated_count(), 18U);
}

TEST_F(WorkloadModelTest, TraceReplayRateSurfaceIsEmpiricalAndBounded) {
  TraceReplayModel model(topo_, sfcs_, {.seed = 1}, small_trace());
  for (double t = 0.0; t < 3.0 * model.span_s(); t += model.span_s() / 10.0) {
    EXPECT_LE(model.total_rate(t), model.peak_total_rate() + 1e-9);
  }
  // Regions 4/5 never appear in the trace: their empirical rate is zero.
  EXPECT_DOUBLE_EQ(model.region_rate(NodeId{4}, 10.0), 0.0);
  EXPECT_GT(model.peak_total_rate(), 0.0);
}

TEST_F(WorkloadModelTest, LoadsTheCheckedInSampleTrace) {
  const std::string path = std::string(VNFM_SOURCE_DIR) + "/bench/data/trace_sample.csv";
  const auto rows = TraceReplayModel::load(path);
  ASSERT_GT(rows.size(), 100U);
  for (std::size_t i = 1; i < rows.size(); ++i)
    EXPECT_GE(rows[i].offset_s, rows[i - 1].offset_s);
  const auto factory = TraceReplayModel::factory(path);
  const auto model = factory(topo_, sfcs_, {.seed = 5});
  SimTime now = 0.0;
  for (int i = 0; i < 200; ++i) {
    const Request r = model->next(now);
    EXPECT_GT(r.arrival_time, now);
    EXPECT_LT(index(r.source_region), topo_.node_count());
    EXPECT_LT(index(r.sfc), sfcs_.size());
    now = r.arrival_time;
  }
}

TEST_F(WorkloadModelTest, TraceLoadRejectsMalformedFiles) {
  const std::string path = ::testing::TempDir() + "/bad_trace.csv";
  {
    std::ofstream out(path);
    out << "offset_s,region,sfc,rate_rps,duration_s\n10,0,0,1.0,60\n5,1,0,1.0,60\n";
  }
  EXPECT_THROW((void)TraceReplayModel::load(path), std::invalid_argument);  // unsorted
  {
    std::ofstream out(path);
    out << "offset_s,region\n1,0\n";
  }
  EXPECT_THROW((void)TraceReplayModel::load(path), std::invalid_argument);  // columns
  {
    std::ofstream out(path);
    out << "offset_s,region,sfc,rate_rps,duration_s\n1,-1,0,1.0,60\n";
  }
  EXPECT_THROW((void)TraceReplayModel::load(path), std::invalid_argument);  // bad index
  {
    std::ofstream out(path);
    out << "offset_s,region,sfc,rate_rps,duration_s\n1,0,1.5,1.0,60\n";
  }
  EXPECT_THROW((void)TraceReplayModel::load(path), std::invalid_argument);  // fractional
  EXPECT_THROW((void)TraceReplayModel::load("/nonexistent/trace.csv"), std::runtime_error);
  std::remove(path.c_str());
}

TEST_F(WorkloadModelTest, FlashCrowdBoostsEpicentreDuringBurstWindows) {
  WorkloadOptions options{.global_arrival_rate = 4.0, .seed = 6};
  FlashCrowdOptions burst{.magnitude = 3.0, .period_s = 3600.0, .duration_s = 600.0,
                          .spread = 2, .start_s = 0.0};
  FlashCrowdOverlay overlay(topo_, sfcs_, options,
                            std::make_unique<PoissonDiurnalModel>(topo_, sfcs_, options),
                            burst);
  const PoissonDiurnalModel inner(topo_, sfcs_, options);
  const NodeId centre = overlay.epicentre(0);
  // Inside the first window the epicentre runs at magnitude x the inner rate.
  EXPECT_TRUE(overlay.in_burst(centre, 10.0));
  EXPECT_DOUBLE_EQ(overlay.region_rate(centre, 10.0),
                   3.0 * inner.region_rate(centre, 10.0));
  // Outside the window everything matches the inner surface.
  EXPECT_FALSE(overlay.in_burst(centre, 700.0));
  EXPECT_DOUBLE_EQ(overlay.region_rate(centre, 700.0), inner.region_rate(centre, 700.0));
  // Exactly `spread` regions are boosted, and the envelope bounds the total.
  std::size_t boosted = 0;
  for (std::size_t i = 0; i < topo_.node_count(); ++i)
    if (overlay.in_burst(NodeId{static_cast<std::uint32_t>(i)}, 10.0)) ++boosted;
  EXPECT_EQ(boosted, 2U);
  for (double t = 0.0; t < 2.0 * 3600.0; t += 60.0)
    EXPECT_LE(overlay.total_rate(t), overlay.peak_total_rate() + 1e-9);
}

TEST_F(WorkloadModelTest, FlashCrowdEpicentresRotateDeterministically) {
  WorkloadOptions options{.global_arrival_rate = 4.0, .seed = 6};
  const auto make = [&] {
    return FlashCrowdOverlay(topo_, sfcs_, options,
                             std::make_unique<PoissonDiurnalModel>(topo_, sfcs_, options));
  };
  const auto a = make();
  const auto b = make();
  std::set<std::uint32_t> centres;
  for (std::uint64_t w = 0; w < 16; ++w) {
    EXPECT_EQ(index(a.epicentre(w)), index(b.epicentre(w)));
    centres.insert(index(a.epicentre(w)));
  }
  EXPECT_GT(centres.size(), 1U);  // the epicentre moves across windows
}

TEST_F(WorkloadModelTest, FlashCrowdStreamIsDeterministicPerSeed) {
  WorkloadOptions options{.global_arrival_rate = 4.0, .seed = 8};
  const auto factory = flash_crowd_factory({}, {.period_s = 1800.0, .duration_s = 300.0,
                                                .start_s = 0.0});
  const auto a = factory(topo_, sfcs_, options);
  const auto b = factory(topo_, sfcs_, options);
  SimTime now_a = 0.0, now_b = 0.0;
  for (int i = 0; i < 200; ++i) {
    const Request ra = a->next(now_a);
    const Request rb = b->next(now_b);
    now_a = ra.arrival_time;
    now_b = rb.arrival_time;
    EXPECT_DOUBLE_EQ(ra.arrival_time, rb.arrival_time);
    EXPECT_EQ(index(ra.source_region), index(rb.source_region));
    EXPECT_DOUBLE_EQ(ra.rate_rps, rb.rate_rps);
  }
}

TEST_F(WorkloadModelTest, RateScaleMultipliesTheWholeSurface) {
  WorkloadOptions options{.global_arrival_rate = 2.0, .seed = 7};
  RateScaleOverlay overlay(topo_, sfcs_, options,
                           std::make_unique<PoissonDiurnalModel>(topo_, sfcs_, options),
                           2.5);
  const PoissonDiurnalModel inner(topo_, sfcs_, options);
  for (double t = 0.0; t < 86400.0; t += 3600.0) {
    EXPECT_DOUBLE_EQ(overlay.total_rate(t), 2.5 * inner.total_rate(t));
  }
  EXPECT_DOUBLE_EQ(overlay.peak_total_rate(), 2.5 * inner.peak_total_rate());
  EXPECT_EQ(overlay.name(), "rate-scale(poisson-diurnal)");
}

TEST_F(WorkloadModelTest, OverlaysComposeOverTraceInners) {
  // An overlay over a trace re-realises the trace's empirical rate surface
  // as a Poisson stream (documented: shape preserved, instants not).
  WorkloadOptions options{.seed = 11};
  auto trace_model = std::make_unique<TraceReplayModel>(topo_, sfcs_, options,
                                                        small_trace());
  const double trace_peak = trace_model->peak_total_rate();
  RateScaleOverlay overlay(topo_, sfcs_, options, std::move(trace_model), 2.0);
  EXPECT_DOUBLE_EQ(overlay.peak_total_rate(), 2.0 * trace_peak);
  EXPECT_EQ(overlay.name(), "rate-scale(trace-replay)");
  SimTime now = 0.0;
  for (int i = 0; i < 50; ++i) {
    const Request r = overlay.next(now);
    EXPECT_GT(r.arrival_time, now);
    now = r.arrival_time;
  }
}

TEST_F(WorkloadModelTest, OverlayValidation) {
  WorkloadOptions options{.global_arrival_rate = 2.0, .seed = 1};
  auto inner = [&] {
    return std::make_unique<PoissonDiurnalModel>(topo_, sfcs_, options);
  };
  EXPECT_THROW(RateScaleOverlay(topo_, sfcs_, options, inner(), 0.0),
               std::invalid_argument);
  EXPECT_THROW(RateScaleOverlay(topo_, sfcs_, options, nullptr, 2.0),
               std::invalid_argument);
  EXPECT_THROW(FlashCrowdOverlay(topo_, sfcs_, options, inner(),
                                 {.magnitude = -1.0}),
               std::invalid_argument);
  EXPECT_THROW(FlashCrowdOverlay(topo_, sfcs_, options, inner(),
                                 {.period_s = 100.0, .duration_s = 200.0}),
               std::invalid_argument);
  EXPECT_THROW(FlashCrowdOverlay(topo_, sfcs_, options, inner(), {.spread = 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace vnfm::edgesim
