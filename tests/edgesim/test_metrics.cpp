#include "edgesim/metrics.hpp"

#include <gtest/gtest.h>

namespace vnfm::edgesim {
namespace {

ChainPlacement make_placement(double latency_ms, double sla_ms, int deployments) {
  ChainPlacement p;
  p.latency_ms = latency_ms;
  p.sla_latency_ms = sla_ms;
  p.new_deployments = deployments;
  return p;
}

TEST(CostModel, AdmissionCostComponents) {
  CostModel model;
  const ChainPlacement ok = make_placement(50.0, 100.0, 1);
  // deploy 2.0, latency 50 * 0.01 = 0.5, revenue 3.0 -> -0.5.
  EXPECT_NEAR(model.admission_cost(ok, 2.0, 3.0), 2.0 + 0.5 - 3.0, 1e-12);

  const ChainPlacement violated = make_placement(150.0, 100.0, 0);
  EXPECT_NEAR(model.admission_cost(violated, 0.0, 3.0),
              150.0 * 0.01 + model.w_sla_violation - 3.0, 1e-12);
}

TEST(CostModel, WeightsScale) {
  CostModel model;
  model.w_deploy = 2.0;
  model.w_latency_per_ms = 0.0;
  model.w_revenue = 0.0;
  const ChainPlacement p = make_placement(10.0, 100.0, 1);
  EXPECT_NEAR(model.admission_cost(p, 5.0, 3.0), 10.0, 1e-12);
}

TEST(MetricsCollector, CountsAndRatios) {
  MetricsCollector metrics;
  metrics.on_arrival();
  metrics.on_arrival();
  metrics.on_arrival();
  metrics.on_accept(make_placement(40.0, 100.0, 2), 2.0, 2.0);
  metrics.on_accept(make_placement(150.0, 100.0, 0), 0.0, 2.0);  // SLA violation
  metrics.on_reject();
  EXPECT_EQ(metrics.arrivals(), 3u);
  EXPECT_EQ(metrics.accepted(), 2u);
  EXPECT_EQ(metrics.rejected(), 1u);
  EXPECT_EQ(metrics.sla_violations(), 1u);
  EXPECT_EQ(metrics.deployments(), 2u);
  EXPECT_NEAR(metrics.acceptance_ratio(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(metrics.sla_violation_ratio(), 0.5, 1e-12);
  EXPECT_NEAR(metrics.latency_stats().mean(), 95.0, 1e-9);
}

TEST(MetricsCollector, CostAggregation) {
  CostModel model;
  MetricsCollector metrics(model);
  metrics.on_arrival();
  metrics.on_accept(make_placement(100.0, 200.0, 1), 1.0, 2.0);
  // admission: 1.0 + 1.0 - 2.0 = 0.
  EXPECT_NEAR(metrics.total_cost(), 0.0, 1e-12);
  metrics.on_reject();
  EXPECT_NEAR(metrics.total_cost(), model.rejection_cost(), 1e-12);
  metrics.on_running_cost(2.5);
  EXPECT_NEAR(metrics.total_cost(), model.rejection_cost() + 2.5, 1e-12);
  EXPECT_NEAR(metrics.running_cost_total(), 2.5, 1e-12);
}

TEST(MetricsCollector, CostPerRequest) {
  MetricsCollector metrics;
  EXPECT_DOUBLE_EQ(metrics.cost_per_request(), 0.0);
  metrics.on_arrival();
  metrics.on_arrival();
  metrics.on_reject();
  metrics.on_reject();
  EXPECT_NEAR(metrics.cost_per_request(), metrics.cost_model().rejection_cost(), 1e-12);
}

TEST(MetricsCollector, EmptyRatiosAreSane) {
  MetricsCollector metrics;
  EXPECT_DOUBLE_EQ(metrics.acceptance_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.sla_violation_ratio(), 0.0);
}

TEST(MetricsCollector, SummaryMentionsKeyFields) {
  MetricsCollector metrics;
  metrics.on_arrival();
  metrics.on_reject();
  const std::string s = metrics.summary();
  EXPECT_NE(s.find("arrivals=1"), std::string::npos);
  EXPECT_NE(s.find("rejected=1"), std::string::npos);
  EXPECT_NE(s.find("total_cost="), std::string::npos);
}

TEST(MetricsCollector, UtilizationSampling) {
  const Topology topo = make_world_topology({.node_count = 2, .capacity_jitter = 0.0});
  const VnfCatalog vnfs = VnfCatalog::standard();
  const SfcCatalog sfcs = SfcCatalog::standard(vnfs);
  ClusterState cluster(topo, vnfs, sfcs, {});
  MetricsCollector metrics;
  metrics.sample_utilization(cluster);
  EXPECT_EQ(metrics.utilization_stats().count(), 2u);
  EXPECT_DOUBLE_EQ(metrics.utilization_stats().mean(), 0.0);
  cluster.deploy_pinned(NodeId{0}, vnfs.by_name("firewall").id);
  metrics.sample_utilization(cluster);
  EXPECT_GT(metrics.utilization_stats().mean(), 0.0);
}

}  // namespace
}  // namespace vnfm::edgesim
