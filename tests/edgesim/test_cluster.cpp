#include "edgesim/cluster.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace vnfm::edgesim {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest()
      : topo_(make_world_topology({.node_count = 4, .cpu_capacity_mean = 32.0,
                                   .capacity_jitter = 0.0})),
        vnfs_(VnfCatalog::standard()),
        sfcs_(SfcCatalog::standard(vnfs_)),
        cluster_(topo_, vnfs_, sfcs_, {.idle_timeout_s = 60.0}) {}

  Request make_request(const char* sfc_name, double rate = 2.0, double duration = 100.0,
                       std::uint32_t region = 0) {
    Request r;
    r.id = RequestId{next_id_++};
    r.arrival_time = cluster_.now();
    r.source_region = NodeId{region};
    r.sfc = sfcs_.by_name(sfc_name).id;
    r.rate_rps = rate;
    r.duration_s = duration;
    return r;
  }

  /// Places the whole chain on one node and commits.
  ChainPlacement place_chain_on(const Request& r, NodeId node) {
    cluster_.start_chain(r);
    while (!cluster_.pending_complete()) cluster_.place_next(node);
    return cluster_.commit_chain();
  }

  Topology topo_;
  VnfCatalog vnfs_;
  SfcCatalog sfcs_;
  ClusterState cluster_;
  std::uint64_t next_id_ = 0;
};

TEST_F(ClusterTest, FreshClusterIsEmpty) {
  EXPECT_EQ(cluster_.total_instance_count(), 0u);
  EXPECT_EQ(cluster_.active_chain_count(), 0u);
  EXPECT_DOUBLE_EQ(cluster_.cpu_used(NodeId{0}), 0.0);
}

TEST_F(ClusterTest, PlacingDeploysInstancesAndConsumesResources) {
  const Request r = make_request("voip");  // nat -> firewall
  const ChainPlacement placement = place_chain_on(r, NodeId{0});
  EXPECT_EQ(placement.new_deployments, 2);
  EXPECT_EQ(cluster_.total_instance_count(), 2u);
  const double expected_cpu =
      vnfs_.by_name("nat").cpu_units + vnfs_.by_name("firewall").cpu_units;
  EXPECT_DOUBLE_EQ(cluster_.cpu_used(NodeId{0}), expected_cpu);
  EXPECT_EQ(cluster_.active_chain_count(), 1u);
}

TEST_F(ClusterTest, SecondChainReusesInstances) {
  place_chain_on(make_request("voip", 2.0), NodeId{0});
  const ChainPlacement second = place_chain_on(make_request("voip", 2.0), NodeId{0});
  EXPECT_EQ(second.new_deployments, 0);
  EXPECT_EQ(cluster_.total_instance_count(), 2u);
}

TEST_F(ClusterTest, LatencyIncludesUserAndReturnPath) {
  const Request r = make_request("voip", 2.0, 100.0, /*region=*/0);
  const ChainPlacement local = place_chain_on(r, NodeId{0});
  // All on the local node: 2ms in + 2ms out + intra hops + proc delays.
  EXPECT_GT(local.latency_ms, 4.0);
  EXPECT_LT(local.latency_ms, 10.0);

  // A remote placement (region 0 user, node 2 = tokyo) pays propagation.
  const Request r2 = make_request("voip", 2.0, 100.0, /*region=*/0);
  const ChainPlacement remote = place_chain_on(r2, NodeId{2});
  EXPECT_GT(remote.latency_ms, local.latency_ms + 50.0);
}

TEST_F(ClusterTest, QueueingDelayGrowsWithLoad) {
  const VnfTypeId fw = vnfs_.by_name("firewall").id;
  const double low = cluster_.estimated_proc_delay_ms(NodeId{0}, fw, 2.0);
  place_chain_on(make_request("voip", 10.0), NodeId{0});
  place_chain_on(make_request("voip", 10.0), NodeId{0});
  const double loaded = cluster_.estimated_proc_delay_ms(NodeId{0}, fw, 2.0);
  EXPECT_GT(loaded, low);
}

TEST_F(ClusterTest, CanServeRespectsInstanceCapacity) {
  const VnfTypeId fw = vnfs_.by_name("firewall").id;
  // Firewall capacity is 150 rps; a flow above usable capacity is unservable.
  EXPECT_FALSE(cluster_.can_serve(NodeId{0}, fw, 150.0));
  EXPECT_TRUE(cluster_.can_serve(NodeId{0}, fw, 100.0));
}

TEST_F(ClusterTest, CanDeployRespectsCpuLimit) {
  const VnfTypeId ids = vnfs_.by_name("ids").id;  // 4 CPU each; node has 32
  int deployed = 0;
  cluster_.start_chain(make_request("iot", 1.0));  // firewall -> ids
  cluster_.abort_chain();
  while (cluster_.can_deploy(NodeId{0}, ids)) {
    cluster_.deploy_pinned(NodeId{0}, ids);
    ++deployed;
  }
  EXPECT_EQ(deployed, 8);  // 32 / 4
  EXPECT_FALSE(cluster_.can_deploy(NodeId{0}, ids));
}

TEST_F(ClusterTest, AbortRollsBackEverything) {
  const Request r = make_request("web");
  cluster_.start_chain(r);
  cluster_.place_next(NodeId{0});
  cluster_.place_next(NodeId{1});
  cluster_.abort_chain();
  EXPECT_EQ(cluster_.total_instance_count(), 0u);
  EXPECT_DOUBLE_EQ(cluster_.cpu_used(NodeId{0}), 0.0);
  EXPECT_DOUBLE_EQ(cluster_.cpu_used(NodeId{1}), 0.0);
  EXPECT_EQ(cluster_.total_deployments(), 0u);  // rollback uncounts
}

TEST_F(ClusterTest, AbortReleasesOnlyNewInstances) {
  place_chain_on(make_request("voip", 2.0), NodeId{0});
  const auto instances_before = cluster_.total_instance_count();
  cluster_.start_chain(make_request("voip", 2.0));
  cluster_.place_next(NodeId{0});  // reuses
  cluster_.abort_chain();
  EXPECT_EQ(cluster_.total_instance_count(), instances_before);
  // Load must be restored: a full-capacity flow still fits.
  const VnfTypeId nat = vnfs_.by_name("nat").id;
  EXPECT_NEAR(cluster_.residual_capacity_rps(NodeId{0}, nat),
              vnfs_.by_name("nat").capacity_rps * 0.95 - 2.0, 1e-9);
}

TEST_F(ClusterTest, ExpiryReleasesLoadThenIdleGcReleasesInstances) {
  place_chain_on(make_request("voip", 2.0, /*duration=*/50.0), NodeId{0});
  EXPECT_EQ(cluster_.total_instance_count(), 2u);
  cluster_.advance_to(55.0);  // chain expired, instances idle but within timeout
  EXPECT_EQ(cluster_.active_chain_count(), 0u);
  EXPECT_EQ(cluster_.total_instance_count(), 2u);
  cluster_.advance_to(111.0);  // 50 + 60s idle timeout passed
  EXPECT_EQ(cluster_.total_instance_count(), 0u);
  EXPECT_EQ(cluster_.total_releases(), 2u);
  EXPECT_DOUBLE_EQ(cluster_.cpu_used(NodeId{0}), 0.0);
}

TEST_F(ClusterTest, PinnedInstancesSurviveIdleGc) {
  const VnfTypeId fw = vnfs_.by_name("firewall").id;
  cluster_.deploy_pinned(NodeId{0}, fw);
  cluster_.advance_to(10'000.0);
  EXPECT_EQ(cluster_.total_instance_count(), 1u);
}

TEST_F(ClusterTest, RunningCostAccumulatesWithInstanceSeconds) {
  const VnfTypeId fw = vnfs_.by_name("firewall").id;
  cluster_.deploy_pinned(NodeId{0}, fw);
  cluster_.advance_to(3600.0);
  EXPECT_NEAR(cluster_.instance_seconds_accumulated(), 3600.0, 1e-6);
  const double cost = cluster_.drain_running_cost();
  EXPECT_NEAR(cost, vnfs_.by_name("firewall").run_cost_per_hour, 1e-6);
  EXPECT_DOUBLE_EQ(cluster_.drain_running_cost(), 0.0);  // drained
}

TEST_F(ClusterTest, SlaViolationDetected) {
  // Gaming SLA is 60 ms; place its chain across the Pacific repeatedly.
  const Request r = make_request("gaming", 2.0, 100.0, /*region=*/0);
  cluster_.start_chain(r);
  cluster_.place_next(NodeId{2});  // tokyo
  cluster_.place_next(NodeId{1});  // london
  cluster_.place_next(NodeId{2});  // tokyo again
  const ChainPlacement placement = cluster_.commit_chain();
  EXPECT_TRUE(placement.sla_violated());
  EXPECT_GT(placement.latency_ms, placement.sla_latency_ms);
}

TEST_F(ClusterTest, ProtocolMisuseThrows) {
  EXPECT_THROW(cluster_.place_next(NodeId{0}), std::logic_error);
  EXPECT_THROW(cluster_.commit_chain(), std::logic_error);
  EXPECT_THROW(cluster_.abort_chain(), std::logic_error);
  cluster_.start_chain(make_request("voip"));
  EXPECT_THROW(cluster_.start_chain(make_request("voip")), std::logic_error);
  EXPECT_THROW(cluster_.commit_chain(), std::logic_error);  // incomplete
  EXPECT_THROW(cluster_.advance_to(10.0), std::logic_error);  // pending chain
  cluster_.abort_chain();
  EXPECT_THROW(cluster_.advance_to(-1.0), std::invalid_argument);
}

TEST_F(ClusterTest, PlaceNextInfeasibleThrows) {
  // Saturate node 0 with pinned IDS instances, then demand more.
  const VnfTypeId ids = vnfs_.by_name("ids").id;
  while (cluster_.can_deploy(NodeId{0}, ids)) cluster_.deploy_pinned(NodeId{0}, ids);
  // Fill all existing instances to capacity.
  Request big = make_request("iot", 76.0);  // firewall -> ids; ids cap 80*0.95=76
  // IoT chain: firewall first. Node 0 cannot even deploy a firewall (CPU full).
  cluster_.start_chain(big);
  EXPECT_FALSE(cluster_.can_serve(NodeId{0}, cluster_.pending_vnf_type(), 76.0));
  EXPECT_THROW(cluster_.place_next(NodeId{0}), std::runtime_error);
  cluster_.abort_chain();
}

TEST_F(ClusterTest, ResourceConservationUnderRandomWorkload) {
  // Property: after any mix of placements/aborts/expiries, cpu_used equals
  // the sum over live instances, and loads are non-negative.
  Rng rng(77);
  PoissonDiurnalModel gen(topo_, sfcs_, {.global_arrival_rate = 3.0, .seed = 5});
  SimTime now = 0.0;
  for (int i = 0; i < 400; ++i) {
    Request r = gen.next(now);
    now = r.arrival_time;
    cluster_.advance_to(now);
    cluster_.start_chain(r);
    bool aborted = false;
    while (!cluster_.pending_complete()) {
      // Random feasible node or abort.
      std::vector<NodeId> feasible;
      for (const auto& node : topo_.nodes())
        if (cluster_.can_serve(node.id, cluster_.pending_vnf_type(), r.rate_rps))
          feasible.push_back(node.id);
      if (feasible.empty() || rng.bernoulli(0.1)) {
        cluster_.abort_chain();
        aborted = true;
        break;
      }
      cluster_.place_next(feasible[rng.uniform_index(feasible.size())]);
    }
    if (!aborted) cluster_.commit_chain();
  }
  // Invariant check.
  std::vector<double> cpu(topo_.node_count(), 0.0);
  for (std::size_t n = 0; n < topo_.node_count(); ++n) {
    const NodeId node{static_cast<std::uint32_t>(n)};
    for (const auto& vnf : vnfs_.all()) {
      const auto count = cluster_.instance_count(node, vnf.id);
      cpu[n] += static_cast<double>(count) * vnf.cpu_units;
      EXPECT_GE(cluster_.residual_capacity_rps(node, vnf.id), -1e-9);
    }
    EXPECT_NEAR(cluster_.cpu_used(node), cpu[n], 1e-9);
    EXPECT_LE(cluster_.cpu_used(node), topo_.node(node).cpu_capacity + 1e-9);
  }
}

TEST_F(ClusterTest, DirtyListTracksMutatedNodesDeduplicated) {
  cluster_.clear_dirty();
  EXPECT_TRUE(cluster_.dirty_nodes().empty());
  const std::uint64_t v0 = cluster_.node_version(NodeId{1});
  place_chain_on(make_request("voip"), NodeId{1});  // deploy x2 + load x2
  ASSERT_EQ(cluster_.dirty_nodes().size(), 1u);     // deduplicated
  EXPECT_EQ(cluster_.dirty_nodes()[0], 1u);
  EXPECT_GT(cluster_.node_version(NodeId{1}), v0);  // version still bumps per touch
  cluster_.clear_dirty();
  EXPECT_TRUE(cluster_.dirty_nodes().empty());
  cluster_.set_capacity_scale(NodeId{2}, 0.5);
  ASSERT_EQ(cluster_.dirty_nodes().size(), 1u);
  EXPECT_EQ(cluster_.dirty_nodes()[0], 2u);
}

TEST_F(ClusterTest, AggregatesSurviveEveryMutationPath) {
  // verify_aggregates() recomputes utilisation/counts from scratch and
  // throws on divergence; drive each incremental update path through it.
  place_chain_on(make_request("voip", 2.0, 50.0), NodeId{0});
  cluster_.verify_aggregates();
  EXPECT_GT(cluster_.total_cpu_used(), 0.0);
  EXPECT_GT(cluster_.total_mem_used(), 0.0);
  EXPECT_EQ(cluster_.instances_on_node(NodeId{0}), 2u);
  EXPECT_GT(cluster_.total_cpu_utilization(), 0.0);

  cluster_.start_chain(make_request("web"));
  cluster_.place_next(NodeId{1});
  cluster_.abort_chain();  // rollback path
  cluster_.verify_aggregates();

  cluster_.set_capacity_scale(NodeId{0}, 0.5);  // effective-capacity delta
  cluster_.verify_aggregates();
  const double scaled = cluster_.total_effective_cpu_capacity();
  cluster_.set_capacity_scale(NodeId{0}, 1.0);
  cluster_.verify_aggregates();
  EXPECT_GT(cluster_.total_effective_cpu_capacity(), scaled);

  cluster_.fail_node(NodeId{0});  // kills the voip chain, releases instances
  cluster_.verify_aggregates();
  EXPECT_EQ(cluster_.instances_on_node(NodeId{0}), 0u);
  EXPECT_DOUBLE_EQ(cluster_.total_cpu_used(), 0.0);
  cluster_.recover_node(NodeId{0});
  cluster_.verify_aggregates();

  cluster_.advance_to(200.0);  // expiry + idle GC path
  cluster_.verify_aggregates();
}

TEST_F(ClusterTest, CachedQueriesBitIdenticalToDenseUnderRandomWorkload) {
  // The incremental featuriser's contract: the cached per-(node,type)
  // queries return the exact doubles of their dense counterparts after any
  // mutation mix (placements, aborts, expiries, faults, capacity changes).
  Rng rng(13);
  PoissonDiurnalModel gen(topo_, sfcs_, {.global_arrival_rate = 3.0, .seed = 9});
  SimTime now = 0.0;
  bool node3_failed = false;
  for (int i = 0; i < 200; ++i) {
    Request r = gen.next(now);
    now = r.arrival_time;
    cluster_.advance_to(now);
    if (i == 60) { cluster_.fail_node(NodeId{3}); node3_failed = true; }
    if (i == 90) { cluster_.recover_node(NodeId{3}); node3_failed = false; }
    if (i == 120) cluster_.set_capacity_scale(NodeId{1}, 0.75);
    cluster_.start_chain(r);
    bool aborted = false;
    while (!cluster_.pending_complete()) {
      std::vector<NodeId> feasible;
      for (const auto& node : topo_.nodes()) {
        const VnfTypeId type = cluster_.pending_vnf_type();
        ASSERT_EQ(cluster_.can_serve(node.id, type, r.rate_rps),
                  cluster_.can_serve_cached(node.id, type, r.rate_rps));
        if (cluster_.can_serve(node.id, type, r.rate_rps)) feasible.push_back(node.id);
      }
      if (feasible.empty() || rng.bernoulli(0.1)) {
        cluster_.abort_chain();
        aborted = true;
        break;
      }
      cluster_.place_next(feasible[rng.uniform_index(feasible.size())]);
    }
    if (!aborted) cluster_.commit_chain();
    for (const auto& node : topo_.nodes()) {
      for (const auto& vnf : vnfs_.all()) {
        ASSERT_EQ(cluster_.residual_capacity_rps(node.id, vnf.id),
                  cluster_.residual_capacity_cached_rps(node.id, vnf.id))
            << "node " << index(node.id) << " vnf " << index(vnf.id);
        const double dense = cluster_.estimated_proc_delay_ms(node.id, vnf.id, 2.0);
        const double cached = cluster_.estimated_proc_delay_cached_ms(node.id, vnf.id, 2.0);
        if (std::isfinite(dense) || std::isfinite(cached)) {
          ASSERT_EQ(dense, cached)
              << "node " << index(node.id) << " vnf " << index(vnf.id);
        }
      }
    }
    cluster_.verify_aggregates();
  }
  (void)node3_failed;
}

}  // namespace
}  // namespace vnfm::edgesim
