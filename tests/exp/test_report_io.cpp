// Tests for the experiment persistence layer: EvalReport and learning-curve
// CSV/JSON writers (exp/report_io).
#include "exp/report_io.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/experiment.hpp"

namespace vnfm::exp {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::size_t line_count(const std::string& text) {
  std::size_t lines = 0;
  for (const char c : text)
    if (c == '\n') ++lines;
  return lines;
}

core::EpisodeResult sample_result(double scale) {
  core::EpisodeResult result;
  result.total_reward = 10.5 * scale;
  result.requests = static_cast<std::size_t>(100 * scale);
  result.cost_per_request = 0.25 * scale;
  result.total_cost = 25.0 * scale;
  result.acceptance_ratio = 0.5;
  result.mean_latency_ms = 12.0;
  result.p95_latency_ms = 30.0;
  result.sla_violation_ratio = 0.1;
  result.mean_utilization = 0.4;
  result.deployments = 7;
  result.running_cost = 3.0;
  result.revenue = 40.0;
  return result;
}

EvalReport sample_report() {
  EvalReport report;
  report.per_seed = {sample_result(1.0), sample_result(2.0)};
  report.seeds = {1000011, 1000012};
  report.mean = core::mean_result(report.per_seed);
  return report;
}

TEST(ReportIo, EvalCsvHasSeedRowsAndMeanRow) {
  const EvalReport report = sample_report();
  const std::string path = temp_path("eval.csv");
  report.write_csv(path);
  const std::string text = slurp(path);
  // Header + 2 seed rows + mean row.
  EXPECT_EQ(line_count(text), 4u);
  EXPECT_EQ(text.rfind("seed,total_reward,", 0), 0u) << text;
  EXPECT_NE(text.find("\n1000011,"), std::string::npos);
  EXPECT_NE(text.find("\n1000012,"), std::string::npos);
  EXPECT_NE(text.find("\nmean,"), std::string::npos);
}

TEST(ReportIo, EvalJsonIsStructured) {
  const EvalReport report = sample_report();
  const std::string path = temp_path("eval.json");
  report.write_json(path);
  const std::string text = slurp(path);
  EXPECT_NE(text.find("\"seeds\": [1000011, 1000012]"), std::string::npos) << text;
  EXPECT_NE(text.find("\"mean\""), std::string::npos);
  EXPECT_NE(text.find("\"per_seed\""), std::string::npos);
  EXPECT_NE(text.find("\"total_reward\""), std::string::npos);
  // Balanced braces (cheap well-formedness check).
  EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
            std::count(text.begin(), text.end(), '}'));
}

TEST(ReportIo, CurveCsvOneRowPerEpisode) {
  const std::vector<core::EpisodeResult> curve{sample_result(1.0), sample_result(2.0),
                                               sample_result(3.0)};
  const std::string path = temp_path("curve.csv");
  write_curve_csv(curve, {11, 12, 13}, path);
  const std::string text = slurp(path);
  EXPECT_EQ(line_count(text), 4u);  // header + 3 episodes
  EXPECT_EQ(text.rfind("episode,seed,total_reward", 0), 0u) << text;
  EXPECT_NE(text.find("\n2,13,"), std::string::npos);
}

TEST(ReportIo, CurveJsonCarriesStats) {
  const std::vector<core::EpisodeResult> curve{sample_result(1.0)};
  core::TrainStats stats;
  stats.wall_seconds = 2.0;
  stats.transitions = 500;
  stats.episodes = 1;
  stats.rounds = 1;
  stats.actor_threads = 4;
  stats.parallel = true;
  const std::string path = temp_path("curve.json");
  write_curve_json(curve, {11}, &stats, path);
  const std::string text = slurp(path);
  EXPECT_NE(text.find("\"steps_per_second\": 250"), std::string::npos) << text;
  EXPECT_NE(text.find("\"parallel\": true"), std::string::npos);
  EXPECT_NE(text.find("\"actor_threads\": 4"), std::string::npos);
  EXPECT_NE(text.find("\"seed\": 11"), std::string::npos);
}

TEST(ReportIo, RewardCurvesCsvMatchesFig3Shape) {
  const std::string path = temp_path("curves.csv");
  write_reward_curves_csv({"a", "b"}, {{1.0, 2.0}, {3.0, 4.0}}, path);
  const std::string text = slurp(path);
  EXPECT_EQ(text.rfind("episode,a,b", 0), 0u) << text;
  EXPECT_NE(text.find("\n0,1,3"), std::string::npos);
  EXPECT_NE(text.find("\n1,2,4"), std::string::npos);
}

TEST(ReportIo, RewardCurvesCsvRejectsMismatchedInput) {
  EXPECT_THROW(
      write_reward_curves_csv({"a"}, {{1.0}, {2.0}}, temp_path("bad.csv")),
      std::invalid_argument);
  EXPECT_THROW(
      write_reward_curves_csv({"a", "b"}, {{1.0}, {2.0, 3.0}}, temp_path("bad.csv")),
      std::invalid_argument);
}

TEST(ReportIo, ExperimentWritesItsCurve) {
  auto experiment = Experiment::scenario(
      "geo-distributed", Config{{"nodes", "4"}, {"arrival_rate", "1.0"}});
  experiment.manager("tabular_q")
      .seed(3)
      .train_duration(200.0)
      .max_requests(4)
      .train(2);
  const std::string csv_file = temp_path("exp_curve.csv");
  const std::string json_file = temp_path("exp_curve.json");
  experiment.write_curve_csv(csv_file);
  experiment.write_curve_json(json_file);
  EXPECT_EQ(line_count(slurp(csv_file)), 3u);  // header + 2 episodes
  EXPECT_NE(slurp(json_file).find("\"episodes\""), std::string::npos);
}

TEST(ReportIo, UnwritablePathThrows) {
  const EvalReport report = sample_report();
  EXPECT_THROW(report.write_csv("/nonexistent-dir/x.csv"), std::runtime_error);
  EXPECT_THROW(report.write_json("/nonexistent-dir/x.json"), std::runtime_error);
}

}  // namespace
}  // namespace vnfm::exp
