// Tests for the experiment persistence layer: EvalReport and learning-curve
// CSV/JSON writers (exp/report_io).
#include "exp/report_io.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "exp/experiment.hpp"

namespace vnfm::exp {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::size_t line_count(const std::string& text) {
  std::size_t lines = 0;
  for (const char c : text)
    if (c == '\n') ++lines;
  return lines;
}

core::EpisodeResult sample_result(double scale) {
  core::EpisodeResult result;
  result.total_reward = 10.5 * scale;
  result.requests = static_cast<std::size_t>(100 * scale);
  result.cost_per_request = 0.25 * scale;
  result.total_cost = 25.0 * scale;
  result.acceptance_ratio = 0.5;
  result.mean_latency_ms = 12.0;
  result.p95_latency_ms = 30.0;
  result.sla_violation_ratio = 0.1;
  result.mean_utilization = 0.4;
  result.deployments = 7;
  result.running_cost = 3.0;
  result.revenue = 40.0;
  return result;
}

EvalReport sample_report() {
  EvalReport report;
  report.per_seed = {sample_result(1.0), sample_result(2.0)};
  report.seeds = {1000011, 1000012};
  report.mean = core::mean_result(report.per_seed);
  return report;
}

TEST(ReportIo, EvalCsvHasSeedRowsAndMeanRow) {
  const EvalReport report = sample_report();
  const std::string path = temp_path("eval.csv");
  report.write_csv(path);
  const std::string text = slurp(path);
  // Header + 2 seed rows + mean row.
  EXPECT_EQ(line_count(text), 4u);
  EXPECT_EQ(text.rfind("seed,total_reward,", 0), 0u) << text;
  EXPECT_NE(text.find("\n1000011,"), std::string::npos);
  EXPECT_NE(text.find("\n1000012,"), std::string::npos);
  EXPECT_NE(text.find("\nmean,"), std::string::npos);
}

TEST(ReportIo, EvalJsonIsStructured) {
  const EvalReport report = sample_report();
  const std::string path = temp_path("eval.json");
  report.write_json(path);
  const std::string text = slurp(path);
  EXPECT_NE(text.find("\"seeds\": [1000011, 1000012]"), std::string::npos) << text;
  EXPECT_NE(text.find("\"mean\""), std::string::npos);
  EXPECT_NE(text.find("\"per_seed\""), std::string::npos);
  EXPECT_NE(text.find("\"total_reward\""), std::string::npos);
  // Balanced braces (cheap well-formedness check).
  EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
            std::count(text.begin(), text.end(), '}'));
}

TEST(ReportIo, CurveCsvOneRowPerEpisode) {
  const std::vector<core::EpisodeResult> curve{sample_result(1.0), sample_result(2.0),
                                               sample_result(3.0)};
  const std::string path = temp_path("curve.csv");
  write_curve_csv(curve, {11, 12, 13}, path);
  const std::string text = slurp(path);
  EXPECT_EQ(line_count(text), 4u);  // header + 3 episodes
  EXPECT_EQ(text.rfind("episode,seed,total_reward", 0), 0u) << text;
  EXPECT_NE(text.find("\n2,13,"), std::string::npos);
}

TEST(ReportIo, CurveJsonCarriesStats) {
  const std::vector<core::EpisodeResult> curve{sample_result(1.0)};
  core::TrainStats stats;
  stats.wall_seconds = 2.0;
  stats.transitions = 500;
  stats.episodes = 1;
  stats.rounds = 1;
  stats.actor_threads = 4;
  stats.parallel = true;
  const std::string path = temp_path("curve.json");
  write_curve_json(curve, {11}, &stats, path);
  const std::string text = slurp(path);
  EXPECT_NE(text.find("\"steps_per_second\": 250"), std::string::npos) << text;
  EXPECT_NE(text.find("\"parallel\": true"), std::string::npos);
  EXPECT_NE(text.find("\"actor_threads\": 4"), std::string::npos);
  EXPECT_NE(text.find("\"seed\": 11"), std::string::npos);
}

TEST(ReportIo, RewardCurvesCsvMatchesFig3Shape) {
  const std::string path = temp_path("curves.csv");
  write_reward_curves_csv({"a", "b"}, {{1.0, 2.0}, {3.0, 4.0}}, path);
  const std::string text = slurp(path);
  EXPECT_EQ(text.rfind("episode,a,b", 0), 0u) << text;
  EXPECT_NE(text.find("\n0,1,3"), std::string::npos);
  EXPECT_NE(text.find("\n1,2,4"), std::string::npos);
}

TEST(ReportIo, RewardCurvesCsvRejectsMismatchedInput) {
  EXPECT_THROW(
      write_reward_curves_csv({"a"}, {{1.0}, {2.0}}, temp_path("bad.csv")),
      std::invalid_argument);
  EXPECT_THROW(
      write_reward_curves_csv({"a", "b"}, {{1.0}, {2.0, 3.0}}, temp_path("bad.csv")),
      std::invalid_argument);
}

TEST(ReportIo, ExperimentWritesItsCurve) {
  auto experiment = Experiment::scenario(
      "geo-distributed", Config{{"nodes", "4"}, {"arrival_rate", "1.0"}});
  experiment.manager("tabular_q")
      .seed(3)
      .train_duration(200.0)
      .max_requests(4)
      .train(2);
  const std::string csv_file = temp_path("exp_curve.csv");
  const std::string json_file = temp_path("exp_curve.json");
  experiment.write_curve_csv(csv_file);
  experiment.write_curve_json(json_file);
  EXPECT_EQ(line_count(slurp(csv_file)), 3u);  // header + 2 episodes
  EXPECT_NE(slurp(json_file).find("\"episodes\""), std::string::npos);
}

// ---- Round-trip coverage: re-parse the written files and compare every
// ---- field against the source report (including NaN and empty curves). ----

/// Parses "nan"/"-nan" like strtod so NaN metrics survive the comparison.
double parse_number(const std::string& token) {
  return std::strtod(token.c_str(), nullptr);
}

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, sep)) out.push_back(field);
  return out;
}

/// Parses a CSV written by report_io into header + rows.
struct ParsedCsv {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

ParsedCsv parse_csv(const std::string& path) {
  std::ifstream in(path);
  ParsedCsv parsed;
  std::string line;
  if (std::getline(in, line)) parsed.header = split(line, ',');
  while (std::getline(in, line))
    if (!line.empty()) parsed.rows.push_back(split(line, ','));
  return parsed;
}

/// Extracts `"key": <number>` from a JSON object block (first occurrence at
/// or after `from`); returns the parsed number.
double json_number(const std::string& text, const std::string& key,
                   std::size_t from = 0) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle, from);
  EXPECT_NE(at, std::string::npos) << key;
  if (at == std::string::npos) return 0.0;
  return parse_number(text.substr(at + needle.size()));
}

void expect_metrics_match(const std::vector<std::string>& header,
                          const std::vector<std::string>& row,
                          std::size_t value_offset, const core::EpisodeResult& expected,
                          const std::string& label) {
  const auto values = episode_result_row(expected);
  const auto& columns = episode_result_columns();
  ASSERT_EQ(row.size(), value_offset + columns.size()) << label;
  for (std::size_t c = 0; c < columns.size(); ++c) {
    EXPECT_EQ(header[value_offset + c], columns[c]) << label;
    const double parsed = parse_number(row[value_offset + c]);
    if (std::isnan(values[c])) {
      EXPECT_TRUE(std::isnan(parsed)) << label << " column " << columns[c];
    } else {
      EXPECT_EQ(parsed, values[c]) << label << " column " << columns[c];
    }
  }
}

TEST(ReportIoRoundTrip, EvalCsvFieldByField) {
  const EvalReport report = sample_report();
  const std::string path = temp_path("rt_eval.csv");
  report.write_csv(path);

  const ParsedCsv parsed = parse_csv(path);
  ASSERT_EQ(parsed.rows.size(), report.per_seed.size() + 1);  // seeds + mean
  for (std::size_t i = 0; i < report.per_seed.size(); ++i) {
    EXPECT_EQ(parsed.rows[i][0], std::to_string(report.seeds[i]));
    expect_metrics_match(parsed.header, parsed.rows[i], 1, report.per_seed[i],
                         "seed row " + std::to_string(i));
  }
  EXPECT_EQ(parsed.rows.back()[0], "mean");
  expect_metrics_match(parsed.header, parsed.rows.back(), 1, report.mean, "mean row");
}

TEST(ReportIoRoundTrip, EvalJsonFieldByField) {
  const EvalReport report = sample_report();
  const std::string path = temp_path("rt_eval.json");
  report.write_json(path);
  const std::string text = slurp(path);

  const auto& columns = episode_result_columns();
  // Mean block: first occurrence of every metric key.
  const std::size_t mean_at = text.find("\"mean\"");
  const auto mean_values = episode_result_row(report.mean);
  for (std::size_t c = 0; c < columns.size(); ++c)
    EXPECT_EQ(json_number(text, columns[c], mean_at), mean_values[c])
        << "mean." << columns[c];
  // Per-seed blocks, in order.
  std::size_t cursor = text.find("\"per_seed\"");
  ASSERT_NE(cursor, std::string::npos);
  for (std::size_t i = 0; i < report.per_seed.size(); ++i) {
    cursor = text.find("\"seed\":", cursor);
    ASSERT_NE(cursor, std::string::npos) << "per_seed " << i;
    EXPECT_EQ(static_cast<std::uint64_t>(json_number(text, "seed", cursor)),
              report.seeds[i]);
    const auto values = episode_result_row(report.per_seed[i]);
    for (std::size_t c = 0; c < columns.size(); ++c)
      EXPECT_EQ(json_number(text, columns[c], cursor), values[c])
          << "per_seed " << i << "." << columns[c];
    cursor += 1;
  }
}

TEST(ReportIoRoundTrip, CurveCsvFieldByField) {
  const std::vector<core::EpisodeResult> curve{sample_result(1.0), sample_result(-2.5),
                                               sample_result(0.0)};
  const std::vector<std::uint64_t> seeds{11, 12, 13};
  const std::string path = temp_path("rt_curve.csv");
  write_curve_csv(curve, seeds, path);

  const ParsedCsv parsed = parse_csv(path);
  ASSERT_EQ(parsed.rows.size(), curve.size());
  for (std::size_t i = 0; i < curve.size(); ++i) {
    EXPECT_EQ(parsed.rows[i][0], std::to_string(i));
    EXPECT_EQ(parsed.rows[i][1], std::to_string(seeds[i]));
    expect_metrics_match(parsed.header, parsed.rows[i], 2, curve[i],
                         "episode " + std::to_string(i));
  }
}

TEST(ReportIoRoundTrip, NanMetricsSurviveBothFormats) {
  EvalReport report;
  core::EpisodeResult nan_result = sample_result(1.0);
  nan_result.p95_latency_ms = std::numeric_limits<double>::quiet_NaN();
  nan_result.mean_latency_ms = std::numeric_limits<double>::quiet_NaN();
  report.per_seed = {nan_result};
  report.seeds = {1000011};
  report.mean = nan_result;

  const std::string csv_file = temp_path("rt_nan.csv");
  report.write_csv(csv_file);
  const ParsedCsv parsed = parse_csv(csv_file);
  ASSERT_EQ(parsed.rows.size(), 2u);
  expect_metrics_match(parsed.header, parsed.rows[0], 1, nan_result, "nan seed row");

  const std::string json_file = temp_path("rt_nan.json");
  report.write_json(json_file);
  const std::string text = slurp(json_file);
  EXPECT_TRUE(std::isnan(json_number(text, "p95_latency_ms")));
  // Non-NaN fields still round-trip exactly next to the NaN ones.
  EXPECT_EQ(json_number(text, "total_reward"), nan_result.total_reward);
}

TEST(ReportIoRoundTrip, EmptyCurveProducesHeaderOnlyCsvAndValidJson) {
  const std::string csv_file = temp_path("rt_empty.csv");
  write_curve_csv({}, {}, csv_file);
  const ParsedCsv parsed = parse_csv(csv_file);
  EXPECT_TRUE(parsed.rows.empty());
  ASSERT_FALSE(parsed.header.empty());
  EXPECT_EQ(parsed.header[0], "episode");

  const std::string json_file = temp_path("rt_empty.json");
  write_curve_json({}, {}, nullptr, json_file);
  const std::string text = slurp(json_file);
  EXPECT_NE(text.find("\"stats\": null"), std::string::npos);
  EXPECT_NE(text.find("\"episodes\": [\n  ]"), std::string::npos) << text;
  EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
            std::count(text.begin(), text.end(), '}'));
}

TEST(ReportIo, UnwritablePathThrows) {
  const EvalReport report = sample_report();
  EXPECT_THROW(report.write_csv("/nonexistent-dir/x.csv"), std::runtime_error);
  EXPECT_THROW(report.write_json("/nonexistent-dir/x.json"), std::runtime_error);
}

}  // namespace
}  // namespace vnfm::exp
