// Checkpoint/resume through the Experiment façade: checkpoint_every/
// checkpoint_dir during train(), resume() restoring manager + episode index
// + curve + stats bit-identically (inline and pipeline paths), explicit
// save_checkpoint(), and a full-state save/load round-trip for every policy
// in the ManagerRegistry.
#include "exp/experiment.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "core/checkpoint.hpp"
#include "exp/registry.hpp"
#include "exp/scenario.hpp"

namespace vnfm::exp {
namespace {

const Config& small_scenario_overrides() {
  static const Config overrides{
      {"nodes", "4"}, {"arrival_rate", "2.0"}, {"seed", "17"}};
  return overrides;
}

Experiment small_experiment(const std::string& manager_name) {
  Experiment experiment = Experiment::scenario("geo-distributed",
                                               small_scenario_overrides());
  experiment.manager(manager_name).seed(11).train_duration(150.0);
  return experiment;
}

/// A fault-storm variant of small_experiment: generative MTBF faults
/// aggressive enough (mean node up-time 200 s, 4 nodes, 150 s episodes) that
/// every training episode sees failures mid-flight, with the fault-visibility
/// feature block on — the kill-at-K drill then resumes mid-storm.
Experiment fault_storm_experiment(const std::string& manager_name) {
  Experiment experiment = Experiment::scenario(
      "geo-distributed+mtbf-faults",
      Config{{"nodes", "4"}, {"arrival_rate", "2.0"}, {"seed", "17"},
             {"mtbf_s", "200"}, {"mttr_s", "90"}, {"fault_features", "true"}});
  experiment.manager(manager_name).seed(11).train_duration(150.0);
  return experiment;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "exp_ckpt_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<std::uint8_t> state_bytes(core::Manager& manager) {
  Serializer out;
  out.begin_chunk("state");
  manager.save(out);
  out.end_chunk();
  return out.bytes();
}

void expect_identical_curves(const std::vector<core::EpisodeResult>& a,
                             const std::vector<core::EpisodeResult>& b,
                             const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].total_reward, b[i].total_reward) << label << " episode " << i;
    EXPECT_EQ(a[i].requests, b[i].requests) << label << " episode " << i;
    EXPECT_EQ(a[i].total_cost, b[i].total_cost) << label << " episode " << i;
    EXPECT_EQ(a[i].mean_latency_ms, b[i].mean_latency_ms) << label << " episode " << i;
    EXPECT_EQ(a[i].deployments, b[i].deployments) << label << " episode " << i;
  }
}

/// Facade-level kill-and-resume: train(total) straight vs train(kill_at) with
/// periodic checkpoints, then a brand-new Experiment resumed from the newest
/// archive training the rest. Curves, seeds, and manager state must match.
/// `make` builds the (scenario, manager) experiment so scripted and
/// fault-storm variants share the same drill.
void facade_drill(const std::function<Experiment()>& make, std::size_t train_threads,
                  const std::string& label) {
  const std::size_t total = 8;
  const std::size_t kill_at = 4;

  Experiment reference = make();
  if (train_threads > 0) reference.train_threads(train_threads);
  reference.train(total);

  const std::string dir = fresh_dir(label);
  Experiment interrupted = make();
  if (train_threads > 0) interrupted.train_threads(train_threads);
  interrupted.checkpoint_every(kill_at).checkpoint_dir(dir).train(kill_at);

  const std::string archive = core::latest_checkpoint(dir);
  ASSERT_FALSE(archive.empty()) << label;
  Experiment resumed = make();
  if (train_threads > 0) resumed.train_threads(train_threads);
  resumed.resume(archive);
  ASSERT_EQ(resumed.learning_curve().size(), kill_at) << label;
  resumed.train(total - kill_at);

  expect_identical_curves(reference.learning_curve(), resumed.learning_curve(), label);
  EXPECT_EQ(reference.learning_curve_seeds(), resumed.learning_curve_seeds()) << label;
  EXPECT_EQ(state_bytes(reference.manager_ref()), state_bytes(resumed.manager_ref()))
      << label;
  EXPECT_EQ(reference.train_stats().episodes, resumed.train_stats().episodes) << label;
  EXPECT_EQ(reference.train_stats().transitions, resumed.train_stats().transitions)
      << label;
}

void facade_drill(const std::string& manager_name, std::size_t train_threads,
                  const std::string& label) {
  facade_drill([&] { return small_experiment(manager_name); }, train_threads, label);
}

TEST(ExperimentCheckpoint, DqnPipelineResumesAtOneActorThread) {
  facade_drill("dqn", 1, "dqn_pipeline_1");
}

TEST(ExperimentCheckpoint, DqnPipelineResumesAtFourActorThreads) {
  facade_drill("dqn", 4, "dqn_pipeline_4");
}

TEST(ExperimentCheckpoint, TabularInlineLoopResumes) {
  // No train_threads(): the classic inline loop in the experiment's own
  // persistent environment; resume rebuilds a fresh environment — episodes
  // must be a function of the seed only for this to stay bit-identical.
  facade_drill("tabular_q", 0, "tabular_inline");
}

TEST(ExperimentCheckpoint, ActorCriticInlineLoopResumes) {
  facade_drill("actor_critic", 0, "a2c_inline");
}

TEST(ExperimentCheckpoint, DqnResumesMidFaultStorm) {
  // Determinism invariant #12's resume half: killing at episode 4 of a run
  // whose every episode is under sustained generated node failures (and
  // fault-visibility features) must resume byte-identically — the fault
  // stream is a pure function of (options seed, episode seed), never of
  // process lifetime.
  facade_drill([] { return fault_storm_experiment("dqn"); }, 1, "dqn_fault_storm_1");
  facade_drill([] { return fault_storm_experiment("dqn"); }, 4, "dqn_fault_storm_4");
}

TEST(ExperimentCheckpoint, TabularInlineLoopResumesMidFaultStorm) {
  facade_drill([] { return fault_storm_experiment("tabular_q"); }, 0,
               "tabular_fault_storm");
}

TEST(ExperimentCheckpoint, SaveCheckpointSnapshotsOnDemand) {
  const std::string dir = fresh_dir("snapshot");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/manual.vnfmc";

  Experiment experiment = small_experiment("dqn");
  experiment.max_requests(6).train(2);
  experiment.save_checkpoint(path);

  Experiment restored = small_experiment("dqn");
  restored.max_requests(6).resume(path);
  EXPECT_EQ(restored.learning_curve().size(), 2u);
  EXPECT_EQ(state_bytes(experiment.manager_ref()), state_bytes(restored.manager_ref()));

  // Both continue identically from the snapshot.
  experiment.train(1);
  restored.train(1);
  expect_identical_curves(experiment.learning_curve(), restored.learning_curve(),
                          "post-snapshot");
}

TEST(ExperimentCheckpoint, ResumeRestoresStatsAndSeedBase) {
  const std::string dir = fresh_dir("stats");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/s.vnfmc";

  Experiment experiment = small_experiment("tabular_q");
  experiment.seed(29).max_requests(5).train(3);
  experiment.save_checkpoint(path);
  const auto& stats = experiment.train_stats();

  Experiment restored = small_experiment("tabular_q");
  restored.resume(path);
  EXPECT_EQ(restored.train_stats().episodes, stats.episodes);
  EXPECT_EQ(restored.train_stats().transitions, stats.transitions);
  // The next training episode continues the *restored* base seed's slice.
  restored.max_requests(5).train(1);
  EXPECT_EQ(restored.learning_curve_seeds().back(), core::train_seed(29, 3));
}

TEST(ExperimentCheckpoint, DqnVariantMismatchIsRejected) {
  // All DQN registry variants share the type tag, but the config fingerprint
  // must reject restoring e.g. a double-DQN archive into a vanilla-DQN agent
  // (same network shape, different TD-target algorithm).
  core::VnfEnv env(
      ScenarioCatalog::instance().build("geo-distributed", small_scenario_overrides()));
  const std::string dir = fresh_dir("variant_mismatch");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/d.vnfmc";

  const auto double_dqn = ManagerRegistry::instance().create("double_dqn", env);
  core::write_checkpoint(path, *double_dqn, {});
  const auto vanilla = ManagerRegistry::instance().create("vanilla_dqn", env);
  EXPECT_THROW((void)core::read_checkpoint(path, *vanilla), SerializeError);
  const auto dueling = ManagerRegistry::instance().create("dueling_ddqn", env);
  EXPECT_THROW((void)core::read_checkpoint(path, *dueling), SerializeError);
  // Same variant restores fine.
  const auto same = ManagerRegistry::instance().create("double_dqn", env);
  EXPECT_NO_THROW((void)core::read_checkpoint(path, *same));
}

TEST(ExperimentCheckpoint, EveryRegistryPolicyRoundTrips) {
  core::VnfEnv env(
      ScenarioCatalog::instance().build("geo-distributed", small_scenario_overrides()));
  for (const std::string& name : ManagerRegistry::instance().names()) {
    const auto manager = ManagerRegistry::instance().create(name, env);
    // Exercise the policy a little so stateful ones have non-trivial state.
    core::EpisodeOptions episode;
    episode.duration_s = 100.0;
    episode.max_requests = 8;
    episode.seed = 3;
    (void)core::run_episode(env, *manager, episode);

    const std::string dir = fresh_dir("registry_" + name);
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/m.vnfmc";
    core::write_checkpoint(path, *manager, {});

    const auto restored = ManagerRegistry::instance().create(name, env);
    (void)core::read_checkpoint(path, *restored);
    EXPECT_EQ(state_bytes(*manager), state_bytes(*restored)) << name;
    EXPECT_EQ(manager->checkpoint_state(), restored->checkpoint_state()) << name;
  }
}

}  // namespace
}  // namespace vnfm::exp
