#include "exp/experiment.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/heuristics.hpp"
#include "exp/registry.hpp"
#include "exp/scenario.hpp"

namespace vnfm::exp {
namespace {

/// Exact (bit-identical) comparison of every EpisodeResult field.
void expect_identical(const core::EpisodeResult& a, const core::EpisodeResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.total_reward, b.total_reward) << label;
  EXPECT_EQ(a.requests, b.requests) << label;
  EXPECT_EQ(a.cost_per_request, b.cost_per_request) << label;
  EXPECT_EQ(a.total_cost, b.total_cost) << label;
  EXPECT_EQ(a.acceptance_ratio, b.acceptance_ratio) << label;
  EXPECT_EQ(a.mean_latency_ms, b.mean_latency_ms) << label;
  EXPECT_EQ(a.p95_latency_ms, b.p95_latency_ms) << label;
  EXPECT_EQ(a.sla_violation_ratio, b.sla_violation_ratio) << label;
  EXPECT_EQ(a.mean_utilization, b.mean_utilization) << label;
  EXPECT_EQ(a.deployments, b.deployments) << label;
  EXPECT_EQ(a.running_cost, b.running_cost) << label;
  EXPECT_EQ(a.revenue, b.revenue) << label;
}

core::EnvOptions tiny_env_options() {
  return ScenarioCatalog::instance().build(
      "geo-distributed", Config{{"nodes", "4"}, {"arrival_rate", "1.5"}});
}

core::EpisodeOptions short_episode() {
  core::EpisodeOptions options;
  options.duration_s = 400.0;
  options.seed = 11;
  return options;
}

TEST(EvaluateParallel, BitIdenticalToSequentialForEveryCloneablePolicy) {
  const core::EnvOptions env_options = tiny_env_options();
  core::VnfEnv env(env_options);
  // Learners get a couple of training episodes first so their eval clones
  // carry non-trivial learned state.
  for (const std::string name :
       {"dqn", "tabular_q", "reinforce", "actor_critic", "greedy_latency",
        "myopic_cost", "first_fit", "static_provision", "random"}) {
    const auto manager = ManagerRegistry::instance().create(name, env);
    core::EpisodeOptions train = short_episode();
    (void)core::train_manager(env, *manager, 2, train);

    const EvalReport sequential =
        evaluate_parallel(env_options, *manager, short_episode(), 6, 1);
    const EvalReport parallel =
        evaluate_parallel(env_options, *manager, short_episode(), 6, 4);
    ASSERT_EQ(sequential.per_seed.size(), parallel.per_seed.size()) << name;
    EXPECT_EQ(sequential.seeds, parallel.seeds) << name;
    for (std::size_t i = 0; i < sequential.per_seed.size(); ++i)
      expect_identical(sequential.per_seed[i], parallel.per_seed[i],
                       name + " repeat " + std::to_string(i));
    expect_identical(sequential.mean, parallel.mean, name + " mean");
    // Repeats must actually simulate traffic for the identity to be meaningful.
    EXPECT_GT(sequential.mean.requests, 0U) << name;
  }
}

TEST(EvaluateParallel, MeanMatchesRunnerMeanResult) {
  const core::EnvOptions env_options = tiny_env_options();
  core::VnfEnv env(env_options);
  const auto manager = ManagerRegistry::instance().create("greedy_latency", env);
  const EvalReport report =
      evaluate_parallel(env_options, *manager, short_episode(), 4, 4);
  expect_identical(report.mean, core::mean_result(report.per_seed), "mean");
}

/// A manager without clone_for_eval: the evaluator must fall back to the
/// sequential path and still produce the same per-seed results.
class UncloneableGreedy : public core::Manager {
 public:
  [[nodiscard]] std::string name() const override { return "uncloneable_greedy"; }
  [[nodiscard]] int select_action(core::VnfEnv& env) override {
    return inner_.select_action(env);
  }

 private:
  core::GreedyLatencyManager inner_;
};

TEST(EvaluateParallel, UncloneableManagerFallsBackToSequential) {
  const core::EnvOptions env_options = tiny_env_options();
  UncloneableGreedy uncloneable;
  core::GreedyLatencyManager cloneable;
  const EvalReport fallback =
      evaluate_parallel(env_options, uncloneable, short_episode(), 4, 4);
  const EvalReport reference =
      evaluate_parallel(env_options, cloneable, short_episode(), 4, 4);
  for (std::size_t i = 0; i < fallback.per_seed.size(); ++i)
    expect_identical(fallback.per_seed[i], reference.per_seed[i],
                     "repeat " + std::to_string(i));
}

TEST(EvaluateParallel, RandomManagerEpisodesAreOrderIndependent) {
  // The random baseline reseeds per episode, so a repeat of the same episode
  // seed replays exactly no matter what ran in between — this is what keeps
  // multi-repeat evaluations decorrelated yet deterministic.
  core::VnfEnv env(tiny_env_options());
  core::RandomManager random(5);
  core::EpisodeOptions episode = short_episode();
  episode.training = false;
  episode.seed = 123;
  const auto first = core::run_episode(env, random, episode);
  core::EpisodeOptions other = episode;
  other.seed = 456;
  (void)core::run_episode(env, random, other);
  const auto replay = core::run_episode(env, random, episode);
  expect_identical(first, replay, "random replay after interleaved episode");
}

TEST(EvaluateParallel, ZeroRepeatsThrows) {
  core::GreedyLatencyManager greedy;
  EXPECT_THROW((void)evaluate_parallel(tiny_env_options(), greedy, short_episode(), 0, 2),
               std::invalid_argument);
}

TEST(Experiment, FluentChainTrainsAndEvaluates) {
  auto experiment = Experiment::scenario(
      "geo-distributed", Config{{"nodes", "4"}, {"arrival_rate", "1.5"}});
  const EvalReport report = experiment.manager("tabular_q")
                                .seed(11)
                                .threads(4)
                                .train_duration(400.0)
                                .eval_duration(400.0)
                                .train(3)
                                .evaluate(4);
  EXPECT_EQ(experiment.learning_curve().size(), 3U);
  ASSERT_EQ(report.per_seed.size(), 4U);
  ASSERT_EQ(report.seeds.size(), 4U);
  EXPECT_GT(report.mean.requests, 0U);
  expect_identical(report.mean, core::mean_result(report.per_seed), "mean");
}

TEST(Experiment, ThreadCountDoesNotChangeResults) {
  EvalReport reports[2];
  for (int i = 0; i < 2; ++i) {
    auto experiment = Experiment::scenario(
        "geo-distributed", Config{{"nodes", "4"}, {"arrival_rate", "1.5"}});
    experiment.manager("dqn")
        .seed(11)
        .threads(i == 0 ? 1 : 4)
        .train_duration(400.0)
        .eval_duration(400.0)
        .train(2);
    reports[i] = experiment.evaluate(5);
  }
  ASSERT_EQ(reports[0].per_seed.size(), reports[1].per_seed.size());
  for (std::size_t i = 0; i < reports[0].per_seed.size(); ++i)
    expect_identical(reports[0].per_seed[i], reports[1].per_seed[i],
                     "repeat " + std::to_string(i));
}

TEST(Experiment, UseManagerAdoptsExternalInstance) {
  auto experiment = Experiment::from_options(tiny_env_options());
  experiment.use_manager(std::make_unique<core::GreedyLatencyManager>())
      .eval_duration(400.0);
  EXPECT_EQ(experiment.manager_ref().name(), "greedy_latency");
  const EvalReport report = experiment.evaluate(2);
  EXPECT_EQ(report.per_seed.size(), 2U);
}

TEST(Experiment, EvaluateWithoutManagerThrows) {
  auto experiment = Experiment::from_options(tiny_env_options());
  EXPECT_THROW((void)experiment.evaluate(1), std::logic_error);
}

}  // namespace
}  // namespace vnfm::exp
