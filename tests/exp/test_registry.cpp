#include "exp/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/drl_manager.hpp"
#include "core/migration.hpp"
#include "core/runner.hpp"
#include "exp/scenario.hpp"

namespace vnfm::exp {
namespace {

core::EnvOptions tiny_env_options() {
  return ScenarioCatalog::instance().build(
      "baseline", Config{{"nodes", "4"}, {"arrival_rate", "1.0"}});
}

TEST(ManagerRegistry, ContainsEveryBuiltinPolicy) {
  const auto names = ManagerRegistry::instance().names();
  for (const std::string expected :
       {"dqn", "vanilla_dqn", "double_dqn", "dueling_ddqn", "per_ddqn", "reinforce",
        "actor_critic", "tabular_q", "greedy_latency", "myopic_cost", "first_fit",
        "static_provision", "random", "consolidating"}) {
    EXPECT_TRUE(std::count(names.begin(), names.end(), expected) == 1)
        << "missing builtin manager: " << expected;
  }
}

TEST(ManagerRegistry, EveryRegisteredNameConstructsAndRuns) {
  core::VnfEnv env(tiny_env_options());
  core::EpisodeOptions episode;
  episode.duration_s = 300.0;
  episode.max_requests = 5;
  episode.training = false;
  for (const auto& name : ManagerRegistry::instance().names()) {
    const auto manager = ManagerRegistry::instance().create(name, env);
    ASSERT_NE(manager, nullptr) << name;
    EXPECT_FALSE(manager->name().empty()) << name;
    const auto result = core::run_episode(env, *manager, episode);
    EXPECT_LE(result.requests, 5U) << name;
  }
}

TEST(ManagerRegistry, UnknownNameThrowsListingRegisteredNames) {
  core::VnfEnv env(tiny_env_options());
  try {
    (void)ManagerRegistry::instance().create("no_such_policy", env);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("no_such_policy"), std::string::npos);
    EXPECT_NE(message.find("greedy_latency"), std::string::npos);
  }
}

TEST(ManagerRegistry, DuplicateRegistrationThrows) {
  EXPECT_THROW(ManagerRegistry::instance().add(
                   "dqn", [](const core::VnfEnv&, const Config&) {
                     return std::unique_ptr<core::Manager>();
                   }),
               std::invalid_argument);
}

TEST(ManagerRegistry, CustomRegistrationIsCreatable) {
  static ManagerRegistrar registrar(
      "test_custom_greedy", [](const core::VnfEnv& env, const Config& params) {
        return ManagerRegistry::instance().create("greedy_latency", env, params);
      });
  core::VnfEnv env(tiny_env_options());
  const auto manager =
      ManagerRegistry::instance().create("test_custom_greedy", env);
  EXPECT_EQ(manager->name(), "greedy_latency");
}

TEST(ManagerRegistry, DqnParamsReachTheAgentConfig) {
  core::VnfEnv env(tiny_env_options());
  const auto manager = ManagerRegistry::instance().create(
      "dueling_ddqn", env,
      Config{{"replay_capacity", "1234"}, {"seed", "99"}, {"name", "custom"}});
  const auto* dqn = dynamic_cast<const core::DqnManager*>(manager.get());
  ASSERT_NE(dqn, nullptr);
  EXPECT_EQ(manager->name(), "custom");
  EXPECT_TRUE(dqn->agent().config().dueling);
  EXPECT_TRUE(dqn->agent().config().double_dqn);
  EXPECT_EQ(dqn->agent().config().replay_capacity, 1234U);
  EXPECT_EQ(dqn->agent().config().seed, 99U);
}

TEST(ManagerRegistry, ConsolidatingDecoratorWrapsInnerPolicy) {
  core::VnfEnv env(tiny_env_options());
  const auto manager = ManagerRegistry::instance().create(
      "consolidating", env, Config{{"inner", "first_fit"}});
  EXPECT_EQ(manager->name(), "first_fit+consolidation");
  EXPECT_NE(dynamic_cast<const core::ConsolidatingManager*>(manager.get()), nullptr);
  EXPECT_THROW((void)ManagerRegistry::instance().create(
                   "consolidating", env, Config{{"inner", "consolidating"}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace vnfm::exp
