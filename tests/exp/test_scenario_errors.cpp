// ScenarioCatalog error paths, exercised directly (previously only implicit
// in the happy-path composition tests): typo'd override keys must throw
// naming the key and listing the accepted set, keys of overlays absent from
// the expression are rejected the same way, unknown bases/overlays list the
// registered names, and out-of-range event node indices fail at build()
// time with the offending index — not mid-episode.
#include "exp/scenario.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace vnfm::exp {
namespace {

/// Runs `fn`, requiring it to throw std::invalid_argument, and returns the
/// exception message for content checks.
template <typename Fn>
std::string message_of(const Fn& fn) {
  try {
    fn();
  } catch (const std::invalid_argument& error) {
    return error.what();
  }
  ADD_FAILURE() << "expected std::invalid_argument";
  return {};
}

TEST(ScenarioErrors, TypoedOverrideKeyListsAcceptedSet) {
  const std::string message = message_of([] {
    (void)ScenarioCatalog::instance().build("geo-distributed",
                                            Config{{"arival_rate", "2.0"}});
  });
  // Names the offending key, the expression, and the accepted keys.
  EXPECT_NE(message.find("arival_rate"), std::string::npos) << message;
  EXPECT_NE(message.find("geo-distributed"), std::string::npos) << message;
  EXPECT_NE(message.find("accepted keys"), std::string::npos) << message;
  EXPECT_NE(message.find("arrival_rate"), std::string::npos) << message;
  EXPECT_NE(message.find("nodes"), std::string::npos) << message;
}

TEST(ScenarioErrors, KeyOfAbsentOverlayIsRejected) {
  // flash_magnitude belongs to the flash-crowd overlay; without the overlay
  // in the expression it would be a silent no-op, so build() throws.
  const std::string message = message_of([] {
    (void)ScenarioCatalog::instance().build("geo-distributed",
                                            Config{{"flash_magnitude", "3.0"}});
  });
  EXPECT_NE(message.find("flash_magnitude"), std::string::npos) << message;
  EXPECT_NE(message.find("accepted keys"), std::string::npos) << message;

  // The same key is accepted once the overlay joins the expression.
  EXPECT_NO_THROW((void)ScenarioCatalog::instance().build(
      "geo-distributed+flash-crowd", Config{{"flash_magnitude", "3.0"}}));
}

TEST(ScenarioErrors, UnknownBaseListsRegisteredScenarios) {
  const std::string message = message_of(
      [] { (void)ScenarioCatalog::instance().build("geo-distribted"); });
  EXPECT_NE(message.find("geo-distribted"), std::string::npos) << message;
  EXPECT_NE(message.find("registered"), std::string::npos) << message;
  EXPECT_NE(message.find("geo-distributed"), std::string::npos) << message;
}

TEST(ScenarioErrors, UnknownOverlayListsRegisteredOverlays) {
  const std::string message = message_of([] {
    (void)ScenarioCatalog::instance().build("geo-distributed+flashcrowd");
  });
  EXPECT_NE(message.find("flashcrowd"), std::string::npos) << message;
  EXPECT_NE(message.find("registered"), std::string::npos) << message;
  EXPECT_NE(message.find("node-failure"), std::string::npos) << message;
}

TEST(ScenarioErrors, EmptyExpressionTokensThrow) {
  EXPECT_THROW((void)ScenarioCatalog::instance().build(""), std::invalid_argument);
  EXPECT_THROW((void)ScenarioCatalog::instance().build("geo-distributed+"),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioCatalog::instance().build("+flash-crowd"),
               std::invalid_argument);
}

TEST(ScenarioErrors, OutOfRangeEventNodeIndexThrowsAtBuildTime) {
  // fail_node 9 on an 8-node topology: the event schedule is validated when
  // the final node count is known, with the offending index in the message.
  const std::string message = message_of([] {
    (void)ScenarioCatalog::instance().build("geo-distributed+node-failure",
                                            Config{{"fail_node", "9"}});
  });
  EXPECT_NE(message.find("node 9"), std::string::npos) << message;
  EXPECT_NE(message.find("8 nodes"), std::string::npos) << message;
  EXPECT_NE(message.find("fail_node"), std::string::npos) << message;
}

TEST(ScenarioErrors, NodeIndexValidationUsesFinalNodeCount) {
  // The `nodes` override lands after the overlays, so validation must use
  // the final topology: node 9 is invalid at the default 8 nodes but valid
  // once the same expression is built with nodes=12.
  EXPECT_THROW((void)ScenarioCatalog::instance().build(
                   "geo-distributed+capacity-drop", Config{{"capacity_node", "9"}}),
               std::invalid_argument);
  EXPECT_NO_THROW((void)ScenarioCatalog::instance().build(
      "geo-distributed+capacity-drop",
      Config{{"capacity_node", "9"}, {"nodes", "12"}}));
}

TEST(ScenarioErrors, FilterKnownOverridesDropsOnlyUnknownKeys) {
  const Config mixed{{"arrival_rate", "2.0"},
                     {"episodes", "12"},  // experiment knob, not a scenario key
                     {"flash_magnitude", "3.0"}};
  const Config filtered = ScenarioCatalog::instance().filter_known_overrides(mixed);
  EXPECT_TRUE(filtered.contains("arrival_rate"));
  EXPECT_TRUE(filtered.contains("flash_magnitude"));
  EXPECT_FALSE(filtered.contains("episodes"));
}

}  // namespace
}  // namespace vnfm::exp
