// Experiment-level regression tests for parallel training: the acceptance
// contract is that train_threads(K) produces a bit-identical learning curve
// (and evaluation) to train_threads(1) for the DQN manager, and that the
// default train() path keeps the legacy inline-loop semantics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/runner.hpp"
#include "exp/experiment.hpp"
#include "exp/registry.hpp"
#include "exp/scenario.hpp"

namespace vnfm::exp {
namespace {

void expect_identical(const core::EpisodeResult& a, const core::EpisodeResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.total_reward, b.total_reward) << label;
  EXPECT_EQ(a.requests, b.requests) << label;
  EXPECT_EQ(a.cost_per_request, b.cost_per_request) << label;
  EXPECT_EQ(a.total_cost, b.total_cost) << label;
  EXPECT_EQ(a.acceptance_ratio, b.acceptance_ratio) << label;
  EXPECT_EQ(a.mean_latency_ms, b.mean_latency_ms) << label;
  EXPECT_EQ(a.p95_latency_ms, b.p95_latency_ms) << label;
  EXPECT_EQ(a.sla_violation_ratio, b.sla_violation_ratio) << label;
  EXPECT_EQ(a.mean_utilization, b.mean_utilization) << label;
  EXPECT_EQ(a.deployments, b.deployments) << label;
  EXPECT_EQ(a.running_cost, b.running_cost) << label;
  EXPECT_EQ(a.revenue, b.revenue) << label;
}

Experiment small_experiment() {
  return Experiment::scenario("geo-distributed",
                              Config{{"nodes", "4"}, {"arrival_rate", "1.5"}});
}

TEST(TrainParallel, TrainThreadsBitIdenticalAcrossThreadCounts) {
  std::vector<std::vector<core::EpisodeResult>> curves;
  std::vector<EvalReport> reports;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    auto experiment = small_experiment();
    experiment.manager("dqn")
        .seed(11)
        .train_threads(threads)
        .train_duration(300.0)
        .eval_duration(300.0)
        .train(6);
    EXPECT_TRUE(experiment.train_stats().parallel) << threads << " threads";
    curves.push_back(experiment.learning_curve());
    reports.push_back(experiment.evaluate(3));
  }
  for (std::size_t r = 1; r < curves.size(); ++r) {
    ASSERT_EQ(curves[0].size(), curves[r].size());
    for (std::size_t i = 0; i < curves[0].size(); ++i)
      expect_identical(curves[0][i], curves[r][i],
                       "episode " + std::to_string(i) + " variant " + std::to_string(r));
    ASSERT_EQ(reports[0].per_seed.size(), reports[r].per_seed.size());
    for (std::size_t i = 0; i < reports[0].per_seed.size(); ++i)
      expect_identical(reports[0].per_seed[i], reports[r].per_seed[i],
                       "eval repeat " + std::to_string(i));
  }
  // The runs must simulate real traffic for the identity to be meaningful.
  EXPECT_GT(reports[0].mean.requests, 0u);
  EXPECT_GT(curves[0].front().requests, 0u);
}

TEST(TrainParallel, DefaultTrainMatchesLegacyTrainManager) {
  // Without train_threads(), train() must reproduce the historical inline
  // loop exactly (same seeds, same online-learning semantics).
  auto experiment = small_experiment();
  experiment.manager("dqn").seed(11).train_duration(300.0).train(3);
  EXPECT_FALSE(experiment.train_stats().parallel);

  core::VnfEnv env(ScenarioCatalog::instance().build(
      "geo-distributed", Config{{"nodes", "4"}, {"arrival_rate", "1.5"}}));
  const auto manager = ManagerRegistry::instance().create("dqn", env);
  core::EpisodeOptions episode;
  episode.duration_s = 300.0;
  episode.seed = 11;
  const auto expected = core::train_manager(env, *manager, 3, episode);

  ASSERT_EQ(experiment.learning_curve().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    expect_identical(experiment.learning_curve()[i], expected[i],
                     "episode " + std::to_string(i));
}

TEST(TrainParallel, CurveSeedsContinueAcrossTrainCalls) {
  auto experiment = small_experiment();
  experiment.manager("dqn")
      .seed(7)
      .train_threads(2)
      .train_duration(200.0)
      .max_requests(2)
      .train(2)
      .train(2);
  const auto& seeds = experiment.learning_curve_seeds();
  ASSERT_EQ(seeds.size(), 4u);
  for (std::size_t i = 0; i < seeds.size(); ++i)
    EXPECT_EQ(seeds[i], core::train_seed(7, i));
}

TEST(TrainParallel, TrainStatsAccumulate) {
  auto experiment = small_experiment();
  experiment.manager("dqn")
      .seed(7)
      .train_threads(2)
      .train_duration(200.0)
      .max_requests(4)
      .train(2);
  const auto first = experiment.train_stats();
  EXPECT_EQ(first.episodes, 2u);
  EXPECT_GT(first.transitions, 0u);
  EXPECT_GT(first.wall_seconds, 0.0);
  experiment.train(2);
  EXPECT_EQ(experiment.train_stats().episodes, 4u);
  EXPECT_GE(experiment.train_stats().transitions, first.transitions);
}

TEST(TrainParallel, InlineLearnersFallBackToSequential) {
  auto experiment = small_experiment();
  experiment.manager("reinforce")
      .seed(7)
      .train_threads(4)
      .train_duration(200.0)
      .max_requests(4)
      .train(2);
  EXPECT_FALSE(experiment.train_stats().parallel);
  EXPECT_EQ(experiment.learning_curve().size(), 2u);
}

TEST(TrainParallel, SyncPeriodRejectsZero) {
  auto experiment = small_experiment();
  EXPECT_THROW(experiment.train_sync_period(0), std::invalid_argument);
}

TEST(TrainParallel, LearnerThreadsBitIdenticalThroughFacade) {
  // Experiment::learner_threads(n) drives the data-parallel gradient
  // engine; curves and train stats counters must match the 1-learner run,
  // and the grad-step accounting must be populated.
  std::vector<std::vector<core::EpisodeResult>> curves;
  std::vector<core::TrainStats> stats;
  for (const std::size_t learners : {std::size_t{1}, std::size_t{4}}) {
    auto experiment = small_experiment();
    experiment.manager("dqn", Config{{"min_replay_before_training", "50"}})
        .seed(11)
        .train_threads(2)
        .learner_threads(learners)
        .train_duration(300.0)
        .train(6);
    EXPECT_EQ(experiment.train_stats().learner_threads, learners);
    curves.push_back(experiment.learning_curve());
    stats.push_back(experiment.train_stats());
  }
  ASSERT_EQ(curves[0].size(), curves[1].size());
  for (std::size_t i = 0; i < curves[0].size(); ++i)
    expect_identical(curves[0][i], curves[1][i], "episode " + std::to_string(i));
  EXPECT_GT(stats[0].grad_steps, 0u);
  EXPECT_EQ(stats[0].grad_steps, stats[1].grad_steps);
  EXPECT_GT(stats[0].grad_seconds, 0.0);
  EXPECT_GT(stats[0].grad_step_micros(), 0.0);
}

}  // namespace
}  // namespace vnfm::exp
