// Regression tests for the held-out evaluation seed contract: the episode
// seeds consumed by evaluation (evaluate_manager, exp::evaluate_parallel,
// Experiment::evaluate) must be disjoint from those consumed by training
// (train_manager, Experiment::train) for any realistic episode budget.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/heuristics.hpp"
#include "core/runner.hpp"
#include "exp/experiment.hpp"
#include "exp/scenario.hpp"

namespace vnfm::core {
namespace {

/// Records the seed of every episode it participates in.
class SeedSpyManager : public Manager {
 public:
  explicit SeedSpyManager(std::vector<std::uint64_t>* seeds) : seeds_(seeds) {}

  [[nodiscard]] std::string name() const override { return "seed_spy"; }
  void on_episode_start(VnfEnv& env) override {
    seeds_->push_back(env.episode_seed());
  }
  [[nodiscard]] int select_action(VnfEnv& env) override {
    return inner_.select_action(env);
  }
  [[nodiscard]] std::unique_ptr<Manager> clone_for_eval() const override {
    return std::make_unique<SeedSpyManager>(*this);
  }

 private:
  std::vector<std::uint64_t>* seeds_;  ///< shared across clones on purpose
  GreedyLatencyManager inner_;
};

EpisodeOptions short_episode(std::uint64_t seed) {
  EpisodeOptions options;
  options.duration_s = 200.0;
  options.max_requests = 2;
  options.seed = seed;
  return options;
}

TEST(EvalSeeds, SeedHelpersAreDisjointForRealisticBudgets) {
  constexpr std::uint64_t base = 42;
  static_assert(train_seed(base, 0) == base);
  static_assert(eval_seed(base, 0) == base + kEvalSeedOffset);
  // Any training run shorter than kEvalSeedOffset episodes cannot collide
  // with the first million evaluation repeats.
  EXPECT_LT(train_seed(base, 999'999), eval_seed(base, 0));
}

TEST(EvalSeeds, EvaluateManagerUsesHeldOutSeeds) {
  core::VnfEnv env(exp::ScenarioCatalog::instance().build(
      "baseline", Config{{"nodes", "4"}, {"arrival_rate", "1.0"}}));
  std::vector<std::uint64_t> train_seeds;
  std::vector<std::uint64_t> eval_seeds;
  {
    SeedSpyManager spy(&train_seeds);
    (void)train_manager(env, spy, 5, short_episode(42));
  }
  {
    SeedSpyManager spy(&eval_seeds);
    (void)evaluate_manager(env, spy, short_episode(42), 3);
  }
  ASSERT_EQ(train_seeds.size(), 5U);
  ASSERT_EQ(eval_seeds.size(), 3U);
  for (std::size_t i = 0; i < train_seeds.size(); ++i)
    EXPECT_EQ(train_seeds[i], train_seed(42, i));
  for (std::size_t i = 0; i < eval_seeds.size(); ++i)
    EXPECT_EQ(eval_seeds[i], eval_seed(42, i));
  std::set<std::uint64_t> overlap(train_seeds.begin(), train_seeds.end());
  for (const auto seed : eval_seeds)
    EXPECT_EQ(overlap.count(seed), 0U) << "evaluation reused training seed " << seed;
}

TEST(EvalSeeds, ExperimentEvaluationIsHeldOutFromItsTraining) {
  auto experiment = exp::Experiment::scenario(
      "baseline", Config{{"nodes", "4"}, {"arrival_rate", "1.0"}});
  std::vector<std::uint64_t> seeds;
  // threads(1): the spy clones share one seed log, which is only safe on the
  // sequential path.
  experiment.use_manager(std::make_unique<SeedSpyManager>(&seeds))
      .seed(7)
      .threads(1)
      .train_duration(200.0)
      .eval_duration(200.0)
      .max_requests(2)
      .train(4);
  const std::vector<std::uint64_t> train_seeds = seeds;
  seeds.clear();
  const auto report = experiment.evaluate(3);
  ASSERT_EQ(train_seeds.size(), 4U);
  for (std::size_t i = 0; i < train_seeds.size(); ++i)
    EXPECT_EQ(train_seeds[i], train_seed(7, i));
  // The spy's clones share the seed log; every evaluation episode must have
  // drawn from the held-out seed space reported by the EvalReport.
  const std::set<std::uint64_t> observed(seeds.begin(), seeds.end());
  const std::set<std::uint64_t> reported(report.seeds.begin(), report.seeds.end());
  EXPECT_EQ(observed, reported);
  for (std::size_t i = 0; i < report.seeds.size(); ++i)
    EXPECT_EQ(report.seeds[i], eval_seed(7, i));
  for (const auto seed : train_seeds) EXPECT_EQ(observed.count(seed), 0U);
}

}  // namespace
}  // namespace vnfm::core
