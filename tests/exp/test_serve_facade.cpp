// Serving through the Experiment façade: seed defaulting, shard invariance
// end-to-end, and the BENCH_serve JSON report writer.
#include "exp/experiment.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "exp/report_io.hpp"

namespace vnfm::exp {
namespace {

const Config& small_scenario_overrides() {
  static const Config overrides{
      {"nodes", "4"}, {"arrival_rate", "2.0"}, {"seed", "17"}};
  return overrides;
}

Experiment small_experiment() {
  Experiment experiment = Experiment::scenario("geo-distributed",
                                               small_scenario_overrides());
  experiment.manager("dqn").seed(11);
  return experiment;
}

core::ServeOptions small_serve() {
  core::ServeOptions options;
  options.shards = 2;
  options.partitions = 4;
  options.requests_per_partition = 16;
  options.queue_capacity = 16;
  return options;
}

TEST(ExperimentServe, DefaultsSeedToExperimentSeed) {
  Experiment experiment = small_experiment();
  const core::ServeStats defaulted = experiment.serve(small_serve());
  core::ServeOptions pinned = small_serve();
  pinned.seed = 11;  // the experiment seed
  const core::ServeStats explicit_seed = experiment.serve(pinned);
  EXPECT_TRUE(defaulted.deterministically_equal(explicit_seed));
  core::ServeOptions other = small_serve();
  other.seed = 99;
  EXPECT_FALSE(experiment.serve(other).deterministically_equal(defaulted));
}

TEST(ExperimentServe, ShardInvarianceEndToEnd) {
  Experiment experiment = small_experiment();
  core::ServeOptions one = small_serve();
  one.shards = 1;
  core::ServeOptions four = small_serve();
  four.shards = 4;
  const core::ServeStats a = experiment.serve(one);
  const core::ServeStats b = experiment.serve(four);
  EXPECT_TRUE(a.deterministically_equal(b));
  EXPECT_EQ(a.requests, one.partitions * one.requests_per_partition);
}

TEST(ExperimentServe, WriteServeJsonEmitsReport) {
  Experiment experiment = small_experiment();
  const core::ServeOptions options = small_serve();
  const core::ServeStats stats = experiment.serve(options);
  const std::string path = ::testing::TempDir() + "serve_report.json";
  write_serve_json(stats, options, path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  for (const char* key :
       {"\"options\"", "\"deterministic\"", "\"wall_clock\"", "\"requests\"",
        "\"decision_digest\"", "\"partitions\"", "\"latency_p99_micros\"",
        "\"shards\""})
    EXPECT_NE(json.find(key), std::string::npos) << key;
  EXPECT_NE(json.find("\"requests\": " + std::to_string(stats.requests)),
            std::string::npos);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace vnfm::exp
