// Scenario-level tests of the generative fault subsystem: catalog plumbing of
// the +mtbf-faults/+rack-faults/+link-flaps overlays and the fault_features
// knob, scripted/generated stream merging, the fault-visibility feature
// block, and determinism invariant #12 — fault-overlay episodes bit-identical
// across evaluation AND actor thread counts.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/environment.hpp"
#include "core/runner.hpp"
#include "edgesim/fault_model.hpp"
#include "exp/experiment.hpp"
#include "exp/registry.hpp"
#include "exp/scenario.hpp"

namespace vnfm::exp {
namespace {

void expect_result_eq(const core::EpisodeResult& a, const core::EpisodeResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.total_reward, b.total_reward) << label;
  EXPECT_EQ(a.requests, b.requests) << label;
  EXPECT_EQ(a.cost_per_request, b.cost_per_request) << label;
  EXPECT_EQ(a.total_cost, b.total_cost) << label;
  EXPECT_EQ(a.acceptance_ratio, b.acceptance_ratio) << label;
  EXPECT_EQ(a.mean_latency_ms, b.mean_latency_ms) << label;
  EXPECT_EQ(a.p95_latency_ms, b.p95_latency_ms) << label;
  EXPECT_EQ(a.sla_violation_ratio, b.sla_violation_ratio) << label;
  EXPECT_EQ(a.mean_utilization, b.mean_utilization) << label;
  EXPECT_EQ(a.deployments, b.deployments) << label;
  EXPECT_EQ(a.running_cost, b.running_cost) << label;
  EXPECT_EQ(a.revenue, b.revenue) << label;
}

/// Aggressive fault knobs so short test episodes actually see failures.
const Config kFastFaults{{"mtbf_s", "300"}, {"mttr_s", "120"}};

/// Drives a place-first-valid policy until `until_s`; returns chains killed.
std::size_t drive_until(core::VnfEnv& env, double until_s) {
  while (env.now() < until_s && env.begin_next_request())
    while (env.has_pending_chain()) {
      const auto& mask = env.action_mask();
      int action = env.reject_action();
      for (std::size_t a = 0; a < mask.size(); ++a)
        if (mask[a]) { action = static_cast<int>(a); break; }
      (void)env.step(action);
    }
  return env.metrics().chains_killed();
}

TEST(FaultScenarios, CatalogPlumbsEveryFaultOverlay) {
  const core::EnvOptions options = ScenarioCatalog::instance().build(
      "geo-distributed+mtbf-faults+rack-faults+link-flaps",
      Config{{"mtbf_s", "900"},
             {"mttr_s", "120"},
             {"fault_seed", "7"},
             {"rack_fault_mode", "uplinks"},
             {"rack_fault_size", "2"},
             {"flap_down_cap_s", "60"},
             {"fault_features", "true"}});
  ASSERT_TRUE(static_cast<bool>(options.fault_model));
  EXPECT_TRUE(options.fault_features);

  core::VnfEnv env(options);
  env.reset(1);
  ASSERT_NE(env.fault_process(), nullptr);
  EXPECT_EQ(env.fault_process()->name(),
            "composite(composite(mtbf-faults+rack-faults)+link-flaps)");
}

TEST(FaultScenarios, RackFaultModeRejectsUnknownValues) {
  EXPECT_THROW(ScenarioCatalog::instance().build(
                   "geo-distributed+rack-faults",
                   Config{{"rack_fault_mode", "everything"}}),
               std::invalid_argument);
}

TEST(FaultScenarios, MtbfFaultsKillChainsDeterministically) {
  auto run_once = [] {
    core::VnfEnv env(ScenarioCatalog::instance().build(
        "geo-distributed+mtbf-faults", kFastFaults));
    env.reset(5);
    const std::size_t killed = drive_until(env, 1'800.0);
    return std::tuple<std::size_t, std::uint64_t, double>{
        killed, env.fault_events_applied(), env.metrics().total_cost()};
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_GT(std::get<0>(first), 0U);
  EXPECT_GT(std::get<1>(first), 0U);
  EXPECT_EQ(first, second);
}

TEST(FaultScenarios, GeneratedStreamMergesWithScriptedSchedule) {
  // A scripted node-failure overlay composed with a generative process: both
  // must apply through the same deterministic path.
  Config overrides = kFastFaults;
  overrides.set("fail_node", "2");
  overrides.set("fail_at_s", "200");
  overrides.set("recover_at_s", "400");
  core::VnfEnv env(ScenarioCatalog::instance().build(
      "geo-distributed+node-failure+mtbf-faults", overrides));
  env.reset(5);
  drive_until(env, 1'200.0);
  EXPECT_EQ(env.events_applied(), 2U) << "both scripted events must apply";
  EXPECT_GT(env.fault_events_applied(), 0U);
}

TEST(FaultScenarios, FaultFeaturesAppendTwoFloatsPerNodeRow) {
  const Config base{{"nodes", "6"}};
  Config with = base;
  with.set("fault_features", "true");
  core::VnfEnv legacy(ScenarioCatalog::instance().build("geo-distributed", base));
  core::VnfEnv visible(ScenarioCatalog::instance().build("geo-distributed", with));
  legacy.reset(1);
  visible.reset(1);
  ASSERT_TRUE(legacy.begin_next_request());
  ASSERT_TRUE(visible.begin_next_request());
  // Same tail block, +2 floats per node row.
  EXPECT_EQ(visible.state_dim(), legacy.state_dim() + 2 * 6);
  // With no faults yet: failed flag 0, capacity scale 1.0 -> 0.5 normalised.
  const auto features = visible.features();
  const std::size_t row = 8;  // 6 legacy + 2 fault floats
  for (std::size_t node = 0; node < 6; ++node) {
    EXPECT_EQ(features[node * row + 6], 0.0F) << "node " << node;
    EXPECT_EQ(features[node * row + 7], 0.5F) << "node " << node;
  }
}

TEST(FaultScenarios, FailedFlagTracksClusterStateUnderFaultFeatures) {
  Config overrides{{"nodes", "6"}, {"fault_features", "true"},
                   {"fail_node", "3"}, {"fail_at_s", "10"}, {"recover_at_s", "0"}};
  core::VnfEnv env(ScenarioCatalog::instance().build(
      "geo-distributed+node-failure", overrides));
  env.reset(1);
  // Drive past the scripted failure, then inspect node 3's fault block.
  while (env.now() < 60.0 && env.begin_next_request())
    while (env.has_pending_chain()) (void)env.step(env.reject_action());
  ASSERT_TRUE(env.cluster().node_failed(edgesim::NodeId{3}));
  ASSERT_TRUE(env.begin_next_request());
  const auto features = env.features();
  EXPECT_EQ(features[3 * 8 + 6], 1.0F);
}

TEST(FaultScenarios, FaultFeaturesComposeWithCandidatePruning) {
  const Config overrides{{"nodes", "40"}, {"candidate_k", "8"},
                         {"fault_features", "true"}, {"mtbf_s", "300"},
                         {"mttr_s", "120"}};
  core::VnfEnv env(ScenarioCatalog::instance().build(
      "large-scale-1k+mtbf-faults", overrides));
  env.reset(1);
  ASSERT_TRUE(env.begin_next_request());
  // Pruned layout: candidate_k rows of (6 + 2) floats + request tail; the
  // mask stays candidate_k + 1 wide.
  EXPECT_EQ(env.feature_rows(), 8U);
  EXPECT_EQ(env.action_mask().size(), 9U);
  const std::size_t tail = env.state_dim() - 8U * 8U;
  EXPECT_GT(tail, 0U);
  while (env.has_pending_chain()) (void)env.step(env.reject_action());
  drive_until(env, 900.0);
  EXPECT_GT(env.fault_events_applied(), 0U);
}

// ---- Determinism invariant #12 ---------------------------------------------

TEST(FaultScenarios, FaultOverlayEpisodesAreEvalThreadCountInvariant) {
  Config overrides = kFastFaults;
  overrides.set("fault_features", "true");
  const core::EnvOptions options = ScenarioCatalog::instance().build(
      "geo-distributed+mtbf-faults+link-flaps", overrides);
  core::VnfEnv env(options);
  const auto manager = ManagerRegistry::instance().create("greedy_latency", env);

  core::EpisodeOptions episode;
  episode.duration_s = 1'200.0;
  episode.seed = 3;
  const EvalReport one = evaluate_parallel(options, *manager, episode, 3, 1);
  const EvalReport four = evaluate_parallel(options, *manager, episode, 3, 4);
  ASSERT_EQ(one.per_seed.size(), four.per_seed.size());
  for (std::size_t i = 0; i < one.per_seed.size(); ++i)
    expect_result_eq(one.per_seed[i], four.per_seed[i],
                     "repeat " + std::to_string(i));
  // Vacuity guard: the fault processes must actually fire in these episodes.
  core::VnfEnv probe(options);
  probe.reset(core::eval_seed(options.seed, 0));
  drive_until(probe, episode.duration_s);
  EXPECT_GT(probe.fault_events_applied(), 0U);
}

TEST(FaultScenarios, FaultOverlayTrainingIsActorThreadCountInvariant) {
  std::vector<std::vector<core::EpisodeResult>> curves;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    auto experiment = Experiment::scenario(
        "geo-distributed+mtbf-faults",
        Config{{"nodes", "4"}, {"arrival_rate", "1.5"}, {"mtbf_s", "300"},
               {"mttr_s", "120"}, {"fault_features", "true"}});
    experiment.manager("dqn")
        .seed(11)
        .train_threads(threads)
        .train_duration(600.0)
        .train(4);
    EXPECT_TRUE(experiment.train_stats().parallel) << threads << " threads";
    curves.push_back(experiment.learning_curve());
  }
  ASSERT_EQ(curves[0].size(), curves[1].size());
  for (std::size_t i = 0; i < curves[0].size(); ++i)
    expect_result_eq(curves[0][i], curves[1][i], "episode " + std::to_string(i));
}

}  // namespace
}  // namespace vnfm::exp
