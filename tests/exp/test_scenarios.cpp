#include "exp/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace vnfm::exp {
namespace {

TEST(ScenarioCatalog, ContainsTheBuiltinScenarios) {
  const auto names = ScenarioCatalog::instance().names();
  for (const std::string expected :
       {"baseline", "geo-distributed", "diurnal", "flash-crowd",
        "heterogeneous-nodes", "large-scale", "trace-replay"}) {
    EXPECT_TRUE(std::count(names.begin(), names.end(), expected) == 1)
        << "missing builtin scenario: " << expected;
    EXPECT_FALSE(ScenarioCatalog::instance().spec(expected).description.empty());
  }
}

TEST(ScenarioCatalog, ContainsTheBuiltinOverlays) {
  const auto names = ScenarioCatalog::instance().overlay_names();
  for (const std::string expected :
       {"flash-crowd", "rate-scale", "node-failure", "capacity-drop"}) {
    EXPECT_TRUE(std::count(names.begin(), names.end(), expected) == 1)
        << "missing builtin overlay: " << expected;
    EXPECT_FALSE(ScenarioCatalog::instance().overlay(expected).description.empty());
  }
}

TEST(ScenarioCatalog, EveryScenarioBuildsAValidEnvironment) {
  for (const auto& name : ScenarioCatalog::instance().names()) {
    if (name == "trace-replay") continue;  // needs a trace file (covered below)
    const core::EnvOptions options = ScenarioCatalog::instance().build(name);
    EXPECT_GE(options.topology.node_count, 1U) << name;
    EXPECT_GT(options.workload.global_arrival_rate, 0.0) << name;
    core::VnfEnv env(options);  // must construct without throwing
    env.reset(1);
    EXPECT_TRUE(env.begin_next_request()) << name;
    EXPECT_GT(env.state_dim(), 0U) << name;
  }
}

TEST(ScenarioCatalog, ScenarioDefaultsMatchTheirStories) {
  const auto& catalog = ScenarioCatalog::instance();
  EXPECT_FALSE(catalog.build("baseline").workload.diurnal_enabled);
  EXPECT_TRUE(catalog.build("geo-distributed").workload.diurnal_enabled);
  EXPECT_DOUBLE_EQ(catalog.build("diurnal").workload.diurnal_amplitude, 0.8);
  EXPECT_GT(catalog.build("flash-crowd").workload.global_arrival_rate,
            catalog.build("baseline").workload.global_arrival_rate);
  EXPECT_GT(catalog.build("heterogeneous-nodes").topology.capacity_jitter,
            catalog.build("baseline").topology.capacity_jitter);
  EXPECT_EQ(catalog.build("large-scale").topology.node_count, 16U);
}

TEST(ScenarioCatalog, OverridesApplyOnTopOfDefaults) {
  const core::EnvOptions options = ScenarioCatalog::instance().build(
      "diurnal", Config{{"nodes", "4"},
                        {"arrival_rate", "0.5"},
                        {"seed", "9"},
                        {"idle_timeout_s", "33"},
                        {"w_rejection", "2.5"}});
  EXPECT_EQ(options.topology.node_count, 4U);
  EXPECT_DOUBLE_EQ(options.workload.global_arrival_rate, 0.5);
  EXPECT_EQ(options.seed, 9U);
  EXPECT_DOUBLE_EQ(options.cluster.idle_timeout_s, 33.0);
  EXPECT_DOUBLE_EQ(options.cost.w_rejection, 2.5);
  // Scenario defaults survive where not overridden.
  EXPECT_DOUBLE_EQ(options.workload.diurnal_amplitude, 0.8);
}

TEST(ScenarioCatalog, UnknownScenarioThrowsListingNames) {
  try {
    (void)ScenarioCatalog::instance().build("no_such_scenario");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("no_such_scenario"), std::string::npos);
    EXPECT_NE(message.find("baseline"), std::string::npos);
  }
}

TEST(ScenarioCatalog, UnknownOverrideKeyThrowsListingAcceptedKeys) {
  try {
    (void)ScenarioCatalog::instance().build("baseline",
                                            Config{{"arival_rate", "2.0"}});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("arival_rate"), std::string::npos);  // the typo, named
    EXPECT_NE(message.find("arrival_rate"), std::string::npos);  // the accepted set
  }
}

TEST(ScenarioCatalog, KeysOfAbsentOverlaysAreRejected) {
  // flash_magnitude without +flash-crowd would be a silent no-op: throw.
  EXPECT_THROW((void)ScenarioCatalog::instance().build(
                   "geo-distributed", Config{{"flash_magnitude", "3"}}),
               std::invalid_argument);
  // With the overlay in the expression the same key is accepted.
  EXPECT_NO_THROW((void)ScenarioCatalog::instance().build(
      "geo-distributed+flash-crowd", Config{{"flash_magnitude", "3"}}));
  // Base-scenario keys stay scoped to their base, too.
  EXPECT_THROW((void)ScenarioCatalog::instance().build(
                   "baseline", Config{{"trace", "x.csv"}}),
               std::invalid_argument);
}

TEST(ScenarioCatalog, AcceptedKeysCoverSharedAndScenarioKeys) {
  const auto keys = ScenarioCatalog::instance().accepted_keys();
  for (const std::string expected :
       {"arrival_rate", "nodes", "seed", "trace", "flash_magnitude", "rate_scale",
        "fail_node", "capacity_factor"}) {
    EXPECT_TRUE(std::count(keys.begin(), keys.end(), expected) == 1)
        << "missing accepted key: " << expected;
  }
}

TEST(ScenarioCatalog, FilterKnownOverridesDropsForeignKeys) {
  const Config mixed{{"episodes", "12"}, {"arrival_rate", "2.0"}, {"threads", "4"}};
  const Config filtered = ScenarioCatalog::instance().filter_known_overrides(mixed);
  EXPECT_FALSE(filtered.contains("episodes"));
  EXPECT_FALSE(filtered.contains("threads"));
  EXPECT_EQ(filtered.get_double("arrival_rate", 0.0), 2.0);
}

TEST(ScenarioCatalog, MalformedOverrideValueThrows) {
  EXPECT_THROW((void)ScenarioCatalog::instance().build(
                   "baseline", Config{{"arrival_rate", "fast"}}),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioCatalog::instance().build(
                   "baseline", Config{{"nodes", "-2"}}),
               std::invalid_argument);
}

TEST(ScenarioCatalog, CompositionAppendsOverlays) {
  const core::EnvOptions options = ScenarioCatalog::instance().build(
      "geo-distributed+flash-crowd+node-failure",
      Config{{"fail_node", "2"}, {"fail_at_s", "600"}, {"recover_at_s", "1200"}});
  ASSERT_TRUE(static_cast<bool>(options.workload_model));
  ASSERT_EQ(options.events.size(), 2U);
  EXPECT_EQ(options.events.events()[0].kind, edgesim::EventKind::kNodeFailure);
  EXPECT_DOUBLE_EQ(options.events.events()[0].time_s, 600.0);
  EXPECT_EQ(edgesim::index(options.events.events()[0].node), 2U);
  EXPECT_EQ(options.events.events()[1].kind, edgesim::EventKind::kNodeRecovery);
}

TEST(ScenarioCatalog, EventNodesAreRangeCheckedAtBuildTime) {
  try {
    (void)ScenarioCatalog::instance().build(
        "geo-distributed+node-failure", Config{{"fail_node", "99"}});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("99"), std::string::npos);
    EXPECT_NE(message.find("fail_node"), std::string::npos);
  }
  // The check uses the *final* node count (the `nodes` override applies last).
  EXPECT_NO_THROW((void)ScenarioCatalog::instance().build(
      "geo-distributed+node-failure", Config{{"fail_node", "11"}, {"nodes", "12"}}));
  EXPECT_THROW((void)ScenarioCatalog::instance().build(
                   "geo-distributed+capacity-drop",
                   Config{{"capacity_node", "4"}, {"nodes", "4"}}),
               std::invalid_argument);
}

TEST(ScenarioCatalog, RateScaleDefaultsToIdentity) {
  // Appending +rate-scale without the key must not silently change load.
  const core::EnvOptions scaled = ScenarioCatalog::instance().build(
      "baseline+rate-scale");
  core::VnfEnv env(scaled);
  env.reset(1);
  const core::EnvOptions plain = ScenarioCatalog::instance().build("baseline");
  core::VnfEnv reference(plain);
  reference.reset(1);
  EXPECT_DOUBLE_EQ(env.workload().total_rate(0.0), reference.workload().total_rate(0.0));
  EXPECT_DOUBLE_EQ(env.workload().peak_total_rate(),
                   reference.workload().peak_total_rate());
}

TEST(ScenarioCatalog, CompositionExpressionErrors) {
  EXPECT_THROW((void)ScenarioCatalog::instance().build("geo-distributed+"),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioCatalog::instance().build("+flash-crowd"),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioCatalog::instance().build("geo-distributed+no_such_overlay"),
               std::invalid_argument);
  // "node-failure" exists only as an overlay, not as a base.
  EXPECT_THROW((void)ScenarioCatalog::instance().build("node-failure"),
               std::invalid_argument);
}

TEST(ScenarioCatalog, DescribeListsBasesOverlaysAndGrammar) {
  const std::string listing = ScenarioCatalog::instance().describe();
  EXPECT_NE(listing.find("geo-distributed"), std::string::npos);
  EXPECT_NE(listing.find("node-failure"), std::string::npos);
  EXPECT_NE(listing.find("<base>[+<overlay>...]"), std::string::npos);
  EXPECT_NE(listing.find("trace-replay"), std::string::npos);
}

TEST(ScenarioCatalog, DuplicateRegistrationThrows) {
  ScenarioSpec spec;
  spec.name = "baseline";
  spec.configure = [](core::EnvOptions&, const Config&) {};
  EXPECT_THROW(ScenarioCatalog::instance().add(spec), std::invalid_argument);
  OverlaySpec overlay;
  overlay.name = "node-failure";
  overlay.apply = [](core::EnvOptions&, const Config&) {};
  EXPECT_THROW(ScenarioCatalog::instance().add_overlay(overlay), std::invalid_argument);
}

}  // namespace
}  // namespace vnfm::exp
