#include "exp/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace vnfm::exp {
namespace {

TEST(ScenarioCatalog, ContainsTheBuiltinScenarios) {
  const auto names = ScenarioCatalog::instance().names();
  for (const std::string expected :
       {"baseline", "geo-distributed", "diurnal", "flash-crowd",
        "heterogeneous-nodes", "large-scale"}) {
    EXPECT_TRUE(std::count(names.begin(), names.end(), expected) == 1)
        << "missing builtin scenario: " << expected;
    EXPECT_FALSE(ScenarioCatalog::instance().spec(expected).description.empty());
  }
}

TEST(ScenarioCatalog, EveryScenarioBuildsAValidEnvironment) {
  for (const auto& name : ScenarioCatalog::instance().names()) {
    const core::EnvOptions options = ScenarioCatalog::instance().build(name);
    EXPECT_GE(options.topology.node_count, 1U) << name;
    EXPECT_GT(options.workload.global_arrival_rate, 0.0) << name;
    core::VnfEnv env(options);  // must construct without throwing
    env.reset(1);
    EXPECT_TRUE(env.begin_next_request()) << name;
    EXPECT_GT(env.state_dim(), 0U) << name;
  }
}

TEST(ScenarioCatalog, ScenarioDefaultsMatchTheirStories) {
  const auto& catalog = ScenarioCatalog::instance();
  EXPECT_FALSE(catalog.build("baseline").workload.diurnal_enabled);
  EXPECT_TRUE(catalog.build("geo-distributed").workload.diurnal_enabled);
  EXPECT_DOUBLE_EQ(catalog.build("diurnal").workload.diurnal_amplitude, 0.8);
  EXPECT_GT(catalog.build("flash-crowd").workload.global_arrival_rate,
            catalog.build("baseline").workload.global_arrival_rate);
  EXPECT_GT(catalog.build("heterogeneous-nodes").topology.capacity_jitter,
            catalog.build("baseline").topology.capacity_jitter);
  EXPECT_EQ(catalog.build("large-scale").topology.node_count, 16U);
}

TEST(ScenarioCatalog, OverridesApplyOnTopOfDefaults) {
  const core::EnvOptions options = ScenarioCatalog::instance().build(
      "diurnal", Config{{"nodes", "4"},
                        {"arrival_rate", "0.5"},
                        {"seed", "9"},
                        {"idle_timeout_s", "33"},
                        {"w_rejection", "2.5"}});
  EXPECT_EQ(options.topology.node_count, 4U);
  EXPECT_DOUBLE_EQ(options.workload.global_arrival_rate, 0.5);
  EXPECT_EQ(options.seed, 9U);
  EXPECT_DOUBLE_EQ(options.cluster.idle_timeout_s, 33.0);
  EXPECT_DOUBLE_EQ(options.cost.w_rejection, 2.5);
  // Scenario defaults survive where not overridden.
  EXPECT_DOUBLE_EQ(options.workload.diurnal_amplitude, 0.8);
}

TEST(ScenarioCatalog, UnknownScenarioThrowsListingNames) {
  try {
    (void)ScenarioCatalog::instance().build("no_such_scenario");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("no_such_scenario"), std::string::npos);
    EXPECT_NE(message.find("baseline"), std::string::npos);
  }
}

TEST(ScenarioCatalog, MalformedOverrideValueThrows) {
  EXPECT_THROW((void)ScenarioCatalog::instance().build(
                   "baseline", Config{{"arrival_rate", "fast"}}),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioCatalog::instance().build(
                   "baseline", Config{{"nodes", "-2"}}),
               std::invalid_argument);
}

TEST(ScenarioCatalog, DuplicateRegistrationThrows) {
  ScenarioSpec spec;
  spec.name = "baseline";
  spec.build = [](const Config&) { return core::EnvOptions{}; };
  EXPECT_THROW(ScenarioCatalog::instance().add(spec), std::invalid_argument);
}

}  // namespace
}  // namespace vnfm::exp
