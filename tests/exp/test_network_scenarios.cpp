// Scenario-level tests of the flow network model: catalog plumbing of the
// topology/incast/cross-rack/link-failure knobs, deterministic rack-correlated
// link failures, and determinism invariant #11's flow half — flow-model
// episodes are bit-identical across evaluation thread counts.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/environment.hpp"
#include "core/runner.hpp"
#include "edgesim/events.hpp"
#include "exp/experiment.hpp"
#include "exp/registry.hpp"
#include "exp/scenario.hpp"

namespace vnfm::exp {
namespace {

void expect_result_eq(const core::EpisodeResult& a, const core::EpisodeResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.total_reward, b.total_reward) << label;
  EXPECT_EQ(a.requests, b.requests) << label;
  EXPECT_EQ(a.cost_per_request, b.cost_per_request) << label;
  EXPECT_EQ(a.total_cost, b.total_cost) << label;
  EXPECT_EQ(a.acceptance_ratio, b.acceptance_ratio) << label;
  EXPECT_EQ(a.mean_latency_ms, b.mean_latency_ms) << label;
  EXPECT_EQ(a.p95_latency_ms, b.p95_latency_ms) << label;
  EXPECT_EQ(a.sla_violation_ratio, b.sla_violation_ratio) << label;
  EXPECT_EQ(a.mean_utilization, b.mean_utilization) << label;
  EXPECT_EQ(a.deployments, b.deployments) << label;
  EXPECT_EQ(a.running_cost, b.running_cost) << label;
  EXPECT_EQ(a.revenue, b.revenue) << label;
}

TEST(NetworkScenarios, CatalogPlumbsTopologyAndOverlayKeys) {
  const core::EnvOptions options = ScenarioCatalog::instance().build(
      "geo-distributed+incast+cross-rack+link-failure",
      Config{{"topology", "fat-tree-k4"},
             {"rack_size", "2"},
             {"incast_region", "3"},
             {"incast_magnitude", "8"},
             {"cross_rack_payload_mbit", "64"},
             {"link_fail_node", "1"},
             {"link_fail_at_s", "900"},
             {"link_recover_at_s", "2700"}});
  EXPECT_EQ(options.network.topology, "fat-tree-k4");
  EXPECT_EQ(options.network.flow.rack_size, 2U);
  EXPECT_DOUBLE_EQ(options.network.flow.payload_mbit, 64.0);
  EXPECT_DOUBLE_EQ(options.network.flow.core_gbps, 20.0);  // 40 x 0.5 default
  ASSERT_EQ(options.events.size(), 2U);
  EXPECT_EQ(options.events.events()[0].kind, edgesim::EventKind::kLinkFailure);
  EXPECT_EQ(options.events.events()[1].kind, edgesim::EventKind::kLinkRecovery);

  core::VnfEnv env(options);
  EXPECT_EQ(env.cluster().network().name(), "flow-network");
  EXPECT_EQ(env.workload().name(), "incast(poisson-diurnal)");
}

TEST(NetworkScenarios, LinkFailureIsANoOpUnderTheConstantModel) {
  core::VnfEnv env(ScenarioCatalog::instance().build(
      "geo-distributed+link-failure", Config{{"link_fail_at_s", "60"}}));
  env.reset(1);
  // Drive past the event with a place-anything policy: nothing may be killed
  // because the constant model has no links to fail.
  while (env.now() < 120.0 && env.begin_next_request())
    while (env.has_pending_chain()) {
      const auto& mask = env.action_mask();
      int action = env.reject_action();
      for (std::size_t a = 0; a < mask.size(); ++a)
        if (mask[a]) { action = static_cast<int>(a); break; }
      (void)env.step(action);
    }
  EXPECT_GE(env.events_applied(), 1U);
  EXPECT_EQ(env.metrics().chains_killed(), 0U);
}

TEST(NetworkScenarios, RackFailureKillsOrReroutesDeterministically) {
  const Config overrides{{"topology", "two-tier-edge"}, {"link_fail_at_s", "600"},
                         {"link_recover_at_s", "1200"}};
  auto run_once = [&] {
    core::VnfEnv env(ScenarioCatalog::instance().build(
        "geo-distributed+link-failure", overrides));
    env.reset(5);
    while (env.now() < 1500.0 && env.begin_next_request())
      while (env.has_pending_chain()) {
        const auto& mask = env.action_mask();
        int action = env.reject_action();
        for (std::size_t a = 0; a < mask.size(); ++a)
          if (mask[a]) { action = static_cast<int>(a); break; }
        (void)env.step(action);
      }
    return std::pair<std::size_t, double>{env.metrics().chains_killed(),
                                          env.metrics().total_cost()};
  };
  const auto first = run_once();
  const auto second = run_once();
  // The two-tier fabric has no redundancy: chains crossing the failed rack
  // uplink die fail-stop, identically on every run.
  EXPECT_GT(first.first, 0U);
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

TEST(NetworkScenarios, FlowModelEpisodesAreThreadCountInvariant) {
  const core::EnvOptions options = ScenarioCatalog::instance().build(
      "geo-distributed+incast+link-failure",
      Config{{"topology", "fat-tree-k4"}, {"link_fail_at_s", "300"},
             {"incast_start_s", "60"}, {"incast_duration_s", "600"}});
  core::VnfEnv env(options);
  const auto manager =
      ManagerRegistry::instance().create("greedy_latency", env);

  core::EpisodeOptions episode;
  episode.duration_s = 900.0;
  episode.seed = 3;
  const EvalReport one = evaluate_parallel(options, *manager, episode, 3, 1);
  const EvalReport four = evaluate_parallel(options, *manager, episode, 3, 4);
  ASSERT_EQ(one.per_seed.size(), four.per_seed.size());
  for (std::size_t i = 0; i < one.per_seed.size(); ++i)
    expect_result_eq(one.per_seed[i], four.per_seed[i],
                     "repeat " + std::to_string(i));
}

}  // namespace
}  // namespace vnfm::exp
