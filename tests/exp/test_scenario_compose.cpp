// Acceptance coverage for composable scenario programs: composed expressions
// yield environments whose request streams and fault events are
// deterministic per seed, legacy scenario names keep their pre-refactor
// request streams bit-for-bit, and parallel evaluation/training stay
// thread-count-invariant under events and overlays.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/registry.hpp"
#include "exp/scenario.hpp"

namespace vnfm::exp {
namespace {

/// Exact comparison of every EpisodeResult field.
void expect_identical(const core::EpisodeResult& a, const core::EpisodeResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.total_reward, b.total_reward) << label;
  EXPECT_EQ(a.requests, b.requests) << label;
  EXPECT_EQ(a.cost_per_request, b.cost_per_request) << label;
  EXPECT_EQ(a.total_cost, b.total_cost) << label;
  EXPECT_EQ(a.acceptance_ratio, b.acceptance_ratio) << label;
  EXPECT_EQ(a.mean_latency_ms, b.mean_latency_ms) << label;
  EXPECT_EQ(a.p95_latency_ms, b.p95_latency_ms) << label;
  EXPECT_EQ(a.sla_violation_ratio, b.sla_violation_ratio) << label;
  EXPECT_EQ(a.mean_utilization, b.mean_utilization) << label;
  EXPECT_EQ(a.deployments, b.deployments) << label;
  EXPECT_EQ(a.running_cost, b.running_cost) << label;
  EXPECT_EQ(a.revenue, b.revenue) << label;
}

const Config kComposedOverrides{{"nodes", "4"},       {"arrival_rate", "2.0"},
                                {"fail_node", "0"},   {"fail_at_s", "300"},
                                {"recover_at_s", "900"}, {"flash_period_s", "600"},
                                {"flash_duration_s", "200"}, {"flash_start_s", "0"}};

// Golden env-level stream captured from the pre-refactor WorkloadGenerator
// through the scenario catalog ("geo-distributed", episode seed 3). Legacy
// scenario names must keep producing these exact requests.
TEST(ScenarioCompose, LegacyScenarioStreamIsBitIdenticalToPreRefactor) {
  struct Golden {
    double arrival_time;
    std::uint32_t region;
    std::uint32_t sfc;
    double rate_rps;
    double duration_s;
  };
  const Golden golden[] = {
      {0.089551607965743657, 7, 1, 1.8724779608674662, 237.27597977834014},
      {0.38585783493436221, 7, 0, 4.6183537246389106, 272.91610731583177},
      {0.68236210482195314, 2, 3, 5.0691344194498109, 301.54606322252909},
      {1.7125276656268429, 2, 2, 8.2766377459859939, 26.261103736406493},
      {1.734477038288565, 5, 2, 6.627265028748206, 392.34933090678396},
      {2.97361783900234, 6, 1, 1.5822678076525964, 80.668443787526058},
  };
  core::VnfEnv env(ScenarioCatalog::instance().build("geo-distributed"));
  env.reset(3);
  for (const Golden& expected : golden) {
    ASSERT_TRUE(env.begin_next_request());
    const edgesim::Request& r = env.pending_request();
    EXPECT_DOUBLE_EQ(r.arrival_time, expected.arrival_time);
    EXPECT_EQ(edgesim::index(r.source_region), expected.region);
    EXPECT_EQ(edgesim::index(r.sfc), expected.sfc);
    EXPECT_DOUBLE_EQ(r.rate_rps, expected.rate_rps);
    EXPECT_DOUBLE_EQ(r.duration_s, expected.duration_s);
    env.step(env.reject_action());
  }
}

TEST(ScenarioCompose, ComposedEnvironmentIsDeterministicPerSeed) {
  const core::EnvOptions options = ScenarioCatalog::instance().build(
      "geo-distributed+flash-crowd+node-failure", kComposedOverrides);
  core::VnfEnv a(options);
  core::VnfEnv b(options);
  a.reset(5);
  b.reset(5);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(a.begin_next_request());
    ASSERT_TRUE(b.begin_next_request());
    const edgesim::Request& ra = a.pending_request();
    const edgesim::Request& rb = b.pending_request();
    EXPECT_DOUBLE_EQ(ra.arrival_time, rb.arrival_time);
    EXPECT_EQ(edgesim::index(ra.source_region), edgesim::index(rb.source_region));
    EXPECT_DOUBLE_EQ(ra.rate_rps, rb.rate_rps);
    EXPECT_EQ(a.events_applied(), b.events_applied());
    a.step(a.reject_action());
    b.step(b.reject_action());
  }
  // A different seed produces a different stream.
  core::VnfEnv c(options);
  c.reset(6);
  ASSERT_TRUE(c.begin_next_request());
  a.reset(5);
  ASSERT_TRUE(a.begin_next_request());
  EXPECT_NE(a.pending_request().arrival_time, c.pending_request().arrival_time);
}

TEST(ScenarioCompose, FaultEventsFireMidEpisodeAtExactInstants) {
  const core::EnvOptions options = ScenarioCatalog::instance().build(
      "geo-distributed+node-failure",
      Config{{"nodes", "4"}, {"arrival_rate", "2.0"}, {"fail_node", "0"},
             {"fail_at_s", "300"}, {"recover_at_s", "900"}});
  core::VnfEnv env(options);
  env.reset(1);
  const auto manager = ManagerRegistry::instance().create("greedy_latency", env);
  core::EpisodeOptions episode;
  episode.duration_s = 1500.0;
  episode.training = false;
  episode.seed = 1;
  const core::EpisodeResult result = core::run_episode(env, *manager, episode);
  EXPECT_GT(result.requests, 0U);
  EXPECT_EQ(env.events_applied(), 2U);  // failure + recovery both consumed
  EXPECT_FALSE(env.cluster().node_failed(edgesim::NodeId{0}));  // recovered
  EXPECT_GT(env.cluster().chains_killed(), 0U);  // the outage had victims
  // Each killed chain is charged the interruption penalty in the metrics,
  // so an outage can never improve the reported cost.
  EXPECT_EQ(env.metrics().chains_killed(), env.cluster().chains_killed());
}

TEST(ScenarioCompose, ParallelEvalBitIdenticalUnderEventsAndOverlays) {
  const core::EnvOptions options = ScenarioCatalog::instance().build(
      "geo-distributed+flash-crowd+node-failure", kComposedOverrides);
  core::VnfEnv env(options);
  const auto manager = ManagerRegistry::instance().create("greedy_latency", env);
  core::EpisodeOptions episode;
  episode.duration_s = 1200.0;
  episode.seed = 11;
  episode.training = false;
  const EvalReport one = evaluate_parallel(options, *manager, episode, 6, 1);
  const EvalReport four = evaluate_parallel(options, *manager, episode, 6, 4);
  ASSERT_EQ(one.per_seed.size(), four.per_seed.size());
  EXPECT_EQ(one.seeds, four.seeds);
  for (std::size_t i = 0; i < one.per_seed.size(); ++i)
    expect_identical(one.per_seed[i], four.per_seed[i],
                     "repeat " + std::to_string(i));
  EXPECT_GT(one.mean.requests, 0U);
}

TEST(ScenarioCompose, ParallelTrainingBitIdenticalUnderComposedScenario) {
  std::vector<std::vector<core::EpisodeResult>> curves;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    auto experiment =
        Experiment::scenario("geo-distributed+flash-crowd+node-failure",
                             kComposedOverrides);
    experiment.manager("dqn")
        .seed(2)
        .train_threads(threads)
        .train_duration(400.0)
        .eval_duration(400.0)
        .train(4);
    curves.push_back(experiment.learning_curve());
  }
  ASSERT_EQ(curves[0].size(), curves[1].size());
  for (std::size_t i = 0; i < curves[0].size(); ++i)
    expect_identical(curves[0][i], curves[1][i], "episode " + std::to_string(i));
}

TEST(ScenarioCompose, TraceReplayScenarioIsDeterministicPerSeed) {
  const std::string trace =
      std::string(VNFM_SOURCE_DIR) + "/bench/data/trace_sample.csv";
  const core::EnvOptions options = ScenarioCatalog::instance().build(
      "trace-replay", Config{{"trace", trace}, {"nodes", "8"}});
  core::VnfEnv a(options);
  core::VnfEnv b(options);
  a.reset(4);
  b.reset(4);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(a.begin_next_request());
    ASSERT_TRUE(b.begin_next_request());
    EXPECT_DOUBLE_EQ(a.pending_request().arrival_time,
                     b.pending_request().arrival_time);
    EXPECT_DOUBLE_EQ(a.pending_request().rate_rps, b.pending_request().rate_rps);
    a.step(a.reject_action());
    b.step(b.reject_action());
  }
  EXPECT_EQ(a.workload().name(), "trace-replay");
}

TEST(ScenarioCompose, TraceReplayComposesWithOverlaysAndEvents) {
  const std::string trace =
      std::string(VNFM_SOURCE_DIR) + "/bench/data/trace_sample.csv";
  const core::EnvOptions options = ScenarioCatalog::instance().build(
      "trace-replay+rate-scale+node-failure",
      Config{{"trace", trace}, {"rate_scale", "2"}, {"fail_at_s", "120"},
             {"recover_at_s", "240"}});
  core::VnfEnv env(options);
  env.reset(2);
  EXPECT_EQ(env.workload().name(), "rate-scale(trace-replay)");
  const auto manager = ManagerRegistry::instance().create("first_fit", env);
  core::EpisodeOptions episode;
  episode.duration_s = 400.0;
  episode.training = false;
  episode.seed = 2;
  const core::EpisodeResult result = core::run_episode(env, *manager, episode);
  EXPECT_GT(result.requests, 0U);
  EXPECT_EQ(env.events_applied(), 2U);
}

}  // namespace
}  // namespace vnfm::exp
