#include "core/heuristics.hpp"

#include <gtest/gtest.h>

#include "core/runner.hpp"

namespace vnfm::core {
namespace {

EnvOptions small_options() {
  EnvOptions options;
  options.topology.node_count = 4;
  options.workload.global_arrival_rate = 1.5;
  options.seed = 11;
  return options;
}

EpisodeOptions short_episode() {
  EpisodeOptions episode;
  episode.duration_s = 600.0;
  episode.training = false;
  return episode;
}

/// Runs a manager through a few decisions and checks it always returns a
/// valid (unmasked) action.
void check_valid_actions(Manager& manager) {
  VnfEnv env(small_options());
  env.reset(0);
  manager.on_episode_start(env);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(env.begin_next_request());
    StepResult r;
    do {
      const int action = manager.select_action(env);
      ASSERT_GE(action, 0);
      ASSERT_LT(action, env.action_count());
      ASSERT_TRUE(env.action_mask()[static_cast<std::size_t>(action)])
          << manager.name() << " chose a masked action";
      r = env.step(action);
    } while (!r.chain_done);
  }
}

TEST(Heuristics, GreedyLatencyReturnsValidActions) {
  GreedyLatencyManager m;
  check_valid_actions(m);
}

TEST(Heuristics, MyopicCostReturnsValidActions) {
  MyopicCostManager m;
  check_valid_actions(m);
}

TEST(Heuristics, FirstFitReturnsValidActions) {
  FirstFitManager m;
  check_valid_actions(m);
}

TEST(Heuristics, RandomReturnsValidActions) {
  RandomManager m(5);
  check_valid_actions(m);
}

TEST(Heuristics, StaticProvisionReturnsValidActions) {
  StaticProvisionManager m(2);
  check_valid_actions(m);
}

TEST(Heuristics, GreedyLatencyPrefersLocalNode) {
  // With an empty cluster, the latency-greedy choice for the first VNF is
  // the user's own metro node (last-mile only).
  VnfEnv env(small_options());
  env.reset(0);
  GreedyLatencyManager m;
  ASSERT_TRUE(env.begin_next_request());
  const auto region = env.pending_request().source_region;
  const int action = m.select_action(env);
  EXPECT_EQ(action, static_cast<int>(edgesim::index(region)));
}

TEST(Heuristics, StaticProvisionPreDeploysPinnedInstances) {
  VnfEnv env(small_options());
  env.reset(0);
  StaticProvisionManager m(2);
  m.on_episode_start(env);
  EXPECT_EQ(env.cluster().total_instance_count(),
            2u * env.vnfs().size());
  // Pinned instances survive long idle periods.
  env.mutable_cluster().advance_to(100'000.0);
  EXPECT_EQ(env.cluster().total_instance_count(), 2u * env.vnfs().size());
}

TEST(Heuristics, StaticProvisionNeverDeploysDuringRun) {
  VnfEnv env(small_options());
  StaticProvisionManager m(2);
  EpisodeOptions episode = short_episode();
  const EpisodeResult result = run_episode(env, m, episode);
  // All capacity was pre-provisioned; the episode itself deploys nothing.
  EXPECT_EQ(result.deployments, 0u);
}

TEST(Heuristics, FirstFitConsolidatesMoreThanGreedy) {
  VnfEnv env(small_options());
  FirstFitManager first_fit;
  GreedyLatencyManager greedy;
  const EpisodeResult ff = run_episode(env, first_fit, short_episode());
  const EpisodeResult gl = run_episode(env, greedy, short_episode());
  // Consolidation deploys at most as many instances as latency-chasing.
  EXPECT_LE(ff.deployments, gl.deployments + 2);
  // But pays more latency (it ignores geography).
  EXPECT_GT(ff.mean_latency_ms, 0.0);
}

TEST(Heuristics, MyopicCostBeatsRandomOnCost) {
  VnfEnv env(small_options());
  MyopicCostManager myopic;
  RandomManager random(7);
  const EpisodeResult mc = evaluate_manager(env, myopic, short_episode(), 2);
  const EpisodeResult rnd = evaluate_manager(env, random, short_episode(), 2);
  EXPECT_LT(mc.cost_per_request, rnd.cost_per_request);
}

TEST(Heuristics, GreedyLatencyAchievesLowLatency) {
  VnfEnv env(small_options());
  GreedyLatencyManager greedy;
  RandomManager random(7);
  const EpisodeResult gl = evaluate_manager(env, greedy, short_episode(), 2);
  const EpisodeResult rnd = evaluate_manager(env, random, short_episode(), 2);
  EXPECT_LT(gl.mean_latency_ms, rnd.mean_latency_ms);
}

}  // namespace
}  // namespace vnfm::core
