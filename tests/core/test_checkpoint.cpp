// The checkpoint/resume bit-identity contract (core/checkpoint +
// TrainDriver): train-to-episode-K, kill, resume must reproduce the exact
// learning curve and final manager state of an uninterrupted run — for the
// DQN pipeline at 1 and 4 actor threads, for tabular Q, and for an inline
// learner (actor-critic) on the sequential path. Plus archive hygiene:
// policy-tag validation, latest-checkpoint discovery, and full-state
// round-trips for every manager layer below the Experiment façade.
#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "core/drl_manager.hpp"
#include "core/heuristics.hpp"
#include "core/migration.hpp"
#include "core/train_driver.hpp"

namespace vnfm::core {
namespace {

EnvOptions small_options() {
  EnvOptions options;
  options.topology.node_count = 4;
  options.workload.global_arrival_rate = 2.0;
  options.seed = 17;
  return options;
}

rl::DqnConfig small_dqn_config(const VnfEnv& env) {
  rl::DqnConfig config = default_dqn_config(env);
  config.hidden_dims = {16, 16};
  config.min_replay_before_training = 100;
  config.train_period = 4;
  config.epsilon_decay_steps = 2000;
  return config;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "ckpt_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Full serialized manager state; byte equality == state equality (weights,
/// optimizer moments, replay contents, RNG streams, counters — everything).
std::vector<std::uint8_t> state_bytes(const Manager& manager) {
  Serializer out;
  out.begin_chunk("state");
  manager.save(out);
  out.end_chunk();
  return out.bytes();
}

void expect_identical(const EpisodeResult& a, const EpisodeResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.total_reward, b.total_reward) << label;
  EXPECT_EQ(a.requests, b.requests) << label;
  EXPECT_EQ(a.cost_per_request, b.cost_per_request) << label;
  EXPECT_EQ(a.total_cost, b.total_cost) << label;
  EXPECT_EQ(a.acceptance_ratio, b.acceptance_ratio) << label;
  EXPECT_EQ(a.mean_latency_ms, b.mean_latency_ms) << label;
  EXPECT_EQ(a.p95_latency_ms, b.p95_latency_ms) << label;
  EXPECT_EQ(a.sla_violation_ratio, b.sla_violation_ratio) << label;
  EXPECT_EQ(a.mean_utilization, b.mean_utilization) << label;
  EXPECT_EQ(a.deployments, b.deployments) << label;
  EXPECT_EQ(a.running_cost, b.running_cost) << label;
  EXPECT_EQ(a.revenue, b.revenue) << label;
}

void expect_identical_curves(const std::vector<EpisodeResult>& a,
                             const std::vector<EpisodeResult>& b,
                             const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i)
    expect_identical(a[i], b[i], label + " episode " + std::to_string(i));
}

TrainOptions train_options(std::size_t episodes, std::size_t threads,
                           std::size_t sync_period) {
  TrainOptions options;
  options.episodes = episodes;
  options.threads = threads;
  options.sync_period = sync_period;
  options.episode.duration_s = 150.0;
  options.episode.seed = 11;
  return options;
}

/// The kill-and-resume drill shared by every policy variant:
///  1. reference run: `total` episodes straight through;
///  2. interrupted run: same setup, checkpointing every `every` episodes,
///     killed after `kill_at` episodes (the manager is discarded);
///  3. resumed run: a fresh manager restored from the newest archive trains
///     the remaining episodes.
/// Curve and final serialized state must match the reference bit-for-bit.
/// On the pipeline path `kill_at` must be a round boundary of the full-length
/// schedule (a multiple of sync_period): mid-round state never reaches disk —
/// the driver only checkpoints after merged rounds — so a real kill always
/// resumes from such a boundary. `resumed_at` (optional) receives the episode
/// index resume started from.
template <typename MakeManager>
void run_resume_drill(const MakeManager& make_manager, std::size_t total,
                      std::size_t kill_at, std::size_t every, std::size_t threads,
                      std::size_t sync_period, const std::string& label,
                      std::size_t* resumed_at = nullptr) {
  const EnvOptions env_options = small_options();

  // 1. Uninterrupted reference.
  auto reference = make_manager(env_options);
  const TrainResult full =
      TrainDriver(env_options, train_options(total, threads, sync_period))
          .run(*reference);

  // 2. Interrupted run: dies after kill_at episodes with checkpoints on disk.
  const std::string dir = fresh_dir(label);
  auto interrupted = make_manager(env_options);
  TrainOptions first_leg = train_options(total, threads, sync_period);
  first_leg.episodes = kill_at;
  first_leg.checkpoint_every = every;
  first_leg.checkpoint_dir = dir;
  TrainDriver(env_options, first_leg).run(*interrupted);
  const std::string archive = latest_checkpoint(dir);
  ASSERT_FALSE(archive.empty()) << label;

  // 3. Resume in a fresh manager, as a restarted process would.
  auto resumed = make_manager(env_options);
  const TrainCheckpoint restored = read_checkpoint(archive, *resumed);
  EXPECT_EQ(restored.base_seed, 11u) << label;
  ASSERT_EQ(restored.curve.size(), restored.episodes_done) << label;
  ASSERT_LE(restored.episodes_done, kill_at) << label;
  TrainOptions second_leg = train_options(total, threads, sync_period);
  second_leg.episodes = total - restored.episodes_done;
  second_leg.first_episode = restored.episodes_done;
  const TrainResult rest = TrainDriver(env_options, second_leg).run(*resumed);

  // Stitched curve == uninterrupted curve, episode by episode, bit for bit.
  std::vector<EpisodeResult> stitched = restored.curve;
  stitched.insert(stitched.end(), rest.curve.begin(), rest.curve.end());
  expect_identical_curves(full.curve, stitched, label);
  std::vector<std::uint64_t> seeds = restored.seeds;
  seeds.insert(seeds.end(), rest.seeds.begin(), rest.seeds.end());
  EXPECT_EQ(full.seeds, seeds) << label;

  // Final learner state (weights, optimizer, replay, RNG) — bit-identical.
  EXPECT_EQ(state_bytes(*reference), state_bytes(*resumed)) << label;
  if (resumed_at != nullptr) *resumed_at = restored.episodes_done;
}

std::unique_ptr<Manager> make_dqn(const EnvOptions& env_options) {
  VnfEnv env(env_options);
  return std::make_unique<DqnManager>(env, small_dqn_config(env));
}

TEST(CheckpointResume, DqnPipelineOneActorThread) {
  run_resume_drill(make_dqn, 8, 4, 4, 1, 4, "dqn_1thread");
}

TEST(CheckpointResume, DqnPipelineFourActorThreads) {
  run_resume_drill(make_dqn, 8, 4, 4, 4, 4, "dqn_4threads");
}

TEST(CheckpointResume, DqnPipelineChkptCadenceBelowSyncPeriod) {
  // checkpoint_every(2) below sync_period(4): the driver must defer each
  // write to the next round boundary — the only resume-exact cut point — so
  // the newest archive sits at episode 4, not 2.
  std::size_t resumed_at = 0;
  run_resume_drill(make_dqn, 8, 4, 2, 2, 4, "dqn_round_aligned", &resumed_at);
  EXPECT_EQ(resumed_at, 4u);
}

TEST(CheckpointResume, TabularQPipeline) {
  // Tabular now takes the pipeline path too, so kill_at sits on a round
  // boundary (a multiple of sync_period) like the DQN drills above.
  run_resume_drill(
      [](const EnvOptions& env_options) {
        VnfEnv env(env_options);
        return std::make_unique<TabularManager>(env, rl::TabularQConfig{}, 4);
      },
      8, 4, 4, 1, 4, "tabular");
}

TEST(CheckpointResume, ActorCriticInlineLearner) {
  run_resume_drill(
      [](const EnvOptions& env_options) {
        VnfEnv env(env_options);
        return std::make_unique<A2cManager>(env, rl::ActorCriticConfig{});
      },
      6, 3, 3, 1, 4, "actor_critic");
}

TEST(CheckpointResume, ReinforceInlineLearner) {
  run_resume_drill(
      [](const EnvOptions& env_options) {
        VnfEnv env(env_options);
        return std::make_unique<ReinforceManager>(env, rl::ReinforceConfig{});
      },
      6, 3, 3, 1, 4, "reinforce");
}

TEST(CheckpointResume, RandomHeuristicCountersSurvive) {
  run_resume_drill(
      [](const EnvOptions&) { return std::make_unique<RandomManager>(99); }, 6, 3, 3,
      1, 4, "random");
}

TEST(Checkpoint, PolicyTagMismatchThrows) {
  const EnvOptions env_options = small_options();
  const std::string dir = fresh_dir("mismatch");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/x.vnfmc";

  auto dqn = make_dqn(env_options);
  write_checkpoint(path, *dqn, {});
  EXPECT_EQ(read_checkpoint_policy(path), "dqn/v1");

  VnfEnv env(env_options);
  TabularManager tabular(env, rl::TabularQConfig{}, 4);
  EXPECT_THROW(read_checkpoint(path, tabular), SerializeError);
}

TEST(Checkpoint, ConsolidatingDecoratorTagWrapsInner) {
  GreedyLatencyManager inner;
  const ConsolidatingManager decorated(inner, {});
  EXPECT_EQ(decorated.checkpoint_state(), "consolidating(greedy_latency/v1)/v1");
}

TEST(Checkpoint, LatestCheckpointPicksHighestEpisode) {
  const std::string dir = fresh_dir("latest");
  std::filesystem::create_directories(dir);
  GreedyLatencyManager stateless;
  for (const std::uint64_t episodes : {4u, 12u, 8u}) {
    TrainCheckpoint data;
    data.episodes_done = episodes;
    write_checkpoint(dir + "/" + checkpoint_filename(episodes), stateless, data);
  }
  const std::string best = latest_checkpoint(dir);
  EXPECT_EQ(std::filesystem::path(best).filename().string(), checkpoint_filename(12));
  EXPECT_EQ(latest_checkpoint(fresh_dir("empty")), "");
}

TEST(Checkpoint, XstatsGradFieldsRoundTrip) {
  // Format v2: gradient-step accounting rides in the skippable "xstats"
  // suffix chunk and must round-trip through write/read.
  const std::string dir = fresh_dir("xstats");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/x.vnfmc";

  TrainCheckpoint data;
  data.episodes_done = 2;
  data.stats.grad_steps = 321;
  data.stats.grad_seconds = 0.75;
  data.stats.learner_threads = 4;
  GreedyLatencyManager stateless;
  write_checkpoint(path, stateless, data);

  GreedyLatencyManager restored_into;
  const TrainCheckpoint restored = read_checkpoint(path, restored_into);
  EXPECT_EQ(restored.stats.grad_steps, 321u);
  EXPECT_EQ(restored.stats.grad_seconds, 0.75);
  // Thread counts are execution config, deliberately not archived
  // (invariant #8): the restored value is the default, not the writer's.
  EXPECT_EQ(restored.stats.learner_threads, 1u);
}

/// Hand-writes a train-checkpoint archive in the v1 layout (no xstats
/// suffix; exactly what the PR-4-era writer produced) and optionally
/// appends extra unknown suffix chunks, then patches the header format
/// version to `version`. Exercises real version negotiation: the v2 reader
/// must load v1 archives (grad stats defaulting to 0) and skip unknown
/// suffix chunks written by any future version.
std::vector<std::uint8_t> make_archive(const Manager& manager, std::uint32_t version,
                                       bool with_unknown_suffix) {
  Serializer out;
  out.begin_chunk("train_checkpoint");
  out.begin_chunk("meta");
  out.write_u64(3);   // episodes_done
  out.write_u64(21);  // base_seed
  out.write_string(manager.checkpoint_state());
  out.end_chunk();
  out.begin_chunk("curve");
  out.write_u64(0);
  out.write_u64_vec(std::vector<std::uint64_t>{});
  out.end_chunk();
  out.begin_chunk("stats");
  out.write_f64(1.0);   // wall_seconds
  out.write_u64(42);    // transitions
  out.write_u64(3);     // episodes
  out.write_u64(1);     // rounds
  out.write_u64(1);     // actor_threads
  out.write_bool(false);
  out.end_chunk();
  out.begin_chunk("manager");
  manager.save(out);
  out.end_chunk();
  if (with_unknown_suffix) {
    out.begin_chunk("from_the_future");
    out.write_u64(0xDEADBEEF);
    out.end_chunk();
  }
  out.end_chunk();

  std::vector<std::uint8_t> bytes = out.bytes();
  // Patch the little-endian u32 format version at offset 4 (after "VNFM").
  for (int i = 0; i < 4; ++i)
    bytes[4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(version >> (8 * i));
  return bytes;
}

TEST(Checkpoint, V1ArchiveLoadsUnderV2Reader) {
  GreedyLatencyManager manager;
  const auto bytes = make_archive(manager, 1, false);
  EXPECT_EQ(Deserializer(bytes).format_version(), 1u);

  // Read through the real checkpoint reader path via a temp file.
  const std::string dir = fresh_dir("v1_compat");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/v1.vnfmc";
  {
    std::ofstream file(path, std::ios::binary);
    file.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
  }
  GreedyLatencyManager restored_into;
  const TrainCheckpoint restored = read_checkpoint(path, restored_into);
  EXPECT_EQ(restored.episodes_done, 3u);
  EXPECT_EQ(restored.base_seed, 21u);
  EXPECT_EQ(restored.stats.transitions, 42u);
  // v1 carries no xstats chunk: grad accounting defaults to zero.
  EXPECT_EQ(restored.stats.grad_steps, 0u);
  EXPECT_EQ(restored.stats.grad_seconds, 0.0);
}

TEST(Checkpoint, UnknownSuffixChunksAreSkipped) {
  GreedyLatencyManager manager;
  const std::string dir = fresh_dir("future_suffix");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/future.vnfmc";
  {
    const auto bytes = make_archive(manager, 2, true);
    std::ofstream file(path, std::ios::binary);
    file.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
  }
  GreedyLatencyManager restored_into;
  const TrainCheckpoint restored = read_checkpoint(path, restored_into);
  EXPECT_EQ(restored.episodes_done, 3u);
  EXPECT_EQ(restored.stats.transitions, 42u);
}

TEST(Checkpoint, FutureFormatVersionIsRejected) {
  GreedyLatencyManager manager;
  EXPECT_THROW(Deserializer{make_archive(manager, 3, false)}, SerializeError);
}

TEST(Checkpoint, PruneKeepsNewestArchives) {
  const std::string dir = fresh_dir("prune");
  std::filesystem::create_directories(dir);
  GreedyLatencyManager stateless;
  for (const std::uint64_t episodes : {4u, 8u, 12u, 16u, 20u}) {
    TrainCheckpoint data;
    data.episodes_done = episodes;
    write_checkpoint(dir + "/" + checkpoint_filename(episodes), stateless, data);
  }
  // An unrelated file must survive pruning.
  { std::ofstream(dir + "/notes.txt") << "keep me"; }

  EXPECT_EQ(prune_checkpoints(dir, 2), 3u);
  EXPECT_TRUE(std::filesystem::exists(dir + "/" + checkpoint_filename(16)));
  EXPECT_TRUE(std::filesystem::exists(dir + "/" + checkpoint_filename(20)));
  EXPECT_FALSE(std::filesystem::exists(dir + "/" + checkpoint_filename(4)));
  EXPECT_FALSE(std::filesystem::exists(dir + "/" + checkpoint_filename(8)));
  EXPECT_FALSE(std::filesystem::exists(dir + "/" + checkpoint_filename(12)));
  EXPECT_TRUE(std::filesystem::exists(dir + "/notes.txt"));
  EXPECT_EQ(latest_checkpoint(dir),
            (std::filesystem::path(dir) / checkpoint_filename(20)).string());
  // keep_last_n == 0 keeps everything; pruning again is a no-op.
  EXPECT_EQ(prune_checkpoints(dir, 0), 0u);
  EXPECT_EQ(prune_checkpoints(dir, 2), 0u);
}

TEST(Checkpoint, DriverPrunesWithKeepLastN) {
  // keep_last_n in TrainOptions: after 6 checkpointed episodes at cadence 2
  // only the newest 2 archives remain on disk.
  const EnvOptions env_options = small_options();
  VnfEnv env(env_options);
  TabularManager manager(env, rl::TabularQConfig{}, 4);
  const std::string dir = fresh_dir("driver_prune");
  TrainOptions options = train_options(6, 1, 4);
  options.checkpoint_every = 2;
  options.checkpoint_dir = dir;
  options.keep_last_n = 2;
  TrainDriver(env_options, options).run(manager);

  std::size_t archives = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.path().extension() == ".vnfmc") ++archives;
  EXPECT_EQ(archives, 2u);
  EXPECT_EQ(std::filesystem::path(latest_checkpoint(dir)).filename().string(),
            checkpoint_filename(6));
}

TEST(Checkpoint, HistoryRoundTrips) {
  const std::string dir = fresh_dir("history");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/h.vnfmc";

  TrainCheckpoint data;
  data.episodes_done = 3;
  data.base_seed = 21;
  EpisodeResult episode;
  episode.total_reward = -12.5;
  episode.requests = 42;
  episode.deployments = 7;
  data.curve = {episode, episode, episode};
  data.seeds = {21, 22, 23};
  data.stats.wall_seconds = 1.5;
  data.stats.transitions = 999;
  data.stats.episodes = 3;
  data.stats.rounds = 2;
  data.stats.actor_threads = 4;
  data.stats.parallel = true;

  GreedyLatencyManager stateless;
  write_checkpoint(path, stateless, data);
  GreedyLatencyManager restored_into;
  const TrainCheckpoint restored = read_checkpoint(path, restored_into);
  EXPECT_EQ(restored.episodes_done, 3u);
  EXPECT_EQ(restored.base_seed, 21u);
  EXPECT_EQ(restored.seeds, data.seeds);
  expect_identical_curves(data.curve, restored.curve, "history");
  EXPECT_EQ(restored.stats.wall_seconds, 1.5);
  EXPECT_EQ(restored.stats.transitions, 999u);
  EXPECT_EQ(restored.stats.rounds, 2u);
  EXPECT_EQ(restored.stats.actor_threads, 4u);
  EXPECT_TRUE(restored.stats.parallel);
}

}  // namespace
}  // namespace vnfm::core
