// Regression tests for the serving engine: shard-count and batch-size
// bit-identity (determinism invariant #9), batched-vs-sequential decision
// equivalence, bounded-queue backpressure, aggregate bookkeeping, option
// validation, and the serve seed slice.
#include "core/serve_driver.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/drl_manager.hpp"
#include "core/heuristics.hpp"
#include "core/runner.hpp"

namespace vnfm::core {
namespace {

EnvOptions small_options() {
  EnvOptions options;
  options.topology.node_count = 4;
  options.workload.global_arrival_rate = 2.0;
  options.seed = 17;
  return options;
}

rl::DqnConfig small_dqn_config(const VnfEnv& env) {
  rl::DqnConfig config = default_dqn_config(env);
  config.hidden_dims = {16, 16};
  config.min_replay_before_training = 100;
  config.train_period = 4;
  config.epsilon_decay_steps = 2000;
  return config;
}

ServeOptions small_serve() {
  ServeOptions options;
  options.shards = 1;
  options.partitions = 4;
  options.requests_per_partition = 24;
  options.batch_max = 8;
  options.queue_capacity = 16;
  options.seed = 17;
  return options;
}

/// A fresh untrained DQN manager — serving determinism must hold for any
/// frozen policy, so the cheapest one suffices.
std::unique_ptr<DqnManager> small_dqn(const EnvOptions& env_options) {
  VnfEnv env(env_options);
  return std::make_unique<DqnManager>(env, small_dqn_config(env));
}

void expect_deterministically_identical(const ServeStats& a, const ServeStats& b,
                                        const std::string& label) {
  EXPECT_TRUE(a.deterministically_equal(b)) << label;
  ASSERT_EQ(a.partitions.size(), b.partitions.size()) << label;
  for (std::size_t p = 0; p < a.partitions.size(); ++p) {
    EXPECT_EQ(a.partitions[p].decision_digest, b.partitions[p].decision_digest)
        << label << " partition " << p;
    EXPECT_TRUE(a.partitions[p] == b.partitions[p]) << label << " partition " << p;
  }
}

TEST(ServeDriver, BitIdenticalAcrossShardCounts) {
  const EnvOptions env_options = small_options();
  const auto manager = small_dqn(env_options);
  std::vector<ServeStats> runs;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    ServeOptions options = small_serve();
    options.shards = shards;
    const ServeDriver driver(env_options, options);
    runs.push_back(driver.run(*manager));
    EXPECT_EQ(runs.back().shards.size(), shards);
  }
  for (std::size_t r = 1; r < runs.size(); ++r)
    expect_deterministically_identical(runs[0], runs[r],
                                       "shards 1 vs " + std::to_string(1u << r));
}

TEST(ServeDriver, BitIdenticalAcrossBatchSizes) {
  const EnvOptions env_options = small_options();
  const auto manager = small_dqn(env_options);
  std::vector<ServeStats> runs;
  for (const std::size_t batch_max : {std::size_t{1}, std::size_t{8}}) {
    ServeOptions options = small_serve();
    options.shards = 2;
    options.batch_max = batch_max;
    const ServeDriver driver(env_options, options);
    runs.push_back(driver.run(*manager));
  }
  expect_deterministically_identical(runs[0], runs[1], "batch_max 1 vs 8");
  // batch_max == 1 must never take the batched inference path.
  EXPECT_EQ(runs[0].batched_decisions, 0u);
  EXPECT_EQ(runs[0].single_decisions, runs[0].decisions);
}

TEST(ServeDriver, RepeatedRunsAreBitIdentical) {
  const EnvOptions env_options = small_options();
  const auto manager = small_dqn(env_options);
  const ServeDriver driver(env_options, small_serve());
  const ServeStats first = driver.run(*manager);
  const ServeStats second = driver.run(*manager);
  expect_deterministically_identical(first, second, "repeat");
}

TEST(ServeDriver, BatchedSelectionMatchesSequentialContract) {
  // select_actions on a frozen DqnManager must be decision-equivalent to the
  // base-class loop over select_action — the contract batching rests on.
  const EnvOptions env_options = small_options();
  const auto manager = small_dqn(env_options);
  const auto batched = manager->clone_for_eval();
  const auto sequential = manager->clone_for_eval();
  ASSERT_NE(batched, nullptr);
  ASSERT_NE(sequential, nullptr);
  batched->set_training(false);
  sequential->set_training(false);

  std::vector<std::unique_ptr<VnfEnv>> envs_a, envs_b;
  for (std::size_t p = 0; p < 3; ++p) {
    envs_a.push_back(std::make_unique<VnfEnv>(env_options));
    envs_b.push_back(std::make_unique<VnfEnv>(env_options));
    envs_a[p]->reset(serve_seed(17, p));
    envs_b[p]->reset(serve_seed(17, p));
  }
  for (int request = 0; request < 8; ++request) {
    for (std::size_t p = 0; p < 3; ++p) {
      ASSERT_TRUE(envs_a[p]->begin_next_request());
      ASSERT_TRUE(envs_b[p]->begin_next_request());
    }
    for (;;) {
      std::vector<VnfEnv*> live_a, live_b;
      for (std::size_t p = 0; p < 3; ++p) {
        if (envs_a[p]->has_pending_chain()) live_a.push_back(envs_a[p].get());
        if (envs_b[p]->has_pending_chain()) live_b.push_back(envs_b[p].get());
      }
      ASSERT_EQ(live_a.size(), live_b.size());
      if (live_a.empty()) break;
      std::vector<int> actions(live_a.size());
      batched->select_actions(live_a, actions);
      for (std::size_t i = 0; i < live_b.size(); ++i) {
        const int expected = sequential->select_action(*live_b[i]);
        EXPECT_EQ(actions[i], expected) << "request " << request << " env " << i;
        (void)live_a[i]->step(actions[i]);
        (void)live_b[i]->step(expected);
      }
    }
  }
}

TEST(ServeDriver, AggregatesMatchPartitionSums) {
  const EnvOptions env_options = small_options();
  const auto manager = small_dqn(env_options);
  const ServeOptions options = small_serve();
  const ServeDriver driver(env_options, options);
  const ServeStats stats = driver.run(*manager);

  EXPECT_EQ(stats.requests, options.partitions * options.requests_per_partition);
  ASSERT_EQ(stats.partitions.size(), options.partitions);
  std::uint64_t requests = 0, decisions = 0, accepted = 0, rejected = 0;
  for (const ServePartitionStats& p : stats.partitions) {
    EXPECT_EQ(p.requests, options.requests_per_partition);
    EXPECT_EQ(p.accepted + p.rejected, p.requests);
    EXPECT_GE(p.decisions, p.requests);  // ≥ one decision per chain
    requests += p.requests;
    decisions += p.decisions;
    accepted += p.accepted;
    rejected += p.rejected;
  }
  EXPECT_EQ(stats.requests, requests);
  EXPECT_EQ(stats.decisions, decisions);
  EXPECT_EQ(stats.accepted, accepted);
  EXPECT_EQ(stats.rejected, rejected);
  // Every request contributes exactly one latency sample.
  EXPECT_EQ(stats.latency.count(), stats.requests);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.decisions_per_second(), 0.0);
  EXPECT_GT(stats.decision_micros(), 0.0);
  // Shard batch accounting covers every decision.
  EXPECT_EQ(stats.batched_decisions + stats.single_decisions, stats.decisions);
}

TEST(ServeDriver, DistinctPartitionsServeDistinctWorkloads) {
  const EnvOptions env_options = small_options();
  const auto manager = small_dqn(env_options);
  const ServeDriver driver(env_options, small_serve());
  const ServeStats stats = driver.run(*manager);
  std::set<std::uint64_t> digests;
  for (const ServePartitionStats& p : stats.partitions)
    digests.insert(p.decision_digest);
  // Different serve seeds ⇒ different request streams ⇒ different digests.
  EXPECT_EQ(digests.size(), stats.partitions.size());
}

TEST(ServeDriver, TinyQueueBackpressureStillBitIdentical) {
  const EnvOptions env_options = small_options();
  const auto manager = small_dqn(env_options);
  ServeOptions tiny = small_serve();
  tiny.queue_capacity = 1;
  tiny.shards = 2;
  const ServeDriver tiny_driver(env_options, tiny);
  const ServeStats throttled = tiny_driver.run(*manager);
  const ServeDriver roomy_driver(env_options, small_serve());
  const ServeStats roomy = roomy_driver.run(*manager);
  expect_deterministically_identical(throttled, roomy, "capacity 1 vs 16");
  // A capacity-1 queue can never hold more than one token.
  EXPECT_LE(throttled.queue_high_water, 1u);
  for (const ServeShardStats& s : throttled.shards)
    EXPECT_LE(s.queue_high_water, 1u);
}

TEST(ServeDriver, ShardsClampedToPartitions) {
  const EnvOptions env_options = small_options();
  const auto manager = small_dqn(env_options);
  ServeOptions options = small_serve();
  options.shards = 64;  // > partitions: must clamp, not spawn idle workers
  const ServeDriver driver(env_options, options);
  const ServeStats stats = driver.run(*manager);
  EXPECT_EQ(stats.shards.size(), options.partitions);
  const ServeDriver reference(env_options, small_serve());
  expect_deterministically_identical(stats, reference.run(*manager), "clamped");
}

TEST(ServeDriver, RejectsDegenerateOptions) {
  const EnvOptions env_options = small_options();
  ServeOptions no_partitions = small_serve();
  no_partitions.partitions = 0;
  EXPECT_THROW(ServeDriver(env_options, no_partitions), std::invalid_argument);
  ServeOptions no_batch = small_serve();
  no_batch.batch_max = 0;
  EXPECT_THROW(ServeDriver(env_options, no_batch), std::invalid_argument);
  ServeOptions no_queue = small_serve();
  no_queue.queue_capacity = 0;
  EXPECT_THROW(ServeDriver(env_options, no_queue), std::invalid_argument);
}

/// Manager whose learning state cannot be snapshotted (clone_for_eval
/// returns nullptr, the base-class default).
class UncloneableManager final : public Manager {
 public:
  [[nodiscard]] std::string name() const override { return "uncloneable"; }
  [[nodiscard]] int select_action(VnfEnv& env) override {
    return env.reject_action();
  }
};

TEST(ServeDriver, RejectsUncloneableManager) {
  const ServeDriver driver(small_options(), small_serve());
  UncloneableManager manager;
  EXPECT_THROW((void)driver.run(manager), std::invalid_argument);
}

TEST(ServeDriver, HeuristicManagerServes) {
  // The engine is policy-agnostic: any cloneable manager serves.
  const EnvOptions env_options = small_options();
  MyopicCostManager manager;
  ServeOptions options = small_serve();
  options.shards = 2;
  const ServeDriver driver(env_options, options);
  const ServeStats a = driver.run(manager);
  const ServeStats b = driver.run(manager);
  expect_deterministically_identical(a, b, "greedy repeat");
  EXPECT_EQ(a.requests, options.partitions * options.requests_per_partition);
}

TEST(ServeSeeds, SliceDisjointFromTrainAndEval) {
  // Serving seeds sit 2M above the base — beyond the eval slice (base + 1M)
  // for any realistic episode budget.
  EXPECT_EQ(serve_seed(0, 0), kServeSeedOffset);
  EXPECT_EQ(serve_seed(11, 3), 11u + 2'000'000u + 3u);
  EXPECT_GT(serve_seed(11, 0), eval_seed(11, 999'999));
  EXPECT_GT(serve_seed(11, 0), train_seed(11, 999'999));
}

}  // namespace
}  // namespace vnfm::core
