// Determinism stress suite for the data-parallel gradient engine
// (invariant #8: fixed block size + fixed block-reduction order): learning
// curves, final serialized learner state, and whole checkpoint archives must
// be byte-identical for learner_threads ∈ {1,2,4}, crossed with actor
// threads {1,4}, for DQN with uniform and prioritized replay and for A2C.
// Anything leaking from worker scheduling into the gradient sum — a
// worker-count-derived block size, per-worker accumulators reduced in
// completion order, scratch reuse carrying stale rows — fails here.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "core/checkpoint.hpp"
#include "core/drl_manager.hpp"
#include "core/migration.hpp"
#include "core/train_driver.hpp"

namespace vnfm::core {
namespace {

EnvOptions small_options() {
  EnvOptions options;
  options.topology.node_count = 4;
  options.workload.global_arrival_rate = 2.0;
  options.seed = 17;
  return options;
}

rl::DqnConfig small_dqn_config(const VnfEnv& env, bool prioritized) {
  rl::DqnConfig config = default_dqn_config(env);
  config.hidden_dims = {16, 16};
  config.min_replay_before_training = 100;
  config.train_period = 4;
  config.epsilon_decay_steps = 2000;
  config.prioritized_replay = prioritized;
  return config;
}

using MakeManager = std::function<std::unique_ptr<Manager>(const EnvOptions&)>;

MakeManager make_dqn(bool prioritized) {
  return [prioritized](const EnvOptions& env_options) -> std::unique_ptr<Manager> {
    VnfEnv env(env_options);
    return std::make_unique<DqnManager>(env, small_dqn_config(env, prioritized));
  };
}

MakeManager make_dqn_soft_target() {
  // Polyak target updates + a small batch: every grad step runs the
  // parallel soft-update phase, and with batch_size 16 (2 gradient blocks)
  // the learners=4 cell exercises the blocks<workers inline fallback while
  // learners=2 takes the pooled path — both must match the (1,1) reference.
  return [](const EnvOptions& env_options) -> std::unique_ptr<Manager> {
    VnfEnv env(env_options);
    rl::DqnConfig config = small_dqn_config(env, false);
    config.soft_target_tau = 0.01F;
    config.batch_size = 16;
    return std::make_unique<DqnManager>(env, config);
  };
}

MakeManager make_a2c() {
  return [](const EnvOptions& env_options) -> std::unique_ptr<Manager> {
    VnfEnv env(env_options);
    return std::make_unique<A2cManager>(env, rl::ActorCriticConfig{});
  };
}

/// Full serialized manager state; byte equality == state equality.
std::vector<std::uint8_t> state_bytes(const Manager& manager) {
  Serializer out;
  out.begin_chunk("state");
  manager.save(out);
  out.end_chunk();
  return out.bytes();
}

/// Writes a full checkpoint archive for the run and returns its bytes.
/// Wall-clock stats fields are zeroed and actor_threads normalised — they
/// are timing/execution metadata that differs between any two real runs —
/// so the comparison covers every deterministic archive byte: meta, curve,
/// seeds, counters, and the complete manager state.
std::vector<std::uint8_t> archive_bytes(const Manager& manager,
                                        const TrainResult& result,
                                        const std::string& label) {
  TrainCheckpoint data;
  data.episodes_done = result.curve.size();
  data.base_seed = 11;
  data.curve = result.curve;
  data.seeds = result.seeds;
  data.stats.transitions = result.stats.transitions;
  data.stats.episodes = result.stats.episodes;
  data.stats.rounds = result.stats.rounds;
  data.stats.parallel = result.stats.parallel;
  data.stats.grad_steps = result.stats.grad_steps;

  const std::string dir = ::testing::TempDir() + "learner_parallel";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + label + ".vnfmc";
  write_checkpoint(path, manager, data);
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

struct RunOutput {
  std::vector<EpisodeResult> curve;
  std::size_t transitions = 0;
  std::size_t grad_steps = 0;
  std::vector<std::uint8_t> state;
  std::vector<std::uint8_t> archive;
};

RunOutput train_once(const MakeManager& make_manager, std::size_t actor_threads,
                     std::size_t learner_threads, const std::string& label) {
  const EnvOptions env_options = small_options();
  auto manager = make_manager(env_options);
  TrainOptions options;
  options.episodes = 8;
  options.threads = actor_threads;
  options.sync_period = 4;
  options.learner_threads = learner_threads;
  options.episode.duration_s = 120.0;
  options.episode.seed = 11;
  const TrainResult result = TrainDriver(env_options, options).run(*manager);

  RunOutput out;
  out.curve = result.curve;
  out.transitions = result.stats.transitions;
  out.grad_steps = result.stats.grad_steps;
  out.state = state_bytes(*manager);
  out.archive = archive_bytes(*manager, result, label);
  return out;
}

void expect_identical_curves(const std::vector<EpisodeResult>& a,
                             const std::vector<EpisodeResult>& b,
                             const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].total_reward, b[i].total_reward) << label << " episode " << i;
    EXPECT_EQ(a[i].total_cost, b[i].total_cost) << label << " episode " << i;
    EXPECT_EQ(a[i].acceptance_ratio, b[i].acceptance_ratio)
        << label << " episode " << i;
    EXPECT_EQ(a[i].mean_latency_ms, b[i].mean_latency_ms)
        << label << " episode " << i;
    EXPECT_EQ(a[i].requests, b[i].requests) << label << " episode " << i;
  }
}

/// The full cross: learner_threads {1,2,4} x actor threads {1,4} against the
/// (1 actor, 1 learner) reference — curve, final state, and archive must all
/// be byte-identical.
void run_cross(const MakeManager& make_manager, const std::string& policy) {
  const RunOutput reference = train_once(make_manager, 1, 1, policy + "_ref");
  ASSERT_GT(reference.grad_steps, 0u)
      << policy << ": no gradient step ran — the test would be vacuous";

  for (const std::size_t actors : {1, 4}) {
    for (const std::size_t learners : {1, 2, 4}) {
      if (actors == 1 && learners == 1) continue;
      const std::string label = policy + "_a" + std::to_string(actors) + "_l" +
                                std::to_string(learners);
      const RunOutput run = train_once(make_manager, actors, learners, label);
      expect_identical_curves(reference.curve, run.curve, label);
      EXPECT_EQ(reference.transitions, run.transitions) << label;
      EXPECT_EQ(reference.grad_steps, run.grad_steps) << label;
      EXPECT_EQ(reference.state, run.state) << label << " (final learner state)";
      EXPECT_EQ(reference.archive, run.archive) << label << " (checkpoint archive)";
    }
  }
}

TEST(LearnerParallel, DqnUniformReplayBitIdenticalAcrossLearnerThreads) {
  run_cross(make_dqn(false), "dqn_uniform");
}

TEST(LearnerParallel, DqnPrioritizedReplayBitIdenticalAcrossLearnerThreads) {
  run_cross(make_dqn(true), "dqn_per");
}

TEST(LearnerParallel, DqnSoftTargetUpdateBitIdenticalAcrossLearnerThreads) {
  // Covers the phased grad step end to end: backward blocks, the blocked
  // Adam step, and the blocked Polyak soft update all inside one pool job —
  // curves, learner state, and archives byte-identical at any thread count.
  run_cross(make_dqn_soft_target(), "dqn_soft");
}

TEST(LearnerParallel, A2cBitIdenticalAcrossLearnerThreads) {
  // A2C trains through the sequential fallback (inline learner) at any
  // actor-thread setting; its single-row updates run through the same
  // engine, so learner threads must be a pure no-op on results.
  run_cross(make_a2c(), "a2c");
}

TEST(LearnerParallel, ConsolidatingDecoratorForwardsEngineHooks) {
  // The decorator must pass the learner-threads knob and grad accounting
  // through to the wrapped learner, not swallow them in the defaults.
  const EnvOptions env_options = small_options();
  VnfEnv env(env_options);
  auto inner = std::make_unique<DqnManager>(env, small_dqn_config(env, false));
  DqnManager& dqn = *inner;
  ConsolidatingManager decorated(std::move(inner), {});

  decorated.set_learner_threads(4);
  EXPECT_EQ(dqn.agent().learner_threads(), 4u);
  (void)dqn.agent();  // drive a gradient step through the inner agent
  rl::Transition t;
  t.state.assign(dqn.agent().config().state_dim, 0.1F);
  t.next_state = t.state;
  for (int i = 0; i < 40; ++i) (void)dqn.agent().observe(t);
  (void)dqn.agent().train_step();
  EXPECT_EQ(decorated.grad_step_stats().steps, 1u);
  EXPECT_GT(decorated.grad_step_stats().seconds, 0.0);
}

TEST(LearnerParallel, ResumeUnderDifferentLearnerThreadCount) {
  // Checkpoints carry no learner-thread state: an archive written by a
  // 1-learner-thread run must resume bit-identically under 4 learner
  // threads (and land on the uninterrupted run's exact final state).
  const EnvOptions env_options = small_options();
  const auto make_manager = make_dqn(false);

  auto reference = make_manager(env_options);
  TrainOptions options;
  options.episodes = 8;
  options.sync_period = 4;
  options.episode.duration_s = 120.0;
  options.episode.seed = 11;
  const TrainResult full = TrainDriver(env_options, options).run(*reference);

  const std::string dir = ::testing::TempDir() + "learner_resume";
  std::filesystem::remove_all(dir);
  auto interrupted = make_manager(env_options);
  TrainOptions first_leg = options;
  first_leg.episodes = 4;
  first_leg.learner_threads = 1;
  first_leg.checkpoint_every = 4;
  first_leg.checkpoint_dir = dir;
  TrainDriver(env_options, first_leg).run(*interrupted);
  const std::string archive = latest_checkpoint(dir);
  ASSERT_FALSE(archive.empty());

  auto resumed = make_manager(env_options);
  const TrainCheckpoint restored = read_checkpoint(archive, *resumed);
  TrainOptions second_leg = options;
  second_leg.episodes = 8 - restored.episodes_done;
  second_leg.first_episode = restored.episodes_done;
  second_leg.learner_threads = 4;
  const TrainResult rest = TrainDriver(env_options, second_leg).run(*resumed);

  std::vector<EpisodeResult> stitched = restored.curve;
  stitched.insert(stitched.end(), rest.curve.begin(), rest.curve.end());
  expect_identical_curves(full.curve, stitched, "resume_l1_to_l4");
  EXPECT_EQ(state_bytes(*reference), state_bytes(*resumed));
}

}  // namespace
}  // namespace vnfm::core
