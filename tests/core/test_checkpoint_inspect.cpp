// Manager-free checkpoint inspection: inspect_checkpoint must report exactly
// what read_checkpoint restores — without constructing the policy — plus the
// size of the opaque manager chunk, and fail loudly on garbage input.
#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/serialize.hpp"
#include "core/drl_manager.hpp"
#include "core/heuristics.hpp"

namespace vnfm::core {
namespace {

EnvOptions small_options() {
  EnvOptions options;
  options.topology.node_count = 4;
  options.workload.global_arrival_rate = 2.0;
  options.seed = 17;
  return options;
}

rl::DqnConfig small_dqn_config(const VnfEnv& env) {
  rl::DqnConfig config = default_dqn_config(env);
  config.hidden_dims = {16, 16};
  return config;
}

std::string scratch_path(const std::string& name) {
  return ::testing::TempDir() + "inspect_" + name + ".vnfmc";
}

TrainCheckpoint sample_history() {
  TrainCheckpoint data;
  data.episodes_done = 4;
  data.base_seed = 17;
  data.curve.resize(4);
  for (std::size_t i = 0; i < data.curve.size(); ++i) {
    data.curve[i].total_reward = -2.5 * static_cast<double>(i);
    data.curve[i].requests = 20 + i;
    data.curve[i].total_cost = 100.0 + static_cast<double>(i);
    data.curve[i].acceptance_ratio = 0.75;
    data.seeds.push_back(train_seed(17, i));
  }
  data.stats.wall_seconds = 2.5;
  data.stats.transitions = 123;
  data.stats.episodes = 4;
  data.stats.rounds = 2;
  data.stats.actor_threads = 2;
  data.stats.parallel = true;
  data.stats.grad_steps = 31;
  data.stats.grad_seconds = 0.31;
  return data;
}

TEST(InspectCheckpoint, MatchesReadCheckpointOnDqnArchive) {
  const EnvOptions env_options = small_options();
  VnfEnv env(env_options);
  DqnManager manager(env, small_dqn_config(env));
  const TrainCheckpoint data = sample_history();
  const std::string path = scratch_path("dqn");
  write_checkpoint(path, manager, data);

  const CheckpointInfo info = inspect_checkpoint(path);
  EXPECT_EQ(info.policy, manager.checkpoint_state());
  EXPECT_EQ(info.episodes_done, data.episodes_done);
  EXPECT_EQ(info.base_seed, data.base_seed);
  EXPECT_EQ(info.seeds, data.seeds);
  ASSERT_EQ(info.curve.size(), data.curve.size());
  for (std::size_t i = 0; i < info.curve.size(); ++i) {
    EXPECT_EQ(info.curve[i].total_reward, data.curve[i].total_reward) << i;
    EXPECT_EQ(info.curve[i].requests, data.curve[i].requests) << i;
    EXPECT_EQ(info.curve[i].total_cost, data.curve[i].total_cost) << i;
  }
  EXPECT_EQ(info.stats.wall_seconds, data.stats.wall_seconds);
  EXPECT_EQ(info.stats.transitions, data.stats.transitions);
  EXPECT_EQ(info.stats.rounds, data.stats.rounds);
  EXPECT_EQ(info.stats.actor_threads, data.stats.actor_threads);
  EXPECT_EQ(info.stats.parallel, data.stats.parallel);
  EXPECT_EQ(info.stats.grad_steps, data.stats.grad_steps);
  EXPECT_EQ(info.stats.grad_seconds, data.stats.grad_seconds);
  // The skipped manager chunk carries real network weights: far from empty.
  EXPECT_GT(info.manager_bytes, 1000u);

  // Inspection is read-only: a full restore still works afterwards.
  VnfEnv env2(env_options);
  DqnManager restored(env2, small_dqn_config(env2));
  const TrainCheckpoint loaded = read_checkpoint(path, restored);
  EXPECT_EQ(loaded.episodes_done, info.episodes_done);
  EXPECT_EQ(loaded.seeds, info.seeds);
  EXPECT_EQ(loaded.stats.grad_steps, info.stats.grad_steps);
  std::filesystem::remove(path);
}

TEST(InspectCheckpoint, StatelessPolicyHasSmallManagerChunk) {
  const MyopicCostManager manager;
  const std::string path = scratch_path("myopic");
  write_checkpoint(path, manager, sample_history());
  const CheckpointInfo info = inspect_checkpoint(path);
  EXPECT_EQ(info.policy, "myopic_cost/v1");
  // Stateless baseline: the opaque chunk is orders of magnitude smaller
  // than a network's, but still self-describing (non-negative size read).
  EXPECT_LT(info.manager_bytes, 1000u);
  std::filesystem::remove(path);
}

TEST(InspectCheckpoint, ThrowsOnMissingAndGarbageFiles) {
  EXPECT_THROW((void)inspect_checkpoint(scratch_path("missing")),
               SerializeError);
  const std::string path = ::testing::TempDir() + "inspect_garbage.bin";
  std::ofstream(path, std::ios::binary) << "not a checkpoint archive";
  EXPECT_THROW((void)inspect_checkpoint(path), SerializeError);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace vnfm::core
