#include "core/drl_manager.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/runner.hpp"

namespace vnfm::core {
namespace {

EnvOptions small_options() {
  EnvOptions options;
  options.topology.node_count = 4;
  options.workload.global_arrival_rate = 1.5;
  options.seed = 13;
  return options;
}

rl::DqnConfig fast_dqn(const VnfEnv& env) {
  rl::DqnConfig config = default_dqn_config(env);
  config.hidden_dims = {32};
  config.min_replay_before_training = 128;
  config.epsilon_decay_steps = 2000;
  return config;
}

TEST(DqnManager, ConfigDimsAutoFilled) {
  VnfEnv env(small_options());
  const auto config = default_dqn_config(env);
  EXPECT_EQ(config.state_dim, 4u * 6 + 6 + 5 + 8);
  EXPECT_EQ(config.action_dim, 5u);
}

TEST(DqnManager, SelectsValidActionsWhileTraining) {
  VnfEnv env(small_options());
  DqnManager manager(env, fast_dqn(env));
  env.reset(0);
  manager.set_training(true);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(env.begin_next_request());
    StepResult r;
    do {
      const int action = manager.select_action(env);
      ASSERT_TRUE(env.action_mask()[static_cast<std::size_t>(action)]);
      r = env.step(action);
    } while (!r.chain_done);
  }
}

TEST(DqnManager, ObserveFeedsReplay) {
  VnfEnv env(small_options());
  DqnManager manager(env, fast_dqn(env));
  EpisodeOptions episode;
  episode.duration_s = 300.0;
  episode.training = true;
  (void)run_episode(env, manager, episode);
  EXPECT_GT(manager.agent().replay_size(), 0u);
  EXPECT_GT(manager.agent().steps(), 0u);
}

TEST(DqnManager, EvaluationModeIsDeterministic) {
  VnfEnv env(small_options());
  DqnManager manager(env, fast_dqn(env));
  manager.set_training(false);
  env.reset(0);
  ASSERT_TRUE(env.begin_next_request());
  const int a1 = manager.select_action(env);
  const int a2 = manager.select_action(env);
  EXPECT_EQ(a1, a2);
}

TEST(DqnManager, SaveLoadRoundTrip) {
  VnfEnv env(small_options());
  DqnManager manager(env, fast_dqn(env));
  EpisodeOptions episode;
  episode.duration_s = 300.0;
  (void)run_episode(env, manager, episode);
  std::stringstream stream;
  manager.save(stream);

  DqnManager restored(env, fast_dqn(env));
  restored.load(stream);
  restored.set_training(false);
  manager.set_training(false);
  env.reset(42);
  ASSERT_TRUE(env.begin_next_request());
  EXPECT_EQ(manager.select_action(env), restored.select_action(env));
}

TEST(ReinforceManager, RunsAndLearnsWithoutCrashing) {
  VnfEnv env(small_options());
  rl::ReinforceConfig config;
  config.hidden_dims = {32};
  ReinforceManager manager(env, config);
  EpisodeOptions episode;
  episode.duration_s = 300.0;
  const EpisodeResult result = run_episode(env, manager, episode);
  EXPECT_GT(result.requests, 0u);
}

TEST(ReinforceManager, ValidActionsOnly) {
  VnfEnv env(small_options());
  ReinforceManager manager(env, {});
  env.reset(0);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(env.begin_next_request());
    StepResult r;
    do {
      const int action = manager.select_action(env);
      ASSERT_TRUE(env.action_mask()[static_cast<std::size_t>(action)]);
      r = env.step(action);
      TransitionView view;
      view.reward = r.reward;
      manager.observe(view);
    } while (!r.chain_done);
    manager.on_chain_end(env);
  }
}

TEST(A2cManager, RunsAndLearnsEndToEnd) {
  VnfEnv env(small_options());
  rl::ActorCriticConfig config;
  config.hidden_dims = {32};
  A2cManager manager(env, config);
  EpisodeOptions episode;
  episode.duration_s = 300.0;
  const EpisodeResult result = run_episode(env, manager, episode);
  EXPECT_GT(result.requests, 0u);
  EXPECT_GT(manager.agent().updates(), 0u);
}

TEST(A2cManager, ValidActionsOnly) {
  VnfEnv env(small_options());
  A2cManager manager(env, {});
  env.reset(0);
  manager.set_training(false);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(env.begin_next_request());
    StepResult r;
    do {
      const int action = manager.select_action(env);
      ASSERT_TRUE(env.action_mask()[static_cast<std::size_t>(action)]);
      r = env.step(action);
    } while (!r.chain_done);
  }
}

TEST(TabularManager, RunsEndToEnd) {
  VnfEnv env(small_options());
  rl::TabularQConfig config;
  TabularManager manager(env, config);
  EpisodeOptions episode;
  episode.duration_s = 300.0;
  const EpisodeResult result = run_episode(env, manager, episode);
  EXPECT_GT(result.requests, 0u);
  EXPECT_GT(manager.agent().table_size(), 0u);
}

TEST(TabularManager, EvaluationDoesNotGrowTable) {
  VnfEnv env(small_options());
  TabularManager manager(env, {});
  EpisodeOptions episode;
  episode.duration_s = 300.0;
  (void)run_episode(env, manager, episode);
  const auto size_after_training = manager.agent().table_size();
  episode.training = false;
  (void)run_episode(env, manager, episode);
  EXPECT_EQ(manager.agent().table_size(), size_after_training);
}

}  // namespace
}  // namespace vnfm::core
