// Golden regression gate for the default network model (determinism
// invariant #11, constant half): with NetworkOptions::topology == "constant"
// — the default — every feature vector, action mask, reward, metric, and
// training archive must stay BYTE-IDENTICAL to the pre-NetworkModel code.
// The expected digests below were captured against the tree immediately
// before the network subsystem landed; any divergence on the default path is
// a regression, not a re-baseline.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "core/environment.hpp"
#include "exp/experiment.hpp"
#include "exp/scenario.hpp"

namespace vnfm {
namespace {

void mix_bytes(std::uint64_t& hash, const void* data, std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001B3ULL;
  }
}

/// FNV-1a digest of every (features, mask, reward) triple of a fixed
/// random-valid-action rollout — any byte-level divergence anywhere in the
/// decision loop flips it.
std::uint64_t env_digest(core::VnfEnv& env, std::uint64_t episode_seed,
                         std::size_t requests) {
  env.reset(episode_seed);
  Rng rng(99);
  std::uint64_t digest = 0xCBF29CE484222325ULL;
  std::vector<int> valid;
  for (std::size_t r = 0; r < requests; ++r) {
    if (!env.begin_next_request()) break;
    core::StepResult step;
    do {
      const auto features = env.features();
      const auto& mask = env.action_mask();
      mix_bytes(digest, features.data(), features.size() * sizeof(float));
      mix_bytes(digest, mask.data(), mask.size());
      valid.clear();
      for (std::size_t a = 0; a < mask.size(); ++a)
        if (mask[a]) valid.push_back(static_cast<int>(a));
      step = env.step(valid[rng.uniform_index(valid.size())]);
      mix_bytes(digest, &step.reward, sizeof(step.reward));
    } while (!step.chain_done);
  }
  return digest;
}

struct GoldenCase {
  const char* scenario;
  std::uint64_t episode_seed;
  std::size_t requests;
  std::uint64_t stream_digest;
  std::size_t accepted;
  std::uint64_t total_cost_bits;
};

// Captured pre-PR (see file header). large-scale-1k runs with nodes=200 to
// keep the case fast while still exercising candidate-set pruning.
const GoldenCase kGolden[] = {
    {"geo-distributed", 1ULL, 120, 0x9BFE5DD24484EA14ULL, 85, 0x40863EE5343D7671ULL},
    {"flash-crowd+node-failure", 3ULL, 150, 0xA2A345C95AF67B90ULL, 107,
     0x408AF1182D8501A5ULL},
    {"large-scale", 2ULL, 100, 0xF66F1DCD2AC4131EULL, 86, 0x4081886302758511ULL},
    {"large-scale-1k", 1ULL, 60, 0xF3D588B1EBC7ACF6ULL, 54, 0x4077EA3C598C532AULL},
};

TEST(NetworkGolden, ConstantModelKeepsEveryScenarioBitIdentical) {
  for (const GoldenCase& c : kGolden) {
    Config overrides;
    if (std::string(c.scenario) == "large-scale-1k") overrides.set("nodes", "200");
    core::VnfEnv env(exp::ScenarioCatalog::instance().build(c.scenario, overrides));
    EXPECT_EQ(env.cluster().network().name(), "constant-latency") << c.scenario;
    EXPECT_EQ(env_digest(env, c.episode_seed, c.requests), c.stream_digest)
        << c.scenario;
    EXPECT_EQ(env.metrics().accepted(), c.accepted) << c.scenario;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(env.metrics().total_cost()),
              c.total_cost_bits)
        << c.scenario;
  }
}

TEST(NetworkGolden, TrainingArchiveIsByteIdenticalToPrePr) {
  auto experiment = exp::Experiment::scenario("geo-distributed");
  experiment.manager("dqn").seed(5).train_duration(300.0).train(3);
  Serializer out;
  experiment.manager_ref().save(out);
  const auto& buffer = out.bytes();
  std::uint64_t digest = 0xCBF29CE484222325ULL;
  mix_bytes(digest, buffer.data(), buffer.size());
  EXPECT_EQ(buffer.size(), 2679972U);
  EXPECT_EQ(digest, 0xDCDB5ACE43004AA5ULL);
  EXPECT_EQ(crc32(buffer), 0x2C9C978DU);
}

TEST(NetworkGolden, FaultFeatureLayoutDigestIsPinned) {
  // The fault-visibility feature block reshapes every per-node row (6 -> 8
  // floats); these digests pin the enabled layout so future PRs can't
  // silently reorder or renormalise it. Captured when the fault subsystem
  // landed. The first case has no fault model — the block is constant
  // (failed=0, scale=0.5) and the digest isolates pure layout; the second
  // runs a generated MTBF stream, pinning stream timing and feature dynamics
  // together.
  core::VnfEnv layout_env(exp::ScenarioCatalog::instance().build(
      "geo-distributed", Config{{"fault_features", "true"}}));
  EXPECT_EQ(env_digest(layout_env, 1, 120), 0xC3F46DFE0BC7DF28ULL);

  core::VnfEnv storm_env(exp::ScenarioCatalog::instance().build(
      "geo-distributed+mtbf-faults",
      Config{{"fault_features", "true"}, {"mtbf_s", "600"}, {"mttr_s", "300"}}));
  EXPECT_EQ(env_digest(storm_env, 1, 120), 0xE9BCA5530C35225EULL);
}

TEST(NetworkGolden, FaultFeaturesOffKeepsTheLegacyLayoutByteIdentical) {
  // Counterpart guard: constructing the fault overlay WITHOUT fault_features
  // must leave the feature layout untouched — same row width, and a
  // fault-free episode prefix must digest identically to the legacy env.
  core::VnfEnv legacy(exp::ScenarioCatalog::instance().build("geo-distributed", {}));
  core::VnfEnv overlay(exp::ScenarioCatalog::instance().build(
      "geo-distributed+mtbf-faults", Config{{"mtbf_s", "1000000000"}}));
  // An (effectively) never-firing fault process: the rollout must be
  // bit-identical to the fault-free environment, proving the merge loop and
  // the disabled feature flag add zero bytes to the default path.
  EXPECT_EQ(env_digest(legacy, 1, 120), env_digest(overlay, 1, 120));
  EXPECT_EQ(legacy.state_dim(), overlay.state_dim());
}

TEST(NetworkGolden, FlowModelActuallyChangesTheRollout) {
  // Sanity counterpart: the digests above would be vacuous if the flow model
  // somehow fed through the same code path. Same scenario and seed, flow
  // fabric instead of constants — latency-bearing rewards must diverge.
  core::VnfEnv constant_env(
      exp::ScenarioCatalog::instance().build("geo-distributed", Config{}));
  core::VnfEnv flow_env(exp::ScenarioCatalog::instance().build(
      "geo-distributed", Config{{"topology", "two-tier-edge"}}));
  EXPECT_EQ(flow_env.cluster().network().name(), "flow-network");
  EXPECT_NE(env_digest(constant_env, 1, 40), env_digest(flow_env, 1, 40));
}

}  // namespace
}  // namespace vnfm
