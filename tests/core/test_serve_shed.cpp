// Admission-control tests for ServeOptions::shed_when_full: a full shard
// queue counts-and-drops instead of blocking the generator, shed counts land
// in the deterministic stats block, and the default (shedding off) keeps the
// blocking backpressure path with zero shed everywhere.
#include <gtest/gtest.h>

#include <memory>

#include "core/drl_manager.hpp"
#include "core/serve_driver.hpp"

namespace vnfm::core {
namespace {

EnvOptions small_options() {
  EnvOptions options;
  options.topology.node_count = 4;
  options.workload.global_arrival_rate = 2.0;
  options.seed = 23;
  return options;
}

std::unique_ptr<DqnManager> small_dqn(const EnvOptions& env_options) {
  VnfEnv env(env_options);
  rl::DqnConfig config = default_dqn_config(env);
  config.hidden_dims = {16, 16};
  return std::make_unique<DqnManager>(env, config);
}

ServeOptions tiny_queue_serve() {
  ServeOptions options;
  options.shards = 1;
  options.partitions = 4;
  options.requests_per_partition = 32;
  options.batch_max = 4;
  options.queue_capacity = 1;  // overload by construction (open throttle)
  options.seed = 23;
  return options;
}

TEST(ServeShed, OffByDefaultAndAlwaysZeroWhenOff) {
  const EnvOptions env_options = small_options();
  const auto manager = small_dqn(env_options);
  ServeOptions options = tiny_queue_serve();
  ASSERT_FALSE(options.shed_when_full);
  const ServeStats stats = ServeDriver(env_options, options).run(*manager);
  // Blocking backpressure: every issued request is eventually served.
  EXPECT_EQ(stats.shed, 0U);
  EXPECT_EQ(stats.requests,
            options.partitions * options.requests_per_partition);
  for (const ServePartitionStats& ps : stats.partitions) {
    EXPECT_EQ(ps.shed, 0U);
    EXPECT_EQ(ps.requests, options.requests_per_partition);
  }
}

TEST(ServeShed, CountsDropsAndConservesRequestsWhenOn) {
  const EnvOptions env_options = small_options();
  const auto manager = small_dqn(env_options);
  ServeOptions options = tiny_queue_serve();
  options.shed_when_full = true;
  const ServeStats stats = ServeDriver(env_options, options).run(*manager);
  // Conservation: every generated request was either served or shed.
  std::uint64_t shed_total = 0;
  for (const ServePartitionStats& ps : stats.partitions) {
    EXPECT_EQ(ps.requests + ps.shed, options.requests_per_partition);
    shed_total += ps.shed;
  }
  EXPECT_EQ(stats.shed, shed_total);
  EXPECT_EQ(stats.requests + stats.shed,
            options.partitions * options.requests_per_partition);
  // A capacity-1 queue under an open-throttle generator must actually shed
  // (the generator outruns inference by construction).
  EXPECT_GT(stats.shed, 0U);
  // Shedding never blocks the generator, so no backpressure waits are
  // recorded on the push path.
  EXPECT_EQ(stats.backpressure_waits, 0U);
}

TEST(ServeShed, ShedIsPartOfTheDeterministicEqualityCheck) {
  ServeStats a;
  ServeStats b;
  EXPECT_TRUE(a.deterministically_equal(b));
  b.shed = 7;
  EXPECT_FALSE(a.deterministically_equal(b));
  ServePartitionStats pa;
  ServePartitionStats pb;
  EXPECT_TRUE(pa == pb);
  pb.shed = 1;
  EXPECT_FALSE(pa == pb);
}

}  // namespace
}  // namespace vnfm::core
