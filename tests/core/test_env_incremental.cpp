// Determinism invariant #10: the incremental feature builder (the default)
// serves per-node rows and masks bit-identical to the dense O(nodes)
// reference scan, across arbitrary action sequences, fault events, capacity
// scaling, and chain kills — plus the candidate-set pruning layout contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "core/drl_manager.hpp"
#include "core/environment.hpp"
#include "core/runner.hpp"

namespace vnfm::core {
namespace {

using edgesim::NodeId;

EnvOptions stress_options(bool dense) {
  EnvOptions options;
  options.topology.node_count = 12;
  options.workload.global_arrival_rate = 6.0;
  options.seed = 21;
  options.dense_features = dense;
  // Fault script covering every cluster mutation path the caches track:
  // fail (chain kills + releases), recover, and capacity scaling both ways.
  options.events.fail_node(30.0, NodeId{2})
      .scale_capacity(60.0, NodeId{7}, 0.5)
      .recover_node(120.0, NodeId{2})
      .scale_capacity(200.0, NodeId{7}, 1.25)
      .fail_node(260.0, NodeId{0})
      .recover_node(320.0, NodeId{0});
  return options;
}

/// Full serialized manager state; byte equality == state equality.
std::vector<std::uint8_t> state_bytes(const Manager& manager) {
  Serializer out;
  out.begin_chunk("state");
  manager.save(out);
  out.end_chunk();
  return out.bytes();
}

TEST(EnvIncremental, BitIdenticalToDenseUnderStress) {
  VnfEnv dense(stress_options(true));
  VnfEnv incremental(stress_options(false));
  Rng rng(77);
  for (const std::uint64_t episode : {0ULL, 1ULL, 2ULL}) {
    dense.reset(episode);
    incremental.reset(episode);
    for (int request = 0; request < 150; ++request) {
      const bool more = dense.begin_next_request(400.0);
      ASSERT_EQ(more, incremental.begin_next_request(400.0));
      if (!more) break;
      StepResult result;
      do {
        const auto fa = dense.features();
        const auto fb = incremental.features();
        ASSERT_EQ(fa.size(), fb.size());
        // Bit-for-bit float equality, not approximate.
        ASSERT_TRUE(std::equal(fa.begin(), fa.end(), fb.begin()))
            << "episode " << episode << " request " << request;
        ASSERT_EQ(dense.action_mask(), incremental.action_mask());
        // Random valid action; the shared draw sometimes picks the reject
        // slot mid-chain, exercising the abort/rollback path too.
        const auto& mask = dense.action_mask();
        std::vector<int> valid;
        for (std::size_t a = 0; a < mask.size(); ++a)
          if (mask[a]) valid.push_back(static_cast<int>(a));
        const int action = valid[rng.uniform_index(valid.size())];
        result = dense.step(action);
        const StepResult other = incremental.step(action);
        ASSERT_EQ(result.reward, other.reward);
        ASSERT_EQ(result.chain_done, other.chain_done);
        ASSERT_EQ(result.accepted, other.accepted);
      } while (!result.chain_done);
    }
    // Episode-level accounting agrees exactly, fault handling included.
    EXPECT_EQ(dense.metrics().accepted(), incremental.metrics().accepted());
    EXPECT_EQ(dense.metrics().rejected(), incremental.metrics().rejected());
    EXPECT_EQ(dense.metrics().total_cost(), incremental.metrics().total_cost());
    EXPECT_EQ(dense.events_applied(), incremental.events_applied());
    EXPECT_EQ(dense.now(), incremental.now());
  }
}

TEST(EnvIncremental, TrainingCheckpointArchivesByteEqualAcrossModes) {
  // A learning run (greedy table reads + epsilon stream + Q updates) must
  // produce byte-identical checkpoints whichever feature builder served it.
  std::vector<std::vector<std::uint8_t>> archives;
  std::vector<std::vector<EpisodeResult>> curves;
  for (const bool dense : {true, false}) {
    EnvOptions options = stress_options(dense);
    VnfEnv env(options);
    TabularManager manager(env, rl::TabularQConfig{}, 4);
    EpisodeOptions episode;
    episode.duration_s = 300.0;
    episode.seed = 11;
    curves.push_back(train_manager(env, manager, 3, episode));
    archives.push_back(state_bytes(manager));
  }
  ASSERT_EQ(curves[0].size(), curves[1].size());
  for (std::size_t i = 0; i < curves[0].size(); ++i) {
    EXPECT_EQ(curves[0][i].total_reward, curves[1][i].total_reward) << i;
    EXPECT_EQ(curves[0][i].total_cost, curves[1][i].total_cost) << i;
  }
  EXPECT_EQ(archives[0], archives[1]);
}

EnvOptions pruned_options(std::size_t k) {
  EnvOptions options;
  options.topology.node_count = 6;
  options.workload.global_arrival_rate = 4.0;
  options.seed = 5;
  options.candidate_k = k;
  return options;
}

TEST(EnvPruning, LayoutIsFixedWidthWithRejectAlwaysPresent) {
  VnfEnv env(pruned_options(3));
  EXPECT_EQ(env.feature_rows(), 3u);
  EXPECT_EQ(env.action_count(), 4);
  EXPECT_EQ(env.reject_action(), 3);
  env.reset(0);
  ASSERT_TRUE(env.begin_next_request());
  EXPECT_EQ(env.action_mask().size(), 4u);
  EXPECT_EQ(env.action_mask().back(), 1);  // reject slot always valid
  // State width is k-based, independent of cluster scale.
  EXPECT_EQ(env.state_dim(), 3u * 6 + env.vnfs().size() + env.sfcs().size() + 8);
}

TEST(EnvPruning, StateWidthIndependentOfNodeCount) {
  EnvOptions small = pruned_options(4);
  EnvOptions big = pruned_options(4);
  big.topology.node_count = 16;
  VnfEnv env_small(small);
  VnfEnv env_big(big);
  env_small.reset(0);
  env_big.reset(0);
  ASSERT_TRUE(env_small.begin_next_request());
  ASSERT_TRUE(env_big.begin_next_request());
  EXPECT_EQ(env_small.state_dim(), env_big.state_dim());
  EXPECT_EQ(env_small.action_count(), env_big.action_count());
}

TEST(EnvPruning, LargeKDegeneratesToLegacyFeasibleSetInOrder) {
  // With k >= node_count every feasible node is a candidate, ascending by
  // id — the legacy ordering restricted to feasible nodes — and each row
  // equals the legacy row of the node it remaps to.
  EnvOptions legacy_options = pruned_options(0);
  legacy_options.candidate_k = 0;
  VnfEnv legacy(legacy_options);
  VnfEnv pruned(pruned_options(8));  // 8 > 6 nodes
  Rng rng(3);
  legacy.reset(1);
  pruned.reset(1);
  for (int request = 0; request < 40; ++request) {
    ASSERT_TRUE(legacy.begin_next_request());
    ASSERT_TRUE(pruned.begin_next_request());
    StepResult result;
    do {
      const auto& legacy_mask = legacy.action_mask();
      const auto candidates = pruned.candidate_nodes();
      // Candidates == feasible legacy slots, strictly ascending.
      std::vector<std::uint32_t> feasible;
      for (std::size_t i = 0; i < legacy.feature_rows(); ++i)
        if (legacy_mask[i]) feasible.push_back(static_cast<std::uint32_t>(i));
      ASSERT_EQ(candidates.size(), feasible.size());
      const auto legacy_features = legacy.features();
      const auto pruned_features = pruned.features();
      for (std::size_t s = 0; s < candidates.size(); ++s) {
        ASSERT_EQ(edgesim::index(candidates[s]), feasible[s]);
        ASSERT_EQ(pruned.action_mask()[s], 1);
        for (std::size_t f = 0; f < 6; ++f)
          ASSERT_EQ(pruned_features[s * 6 + f], legacy_features[feasible[s] * 6 + f]);
        // Remap round-trips.
        ASSERT_EQ(pruned.candidate_node(static_cast<int>(s)), candidates[s]);
        const auto slot = pruned.action_for_node(candidates[s]);
        ASSERT_TRUE(slot.has_value());
        ASSERT_EQ(*slot, static_cast<int>(s));
      }
      // Pad slots are zeroed and masked off.
      for (std::size_t s = candidates.size(); s < pruned.feature_rows(); ++s) {
        ASSERT_EQ(pruned.action_mask()[s], 0);
        for (std::size_t f = 0; f < 6; ++f) ASSERT_EQ(pruned_features[s * 6 + f], 0.0F);
      }
      // Take the same placement through both layouts.
      int legacy_action = legacy.reject_action();
      int pruned_action = pruned.reject_action();
      if (!candidates.empty() && !rng.bernoulli(0.1)) {
        const std::size_t pick = rng.uniform_index(candidates.size());
        pruned_action = static_cast<int>(pick);
        legacy_action = static_cast<int>(edgesim::index(candidates[pick]));
      }
      result = pruned.step(pruned_action);
      const StepResult expected = legacy.step(legacy_action);
      ASSERT_EQ(result.reward, expected.reward);
      ASSERT_EQ(result.chain_done, expected.chain_done);
      ASSERT_EQ(result.accepted, expected.accepted);
    } while (!result.chain_done);
  }
  EXPECT_EQ(legacy.metrics().accepted(), pruned.metrics().accepted());
  EXPECT_EQ(legacy.metrics().total_cost(), pruned.metrics().total_cost());
}

TEST(EnvPruning, SmallKSelectsFeasibleSubsetAndPlacesChains) {
  VnfEnv env(pruned_options(2));
  env.reset(0);
  std::size_t accepted = 0;
  for (int request = 0; request < 30; ++request) {
    ASSERT_TRUE(env.begin_next_request());
    StepResult result;
    do {
      const auto candidates = env.candidate_nodes();
      ASSERT_LE(candidates.size(), 2u);
      // Every candidate slot must be feasible and remappable.
      for (std::size_t s = 0; s < candidates.size(); ++s) {
        ASSERT_EQ(env.action_mask()[s], 1);
        ASSERT_EQ(env.action_for_node(candidates[s]).value(), static_cast<int>(s));
      }
      // A node outside the candidate set has no slot.
      for (std::uint32_t i = 0; i < env.topology().node_count(); ++i) {
        const NodeId node{i};
        const bool listed =
            std::find(candidates.begin(), candidates.end(), node) != candidates.end();
        ASSERT_EQ(env.action_for_node(node).has_value(), listed);
      }
      result = env.step(candidates.empty() ? env.reject_action() : 0);
      if (result.chain_done && result.accepted) ++accepted;
    } while (!result.chain_done);
  }
  EXPECT_GT(accepted, 0u);
  EXPECT_EQ(env.metrics().accepted(), accepted);
}

}  // namespace
}  // namespace vnfm::core
