#include "core/runner.hpp"

#include <gtest/gtest.h>

#include "core/heuristics.hpp"

namespace vnfm::core {
namespace {

EnvOptions small_options() {
  EnvOptions options;
  options.topology.node_count = 4;
  options.workload.global_arrival_rate = 2.0;
  options.seed = 17;
  return options;
}

TEST(Runner, EpisodeRespectsTimeHorizon) {
  VnfEnv env(small_options());
  GreedyLatencyManager manager;
  EpisodeOptions episode;
  episode.duration_s = 300.0;
  episode.training = false;
  const EpisodeResult result = run_episode(env, manager, episode);
  EXPECT_LE(env.now(), 300.0 + 1e-9);
  // ~2 req/s * 300 s = ~600 requests (Poisson, wide tolerance).
  EXPECT_GT(result.requests, 400u);
  EXPECT_LT(result.requests, 800u);
}

TEST(Runner, EpisodeRespectsRequestCap) {
  VnfEnv env(small_options());
  GreedyLatencyManager manager;
  EpisodeOptions episode;
  episode.duration_s = 1e9;
  episode.max_requests = 25;
  episode.training = false;
  const EpisodeResult result = run_episode(env, manager, episode);
  EXPECT_EQ(result.requests, 25u);
}

TEST(Runner, ResultMatchesEnvMetrics) {
  VnfEnv env(small_options());
  GreedyLatencyManager manager;
  EpisodeOptions episode;
  episode.duration_s = 200.0;
  episode.training = false;
  const EpisodeResult result = run_episode(env, manager, episode);
  EXPECT_DOUBLE_EQ(result.cost_per_request, env.metrics().cost_per_request());
  EXPECT_DOUBLE_EQ(result.acceptance_ratio, env.metrics().acceptance_ratio());
  EXPECT_EQ(result.deployments, env.metrics().deployments());
  EXPECT_EQ(result.requests, env.metrics().arrivals());
}

TEST(Runner, SameSeedSameResultForDeterministicPolicy) {
  VnfEnv env(small_options());
  GreedyLatencyManager manager;
  EpisodeOptions episode;
  episode.duration_s = 200.0;
  episode.training = false;
  episode.seed = 5;
  const EpisodeResult a = run_episode(env, manager, episode);
  const EpisodeResult b = run_episode(env, manager, episode);
  EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_DOUBLE_EQ(a.mean_latency_ms, b.mean_latency_ms);
}

TEST(Runner, TrainManagerProducesCurveWithDistinctSeeds) {
  VnfEnv env(small_options());
  GreedyLatencyManager manager;  // deterministic, so variation == seed effect
  EpisodeOptions episode;
  episode.duration_s = 150.0;
  const auto curve = train_manager(env, manager, 3, episode);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_NE(curve[0].total_cost, curve[1].total_cost);  // different workloads
}

TEST(Runner, EvaluateAveragesOverRepeats) {
  VnfEnv env(small_options());
  GreedyLatencyManager manager;
  EpisodeOptions episode;
  episode.duration_s = 150.0;
  const EpisodeResult mean = evaluate_manager(env, manager, episode, 3);
  EXPECT_GT(mean.requests, 0u);
  EXPECT_GE(mean.acceptance_ratio, 0.0);
  EXPECT_LE(mean.acceptance_ratio, 1.0);
}

TEST(Runner, EvaluateRejectsZeroRepeats) {
  VnfEnv env(small_options());
  GreedyLatencyManager manager;
  EXPECT_THROW(evaluate_manager(env, manager, {}, 0), std::invalid_argument);
}

TEST(Runner, RewardAccumulatesOverChains) {
  VnfEnv env(small_options());
  GreedyLatencyManager manager;
  EpisodeOptions episode;
  episode.duration_s = 100.0;
  episode.training = false;
  const EpisodeResult result = run_episode(env, manager, episode);
  // With revenue enabled, a sensible policy earns positive reward.
  EXPECT_NE(result.total_reward, 0.0);
}

}  // namespace
}  // namespace vnfm::core
