#include "core/migration.hpp"

#include <gtest/gtest.h>

#include "core/heuristics.hpp"
#include "core/runner.hpp"

namespace vnfm::core {
namespace {

EnvOptions small_options() {
  EnvOptions options;
  options.topology.node_count = 4;
  options.workload.global_arrival_rate = 2.0;
  options.seed = 29;
  return options;
}

TEST(ConsolidationPass, EmptyClusterDoesNothing) {
  VnfEnv env(small_options());
  env.reset(0);
  EXPECT_EQ(run_consolidation_pass(env.mutable_cluster(), {}), 0u);
}

TEST(ConsolidationPass, DrainsUnderutilisedNode) {
  VnfEnv env(small_options());
  env.reset(0);
  auto& cluster = env.mutable_cluster();

  // Build load on node 0 (several chains) and one lonely chain on node 1.
  const auto& sfc = env.sfcs().by_name("voip");
  auto place = [&](std::uint32_t node, std::uint64_t id) {
    edgesim::Request r;
    r.id = edgesim::RequestId{id};
    r.source_region = edgesim::NodeId{0};
    r.sfc = sfc.id;
    r.rate_rps = 2.0;
    r.duration_s = 10'000.0;
    cluster.start_chain(r);
    while (!cluster.pending_complete()) cluster.place_next(edgesim::NodeId{node});
    return cluster.commit_chain();
  };
  for (std::uint64_t i = 0; i < 6; ++i) place(0, i);
  place(1, 100);  // the drain candidate

  ConsolidationOptions options;
  options.drain_utilization = 0.2;  // node 1 (one voip chain) is far below
  options.max_migrations_per_pass = 8;
  options.sla_headroom = 1.0;
  const std::size_t moved = run_consolidation_pass(cluster, options);
  EXPECT_GE(moved, 1u);
  EXPECT_EQ(cluster.total_migrations(), moved);
  // The migrated VNF now points at node 0.
  const auto& chain = cluster.active_chains().at(edgesim::RequestId{100});
  bool any_on_zero = false;
  for (const auto node : chain.nodes) any_on_zero |= edgesim::index(node) == 0;
  EXPECT_TRUE(any_on_zero);
}

TEST(ConsolidationPass, RespectsMigrationCap) {
  VnfEnv env(small_options());
  env.reset(0);
  auto& cluster = env.mutable_cluster();
  const auto& sfc = env.sfcs().by_name("voip");
  auto place = [&](std::uint32_t node, std::uint64_t id) {
    edgesim::Request r;
    r.id = edgesim::RequestId{id};
    r.source_region = edgesim::NodeId{0};
    r.sfc = sfc.id;
    r.rate_rps = 2.0;
    r.duration_s = 10'000.0;
    cluster.start_chain(r);
    while (!cluster.pending_complete()) cluster.place_next(edgesim::NodeId{node});
    return cluster.commit_chain();
  };
  for (std::uint64_t i = 0; i < 8; ++i) place(0, i);
  for (std::uint64_t i = 0; i < 5; ++i) place(1, 100 + i);

  ConsolidationOptions options;
  options.drain_utilization = 0.9;  // everything is a candidate
  options.max_migrations_per_pass = 2;
  options.sla_headroom = 1.0;
  EXPECT_LE(run_consolidation_pass(cluster, options), 2u);
}

TEST(ConsolidationPass, HonoursSlaHeadroom) {
  VnfEnv env(small_options());
  env.reset(0);
  auto& cluster = env.mutable_cluster();
  // One gaming chain (60 ms SLA) served locally; the only possible reuse
  // targets are overseas, so consolidation must refuse to move it.
  const auto& gaming = env.sfcs().by_name("gaming");
  edgesim::Request r;
  r.id = edgesim::RequestId{1};
  r.source_region = edgesim::NodeId{0};
  r.sfc = gaming.id;
  r.rate_rps = 4.0;
  r.duration_s = 10'000.0;
  cluster.start_chain(r);
  while (!cluster.pending_complete()) cluster.place_next(edgesim::NodeId{0});
  (void)cluster.commit_chain();
  // Busier remote node with reusable instances of all three types.
  for (const char* name : {"nat", "firewall", "ids"})
    cluster.deploy_pinned(edgesim::NodeId{2}, env.vnfs().by_name(name).id);
  cluster.deploy_pinned(edgesim::NodeId{2}, env.vnfs().by_name("ids").id);

  ConsolidationOptions options;
  options.drain_utilization = 0.9;
  options.sla_headroom = 0.9;
  EXPECT_EQ(run_consolidation_pass(cluster, options), 0u);
}

TEST(ConsolidatingManager, DelegatesAndMigrates) {
  VnfEnv env(small_options());
  FirstFitManager inner;
  ConsolidationOptions options;
  options.drain_utilization = 0.6;
  options.max_migrations_per_pass = 4;
  ConsolidatingManager manager(inner, options, /*period_chains=*/20);
  EXPECT_EQ(manager.name(), "first_fit+consolidation");

  EpisodeOptions episode;
  episode.duration_s = 900.0;
  episode.training = false;
  const EpisodeResult result = run_episode(env, manager, episode);
  EXPECT_GT(result.requests, 0u);
  // Migrations are charged to the objective when they happen.
  EXPECT_EQ(env.metrics().migrations(), manager.migrations_triggered());
}

TEST(ConsolidatingManager, MigrationCostChargedToObjective) {
  VnfEnv env(small_options());
  env.reset(0);
  const double cost_before = env.metrics().total_cost();
  env.record_migrations(3);
  EXPECT_NEAR(env.metrics().total_cost() - cost_before,
              env.cost_model().migration_cost(3), 1e-12);
  EXPECT_EQ(env.metrics().migrations(), 3u);
}

}  // namespace
}  // namespace vnfm::core
