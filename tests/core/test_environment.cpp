#include "core/environment.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace vnfm::core {
namespace {

EnvOptions small_options() {
  EnvOptions options;
  options.topology.node_count = 4;
  options.workload.global_arrival_rate = 2.0;
  options.seed = 3;
  return options;
}

TEST(VnfEnv, ActionSpaceIsNodesPlusReject) {
  VnfEnv env(small_options());
  EXPECT_EQ(env.action_count(), 5);
  EXPECT_EQ(env.reject_action(), 4);
}

TEST(VnfEnv, FeatureVectorShapeAndRange) {
  VnfEnv env(small_options());
  env.reset(0);
  ASSERT_TRUE(env.begin_next_request());
  // 4 nodes x 6 + 6 VNF one-hot + 5 SFC one-hot + 8 globals.
  EXPECT_EQ(env.state_dim(), 4u * 6 + 6 + 5 + 8);
  for (const float f : env.features()) {
    EXPECT_GE(f, 0.0F);
    EXPECT_LE(f, 1.0F);
  }
  EXPECT_EQ(env.action_mask().size(), 5u);
  EXPECT_EQ(env.action_mask().back(), 1);  // reject always valid
}

TEST(VnfEnv, ResetRestartsCleanly) {
  VnfEnv env(small_options());
  env.reset(0);
  ASSERT_TRUE(env.begin_next_request());
  (void)env.step(0);
  env.reset(1);
  EXPECT_EQ(env.metrics().arrivals(), 0u);
  EXPECT_EQ(env.cluster().total_instance_count(), 0u);
  EXPECT_DOUBLE_EQ(env.now(), 0.0);
}

TEST(VnfEnv, SameSeedReproducesSameRequests) {
  VnfEnv env(small_options());
  env.reset(7);
  ASSERT_TRUE(env.begin_next_request());
  const auto r1 = env.pending_request();
  env.reset(7);
  ASSERT_TRUE(env.begin_next_request());
  const auto r2 = env.pending_request();
  EXPECT_DOUBLE_EQ(r1.arrival_time, r2.arrival_time);
  EXPECT_EQ(edgesim::index(r1.sfc), edgesim::index(r2.sfc));
  EXPECT_DOUBLE_EQ(r1.rate_rps, r2.rate_rps);
}

TEST(VnfEnv, DifferentSeedsDiverge) {
  VnfEnv env(small_options());
  env.reset(1);
  ASSERT_TRUE(env.begin_next_request());
  const double t1 = env.pending_request().arrival_time;
  env.reset(2);
  ASSERT_TRUE(env.begin_next_request());
  const double t2 = env.pending_request().arrival_time;
  EXPECT_NE(t1, t2);
}

TEST(VnfEnv, HorizonCutoffReturnsFalse) {
  VnfEnv env(small_options());
  env.reset(0);
  EXPECT_FALSE(env.begin_next_request(0.0));  // nothing can arrive by t=0
  EXPECT_FALSE(env.has_pending_chain());
}

TEST(VnfEnv, PlacingFullChainAcceptsAndRecords) {
  VnfEnv env(small_options());
  env.reset(0);
  ASSERT_TRUE(env.begin_next_request());
  const auto chain_length = env.sfcs().sfc(env.pending_request().sfc).chain.size();
  StepResult result;
  std::size_t steps = 0;
  do {
    result = env.step(0);  // place everything on node 0
    ++steps;
  } while (!result.chain_done);
  EXPECT_EQ(steps, chain_length);
  EXPECT_TRUE(result.accepted);
  EXPECT_EQ(env.metrics().accepted(), 1u);
  EXPECT_EQ(env.metrics().arrivals(), 1u);
  EXPECT_GT(env.cluster().total_instance_count(), 0u);
}

TEST(VnfEnv, RejectEndsChainWithPenalty) {
  VnfEnv env(small_options());
  env.reset(0);
  ASSERT_TRUE(env.begin_next_request());
  const StepResult result = env.step(env.reject_action());
  EXPECT_TRUE(result.chain_done);
  EXPECT_FALSE(result.accepted);
  EXPECT_LT(result.reward, 0.0F);
  EXPECT_NEAR(result.reward,
              -env.cost_model().rejection_cost() * env.options().reward_scale, 1e-5);
  EXPECT_EQ(env.metrics().rejected(), 1u);
  EXPECT_EQ(env.cluster().total_instance_count(), 0u);
}

TEST(VnfEnv, MidChainRejectRollsBack) {
  VnfEnv env(small_options());
  env.reset(0);
  // Find a request with a chain longer than 1.
  while (true) {
    ASSERT_TRUE(env.begin_next_request());
    if (env.sfcs().sfc(env.pending_request().sfc).chain.size() > 1) break;
    StepResult r;
    do { r = env.step(env.reject_action()); } while (!r.chain_done);
  }
  (void)env.step(0);  // place first VNF
  EXPECT_GT(env.cluster().total_instance_count(), 0u);
  const StepResult result = env.step(env.reject_action());
  EXPECT_TRUE(result.chain_done);
  EXPECT_EQ(env.cluster().total_instance_count(), 0u);  // rolled back
}

TEST(VnfEnv, DeployRewardPenalisesNewInstances) {
  VnfEnv env(small_options());
  env.reset(0);
  ASSERT_TRUE(env.begin_next_request());
  const StepResult first = env.step(0);
  EXPECT_TRUE(first.deployed_new);
  // Same request type placed again on the same node should reuse.
  if (!first.chain_done) {
    const StepResult second = env.step(0);
    // Second VNF of the chain is a different type -> deploys again.
    EXPECT_TRUE(second.deployed_new);
  }
}

TEST(VnfEnv, StepValidation) {
  VnfEnv env(small_options());
  env.reset(0);
  EXPECT_THROW((void)env.step(0), std::logic_error);  // no pending chain
  ASSERT_TRUE(env.begin_next_request());
  EXPECT_THROW((void)env.step(-1), std::out_of_range);
  EXPECT_THROW((void)env.step(99), std::out_of_range);
}

TEST(VnfEnv, CoarseFeaturesBounded) {
  VnfEnv env(small_options());
  env.reset(0);
  ASSERT_TRUE(env.begin_next_request());
  const auto coarse = env.coarse_features();
  EXPECT_EQ(coarse.size(), 5u);
  for (const float f : coarse) {
    EXPECT_GE(f, 0.0F);
    EXPECT_LE(f, 1.0F);
  }
}

TEST(VnfEnv, RewardMatchesCostModelForFullEpisode) {
  // Sum of rewards (excluding running cost, which accrues out-of-band) must
  // equal -(admission + rejection costs) * reward_scale.
  VnfEnv env(small_options());
  env.reset(0);
  Rng rng(5);
  double total_reward = 0.0;
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(env.begin_next_request());
    StepResult r;
    do {
      // Random valid action.
      const auto& mask = env.action_mask();
      std::vector<int> valid;
      for (std::size_t a = 0; a < mask.size(); ++a)
        if (mask[a]) valid.push_back(static_cast<int>(a));
      r = env.step(valid[rng.uniform_index(valid.size())]);
      total_reward += r.reward;
    } while (!r.chain_done);
  }
  const auto& metrics = env.metrics();
  const double admission_and_rejection_cost =
      metrics.total_cost() - metrics.cost_model().running_cost(metrics.running_cost_total());
  // Rewards are float-accumulated; allow a small absolute slack.
  EXPECT_NEAR(total_reward, -admission_and_rejection_cost * env.options().reward_scale,
              0.05);
}

TEST(VnfEnv, PerNodeFeatureBlockLayoutContract) {
  // Heuristic managers read the per-node block as
  //   [cpu_util, mem_util, instance_count, residual_cap, est_proc, hop_lat]
  // with 6 floats per node. This test pins that contract.
  VnfEnv env(small_options());
  env.reset(0);
  ASSERT_TRUE(env.begin_next_request());
  const auto features = env.features();
  const auto& cluster = env.cluster();
  const auto& request = env.pending_request();
  const auto type = env.pending_vnf_type();
  constexpr std::size_t kPerNode = 6;
  for (std::size_t i = 0; i < env.topology().node_count(); ++i) {
    const edgesim::NodeId node{static_cast<std::uint32_t>(i)};
    EXPECT_FLOAT_EQ(features[i * kPerNode + 0],
                    static_cast<float>(cluster.cpu_utilization(node)));
    EXPECT_FLOAT_EQ(
        features[i * kPerNode + 1],
        static_cast<float>(cluster.mem_used(node) /
                           env.topology().node(node).mem_capacity_gb));
    // Fresh cluster: no instances of the pending type anywhere.
    EXPECT_FLOAT_EQ(features[i * kPerNode + 2], 0.0F);
    EXPECT_FLOAT_EQ(features[i * kPerNode + 3], 0.0F);
    // Hop latency feature: source region's own node is the cheapest entry.
    if (node == request.source_region) {
      EXPECT_LT(features[i * kPerNode + 5], 0.05F);
    }
    EXPECT_EQ(env.action_mask()[i] != 0,
              cluster.can_serve(node, type, request.rate_rps));
  }
}

TEST(VnfEnv, MaskReflectsFeasibility) {
  EnvOptions options = small_options();
  options.topology.cpu_capacity_mean = 4.0;  // tiny nodes: 1 IDS instance max
  options.topology.capacity_jitter = 0.0;
  VnfEnv env(options);
  env.reset(0);
  // Fill node 0 completely with pinned IDS instances.
  auto& cluster = env.mutable_cluster();
  const auto ids = env.vnfs().by_name("ids").id;
  while (cluster.can_deploy(edgesim::NodeId{0}, ids))
    cluster.deploy_pinned(edgesim::NodeId{0}, ids);
  ASSERT_TRUE(env.begin_next_request());
  const auto type = env.pending_vnf_type();
  const auto& mask = env.action_mask();
  const bool can =
      cluster.can_serve(edgesim::NodeId{0}, type, env.pending_request().rate_rps);
  EXPECT_EQ(mask[0] != 0, can);
}

}  // namespace
}  // namespace vnfm::core
