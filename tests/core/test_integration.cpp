// Integration tests: the full stack (workload -> cluster -> env -> manager ->
// runner) exercised together, including a short DQN training run that must
// outperform the random policy — the library's end-to-end learning check.
#include <gtest/gtest.h>

#include "core/drl_manager.hpp"
#include "core/heuristics.hpp"
#include "core/runner.hpp"

namespace vnfm::core {
namespace {

EnvOptions options_with_rate(double rate) {
  EnvOptions options;
  options.topology.node_count = 4;
  options.workload.global_arrival_rate = rate;
  options.seed = 23;
  return options;
}

TEST(Integration, ShortDqnTrainingBeatsRandomPolicy) {
  VnfEnv env(options_with_rate(1.5));
  rl::DqnConfig config = default_dqn_config(env);
  config.hidden_dims = {32, 32};
  config.min_replay_before_training = 200;
  config.epsilon_decay_steps = 4000;
  config.train_period = 4;
  DqnManager dqn(env, config);

  EpisodeOptions episode;
  episode.duration_s = 400.0;
  (void)train_manager(env, dqn, 10, episode);

  RandomManager random(3);
  const EpisodeResult dqn_eval = evaluate_manager(env, dqn, episode, 2);
  const EpisodeResult random_eval = evaluate_manager(env, random, episode, 2);
  EXPECT_LT(dqn_eval.cost_per_request, random_eval.cost_per_request);
}

TEST(Integration, LearningCurveImproves) {
  VnfEnv env(options_with_rate(1.5));
  rl::DqnConfig config = default_dqn_config(env);
  config.hidden_dims = {32, 32};
  config.min_replay_before_training = 200;
  config.epsilon_decay_steps = 3000;
  config.train_period = 4;
  DqnManager dqn(env, config);
  EpisodeOptions episode;
  episode.duration_s = 300.0;
  const auto curve = train_manager(env, dqn, 12, episode);
  // Compare mean reward of the first 3 vs last 3 episodes.
  double early = 0.0, late = 0.0;
  for (int i = 0; i < 3; ++i) early += curve[i].total_reward;
  for (std::size_t i = curve.size() - 3; i < curve.size(); ++i)
    late += curve[i].total_reward;
  EXPECT_GT(late, early);
}

TEST(Integration, HighLoadForcesRejectionsOrViolations) {
  // At an arrival rate far above capacity, no policy can accept everything
  // cleanly: acceptance drops and/or utilisation saturates.
  EnvOptions options = options_with_rate(20.0);
  options.topology.node_count = 2;
  options.topology.cpu_capacity_mean = 8.0;
  VnfEnv env(options);
  GreedyLatencyManager greedy;
  EpisodeOptions episode;
  episode.duration_s = 300.0;
  episode.training = false;
  const EpisodeResult result = run_episode(env, greedy, episode);
  EXPECT_LT(result.acceptance_ratio, 0.9);
  EXPECT_GT(result.mean_utilization, 0.3);
}

TEST(Integration, LowLoadIsFullyAccepted) {
  VnfEnv env(options_with_rate(0.2));
  GreedyLatencyManager greedy;
  EpisodeOptions episode;
  episode.duration_s = 600.0;
  episode.training = false;
  const EpisodeResult result = run_episode(env, greedy, episode);
  EXPECT_GT(result.acceptance_ratio, 0.99);
  EXPECT_LT(result.sla_violation_ratio, 0.1);
}

TEST(Integration, AllManagersSurviveSustainedFuzzEpisode) {
  // Crash/invariant fuzz: every manager runs a longer, higher-load episode.
  VnfEnv env(options_with_rate(6.0));
  EpisodeOptions episode;
  episode.duration_s = 400.0;
  episode.training = true;

  GreedyLatencyManager greedy;
  MyopicCostManager myopic;
  FirstFitManager first_fit;
  RandomManager random(1);
  StaticProvisionManager static_prov(2);
  TabularManager tabular(env, {});
  std::vector<Manager*> managers{&greedy, &myopic, &first_fit,
                                 &random, &static_prov, &tabular};
  for (Manager* manager : managers) {
    const EpisodeResult result = run_episode(env, *manager, episode);
    EXPECT_GT(result.requests, 0u) << manager->name();
    EXPECT_GE(result.acceptance_ratio, 0.0) << manager->name();
    EXPECT_LE(result.acceptance_ratio, 1.0) << manager->name();
    EXPECT_GE(result.mean_utilization, 0.0) << manager->name();
    EXPECT_LE(result.mean_utilization, 1.0) << manager->name();
  }
}

TEST(Integration, RewardScaleInvarianceOfRanking) {
  // Scaling rewards must not change which policy is better on raw cost.
  for (const double scale : {0.1, 0.5}) {
    EnvOptions options = options_with_rate(2.0);
    options.reward_scale = scale;
    VnfEnv env(options);
    MyopicCostManager myopic;
    RandomManager random(9);
    EpisodeOptions episode;
    episode.duration_s = 200.0;
    const EpisodeResult m = evaluate_manager(env, myopic, episode, 2);
    const EpisodeResult r = evaluate_manager(env, random, episode, 2);
    EXPECT_LT(m.cost_per_request, r.cost_per_request) << "scale " << scale;
  }
}

TEST(Integration, DiurnalWorkloadKeepsSystemStable) {
  EnvOptions options = options_with_rate(3.0);
  options.workload.diurnal_amplitude = 0.8;
  VnfEnv env(options);
  MyopicCostManager myopic;
  EpisodeOptions episode;
  episode.duration_s = 1200.0;
  episode.training = false;
  const EpisodeResult result = run_episode(env, myopic, episode);
  EXPECT_GT(result.requests, 0u);
  EXPECT_GT(result.acceptance_ratio, 0.5);
}

}  // namespace
}  // namespace vnfm::core
