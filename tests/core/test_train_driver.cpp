// Regression tests for the actor-learner TrainDriver: thread-count
// invariance (the tentpole determinism contract), the sequential fallback,
// train_manager wrapper equivalence, seed-slice hygiene, and stats.
#include "core/train_driver.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "core/drl_manager.hpp"
#include "core/heuristics.hpp"

namespace vnfm::core {
namespace {

EnvOptions small_options() {
  EnvOptions options;
  options.topology.node_count = 4;
  options.workload.global_arrival_rate = 2.0;
  options.seed = 17;
  return options;
}

rl::DqnConfig small_dqn_config(const VnfEnv& env) {
  rl::DqnConfig config = default_dqn_config(env);
  config.hidden_dims = {16, 16};
  config.min_replay_before_training = 100;
  config.train_period = 4;
  config.epsilon_decay_steps = 2000;
  return config;
}

TrainOptions short_train(std::size_t episodes, std::size_t threads) {
  TrainOptions options;
  options.episodes = episodes;
  options.threads = threads;
  options.episode.duration_s = 150.0;
  options.episode.seed = 11;
  return options;
}

std::string weights_of(const DqnManager& manager) {
  std::ostringstream os;
  manager.save(os);
  return os.str();
}

void expect_identical(const EpisodeResult& a, const EpisodeResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.total_reward, b.total_reward) << label;
  EXPECT_EQ(a.requests, b.requests) << label;
  EXPECT_EQ(a.cost_per_request, b.cost_per_request) << label;
  EXPECT_EQ(a.total_cost, b.total_cost) << label;
  EXPECT_EQ(a.acceptance_ratio, b.acceptance_ratio) << label;
  EXPECT_EQ(a.mean_latency_ms, b.mean_latency_ms) << label;
  EXPECT_EQ(a.p95_latency_ms, b.p95_latency_ms) << label;
  EXPECT_EQ(a.sla_violation_ratio, b.sla_violation_ratio) << label;
  EXPECT_EQ(a.mean_utilization, b.mean_utilization) << label;
  EXPECT_EQ(a.deployments, b.deployments) << label;
  EXPECT_EQ(a.running_cost, b.running_cost) << label;
  EXPECT_EQ(a.revenue, b.revenue) << label;
}

TEST(TrainDriver, PipelineBitIdenticalAcrossThreadCounts) {
  const EnvOptions env_options = small_options();
  std::vector<TrainResult> results;
  std::vector<std::string> weights;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    VnfEnv env(env_options);
    DqnManager manager(env, small_dqn_config(env));
    const TrainDriver driver(env_options, short_train(8, threads));
    results.push_back(driver.run(manager));
    weights.push_back(weights_of(manager));
    EXPECT_TRUE(results.back().stats.parallel) << threads << " threads";
  }
  for (std::size_t r = 1; r < results.size(); ++r) {
    ASSERT_EQ(results[0].curve.size(), results[r].curve.size());
    EXPECT_EQ(results[0].seeds, results[r].seeds);
    EXPECT_EQ(results[0].stats.transitions, results[r].stats.transitions);
    for (std::size_t i = 0; i < results[0].curve.size(); ++i)
      expect_identical(results[0].curve[i], results[r].curve[i],
                       "episode " + std::to_string(i) + " variant " + std::to_string(r));
    // Same learning curve AND the same final policy, bit for bit.
    EXPECT_EQ(weights[0], weights[r]) << "variant " << r;
  }
  // The run must have actually trained for the identity to be meaningful.
  EXPECT_GT(results[0].stats.transitions, 100u);
}

TEST(TrainDriver, TabularPipelineBitIdenticalAcrossThreadCounts) {
  // The actor/learner split now covers tabular Q: same determinism contract
  // as the DQN pipeline — curve, seeds, and final Q-table must not depend on
  // the actor thread count.
  const EnvOptions env_options = small_options();
  std::vector<TrainResult> results;
  std::vector<std::vector<std::uint8_t>> states;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    VnfEnv env(env_options);
    TabularManager manager(env, rl::TabularQConfig{}, 4);
    const TrainDriver driver(env_options, short_train(8, threads));
    results.push_back(driver.run(manager));
    Serializer out;
    out.begin_chunk("state");
    manager.save(out);
    out.end_chunk();
    states.push_back(out.bytes());
    EXPECT_TRUE(results.back().stats.parallel) << threads << " threads";
  }
  for (std::size_t r = 1; r < results.size(); ++r) {
    ASSERT_EQ(results[0].curve.size(), results[r].curve.size());
    EXPECT_EQ(results[0].seeds, results[r].seeds);
    EXPECT_EQ(results[0].stats.transitions, results[r].stats.transitions);
    for (std::size_t i = 0; i < results[0].curve.size(); ++i)
      expect_identical(results[0].curve[i], results[r].curve[i],
                       "episode " + std::to_string(i) + " variant " + std::to_string(r));
    EXPECT_EQ(states[0], states[r]) << "variant " << r;
  }
  EXPECT_GT(results[0].stats.transitions, 100u);
}

TEST(TrainDriver, PipelineLearnerTakesGradientSteps) {
  const EnvOptions env_options = small_options();
  VnfEnv env(env_options);
  DqnManager manager(env, small_dqn_config(env));
  const TrainDriver driver(env_options, short_train(6, 2));
  const TrainResult result = driver.run(manager);
  EXPECT_GT(manager.agent().gradient_steps(), 0u);
  // The learner counts every recorded decision step exactly once.
  EXPECT_EQ(manager.agent().steps(), result.stats.transitions);
}

TEST(TrainDriver, SequentialFallbackForInlineLearners) {
  const EnvOptions env_options = small_options();
  // REINFORCE learns at chain end and does not support the split.
  VnfEnv env_a(env_options);
  ReinforceManager reference(env_a, {});
  EpisodeOptions episode = short_train(3, 4).episode;
  const auto expected = train_manager(env_a, reference, 3, episode);

  VnfEnv env_b(env_options);
  ReinforceManager manager(env_b, {});
  const TrainDriver driver(env_options, short_train(3, 4));
  const TrainResult result = driver.run(manager);
  EXPECT_FALSE(result.stats.parallel);
  ASSERT_EQ(result.curve.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    expect_identical(result.curve[i], expected[i], "episode " + std::to_string(i));
}

TEST(TrainDriver, TrainManagerMatchesDriverSequential) {
  const EnvOptions env_options = small_options();
  VnfEnv env_a(env_options);
  GreedyLatencyManager a;
  EpisodeOptions episode = short_train(3, 1).episode;
  const auto wrapper_curve = train_manager(env_a, a, 3, episode);

  GreedyLatencyManager b;
  const TrainDriver driver(env_options, short_train(3, 1));
  const TrainResult direct = driver.run_sequential(b);
  ASSERT_EQ(wrapper_curve.size(), direct.curve.size());
  for (std::size_t i = 0; i < wrapper_curve.size(); ++i)
    expect_identical(wrapper_curve[i], direct.curve[i], "episode " + std::to_string(i));
}

TEST(TrainDriver, TrainingSeedsAreHeldOutFromEvalSeeds) {
  const EnvOptions env_options = small_options();
  VnfEnv env(env_options);
  DqnManager manager(env, small_dqn_config(env));
  TrainOptions options = short_train(6, 2);
  options.episode.max_requests = 2;
  const TrainResult result = TrainDriver(env_options, options).run(manager);
  ASSERT_EQ(result.seeds.size(), 6u);
  const std::uint64_t base = options.episode.seed;
  std::set<std::uint64_t> train_seeds;
  for (std::size_t i = 0; i < result.seeds.size(); ++i) {
    EXPECT_EQ(result.seeds[i], train_seed(base, i));
    train_seeds.insert(result.seeds[i]);
  }
  // The actor seed slice never touches the held-out evaluation slice.
  for (std::size_t j = 0; j < 1000; ++j)
    EXPECT_EQ(train_seeds.count(eval_seed(base, j)), 0u) << "repeat " << j;
}

TEST(TrainDriver, ContinuationOffsetsTheSeedSlice) {
  const EnvOptions env_options = small_options();
  VnfEnv env(env_options);
  DqnManager manager(env, small_dqn_config(env));
  TrainOptions options = short_train(2, 2);
  options.first_episode = 5;
  options.episode.max_requests = 2;
  const TrainResult result = TrainDriver(env_options, options).run(manager);
  ASSERT_EQ(result.seeds.size(), 2u);
  EXPECT_EQ(result.seeds[0], train_seed(options.episode.seed, 5));
  EXPECT_EQ(result.seeds[1], train_seed(options.episode.seed, 6));
}

TEST(TrainDriver, StatsReportThroughput) {
  const EnvOptions env_options = small_options();
  VnfEnv env(env_options);
  DqnManager manager(env, small_dqn_config(env));
  TrainOptions options = short_train(5, 2);
  options.sync_period = 2;
  const TrainResult result = TrainDriver(env_options, options).run(manager);
  EXPECT_EQ(result.stats.episodes, 5u);
  EXPECT_EQ(result.stats.rounds, 3u);  // ceil(5 / 2)
  EXPECT_EQ(result.stats.actor_threads, 2u);
  EXPECT_GT(result.stats.transitions, 0u);
  EXPECT_GT(result.stats.wall_seconds, 0.0);
  EXPECT_GT(result.stats.steps_per_second(), 0.0);
}

TEST(TrainDriver, ZeroEpisodesIsANoOp) {
  const EnvOptions env_options = small_options();
  VnfEnv env(env_options);
  DqnManager manager(env, small_dqn_config(env));
  const TrainResult result = TrainDriver(env_options, short_train(0, 4)).run(manager);
  EXPECT_TRUE(result.curve.empty());
  EXPECT_TRUE(result.seeds.empty());
  EXPECT_EQ(result.stats.transitions, 0u);
}

}  // namespace
}  // namespace vnfm::core
