#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <cmath>
#include <sstream>
#include <string>

namespace vnfm {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "vnfm_csv_test.csv";
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"a", "b"});
    csv.row(std::vector<double>{1.0, 2.5});
    csv.row(std::vector<double>{3.0, -4.25});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  EXPECT_EQ(read_file(path_), "a,b\n1,2.5\n3,-4.25\n");
}

TEST_F(CsvTest, WritesStringCells) {
  {
    CsvWriter csv(path_, {"policy", "score"});
    csv.row(std::vector<std::string>{"dqn", "1.5"});
  }
  EXPECT_EQ(read_file(path_), "policy,score\ndqn,1.5\n");
}

TEST_F(CsvTest, RejectsArityMismatch) {
  CsvWriter csv(path_, {"a", "b"});
  EXPECT_THROW(csv.row(std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(csv.row(std::vector<std::string>{"x", "y", "z"}), std::invalid_argument);
}

TEST(CsvFormat, FormatNumberCompact) {
  EXPECT_EQ(format_number(1.0), "1");
  EXPECT_EQ(format_number(0.5), "0.5");
  EXPECT_EQ(format_number(-2.25), "-2.25");
  EXPECT_EQ(format_number(1234567.0), "1.23457e+06");
}

TEST(CsvFormat, HandlesNan) { EXPECT_EQ(format_number(std::nan("")), "nan"); }

TEST(CsvWriterError, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv", {"a"}), std::runtime_error);
}

}  // namespace
}  // namespace vnfm
