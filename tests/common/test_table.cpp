#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace vnfm {
namespace {

TEST(AsciiTable, AlignsColumns) {
  AsciiTable table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer_name", "2.5"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer_name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(AsciiTable, NumericRowHelper) {
  AsciiTable table({"policy", "cost", "accept"});
  table.add_row("dqn", {1.25, 0.97});
  EXPECT_EQ(table.rows(), 1u);
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("1.25"), std::string::npos);
  EXPECT_NE(os.str().find("0.97"), std::string::npos);
}

TEST(AsciiTable, RejectsArityMismatch) {
  AsciiTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only_one"}), std::invalid_argument);
}

TEST(AsciiTable, RejectsEmptyHeader) {
  EXPECT_THROW(AsciiTable({}), std::invalid_argument);
}

TEST(AsciiTable, EmptyTableStillPrintsHeader) {
  AsciiTable table({"col"});
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("col"), std::string::npos);
}

}  // namespace
}  // namespace vnfm
