#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace vnfm {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(10);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(12);
  const double rate = 2.5;
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(13);
  const double mean = 4.2;
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
  EXPECT_NEAR(sum / n, mean, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(14);
  const double mean = 200.0;
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
  EXPECT_NEAR(sum / n, mean, 2.0);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(15);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(16);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(17);
  const std::vector<double> weights{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng rng(18);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(19);
  const auto perm = rng.permutation(50);
  std::set<std::size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 50u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 49u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(20);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

/// Property sweep: distribution sanity across seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMeanNearHalf) {
  Rng rng(GetParam());
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST_P(RngSeedSweep, UniformIndexUnbiased) {
  Rng rng(GetParam());
  std::vector<int> counts(5, 0);
  const int n = 50'000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(5)];
  for (const int c : counts)
    EXPECT_NEAR(c / static_cast<double>(n), 0.2, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 2, 42, 999, 0xDEADBEEF));

}  // namespace
}  // namespace vnfm
