#include "common/config.hpp"

#include <gtest/gtest.h>

namespace vnfm {
namespace {

TEST(Config, ParsesKeyValueArgs) {
  const char* argv[] = {"prog", "episodes=10", "rate=2.5", "name=dqn", "flag"};
  const Config config = Config::from_args(5, argv);
  EXPECT_EQ(config.get_int("episodes", 0), 10);
  EXPECT_DOUBLE_EQ(config.get_double("rate", 0.0), 2.5);
  EXPECT_EQ(config.get_string("name", ""), "dqn");
  EXPECT_FALSE(config.contains("flag"));  // tokens without '=' are ignored
}

TEST(Config, FallbacksWhenAbsent) {
  const Config config;
  EXPECT_EQ(config.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(config.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(config.get_string("missing", "dflt"), "dflt");
  EXPECT_TRUE(config.get_bool("missing", true));
}

TEST(Config, BoolParsing) {
  Config config;
  config.set("a", "1");
  config.set("b", "true");
  config.set("c", "no");
  config.set("d", "on");
  EXPECT_TRUE(config.get_bool("a", false));
  EXPECT_TRUE(config.get_bool("b", false));
  EXPECT_FALSE(config.get_bool("c", true));
  EXPECT_TRUE(config.get_bool("d", false));
}

TEST(Config, ThrowsOnMalformedNumber) {
  Config config;
  config.set("rate", "fast");
  EXPECT_THROW((void)config.get_double("rate", 0.0), std::invalid_argument);
  EXPECT_THROW((void)config.get_int("rate", 0), std::invalid_argument);
}

TEST(Config, SetOverrides) {
  Config config;
  config.set("k", "1");
  config.set("k", "2");
  EXPECT_EQ(config.get_int("k", 0), 2);
}

TEST(Config, ValueWithEqualsSign) {
  const char* argv[] = {"prog", "expr=a=b"};
  const Config config = Config::from_args(2, argv);
  EXPECT_EQ(config.get_string("expr", ""), "a=b");
}

}  // namespace
}  // namespace vnfm
