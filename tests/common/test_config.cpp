#include "common/config.hpp"

#include <gtest/gtest.h>

namespace vnfm {
namespace {

TEST(Config, ParsesKeyValueArgs) {
  const char* argv[] = {"prog", "episodes=10", "rate=2.5", "name=dqn", "flag"};
  const Config config = Config::from_args(5, argv);
  EXPECT_EQ(config.get_int("episodes", 0), 10);
  EXPECT_DOUBLE_EQ(config.get_double("rate", 0.0), 2.5);
  EXPECT_EQ(config.get_string("name", ""), "dqn");
  EXPECT_FALSE(config.contains("flag"));  // tokens without '=' are ignored
}

TEST(Config, FallbacksWhenAbsent) {
  const Config config;
  EXPECT_EQ(config.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(config.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(config.get_string("missing", "dflt"), "dflt");
  EXPECT_TRUE(config.get_bool("missing", true));
}

TEST(Config, BoolParsing) {
  Config config;
  config.set("a", "1");
  config.set("b", "true");
  config.set("c", "no");
  config.set("d", "on");
  EXPECT_TRUE(config.get_bool("a", false));
  EXPECT_TRUE(config.get_bool("b", false));
  EXPECT_FALSE(config.get_bool("c", true));
  EXPECT_TRUE(config.get_bool("d", false));
}

TEST(Config, ThrowsOnMalformedNumber) {
  Config config;
  config.set("rate", "fast");
  EXPECT_THROW((void)config.get_double("rate", 0.0), std::invalid_argument);
  EXPECT_THROW((void)config.get_int("rate", 0), std::invalid_argument);
}

TEST(Config, SetOverrides) {
  Config config;
  config.set("k", "1");
  config.set("k", "2");
  EXPECT_EQ(config.get_int("k", 0), 2);
}

TEST(Config, ValueWithEqualsSign) {
  const char* argv[] = {"prog", "expr=a=b"};
  const Config config = Config::from_args(2, argv);
  EXPECT_EQ(config.get_string("expr", ""), "a=b");
}

TEST(Config, InitializerListConstruction) {
  const Config config{{"nodes", "12"}, {"arrival_rate", "2.5"}};
  EXPECT_EQ(config.get_int("nodes", 0), 12);
  EXPECT_DOUBLE_EQ(config.get_double("arrival_rate", 0.0), 2.5);
  EXPECT_EQ(config.values().size(), 2U);
}

TEST(Config, SizeAndUint64Accessors) {
  Config config;
  config.set("replay_capacity", "50000");
  config.set("seed", "18446744073709551615");  // 2^64 - 1
  EXPECT_EQ(config.get_size("replay_capacity", 0), 50'000U);
  EXPECT_EQ(config.get_uint64("seed", 0), 18446744073709551615ULL);
  EXPECT_EQ(config.get_size("missing", 7), 7U);
  EXPECT_EQ(config.get_uint64("missing", 9), 9ULL);
}

TEST(Config, SizeRejectsMalformed) {
  Config config;
  config.set("n", "many");
  config.set("neg", "-3");
  EXPECT_THROW((void)config.get_size("n", 0), std::invalid_argument);
  EXPECT_THROW((void)config.get_uint64("neg", 0), std::invalid_argument);
}

TEST(Config, DoubleListParsing) {
  Config config;
  config.set("rates", "20,40,60");
  config.set("single", "2.5");
  const std::vector<double> rates = config.get_double_list("rates", {});
  ASSERT_EQ(rates.size(), 3U);
  EXPECT_DOUBLE_EQ(rates[0], 20.0);
  EXPECT_DOUBLE_EQ(rates[1], 40.0);
  EXPECT_DOUBLE_EQ(rates[2], 60.0);
  const std::vector<double> single = config.get_double_list("single", {});
  ASSERT_EQ(single.size(), 1U);
  EXPECT_DOUBLE_EQ(single[0], 2.5);
  const std::vector<double> fallback = config.get_double_list("missing", {1.0, 2.0});
  EXPECT_EQ(fallback.size(), 2U);
}

TEST(Config, DoubleListRejectsMalformed) {
  Config config;
  config.set("rates", "20,fast,60");
  config.set("trailing", "20,40,");
  EXPECT_THROW((void)config.get_double_list("rates", {}), std::invalid_argument);
  EXPECT_THROW((void)config.get_double_list("trailing", {}), std::invalid_argument);
}

}  // namespace
}  // namespace vnfm
