#include "common/log.hpp"

#include <gtest/gtest.h>

namespace vnfm {
namespace {

/// Restores the global log level after each test.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = log_level(); }
  void TearDown() override { set_log_level(previous_); }
  LogLevel previous_{};
};

TEST_F(LogTest, ThresholdRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LogTest, OrderingOfLevels) {
  EXPECT_LT(LogLevel::kDebug, LogLevel::kInfo);
  EXPECT_LT(LogLevel::kInfo, LogLevel::kWarn);
  EXPECT_LT(LogLevel::kWarn, LogLevel::kError);
  EXPECT_LT(LogLevel::kError, LogLevel::kOff);
}

TEST_F(LogTest, HelpersDoNotCrashAtAnyThreshold) {
  for (const LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                               LogLevel::kError, LogLevel::kOff}) {
    set_log_level(level);
    log_debug("debug ", 1);
    log_info("info ", 2.5);
    log_warn("warn ", "text");
    log_error("error ", 'c');
  }
  SUCCEED();
}

TEST_F(LogTest, ConcatFormatsMixedTypes) {
  EXPECT_EQ(detail::concat("a", 1, '-', 2.5), "a1-2.5");
  EXPECT_EQ(detail::concat(), "");
}

}  // namespace
}  // namespace vnfm
