// Tests for the versioned binary checkpoint archive (common/serialize):
// primitive round-trips, exact float bit patterns, nested typed chunks,
// checksum/truncation/magic validation, and the endian-stable golden layout.
#include "common/serialize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <vector>

namespace vnfm {
namespace {

TEST(Serialize, PrimitivesRoundTrip) {
  Serializer out;
  out.begin_chunk("test");
  out.write_u8(0xAB);
  out.write_bool(true);
  out.write_bool(false);
  out.write_u32(0xDEADBEEFU);
  out.write_u64(0x0123456789ABCDEFULL);
  out.write_i64(-42);
  out.write_f32(1.5F);
  out.write_f64(-2.25);
  out.write_string("hello checkpoint");
  out.end_chunk();

  Deserializer in(out.bytes());
  in.enter_chunk("test");
  EXPECT_EQ(in.read_u8(), 0xAB);
  EXPECT_TRUE(in.read_bool());
  EXPECT_FALSE(in.read_bool());
  EXPECT_EQ(in.read_u32(), 0xDEADBEEFU);
  EXPECT_EQ(in.read_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(in.read_i64(), -42);
  EXPECT_EQ(in.read_f32(), 1.5F);
  EXPECT_EQ(in.read_f64(), -2.25);
  EXPECT_EQ(in.read_string(), "hello checkpoint");
  in.leave_chunk();
}

TEST(Serialize, FloatBitPatternsAreExact) {
  const std::vector<float> specials{0.0F,
                                    -0.0F,
                                    std::numeric_limits<float>::denorm_min(),
                                    std::numeric_limits<float>::infinity(),
                                    -std::numeric_limits<float>::infinity(),
                                    std::nextafterf(1.0F, 2.0F)};
  Serializer out;
  out.begin_chunk("f");
  out.write_f32_vec(specials);
  out.write_f64(std::numeric_limits<double>::quiet_NaN());
  out.end_chunk();

  Deserializer in(out.bytes());
  in.enter_chunk("f");
  const auto restored = in.read_f32_vec();
  ASSERT_EQ(restored.size(), specials.size());
  for (std::size_t i = 0; i < specials.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(restored[i]),
              std::bit_cast<std::uint32_t>(specials[i]));
  }
  EXPECT_TRUE(std::isnan(in.read_f64()));
  in.leave_chunk();
}

TEST(Serialize, VectorsRoundTrip) {
  const std::vector<std::uint8_t> bytes{1, 2, 3};
  const std::vector<std::uint64_t> words{10, 20, 1ULL << 62};
  const std::vector<double> doubles{0.1, -0.2, 1e300};
  Serializer out;
  out.begin_chunk("v");
  out.write_u8_vec(bytes);
  out.write_u64_vec(words);
  out.write_f64_vec(doubles);
  out.end_chunk();

  Deserializer in(out.bytes());
  in.enter_chunk("v");
  EXPECT_EQ(in.read_u8_vec(), bytes);
  EXPECT_EQ(in.read_u64_vec(), words);
  EXPECT_EQ(in.read_f64_vec(), doubles);
  in.leave_chunk();
}

TEST(Serialize, ChunksNestAndSkipUnreadSuffix) {
  Serializer out;
  out.begin_chunk("outer");
  out.write_u32(7);
  out.begin_chunk("inner");
  out.write_string("nested");
  out.write_u64(99);  // a field this reader version does not consume
  out.end_chunk();
  out.write_u32(8);
  out.end_chunk();

  Deserializer in(out.bytes());
  in.enter_chunk("outer");
  EXPECT_EQ(in.read_u32(), 7U);
  EXPECT_EQ(in.peek_chunk_tag(), "inner");
  in.enter_chunk("inner");
  EXPECT_EQ(in.read_string(), "nested");
  in.leave_chunk();  // skips the unread u64 — forward compatibility
  EXPECT_EQ(in.read_u32(), 8U);
  in.leave_chunk();
}

TEST(Serialize, TagMismatchThrows) {
  Serializer out;
  out.begin_chunk("alpha");
  out.end_chunk();
  Deserializer in(out.bytes());
  EXPECT_THROW(in.enter_chunk("beta"), SerializeError);
}

TEST(Serialize, CorruptionIsDetectedByChecksum) {
  Serializer out;
  out.begin_chunk("data");
  out.write_u64(123456789);
  out.end_chunk();
  auto bytes = out.bytes();
  bytes[bytes.size() - 7] ^= 0x01;  // flip one payload bit
  Deserializer in(std::move(bytes));
  EXPECT_THROW(in.enter_chunk("data"), SerializeError);
}

TEST(Serialize, TruncationThrows) {
  Serializer out;
  out.begin_chunk("data");
  const std::vector<double> payload{1.0, 2.0, 3.0};
  out.write_f64_vec(payload);
  out.end_chunk();
  auto bytes = out.bytes();
  bytes.resize(bytes.size() - 6);
  EXPECT_THROW(
      {
        Deserializer in(std::move(bytes));
        in.enter_chunk("data");
      },
      SerializeError);
}

TEST(Serialize, HugeCorruptedLengthsThrowInsteadOfOverflowing) {
  // A chunk whose length field is corrupted to ~UINT64_MAX must fail the
  // bounds check, not wrap around it and read out of bounds.
  Serializer out;
  out.begin_chunk("data");
  out.write_u64(7);
  out.end_chunk();
  auto bytes = out.bytes();
  // Layout: magic(4) + version(4) + tag len u64(8) + "data"(4) + payload len.
  const std::size_t length_at = 4 + 4 + 8 + 4;
  for (std::size_t i = 0; i < 8; ++i) bytes[length_at + i] = 0xFF;
  Deserializer in(std::move(bytes));
  EXPECT_THROW(in.enter_chunk("data"), SerializeError);

  // A vector length whose byte count (size * 8) wraps must throw too.
  Serializer vec_out;
  vec_out.begin_chunk("v");
  vec_out.write_u64(0xFFFFFFFFFFFFFFFFULL);  // claims 2^64-1 doubles follow
  vec_out.end_chunk();
  Deserializer vec_in(vec_out.bytes());
  vec_in.enter_chunk("v");
  EXPECT_THROW((void)vec_in.read_f64_vec(), SerializeError);
}

TEST(Serialize, BadMagicAndVersionThrow) {
  Serializer out;
  auto bad_magic = out.bytes();
  bad_magic[0] = 'X';
  EXPECT_THROW(Deserializer{std::move(bad_magic)}, SerializeError);

  auto bad_version = out.bytes();
  bad_version[4] = 0xFF;  // version 255 — from the future
  EXPECT_THROW(Deserializer{std::move(bad_version)}, SerializeError);
}

TEST(Serialize, UnclosedChunkFailsFinish) {
  Serializer out;
  out.begin_chunk("open");
  std::ostringstream sink;
  EXPECT_THROW(out.finish(sink), SerializeError);
}

TEST(Serialize, StreamRoundTrip) {
  Serializer out;
  out.begin_chunk("s");
  out.write_string("via stream");
  out.end_chunk();
  std::stringstream stream;
  out.finish(stream);
  Deserializer in(stream);
  in.enter_chunk("s");
  EXPECT_EQ(in.read_string(), "via stream");
  in.leave_chunk();
}

// The byte layout is part of the on-disk contract: integers little-endian,
// floats as IEEE-754 bit patterns. A layout change must bump the format
// version, not silently alter these bytes.
TEST(Serialize, GoldenLayoutIsEndianStable) {
  Serializer out;
  out.write_u32(0x01020304U);
  out.write_f32(1.0F);
  const auto& b = out.bytes();
  ASSERT_EQ(b.size(), 4u + 4u + 4u + 4u);  // magic + version + u32 + f32
  EXPECT_EQ(b[0], 'V');
  EXPECT_EQ(b[1], 'N');
  EXPECT_EQ(b[2], 'F');
  EXPECT_EQ(b[3], 'M');
  EXPECT_EQ(b[4], 2);  // format version 2 (v2 added the train-checkpoint
                       // xstats suffix chunk), little-endian
  // 0x01020304 little-endian.
  EXPECT_EQ(b[8], 0x04);
  EXPECT_EQ(b[9], 0x03);
  EXPECT_EQ(b[10], 0x02);
  EXPECT_EQ(b[11], 0x01);
  // 1.0f = 0x3F800000 little-endian.
  EXPECT_EQ(b[12], 0x00);
  EXPECT_EQ(b[13], 0x00);
  EXPECT_EQ(b[14], 0x80);
  EXPECT_EQ(b[15], 0x3F);
}

TEST(Serialize, Crc32MatchesKnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  const std::string data = "123456789";
  const std::vector<std::uint8_t> bytes(data.begin(), data.end());
  EXPECT_EQ(crc32(bytes), 0xCBF43926U);
}

}  // namespace
}  // namespace vnfm
