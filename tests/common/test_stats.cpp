#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace vnfm {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownSequence) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, SingleSampleVarianceZero) {
  RunningStat s;
  s.add(3.14);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.14);
}

TEST(RunningStat, MergeMatchesCombinedStream) {
  RunningStat a, b, combined;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    if (i % 2 == 0) a.add(x); else b.add(x);
    combined.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(RunningStat, MergeWithEmptyIsIdentity) {
  RunningStat a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  RunningStat c;
  c.merge(a);
  EXPECT_DOUBLE_EQ(c.mean(), mean);
}

TEST(Ewma, FirstSampleInitialises) {
  Ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  e.add(10.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, ConvergesTowardConstant) {
  Ewma e(0.2);
  e.add(0.0);
  for (int i = 0; i < 100; ++i) e.add(5.0);
  EXPECT_NEAR(e.value(), 5.0, 1e-6);
}

TEST(Ewma, WeightsRecentSamples) {
  Ewma e(0.5);
  e.add(0.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
}

TEST(QuantileSketch, ExactQuantilesSmallSample) {
  QuantileSketch q;
  for (int i = 1; i <= 100; ++i) q.add(static_cast<double>(i));
  EXPECT_NEAR(q.quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(q.quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(q.quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(q.quantile(0.95), 95.05, 0.01);
}

TEST(QuantileSketch, ThrowsOnEmpty) {
  QuantileSketch q;
  EXPECT_THROW((void)q.quantile(0.5), std::runtime_error);
}

TEST(QuantileSketch, ReservoirKeepsBoundedMemory) {
  QuantileSketch q(1000, 5);
  for (int i = 0; i < 100'000; ++i) q.add(static_cast<double>(i % 1000));
  EXPECT_EQ(q.count(), 100'000u);
  EXPECT_EQ(q.sorted_sample().size(), 1000u);
  // Median of the underlying distribution is ~499.5.
  EXPECT_NEAR(q.quantile(0.5), 499.5, 60.0);
}

TEST(QuantileSketch, ClampsOutOfRangeQ) {
  QuantileSketch q;
  q.add(1.0);
  q.add(2.0);
  EXPECT_DOUBLE_EQ(q.quantile(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(2.0), 2.0);
}

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);   // underflow
  h.add(0.0);    // bin 0
  h.add(9.999);  // bin 9
  h.add(10.0);   // overflow
  h.add(5.5);    // bin 5
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, RejectsBadRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

/// Property sweep: Welford mean/variance agree with two-pass computation.
class StatSweep : public ::testing::TestWithParam<int> {};

TEST_P(StatSweep, WelfordMatchesTwoPass) {
  const int n = GetParam();
  std::vector<double> xs;
  RunningStat s;
  for (int i = 0; i < n; ++i) {
    const double x = std::cos(i * 1.3) * (i % 7 + 1);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= n;
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= (n - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-10);
  EXPECT_NEAR(s.variance(), var, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, StatSweep, ::testing::Values(2, 10, 100, 1000));

}  // namespace
}  // namespace vnfm
