#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace vnfm {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownSequence) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, SingleSampleVarianceZero) {
  RunningStat s;
  s.add(3.14);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.14);
}

TEST(RunningStat, MergeMatchesCombinedStream) {
  RunningStat a, b, combined;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    if (i % 2 == 0) a.add(x); else b.add(x);
    combined.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(RunningStat, MergeWithEmptyIsIdentity) {
  RunningStat a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  RunningStat c;
  c.merge(a);
  EXPECT_DOUBLE_EQ(c.mean(), mean);
}

TEST(Ewma, FirstSampleInitialises) {
  Ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  e.add(10.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, ConvergesTowardConstant) {
  Ewma e(0.2);
  e.add(0.0);
  for (int i = 0; i < 100; ++i) e.add(5.0);
  EXPECT_NEAR(e.value(), 5.0, 1e-6);
}

TEST(Ewma, WeightsRecentSamples) {
  Ewma e(0.5);
  e.add(0.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
}

TEST(QuantileSketch, ExactQuantilesSmallSample) {
  QuantileSketch q;
  for (int i = 1; i <= 100; ++i) q.add(static_cast<double>(i));
  EXPECT_NEAR(q.quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(q.quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(q.quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(q.quantile(0.95), 95.05, 0.01);
}

TEST(QuantileSketch, ThrowsOnEmpty) {
  QuantileSketch q;
  EXPECT_THROW((void)q.quantile(0.5), std::runtime_error);
}

TEST(QuantileSketch, ReservoirKeepsBoundedMemory) {
  QuantileSketch q(1000, 5);
  for (int i = 0; i < 100'000; ++i) q.add(static_cast<double>(i % 1000));
  EXPECT_EQ(q.count(), 100'000u);
  EXPECT_EQ(q.sorted_sample().size(), 1000u);
  // Median of the underlying distribution is ~499.5.
  EXPECT_NEAR(q.quantile(0.5), 499.5, 60.0);
}

TEST(QuantileSketch, ClampsOutOfRangeQ) {
  QuantileSketch q;
  q.add(1.0);
  q.add(2.0);
  EXPECT_DOUBLE_EQ(q.quantile(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(2.0), 2.0);
}

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);   // underflow
  h.add(0.0);    // bin 0
  h.add(9.999);  // bin 9
  h.add(10.0);   // overflow
  h.add(5.5);    // bin 5
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, RejectsBadRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

/// Property sweep: Welford mean/variance agree with two-pass computation.
class StatSweep : public ::testing::TestWithParam<int> {};

TEST_P(StatSweep, WelfordMatchesTwoPass) {
  const int n = GetParam();
  std::vector<double> xs;
  RunningStat s;
  for (int i = 0; i < n; ++i) {
    const double x = std::cos(i * 1.3) * (i % 7 + 1);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= n;
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= (n - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-10);
  EXPECT_NEAR(s.variance(), var, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, StatSweep, ::testing::Values(2, 10, 100, 1000));

TEST(MeanMicrosPer, SharedFormula) {
  EXPECT_DOUBLE_EQ(mean_micros_per(0.0, 0), 0.0);   // no-op case
  EXPECT_DOUBLE_EQ(mean_micros_per(1.5, 0), 0.0);   // ops gate, not time
  EXPECT_DOUBLE_EQ(mean_micros_per(1.0, 1000), 1000.0);
  EXPECT_DOUBLE_EQ(mean_micros_per(0.002, 4), 500.0);
}

TEST(LatencyHistogram, ExactBelowLinearFloor) {
  // Values under kSubBuckets µs land in 1 µs-wide buckets: exact quantiles.
  LatencyHistogram h;
  for (int i = 1; i <= 10; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.count(), 10u);
  EXPECT_DOUBLE_EQ(h.max_micros(), 10.0);
  // Rank ceil(0.5 * 10) = 5 → the 5 µs bucket [5, 6), midpoint 5.5.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.5);  // rank clamps to the first sample
  // q = 1 → the 10 µs bucket, midpoint 10.5 clamped by the exact max.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(LatencyHistogram, QuantilesOfKnownUniformDistribution) {
  // 1..100000 µs uniformly: every quantile estimate must sit within the
  // layout's ~1/kSubBuckets relative error of the exact answer.
  LatencyHistogram h;
  const int n = 100000;
  for (int i = 1; i <= n; ++i) h.add(static_cast<double>(i));
  for (const double q : {0.10, 0.50, 0.90, 0.95, 0.99}) {
    const double exact = q * n;
    const double rel = 1.0 / static_cast<double>(LatencyHistogram::kSubBuckets);
    EXPECT_NEAR(h.quantile(q), exact, exact * rel) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.quantile(1.0), static_cast<double>(n));  // exact max wins
}

TEST(LatencyHistogram, BucketLayoutInvariants) {
  // Every value maps into the bucket whose [lo, hi) range contains it, and
  // bucket boundaries tile the axis without gaps.
  for (const double v : {0.0, 1.0, 31.0, 32.0, 33.9, 63.0, 64.0, 1000.0,
                         4095.9, 1e6, 3.6e9}) {
    const std::size_t i = LatencyHistogram::bucket_index(v);
    ASSERT_LT(i, LatencyHistogram::kBuckets);
    EXPECT_GE(v, LatencyHistogram::bucket_lo(i)) << v;
    if (i + 1 < LatencyHistogram::kBuckets)  // top bucket clamps
      EXPECT_LT(v, LatencyHistogram::bucket_hi(i)) << v;
  }
  for (std::size_t i = 0; i + 1 < LatencyHistogram::kBuckets; ++i)
    EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_hi(i), LatencyHistogram::bucket_lo(i + 1));
  // Negative and zero samples land in bucket 0.
  EXPECT_EQ(LatencyHistogram::bucket_index(-3.0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_index(0.0), 0u);
}

TEST(LatencyHistogram, MergeIsOrderIndependent) {
  // Bucket-aligned integer merges: any merge order yields identical counts
  // and quantiles — the property the serving stats reducer relies on.
  LatencyHistogram a, b, c;
  for (int i = 0; i < 500; ++i) {
    a.add(10.0 + i);
    b.add(5000.0 + 7.0 * i);
    c.add(0.5 * i);
  }
  LatencyHistogram ab = a;
  ab.merge(b);
  ab.merge(c);
  LatencyHistogram cb = c;
  cb.merge(b);
  cb.merge(a);
  EXPECT_EQ(ab.count(), cb.count());
  EXPECT_DOUBLE_EQ(ab.max_micros(), cb.max_micros());
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i)
    ASSERT_EQ(ab.bucket_count(i), cb.bucket_count(i)) << "bucket " << i;
  for (const double q : {0.25, 0.5, 0.75, 0.99})
    EXPECT_DOUBLE_EQ(ab.quantile(q), cb.quantile(q));
}

TEST(LatencyHistogram, EmptyIsZero) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.max_micros(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

}  // namespace
}  // namespace vnfm
