// Figure 6 — acceptance ratio vs arrival rate.
// Paper-shape claim: every policy accepts ~everything at light load; as load
// grows, static provisioning collapses first, and the DRL manager sustains
// the highest acceptance by scaling instances where demand actually is.
#include <iostream>

#include "common/config.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "support.hpp"

using namespace vnfm;

int main(int argc, char** argv) {
  const bench::Scale scale = bench::Scale::resolve();
  const auto rates = bench::sweep_rates(scale, bench::parse_args(argc, argv));
  std::cout << "=== Figure 6: acceptance ratio vs arrival rate ===\n\n";

  const auto sweep = bench::run_load_sweep(rates, scale);

  std::vector<std::string> header{"rate_rps"};
  for (const auto& policy : sweep.front().policies) header.push_back(policy.policy);
  AsciiTable table(header);
  CsvWriter csv(bench::csv_path("fig6_acceptance"), header);
  for (const auto& row : sweep) {
    std::vector<double> values;
    for (const auto& policy : row.policies)
      values.push_back(policy.result.acceptance_ratio);
    table.add_row(format_number(row.arrival_rate), values);
    std::vector<double> csv_row{row.arrival_rate};
    csv_row.insert(csv_row.end(), values.begin(), values.end());
    csv.row(csv_row);
  }
  table.print(std::cout);

  // Shape check: static provisioning should lose the most acceptance from
  // the lightest to the heaviest load.
  const auto& light = sweep.front();
  const auto& heavy = sweep.back();
  std::cout << "\nAcceptance drop (light -> heavy load):\n";
  for (std::size_t i = 0; i < light.policies.size(); ++i) {
    const double drop = light.policies[i].result.acceptance_ratio -
                        heavy.policies[i].result.acceptance_ratio;
    std::cout << "  " << light.policies[i].policy << ": " << drop << "\n";
  }
  std::cout << "CSV written to " << csv.path() << "\n";
  return 0;
}
