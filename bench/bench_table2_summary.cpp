// Table II — per-policy summary at the reference load: every headline metric
// in one table (cost, acceptance, latency, SLA violations, utilisation,
// deployments, running cost, revenue).
#include <iostream>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "support.hpp"

using namespace vnfm;

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  const bench::Scale scale = bench::Scale::resolve();
  const double rate = 3.0;
  std::cout << "=== Table II: policy summary at rate " << rate << "/s ===\n\n";

  core::VnfEnv env(bench::make_env_options(rate));
  auto dqn = bench::train_policy(env, scale, "dqn");
  auto dueling = bench::train_policy(env, scale, "dueling_ddqn", Config{{"seed", "31"}});

  // Full per-seed evaluation of the headline policy, persisted through the
  // EvalReport writers (CSV row per held-out seed + JSON document).
  const exp::EvalReport dqn_report = bench::evaluate_policy_report(env, *dqn, scale);
  dqn_report.write_csv("table2_dqn_eval.csv");
  dqn_report.write_json("table2_dqn_eval.json");

  std::vector<bench::PolicyRow> rows;
  rows.push_back({"dqn", dqn_report.mean});
  rows.push_back({"dueling_ddqn", bench::evaluate_policy(env, *dueling, scale)});
  for (auto& baseline : bench::evaluate_baselines(env, scale))
    rows.push_back(std::move(baseline));

  const std::vector<std::string> header{
      "policy",     "cost/req",  "accept%",    "mean_lat_ms", "p95_lat_ms",
      "sla_viol%",  "util%",     "deployments", "running$",   "revenue$"};
  AsciiTable table(header);
  CsvWriter csv(bench::csv_path("table2_summary"), header);
  for (const auto& row : rows) {
    const auto& r = row.result;
    const std::vector<double> values{r.cost_per_request,
                                     100.0 * r.acceptance_ratio,
                                     r.mean_latency_ms,
                                     r.p95_latency_ms,
                                     100.0 * r.sla_violation_ratio,
                                     100.0 * r.mean_utilization,
                                     static_cast<double>(r.deployments),
                                     r.running_cost,
                                     r.revenue};
    table.add_row(row.policy, values);
    std::vector<std::string> cells{row.policy};
    for (const double v : values) cells.push_back(format_number(v));
    csv.row(cells);
  }
  table.print(std::cout);
  std::cout << "\nCSV written to " << csv.path() << "\n";
  return 0;
}
