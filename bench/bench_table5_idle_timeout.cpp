// Table V (ablation) — the idle-timeout GC implements implicit down-scaling.
// Short timeouts re-deploy aggressively (deployment churn); long timeouts
// hold capacity (running cost). The sweet spot depends on the arrival rate's
// burstiness; this table sweeps the knob under diurnal traffic.
#include <iostream>

#include "common/config.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "support.hpp"

using namespace vnfm;

int main(int argc, char** argv) {
  const bench::Scale scale = bench::Scale::resolve();
  // Low rate + strong diurnal swing so instances actually go idle; the
  // window must span several flow lifetimes for the GC knob to matter.
  const double rate = 0.7;
  const double duration_s = full_run_requested() ? 24.0 * 3600.0 : 3.0 * 3600.0;
  const std::vector<double> timeouts = bench::parse_args(argc, argv).get_double_list(
      "timeouts", {15.0, 60.0, 120.0, 600.0, 6.0 * 3600.0});
  std::cout << "=== Table V: idle-timeout GC ablation (myopic manager, rate " << rate
            << "/s, " << duration_s << "s horizon) ===\n\n";

  const std::vector<std::string> header{"idle_timeout_s", "deployments", "running$",
                                        "mean_lat_ms", "accept%", "cost/req"};
  AsciiTable table(header);
  CsvWriter csv(bench::csv_path("table5_idle_timeout"), header);

  for (const double timeout : timeouts) {
    core::VnfEnv env(bench::scenario_options(
        bench::default_scenario(),
        Config{{"arrival_rate", bench::to_config_value(rate)},
               {"diurnal_amplitude", "0.9"},
               {"idle_timeout_s", bench::to_config_value(timeout)}}));
    const auto myopic = exp::ManagerRegistry::instance().create("myopic_cost", env);
    core::EpisodeOptions episode = bench::eval_options(scale);
    episode.duration_s = duration_s;
    const auto eval = exp::evaluate_parallel(env.options(), *myopic, episode, 1).mean;
    const std::vector<double> values{static_cast<double>(eval.deployments),
                                     eval.running_cost, eval.mean_latency_ms,
                                     100.0 * eval.acceptance_ratio,
                                     eval.cost_per_request};
    table.add_row(format_number(timeout), values);
    std::vector<double> row{timeout};
    row.insert(row.end(), values.begin(), values.end());
    csv.row(row);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: deployments fall and running cost rises\n"
               "monotonically with the timeout; total cost is U-shaped.\n";
  std::cout << "CSV written to " << csv.path() << "\n";
  return 0;
}
