// Figure 5 — mean end-to-end chain latency vs arrival rate.
// Paper-shape claim: greedy-latency is the latency lower envelope at light
// load; under heavy load the DRL manager holds latency close to greedy while
// paying far less cost (Fig. 4), and first-fit/static degrade sharply.
#include <iostream>

#include "common/config.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "support.hpp"

using namespace vnfm;

int main(int argc, char** argv) {
  const bench::Scale scale = bench::Scale::resolve();
  const auto rates = bench::sweep_rates(scale, bench::parse_args(argc, argv));
  std::cout << "=== Figure 5: mean latency (ms) vs arrival rate ===\n\n";

  const auto sweep = bench::run_load_sweep(rates, scale);

  std::vector<std::string> header{"rate_rps"};
  for (const auto& policy : sweep.front().policies) header.push_back(policy.policy);
  AsciiTable table(header);
  CsvWriter csv(bench::csv_path("fig5_latency_vs_load"), header);
  for (const auto& row : sweep) {
    std::vector<double> values;
    for (const auto& policy : row.policies) values.push_back(policy.result.mean_latency_ms);
    table.add_row(format_number(row.arrival_rate), values);
    std::vector<double> csv_row{row.arrival_rate};
    csv_row.insert(csv_row.end(), values.begin(), values.end());
    csv.row(csv_row);
  }
  table.print(std::cout);

  // Also print p95 at the highest load (tail behaviour).
  const auto& top = sweep.back();
  AsciiTable tail({"policy", "p95_latency_ms", "sla_violation_%"});
  for (const auto& policy : top.policies) {
    tail.add_row(policy.policy, {policy.result.p95_latency_ms,
                                 100.0 * policy.result.sla_violation_ratio});
  }
  std::cout << "\nTail latency at rate " << top.arrival_rate << "/s:\n";
  tail.print(std::cout);
  std::cout << "CSV written to " << csv.path() << "\n";
  return 0;
}
