// Table VI (extension) — live-chain consolidation migrations: the same
// placement policy with and without the periodic consolidation pass, under
// diurnal traffic where regional night-time leaves stranded instances.
// Expected shape: the value of consolidation depends on the base policy —
// it repairs latency and trims instances for latency-blind consolidators
// (first_fit), while for geo-aware policies (greedy_latency) it mostly adds
// migration churn; acceptance is never hurt.
#include <iostream>

#include "common/config.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/migration.hpp"
#include "support.hpp"

using namespace vnfm;

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  const bench::Scale scale = bench::Scale::resolve();
  // Low per-region load + strong diurnal swing: long-lived flows strand
  // near-empty nodes at regional night, which only migration can drain.
  const double rate = 1.0;
  const double duration_s = full_run_requested() ? 24.0 * 3600.0 : 2.5 * 3600.0;
  std::cout << "=== Table VI: consolidation-migration extension (rate " << rate
            << "/s, diurnal 0.9, " << duration_s << "s horizon) ===\n\n";

  const core::EnvOptions options = bench::scenario_options(
      bench::default_scenario(), Config{{"arrival_rate", bench::to_config_value(rate)},
                                {"diurnal_amplitude", "0.9"},
                                {"idle_timeout_s", "240"}});

  const std::vector<std::string> header{"policy", "running$", "deployments",
                                        "migrations", "mean_lat_ms", "accept%",
                                        "cost/req"};
  AsciiTable table(header);
  CsvWriter csv(bench::csv_path("table6_migration"), header);

  auto evaluate = [&](core::Manager& manager) {
    core::EpisodeOptions episode = bench::eval_options(scale);
    episode.duration_s = duration_s;
    return exp::evaluate_parallel(options, manager, episode, 1).mean;
  };
  auto add_row = [&](const std::string& name, const core::EpisodeResult& eval,
                     double migrations) {
    const std::vector<double> values{eval.running_cost,
                                     static_cast<double>(eval.deployments), migrations,
                                     eval.mean_latency_ms, 100.0 * eval.acceptance_ratio,
                                     eval.cost_per_request};
    table.add_row(name, values);
    std::vector<std::string> cells{name};
    for (const double v : values) cells.push_back(format_number(v));
    csv.row(cells);
  };

  auto& registry = exp::ManagerRegistry::instance();
  core::VnfEnv env(options);  // registry factories size managers from the env
  const Config consolidation_params{
      {"drain_utilization", "0.4"}, {"period_chains", "40"}};
  for (const std::string base : {"greedy_latency", "first_fit"}) {
    {
      const auto manager = registry.create(base, env);
      add_row(manager->name(), evaluate(*manager), 0.0);
    }
    {
      Config params = consolidation_params;
      params.set("inner", base);
      const auto manager = registry.create("consolidating", env, params);
      const auto eval = evaluate(*manager);
      const auto* consolidating =
          dynamic_cast<const core::ConsolidatingManager*>(manager.get());
      add_row(manager->name(), eval,
              consolidating
                  ? static_cast<double>(consolidating->migrations_triggered())
                  : 0.0);
    }
  }
  table.print(std::cout);
  std::cout << "\nCSV written to " << csv.path() << "\n";
  return 0;
}
