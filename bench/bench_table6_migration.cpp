// Table VI (extension) — live-chain consolidation migrations: the same
// placement policy with and without the periodic consolidation pass, under
// diurnal traffic where regional night-time leaves stranded instances.
// Expected shape: the value of consolidation depends on the base policy —
// it repairs latency and trims instances for latency-blind consolidators
// (first_fit), while for geo-aware policies (greedy_latency) it mostly adds
// migration churn; acceptance is never hurt.
#include <iostream>

#include "common/config.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/migration.hpp"
#include "support.hpp"

using namespace vnfm;

int main() {
  const bench::Scale scale = bench::Scale::resolve();
  // Low per-region load + strong diurnal swing: long-lived flows strand
  // near-empty nodes at regional night, which only migration can drain.
  const double rate = 1.0;
  const double duration_s = full_run_requested() ? 24.0 * 3600.0 : 2.5 * 3600.0;
  std::cout << "=== Table VI: consolidation-migration extension (rate " << rate
            << "/s, diurnal 0.9, " << duration_s << "s horizon) ===\n\n";

  core::EnvOptions options = bench::make_env_options(rate);
  options.workload.diurnal_amplitude = 0.9;
  options.cluster.idle_timeout_s = 240.0;

  const std::vector<std::string> header{"policy", "running$", "deployments",
                                        "migrations", "mean_lat_ms", "accept%",
                                        "cost/req"};
  AsciiTable table(header);
  CsvWriter csv(bench::csv_path("table6_migration"), header);

  auto evaluate = [&](core::Manager& manager) {
    core::VnfEnv env(options);
    core::EpisodeOptions episode = bench::eval_options(scale);
    episode.duration_s = duration_s;
    return core::evaluate_manager(env, manager, episode, 1);
  };
  auto add_row = [&](const std::string& name, const core::EpisodeResult& eval,
                     double migrations) {
    const std::vector<double> values{eval.running_cost,
                                     static_cast<double>(eval.deployments), migrations,
                                     eval.mean_latency_ms, 100.0 * eval.acceptance_ratio,
                                     eval.cost_per_request};
    table.add_row(name, values);
    std::vector<std::string> cells{name};
    for (const double v : values) cells.push_back(format_number(v));
    csv.row(cells);
  };

  {
    core::GreedyLatencyManager greedy;
    add_row("greedy_latency", evaluate(greedy), 0.0);
  }
  {
    core::GreedyLatencyManager greedy;
    core::ConsolidationOptions consolidation;
    consolidation.drain_utilization = 0.4;
    core::ConsolidatingManager manager(greedy, consolidation, 40);
    const auto eval = evaluate(manager);
    add_row(manager.name(), eval,
            static_cast<double>(manager.migrations_triggered()));
  }
  {
    core::FirstFitManager first_fit;
    add_row("first_fit", evaluate(first_fit), 0.0);
  }
  {
    core::FirstFitManager first_fit;
    core::ConsolidationOptions consolidation;
    consolidation.drain_utilization = 0.4;
    core::ConsolidatingManager manager(first_fit, consolidation, 40);
    const auto eval = evaluate(manager);
    add_row(manager.name(), eval,
            static_cast<double>(manager.migrations_triggered()));
  }
  table.print(std::cout);
  std::cout << "\nCSV written to " << csv.path() << "\n";
  return 0;
}
