// Table III — DQN design ablations: double/dueling/prioritised-replay flags,
// replay capacity, and target-update period. Paper-shape claim: double DQN
// stabilises training vs vanilla; tiny replay or never-synced targets hurt;
// dueling/PER are modest refinements at this problem scale.
#include <iostream>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "support.hpp"

using namespace vnfm;

namespace {

struct Variant {
  std::string registry_name;
  Config params;
};

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  const bench::Scale scale = bench::Scale::resolve();
  const double rate = 3.0;
  std::cout << "=== Table III: DQN ablations at rate " << rate << "/s ===\n\n";

  core::VnfEnv env(bench::make_env_options(rate));

  // Every variant is the registry's "dqn"/variant factory plus Config
  // parameter overrides — the same strings a command line could pass.
  const Config base{{"seed", "51"}};
  auto with = [](Config params, std::initializer_list<std::pair<std::string, std::string>>
                                    extra) {
    for (const auto& [key, value] : extra) params.set(key, value);
    return params;
  };
  const std::vector<Variant> variants{
      {"vanilla_dqn", base},
      {"double_dqn", base},
      {"dueling_ddqn", base},
      {"per_ddqn", base},
      {"dqn", with(base, {{"name", "small_replay_1k"},
                          {"replay_capacity", "1000"},
                          {"min_replay_before_training", "200"}})},
      // target == online every step: deadly-triad stress
      {"dqn", with(base, {{"name", "no_target_net"}, {"target_update_period", "1"}})},
      {"dqn", with(base, {{"name", "slow_target_2k"},
                          {"target_update_period", "2000"}})},
      {"dqn", with(base, {{"name", "n_step_3"}, {"n_step", "3"}})},
      {"dqn", with(base, {{"name", "soft_target"}, {"soft_target_tau", "0.005"}})},
  };

  const std::vector<std::string> header{"variant", "final_train_reward", "eval_cost/req",
                                        "eval_accept%", "eval_lat_ms"};
  AsciiTable table(header);
  CsvWriter csv(bench::csv_path("table3_ablation"), header);

  for (const auto& variant : variants) {
    const auto manager = exp::ManagerRegistry::instance().create(
        variant.registry_name, env, variant.params);
    core::EpisodeOptions episode;
    episode.duration_s = scale.train_duration_s;
    const auto curve =
        core::train_manager(env, *manager, scale.train_episodes, episode);
    const auto eval = bench::evaluate_policy(env, *manager, scale);
    const std::vector<double> values{curve.back().total_reward, eval.cost_per_request,
                                     100.0 * eval.acceptance_ratio, eval.mean_latency_ms};
    table.add_row(manager->name(), values);
    std::vector<std::string> cells{manager->name()};
    for (const double v : values) cells.push_back(format_number(v));
    csv.row(cells);
  }
  table.print(std::cout);
  std::cout << "\nCSV written to " << csv.path() << "\n";
  return 0;
}
