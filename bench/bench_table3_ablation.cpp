// Table III — DQN design ablations: double/dueling/prioritised-replay flags,
// replay capacity, and target-update period. Paper-shape claim: double DQN
// stabilises training vs vanilla; tiny replay or never-synced targets hurt;
// dueling/PER are modest refinements at this problem scale.
#include <iostream>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "support.hpp"

using namespace vnfm;

namespace {

struct Variant {
  std::string name;
  rl::DqnConfig config;
};

}  // namespace

int main() {
  const bench::Scale scale = bench::Scale::resolve();
  const double rate = 3.0;
  std::cout << "=== Table III: DQN ablations at rate " << rate << "/s ===\n\n";

  core::VnfEnv env(bench::make_env_options(rate));
  const rl::DqnConfig base = core::default_dqn_config(env, 51);

  std::vector<Variant> variants;
  {
    rl::DqnConfig c = base;
    c.double_dqn = false;
    variants.push_back({"vanilla_dqn", c});
  }
  variants.push_back({"double_dqn", base});
  {
    rl::DqnConfig c = base;
    c.dueling = true;
    variants.push_back({"dueling_ddqn", c});
  }
  {
    rl::DqnConfig c = base;
    c.prioritized_replay = true;
    variants.push_back({"per_ddqn", c});
  }
  {
    rl::DqnConfig c = base;
    c.replay_capacity = 1000;
    c.min_replay_before_training = 200;
    variants.push_back({"small_replay_1k", c});
  }
  {
    rl::DqnConfig c = base;
    c.target_update_period = 1;  // target == online: deadly-triad stress
    variants.push_back({"no_target_net", c});
  }
  {
    rl::DqnConfig c = base;
    c.target_update_period = 2000;
    variants.push_back({"slow_target_2k", c});
  }
  {
    rl::DqnConfig c = base;
    c.n_step = 3;
    variants.push_back({"n_step_3", c});
  }
  {
    rl::DqnConfig c = base;
    c.soft_target_tau = 0.005F;
    variants.push_back({"soft_target", c});
  }

  const std::vector<std::string> header{"variant", "final_train_reward", "eval_cost/req",
                                        "eval_accept%", "eval_lat_ms"};
  AsciiTable table(header);
  CsvWriter csv(bench::csv_path("table3_ablation"), header);

  for (auto& variant : variants) {
    core::DqnManager manager(env, variant.config, variant.name);
    core::EpisodeOptions episode;
    episode.duration_s = scale.train_duration_s;
    const auto curve =
        core::train_manager(env, manager, scale.train_episodes, episode);
    const auto eval = core::evaluate_manager(env, manager, bench::eval_options(scale),
                                             scale.eval_repeats);
    const std::vector<double> values{curve.back().total_reward, eval.cost_per_request,
                                     100.0 * eval.acceptance_ratio, eval.mean_latency_ms};
    table.add_row(variant.name, values);
    std::vector<std::string> cells{variant.name};
    for (const double v : values) cells.push_back(format_number(v));
    csv.row(cells);
  }
  table.print(std::cout);
  std::cout << "\nCSV written to " << csv.path() << "\n";
  return 0;
}
