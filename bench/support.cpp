#include "support.hpp"

#include "common/config.hpp"

namespace vnfm::bench {

Scale Scale::resolve() { return full_run_requested() ? full() : quick(); }

core::EnvOptions make_env_options(double arrival_rate, std::size_t nodes,
                                  std::uint64_t seed) {
  core::EnvOptions options;
  options.topology.node_count = nodes;
  options.workload.global_arrival_rate = arrival_rate;
  options.workload.diurnal_amplitude = 0.6;
  options.seed = seed;
  return options;
}

core::EpisodeOptions eval_options(const Scale& scale) {
  core::EpisodeOptions episode;
  episode.duration_s = scale.eval_duration_s;
  episode.training = false;
  return episode;
}

std::unique_ptr<core::DqnManager> train_dqn(core::VnfEnv& env, const Scale& scale,
                                            rl::DqnConfig config, const std::string& name) {
  auto manager = std::make_unique<core::DqnManager>(env, config, name);
  core::EpisodeOptions episode;
  episode.duration_s = scale.train_duration_s;
  core::train_manager(env, *manager, scale.train_episodes, episode);
  return manager;
}

std::vector<PolicyRow> evaluate_baselines(core::VnfEnv& env, const Scale& scale) {
  core::GreedyLatencyManager greedy;
  core::MyopicCostManager myopic;
  core::FirstFitManager first_fit;
  core::StaticProvisionManager static_prov(2);
  core::RandomManager random(7);
  std::vector<core::Manager*> managers{&myopic, &greedy, &first_fit, &static_prov,
                                       &random};
  std::vector<PolicyRow> rows;
  rows.reserve(managers.size());
  for (core::Manager* manager : managers) {
    rows.push_back({manager->name(),
                    core::evaluate_manager(env, *manager, eval_options(scale),
                                           scale.eval_repeats)});
  }
  return rows;
}

std::string csv_path(const std::string& bench_name) { return bench_name + ".csv"; }

std::vector<double> sweep_rates(const Scale& scale) {
  if (full_run_requested()) return {0.5, 1.0, 2.0, 3.0, 4.0, 6.0};
  (void)scale;
  return {1.0, 2.0, 4.0};
}

std::vector<SweepRow> run_load_sweep(const std::vector<double>& rates,
                                     const Scale& scale) {
  std::vector<SweepRow> sweep;
  sweep.reserve(rates.size());
  for (const double rate : rates) {
    core::VnfEnv env(make_env_options(rate));
    auto dqn = train_dqn(env, scale, core::default_dqn_config(env), "dqn");
    SweepRow row;
    row.arrival_rate = rate;
    row.policies.push_back(
        {"dqn", core::evaluate_manager(env, *dqn, eval_options(scale),
                                       scale.eval_repeats)});
    for (auto& baseline : evaluate_baselines(env, scale))
      row.policies.push_back(std::move(baseline));
    sweep.push_back(std::move(row));
  }
  return sweep;
}

}  // namespace vnfm::bench
