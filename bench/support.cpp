#include "support.hpp"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>

#include "core/checkpoint.hpp"

namespace vnfm::bench {

Scale Scale::resolve() { return full_run_requested() ? full() : quick(); }

std::string to_config_value(double value) {
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

namespace {

/// Basename of the running bench binary (set by parse_args); namespaces
/// checkpoint directories so binaries sharing one REPRO_CHECKPOINT_DIR never
/// resume each other's archives.
std::string& bench_binary_name() {
  static std::string name = "bench";
  return name;
}

}  // namespace

Config parse_args(int argc, const char* const* argv) {
  if (argc > 0 && argv[0] != nullptr) {
    const std::string path = argv[0];
    const std::size_t slash = path.find_last_of('/');
    bench_binary_name() = slash == std::string::npos ? path : path.substr(slash + 1);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-scenarios") == 0) {
      std::cout << exp::ScenarioCatalog::instance().describe();
      std::exit(0);
    }
  }
  return Config::from_args(argc, argv);
}

std::string default_scenario() {
  const char* requested = std::getenv("REPRO_SCENARIO");
  if (requested == nullptr || *requested == '\0') return "geo-distributed";
  return requested;
}

core::EnvOptions scenario_options(const std::string& scenario, const Config& overrides) {
  // REPRO_TOPOLOGY swaps the network model under any bench scenario (an
  // explicit topology= override still wins over the environment variable).
  const char* topology = std::getenv("REPRO_TOPOLOGY");
  if (topology != nullptr && *topology != '\0' &&
      overrides.get_string("topology", "").empty()) {
    Config with_topology = overrides;
    with_topology.set("topology", topology);
    return exp::ScenarioCatalog::instance().build(scenario, with_topology);
  }
  return exp::ScenarioCatalog::instance().build(scenario, overrides);
}

core::EnvOptions make_env_options(double arrival_rate, std::size_t nodes,
                                  std::uint64_t seed) {
  return scenario_options(default_scenario(),
                          Config{{"arrival_rate", to_config_value(arrival_rate)},
                                 {"nodes", std::to_string(nodes)},
                                 {"seed", std::to_string(seed)}});
}

core::EpisodeOptions eval_options(const Scale& scale) {
  core::EpisodeOptions episode;
  episode.duration_s = scale.eval_duration_s;
  episode.training = false;
  return episode;
}

std::size_t train_threads() {
  const char* requested = std::getenv("REPRO_TRAIN_THREADS");
  if (requested == nullptr || *requested == '\0') return 0;  // hardware
  return static_cast<std::size_t>(std::strtoull(requested, nullptr, 10));
}

std::size_t learner_threads() {
  const char* requested = std::getenv("REPRO_LEARNER_THREADS");
  if (requested == nullptr || *requested == '\0') return 0;  // hardware
  return static_cast<std::size_t>(std::strtoull(requested, nullptr, 10));
}

std::size_t serve_shards() {
  const char* requested = std::getenv("REPRO_SERVE_SHARDS");
  if (requested == nullptr || *requested == '\0') return 0;  // hardware
  return static_cast<std::size_t>(std::strtoull(requested, nullptr, 10));
}

std::size_t serve_batch_max() {
  const char* requested = std::getenv("REPRO_SERVE_BATCH_MAX");
  if (requested == nullptr || *requested == '\0') return 8;
  return static_cast<std::size_t>(std::strtoull(requested, nullptr, 10));
}

double serve_time_scale() {
  const char* requested = std::getenv("REPRO_SERVE_TIME_SCALE");
  if (requested == nullptr || *requested == '\0') return 0.0;  // open throttle
  return std::strtod(requested, nullptr);
}

std::string checkpoint_dir() {
  const char* dir = std::getenv("REPRO_CHECKPOINT_DIR");
  return dir == nullptr ? std::string{} : std::string{dir};
}

std::size_t checkpoint_every() {
  const char* every = std::getenv("REPRO_CHECKPOINT_EVERY");
  if (every == nullptr || *every == '\0') return 8;
  return static_cast<std::size_t>(std::strtoull(every, nullptr, 10));
}

bool resume_requested() {
  const char* resume = std::getenv("REPRO_RESUME");
  return resume != nullptr && *resume != '\0';
}

namespace {

/// The REPRO_CHECKPOINT_DIR / REPRO_RESUME policy resolved for one labelled
/// training run: the per-label directory (empty = checkpointing off) and the
/// newest archive to resume from (empty = start at episode 0).
struct ResumePlan {
  std::string dir;
  std::string archive;
};

ResumePlan resolve_resume(const std::string& label) {
  ResumePlan plan;
  const std::string base = checkpoint_dir();
  if (base.empty()) return plan;
  // Namespace by binary and scenario expression: two benches (or one bench
  // under different REPRO_SCENARIO values) train the same policy name on
  // different worlds, and resuming across them would silently produce a
  // policy trained for the wrong figure.
  plan.dir = base + "/" + bench_binary_name() + "/" + default_scenario() + "/" + label;
  if (resume_requested()) plan.archive = core::latest_checkpoint(plan.dir);
  return plan;
}

void log_resume(const std::string& label, const std::string& archive,
                std::size_t done, std::size_t total) {
  std::cout << "  [" << label << "] resumed from " << archive << " (" << done << "/"
            << total << " episodes done)\n";
}

}  // namespace

void train_resumable(exp::Experiment& experiment, std::size_t total_episodes,
                     const std::string& label) {
  const ResumePlan plan = resolve_resume(label);
  if (!plan.dir.empty())
    experiment.checkpoint_dir(plan.dir).checkpoint_every(checkpoint_every());
  std::size_t done = 0;
  if (!plan.archive.empty()) {
    experiment.resume(plan.archive);
    done = experiment.learning_curve().size();
    log_resume(label, plan.archive, done, total_episodes);
  }
  if (total_episodes > done) experiment.train(total_episodes - done);
}

std::unique_ptr<core::Manager> train_policy(core::VnfEnv& env, const Scale& scale,
                                            const std::string& name,
                                            const Config& params,
                                            core::TrainStats* stats,
                                            const std::string& label) {
  auto manager = exp::ManagerRegistry::instance().create(name, env, params);
  core::TrainOptions train;
  train.episodes = scale.train_episodes;
  train.threads = train_threads();
  train.learner_threads = learner_threads();
  train.episode.duration_s = scale.train_duration_s;

  const ResumePlan plan = resolve_resume(label.empty() ? name : label);
  if (!plan.dir.empty()) {
    train.checkpoint_dir = plan.dir;
    train.checkpoint_every = checkpoint_every();
  }
  core::TrainStats prior;
  if (!plan.archive.empty()) {
    const core::TrainCheckpoint restored =
        core::read_checkpoint(plan.archive, *manager);
    train.first_episode = restored.episodes_done;
    train.episodes = scale.train_episodes > restored.episodes_done
                         ? scale.train_episodes - restored.episodes_done
                         : 0;
    train.prior_curve = restored.curve;
    train.prior_seeds = restored.seeds;
    train.prior_stats = restored.stats;
    prior = restored.stats;
    log_resume(label.empty() ? name : label, plan.archive, restored.episodes_done,
               scale.train_episodes);
  }

  const core::TrainResult result =
      core::TrainDriver(env.options(), train).run(*manager);
  if (stats != nullptr) {
    // Report the whole training history, not just this leg after a resume.
    *stats = result.stats;
    stats->accumulate(prior);
  }
  return manager;
}

core::EpisodeResult evaluate_policy(core::VnfEnv& env, core::Manager& manager,
                                    const Scale& scale, std::size_t repeats) {
  return evaluate_policy_report(env, manager, scale, repeats).mean;
}

exp::EvalReport evaluate_policy_report(core::VnfEnv& env, core::Manager& manager,
                                       const Scale& scale, std::size_t repeats) {
  if (repeats == 0) repeats = scale.eval_repeats;
  return exp::evaluate_parallel(env.options(), manager, eval_options(scale), repeats);
}

const std::vector<std::string>& baseline_names() {
  static const std::vector<std::string> names{"myopic_cost", "greedy_latency",
                                              "first_fit", "static_provision",
                                              "random"};
  return names;
}

std::vector<PolicyRow> evaluate_baselines(core::VnfEnv& env, const Scale& scale) {
  std::vector<PolicyRow> rows;
  rows.reserve(baseline_names().size());
  for (const std::string& name : baseline_names()) {
    const auto manager =
        exp::ManagerRegistry::instance().create(name, env, Config{{"seed", "7"}});
    rows.push_back({manager->name(), evaluate_policy(env, *manager, scale)});
  }
  return rows;
}

std::string csv_path(const std::string& bench_name) { return bench_name + ".csv"; }

std::vector<double> sweep_rates(const Scale& scale, const Config& config) {
  (void)scale;
  const std::vector<double> fallback =
      full_run_requested() ? std::vector<double>{0.5, 1.0, 2.0, 3.0, 4.0, 6.0}
                           : std::vector<double>{1.0, 2.0, 4.0};
  return config.get_double_list("rates", fallback);
}

std::vector<SweepRow> run_load_sweep(const std::vector<double>& rates,
                                     const Scale& scale) {
  std::vector<SweepRow> sweep;
  sweep.reserve(rates.size());
  for (const double rate : rates) {
    auto experiment = exp::Experiment::scenario(
        default_scenario(), Config{{"arrival_rate", to_config_value(rate)}});
    experiment.manager("dqn")
        .train_threads(train_threads())
        .learner_threads(learner_threads())
        .train_duration(scale.train_duration_s)
        .eval_duration(scale.eval_duration_s)
        .train(scale.train_episodes);
    SweepRow row;
    row.arrival_rate = rate;
    row.policies.push_back({"dqn", experiment.evaluate(scale.eval_repeats).mean});
    for (auto& baseline : evaluate_baselines(experiment.env(), scale))
      row.policies.push_back(std::move(baseline));
    sweep.push_back(std::move(row));
  }
  return sweep;
}

}  // namespace vnfm::bench
