#include "support.hpp"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>

namespace vnfm::bench {

Scale Scale::resolve() { return full_run_requested() ? full() : quick(); }

std::string to_config_value(double value) {
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

Config parse_args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-scenarios") == 0) {
      std::cout << exp::ScenarioCatalog::instance().describe();
      std::exit(0);
    }
  }
  return Config::from_args(argc, argv);
}

std::string default_scenario() {
  const char* requested = std::getenv("REPRO_SCENARIO");
  if (requested == nullptr || *requested == '\0') return "geo-distributed";
  return requested;
}

core::EnvOptions scenario_options(const std::string& scenario, const Config& overrides) {
  return exp::ScenarioCatalog::instance().build(scenario, overrides);
}

core::EnvOptions make_env_options(double arrival_rate, std::size_t nodes,
                                  std::uint64_t seed) {
  return scenario_options(default_scenario(),
                          Config{{"arrival_rate", to_config_value(arrival_rate)},
                                 {"nodes", std::to_string(nodes)},
                                 {"seed", std::to_string(seed)}});
}

core::EpisodeOptions eval_options(const Scale& scale) {
  core::EpisodeOptions episode;
  episode.duration_s = scale.eval_duration_s;
  episode.training = false;
  return episode;
}

std::size_t train_threads() {
  const char* requested = std::getenv("REPRO_TRAIN_THREADS");
  if (requested == nullptr || *requested == '\0') return 0;  // hardware
  return static_cast<std::size_t>(std::strtoull(requested, nullptr, 10));
}

std::unique_ptr<core::Manager> train_policy(core::VnfEnv& env, const Scale& scale,
                                            const std::string& name,
                                            const Config& params,
                                            core::TrainStats* stats) {
  auto manager = exp::ManagerRegistry::instance().create(name, env, params);
  core::TrainOptions train;
  train.episodes = scale.train_episodes;
  train.threads = train_threads();
  train.episode.duration_s = scale.train_duration_s;
  const core::TrainResult result =
      core::TrainDriver(env.options(), train).run(*manager);
  if (stats != nullptr) *stats = result.stats;
  return manager;
}

core::EpisodeResult evaluate_policy(core::VnfEnv& env, core::Manager& manager,
                                    const Scale& scale, std::size_t repeats) {
  return evaluate_policy_report(env, manager, scale, repeats).mean;
}

exp::EvalReport evaluate_policy_report(core::VnfEnv& env, core::Manager& manager,
                                       const Scale& scale, std::size_t repeats) {
  if (repeats == 0) repeats = scale.eval_repeats;
  return exp::evaluate_parallel(env.options(), manager, eval_options(scale), repeats);
}

const std::vector<std::string>& baseline_names() {
  static const std::vector<std::string> names{"myopic_cost", "greedy_latency",
                                              "first_fit", "static_provision",
                                              "random"};
  return names;
}

std::vector<PolicyRow> evaluate_baselines(core::VnfEnv& env, const Scale& scale) {
  std::vector<PolicyRow> rows;
  rows.reserve(baseline_names().size());
  for (const std::string& name : baseline_names()) {
    const auto manager =
        exp::ManagerRegistry::instance().create(name, env, Config{{"seed", "7"}});
    rows.push_back({manager->name(), evaluate_policy(env, *manager, scale)});
  }
  return rows;
}

std::string csv_path(const std::string& bench_name) { return bench_name + ".csv"; }

std::vector<double> sweep_rates(const Scale& scale, const Config& config) {
  (void)scale;
  const std::vector<double> fallback =
      full_run_requested() ? std::vector<double>{0.5, 1.0, 2.0, 3.0, 4.0, 6.0}
                           : std::vector<double>{1.0, 2.0, 4.0};
  return config.get_double_list("rates", fallback);
}

std::vector<SweepRow> run_load_sweep(const std::vector<double>& rates,
                                     const Scale& scale) {
  std::vector<SweepRow> sweep;
  sweep.reserve(rates.size());
  for (const double rate : rates) {
    auto experiment = exp::Experiment::scenario(
        default_scenario(), Config{{"arrival_rate", to_config_value(rate)}});
    experiment.manager("dqn")
        .train_threads(train_threads())
        .train_duration(scale.train_duration_s)
        .eval_duration(scale.eval_duration_s)
        .train(scale.train_episodes);
    SweepRow row;
    row.arrival_rate = rate;
    row.policies.push_back({"dqn", experiment.evaluate(scale.eval_repeats).mean});
    for (auto& baseline : evaluate_baselines(experiment.env(), scale))
      row.policies.push_back(std::move(baseline));
    sweep.push_back(std::move(row));
  }
  return sweep;
}

}  // namespace vnfm::bench
