// Table I — simulation parameters: the topology, VNF catalog, SFC catalog and
// workload/cost model defaults every other experiment uses.
#include <iostream>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "support.hpp"

using namespace vnfm;

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  const core::EnvOptions options = bench::make_env_options(2.0);
  core::VnfEnv env(options);

  std::cout << "=== Table I: Simulation parameters ===\n\n";

  AsciiTable nodes({"node", "location(lat,lon)", "tz", "cpu", "mem_gb", "traffic_w"});
  for (const auto& node : env.topology().nodes()) {
    nodes.add_row({node.name,
                   format_number(node.location.lat_deg) + "," +
                       format_number(node.location.lon_deg),
                   format_number(node.tz_offset_hours), format_number(node.cpu_capacity),
                   format_number(node.mem_capacity_gb), format_number(node.traffic_weight)});
  }
  std::cout << "Edge nodes (" << env.topology().node_count() << "):\n";
  nodes.print(std::cout);

  AsciiTable vnfs({"vnf", "cpu", "mem_gb", "cap_rps", "delay_ms", "deploy$", "run$/h"});
  for (const auto& t : env.vnfs().all()) {
    vnfs.add_row(t.name, {t.cpu_units, t.mem_gb, t.capacity_rps, t.proc_delay_ms,
                          t.deploy_cost, t.run_cost_per_hour});
  }
  std::cout << "\nVNF catalog:\n";
  vnfs.print(std::cout);

  AsciiTable sfcs({"sfc", "chain", "sla_ms", "rate_rps", "duration_s", "revenue$"});
  for (const auto& s : env.sfcs().all()) {
    std::string chain;
    for (const auto id : s.chain) {
      if (!chain.empty()) chain += ">";
      chain += env.vnfs().type(id).name;
    }
    sfcs.add_row({s.name, chain, format_number(s.sla_latency_ms),
                  format_number(s.mean_rate_rps), format_number(s.mean_duration_s),
                  format_number(s.revenue)});
  }
  std::cout << "\nSFC catalog:\n";
  sfcs.print(std::cout);

  const auto& cost = options.cost;
  AsciiTable weights({"parameter", "value"});
  weights.add_row({"w_deploy", format_number(cost.w_deploy)});
  weights.add_row({"w_running", format_number(cost.w_running)});
  weights.add_row({"w_latency_per_ms", format_number(cost.w_latency_per_ms)});
  weights.add_row({"w_sla_violation", format_number(cost.w_sla_violation)});
  weights.add_row({"w_rejection", format_number(cost.w_rejection)});
  weights.add_row({"diurnal_amplitude", format_number(options.workload.diurnal_amplitude)});
  weights.add_row({"idle_timeout_s", format_number(options.cluster.idle_timeout_s)});
  weights.add_row({"reward_scale", format_number(options.reward_scale)});
  std::cout << "\nCost model / environment:\n";
  weights.print(std::cout);

  CsvWriter csv(bench::csv_path("table1_params"), {"parameter", "value"});
  csv.row(std::vector<std::string>{"nodes", std::to_string(env.topology().node_count())});
  csv.row(std::vector<std::string>{"vnf_types", std::to_string(env.vnfs().size())});
  csv.row(std::vector<std::string>{"sfc_templates", std::to_string(env.sfcs().size())});
  csv.row(std::vector<std::string>{"w_rejection", format_number(cost.w_rejection)});
  std::cout << "\nCSV written to " << csv.path() << "\n";
  return 0;
}
