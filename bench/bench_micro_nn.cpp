// Microbenchmarks for the neural-network substrate: the kernels on the DQN
// hot path (batched GEMM, forward, forward+backward+Adam).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"

namespace {

using namespace vnfm;
using namespace vnfm::nn;

void fill_random(Matrix& m, Rng& rng) {
  for (float& v : m.flat()) v = static_cast<float>(rng.normal());
}

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Matrix a(n, n), b(n, n), out;
  fill_random(a, rng);
  fill_random(b, rng);
  for (auto _ : state) {
    matmul(a, b, out);
    benchmark::DoNotOptimize(out.flat().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(16)->Arg(64)->Arg(128);

void BM_MlpForwardSingleRow(benchmark::State& state) {
  MlpConfig config;
  config.input_dim = 67;  // 8-node env feature size
  config.hidden_dims = {64, 64};
  config.output_dim = 9;
  Mlp mlp(config);
  Rng rng(2);
  mlp.init(rng);
  std::vector<float> input(config.input_dim, 0.3F);
  for (auto _ : state) {
    auto out = mlp.forward_row(input);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MlpForwardSingleRow);

void BM_MlpTrainStepBatch32(benchmark::State& state) {
  MlpConfig config;
  config.input_dim = 67;
  config.hidden_dims = {64, 64};
  config.output_dim = 9;
  Mlp mlp(config);
  Rng rng(3);
  mlp.init(rng);
  Adam adam(mlp.parameters(), {.learning_rate = 1e-3F});
  Matrix x(32, config.input_dim), target(32, config.output_dim), y, grad;
  fill_random(x, rng);
  fill_random(target, rng);
  for (auto _ : state) {
    mlp.forward(x, y);
    (void)huber_loss(y, target, grad);
    mlp.zero_grad();
    mlp.backward(grad);
    adam.step();
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_MlpTrainStepBatch32);

void BM_DuelingForwardBatch32(benchmark::State& state) {
  MlpConfig config;
  config.input_dim = 67;
  config.hidden_dims = {64, 64};
  config.output_dim = 9;
  config.dueling = true;
  Mlp mlp(config);
  Rng rng(4);
  mlp.init(rng);
  Matrix x(32, config.input_dim), y;
  fill_random(x, rng);
  for (auto _ : state) {
    mlp.forward(x, y);
    benchmark::DoNotOptimize(y.flat().data());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_DuelingForwardBatch32);

}  // namespace
