// Serving-engine bench: drives core::ServeDriver over a shards × batch-size
// grid on the standard scenario, reports decision throughput and
// p50/p95/p99/max decision latency per cell, emits BENCH_serve.json for CI
// artifact tracking, and asserts the engine's core contract — the
// deterministic half of ServeStats (per-partition requests/decisions/accept
// counts, cost, decision digest) is bit-identical across EVERY grid cell
// (exit 1 on any divergence; throughput itself is reported, not gated,
// because CI runner core counts vary).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "support.hpp"

using namespace vnfm;

namespace {

struct Cell {
  std::size_t shards = 0;
  std::size_t batch_max = 0;
  double time_scale = 0.0;
  core::ServeStats stats;
};

void append_unique(std::vector<std::size_t>& values, std::size_t value) {
  for (const std::size_t existing : values)
    if (existing == value) return;
  values.push_back(value);
}

}  // namespace

int main(int argc, char** argv) {
  const Config config = bench::parse_args(argc, argv);
  const bool full = std::getenv("REPRO_FULL") != nullptr;
  const unsigned cores = std::thread::hardware_concurrency();

  core::ServeOptions base;
  base.partitions = 4;
  base.requests_per_partition = full ? 512 : 96;
  base.batch_max = bench::serve_batch_max();
  base.queue_capacity = 64;

  // The 1/2/4 invariance grid, plus the REPRO_SERVE_SHARDS request
  // (0 = hardware concurrency) when it adds a new point. ServeDriver clamps
  // shards to the partition count, so oversized requests fold into 4.
  std::vector<std::size_t> shard_counts{1, 2, 4};
  const std::size_t requested = bench::serve_shards();
  append_unique(shard_counts,
                std::min<std::size_t>(base.partitions,
                                      requested > 0 ? requested
                                                    : (cores > 0 ? cores : 1)));
  std::vector<std::size_t> batch_sizes{1};
  append_unique(batch_sizes, base.batch_max);

  std::cout << "=== bench_serve: sharded batched serving engine ("
            << base.partitions << " partitions x " << base.requests_per_partition
            << " requests, scenario " << bench::default_scenario() << ") ===\n";

  exp::Experiment experiment =
      exp::Experiment::from_options(bench::scenario_options(bench::default_scenario(),
                                                            config));
  experiment.manager("dqn").seed(1);

  std::vector<Cell> cells;
  bool bit_identical = true;
  for (const std::size_t shards : shard_counts) {
    for (const std::size_t batch_max : batch_sizes) {
      core::ServeOptions options = base;
      options.shards = shards;
      options.batch_max = batch_max;
      Cell cell;
      cell.shards = shards;
      cell.batch_max = batch_max;
      cell.stats = experiment.serve(options);
      if (!cells.empty() && !cell.stats.deterministically_equal(cells.front().stats))
        bit_identical = false;
      std::cout << "  shards=" << shards << " batch_max=" << batch_max << ": "
                << cell.stats.decisions_per_second() << " decisions/s, p50="
                << cell.stats.latency_micros(0.50) << "us p95="
                << cell.stats.latency_micros(0.95) << "us p99="
                << cell.stats.latency_micros(0.99) << "us max="
                << cell.stats.latency.max_micros() << "us, queue_hw="
                << cell.stats.queue_high_water << ", backpressure="
                << cell.stats.backpressure_waits << "\n";
      cells.push_back(std::move(cell));
    }
  }

  // Optional closed-loop paced cell (REPRO_SERVE_TIME_SCALE preset): arrivals
  // follow the workload model's instants instead of saturating the queues, so
  // the latency percentiles reflect steady-state serving. Pacing must not
  // move a single decision — the cell joins the bit-identity check.
  const double pacing = bench::serve_time_scale();
  if (pacing > 0.0) {
    core::ServeOptions options = base;
    options.shards = base.partitions;
    options.time_scale = pacing;
    Cell cell;
    cell.shards = options.shards;
    cell.batch_max = options.batch_max;
    cell.time_scale = pacing;
    cell.stats = experiment.serve(options);
    if (!cell.stats.deterministically_equal(cells.front().stats))
      bit_identical = false;
    std::cout << "  paced: time_scale=" << pacing << " shards=" << cell.shards
              << " batch_max=" << cell.batch_max << ": "
              << cell.stats.decisions_per_second() << " decisions/s, p50="
              << cell.stats.latency_micros(0.50) << "us p95="
              << cell.stats.latency_micros(0.95) << "us p99="
              << cell.stats.latency_micros(0.99) << "us max="
              << cell.stats.latency.max_micros() << "us\n";
    cells.push_back(std::move(cell));
  }

  std::cout << "deterministic serve stats bit-identical across "
            << cells.size() << " grid cells: "
            << (bit_identical ? "yes" : "NO — DETERMINISM BUG") << "\n";

  // Full per-shard/per-partition report of the last (widest) cell through
  // the shared exp:: writer.
  exp::write_serve_json(cells.back().stats, base, "BENCH_serve_detail.json");

  std::ofstream json("BENCH_serve.json");
  json << "{\n  \"hardware_cores\": " << cores
       << ",\n  \"partitions\": " << base.partitions
       << ",\n  \"requests_per_partition\": " << base.requests_per_partition
       << ",\n  \"scenario\": \"" << bench::default_scenario() << "\""
       << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    json << "    {\"shards\": " << cell.shards
         << ", \"batch_max\": " << cell.batch_max
         << ", \"time_scale\": " << cell.time_scale
         << ", \"decisions_per_s\": " << cell.stats.decisions_per_second()
         << ", \"requests_per_s\": " << cell.stats.requests_per_second()
         << ", \"latency_p50_us\": " << cell.stats.latency_micros(0.50)
         << ", \"latency_p95_us\": " << cell.stats.latency_micros(0.95)
         << ", \"latency_p99_us\": " << cell.stats.latency_micros(0.99)
         << ", \"latency_max_us\": " << cell.stats.latency.max_micros()
         << ", \"queue_high_water\": " << cell.stats.queue_high_water
         << ", \"backpressure_waits\": " << cell.stats.backpressure_waits
         << ", \"batched_decisions\": " << cell.stats.batched_decisions
         << ", \"single_decisions\": " << cell.stats.single_decisions << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"bit_identical\": " << (bit_identical ? "true" : "false")
       << "\n}\n";
  std::cout << "JSON written to BENCH_serve.json (detail: BENCH_serve_detail.json)\n";
  return bit_identical ? 0 : 1;
}
