// Figure 7 — CDF of end-to-end chain latency at a fixed reference load.
// Paper-shape claim: the DRL manager's CDF dominates first-fit/random (more
// mass at low latency) and tracks greedy-latency closely up to ~p90 while
// avoiding greedy's cost blow-up.
#include <iostream>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "support.hpp"

using namespace vnfm;

namespace {

/// Evaluates one manager and extracts latency quantiles from the run.
std::vector<double> latency_quantiles(core::VnfEnv& env, core::Manager& manager,
                                      const core::EpisodeOptions& episode,
                                      const std::vector<double>& qs) {
  manager.set_training(false);
  core::EpisodeOptions options = episode;
  options.training = false;
  options.seed = 99;
  (void)core::run_episode(env, manager, options);
  std::vector<double> out;
  out.reserve(qs.size());
  for (const double q : qs) out.push_back(env.metrics().latency_sketch().quantile(q));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  const bench::Scale scale = bench::Scale::resolve();
  const double rate = 3.0;
  std::cout << "=== Figure 7: latency CDF at rate " << rate << "/s ===\n\n";

  core::VnfEnv env(bench::make_env_options(rate));
  auto dqn = bench::train_policy(env, scale, "dqn");

  const std::vector<double> qs{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99};
  core::EpisodeOptions episode = bench::eval_options(scale);
  auto& registry = exp::ManagerRegistry::instance();

  std::vector<std::pair<std::string, std::vector<double>>> rows;
  rows.emplace_back("dqn", latency_quantiles(env, *dqn, episode, qs));
  for (const std::string name :
       {"greedy_latency", "myopic_cost", "first_fit", "random"}) {
    const auto manager = registry.create(name, env, Config{{"seed", "3"}});
    rows.emplace_back(manager->name(), latency_quantiles(env, *manager, episode, qs));
  }

  std::vector<std::string> header{"policy"};
  for (const double q : qs) header.push_back("p" + format_number(q * 100.0));
  AsciiTable table(header);
  CsvWriter csv(bench::csv_path("fig7_latency_cdf"), header);
  for (const auto& [name, values] : rows) {
    table.add_row(name, values);
    std::vector<std::string> cells{name};
    for (const double v : values) cells.push_back(format_number(v));
    csv.row(cells);
  }
  table.print(std::cout);
  std::cout << "\nCSV written to " << csv.path() << "\n";
  return 0;
}
