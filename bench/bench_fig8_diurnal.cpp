// Figure 8 — diurnal adaptation over a simulated day: running instance count
// and per-region offered load, hour by hour. Paper-shape claim: the DRL
// manager's (and the idle-GC mechanism's) instance footprint follows the sun
// — capacity shifts toward whichever regions are at local peak — while
// static provisioning keeps a flat footprint and loses acceptance at peaks.
#include <iostream>

#include "common/csv.hpp"
#include "common/config.hpp"
#include "common/table.hpp"
#include "support.hpp"

using namespace vnfm;

namespace {

struct HourSample {
  double hour;
  double instances;
  double offered_load;
  double acceptance;
};

/// Runs one 24h simulated day, sampling state every simulated hour.
std::vector<HourSample> run_day(core::VnfEnv& env, core::Manager& manager,
                                double rate_probe_hours) {
  (void)rate_probe_hours;
  env.reset(404);
  manager.set_training(false);
  manager.on_episode_start(env);
  std::vector<HourSample> samples;
  double next_sample = 0.0;
  std::uint64_t last_arrivals = 0, last_accepted = 0;
  const double horizon = edgesim::kSecondsPerDay;
  while (true) {
    if (!env.begin_next_request(horizon)) break;
    core::StepResult r;
    do {
      r = env.step(manager.select_action(env));
    } while (!r.chain_done);
    if (env.now() >= next_sample) {
      const auto& m = env.metrics();
      const double window_arrivals =
          static_cast<double>(m.arrivals() - last_arrivals);
      const double window_accepted =
          static_cast<double>(m.accepted() - last_accepted);
      samples.push_back(
          {env.now() / edgesim::kSecondsPerHour,
           static_cast<double>(env.cluster().total_instance_count()),
           env.workload().total_rate(env.now()),
           window_arrivals > 0 ? window_accepted / window_arrivals : 1.0});
      last_arrivals = m.arrivals();
      last_accepted = m.accepted();
      next_sample += edgesim::kSecondsPerHour;
    }
  }
  return samples;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  const bench::Scale scale = bench::Scale::resolve();
  const double rate = full_run_requested() ? 2.0 : 1.0;
  std::cout << "=== Figure 8: diurnal adaptation over 24h (rate " << rate
            << "/s, amplitude 0.8) ===\n\n";

  core::VnfEnv env(bench::scenario_options(
      bench::default_scenario(), Config{{"arrival_rate", bench::to_config_value(rate)},
                                {"diurnal_amplitude", "0.8"}}));
  auto& registry = exp::ManagerRegistry::instance();

  auto dqn = bench::train_policy(env, scale, "dqn");
  const auto dqn_day = run_day(env, *dqn, 1.0);

  const auto static_prov =
      registry.create("static_provision", env, Config{{"instances_per_type", "3"}});
  const auto static_day = run_day(env, *static_prov, 1.0);

  const auto myopic = registry.create("myopic_cost", env);
  const auto myopic_day = run_day(env, *myopic, 1.0);

  AsciiTable table({"hour", "offered_rps", "dqn_instances", "myopic_instances",
                    "static_instances", "dqn_accept", "static_accept"});
  CsvWriter csv(bench::csv_path("fig8_diurnal"),
                {"hour", "offered_rps", "dqn_instances", "myopic_instances",
                 "static_instances", "dqn_accept", "static_accept"});
  const std::size_t n =
      std::min({dqn_day.size(), static_day.size(), myopic_day.size()});
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<double> row{
        dqn_day[i].hour,          dqn_day[i].offered_load,
        dqn_day[i].instances,     myopic_day[i].instances,
        static_day[i].instances,  dqn_day[i].acceptance,
        static_day[i].acceptance};
    table.add_row(format_number(dqn_day[i].hour),
                  {row.begin() + 1, row.end()});
    csv.row(row);
  }
  table.print(std::cout);

  // Shape check: the adaptive footprint should vary over the day; the
  // static one should not.
  auto footprint_swing = [](const std::vector<HourSample>& day) {
    double lo = 1e18, hi = 0.0;
    for (const auto& s : day) {
      lo = std::min(lo, s.instances);
      hi = std::max(hi, s.instances);
    }
    return hi - lo;
  };
  std::cout << "\nInstance-count swing over the day: dqn=" << footprint_swing(dqn_day)
            << " myopic=" << footprint_swing(myopic_day)
            << " static=" << footprint_swing(static_day) << "\n";
  std::cout << "CSV written to " << csv.path() << "\n";
  return 0;
}
