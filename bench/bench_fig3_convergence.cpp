// Figure 3 — training convergence: per-episode return for the DQN variants
// and the learning baselines (tabular Q, REINFORCE). The paper-shape claim:
// DQN-family curves rise and plateau well above tabular/REINFORCE, and
// Double DQN converges at least as stably as vanilla.
#include <iostream>
#include <memory>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "support.hpp"

using namespace vnfm;

namespace {

std::vector<double> train_curve(core::VnfEnv& env, core::Manager& manager,
                                std::size_t episodes, double duration_s) {
  core::EpisodeOptions episode;
  episode.duration_s = duration_s;
  const auto results = core::train_manager(env, manager, episodes, episode);
  std::vector<double> rewards;
  rewards.reserve(results.size());
  for (const auto& r : results) rewards.push_back(r.total_reward);
  return rewards;
}

}  // namespace

int main() {
  const bench::Scale scale = bench::Scale::resolve();
  const std::size_t episodes = scale.train_episodes * 2;
  const double duration = scale.train_duration_s * 0.6;
  const double arrival_rate = 2.0;

  std::cout << "=== Figure 3: training convergence (reward/episode, rate="
            << arrival_rate << "/s, " << episodes << " episodes x " << duration
            << "s) ===\n\n";

  core::VnfEnv env(bench::make_env_options(arrival_rate));
  auto& registry = exp::ManagerRegistry::instance();

  // Registry name + per-variant parameters; "dqn" keeps its historical
  // vanilla (non-double) configuration in this figure.
  const std::vector<std::pair<std::string, Config>> variants{
      {"vanilla_dqn", Config{{"name", "dqn"}, {"seed", "7"}}},
      {"double_dqn", Config{{"seed", "8"}}},
      {"dueling_ddqn", Config{{"seed", "9"}}},
      {"tabular_q", {}},
      {"reinforce", {}},
      {"actor_critic", {}},
  };

  std::vector<std::pair<std::string, std::vector<double>>> curves;
  for (const auto& [name, params] : variants) {
    const auto manager = registry.create(name, env, params);
    curves.emplace_back(manager->name(),
                        train_curve(env, *manager, episodes, duration));
  }

  std::vector<std::string> header{"episode"};
  for (const auto& [name, curve] : curves) header.push_back(name);
  AsciiTable table(header);
  CsvWriter csv(bench::csv_path("fig3_convergence"), header);
  for (std::size_t e = 0; e < episodes; ++e) {
    std::vector<double> row;
    row.reserve(curves.size());
    for (const auto& [name, curve] : curves) row.push_back(curve[e]);
    table.add_row(std::to_string(e), row);
    std::vector<double> csv_row{static_cast<double>(e)};
    csv_row.insert(csv_row.end(), row.begin(), row.end());
    csv.row(csv_row);
  }
  table.print(std::cout);

  // Shape check: late DQN reward should exceed early DQN reward.
  const auto& ddqn = curves[1].second;
  double early = 0.0, late = 0.0;
  const std::size_t k = std::max<std::size_t>(1, episodes / 4);
  for (std::size_t i = 0; i < k; ++i) early += ddqn[i];
  for (std::size_t i = episodes - k; i < episodes; ++i) late += ddqn[i];
  std::cout << "\nDouble-DQN mean reward: first quartile " << early / k
            << " -> last quartile " << late / k
            << (late > early ? "  [improving]" : "  [NOT improving]") << "\n";
  std::cout << "CSV written to " << csv.path() << "\n";
  return 0;
}
