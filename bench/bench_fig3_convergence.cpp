// Figure 3 — training convergence: per-episode return for the DQN variants
// and the learning baselines (tabular Q, REINFORCE). The paper-shape claim:
// DQN-family curves rise and plateau well above tabular/REINFORCE, and
// Double DQN converges at least as stably as vanilla.
//
// Training runs through the actor-learner pipeline (exp::Experiment::
// train_threads over core::TrainDriver); the bench reports per-variant
// throughput and measures the pipeline's wall-clock speedup at 4 actor
// threads against 1, plus the data-parallel gradient engine's grad-step
// speedup at 4 learner threads against 1 (REPRO_LEARNER_THREADS) — each
// pair of runs is bit-identical by construction (exit 1 otherwise), so the
// speedups are free of any result drift.
#include <iostream>
#include <thread>
#include <vector>

#include "common/table.hpp"
#include "support.hpp"

using namespace vnfm;

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  const bench::Scale scale = bench::Scale::resolve();
  const std::size_t episodes = scale.train_episodes * 2;
  const double duration = scale.train_duration_s * 0.6;
  const double arrival_rate = 2.0;

  std::cout << "=== Figure 3: training convergence (reward/episode, rate="
            << arrival_rate << "/s, " << episodes << " episodes x " << duration
            << "s) ===\n\n";

  // Registry name + per-variant parameters; "dqn" keeps its historical
  // vanilla (non-double) configuration in this figure.
  const std::vector<std::pair<std::string, Config>> variants{
      {"vanilla_dqn", Config{{"name", "dqn"}, {"seed", "7"}}},
      {"double_dqn", Config{{"seed", "8"}}},
      {"dueling_ddqn", Config{{"seed", "9"}}},
      {"tabular_q", {}},
      {"reinforce", {}},
      {"actor_critic", {}},
  };

  std::vector<std::string> labels;
  std::vector<std::vector<double>> curves;
  for (const auto& [name, params] : variants) {
    auto experiment =
        exp::Experiment::from_options(bench::make_env_options(arrival_rate));
    experiment.manager(name, params)
        .train_threads(bench::train_threads())
        .learner_threads(bench::learner_threads())
        .train_duration(duration);
    // Long convergence runs checkpoint under REPRO_CHECKPOINT_DIR/<variant>
    // and REPRO_RESUME=1 continues them bit-identically after interruption.
    bench::train_resumable(experiment, episodes, name);
    labels.push_back(experiment.manager_ref().name());
    std::vector<double> rewards;
    rewards.reserve(episodes);
    for (const auto& r : experiment.learning_curve())
      rewards.push_back(r.total_reward);
    curves.push_back(std::move(rewards));
    // Full per-episode metrics + throughput stats for the headline variant.
    if (name == "double_dqn")
      experiment.write_curve_json("fig3_double_dqn_curve.json");
    const auto& stats = experiment.train_stats();
    std::cout << labels.back() << ": " << stats.transitions << " transitions in "
              << stats.wall_seconds << " s (" << stats.steps_per_second()
              << " steps/s, "
              << (stats.parallel ? "actor-learner pipeline" : "sequential") << ", "
              << stats.actor_threads << " actor thread(s), " << stats.learner_threads
              << " learner thread(s), " << stats.grad_step_micros()
              << " us/grad-step)\n";
  }
  std::cout << '\n';

  std::vector<std::string> header{"episode"};
  for (const auto& label : labels) header.push_back(label);
  AsciiTable table(header);
  for (std::size_t e = 0; e < episodes; ++e) {
    std::vector<double> row;
    row.reserve(curves.size());
    for (const auto& curve : curves) row.push_back(curve[e]);
    table.add_row(std::to_string(e), row);
  }
  table.print(std::cout);

  // Shape check: late DQN reward should exceed early DQN reward.
  const auto& ddqn = curves[1];
  double early = 0.0, late = 0.0;
  const std::size_t k = std::max<std::size_t>(1, episodes / 4);
  for (std::size_t i = 0; i < k; ++i) early += ddqn[i];
  for (std::size_t i = episodes - k; i < episodes; ++i) late += ddqn[i];
  std::cout << "\nDouble-DQN mean reward: first quartile " << early / k
            << " -> last quartile " << late / k
            << (late > early ? "  [improving]" : "  [NOT improving]") << "\n";

  // ---- Pipeline speedup: 1 vs 4 actor threads (bit-identical runs) --------
  std::cout << "\n--- Actor-learner pipeline speedup (double_dqn, "
            << episodes / 2 << " episodes) ---\n";
  double walls[2] = {0.0, 0.0};
  std::vector<double> speedup_curves[2];
  const std::size_t thread_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    auto experiment =
        exp::Experiment::from_options(bench::make_env_options(arrival_rate));
    experiment.manager("double_dqn", Config{{"seed", "8"}})
        .train_threads(thread_counts[i])
        .train_duration(duration)
        .train(episodes / 2);
    walls[i] = experiment.train_stats().wall_seconds;
    for (const auto& r : experiment.learning_curve())
      speedup_curves[i].push_back(r.total_reward);
  }
  const bool identical = speedup_curves[0] == speedup_curves[1];
  std::cout << "1 thread: " << walls[0] << " s, 4 threads: " << walls[1]
            << " s -> speedup " << (walls[1] > 0.0 ? walls[0] / walls[1] : 0.0)
            << "x on " << std::thread::hardware_concurrency()
            << " hardware core(s)\n";
  std::cout << "learning curves bit-identical across thread counts: "
            << (identical ? "yes" : "NO — DETERMINISM BUG") << "\n";

  // ---- Learner-thread speedup: 1 vs 4 gradient workers (bit-identical) ----
  // The data-parallel gradient engine must leave curves untouched while
  // cutting per-gradient-step latency on multi-core hosts.
  std::cout << "\n--- Data-parallel gradient engine (double_dqn, "
            << episodes / 2 << " episodes) ---\n";
  double grad_micros[2] = {0.0, 0.0};
  std::vector<double> learner_curves[2];
  const std::size_t learner_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    auto experiment =
        exp::Experiment::from_options(bench::make_env_options(arrival_rate));
    experiment.manager("double_dqn", Config{{"seed", "8"}})
        .train_threads(1)
        .learner_threads(learner_counts[i])
        .train_duration(duration)
        .train(episodes / 2);
    grad_micros[i] = experiment.train_stats().grad_step_micros();
    for (const auto& r : experiment.learning_curve())
      learner_curves[i].push_back(r.total_reward);
  }
  const bool learner_identical = learner_curves[0] == learner_curves[1];
  std::cout << "1 learner thread: " << grad_micros[0]
            << " us/grad-step, 4 learner threads: " << grad_micros[1]
            << " us/grad-step -> grad-step speedup "
            << (grad_micros[1] > 0.0 ? grad_micros[0] / grad_micros[1] : 0.0)
            << "x on " << std::thread::hardware_concurrency()
            << " hardware core(s)\n";
  std::cout << "learning curves bit-identical across learner-thread counts: "
            << (learner_identical ? "yes" : "NO — DETERMINISM BUG") << "\n";

  // Persist the full figure through the experiment report writers.
  const std::string csv = bench::csv_path("fig3_convergence");
  exp::write_reward_curves_csv(labels, curves, csv);
  std::cout << "\nCSV written to " << csv << "\n";
  return identical && learner_identical ? 0 : 1;
}
