// Table IV (ablation) — the latency-price knob w_latency_per_ms sweeps the
// cost/QoS trade-off frontier: cheap latency makes the learned policy
// consolidate (fewer deployments, worse latency); expensive latency makes it
// chase geography (more deployments, better latency).
#include <iostream>

#include "common/config.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "support.hpp"

using namespace vnfm;

int main(int argc, char** argv) {
  const bench::Scale scale = bench::Scale::resolve();
  const double rate = 3.0;
  const std::vector<double> latency_prices =
      bench::parse_args(argc, argv).get_double_list("prices", {0.002, 0.01, 0.05});
  std::cout << "=== Table IV: reward-shaping ablation (w_latency_per_ms sweep, rate "
            << rate << "/s) ===\n\n";

  const std::vector<std::string> header{"w_latency_per_ms", "eval_lat_ms", "sla_viol%",
                                        "deployments", "running$", "cost/req"};
  AsciiTable table(header);
  CsvWriter csv(bench::csv_path("table4_reward_shaping"), header);

  for (const double price : latency_prices) {
    core::VnfEnv env(bench::scenario_options(
        bench::default_scenario(),
        Config{{"arrival_rate", bench::to_config_value(rate)},
               {"w_latency_per_ms", bench::to_config_value(price)}}));
    auto dqn = bench::train_policy(env, scale, "dqn");
    const auto eval = bench::evaluate_policy(env, *dqn, scale);
    const std::vector<double> values{eval.mean_latency_ms,
                                     100.0 * eval.sla_violation_ratio,
                                     static_cast<double>(eval.deployments),
                                     eval.running_cost, eval.cost_per_request};
    table.add_row(format_number(price), values);
    std::vector<double> row{price};
    row.insert(row.end(), values.begin(), values.end());
    csv.row(row);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: mean latency decreases monotonically as the\n"
               "latency price rises, at the expense of deployments/instance-hours.\n";
  std::cout << "CSV written to " << csv.path() << "\n";
  return 0;
}
