// Figure 4 — average objective cost per request vs arrival rate.
// Paper-shape claim: the DRL manager's cost stays below every myopic
// baseline, and the gap widens as load (and therefore the value of
// foresight) increases.
#include <iostream>

#include "common/config.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "support.hpp"

using namespace vnfm;

int main(int argc, char** argv) {
  const bench::Scale scale = bench::Scale::resolve();
  const auto rates = bench::sweep_rates(scale, bench::parse_args(argc, argv));
  std::cout << "=== Figure 4: cost per request vs arrival rate ===\n\n";

  const auto sweep = bench::run_load_sweep(rates, scale);

  std::vector<std::string> header{"rate_rps"};
  for (const auto& policy : sweep.front().policies) header.push_back(policy.policy);
  AsciiTable table(header);
  CsvWriter csv(bench::csv_path("fig4_cost_vs_load"), header);
  for (const auto& row : sweep) {
    std::vector<double> values;
    for (const auto& policy : row.policies) values.push_back(policy.result.cost_per_request);
    table.add_row(format_number(row.arrival_rate), values);
    std::vector<double> csv_row{row.arrival_rate};
    csv_row.insert(csv_row.end(), values.begin(), values.end());
    csv.row(csv_row);
  }
  table.print(std::cout);

  // Shape check at the highest load: DQN vs best non-learning baseline.
  const auto& top = sweep.back();
  double best_baseline = 1e18;
  std::string best_name;
  for (std::size_t i = 1; i < top.policies.size(); ++i) {
    if (top.policies[i].result.cost_per_request < best_baseline) {
      best_baseline = top.policies[i].result.cost_per_request;
      best_name = top.policies[i].policy;
    }
  }
  const double dqn_cost = top.policies.front().result.cost_per_request;
  std::cout << "\nAt rate " << top.arrival_rate << "/s: dqn=" << dqn_cost
            << " vs best baseline (" << best_name << ")=" << best_baseline
            << (dqn_cost < best_baseline ? "  [DRL wins]" : "  [baseline wins]") << "\n";
  std::cout << "CSV written to " << csv.path() << "\n";
  return 0;
}
