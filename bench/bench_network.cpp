// Network-model bench: cost and effect of the flow-level network model.
//
// Three sections, two of which are CI gates (non-zero exit on failure):
//
//   golden    — GATE: the default constant model must reproduce the pre-PR
//               byte-exact rollout digests on representative scenarios
//               (determinism invariant #11, constant half).
//   overhead  — µs/decision of constant vs two-tier flow fabric at 50/200/1k
//               nodes: the price of per-hop flow registration and O(dirty)
//               max-min re-sharing.
//   incast    — GATE: on fat-tree-k4 under an incast hotspot, the SAME seed
//               and action stream must show strictly higher p99 chain latency
//               under the flow model than under the constant model —
//               contention-driven latency actually emerges.
//
// Emits BENCH_network.json with every cell for CI artifact tracking.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "support.hpp"

using namespace vnfm;

namespace {

/// FNV-1a over raw bytes, chained across calls.
void mix_bytes(std::uint64_t& hash, const void* data, std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001B3ULL;
  }
}

struct Rollout {
  std::uint64_t digest = 0xCBF29CE484222325ULL;
  std::size_t decisions = 0;
  std::size_t accepted = 0;
  double total_cost = 0.0;
  double p99_latency_ms = 0.0;
  double decision_us = 0.0;
};

/// Seeded random-valid-action rollout (the golden-capture policy). Absent
/// failures the flow model never changes masks, so constant and flow runs of
/// the same seed see the identical action stream — latency differences are
/// purely the network model's doing.
Rollout run_rollout(core::VnfEnv& env, std::uint64_t episode_seed,
                    std::size_t requests) {
  Rollout out;
  env.reset(episode_seed);
  Rng rng(99);
  std::vector<int> valid;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < requests; ++r) {
    if (!env.begin_next_request()) break;
    core::StepResult step;
    do {
      const auto features = env.features();
      const auto& mask = env.action_mask();
      mix_bytes(out.digest, features.data(), features.size() * sizeof(float));
      mix_bytes(out.digest, mask.data(), mask.size());
      valid.clear();
      for (std::size_t a = 0; a < mask.size(); ++a)
        if (mask[a]) valid.push_back(static_cast<int>(a));
      step = env.step(valid[rng.uniform_index(valid.size())]);
      mix_bytes(out.digest, &step.reward, sizeof(step.reward));
      ++out.decisions;
    } while (!step.chain_done);
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  out.decision_us = elapsed.count() * 1e6 / static_cast<double>(out.decisions);
  out.accepted = env.metrics().accepted();
  out.total_cost = env.metrics().total_cost();
  out.p99_latency_ms = env.metrics().latency_sketch().quantile(0.99);
  return out;
}

struct GoldenCase {
  const char* scenario;
  const char* nodes_override;  ///< nullptr = none
  std::uint64_t seed;
  std::size_t requests;
  std::uint64_t digest;
};

// Captured against the tree immediately before the network subsystem landed.
const GoldenCase kGolden[] = {
    {"geo-distributed", nullptr, 1, 120, 0x9BFE5DD24484EA14ULL},
    {"flash-crowd+node-failure", nullptr, 3, 150, 0xA2A345C95AF67B90ULL},
    {"large-scale", nullptr, 2, 100, 0xF66F1DCD2AC4131EULL},
    {"large-scale-1k", "200", 1, 60, 0xF3D588B1EBC7ACF6ULL},
};

struct OverheadRow {
  std::size_t nodes = 0;
  std::string model;
  double decision_us = 0.0;
  std::size_t decisions = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  const bool full = std::getenv("REPRO_FULL") != nullptr;

  std::cout << "=== bench_network: flow-level network model ===\n\n";

  // ---- Gate 1: constant-model golden bit-identity --------------------------
  bool golden_ok = true;
  std::cout << "[golden] constant model vs pre-PR digests\n";
  for (const GoldenCase& c : kGolden) {
    Config overrides;
    if (c.nodes_override != nullptr) overrides.set("nodes", c.nodes_override);
    core::VnfEnv env(exp::ScenarioCatalog::instance().build(c.scenario, overrides));
    const Rollout r = run_rollout(env, c.seed, c.requests);
    const bool ok = r.digest == c.digest;
    golden_ok = golden_ok && ok;
    std::cout << "  " << c.scenario << ": " << (ok ? "bit-identical" : "DIVERGED")
              << "\n";
  }

  // ---- Overhead: constant vs two-tier flow fabric --------------------------
  std::cout << "\n[overhead] us/decision, constant vs two-tier-edge\n";
  const std::vector<std::size_t> node_counts{50, 200, 1'000};
  const std::size_t overhead_requests = full ? 400 : 120;
  std::vector<OverheadRow> overhead;
  for (const std::size_t nodes : node_counts) {
    for (const std::string model : {"constant", "two-tier-edge"}) {
      core::VnfEnv env(bench::scenario_options(
          "large-scale-1k", Config{{"nodes", std::to_string(nodes)},
                                   {"topology", model},
                                   {"seed", "1"}}));
      const Rollout r = run_rollout(env, 1, overhead_requests);
      overhead.push_back({nodes, model, r.decision_us, r.decisions});
      std::cout << "  nodes=" << nodes << " model=" << model << ": "
                << r.decision_us << " us/decision (" << r.decisions
                << " decisions)\n";
    }
  }

  // ---- Gate 2: contention-driven latency on fat-tree + incast --------------
  // Constrained fabric (thin uplinks, heavy payload) plus a sustained
  // single-region hotspot: identical seed and action stream, so any p99
  // difference is pure link contention.
  const std::size_t incast_requests = full ? 600 : 250;
  const Config incast_base{{"incast_region", "2"},    {"incast_magnitude", "8"},
                           {"incast_start_s", "0"},   {"incast_duration_s", "86400"},
                           {"payload_mbit", "64"},    {"link_gbps", "5"},
                           {"seed", "1"}};
  Config incast_flow = incast_base;
  incast_flow.set("topology", "fat-tree-k4");
  core::VnfEnv constant_env(exp::ScenarioCatalog::instance().build(
      "geo-distributed+incast", incast_base));
  core::VnfEnv flow_env(exp::ScenarioCatalog::instance().build(
      "geo-distributed+incast", incast_flow));
  const Rollout constant_r = run_rollout(constant_env, 7, incast_requests);
  const Rollout flow_r = run_rollout(flow_env, 7, incast_requests);
  const bool contention_ok = flow_r.p99_latency_ms > constant_r.p99_latency_ms;
  std::cout << "\n[incast] fat-tree-k4 p99 chain latency: flow "
            << flow_r.p99_latency_ms << " ms vs constant "
            << constant_r.p99_latency_ms << " ms -> "
            << (contention_ok ? "contention visible" : "NO CONTENTION (gate fails)")
            << "\n";

  std::ofstream json("BENCH_network.json");
  json << "{\n  \"golden_bit_identical\": " << (golden_ok ? "true" : "false")
       << ",\n  \"overhead\": [\n";
  for (std::size_t i = 0; i < overhead.size(); ++i) {
    const OverheadRow& row = overhead[i];
    json << "    {\"nodes\": " << row.nodes << ", \"model\": \"" << row.model
         << "\", \"decision_us\": " << row.decision_us
         << ", \"decisions\": " << row.decisions << "}"
         << (i + 1 < overhead.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"incast\": {\"constant_p99_ms\": " << constant_r.p99_latency_ms
       << ", \"flow_p99_ms\": " << flow_r.p99_latency_ms
       << ", \"constant_accepted\": " << constant_r.accepted
       << ", \"flow_accepted\": " << flow_r.accepted
       << ", \"contention_visible\": " << (contention_ok ? "true" : "false")
       << "}\n}\n";
  std::cout << "JSON written to BENCH_network.json\n";

  if (!golden_ok) {
    std::cout << "FAIL: constant model diverged from the pre-PR golden digests\n";
    return 1;
  }
  if (!contention_ok) {
    std::cout << "FAIL: flow model shows no contention-driven latency\n";
    return 1;
  }
  return 0;
}
