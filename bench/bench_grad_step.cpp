// Grad-step perf regression harness: micro-benchmarks the learner's batched
// DQN gradient step through the data-parallel gradient engine at 1/2/4
// learner threads, emits BENCH_grad_step.json for CI artifact tracking, and
// gates two contracts:
//  1. determinism — the final learner state after N identical steps must be
//     byte-identical for every thread count (exit 1 on any divergence);
//  2. scaling — on hosts with >= 4 hardware cores, 4 learner threads must
//     not be SLOWER than 1 (exit 1 otherwise; single-core runners only
//     report, since no parallel gain is physically possible there).
// The JSON also records which SIMD path the matmul kernels dispatched to
// (avx2/neon/scalar) so artifact diffs across runners are explainable.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/serialize.hpp"
#include "nn/grad_pool.hpp"
#include "rl/dqn.hpp"

using namespace vnfm;

namespace {

rl::DqnConfig bench_config() {
  rl::DqnConfig config;
  // Paper-scale-ish dimensions: large enough that one gradient step is a
  // few hundred µs of real GEMM work (batch 64 → 8 blocks of 8 rows), so
  // per-step pool overhead cannot mask the parallel section.
  config.state_dim = 64;
  config.action_dim = 32;
  config.hidden_dims = {128, 128};
  config.batch_size = 64;
  config.replay_capacity = 8192;
  config.min_replay_before_training = 1U << 30;  // never auto-train; we drive
  config.double_dqn = true;
  config.seed = 7;
  return config;
}

/// Deterministic synthetic transition stream (independent of the simulator:
/// this bench measures the nn/rl layers only).
void fill_replay(rl::DqnAgent& agent, std::size_t count) {
  const auto& config = agent.config();
  Rng rng(1234);
  rl::Transition t;
  for (std::size_t i = 0; i < count; ++i) {
    t.state.resize(config.state_dim);
    t.next_state.resize(config.state_dim);
    for (auto& v : t.state) v = static_cast<float>(rng.uniform() * 2.0 - 1.0);
    for (auto& v : t.next_state) v = static_cast<float>(rng.uniform() * 2.0 - 1.0);
    t.action = static_cast<int>(rng.uniform_index(config.action_dim));
    t.reward = static_cast<float>(rng.uniform() * 2.0 - 1.0);
    t.done = rng.uniform() < 0.05;
    t.next_valid.clear();
    agent.observe(t);
  }
}

std::vector<std::uint8_t> learner_state_bytes(const rl::DqnAgent& agent) {
  Serializer out;
  agent.save_state(out);
  return out.bytes();
}

struct Sample {
  std::size_t learner_threads = 0;
  double us_per_step = 0.0;
  double steps_per_s = 0.0;
};

}  // namespace

int main() {
  const bool full = std::getenv("REPRO_FULL") != nullptr;
  const std::size_t warmup_steps = full ? 50 : 10;
  const std::size_t timed_steps = full ? 1000 : 200;
  const std::vector<std::size_t> thread_counts{1, 2, 4};

  std::cout << "=== bench_grad_step: data-parallel DQN gradient step ("
            << timed_steps << " steps, batch " << bench_config().batch_size
            << ", block " << nn::kGradBlockRows << " rows) ===\n";

  std::vector<Sample> samples;
  std::vector<std::uint8_t> reference_state;
  bool identical = true;
  for (const std::size_t threads : thread_counts) {
    rl::DqnAgent agent(bench_config());
    agent.set_learner_threads(threads);
    fill_replay(agent, 4096);

    for (std::size_t i = 0; i < warmup_steps; ++i) (void)agent.train_step();
    const double before = agent.grad_seconds();
    for (std::size_t i = 0; i < timed_steps; ++i) (void)agent.train_step();
    const double seconds = agent.grad_seconds() - before;

    Sample sample;
    sample.learner_threads = threads;
    sample.us_per_step = seconds * 1e6 / static_cast<double>(timed_steps);
    sample.steps_per_s = seconds > 0.0 ? static_cast<double>(timed_steps) / seconds : 0.0;
    samples.push_back(sample);

    // Identical seeds + identical step count ⇒ the full learner state
    // (weights, optimizer moments, replay, RNG) must be byte-equal.
    const auto state = learner_state_bytes(agent);
    if (reference_state.empty()) {
      reference_state = state;
    } else if (state != reference_state) {
      identical = false;
    }
    std::cout << "  learner_threads=" << threads << ": " << sample.us_per_step
              << " us/step (" << sample.steps_per_s << " steps/s)\n";
  }

  const double speedup =
      samples.back().us_per_step > 0.0
          ? samples.front().us_per_step / samples.back().us_per_step
          : 0.0;
  const unsigned cores = std::thread::hardware_concurrency();
  // Scaling gate: with >= 4 real cores the engine must not regress under
  // 4 learner threads (the inline blocks<workers fallback plus the single
  // wake per phased grad step exist precisely to keep this true).
  const bool gate_active = cores >= 4;
  const bool scaling_ok = !gate_active || speedup >= 1.0;
  std::cout << "speedup 4 vs 1 learner threads: " << speedup << "x on " << cores
            << " hardware core(s)"
            << (cores < 4 ? " (parallel gain needs >= 4 cores)" : "") << "\n";
  std::cout << "simd path: " << nn::to_string(nn::matmul_simd_path()) << "\n";
  std::cout << "learner state bit-identical across thread counts: "
            << (identical ? "yes" : "NO — DETERMINISM BUG") << "\n";
  if (gate_active)
    std::cout << "4-thread >= 1-thread gate: " << (scaling_ok ? "pass" : "FAIL — REGRESSION")
              << "\n";

  std::ofstream json("BENCH_grad_step.json");
  json << "{\n  \"batch_size\": " << bench_config().batch_size
       << ",\n  \"block_rows\": " << nn::kGradBlockRows
       << ",\n  \"hardware_cores\": " << cores
       << ",\n  \"simd\": \"" << nn::to_string(nn::matmul_simd_path()) << "\""
       << ",\n  \"timed_steps\": " << timed_steps << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    json << "    {\"learner_threads\": " << samples[i].learner_threads
         << ", \"us_per_step\": " << samples[i].us_per_step
         << ", \"steps_per_s\": " << samples[i].steps_per_s << "}"
         << (i + 1 < samples.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"speedup_4_vs_1\": " << speedup
       << ",\n  \"four_vs_one_gate\": \""
       << (gate_active ? (scaling_ok ? "pass" : "fail") : "skipped")
       << "\",\n  \"bit_identical\": " << (identical ? "true" : "false") << "\n}\n";
  std::cout << "JSON written to BENCH_grad_step.json\n";
  return identical && scaling_ok ? 0 : 1;
}
