// Environment-step bench: decision latency and throughput of the three
// feature-builder modes as the cluster grows from 50 to 10k nodes.
//
//   dense        — the legacy O(nodes) reference scan (dense_features=1)
//   incremental  — the default O(1)-amortised cached queries (still O(nodes)
//                  row writes, but no per-node capacity scans)
//   pruned       — candidate-set pruning (candidate_k=32): fixed-width
//                  layout, O(dirty + k) per decision
//
// dense and incremental run the identical action stream and must produce
// bit-identical features, masks, and episode accounting at every node count
// (determinism invariant #10) — any divergence exits 1, which CI gates on.
// Emits BENCH_env_step.json with env-step microseconds and decisions/s per
// (nodes, mode) cell plus the 10k-node speedup over dense.
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "support.hpp"

using namespace vnfm;

namespace {

struct ModeResult {
  std::string mode;
  std::size_t nodes = 0;
  std::size_t decisions = 0;
  double env_step_us = 0.0;
  double decisions_per_s = 0.0;
  std::uint64_t digest = 0;  ///< FNV-1a over every decision's features+mask
  std::size_t accepted = 0;
  double total_cost = 0.0;
};

/// FNV-1a over raw bytes, chained across calls.
void mix_bytes(std::uint64_t& hash, const void* data, std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001B3ULL;
  }
}

core::EnvOptions options_for(std::size_t nodes, const std::string& mode) {
  const std::string base = nodes >= 10'000 ? "large-scale-10k" : "large-scale-1k";
  Config overrides{{"nodes", std::to_string(nodes)}, {"seed", "1"}};
  if (mode == "dense") {
    overrides.set("dense_features", "1");
    overrides.set("candidate_k", "0");
  } else if (mode == "incremental") {
    overrides.set("dense_features", "0");
    overrides.set("candidate_k", "0");
  }  // "pruned" keeps the base's candidate_k=32
  return bench::scenario_options(base, overrides);
}

/// Runs `requests` chains with a seeded random-valid-action policy; dense and
/// incremental see identical masks, so the shared seed yields the identical
/// action stream and their digests are directly comparable.
ModeResult run_mode(std::size_t nodes, const std::string& mode, std::size_t requests) {
  ModeResult result;
  result.mode = mode;
  result.nodes = nodes;
  core::VnfEnv env(options_for(nodes, mode));
  env.reset(1);
  Rng rng(99);
  std::uint64_t digest = 0xCBF29CE484222325ULL;
  std::vector<int> valid;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < requests; ++r) {
    if (!env.begin_next_request()) break;
    core::StepResult step;
    do {
      const auto features = env.features();
      const auto& mask = env.action_mask();
      mix_bytes(digest, features.data(), features.size() * sizeof(float));
      mix_bytes(digest, mask.data(), mask.size());
      valid.clear();
      for (std::size_t a = 0; a < mask.size(); ++a)
        if (mask[a]) valid.push_back(static_cast<int>(a));
      step = env.step(valid[rng.uniform_index(valid.size())]);
      ++result.decisions;
    } while (!step.chain_done);
  }
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  result.env_step_us = elapsed.count() * 1e6 / static_cast<double>(result.decisions);
  result.decisions_per_s = static_cast<double>(result.decisions) / elapsed.count();
  result.digest = digest;
  result.accepted = env.metrics().accepted();
  result.total_cost = env.metrics().total_cost();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  const bool full = std::getenv("REPRO_FULL") != nullptr;
  const std::vector<std::size_t> node_counts{50, 200, 1'000, 10'000};
  const std::vector<std::string> modes{"dense", "incremental", "pruned"};

  std::cout << "=== bench_env_step: env decision latency vs cluster scale ===\n\n";

  std::vector<ModeResult> results;
  bool bit_identical = true;
  for (const std::size_t nodes : node_counts) {
    // Fewer chains at 10k: the dense reference alone dominates wall-clock.
    const std::size_t requests =
        full ? (nodes >= 10'000 ? 200 : 400) : (nodes >= 10'000 ? 60 : 150);
    const ModeResult* dense = nullptr;
    for (const std::string& mode : modes) {
      results.push_back(run_mode(nodes, mode, requests));
      const ModeResult& row = results.back();
      std::cout << "  nodes=" << nodes << " mode=" << row.mode << ": "
                << row.decisions << " decisions, " << row.env_step_us
                << " us/step, " << row.decisions_per_s << " decisions/s\n";
      if (row.mode == "dense") dense = &row;
      if (row.mode == "incremental" && dense != nullptr) {
        // Invariant #10, at scale: identical digests AND identical accounting.
        if (row.digest != dense->digest || row.accepted != dense->accepted ||
            row.total_cost != dense->total_cost) {
          bit_identical = false;
          std::cout << "  DIVERGENCE at " << nodes
                    << " nodes: incremental != dense (digest "
                    << row.digest << " vs " << dense->digest << ")\n";
        }
      }
    }
  }

  // Headline: decisions/s at 10k nodes relative to the dense reference.
  double dense_10k = 0.0, incremental_10k = 0.0, pruned_10k = 0.0;
  for (const ModeResult& row : results) {
    if (row.nodes != 10'000) continue;
    if (row.mode == "dense") dense_10k = row.decisions_per_s;
    if (row.mode == "incremental") incremental_10k = row.decisions_per_s;
    if (row.mode == "pruned") pruned_10k = row.decisions_per_s;
  }
  const double speedup_incremental = incremental_10k / dense_10k;
  const double speedup_pruned = pruned_10k / dense_10k;
  std::cout << "\n10k-node speedup vs dense: incremental " << speedup_incremental
            << "x, incremental+pruned " << speedup_pruned << "x\n";
  std::cout << "dense vs incremental bit-identical at all node counts: "
            << (bit_identical ? "yes" : "NO — DETERMINISM BUG") << "\n";

  std::ofstream json("BENCH_env_step.json");
  json << "{\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ModeResult& row = results[i];
    json << "    {\"nodes\": " << row.nodes << ", \"mode\": \"" << row.mode
         << "\", \"decisions\": " << row.decisions
         << ", \"env_step_us\": " << row.env_step_us
         << ", \"decisions_per_s\": " << row.decisions_per_s
         << ", \"accepted\": " << row.accepted << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"speedup_10k_incremental\": " << speedup_incremental
       << ",\n  \"speedup_10k_pruned\": " << speedup_pruned
       << ",\n  \"bit_identical\": " << (bit_identical ? "true" : "false")
       << "\n}\n";
  std::cout << "JSON written to BENCH_env_step.json\n";
  return bit_identical ? 0 : 1;
}
