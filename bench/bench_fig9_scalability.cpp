// Figure 9 — scalability: cost per request and mean latency as the number of
// geo-distributed edge nodes grows at constant per-node load. Paper-shape
// claim: more nodes give every policy more placement freedom (lower latency),
// and the DRL manager's advantage persists as the action space grows.
//
// DQN training runs through the actor-learner TrainDriver pipeline; the
// bench reports per-size training throughput (steps/s) so hot-path
// regressions in the nn/rl layers are visible next to the paper metrics.
#include <iostream>

#include "common/csv.hpp"
#include "common/config.hpp"
#include "common/table.hpp"
#include "support.hpp"

using namespace vnfm;

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  const bench::Scale scale = bench::Scale::resolve();
  const std::vector<std::size_t> node_counts =
      full_run_requested() ? std::vector<std::size_t>{4, 6, 8, 12, 16}
                           : std::vector<std::size_t>{4, 8, 12};
  const double per_node_rate = 0.3;

  std::cout << "=== Figure 9: scalability over node count (rate "
            << per_node_rate << "/s per node) ===\n\n";

  AsciiTable table({"nodes", "dqn_cost", "myopic_cost", "greedy_cost", "dqn_lat_ms",
                    "myopic_lat_ms", "greedy_lat_ms"});
  CsvWriter csv(bench::csv_path("fig9_scalability"),
                {"nodes", "dqn_cost", "myopic_cost", "greedy_cost", "dqn_lat_ms",
                 "myopic_lat_ms", "greedy_lat_ms"});

  auto& registry = exp::ManagerRegistry::instance();
  for (const std::size_t nodes : node_counts) {
    const double rate = per_node_rate * static_cast<double>(nodes);
    core::VnfEnv env(bench::make_env_options(rate, nodes));
    core::TrainStats train_stats;
    // Per-node-count checkpoint label: each sweep point resumes on its own.
    auto dqn = bench::train_policy(env, scale, "dqn", {}, &train_stats,
                                   "dqn_n" + std::to_string(nodes));
    std::cout << nodes << " nodes: trained " << train_stats.transitions
              << " transitions in " << train_stats.wall_seconds << " s ("
              << train_stats.steps_per_second() << " steps/s, "
              << train_stats.actor_threads << " actor thread(s))\n";
    const auto myopic = registry.create("myopic_cost", env);
    const auto greedy = registry.create("greedy_latency", env);
    const auto dqn_r = bench::evaluate_policy(env, *dqn, scale);
    const auto myo_r = bench::evaluate_policy(env, *myopic, scale);
    const auto gre_r = bench::evaluate_policy(env, *greedy, scale);
    const std::vector<double> row{
        static_cast<double>(nodes), dqn_r.cost_per_request, myo_r.cost_per_request,
        gre_r.cost_per_request,     dqn_r.mean_latency_ms,  myo_r.mean_latency_ms,
        gre_r.mean_latency_ms};
    table.add_row(std::to_string(nodes), {row.begin() + 1, row.end()});
    csv.row(row);
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nCSV written to " << csv.path() << "\n";
  return 0;
}
