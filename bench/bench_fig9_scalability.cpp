// Figure 9 — scalability: cost per request and mean latency as the number of
// geo-distributed edge nodes grows at constant per-node load. Paper-shape
// claim: more nodes give every policy more placement freedom (lower latency),
// and the DRL manager's advantage persists as the action space grows.
//
// Node counts above the 16-metro list come from the large-scale-1k scenario
// base (synthetic metro-anchored sites, candidate-set pruning on), so one
// binary sweeps from the paper's 4-node setup to 1000 nodes. Each sweep
// point also reports the raw environment decision latency (env_step_us,
// random-valid-action policy) next to the paper metrics, so hot-path
// regressions in the simulator are visible independently of the nn/rl stack.
//
// DQN training runs through the actor-learner TrainDriver pipeline; the
// bench reports per-size training throughput (steps/s) so hot-path
// regressions in the nn/rl layers are visible next to the paper metrics.
#include <chrono>
#include <iostream>
#include <vector>

#include "common/csv.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "support.hpp"

using namespace vnfm;

namespace {

core::EnvOptions sweep_env_options(std::size_t nodes, double rate) {
  // The legacy base covers the paper's metro list; beyond it the
  // large-scale base supplies synthetic sites and the pruned action layout.
  if (nodes <= edgesim::world_metro_count())
    return bench::make_env_options(rate, nodes);
  return bench::scenario_options(
      "large-scale-1k", Config{{"nodes", std::to_string(nodes)},
                               {"arrival_rate", bench::to_config_value(rate)},
                               {"seed", "1"}});
}

/// Mean env-step decision latency (µs) under a random-valid-action policy.
double measure_env_step_us(const core::EnvOptions& options, std::size_t requests) {
  core::VnfEnv env(options);
  env.reset(1);
  Rng rng(99);
  std::vector<int> valid;
  std::size_t decisions = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < requests; ++r) {
    if (!env.begin_next_request()) break;
    core::StepResult step;
    do {
      const auto& mask = env.action_mask();
      valid.clear();
      for (std::size_t a = 0; a < mask.size(); ++a)
        if (mask[a]) valid.push_back(static_cast<int>(a));
      step = env.step(valid[rng.uniform_index(valid.size())]);
      ++decisions;
    } while (!step.chain_done);
  }
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  return elapsed.count() * 1e6 / static_cast<double>(decisions);
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  const bench::Scale scale = bench::Scale::resolve();
  const std::vector<std::size_t> node_counts =
      full_run_requested() ? std::vector<std::size_t>{4, 8, 16, 50, 200, 1000}
                           : std::vector<std::size_t>{4, 8, 16, 50};
  const double per_node_rate = 0.3;

  std::cout << "=== Figure 9: scalability over node count (rate "
            << per_node_rate << "/s per node) ===\n\n";

  AsciiTable table({"nodes", "dqn_cost", "myopic_cost", "greedy_cost", "dqn_lat_ms",
                    "myopic_lat_ms", "greedy_lat_ms", "env_step_us"});
  CsvWriter csv(bench::csv_path("fig9_scalability"),
                {"nodes", "dqn_cost", "myopic_cost", "greedy_cost", "dqn_lat_ms",
                 "myopic_lat_ms", "greedy_lat_ms", "env_step_us"});

  auto& registry = exp::ManagerRegistry::instance();
  for (const std::size_t nodes : node_counts) {
    const double rate = per_node_rate * static_cast<double>(nodes);
    const core::EnvOptions env_options = sweep_env_options(nodes, rate);
    const double env_step_us = measure_env_step_us(env_options, 100);
    core::VnfEnv env(env_options);
    core::TrainStats train_stats;
    // Per-node-count checkpoint label: each sweep point resumes on its own.
    auto dqn = bench::train_policy(env, scale, "dqn", {}, &train_stats,
                                   "dqn_n" + std::to_string(nodes));
    std::cout << nodes << " nodes: trained " << train_stats.transitions
              << " transitions in " << train_stats.wall_seconds << " s ("
              << train_stats.steps_per_second() << " steps/s, "
              << train_stats.actor_threads << " actor thread(s)), env step "
              << env_step_us << " us\n";
    const auto myopic = registry.create("myopic_cost", env);
    const auto greedy = registry.create("greedy_latency", env);
    const auto dqn_r = bench::evaluate_policy(env, *dqn, scale);
    const auto myo_r = bench::evaluate_policy(env, *myopic, scale);
    const auto gre_r = bench::evaluate_policy(env, *greedy, scale);
    const std::vector<double> row{
        static_cast<double>(nodes), dqn_r.cost_per_request, myo_r.cost_per_request,
        gre_r.cost_per_request,     dqn_r.mean_latency_ms,  myo_r.mean_latency_ms,
        gre_r.mean_latency_ms,      env_step_us};
    table.add_row(std::to_string(nodes), {row.begin() + 1, row.end()});
    csv.row(row);
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nCSV written to " << csv.path() << "\n";
  return 0;
}
