// Shared experiment plumbing for the figure/table reproduction binaries.
//
// Every bench binary prints an ASCII table (the paper's rows/series) and
// writes a CSV next to the working directory. Default sizes finish in
// seconds; set REPRO_FULL=1 for paper-scale runs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/drl_manager.hpp"
#include "core/environment.hpp"
#include "core/heuristics.hpp"
#include "core/runner.hpp"

namespace vnfm::bench {

/// Experiment scale knobs, resolved from REPRO_FULL.
struct Scale {
  std::size_t train_episodes;
  double train_duration_s;
  double eval_duration_s;
  std::size_t eval_repeats;

  static Scale quick() { return {8, 500.0, 500.0, 2}; }
  static Scale full() { return {60, 3600.0, 3600.0, 5}; }
  static Scale resolve();
};

/// Standard environment for the evaluation: 8 geo-distributed nodes unless
/// overridden, diurnal traffic on.
core::EnvOptions make_env_options(double arrival_rate, std::size_t nodes = 8,
                                  std::uint64_t seed = 1);

/// Trains a fresh DQN manager on `env` and returns it ready for evaluation.
std::unique_ptr<core::DqnManager> train_dqn(core::VnfEnv& env, const Scale& scale,
                                            rl::DqnConfig config, const std::string& name);

/// Default evaluation options derived from the scale.
core::EpisodeOptions eval_options(const Scale& scale);

/// One evaluated policy row.
struct PolicyRow {
  std::string policy;
  core::EpisodeResult result;
};

/// Evaluates the full baseline zoo (greedy/myopic/first-fit/static/random)
/// on `env`; the caller adds learning managers separately.
std::vector<PolicyRow> evaluate_baselines(core::VnfEnv& env, const Scale& scale);

/// Output path helper: "<name>.csv" in the current working directory.
std::string csv_path(const std::string& bench_name);

/// One arrival-rate point of the load sweep: the trained DQN plus baselines.
struct SweepRow {
  double arrival_rate = 0.0;
  std::vector<PolicyRow> policies;  ///< first entry is the DQN
};

/// The arrival-rate sweep behind Figures 4-6: trains a DQN per rate, then
/// evaluates it against the baseline zoo on held-out seeds.
std::vector<SweepRow> run_load_sweep(const std::vector<double>& rates, const Scale& scale);

/// Default sweep rates for the current scale.
std::vector<double> sweep_rates(const Scale& scale);

}  // namespace vnfm::bench
