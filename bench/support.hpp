// Shared experiment plumbing for the figure/table reproduction binaries.
//
// Every bench binary prints an ASCII table (the paper's rows/series) and
// writes a CSV next to the working directory. Default sizes finish in
// seconds; set REPRO_FULL=1 for paper-scale runs.
//
// All environments and managers are built through the exp:: experiment API
// (ScenarioCatalog / ManagerRegistry / Experiment) — bench binaries never
// hand-wire EnvOptions or manager constructors.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/environment.hpp"
#include "core/manager.hpp"
#include "core/runner.hpp"
#include "core/train_driver.hpp"
#include "exp/experiment.hpp"
#include "exp/registry.hpp"
#include "exp/report_io.hpp"
#include "exp/scenario.hpp"

namespace vnfm::bench {

/// Experiment scale knobs, resolved from REPRO_FULL.
struct Scale {
  std::size_t train_episodes;
  double train_duration_s;
  double eval_duration_s;
  std::size_t eval_repeats;

  static Scale quick() { return {8, 500.0, 500.0, 2}; }
  static Scale full() { return {60, 3600.0, 3600.0, 5}; }
  static Scale resolve();
};

/// Formats a double as a Config override value (round-trip precision).
std::string to_config_value(double value);

/// Standard bench command-line entry point: handles --list-scenarios (prints
/// the scenario/overlay catalog and composition grammar, then exits) and
/// returns the remaining key=value tokens as a Config.
Config parse_args(int argc, const char* const* argv);

/// The scenario (composition expression) bench binaries run: the
/// REPRO_SCENARIO environment variable, defaulting to "geo-distributed".
/// Composed expressions work everywhere, e.g.
///   REPRO_SCENARIO=geo-distributed+flash-crowd+node-failure ./bench_table2_summary
std::string default_scenario();

/// EnvOptions from the scenario catalog; `scenario` may be a composition
/// expression ("<base>[+<overlay>...]"). The REPRO_TOPOLOGY environment
/// variable injects a `topology` override (network model: "constant",
/// "two-tier-edge", "fat-tree-k<k>") unless the Config already sets one.
core::EnvOptions scenario_options(const std::string& scenario,
                                  const Config& overrides = {});

/// The standard evaluation environment at an arrival rate: default_scenario()
/// with rate/nodes/seed overrides.
core::EnvOptions make_env_options(double arrival_rate, std::size_t nodes = 8,
                                  std::uint64_t seed = 1);

/// Actor threads for the training pipeline (core::TrainDriver): the
/// REPRO_TRAIN_THREADS environment variable, defaulting to 0 = hardware
/// concurrency. The pipeline is thread-count-invariant, so this only moves
/// wall-clock, never results.
std::size_t train_threads();

/// Learner-side workers for the data-parallel minibatch gradient engine
/// (nn::GradWorkPool): the REPRO_LEARNER_THREADS environment variable,
/// defaulting to 0 = hardware concurrency. Like actor threads, bit-identical
/// at any value — it moves gradient-step wall-clock only.
std::size_t learner_threads();

/// Extra serving shard count for bench_serve's sweep grid: the
/// REPRO_SERVE_SHARDS environment variable, defaulting to 0 = hardware
/// concurrency. Appended to the bench's fixed 1/2/4 invariance grid; the
/// serving engine is shard-count-invariant on its deterministic stats, so
/// this only moves throughput/latency, never decisions.
std::size_t serve_shards();

/// Micro-batch ceiling for the serving engine (ServeOptions::batch_max):
/// the REPRO_SERVE_BATCH_MAX environment variable, defaulting to 8.
/// Batching is decision-invariant — any value changes wall-clock only.
std::size_t serve_batch_max();

/// Arrival pacing preset for the serving engine (ServeOptions::time_scale):
/// the REPRO_SERVE_TIME_SCALE environment variable — simulated seconds that
/// elapse per wall-clock second in the load generator. 0 (the default) keeps
/// the throttle open (throughput benching); a positive value makes
/// bench_serve add a closed-loop paced cell whose latency percentiles
/// reflect steady-state arrivals instead of a saturated queue. Pacing is
/// decision-invariant: the paced cell's deterministic stats must stay
/// bit-identical to the unpaced grid.
double serve_time_scale();

/// Base directory for resumable training checkpoints: the
/// REPRO_CHECKPOINT_DIR environment variable ("" = checkpointing off). Each
/// training run writes under "<dir>/<bench binary>/<scenario>/<label>" so
/// different benches, scenarios, and policies never resume each other's
/// archives.
std::string checkpoint_dir();

/// Checkpoint cadence in completed episodes: REPRO_CHECKPOINT_EVERY
/// (default 8; pipeline runs align writes to sync-period round boundaries).
std::size_t checkpoint_every();

/// True when REPRO_RESUME is set non-empty: training continues from the
/// newest archive in the run's checkpoint directory instead of episode 0
/// (bit-identical to never having been interrupted — see docs/REPRODUCING.md).
bool resume_requested();

/// Trains `experiment` up to `total_episodes` *total* episodes under the
/// REPRO_CHECKPOINT_DIR / REPRO_RESUME policy: periodic checkpoints under
/// the per-label directory, and — when resuming — only the episodes the
/// newest archive is missing actually run. Call after selecting the manager.
void train_resumable(exp::Experiment& experiment, std::size_t total_episodes,
                     const std::string& label);

/// Builds the named registry policy and trains it on `env`'s scenario for
/// the scale's budget through the actor-learner TrainDriver (train_threads()
/// workers; sequential fallback for inline learners); returns it ready for
/// evaluation. When `stats` is non-null the training wall-clock/throughput
/// summary is written there. Honours REPRO_CHECKPOINT_DIR / REPRO_RESUME
/// under `label` (defaulting to `name`); pass distinct labels when one bench
/// trains the same policy several times (e.g. per node count).
std::unique_ptr<core::Manager> train_policy(core::VnfEnv& env, const Scale& scale,
                                            const std::string& name,
                                            const Config& params = {},
                                            core::TrainStats* stats = nullptr,
                                            const std::string& label = "");

/// Default evaluation options derived from the scale.
core::EpisodeOptions eval_options(const Scale& scale);

/// Held-out multi-repeat evaluation of one manager on `env`'s scenario,
/// fanned out over all cores (deterministic; see exp::evaluate_parallel).
/// repeats = 0 uses scale.eval_repeats.
core::EpisodeResult evaluate_policy(core::VnfEnv& env, core::Manager& manager,
                                    const Scale& scale, std::size_t repeats = 0);

/// Same evaluation but returning the full per-seed report (persistable via
/// EvalReport::write_csv / write_json).
exp::EvalReport evaluate_policy_report(core::VnfEnv& env, core::Manager& manager,
                                       const Scale& scale, std::size_t repeats = 0);

/// One evaluated policy row.
struct PolicyRow {
  std::string policy;
  core::EpisodeResult result;
};

/// Registry names of the non-learning baseline zoo, in reporting order.
const std::vector<std::string>& baseline_names();

/// Evaluates the full baseline zoo (myopic/greedy/first-fit/static/random)
/// on `env`; the caller adds learning managers separately.
std::vector<PolicyRow> evaluate_baselines(core::VnfEnv& env, const Scale& scale);

/// Output path helper: "<name>.csv" in the current working directory.
std::string csv_path(const std::string& bench_name);

/// One arrival-rate point of the load sweep: the trained DQN plus baselines.
struct SweepRow {
  double arrival_rate = 0.0;
  std::vector<PolicyRow> policies;  ///< first entry is the DQN
};

/// The arrival-rate sweep behind Figures 4-6: trains a DQN per rate, then
/// evaluates it against the baseline zoo on held-out seeds.
std::vector<SweepRow> run_load_sweep(const std::vector<double>& rates, const Scale& scale);

/// Default sweep rates for the current scale; override from the command line
/// with "rates=1,2,4".
std::vector<double> sweep_rates(const Scale& scale, const Config& config = {});

}  // namespace vnfm::bench
