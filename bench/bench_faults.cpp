// Fault-process bench: effect and determinism of the generative fault
// subsystem (edgesim::FaultModel).
//
// Three sections, two of which are CI gates (non-zero exit on failure):
//
//   impact    — GATE: the same base scenario with and without +mtbf-faults:
//               availability (mean fraction of nodes up sampled at each
//               arrival), chains_killed (must be nonzero under faults — the
//               processes actually bite), and acceptance/cost deltas.
//   threads   — GATE: +mtbf-faults+link-flaps evaluated through
//               exp::evaluate_parallel at 1/2/4 eval threads — every
//               deterministic per-seed stat must be bit-identical across
//               thread counts (determinism invariant #12).
//   stream    — GATE: two models built from identical (topology, seed,
//               options) must emit byte-identical event streams; a third
//               with a different fault_seed must diverge.
//
// Knobs: REPRO_FAULT_MTBF_S / REPRO_FAULT_MTTR_S / REPRO_FAULT_SEED override
// the overlay's mtbf_s / mttr_s / fault_seed; REPRO_FULL lengthens episodes.
// Emits BENCH_faults.json for CI artifact tracking.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/heuristics.hpp"
#include "edgesim/fault_model.hpp"
#include "support.hpp"

using namespace vnfm;

namespace {

/// FNV-1a over raw bytes, chained across calls.
void mix_bytes(std::uint64_t& hash, const void* data, std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001B3ULL;
  }
}

std::string env_or(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0' ? std::string(value) : fallback;
}

struct Rollout {
  std::uint64_t digest = 0xCBF29CE484222325ULL;
  std::size_t decisions = 0;
  std::size_t accepted = 0;
  std::size_t arrivals = 0;
  std::size_t chains_killed = 0;
  std::uint64_t fault_events = 0;
  double total_cost = 0.0;
  double availability = 1.0;  ///< mean up-fraction sampled at each arrival
};

/// Seeded random-valid-action rollout mixing features, masks, and rewards
/// into a digest, sampling node availability at every arrival.
Rollout run_rollout(core::VnfEnv& env, std::uint64_t episode_seed,
                    std::size_t requests) {
  Rollout out;
  env.reset(episode_seed);
  Rng rng(99);
  std::vector<int> valid;
  const std::size_t n = env.topology().node_count();
  double up_fraction_sum = 0.0;
  for (std::size_t r = 0; r < requests; ++r) {
    if (!env.begin_next_request()) break;
    ++out.arrivals;
    std::size_t up = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (!env.cluster().node_failed(edgesim::NodeId{static_cast<std::uint32_t>(i)}))
        ++up;
    up_fraction_sum += static_cast<double>(up) / static_cast<double>(n);
    core::StepResult step;
    do {
      const auto features = env.features();
      const auto& mask = env.action_mask();
      mix_bytes(out.digest, features.data(), features.size() * sizeof(float));
      mix_bytes(out.digest, mask.data(), mask.size());
      valid.clear();
      for (std::size_t a = 0; a < mask.size(); ++a)
        if (mask[a]) valid.push_back(static_cast<int>(a));
      step = env.step(valid[rng.uniform_index(valid.size())]);
      mix_bytes(out.digest, &step.reward, sizeof(step.reward));
      ++out.decisions;
    } while (!step.chain_done);
  }
  out.accepted = env.metrics().accepted();
  out.chains_killed = env.metrics().chains_killed();
  out.fault_events = env.fault_events_applied();
  out.total_cost = env.metrics().total_cost();
  if (out.arrivals > 0)
    out.availability = up_fraction_sum / static_cast<double>(out.arrivals);
  return out;
}

/// Bit-exact equality of every deterministic EpisodeResult field.
bool result_bits_equal(const core::EpisodeResult& a, const core::EpisodeResult& b) {
  const auto eq = [](double x, double y) {
    return std::memcmp(&x, &y, sizeof(double)) == 0;
  };
  return eq(a.total_reward, b.total_reward) && a.requests == b.requests &&
         eq(a.cost_per_request, b.cost_per_request) && eq(a.total_cost, b.total_cost) &&
         eq(a.acceptance_ratio, b.acceptance_ratio) &&
         eq(a.mean_latency_ms, b.mean_latency_ms) &&
         eq(a.p95_latency_ms, b.p95_latency_ms) &&
         eq(a.sla_violation_ratio, b.sla_violation_ratio) &&
         eq(a.mean_utilization, b.mean_utilization) &&
         a.deployments == b.deployments && eq(a.running_cost, b.running_cost) &&
         eq(a.revenue, b.revenue);
}

/// Digest of one drained fault-event stream (full ScheduledEvent payloads).
std::uint64_t stream_digest(const std::vector<edgesim::ScheduledEvent>& events) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const edgesim::ScheduledEvent& event : events) {
    mix_bytes(hash, &event.time_s, sizeof(event.time_s));
    mix_bytes(hash, &event.kind, sizeof(event.kind));
    mix_bytes(hash, &event.node, sizeof(event.node));
    mix_bytes(hash, &event.factor, sizeof(event.factor));
  }
  return hash;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  const bool full = std::getenv("REPRO_FULL") != nullptr;

  // Aggressive defaults so the short bench episode (~20 simulated minutes)
  // still sees multiple failures: mean node up-time 10 minutes, repair 5.
  const std::string mtbf_s = env_or("REPRO_FAULT_MTBF_S", "600");
  const std::string mttr_s = env_or("REPRO_FAULT_MTTR_S", "300");
  const std::string fault_seed = env_or("REPRO_FAULT_SEED", "0");
  const Config fault_overrides{
      {"mtbf_s", mtbf_s}, {"mttr_s", mttr_s}, {"fault_seed", fault_seed}, {"seed", "1"}};

  std::cout << "=== bench_faults: generative fault processes ===\n"
            << "mtbf_s=" << mtbf_s << " mttr_s=" << mttr_s
            << " fault_seed=" << fault_seed << "\n\n";

  // ---- Gate 1: fault impact vs the fault-free control ----------------------
  const std::size_t impact_requests = full ? 8'000 : 2'500;
  core::VnfEnv clean_env(
      exp::ScenarioCatalog::instance().build("geo-distributed", Config{{"seed", "1"}}));
  core::VnfEnv faulty_env(exp::ScenarioCatalog::instance().build(
      "geo-distributed+mtbf-faults", fault_overrides));
  const Rollout clean = run_rollout(clean_env, 7, impact_requests);
  const Rollout faulty = run_rollout(faulty_env, 7, impact_requests);
  const bool impact_ok = faulty.chains_killed > 0 && faulty.fault_events > 0;
  const double cost_delta = faulty.total_cost - clean.total_cost;
  std::cout << "[impact] geo-distributed, " << impact_requests << " requests\n"
            << "  fault-free: availability=1 accepted=" << clean.accepted
            << " cost=" << clean.total_cost << "\n"
            << "  +mtbf-faults: availability=" << faulty.availability
            << " accepted=" << faulty.accepted << " cost=" << faulty.total_cost
            << " chains_killed=" << faulty.chains_killed
            << " fault_events=" << faulty.fault_events << "\n"
            << "  cost delta=" << cost_delta << " -> "
            << (impact_ok ? "faults bite" : "NO FAULTS OBSERVED (gate fails)") << "\n";

  // ---- Gate 2: eval-thread-count bit-identity ------------------------------
  const core::EnvOptions thread_options = exp::ScenarioCatalog::instance().build(
      "geo-distributed+mtbf-faults+link-flaps", fault_overrides);
  core::EpisodeOptions episode;
  episode.duration_s = full ? 7'200.0 : 1'800.0;
  episode.training = false;
  episode.seed = 1;
  core::GreedyLatencyManager greedy;
  const std::size_t repeats = 4;
  std::vector<exp::EvalReport> reports;
  for (const std::size_t threads : {1U, 2U, 4U})
    reports.push_back(
        exp::evaluate_parallel(thread_options, greedy, episode, repeats, threads));
  bool threads_ok = true;
  for (std::size_t t = 1; t < reports.size(); ++t)
    for (std::size_t s = 0; s < repeats; ++s)
      threads_ok = threads_ok &&
                   result_bits_equal(reports[0].per_seed[s], reports[t].per_seed[s]);
  std::cout << "\n[threads] +mtbf-faults+link-flaps at 1/2/4 eval threads: "
            << (threads_ok ? "bit-identical" : "DIVERGED (gate fails)") << "\n";

  // ---- Gate 3: stream determinism ------------------------------------------
  const edgesim::Topology topology = clean_env.topology();
  const edgesim::FaultContext context{.seed = 42, .rack_size = 4};
  const edgesim::FaultContext other_context{.seed = 42, .rack_size = 4};
  edgesim::MtbfFaultOptions stream_options;
  auto model_a = edgesim::mtbf_fault_factory(stream_options)(topology, context);
  auto model_b = edgesim::mtbf_fault_factory(stream_options)(topology, other_context);
  edgesim::MtbfFaultOptions reseeded = stream_options;
  reseeded.fault_seed = 1;
  auto model_c = edgesim::mtbf_fault_factory(reseeded)(topology, context);
  const double horizon = 7.0 * 86'400.0;
  const std::uint64_t digest_a =
      stream_digest(edgesim::drain_fault_stream(*model_a, horizon, 10'000));
  const std::uint64_t digest_b =
      stream_digest(edgesim::drain_fault_stream(*model_b, horizon, 10'000));
  const std::uint64_t digest_c =
      stream_digest(edgesim::drain_fault_stream(*model_c, horizon, 10'000));
  const bool stream_ok = digest_a == digest_b && digest_a != digest_c;
  std::cout << "[stream] same-seed streams " << (digest_a == digest_b ? "match" : "DIVERGED")
            << ", reseeded stream "
            << (digest_a != digest_c ? "differs" : "COLLIDED") << "\n";

  std::ofstream json("BENCH_faults.json");
  json << "{\n  \"mtbf_s\": " << mtbf_s << ",\n  \"mttr_s\": " << mttr_s
       << ",\n  \"fault_seed\": " << fault_seed
       << ",\n  \"impact\": {\"availability\": " << faulty.availability
       << ", \"chains_killed\": " << faulty.chains_killed
       << ", \"fault_events\": " << faulty.fault_events
       << ", \"clean_accepted\": " << clean.accepted
       << ", \"faulty_accepted\": " << faulty.accepted
       << ", \"clean_cost\": " << clean.total_cost
       << ", \"faulty_cost\": " << faulty.total_cost
       << ", \"cost_delta\": " << cost_delta << "},\n  \"threads_bit_identical\": "
       << (threads_ok ? "true" : "false")
       << ",\n  \"stream_deterministic\": " << (stream_ok ? "true" : "false")
       << "\n}\n";
  std::cout << "JSON written to BENCH_faults.json\n";

  if (!impact_ok) {
    std::cout << "FAIL: fault processes produced no observable damage\n";
    return 1;
  }
  if (!threads_ok) {
    std::cout << "FAIL: fault-overlay stats diverged across eval thread counts\n";
    return 1;
  }
  if (!stream_ok) {
    std::cout << "FAIL: fault stream determinism violated\n";
    return 1;
  }
  return 0;
}
