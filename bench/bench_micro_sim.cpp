// Microbenchmarks for the simulator hot path: workload generation, chain
// placement/commit, environment step + featurisation, and replay sampling.
#include <benchmark/benchmark.h>

#include "common/config.hpp"
#include "core/environment.hpp"
#include "exp/registry.hpp"
#include "exp/scenario.hpp"
#include "rl/replay.hpp"

namespace {

using namespace vnfm;

void BM_WorkloadNext(benchmark::State& state) {
  const auto topo = edgesim::make_world_topology({.node_count = 8});
  const auto vnfs = edgesim::VnfCatalog::standard();
  const auto sfcs = edgesim::SfcCatalog::standard(vnfs);
  edgesim::PoissonDiurnalModel gen(topo, sfcs, {.global_arrival_rate = 5.0, .seed = 1});
  edgesim::SimTime now = 0.0;
  for (auto _ : state) {
    const auto request = gen.next(now);
    now = request.arrival_time;
    benchmark::DoNotOptimize(request.rate_rps);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkloadNext);

void BM_ChainPlaceCommitExpire(benchmark::State& state) {
  const auto topo = edgesim::make_world_topology({.node_count = 8});
  const auto vnfs = edgesim::VnfCatalog::standard();
  const auto sfcs = edgesim::SfcCatalog::standard(vnfs);
  edgesim::ClusterState cluster(topo, vnfs, sfcs, {});
  edgesim::PoissonDiurnalModel gen(topo, sfcs, {.global_arrival_rate = 5.0, .seed = 2});
  edgesim::SimTime now = 0.0;
  for (auto _ : state) {
    auto request = gen.next(now);
    request.duration_s = 30.0;
    now = request.arrival_time;
    cluster.advance_to(now);
    cluster.start_chain(request);
    bool ok = true;
    while (ok && !cluster.pending_complete()) {
      const auto type = cluster.pending_vnf_type();
      ok = false;
      for (const auto& node : topo.nodes()) {
        if (cluster.can_serve(node.id, type, request.rate_rps)) {
          cluster.place_next(node.id);
          ok = true;
          break;
        }
      }
    }
    if (ok) {
      benchmark::DoNotOptimize(cluster.commit_chain().latency_ms);
    } else {
      cluster.abort_chain();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChainPlaceCommitExpire);

void BM_EnvStepWithFeaturization(benchmark::State& state) {
  core::VnfEnv env(vnfm::exp::ScenarioCatalog::instance().build(
      "geo-distributed", vnfm::Config{{"arrival_rate", "5.0"}}));
  env.reset(1);
  const auto manager =
      vnfm::exp::ManagerRegistry::instance().create("greedy_latency", env);
  for (auto _ : state) {
    if (!env.has_pending_chain()) (void)env.begin_next_request();
    const auto result = env.step(manager->select_action(env));
    benchmark::DoNotOptimize(result.reward);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnvStepWithFeaturization);

void BM_ReplaySampleBatch32(benchmark::State& state) {
  rl::ReplayBuffer buffer(50'000);
  for (int i = 0; i < 50'000; ++i) {
    rl::Transition t;
    t.state.assign(67, 0.1F);
    t.next_state.assign(67, 0.2F);
    buffer.push(std::move(t));
  }
  Rng rng(5);
  for (auto _ : state) {
    auto batch = buffer.sample(32, rng);
    benchmark::DoNotOptimize(batch.data());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_ReplaySampleBatch32);

void BM_PrioritizedReplaySampleBatch32(benchmark::State& state) {
  rl::PrioritizedReplay replay({.capacity = 50'000});
  for (int i = 0; i < 50'000; ++i) {
    rl::Transition t;
    t.state.assign(67, 0.1F);
    t.next_state.assign(67, 0.2F);
    replay.push(std::move(t));
  }
  Rng rng(6);
  for (auto _ : state) {
    auto sample = replay.sample(32, rng);
    benchmark::DoNotOptimize(sample.indices.data());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_PrioritizedReplaySampleBatch32);

}  // namespace
