// Quickstart: the Experiment API end to end — build the geo-distributed edge
// scenario, train the DQN VNF manager for a handful of episodes, compare it
// against the greedy latency baseline on held-out seeds (evaluation fans out
// over all cores, deterministically), then demonstrate checkpoint/resume:
// the trained state is saved, restored into a brand-new experiment, and the
// restored policy must evaluate identically.
//
// Command-line key=value tokens override both the experiment knobs and the
// scenario itself; scenario= accepts composition expressions:
//   ./quickstart [episodes=12] [arrival_rate=2.0] [nodes=8] [threads=0]
//                [train_threads=0] [scenario=geo-distributed+flash-crowd]
//                [checkpoint=/tmp/vnfm_quickstart.vnfmc]
//
// Training uses the actor-learner pipeline (train_threads actor workers,
// 0 = all cores); its results are bit-identical for every thread count.
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "exp/scenario.hpp"

using namespace vnfm;

int main(int argc, char** argv) {
  const Config config = Config::from_args(argc, argv);
  const auto episodes = config.get_size("episodes", 12);

  // The scenario builder rejects unknown keys (to catch override typos), so
  // strip the experiment-only knobs (episodes, threads, ...) before handing
  // the command line over as scenario overrides.
  auto experiment = exp::Experiment::scenario(
      config.get_string("scenario", "geo-distributed"),
      exp::ScenarioCatalog::instance().filter_known_overrides(config));
  experiment.manager("dqn")
      .threads(config.get_size("threads", 0))
      .train_threads(config.get_size("train_threads", 0))
      .train_duration(0.5 * edgesim::kSecondsPerHour)
      .eval_duration(0.5 * edgesim::kSecondsPerHour);

  auto& env = experiment.env();
  std::cout << "Topology: " << env.topology().node_count() << " edge nodes, "
            << env.vnfs().size() << " VNF types, " << env.sfcs().size()
            << " SFC templates\n";

  std::cout << "Training DQN for " << episodes << " episodes ("
            << 0.5 * edgesim::kSecondsPerHour << " sim-seconds each)...\n";
  experiment.train(episodes);
  const auto& curve = experiment.learning_curve();
  if (!curve.empty()) {
    std::cout << "  first-episode reward " << curve.front().total_reward
              << " -> last-episode reward " << curve.back().total_reward << "\n";
  }
  const auto& stats = experiment.train_stats();
  std::cout << "  " << stats.transitions << " transitions in " << stats.wall_seconds
            << " s (" << stats.steps_per_second() << " steps/s, "
            << stats.actor_threads << " actor thread(s))\n\n";

  // Head-to-head evaluation on the same held-out seeds.
  const auto dqn_eval = experiment.evaluate(3).mean;
  auto baseline = exp::Experiment::from_options(experiment.env_options());
  baseline.manager("greedy_latency")
      .threads(config.get_size("threads", 0))
      .eval_duration(0.5 * edgesim::kSecondsPerHour);
  const auto greedy_eval = baseline.evaluate(3).mean;

  AsciiTable table({"policy", "cost/req", "accept%", "mean_lat_ms", "sla_viol%",
                    "deployments"});
  auto add = [&table](const std::string& name, const core::EpisodeResult& r) {
    table.add_row(name, {r.cost_per_request, 100.0 * r.acceptance_ratio,
                         r.mean_latency_ms, 100.0 * r.sla_violation_ratio,
                         static_cast<double>(r.deployments)});
  };
  add("dqn", dqn_eval);
  add("greedy_latency", greedy_eval);
  table.print(std::cout);

  // ---- Checkpoint/resume demo (docs/ARCHITECTURE.md, invariant 5) ---------
  // Save the full training state, restore it into a fresh experiment (as a
  // restarted process would), and verify the restored policy reproduces the
  // evaluation bit-for-bit. Resumed training would likewise continue the
  // learning curve exactly where the archive stopped.
  const std::string ckpt =
      config.get_string("checkpoint", "/tmp/vnfm_quickstart.vnfmc");
  experiment.save_checkpoint(ckpt);
  auto restored = exp::Experiment::scenario(
      config.get_string("scenario", "geo-distributed"),
      exp::ScenarioCatalog::instance().filter_known_overrides(config));
  restored.manager("dqn")
      .threads(config.get_size("threads", 0))
      .eval_duration(0.5 * edgesim::kSecondsPerHour)
      .resume(ckpt);
  const auto restored_eval = restored.evaluate(3).mean;
  const bool identical =
      restored_eval.cost_per_request == dqn_eval.cost_per_request &&
      restored_eval.mean_latency_ms == dqn_eval.mean_latency_ms &&
      restored_eval.acceptance_ratio == dqn_eval.acceptance_ratio;
  std::cout << "\nCheckpoint round-trip via " << ckpt << ": restored policy ("
            << restored.learning_curve().size() << " episodes of history) evaluates "
            << (identical ? "identically" : "DIFFERENTLY — checkpoint bug!") << "\n";
  return identical ? 0 : 1;
}
