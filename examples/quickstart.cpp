// Quickstart: build the geo-distributed edge environment, train the DQN VNF
// manager for a handful of episodes, and compare it against the greedy
// latency baseline.
//
//   ./quickstart [episodes=30] [arrival_rate=2.0] [nodes=8]
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/drl_manager.hpp"
#include "core/heuristics.hpp"
#include "core/runner.hpp"

using namespace vnfm;

int main(int argc, char** argv) {
  const Config config = Config::from_args(argc, argv);
  const int episodes = config.get_int("episodes", 12);
  const double arrival_rate = config.get_double("arrival_rate", 2.0);
  const int nodes = config.get_int("nodes", 8);

  core::EnvOptions options;
  options.topology.node_count = static_cast<std::size_t>(nodes);
  options.workload.global_arrival_rate = arrival_rate;
  options.seed = 1;

  core::VnfEnv env(options);
  std::cout << "Topology: " << env.topology().node_count() << " edge nodes, "
            << env.vnfs().size() << " VNF types, " << env.sfcs().size()
            << " SFC templates\n";

  core::EpisodeOptions episode;
  episode.duration_s = 0.5 * edgesim::kSecondsPerHour;

  // Train the DRL manager.
  core::DqnManager dqn(env, core::default_dqn_config(env));
  std::cout << "Training DQN for " << episodes << " episodes ("
            << episode.duration_s << " sim-seconds each)...\n";
  const auto curve = core::train_manager(env, dqn, static_cast<std::size_t>(episodes),
                                         episode);
  std::cout << "  first-episode reward " << curve.front().total_reward
            << " -> last-episode reward " << curve.back().total_reward << "\n\n";

  // Head-to-head evaluation.
  core::GreedyLatencyManager greedy;
  const auto dqn_eval = core::evaluate_manager(env, dqn, episode);
  const auto greedy_eval = core::evaluate_manager(env, greedy, episode);

  AsciiTable table({"policy", "cost/req", "accept%", "mean_lat_ms", "sla_viol%",
                    "deployments"});
  auto add = [&table](const std::string& name, const core::EpisodeResult& r) {
    table.add_row(name, {r.cost_per_request, 100.0 * r.acceptance_ratio,
                         r.mean_latency_ms, 100.0 * r.sla_violation_ratio,
                         static_cast<double>(r.deployments)});
  };
  add("dqn", dqn_eval);
  add("greedy_latency", greedy_eval);
  table.print(std::cout);
  return 0;
}
