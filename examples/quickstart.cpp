// Quickstart: the Experiment API end to end — build the geo-distributed edge
// scenario, train the DQN VNF manager for a handful of episodes, and compare
// it against the greedy latency baseline on held-out seeds (evaluation fans
// out over all cores, deterministically).
//
// Command-line key=value tokens override both the experiment knobs and the
// scenario itself; scenario= accepts composition expressions:
//   ./quickstart [episodes=12] [arrival_rate=2.0] [nodes=8] [threads=0]
//                [train_threads=0] [scenario=geo-distributed+flash-crowd]
//
// Training uses the actor-learner pipeline (train_threads actor workers,
// 0 = all cores); its results are bit-identical for every thread count.
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "exp/scenario.hpp"

using namespace vnfm;

int main(int argc, char** argv) {
  const Config config = Config::from_args(argc, argv);
  const auto episodes = config.get_size("episodes", 12);

  // The scenario builder rejects unknown keys (to catch override typos), so
  // strip the experiment-only knobs (episodes, threads, ...) before handing
  // the command line over as scenario overrides.
  auto experiment = exp::Experiment::scenario(
      config.get_string("scenario", "geo-distributed"),
      exp::ScenarioCatalog::instance().filter_known_overrides(config));
  experiment.manager("dqn")
      .threads(config.get_size("threads", 0))
      .train_threads(config.get_size("train_threads", 0))
      .train_duration(0.5 * edgesim::kSecondsPerHour)
      .eval_duration(0.5 * edgesim::kSecondsPerHour);

  auto& env = experiment.env();
  std::cout << "Topology: " << env.topology().node_count() << " edge nodes, "
            << env.vnfs().size() << " VNF types, " << env.sfcs().size()
            << " SFC templates\n";

  std::cout << "Training DQN for " << episodes << " episodes ("
            << 0.5 * edgesim::kSecondsPerHour << " sim-seconds each)...\n";
  experiment.train(episodes);
  const auto& curve = experiment.learning_curve();
  if (!curve.empty()) {
    std::cout << "  first-episode reward " << curve.front().total_reward
              << " -> last-episode reward " << curve.back().total_reward << "\n";
  }
  const auto& stats = experiment.train_stats();
  std::cout << "  " << stats.transitions << " transitions in " << stats.wall_seconds
            << " s (" << stats.steps_per_second() << " steps/s, "
            << stats.actor_threads << " actor thread(s))\n\n";

  // Head-to-head evaluation on the same held-out seeds.
  const auto dqn_eval = experiment.evaluate(3).mean;
  auto baseline = exp::Experiment::from_options(experiment.env_options());
  baseline.manager("greedy_latency")
      .threads(config.get_size("threads", 0))
      .eval_duration(0.5 * edgesim::kSecondsPerHour);
  const auto greedy_eval = baseline.evaluate(3).mean;

  AsciiTable table({"policy", "cost/req", "accept%", "mean_lat_ms", "sla_viol%",
                    "deployments"});
  auto add = [&table](const std::string& name, const core::EpisodeResult& r) {
    table.add_row(name, {r.cost_per_request, 100.0 * r.acceptance_ratio,
                         r.mean_latency_ms, 100.0 * r.sla_violation_ratio,
                         static_cast<double>(r.deployments)});
  };
  add("dqn", dqn_eval);
  add("greedy_latency", greedy_eval);
  table.print(std::cout);
  return 0;
}
