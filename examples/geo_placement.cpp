// Geo placement scenario: shows why geography dominates chain latency in a
// geo-distributed edge. Places the same gaming chain (60 ms SLA) for a New
// York user on every node of the world topology and prints the resulting
// end-to-end latency, then lets each heuristic pick and compares.
//
//   ./geo_placement [nodes=8]
#include <iostream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "exp/registry.hpp"
#include "exp/scenario.hpp"

using namespace vnfm;

int main(int argc, char** argv) {
  const Config config = Config::from_args(argc, argv);

  Config overrides = exp::ScenarioCatalog::instance().filter_known_overrides(config);
  if (!overrides.contains("arrival_rate")) overrides.set("arrival_rate", "1.0");
  if (!overrides.contains("seed")) overrides.set("seed", "5");

  auto experiment = exp::Experiment::scenario("geo-distributed", overrides);
  auto& env = experiment.env();

  // Manually place one gaming chain per node using the cluster protocol.
  std::cout << "Gaming chain (nat>firewall>ids, SLA 60 ms) for a New York user,\n"
            << "placed entirely on each candidate node:\n\n";
  AsciiTable table({"node", "latency_ms", "sla_ok"});
  const auto& sfc = env.sfcs().by_name("gaming");
  auto& cluster = env.mutable_cluster();
  for (const auto& node : env.topology().nodes()) {
    edgesim::Request request;
    request.id = edgesim::RequestId{edgesim::index(node.id) + 1000};
    request.source_region = edgesim::NodeId{0};  // new_york
    request.sfc = sfc.id;
    request.rate_rps = 4.0;
    request.duration_s = 1.0;
    cluster.start_chain(request);
    while (!cluster.pending_complete()) cluster.place_next(node.id);
    const auto placement = cluster.commit_chain();
    table.add_row({node.name, format_number(placement.latency_ms),
                   placement.sla_violated() ? "VIOLATED" : "ok"});
  }
  table.print(std::cout);

  // Now compare heuristics over a real workload episode.
  std::cout << "\nHeuristic comparison over a 20-minute episode:\n\n";
  core::EpisodeOptions episode;
  episode.duration_s = 1200.0;
  episode.training = false;

  AsciiTable results({"policy", "mean_lat_ms", "sla_viol%", "deployments", "cost/req"});
  for (const std::string name :
       {"greedy_latency", "myopic_cost", "first_fit"}) {
    const auto manager = exp::ManagerRegistry::instance().create(name, env);
    const auto r = core::run_episode(env, *manager, episode);
    results.add_row(manager->name(),
                    {r.mean_latency_ms, 100.0 * r.sla_violation_ratio,
                     static_cast<double>(r.deployments), r.cost_per_request});
  }
  results.print(std::cout);
  std::cout << "\nNote how latency-blind consolidation (first_fit) saves deployments\n"
               "but ships New York gamers to whatever node has free slots.\n";
  return 0;
}
