// Checkpointing: train the DQN VNF manager through the Experiment API, save
// its policy network to disk, restore it into a fresh registry-built manager,
// and verify the restored policy reproduces the original's decisions and
// evaluation metrics — the workflow a deployed controller uses to survive
// restarts and to ship trained policies.
//
//   ./checkpointing [episodes=8] [path=/tmp/vnfm_policy.ckpt]
#include <fstream>
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/drl_manager.hpp"
#include "exp/experiment.hpp"
#include "exp/registry.hpp"

using namespace vnfm;

int main(int argc, char** argv) {
  const Config config = Config::from_args(argc, argv);
  const auto episodes = config.get_size("episodes", 8);
  const std::string path = config.get_string("path", "/tmp/vnfm_policy.ckpt");

  auto experiment = exp::Experiment::scenario(
      "geo-distributed", Config{{"arrival_rate", "2.0"}, {"seed", "6"}});
  experiment.manager("dqn").train_duration(0.4 * edgesim::kSecondsPerHour);
  std::cout << "Training for " << episodes << " episodes...\n";
  experiment.train(episodes);

  auto& env = experiment.env();
  auto& trained = dynamic_cast<core::DqnManager&>(experiment.manager_ref());
  {
    std::ofstream out(path);
    trained.save(out);
  }
  std::cout << "Policy saved to " << path << " ("
            << trained.agent().config().state_dim << " state features, "
            << trained.agent().config().action_dim << " actions)\n";

  // A fresh registry-built manager restored from the checkpoint.
  auto restored_any = exp::ManagerRegistry::instance().create("dqn", env);
  auto& restored = dynamic_cast<core::DqnManager&>(*restored_any);
  {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cannot reopen checkpoint " << path << "\n";
      return 1;
    }
    restored.load(in);
  }

  // Decision-level check on a held-out workload.
  trained.set_training(false);
  restored.set_training(false);
  env.reset(12345);
  std::size_t checked = 0, agreed = 0;
  for (int i = 0; i < 50; ++i) {
    if (!env.begin_next_request()) break;
    core::StepResult r;
    do {
      const int a1 = trained.select_action(env);
      const int a2 = restored.select_action(env);
      ++checked;
      if (a1 == a2) ++agreed;
      r = env.step(a1);
    } while (!r.chain_done);
  }
  std::cout << "\nDecision agreement on held-out workload: " << agreed << "/" << checked
            << "\n";

  // Metric-level check via the deterministic parallel evaluator.
  core::EpisodeOptions episode;
  episode.duration_s = 0.4 * edgesim::kSecondsPerHour;
  const auto eval_trained =
      exp::evaluate_parallel(experiment.env_options(), trained, episode, 2).mean;
  const auto eval_restored =
      exp::evaluate_parallel(experiment.env_options(), restored, episode, 2).mean;
  AsciiTable table({"policy", "cost/req", "accept%", "mean_lat_ms"});
  table.add_row("trained", {eval_trained.cost_per_request,
                            100.0 * eval_trained.acceptance_ratio,
                            eval_trained.mean_latency_ms});
  table.add_row("restored", {eval_restored.cost_per_request,
                             100.0 * eval_restored.acceptance_ratio,
                             eval_restored.mean_latency_ms});
  table.print(std::cout);
  return agreed == checked ? 0 : 1;
}
