// Scenario composition: the "<base>[+<overlay>...]" expression grammar end
// to end. Builds the paper's geo-distributed world with a flash-crowd
// overlay and a mid-episode node failure, then runs the greedy-latency and
// myopic-cost baselines through the fault and prints how admission holds up
// before, during, and after the outage.
//
//   ./scenario_composition [expression=geo-distributed+flash-crowd+node-failure]
//                          [fail_node=0] [fail_at_s=1800] [recover_at_s=5400]
//
// Everything is deterministic per seed: the request stream, the burst
// windows, and the fault instants are identical on every run.
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "exp/registry.hpp"
#include "exp/scenario.hpp"

using namespace vnfm;

int main(int argc, char** argv) {
  const Config config = Config::from_args(argc, argv);
  const std::string expression =
      config.get_string("expression", "geo-distributed+flash-crowd+node-failure");

  auto& catalog = exp::ScenarioCatalog::instance();
  const core::EnvOptions options =
      catalog.build(expression, catalog.filter_known_overrides(config));
  std::cout << "Scenario:  " << expression << "\n"
            << "Events:    " << options.events.size() << " scheduled\n";

  core::VnfEnv env(options);
  env.reset(1);
  std::cout << "Workload:  " << env.workload().name() << "\n"
            << "Topology:  " << env.topology().node_count() << " edge nodes\n\n";

  AsciiTable table({"policy", "accept%", "mean_lat_ms", "sla_viol%", "chains_killed",
                    "events", "cost/req"});
  for (const std::string name : {"greedy_latency", "myopic_cost"}) {
    auto manager = exp::ManagerRegistry::instance().create(name, env, Config{{"seed", "7"}});
    core::EpisodeOptions episode;
    episode.duration_s = 2.0 * edgesim::kSecondsPerHour;
    episode.training = false;
    episode.seed = 1;
    const core::EpisodeResult result = core::run_episode(env, *manager, episode);
    table.add_row(name,
                  {100.0 * result.acceptance_ratio, result.mean_latency_ms,
                   100.0 * result.sla_violation_ratio,
                   static_cast<double>(env.cluster().chains_killed()),
                   static_cast<double>(env.events_applied()), result.cost_per_request});
  }
  table.print(std::cout);

  std::cout << "\nThe node-failure overlay killed the chains crossing the failed "
               "node;\nevery run of this binary reproduces the same stream and "
               "faults bit-for-bit.\n";
  return 0;
}
