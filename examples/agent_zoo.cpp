// Agent zoo: trains every learning manager in the registry (DQN variants,
// REINFORCE, actor-critic, tabular Q) for the same budget and evaluates the
// whole zoo — learners and heuristics — head to head on held-out workload
// seeds, all through the Experiment API.
//
//   ./agent_zoo [episodes=10] [arrival_rate=2.5]
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "exp/scenario.hpp"

using namespace vnfm;

int main(int argc, char** argv) {
  const Config config = Config::from_args(argc, argv);
  const auto episodes = config.get_size("episodes", 10);

  Config overrides = exp::ScenarioCatalog::instance().filter_known_overrides(config);
  if (!overrides.contains("arrival_rate")) overrides.set("arrival_rate", "2.5");
  if (!overrides.contains("seed")) overrides.set("seed", "4");

  const std::vector<std::pair<std::string, Config>> learners{
      {"vanilla_dqn", Config{{"name", "dqn"}, {"seed", "1"}}},
      {"double_dqn", Config{{"seed", "2"}}},
      {"dueling_ddqn", Config{{"seed", "3"}}},
      {"reinforce", {}},
      {"actor_critic", {}},
      {"tabular_q", {}},
  };
  const std::vector<std::string> heuristics{"myopic_cost", "greedy_latency",
                                            "first_fit", "static_provision",
                                            "random"};

  std::cout << "Training " << learners.size() << " learners for " << episodes
            << " episodes each...\n";
  std::vector<std::pair<std::string, core::EpisodeResult>> rows;
  for (const auto& [name, params] : learners) {
    auto experiment = exp::Experiment::scenario("geo-distributed", overrides);
    experiment.manager(name, params)
        .train_duration(0.4 * edgesim::kSecondsPerHour)
        .eval_duration(0.4 * edgesim::kSecondsPerHour)
        .train(episodes);
    rows.emplace_back(experiment.manager_ref().name(), experiment.evaluate(2).mean);
    std::cout << "  " << rows.back().first << " trained\n";
  }
  for (const std::string& name : heuristics) {
    auto experiment = exp::Experiment::scenario("geo-distributed", overrides);
    experiment.manager(name, Config{{"seed", "9"}})
        .eval_duration(0.4 * edgesim::kSecondsPerHour);
    rows.emplace_back(experiment.manager_ref().name(), experiment.evaluate(2).mean);
  }

  std::cout << "\nHead-to-head evaluation (2 held-out seeds):\n\n";
  AsciiTable table({"policy", "cost/req", "accept%", "mean_lat_ms", "sla_viol%",
                    "deployments"});
  for (const auto& [name, r] : rows) {
    table.add_row(name, {r.cost_per_request, 100.0 * r.acceptance_ratio,
                         r.mean_latency_ms, 100.0 * r.sla_violation_ratio,
                         static_cast<double>(r.deployments)});
  }
  table.print(std::cout);
  return 0;
}
