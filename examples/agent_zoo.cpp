// Agent zoo: trains every learning manager (DQN, Double DQN, Dueling,
// REINFORCE, tabular Q) for the same budget and evaluates the whole zoo —
// learners and heuristics — head to head on held-out workload seeds.
//
//   ./agent_zoo [episodes=10] [arrival_rate=2.5]
#include <iostream>
#include <memory>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/drl_manager.hpp"
#include "core/heuristics.hpp"
#include "core/runner.hpp"

using namespace vnfm;

int main(int argc, char** argv) {
  const Config config = Config::from_args(argc, argv);
  const auto episodes = static_cast<std::size_t>(config.get_int("episodes", 10));
  const double arrival_rate = config.get_double("arrival_rate", 2.5);

  core::EnvOptions options;
  options.topology.node_count = 8;
  options.workload.global_arrival_rate = arrival_rate;
  options.seed = 4;
  core::VnfEnv env(options);

  core::EpisodeOptions train;
  train.duration_s = 0.4 * edgesim::kSecondsPerHour;

  std::vector<std::unique_ptr<core::Manager>> learners;
  {
    rl::DqnConfig c = core::default_dqn_config(env, 1);
    c.double_dqn = false;
    learners.push_back(std::make_unique<core::DqnManager>(env, c, "dqn"));
  }
  learners.push_back(std::make_unique<core::DqnManager>(
      env, core::default_dqn_config(env, 2), "double_dqn"));
  {
    rl::DqnConfig c = core::default_dqn_config(env, 3);
    c.dueling = true;
    learners.push_back(std::make_unique<core::DqnManager>(env, c, "dueling_ddqn"));
  }
  learners.push_back(std::make_unique<core::ReinforceManager>(env, rl::ReinforceConfig{}));
  learners.push_back(std::make_unique<core::A2cManager>(env, rl::ActorCriticConfig{}));
  learners.push_back(std::make_unique<core::TabularManager>(env, rl::TabularQConfig{}));

  std::cout << "Training " << learners.size() << " learners for " << episodes
            << " episodes each...\n";
  for (auto& learner : learners) {
    core::train_manager(env, *learner, episodes, train);
    std::cout << "  " << learner->name() << " trained\n";
  }

  core::GreedyLatencyManager greedy;
  core::MyopicCostManager myopic;
  core::FirstFitManager first_fit;
  core::StaticProvisionManager static_prov(2);
  core::RandomManager random(9);

  std::vector<core::Manager*> zoo;
  for (auto& learner : learners) zoo.push_back(learner.get());
  zoo.push_back(&myopic);
  zoo.push_back(&greedy);
  zoo.push_back(&first_fit);
  zoo.push_back(&static_prov);
  zoo.push_back(&random);

  core::EpisodeOptions eval = train;
  AsciiTable table({"policy", "cost/req", "accept%", "mean_lat_ms", "sla_viol%",
                    "deployments"});
  std::cout << "\nHead-to-head evaluation (2 held-out seeds):\n\n";
  for (core::Manager* manager : zoo) {
    const auto r = core::evaluate_manager(env, *manager, eval, 2);
    table.add_row(manager->name(),
                  {r.cost_per_request, 100.0 * r.acceptance_ratio, r.mean_latency_ms,
                   100.0 * r.sla_violation_ratio, static_cast<double>(r.deployments)});
  }
  table.print(std::cout);
  return 0;
}
