// Diurnal autoscaling scenario: trains the DQN manager on strongly diurnal
// traffic and then replays a full simulated day, printing how the instance
// footprint follows the sun across time zones.
//
//   ./diurnal_autoscaling [train_episodes=10] [arrival_rate=1.0]
#include <iostream>

#include "common/config.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/drl_manager.hpp"
#include "core/runner.hpp"

using namespace vnfm;

int main(int argc, char** argv) {
  const Config config = Config::from_args(argc, argv);
  const int train_episodes = config.get_int("train_episodes", 10);
  const double arrival_rate = config.get_double("arrival_rate", 1.0);

  core::EnvOptions options;
  options.topology.node_count = 8;
  options.workload.global_arrival_rate = arrival_rate;
  options.workload.diurnal_amplitude = 0.8;
  options.seed = 2;
  core::VnfEnv env(options);

  core::DqnManager dqn(env, core::default_dqn_config(env));
  core::EpisodeOptions train;
  train.duration_s = 0.5 * edgesim::kSecondsPerHour;
  std::cout << "Training DQN for " << train_episodes << " episodes on diurnal traffic...\n";
  core::train_manager(env, dqn, static_cast<std::size_t>(train_episodes), train);

  // Replay a full day and sample every two hours.
  env.reset(777);
  dqn.set_training(false);
  std::cout << "\nReplaying one simulated day (amplitude 0.8, peak at 14:00 local):\n\n";
  AsciiTable table({"utc_hour", "offered_rps", "instances", "mean_util%",
                    "nyc_rate", "tokyo_rate"});
  double next_sample = 0.0;
  while (env.begin_next_request(edgesim::kSecondsPerDay)) {
    core::StepResult r;
    do {
      r = env.step(dqn.select_action(env));
    } while (!r.chain_done);
    if (env.now() >= next_sample) {
      double util = 0.0;
      for (const auto& node : env.topology().nodes())
        util += env.cluster().cpu_utilization(node.id);
      util /= static_cast<double>(env.topology().node_count());
      table.add_row(format_number(env.now() / edgesim::kSecondsPerHour),
                    {env.workload().total_rate(env.now()),
                     static_cast<double>(env.cluster().total_instance_count()),
                     100.0 * util,
                     env.workload().region_rate(edgesim::NodeId{0}, env.now()),
                     env.workload().region_rate(edgesim::NodeId{2}, env.now())});
      next_sample += 2.0 * edgesim::kSecondsPerHour;
    }
  }
  table.print(std::cout);
  std::cout << "\n" << env.metrics().summary() << "\n";
  std::cout << "\nThe instance count tracks the offered load curve: capacity is\n"
               "released by the idle-timeout GC when a region's night begins and\n"
               "re-deployed where the policy routes the next regional peak.\n";
  return 0;
}
