// Diurnal autoscaling scenario: trains the DQN manager on the catalog's
// "diurnal" scenario (strong day/night swing) and then replays a full
// simulated day, printing how the instance footprint follows the sun across
// time zones.
//
//   ./diurnal_autoscaling [train_episodes=10] [arrival_rate=1.0]
#include <iostream>

#include "common/config.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "exp/scenario.hpp"

using namespace vnfm;

int main(int argc, char** argv) {
  const Config config = Config::from_args(argc, argv);
  const auto train_episodes = config.get_size("train_episodes", 10);

  Config overrides = exp::ScenarioCatalog::instance().filter_known_overrides(config);
  if (!overrides.contains("seed")) overrides.set("seed", "2");

  auto experiment = exp::Experiment::scenario("diurnal", overrides);
  experiment.manager("dqn").train_duration(0.5 * edgesim::kSecondsPerHour);
  std::cout << "Training DQN for " << train_episodes
            << " episodes on diurnal traffic...\n";
  experiment.train(train_episodes);

  // Replay a full day and sample every two hours.
  auto& env = experiment.env();
  auto& dqn = experiment.manager_ref();
  env.reset(777);
  dqn.set_training(false);
  std::cout << "\nReplaying one simulated day (amplitude 0.8, peak at 14:00 local):\n\n";
  AsciiTable table({"utc_hour", "offered_rps", "instances", "mean_util%",
                    "nyc_rate", "tokyo_rate"});
  double next_sample = 0.0;
  while (env.begin_next_request(edgesim::kSecondsPerDay)) {
    core::StepResult r;
    do {
      r = env.step(dqn.select_action(env));
    } while (!r.chain_done);
    if (env.now() >= next_sample) {
      double util = 0.0;
      for (const auto& node : env.topology().nodes())
        util += env.cluster().cpu_utilization(node.id);
      util /= static_cast<double>(env.topology().node_count());
      table.add_row(format_number(env.now() / edgesim::kSecondsPerHour),
                    {env.workload().total_rate(env.now()),
                     static_cast<double>(env.cluster().total_instance_count()),
                     100.0 * util,
                     env.workload().region_rate(edgesim::NodeId{0}, env.now()),
                     env.workload().region_rate(edgesim::NodeId{2}, env.now())});
      next_sample += 2.0 * edgesim::kSecondsPerHour;
    }
  }
  table.print(std::cout);
  std::cout << "\n" << env.metrics().summary() << "\n";
  std::cout << "\nThe instance count tracks the offered load curve: capacity is\n"
               "released by the idle-timeout GC when a region's night begins and\n"
               "re-deployed where the policy routes the next regional peak.\n";
  return 0;
}
