file(REMOVE_RECURSE
  "CMakeFiles/core_test_serve_shed.dir/tests/core/test_serve_shed.cpp.o"
  "CMakeFiles/core_test_serve_shed.dir/tests/core/test_serve_shed.cpp.o.d"
  "core_test_serve_shed"
  "core_test_serve_shed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_serve_shed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
