# Empty dependencies file for core_test_serve_shed.
# This may be replaced when dependencies are built.
