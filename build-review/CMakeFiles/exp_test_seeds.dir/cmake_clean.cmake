file(REMOVE_RECURSE
  "CMakeFiles/exp_test_seeds.dir/tests/exp/test_seeds.cpp.o"
  "CMakeFiles/exp_test_seeds.dir/tests/exp/test_seeds.cpp.o.d"
  "exp_test_seeds"
  "exp_test_seeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_test_seeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
