# Empty dependencies file for exp_test_seeds.
# This may be replaced when dependencies are built.
