# Empty compiler generated dependencies file for edgesim_test_fault_model.
# This may be replaced when dependencies are built.
