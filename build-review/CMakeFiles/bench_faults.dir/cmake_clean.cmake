file(REMOVE_RECURSE
  "CMakeFiles/bench_faults.dir/bench/bench_faults.cpp.o"
  "CMakeFiles/bench_faults.dir/bench/bench_faults.cpp.o.d"
  "bench_faults"
  "bench_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
