# Empty compiler generated dependencies file for core_test_env_incremental.
# This may be replaced when dependencies are built.
