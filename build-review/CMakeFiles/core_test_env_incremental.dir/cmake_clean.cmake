file(REMOVE_RECURSE
  "CMakeFiles/core_test_env_incremental.dir/tests/core/test_env_incremental.cpp.o"
  "CMakeFiles/core_test_env_incremental.dir/tests/core/test_env_incremental.cpp.o.d"
  "core_test_env_incremental"
  "core_test_env_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_env_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
