# Empty dependencies file for common_test_csv.
# This may be replaced when dependencies are built.
