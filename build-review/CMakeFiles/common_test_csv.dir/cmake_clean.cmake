file(REMOVE_RECURSE
  "CMakeFiles/common_test_csv.dir/tests/common/test_csv.cpp.o"
  "CMakeFiles/common_test_csv.dir/tests/common/test_csv.cpp.o.d"
  "common_test_csv"
  "common_test_csv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_test_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
