file(REMOVE_RECURSE
  "CMakeFiles/edgesim_test_bandwidth.dir/tests/edgesim/test_bandwidth.cpp.o"
  "CMakeFiles/edgesim_test_bandwidth.dir/tests/edgesim/test_bandwidth.cpp.o.d"
  "edgesim_test_bandwidth"
  "edgesim_test_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesim_test_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
