# Empty dependencies file for edgesim_test_bandwidth.
# This may be replaced when dependencies are built.
