# Empty compiler generated dependencies file for scenario_composition.
# This may be replaced when dependencies are built.
