file(REMOVE_RECURSE
  "CMakeFiles/scenario_composition.dir/examples/scenario_composition.cpp.o"
  "CMakeFiles/scenario_composition.dir/examples/scenario_composition.cpp.o.d"
  "scenario_composition"
  "scenario_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
