# Empty compiler generated dependencies file for bench_env_step.
# This may be replaced when dependencies are built.
