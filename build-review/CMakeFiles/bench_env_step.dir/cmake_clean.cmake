file(REMOVE_RECURSE
  "CMakeFiles/bench_env_step.dir/bench/bench_env_step.cpp.o"
  "CMakeFiles/bench_env_step.dir/bench/bench_env_step.cpp.o.d"
  "bench_env_step"
  "bench_env_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_env_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
