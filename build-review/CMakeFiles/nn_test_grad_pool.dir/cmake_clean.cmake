file(REMOVE_RECURSE
  "CMakeFiles/nn_test_grad_pool.dir/tests/nn/test_grad_pool.cpp.o"
  "CMakeFiles/nn_test_grad_pool.dir/tests/nn/test_grad_pool.cpp.o.d"
  "nn_test_grad_pool"
  "nn_test_grad_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_test_grad_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
