# Empty compiler generated dependencies file for nn_test_grad_pool.
# This may be replaced when dependencies are built.
