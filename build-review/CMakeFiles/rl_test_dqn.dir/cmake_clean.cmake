file(REMOVE_RECURSE
  "CMakeFiles/rl_test_dqn.dir/tests/rl/test_dqn.cpp.o"
  "CMakeFiles/rl_test_dqn.dir/tests/rl/test_dqn.cpp.o.d"
  "rl_test_dqn"
  "rl_test_dqn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_test_dqn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
