# Empty compiler generated dependencies file for rl_test_dqn.
# This may be replaced when dependencies are built.
