# Empty dependencies file for core_test_serve_driver.
# This may be replaced when dependencies are built.
