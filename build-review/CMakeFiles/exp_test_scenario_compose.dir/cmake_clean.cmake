file(REMOVE_RECURSE
  "CMakeFiles/exp_test_scenario_compose.dir/tests/exp/test_scenario_compose.cpp.o"
  "CMakeFiles/exp_test_scenario_compose.dir/tests/exp/test_scenario_compose.cpp.o.d"
  "exp_test_scenario_compose"
  "exp_test_scenario_compose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_test_scenario_compose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
