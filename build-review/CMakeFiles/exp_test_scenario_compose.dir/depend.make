# Empty dependencies file for exp_test_scenario_compose.
# This may be replaced when dependencies are built.
