# Empty dependencies file for edgesim_test_cluster.
# This may be replaced when dependencies are built.
