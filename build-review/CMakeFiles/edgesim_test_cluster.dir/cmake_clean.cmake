file(REMOVE_RECURSE
  "CMakeFiles/edgesim_test_cluster.dir/tests/edgesim/test_cluster.cpp.o"
  "CMakeFiles/edgesim_test_cluster.dir/tests/edgesim/test_cluster.cpp.o.d"
  "edgesim_test_cluster"
  "edgesim_test_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesim_test_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
