file(REMOVE_RECURSE
  "CMakeFiles/exp_test_report_io.dir/tests/exp/test_report_io.cpp.o"
  "CMakeFiles/exp_test_report_io.dir/tests/exp/test_report_io.cpp.o.d"
  "exp_test_report_io"
  "exp_test_report_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_test_report_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
