# Empty compiler generated dependencies file for exp_test_report_io.
# This may be replaced when dependencies are built.
