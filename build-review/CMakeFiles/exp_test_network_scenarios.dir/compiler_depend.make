# Empty compiler generated dependencies file for exp_test_network_scenarios.
# This may be replaced when dependencies are built.
