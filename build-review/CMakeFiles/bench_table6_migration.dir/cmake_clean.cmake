file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_migration.dir/bench/bench_table6_migration.cpp.o"
  "CMakeFiles/bench_table6_migration.dir/bench/bench_table6_migration.cpp.o.d"
  "bench_table6_migration"
  "bench_table6_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
