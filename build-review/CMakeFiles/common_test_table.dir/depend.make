# Empty dependencies file for common_test_table.
# This may be replaced when dependencies are built.
