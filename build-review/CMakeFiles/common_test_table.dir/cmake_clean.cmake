file(REMOVE_RECURSE
  "CMakeFiles/common_test_table.dir/tests/common/test_table.cpp.o"
  "CMakeFiles/common_test_table.dir/tests/common/test_table.cpp.o.d"
  "common_test_table"
  "common_test_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_test_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
