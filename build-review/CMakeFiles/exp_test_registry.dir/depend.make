# Empty dependencies file for exp_test_registry.
# This may be replaced when dependencies are built.
