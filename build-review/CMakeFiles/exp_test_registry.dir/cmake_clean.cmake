file(REMOVE_RECURSE
  "CMakeFiles/exp_test_registry.dir/tests/exp/test_registry.cpp.o"
  "CMakeFiles/exp_test_registry.dir/tests/exp/test_registry.cpp.o.d"
  "exp_test_registry"
  "exp_test_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_test_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
