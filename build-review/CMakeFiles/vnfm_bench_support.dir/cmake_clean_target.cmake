file(REMOVE_RECURSE
  "libvnfm_bench_support.a"
)
