file(REMOVE_RECURSE
  "CMakeFiles/vnfm_bench_support.dir/bench/support.cpp.o"
  "CMakeFiles/vnfm_bench_support.dir/bench/support.cpp.o.d"
  "libvnfm_bench_support.a"
  "libvnfm_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnfm_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
