# Empty dependencies file for vnfm_bench_support.
# This may be replaced when dependencies are built.
