# Empty compiler generated dependencies file for common_test_config.
# This may be replaced when dependencies are built.
