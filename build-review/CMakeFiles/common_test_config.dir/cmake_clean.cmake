file(REMOVE_RECURSE
  "CMakeFiles/common_test_config.dir/tests/common/test_config.cpp.o"
  "CMakeFiles/common_test_config.dir/tests/common/test_config.cpp.o.d"
  "common_test_config"
  "common_test_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_test_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
