file(REMOVE_RECURSE
  "CMakeFiles/edgesim_test_vnf.dir/tests/edgesim/test_vnf.cpp.o"
  "CMakeFiles/edgesim_test_vnf.dir/tests/edgesim/test_vnf.cpp.o.d"
  "edgesim_test_vnf"
  "edgesim_test_vnf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesim_test_vnf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
