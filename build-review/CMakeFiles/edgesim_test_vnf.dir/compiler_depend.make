# Empty compiler generated dependencies file for edgesim_test_vnf.
# This may be replaced when dependencies are built.
