# Empty compiler generated dependencies file for common_test_log.
# This may be replaced when dependencies are built.
