file(REMOVE_RECURSE
  "CMakeFiles/common_test_log.dir/tests/common/test_log.cpp.o"
  "CMakeFiles/common_test_log.dir/tests/common/test_log.cpp.o.d"
  "common_test_log"
  "common_test_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_test_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
