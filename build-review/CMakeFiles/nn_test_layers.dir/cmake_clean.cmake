file(REMOVE_RECURSE
  "CMakeFiles/nn_test_layers.dir/tests/nn/test_layers.cpp.o"
  "CMakeFiles/nn_test_layers.dir/tests/nn/test_layers.cpp.o.d"
  "nn_test_layers"
  "nn_test_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_test_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
