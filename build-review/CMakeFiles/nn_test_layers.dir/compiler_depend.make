# Empty compiler generated dependencies file for nn_test_layers.
# This may be replaced when dependencies are built.
