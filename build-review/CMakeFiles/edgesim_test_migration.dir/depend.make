# Empty dependencies file for edgesim_test_migration.
# This may be replaced when dependencies are built.
