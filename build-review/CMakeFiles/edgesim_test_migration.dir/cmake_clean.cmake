file(REMOVE_RECURSE
  "CMakeFiles/edgesim_test_migration.dir/tests/edgesim/test_migration.cpp.o"
  "CMakeFiles/edgesim_test_migration.dir/tests/edgesim/test_migration.cpp.o.d"
  "edgesim_test_migration"
  "edgesim_test_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesim_test_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
