file(REMOVE_RECURSE
  "libvnfm.a"
)
