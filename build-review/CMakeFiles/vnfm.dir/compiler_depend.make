# Empty compiler generated dependencies file for vnfm.
# This may be replaced when dependencies are built.
