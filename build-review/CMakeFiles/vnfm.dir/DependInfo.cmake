
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/config.cpp" "CMakeFiles/vnfm.dir/src/common/config.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/common/config.cpp.o.d"
  "/root/repo/src/common/csv.cpp" "CMakeFiles/vnfm.dir/src/common/csv.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/common/csv.cpp.o.d"
  "/root/repo/src/common/log.cpp" "CMakeFiles/vnfm.dir/src/common/log.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/common/log.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "CMakeFiles/vnfm.dir/src/common/rng.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/common/rng.cpp.o.d"
  "/root/repo/src/common/serialize.cpp" "CMakeFiles/vnfm.dir/src/common/serialize.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/common/serialize.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "CMakeFiles/vnfm.dir/src/common/stats.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/common/stats.cpp.o.d"
  "/root/repo/src/common/table.cpp" "CMakeFiles/vnfm.dir/src/common/table.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/common/table.cpp.o.d"
  "/root/repo/src/core/checkpoint.cpp" "CMakeFiles/vnfm.dir/src/core/checkpoint.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/core/checkpoint.cpp.o.d"
  "/root/repo/src/core/drl_manager.cpp" "CMakeFiles/vnfm.dir/src/core/drl_manager.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/core/drl_manager.cpp.o.d"
  "/root/repo/src/core/environment.cpp" "CMakeFiles/vnfm.dir/src/core/environment.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/core/environment.cpp.o.d"
  "/root/repo/src/core/heuristics.cpp" "CMakeFiles/vnfm.dir/src/core/heuristics.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/core/heuristics.cpp.o.d"
  "/root/repo/src/core/migration.cpp" "CMakeFiles/vnfm.dir/src/core/migration.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/core/migration.cpp.o.d"
  "/root/repo/src/core/runner.cpp" "CMakeFiles/vnfm.dir/src/core/runner.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/core/runner.cpp.o.d"
  "/root/repo/src/core/serve_driver.cpp" "CMakeFiles/vnfm.dir/src/core/serve_driver.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/core/serve_driver.cpp.o.d"
  "/root/repo/src/core/train_driver.cpp" "CMakeFiles/vnfm.dir/src/core/train_driver.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/core/train_driver.cpp.o.d"
  "/root/repo/src/edgesim/cluster.cpp" "CMakeFiles/vnfm.dir/src/edgesim/cluster.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/edgesim/cluster.cpp.o.d"
  "/root/repo/src/edgesim/events.cpp" "CMakeFiles/vnfm.dir/src/edgesim/events.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/edgesim/events.cpp.o.d"
  "/root/repo/src/edgesim/fault_model.cpp" "CMakeFiles/vnfm.dir/src/edgesim/fault_model.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/edgesim/fault_model.cpp.o.d"
  "/root/repo/src/edgesim/link.cpp" "CMakeFiles/vnfm.dir/src/edgesim/link.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/edgesim/link.cpp.o.d"
  "/root/repo/src/edgesim/metrics.cpp" "CMakeFiles/vnfm.dir/src/edgesim/metrics.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/edgesim/metrics.cpp.o.d"
  "/root/repo/src/edgesim/network_model.cpp" "CMakeFiles/vnfm.dir/src/edgesim/network_model.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/edgesim/network_model.cpp.o.d"
  "/root/repo/src/edgesim/topology.cpp" "CMakeFiles/vnfm.dir/src/edgesim/topology.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/edgesim/topology.cpp.o.d"
  "/root/repo/src/edgesim/types.cpp" "CMakeFiles/vnfm.dir/src/edgesim/types.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/edgesim/types.cpp.o.d"
  "/root/repo/src/edgesim/vnf.cpp" "CMakeFiles/vnfm.dir/src/edgesim/vnf.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/edgesim/vnf.cpp.o.d"
  "/root/repo/src/edgesim/workload.cpp" "CMakeFiles/vnfm.dir/src/edgesim/workload.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/edgesim/workload.cpp.o.d"
  "/root/repo/src/edgesim/workload_model.cpp" "CMakeFiles/vnfm.dir/src/edgesim/workload_model.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/edgesim/workload_model.cpp.o.d"
  "/root/repo/src/exp/experiment.cpp" "CMakeFiles/vnfm.dir/src/exp/experiment.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/exp/experiment.cpp.o.d"
  "/root/repo/src/exp/registry.cpp" "CMakeFiles/vnfm.dir/src/exp/registry.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/exp/registry.cpp.o.d"
  "/root/repo/src/exp/report_io.cpp" "CMakeFiles/vnfm.dir/src/exp/report_io.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/exp/report_io.cpp.o.d"
  "/root/repo/src/exp/scenario.cpp" "CMakeFiles/vnfm.dir/src/exp/scenario.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/exp/scenario.cpp.o.d"
  "/root/repo/src/nn/grad_pool.cpp" "CMakeFiles/vnfm.dir/src/nn/grad_pool.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/nn/grad_pool.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "CMakeFiles/vnfm.dir/src/nn/layers.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/nn/layers.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "CMakeFiles/vnfm.dir/src/nn/loss.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/nn/loss.cpp.o.d"
  "/root/repo/src/nn/matmul_simd.cpp" "CMakeFiles/vnfm.dir/src/nn/matmul_simd.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/nn/matmul_simd.cpp.o.d"
  "/root/repo/src/nn/matrix.cpp" "CMakeFiles/vnfm.dir/src/nn/matrix.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/nn/matrix.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "CMakeFiles/vnfm.dir/src/nn/mlp.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/nn/mlp.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "CMakeFiles/vnfm.dir/src/nn/optimizer.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/nn/optimizer.cpp.o.d"
  "/root/repo/src/rl/actor_critic.cpp" "CMakeFiles/vnfm.dir/src/rl/actor_critic.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/rl/actor_critic.cpp.o.d"
  "/root/repo/src/rl/dqn.cpp" "CMakeFiles/vnfm.dir/src/rl/dqn.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/rl/dqn.cpp.o.d"
  "/root/repo/src/rl/policy_gradient.cpp" "CMakeFiles/vnfm.dir/src/rl/policy_gradient.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/rl/policy_gradient.cpp.o.d"
  "/root/repo/src/rl/replay.cpp" "CMakeFiles/vnfm.dir/src/rl/replay.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/rl/replay.cpp.o.d"
  "/root/repo/src/rl/schedule.cpp" "CMakeFiles/vnfm.dir/src/rl/schedule.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/rl/schedule.cpp.o.d"
  "/root/repo/src/rl/tabular.cpp" "CMakeFiles/vnfm.dir/src/rl/tabular.cpp.o" "gcc" "CMakeFiles/vnfm.dir/src/rl/tabular.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
