file(REMOVE_RECURSE
  "CMakeFiles/common_test_rng.dir/tests/common/test_rng.cpp.o"
  "CMakeFiles/common_test_rng.dir/tests/common/test_rng.cpp.o.d"
  "common_test_rng"
  "common_test_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_test_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
