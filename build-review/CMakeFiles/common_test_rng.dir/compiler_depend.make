# Empty compiler generated dependencies file for common_test_rng.
# This may be replaced when dependencies are built.
