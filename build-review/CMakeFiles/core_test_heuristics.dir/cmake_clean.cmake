file(REMOVE_RECURSE
  "CMakeFiles/core_test_heuristics.dir/tests/core/test_heuristics.cpp.o"
  "CMakeFiles/core_test_heuristics.dir/tests/core/test_heuristics.cpp.o.d"
  "core_test_heuristics"
  "core_test_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
