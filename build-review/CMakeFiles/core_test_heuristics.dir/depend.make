# Empty dependencies file for core_test_heuristics.
# This may be replaced when dependencies are built.
