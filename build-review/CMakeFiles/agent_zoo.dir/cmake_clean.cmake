file(REMOVE_RECURSE
  "CMakeFiles/agent_zoo.dir/examples/agent_zoo.cpp.o"
  "CMakeFiles/agent_zoo.dir/examples/agent_zoo.cpp.o.d"
  "agent_zoo"
  "agent_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agent_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
