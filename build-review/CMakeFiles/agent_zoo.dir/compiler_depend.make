# Empty compiler generated dependencies file for agent_zoo.
# This may be replaced when dependencies are built.
