# Empty compiler generated dependencies file for core_test_environment.
# This may be replaced when dependencies are built.
