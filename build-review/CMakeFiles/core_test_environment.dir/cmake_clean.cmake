file(REMOVE_RECURSE
  "CMakeFiles/core_test_environment.dir/tests/core/test_environment.cpp.o"
  "CMakeFiles/core_test_environment.dir/tests/core/test_environment.cpp.o.d"
  "core_test_environment"
  "core_test_environment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_environment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
