file(REMOVE_RECURSE
  "CMakeFiles/nn_test_mlp.dir/tests/nn/test_mlp.cpp.o"
  "CMakeFiles/nn_test_mlp.dir/tests/nn/test_mlp.cpp.o.d"
  "nn_test_mlp"
  "nn_test_mlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_test_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
