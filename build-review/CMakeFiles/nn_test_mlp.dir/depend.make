# Empty dependencies file for nn_test_mlp.
# This may be replaced when dependencies are built.
