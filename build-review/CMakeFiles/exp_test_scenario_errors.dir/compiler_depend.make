# Empty compiler generated dependencies file for exp_test_scenario_errors.
# This may be replaced when dependencies are built.
