file(REMOVE_RECURSE
  "CMakeFiles/exp_test_scenario_errors.dir/tests/exp/test_scenario_errors.cpp.o"
  "CMakeFiles/exp_test_scenario_errors.dir/tests/exp/test_scenario_errors.cpp.o.d"
  "exp_test_scenario_errors"
  "exp_test_scenario_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_test_scenario_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
