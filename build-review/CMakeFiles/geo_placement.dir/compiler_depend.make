# Empty compiler generated dependencies file for geo_placement.
# This may be replaced when dependencies are built.
