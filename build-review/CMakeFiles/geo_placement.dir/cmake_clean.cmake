file(REMOVE_RECURSE
  "CMakeFiles/geo_placement.dir/examples/geo_placement.cpp.o"
  "CMakeFiles/geo_placement.dir/examples/geo_placement.cpp.o.d"
  "geo_placement"
  "geo_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
