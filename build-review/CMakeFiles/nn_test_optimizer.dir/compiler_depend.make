# Empty compiler generated dependencies file for nn_test_optimizer.
# This may be replaced when dependencies are built.
