file(REMOVE_RECURSE
  "CMakeFiles/nn_test_optimizer.dir/tests/nn/test_optimizer.cpp.o"
  "CMakeFiles/nn_test_optimizer.dir/tests/nn/test_optimizer.cpp.o.d"
  "nn_test_optimizer"
  "nn_test_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_test_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
