# Empty compiler generated dependencies file for edgesim_test_workload.
# This may be replaced when dependencies are built.
