file(REMOVE_RECURSE
  "CMakeFiles/edgesim_test_workload.dir/tests/edgesim/test_workload.cpp.o"
  "CMakeFiles/edgesim_test_workload.dir/tests/edgesim/test_workload.cpp.o.d"
  "edgesim_test_workload"
  "edgesim_test_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesim_test_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
