file(REMOVE_RECURSE
  "CMakeFiles/edgesim_test_workload_model.dir/tests/edgesim/test_workload_model.cpp.o"
  "CMakeFiles/edgesim_test_workload_model.dir/tests/edgesim/test_workload_model.cpp.o.d"
  "edgesim_test_workload_model"
  "edgesim_test_workload_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesim_test_workload_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
