# Empty dependencies file for edgesim_test_workload_model.
# This may be replaced when dependencies are built.
