# Empty dependencies file for core_test_network_golden.
# This may be replaced when dependencies are built.
