file(REMOVE_RECURSE
  "CMakeFiles/core_test_network_golden.dir/tests/core/test_network_golden.cpp.o"
  "CMakeFiles/core_test_network_golden.dir/tests/core/test_network_golden.cpp.o.d"
  "core_test_network_golden"
  "core_test_network_golden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_network_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
