# Empty dependencies file for edgesim_test_migration_fuzz.
# This may be replaced when dependencies are built.
