file(REMOVE_RECURSE
  "CMakeFiles/edgesim_test_migration_fuzz.dir/tests/edgesim/test_migration_fuzz.cpp.o"
  "CMakeFiles/edgesim_test_migration_fuzz.dir/tests/edgesim/test_migration_fuzz.cpp.o.d"
  "edgesim_test_migration_fuzz"
  "edgesim_test_migration_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesim_test_migration_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
