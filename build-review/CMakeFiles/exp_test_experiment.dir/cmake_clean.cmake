file(REMOVE_RECURSE
  "CMakeFiles/exp_test_experiment.dir/tests/exp/test_experiment.cpp.o"
  "CMakeFiles/exp_test_experiment.dir/tests/exp/test_experiment.cpp.o.d"
  "exp_test_experiment"
  "exp_test_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_test_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
