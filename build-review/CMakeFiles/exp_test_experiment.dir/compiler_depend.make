# Empty compiler generated dependencies file for exp_test_experiment.
# This may be replaced when dependencies are built.
