file(REMOVE_RECURSE
  "CMakeFiles/rl_test_schedule.dir/tests/rl/test_schedule.cpp.o"
  "CMakeFiles/rl_test_schedule.dir/tests/rl/test_schedule.cpp.o.d"
  "rl_test_schedule"
  "rl_test_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_test_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
