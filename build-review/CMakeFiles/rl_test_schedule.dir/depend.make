# Empty dependencies file for rl_test_schedule.
# This may be replaced when dependencies are built.
