file(REMOVE_RECURSE
  "CMakeFiles/vnfmc_inspect.dir/tools/vnfmc_inspect.cpp.o"
  "CMakeFiles/vnfmc_inspect.dir/tools/vnfmc_inspect.cpp.o.d"
  "vnfmc_inspect"
  "vnfmc_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnfmc_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
