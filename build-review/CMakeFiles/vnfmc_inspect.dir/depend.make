# Empty dependencies file for vnfmc_inspect.
# This may be replaced when dependencies are built.
