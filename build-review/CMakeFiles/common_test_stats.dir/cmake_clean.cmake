file(REMOVE_RECURSE
  "CMakeFiles/common_test_stats.dir/tests/common/test_stats.cpp.o"
  "CMakeFiles/common_test_stats.dir/tests/common/test_stats.cpp.o.d"
  "common_test_stats"
  "common_test_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_test_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
