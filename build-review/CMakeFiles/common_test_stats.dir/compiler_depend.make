# Empty compiler generated dependencies file for common_test_stats.
# This may be replaced when dependencies are built.
