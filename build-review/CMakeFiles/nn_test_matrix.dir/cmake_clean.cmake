file(REMOVE_RECURSE
  "CMakeFiles/nn_test_matrix.dir/tests/nn/test_matrix.cpp.o"
  "CMakeFiles/nn_test_matrix.dir/tests/nn/test_matrix.cpp.o.d"
  "nn_test_matrix"
  "nn_test_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_test_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
