# Empty compiler generated dependencies file for nn_test_matrix.
# This may be replaced when dependencies are built.
