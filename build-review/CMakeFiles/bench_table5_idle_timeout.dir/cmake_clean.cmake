file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_idle_timeout.dir/bench/bench_table5_idle_timeout.cpp.o"
  "CMakeFiles/bench_table5_idle_timeout.dir/bench/bench_table5_idle_timeout.cpp.o.d"
  "bench_table5_idle_timeout"
  "bench_table5_idle_timeout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_idle_timeout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
