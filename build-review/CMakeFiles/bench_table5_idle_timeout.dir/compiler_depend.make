# Empty compiler generated dependencies file for bench_table5_idle_timeout.
# This may be replaced when dependencies are built.
