# Empty compiler generated dependencies file for core_test_integration.
# This may be replaced when dependencies are built.
