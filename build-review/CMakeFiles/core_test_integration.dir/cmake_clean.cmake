file(REMOVE_RECURSE
  "CMakeFiles/core_test_integration.dir/tests/core/test_integration.cpp.o"
  "CMakeFiles/core_test_integration.dir/tests/core/test_integration.cpp.o.d"
  "core_test_integration"
  "core_test_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
