file(REMOVE_RECURSE
  "CMakeFiles/rl_test_tabular.dir/tests/rl/test_tabular.cpp.o"
  "CMakeFiles/rl_test_tabular.dir/tests/rl/test_tabular.cpp.o.d"
  "rl_test_tabular"
  "rl_test_tabular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_test_tabular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
