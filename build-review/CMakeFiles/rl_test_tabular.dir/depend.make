# Empty dependencies file for rl_test_tabular.
# This may be replaced when dependencies are built.
