# Empty compiler generated dependencies file for edgesim_test_trace_recording.
# This may be replaced when dependencies are built.
