file(REMOVE_RECURSE
  "CMakeFiles/edgesim_test_trace_recording.dir/tests/edgesim/test_trace_recording.cpp.o"
  "CMakeFiles/edgesim_test_trace_recording.dir/tests/edgesim/test_trace_recording.cpp.o.d"
  "edgesim_test_trace_recording"
  "edgesim_test_trace_recording.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesim_test_trace_recording.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
