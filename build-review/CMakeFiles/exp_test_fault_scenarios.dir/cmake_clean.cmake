file(REMOVE_RECURSE
  "CMakeFiles/exp_test_fault_scenarios.dir/tests/exp/test_fault_scenarios.cpp.o"
  "CMakeFiles/exp_test_fault_scenarios.dir/tests/exp/test_fault_scenarios.cpp.o.d"
  "exp_test_fault_scenarios"
  "exp_test_fault_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_test_fault_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
