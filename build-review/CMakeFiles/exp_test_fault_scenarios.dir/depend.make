# Empty dependencies file for exp_test_fault_scenarios.
# This may be replaced when dependencies are built.
