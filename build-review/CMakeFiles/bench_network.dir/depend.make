# Empty dependencies file for bench_network.
# This may be replaced when dependencies are built.
