file(REMOVE_RECURSE
  "CMakeFiles/bench_network.dir/bench/bench_network.cpp.o"
  "CMakeFiles/bench_network.dir/bench/bench_network.cpp.o.d"
  "bench_network"
  "bench_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
