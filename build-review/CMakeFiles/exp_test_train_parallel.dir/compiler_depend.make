# Empty compiler generated dependencies file for exp_test_train_parallel.
# This may be replaced when dependencies are built.
