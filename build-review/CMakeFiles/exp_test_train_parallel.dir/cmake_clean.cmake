file(REMOVE_RECURSE
  "CMakeFiles/exp_test_train_parallel.dir/tests/exp/test_train_parallel.cpp.o"
  "CMakeFiles/exp_test_train_parallel.dir/tests/exp/test_train_parallel.cpp.o.d"
  "exp_test_train_parallel"
  "exp_test_train_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_test_train_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
