# Empty dependencies file for core_test_drl_manager.
# This may be replaced when dependencies are built.
