file(REMOVE_RECURSE
  "CMakeFiles/core_test_drl_manager.dir/tests/core/test_drl_manager.cpp.o"
  "CMakeFiles/core_test_drl_manager.dir/tests/core/test_drl_manager.cpp.o.d"
  "core_test_drl_manager"
  "core_test_drl_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_drl_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
