file(REMOVE_RECURSE
  "CMakeFiles/bench_grad_step.dir/bench/bench_grad_step.cpp.o"
  "CMakeFiles/bench_grad_step.dir/bench/bench_grad_step.cpp.o.d"
  "bench_grad_step"
  "bench_grad_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grad_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
