# Empty compiler generated dependencies file for bench_grad_step.
# This may be replaced when dependencies are built.
