# Empty dependencies file for core_test_migration.
# This may be replaced when dependencies are built.
