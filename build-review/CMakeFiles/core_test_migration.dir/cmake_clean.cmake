file(REMOVE_RECURSE
  "CMakeFiles/core_test_migration.dir/tests/core/test_migration.cpp.o"
  "CMakeFiles/core_test_migration.dir/tests/core/test_migration.cpp.o.d"
  "core_test_migration"
  "core_test_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
