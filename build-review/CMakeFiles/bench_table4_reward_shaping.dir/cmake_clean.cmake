file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_reward_shaping.dir/bench/bench_table4_reward_shaping.cpp.o"
  "CMakeFiles/bench_table4_reward_shaping.dir/bench/bench_table4_reward_shaping.cpp.o.d"
  "bench_table4_reward_shaping"
  "bench_table4_reward_shaping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_reward_shaping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
