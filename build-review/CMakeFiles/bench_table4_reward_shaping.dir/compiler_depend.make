# Empty compiler generated dependencies file for bench_table4_reward_shaping.
# This may be replaced when dependencies are built.
