# Empty compiler generated dependencies file for diurnal_autoscaling.
# This may be replaced when dependencies are built.
