file(REMOVE_RECURSE
  "CMakeFiles/diurnal_autoscaling.dir/examples/diurnal_autoscaling.cpp.o"
  "CMakeFiles/diurnal_autoscaling.dir/examples/diurnal_autoscaling.cpp.o.d"
  "diurnal_autoscaling"
  "diurnal_autoscaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diurnal_autoscaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
