file(REMOVE_RECURSE
  "CMakeFiles/core_test_learner_parallel.dir/tests/core/test_learner_parallel.cpp.o"
  "CMakeFiles/core_test_learner_parallel.dir/tests/core/test_learner_parallel.cpp.o.d"
  "core_test_learner_parallel"
  "core_test_learner_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_learner_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
