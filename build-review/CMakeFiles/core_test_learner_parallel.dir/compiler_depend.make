# Empty compiler generated dependencies file for core_test_learner_parallel.
# This may be replaced when dependencies are built.
