file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_diurnal.dir/bench/bench_fig8_diurnal.cpp.o"
  "CMakeFiles/bench_fig8_diurnal.dir/bench/bench_fig8_diurnal.cpp.o.d"
  "bench_fig8_diurnal"
  "bench_fig8_diurnal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_diurnal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
