file(REMOVE_RECURSE
  "CMakeFiles/edgesim_test_topology.dir/tests/edgesim/test_topology.cpp.o"
  "CMakeFiles/edgesim_test_topology.dir/tests/edgesim/test_topology.cpp.o.d"
  "edgesim_test_topology"
  "edgesim_test_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesim_test_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
