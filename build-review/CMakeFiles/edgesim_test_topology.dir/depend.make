# Empty dependencies file for edgesim_test_topology.
# This may be replaced when dependencies are built.
