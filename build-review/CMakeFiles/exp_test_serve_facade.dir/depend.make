# Empty dependencies file for exp_test_serve_facade.
# This may be replaced when dependencies are built.
