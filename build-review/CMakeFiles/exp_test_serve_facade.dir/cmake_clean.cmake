file(REMOVE_RECURSE
  "CMakeFiles/exp_test_serve_facade.dir/tests/exp/test_serve_facade.cpp.o"
  "CMakeFiles/exp_test_serve_facade.dir/tests/exp/test_serve_facade.cpp.o.d"
  "exp_test_serve_facade"
  "exp_test_serve_facade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_test_serve_facade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
