file(REMOVE_RECURSE
  "CMakeFiles/checkpointing.dir/examples/checkpointing.cpp.o"
  "CMakeFiles/checkpointing.dir/examples/checkpointing.cpp.o.d"
  "checkpointing"
  "checkpointing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpointing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
