# Empty dependencies file for checkpointing.
# This may be replaced when dependencies are built.
