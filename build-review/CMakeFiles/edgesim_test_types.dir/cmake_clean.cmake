file(REMOVE_RECURSE
  "CMakeFiles/edgesim_test_types.dir/tests/edgesim/test_types.cpp.o"
  "CMakeFiles/edgesim_test_types.dir/tests/edgesim/test_types.cpp.o.d"
  "edgesim_test_types"
  "edgesim_test_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesim_test_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
