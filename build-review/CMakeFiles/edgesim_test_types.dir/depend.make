# Empty dependencies file for edgesim_test_types.
# This may be replaced when dependencies are built.
