file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_acceptance.dir/bench/bench_fig6_acceptance.cpp.o"
  "CMakeFiles/bench_fig6_acceptance.dir/bench/bench_fig6_acceptance.cpp.o.d"
  "bench_fig6_acceptance"
  "bench_fig6_acceptance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_acceptance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
