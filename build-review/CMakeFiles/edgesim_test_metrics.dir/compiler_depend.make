# Empty compiler generated dependencies file for edgesim_test_metrics.
# This may be replaced when dependencies are built.
