file(REMOVE_RECURSE
  "CMakeFiles/edgesim_test_metrics.dir/tests/edgesim/test_metrics.cpp.o"
  "CMakeFiles/edgesim_test_metrics.dir/tests/edgesim/test_metrics.cpp.o.d"
  "edgesim_test_metrics"
  "edgesim_test_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesim_test_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
