file(REMOVE_RECURSE
  "CMakeFiles/rl_test_replay.dir/tests/rl/test_replay.cpp.o"
  "CMakeFiles/rl_test_replay.dir/tests/rl/test_replay.cpp.o.d"
  "rl_test_replay"
  "rl_test_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_test_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
