# Empty compiler generated dependencies file for rl_test_replay.
# This may be replaced when dependencies are built.
