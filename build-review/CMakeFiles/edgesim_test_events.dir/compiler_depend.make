# Empty compiler generated dependencies file for edgesim_test_events.
# This may be replaced when dependencies are built.
