file(REMOVE_RECURSE
  "CMakeFiles/edgesim_test_events.dir/tests/edgesim/test_events.cpp.o"
  "CMakeFiles/edgesim_test_events.dir/tests/edgesim/test_events.cpp.o.d"
  "edgesim_test_events"
  "edgesim_test_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesim_test_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
