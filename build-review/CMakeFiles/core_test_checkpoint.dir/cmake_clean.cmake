file(REMOVE_RECURSE
  "CMakeFiles/core_test_checkpoint.dir/tests/core/test_checkpoint.cpp.o"
  "CMakeFiles/core_test_checkpoint.dir/tests/core/test_checkpoint.cpp.o.d"
  "core_test_checkpoint"
  "core_test_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
