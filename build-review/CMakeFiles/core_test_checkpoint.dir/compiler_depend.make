# Empty compiler generated dependencies file for core_test_checkpoint.
# This may be replaced when dependencies are built.
