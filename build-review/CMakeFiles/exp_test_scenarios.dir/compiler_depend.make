# Empty compiler generated dependencies file for exp_test_scenarios.
# This may be replaced when dependencies are built.
