file(REMOVE_RECURSE
  "CMakeFiles/exp_test_checkpoint_resume.dir/tests/exp/test_checkpoint_resume.cpp.o"
  "CMakeFiles/exp_test_checkpoint_resume.dir/tests/exp/test_checkpoint_resume.cpp.o.d"
  "exp_test_checkpoint_resume"
  "exp_test_checkpoint_resume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_test_checkpoint_resume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
