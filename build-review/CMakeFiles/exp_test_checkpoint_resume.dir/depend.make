# Empty dependencies file for exp_test_checkpoint_resume.
# This may be replaced when dependencies are built.
