# Empty dependencies file for rl_test_actor_critic.
# This may be replaced when dependencies are built.
