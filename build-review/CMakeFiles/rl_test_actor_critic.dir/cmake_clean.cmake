file(REMOVE_RECURSE
  "CMakeFiles/rl_test_actor_critic.dir/tests/rl/test_actor_critic.cpp.o"
  "CMakeFiles/rl_test_actor_critic.dir/tests/rl/test_actor_critic.cpp.o.d"
  "rl_test_actor_critic"
  "rl_test_actor_critic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_test_actor_critic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
