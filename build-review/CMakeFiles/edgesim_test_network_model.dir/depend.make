# Empty dependencies file for edgesim_test_network_model.
# This may be replaced when dependencies are built.
