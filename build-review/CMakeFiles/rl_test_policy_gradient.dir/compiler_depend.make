# Empty compiler generated dependencies file for rl_test_policy_gradient.
# This may be replaced when dependencies are built.
