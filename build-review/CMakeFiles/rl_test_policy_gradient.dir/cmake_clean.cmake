file(REMOVE_RECURSE
  "CMakeFiles/rl_test_policy_gradient.dir/tests/rl/test_policy_gradient.cpp.o"
  "CMakeFiles/rl_test_policy_gradient.dir/tests/rl/test_policy_gradient.cpp.o.d"
  "rl_test_policy_gradient"
  "rl_test_policy_gradient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_test_policy_gradient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
