file(REMOVE_RECURSE
  "CMakeFiles/nn_test_loss.dir/tests/nn/test_loss.cpp.o"
  "CMakeFiles/nn_test_loss.dir/tests/nn/test_loss.cpp.o.d"
  "nn_test_loss"
  "nn_test_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_test_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
