# Empty compiler generated dependencies file for nn_test_loss.
# This may be replaced when dependencies are built.
