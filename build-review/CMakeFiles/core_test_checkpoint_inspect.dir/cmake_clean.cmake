file(REMOVE_RECURSE
  "CMakeFiles/core_test_checkpoint_inspect.dir/tests/core/test_checkpoint_inspect.cpp.o"
  "CMakeFiles/core_test_checkpoint_inspect.dir/tests/core/test_checkpoint_inspect.cpp.o.d"
  "core_test_checkpoint_inspect"
  "core_test_checkpoint_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_checkpoint_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
