# Empty dependencies file for core_test_checkpoint_inspect.
# This may be replaced when dependencies are built.
