# Empty compiler generated dependencies file for core_test_runner.
# This may be replaced when dependencies are built.
