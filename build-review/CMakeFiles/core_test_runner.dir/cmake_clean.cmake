file(REMOVE_RECURSE
  "CMakeFiles/core_test_runner.dir/tests/core/test_runner.cpp.o"
  "CMakeFiles/core_test_runner.dir/tests/core/test_runner.cpp.o.d"
  "core_test_runner"
  "core_test_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
