file(REMOVE_RECURSE
  "CMakeFiles/core_test_train_driver.dir/tests/core/test_train_driver.cpp.o"
  "CMakeFiles/core_test_train_driver.dir/tests/core/test_train_driver.cpp.o.d"
  "core_test_train_driver"
  "core_test_train_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_train_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
