# Empty compiler generated dependencies file for core_test_train_driver.
# This may be replaced when dependencies are built.
