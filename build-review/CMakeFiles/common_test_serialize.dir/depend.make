# Empty dependencies file for common_test_serialize.
# This may be replaced when dependencies are built.
