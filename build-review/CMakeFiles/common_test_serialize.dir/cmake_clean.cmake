file(REMOVE_RECURSE
  "CMakeFiles/common_test_serialize.dir/tests/common/test_serialize.cpp.o"
  "CMakeFiles/common_test_serialize.dir/tests/common/test_serialize.cpp.o.d"
  "common_test_serialize"
  "common_test_serialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_test_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
