#!/usr/bin/env bash
# Doc-coverage gate for the public API surface: every public declaration in
# the exp headers (the repo's public entry point) and common/serialize.hpp
# (the checkpoint archive contract) must carry a doc comment — either a
# `//`-comment line directly above, or a trailing `///<`.
#
# Heuristic line-based check (no compiler needed, runs in CI):
#   * inside `struct`/`public:` sections, a line that starts a declaration
#     (identifier at member indent, not a continuation of the previous line)
#     must be documented;
#   * top-level `class`/`struct`/`enum`/free-function declarations likewise;
#   * private/protected sections, implementation blocks, and continuation
#     lines are exempt.
# Exit status: 0 when fully documented, 1 otherwise (listing every miss).
set -u
cd "$(dirname "$0")/.."

FILES=$(ls src/exp/*.hpp src/common/serialize.hpp)
status=0

for file in $FILES; do
  misses=$(awk '
    function code_of(line) {           # strip trailing // comment
      sub(/[[:space:]]*\/\/.*$/, "", line)
      return line
    }
    BEGIN { access = "public"; prev_comment = 0; prev_open = 1; depth = 0 }
    {
      line = $0
      # Track access sections.
      if (line ~ /^[[:space:]]*(private|protected):/) { access = "private"; prev_comment = 0; prev_open = 1; next }
      if (line ~ /^[[:space:]]*public:/)              { access = "public";  prev_comment = 0; prev_open = 1; next }
      # class => private until public:, struct => public.
      if (line ~ /^(class|struct|enum)[[:space:]]/ && depth == 0) {
        if (!prev_comment && line !~ /\/\/\//) printf "%d: %s\n", NR, line
        access = (line ~ /^class/) ? "private" : "public"
      } else if (depth == 0 || (depth == 1 && access == "public")) {
        code = code_of(line)
        is_code = code ~ /[^[:space:]]/
        starts_decl = 0
        if (is_code && prev_open) {
          if (depth == 0 && code ~ /^[A-Za-z_\[]/ &&
              code !~ /^(namespace|using|template|\}|\{|#)/)
            starts_decl = 1
          if (depth == 1 && code ~ /^  [A-Za-z_~\[]/ &&
              code !~ /^  (using namespace|\}|\{)/)
            starts_decl = 1
        }
        if (starts_decl && !prev_comment && line !~ /\/\/\//)
          printf "%d: %s\n", NR, line
      }
      # Bookkeeping for the next line.
      code = code_of(line)
      if (code ~ /[^[:space:]]/) {
        prev_comment = (line ~ /^[[:space:]]*\/\//)
        # The next line starts a new declaration only if this code line
        # finished one (or opened/closed a scope).
        prev_open = (code ~ /[;{}]([[:space:]])*$/ || line ~ /^[[:space:]]*\/\//)
      } else {
        prev_comment = (line ~ /^[[:space:]]*\/\//)
        prev_open = 1
      }
      # Brace depth (namespace braces are balanced on their own lines here).
      n_open = gsub(/\{/, "{", code); n_close = gsub(/\}/, "}", code)
      depth += n_open - n_close
      if (line ~ /^namespace .*\{/) depth -= 1   # namespaces do not nest API depth
    }
  ' "$file")
  if [ -n "$misses" ]; then
    echo "UNDOCUMENTED public declarations in $file:"
    echo "$misses" | sed 's/^/  /'
    status=1
  fi
done

if [ $status -eq 0 ]; then
  echo "doc coverage OK: every public declaration in $(echo $FILES | wc -w) header(s) is documented"
fi
exit $status
