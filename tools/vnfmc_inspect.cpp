// vnfmc-inspect: dumps a training checkpoint archive (.vnfmc) without
// constructing the policy that wrote it — meta (episodes/seed/policy tag),
// accumulated train stats (including the v2 xstats gradient suffix), and the
// learning curve, as human-readable text or JSON.
//
//   vnfmc_inspect <archive.vnfmc>            summary text
//   vnfmc_inspect --curve <archive.vnfmc>    text plus every curve row
//   vnfmc_inspect --json <archive.vnfmc>     full JSON document
//   vnfmc_inspect --selftest                 writes, inspects, and verifies a
//                                            scratch archive (CI smoke test)
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/manager.hpp"

using namespace vnfm;

namespace {

std::string number(double value) {
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

void print_text(const core::CheckpointInfo& info, bool with_curve) {
  std::cout << "policy:          " << info.policy << "\n"
            << "episodes_done:   " << info.episodes_done << "\n"
            << "base_seed:       " << info.base_seed << "\n"
            << "manager_bytes:   " << info.manager_bytes << "\n"
            << "wall_seconds:    " << info.stats.wall_seconds << "\n"
            << "transitions:     " << info.stats.transitions << "\n"
            << "episodes:        " << info.stats.episodes << "\n"
            << "rounds:          " << info.stats.rounds << "\n"
            << "actor_threads:   " << info.stats.actor_threads << "\n"
            << "parallel:        " << (info.stats.parallel ? "yes" : "no") << "\n"
            << "grad_steps:      " << info.stats.grad_steps << "\n"
            << "grad_step_us:    " << info.stats.grad_step_micros() << "\n"
            << "curve_entries:   " << info.curve.size() << "\n";
  if (!info.curve.empty()) {
    const core::EpisodeResult& last = info.curve.back();
    std::cout << "last_episode:    reward=" << last.total_reward
              << " cost/req=" << last.cost_per_request
              << " acceptance=" << last.acceptance_ratio << "\n";
  }
  if (with_curve) {
    std::cout << "episode,seed,total_reward,cost_per_request,acceptance_ratio\n";
    for (std::size_t i = 0; i < info.curve.size(); ++i) {
      std::cout << i << ','
                << (i < info.seeds.size() ? std::to_string(info.seeds[i]) : "") << ','
                << info.curve[i].total_reward << ',' << info.curve[i].cost_per_request
                << ',' << info.curve[i].acceptance_ratio << "\n";
    }
  }
}

void print_json(const core::CheckpointInfo& info) {
  std::cout << "{\n  \"policy\": \"" << info.policy << "\",\n"
            << "  \"episodes_done\": " << info.episodes_done << ",\n"
            << "  \"base_seed\": " << info.base_seed << ",\n"
            << "  \"manager_bytes\": " << info.manager_bytes << ",\n"
            << "  \"stats\": {\n"
            << "    \"wall_seconds\": " << number(info.stats.wall_seconds) << ",\n"
            << "    \"transitions\": " << info.stats.transitions << ",\n"
            << "    \"episodes\": " << info.stats.episodes << ",\n"
            << "    \"rounds\": " << info.stats.rounds << ",\n"
            << "    \"actor_threads\": " << info.stats.actor_threads << ",\n"
            << "    \"parallel\": " << (info.stats.parallel ? "true" : "false") << ",\n"
            << "    \"grad_steps\": " << info.stats.grad_steps << ",\n"
            << "    \"grad_seconds\": " << number(info.stats.grad_seconds) << ",\n"
            << "    \"grad_step_micros\": " << number(info.stats.grad_step_micros())
            << "\n  },\n  \"curve\": [\n";
  for (std::size_t i = 0; i < info.curve.size(); ++i) {
    const core::EpisodeResult& r = info.curve[i];
    std::cout << "    {\"episode\": " << i;
    if (i < info.seeds.size()) std::cout << ", \"seed\": " << info.seeds[i];
    std::cout << ", \"total_reward\": " << number(r.total_reward)
              << ", \"requests\": " << r.requests
              << ", \"cost_per_request\": " << number(r.cost_per_request)
              << ", \"total_cost\": " << number(r.total_cost)
              << ", \"acceptance_ratio\": " << number(r.acceptance_ratio)
              << ", \"mean_latency_ms\": " << number(r.mean_latency_ms)
              << ", \"sla_violation_ratio\": " << number(r.sla_violation_ratio) << "}"
              << (i + 1 < info.curve.size() ? "," : "") << "\n";
  }
  std::cout << "  ]\n}\n";
}

/// Minimal stateless manager — just enough for write_checkpoint to stamp a
/// policy tag onto the selftest archive.
class SelftestManager final : public core::Manager {
 public:
  [[nodiscard]] std::string name() const override { return "selftest"; }
  [[nodiscard]] int select_action(core::VnfEnv& env) override {
    return env.reject_action();
  }
  [[nodiscard]] std::string checkpoint_state() const override {
    return "selftest/v1";
  }
};

/// Round-trips a scratch archive through write_checkpoint →
/// inspect_checkpoint and verifies every inspected field.
int selftest() {
  namespace fs = std::filesystem;
  const fs::path path =
      fs::temp_directory_path() / "vnfmc_inspect_selftest.vnfmc";

  core::TrainCheckpoint data;
  data.episodes_done = 3;
  data.base_seed = 42;
  data.curve.resize(3);
  for (std::size_t i = 0; i < data.curve.size(); ++i) {
    data.curve[i].total_reward = static_cast<double>(i) * 1.5;
    data.curve[i].requests = 10 + i;
    data.seeds.push_back(core::train_seed(42, i));
  }
  data.stats.wall_seconds = 1.25;
  data.stats.transitions = 30;
  data.stats.episodes = 3;
  data.stats.grad_steps = 7;
  data.stats.grad_seconds = 0.7;

  const SelftestManager manager;
  core::write_checkpoint(path.string(), manager, data);
  const core::CheckpointInfo info = core::inspect_checkpoint(path.string());
  std::error_code ec;
  fs::remove(path, ec);

  const bool ok = info.policy == "selftest/v1" && info.episodes_done == 3 &&
                  info.base_seed == 42 && info.curve.size() == 3 &&
                  info.seeds == data.seeds &&
                  info.curve[2].total_reward == 3.0 &&
                  info.curve[2].requests == 12 &&
                  info.stats.transitions == 30 && info.stats.grad_steps == 7 &&
                  info.stats.grad_seconds == 0.7;
  std::cout << "vnfmc_inspect selftest: " << (ok ? "ok" : "FAILED") << "\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool with_curve = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--selftest") return selftest();
    if (arg == "--json") {
      json = true;
    } else if (arg == "--curve") {
      with_curve = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: vnfmc_inspect [--json|--curve] <archive.vnfmc>\n"
                   "       vnfmc_inspect --selftest\n";
      return 0;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: vnfmc_inspect [--json|--curve] <archive.vnfmc>\n";
    return 2;
  }
  try {
    const core::CheckpointInfo info = core::inspect_checkpoint(path);
    if (json)
      print_json(info);
    else
      print_text(info, with_curve);
  } catch (const std::exception& error) {
    std::cerr << "vnfmc_inspect: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
