#include "core/train_driver.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "core/checkpoint.hpp"

namespace vnfm::core {
namespace {

/// One recorded decision step (owned copies of the spans a TransitionView
/// exposes, so the learner can replay it after the episode finished).
struct RecordedStep {
  std::vector<float> state;
  std::vector<std::uint8_t> mask;
  std::vector<float> coarse_state;
  int action = 0;
  float reward = 0.0F;
  bool done = false;
  std::vector<float> next_state;
  std::vector<std::uint8_t> next_mask;
  std::vector<float> next_coarse_state;
};

/// Everything one actor hands to the learner about one episode.
struct EpisodeTranscript {
  std::vector<RecordedStep> steps;
  EpisodeResult result;
};

[[nodiscard]] TransitionView view_of(const RecordedStep& step) {
  TransitionView view;
  view.state = step.state;
  view.mask = step.mask;
  view.coarse_state = step.coarse_state;
  view.action = step.action;
  view.reward = step.reward;
  view.done = step.done;
  view.next_state = step.next_state;
  view.next_mask = step.next_mask;
  view.next_coarse_state = step.next_coarse_state;
  return view;
}

/// Actor-side wrapper: delegates action selection to the acting clone and
/// captures the transitions the runner would normally feed to a learner.
class RecordingManager final : public Manager {
 public:
  RecordingManager(Manager& actor, std::vector<RecordedStep>* out)
      : actor_(actor), out_(out) {}

  [[nodiscard]] std::string name() const override { return actor_.name(); }
  void on_episode_start(VnfEnv& env) override { actor_.on_episode_start(env); }
  [[nodiscard]] int select_action(VnfEnv& env) override {
    return actor_.select_action(env);
  }
  void on_chain_end(VnfEnv& env) override { actor_.on_chain_end(env); }
  void set_training(bool training) override { actor_.set_training(training); }

  void observe(const TransitionView& t) override {
    RecordedStep step;
    step.state.assign(t.state.begin(), t.state.end());
    step.mask.assign(t.mask.begin(), t.mask.end());
    step.coarse_state.assign(t.coarse_state.begin(), t.coarse_state.end());
    step.action = t.action;
    step.reward = t.reward;
    step.done = t.done;
    step.next_state.assign(t.next_state.begin(), t.next_state.end());
    step.next_mask.assign(t.next_mask.begin(), t.next_mask.end());
    step.next_coarse_state.assign(t.next_coarse_state.begin(),
                                  t.next_coarse_state.end());
    out_->push_back(std::move(step));
  }

 private:
  Manager& actor_;
  std::vector<RecordedStep>* out_;
};

/// Sequential-path wrapper: forwards everything, counts decision steps so
/// both paths report transitions with the same definition.
class CountingManager final : public Manager {
 public:
  CountingManager(Manager& inner, std::size_t* transitions)
      : inner_(inner), transitions_(transitions) {}

  [[nodiscard]] std::string name() const override { return inner_.name(); }
  void on_episode_start(VnfEnv& env) override { inner_.on_episode_start(env); }
  [[nodiscard]] int select_action(VnfEnv& env) override {
    return inner_.select_action(env);
  }
  void observe(const TransitionView& t) override {
    ++*transitions_;
    inner_.observe(t);
  }
  void on_chain_end(VnfEnv& env) override { inner_.on_chain_end(env); }
  void set_training(bool training) override { inner_.set_training(training); }

 private:
  Manager& inner_;
  std::size_t* transitions_;
};

[[nodiscard]] std::size_t resolve_threads(std::size_t threads) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  return threads == 0 ? 1 : threads;
}

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Writes the manager's gradient work since `before` into `stats` (the
/// manager counts lifetime totals; a run reports only its own delta).
void fold_grad_delta(TrainStats& stats, const GradStepStats& before,
                     const GradStepStats& now) {
  stats.grad_steps = now.steps - before.steps;
  stats.grad_seconds = now.seconds - before.seconds;
}

}  // namespace

TrainDriver::TrainDriver(EnvOptions env_options, TrainOptions options)
    : env_options_(std::move(env_options)), options_(std::move(options)) {}

void TrainDriver::write_run_checkpoint(const Manager& manager, const TrainResult& result,
                                       std::size_t completed, double partial_seconds,
                                       const GradStepStats& grad_before) const {
  if (options_.checkpoint_every == 0 || options_.checkpoint_dir.empty()) return;
  std::filesystem::create_directories(options_.checkpoint_dir);

  // result.stats mid-run: wall_seconds/episodes/grad work are not final
  // yet, so patch in the progress so far before folding onto the prior
  // history.
  TrainStats partial = result.stats;
  partial.wall_seconds = partial_seconds;
  partial.episodes = completed;
  fold_grad_delta(partial, grad_before, manager.grad_step_stats());

  TrainCheckpoint data;
  data.episodes_done = options_.first_episode + completed;
  data.base_seed = options_.episode.seed;
  data.curve = options_.prior_curve;
  data.curve.insert(data.curve.end(), result.curve.begin(),
                    result.curve.begin() + static_cast<std::ptrdiff_t>(completed));
  data.seeds = options_.prior_seeds;
  data.seeds.insert(data.seeds.end(), result.seeds.begin(),
                    result.seeds.begin() + static_cast<std::ptrdiff_t>(completed));
  data.stats = options_.prior_stats;
  data.stats.accumulate(partial);

  const std::filesystem::path file =
      std::filesystem::path(options_.checkpoint_dir) /
      checkpoint_filename(data.episodes_done);
  write_checkpoint(file.string(), manager, data);
  if (options_.keep_last_n > 0)
    prune_checkpoints(options_.checkpoint_dir, options_.keep_last_n);
}

TrainResult TrainDriver::run(Manager& manager) const {
  if (manager.supports_parallel_training()) return run_pipeline(manager);
  return run_sequential(manager);
}

TrainResult TrainDriver::run_sequential(Manager& manager, VnfEnv* env) const {
  const auto start = Clock::now();
  TrainResult result;
  result.curve.reserve(options_.episodes);
  result.seeds.reserve(options_.episodes);

  std::unique_ptr<VnfEnv> owned;
  if (env == nullptr) {
    owned = std::make_unique<VnfEnv>(env_options_);
    env = owned.get();
  }

  EpisodeOptions episode = options_.episode;
  episode.training = true;
  const std::uint64_t base_seed = options_.episode.seed;
  const std::size_t learner_workers = resolve_threads(options_.learner_threads);
  manager.set_learner_threads(learner_workers);
  const GradStepStats grad_before = manager.grad_step_stats();
  result.stats.actor_threads = 1;
  result.stats.parallel = false;
  result.stats.learner_threads = learner_workers;
  CountingManager counting(manager, &result.stats.transitions);
  for (std::size_t i = 0; i < options_.episodes; ++i) {
    episode.seed = train_seed(base_seed, options_.first_episode + i);
    result.seeds.push_back(episode.seed);
    result.curve.push_back(run_episode(*env, counting, episode));
    // Sequential learners update inline, so any episode boundary is a
    // resume-exact cut point.
    if (options_.checkpoint_every != 0 && (i + 1) % options_.checkpoint_every == 0)
      write_run_checkpoint(manager, result, i + 1, seconds_since(start), grad_before);
  }

  result.stats.wall_seconds = seconds_since(start);
  result.stats.episodes = options_.episodes;
  fold_grad_delta(result.stats, grad_before, manager.grad_step_stats());
  return result;
}

TrainResult TrainDriver::run_pipeline(Manager& learner) const {
  const auto start = Clock::now();
  const std::size_t episodes = options_.episodes;
  const std::size_t sync_period = std::max<std::size_t>(1, options_.sync_period);

  TrainResult result;
  result.curve.resize(episodes);
  result.seeds.resize(episodes);
  const std::uint64_t base_seed = options_.episode.seed;
  for (std::size_t i = 0; i < episodes; ++i)
    result.seeds[i] = train_seed(base_seed, options_.first_episode + i);

  EpisodeOptions episode = options_.episode;
  episode.training = true;
  learner.set_training(true);
  const std::size_t learner_workers = resolve_threads(options_.learner_threads);
  learner.set_learner_threads(learner_workers);
  const GradStepStats grad_before = learner.grad_step_stats();

  // Persistent per-worker actors and environments; a round never needs more
  // workers than it has episodes.
  const std::size_t workers =
      std::min(resolve_threads(options_.threads), std::max<std::size_t>(1, sync_period));
  std::vector<std::unique_ptr<Manager>> actors;
  std::vector<std::unique_ptr<VnfEnv>> envs;
  actors.reserve(workers);
  envs.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    auto actor = learner.clone_for_acting();
    if (actor == nullptr) return run_sequential(learner);  // capability lied
    actor->set_training(true);
    actors.push_back(std::move(actor));
    envs.push_back(std::make_unique<VnfEnv>(env_options_));
  }

  result.stats.actor_threads = workers;
  result.stats.parallel = true;
  result.stats.learner_threads = learner_workers;
  std::size_t last_checkpoint = 0;
  for (std::size_t round_start = 0; round_start < episodes;
       round_start += sync_period) {
    const std::size_t count = std::min(sync_period, episodes - round_start);
    ++result.stats.rounds;

    // Round boundary: republish the learner's weights to every actor.
    for (auto& actor : actors) actor->sync_from_learner(learner);

    std::mutex mutex;
    std::condition_variable ready_cv;
    std::vector<EpisodeTranscript> transcripts(count);
    std::vector<bool> ready(count, false);
    bool worker_failed = false;
    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> errors(workers);

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        try {
          while (true) {
            const std::size_t k = next.fetch_add(1);
            if (k >= count) break;
            const std::size_t e = round_start + k;
            // The action stream is a function of the episode seed and the
            // round's weight snapshot only — not of which worker runs it.
            actors[w]->reseed(result.seeds[e]);
            EpisodeOptions opts = episode;
            opts.seed = result.seeds[e];
            EpisodeTranscript transcript;
            RecordingManager recorder(*actors[w], &transcript.steps);
            transcript.result = run_episode(*envs[w], recorder, opts);
            {
              const std::lock_guard<std::mutex> lock(mutex);
              transcripts[k] = std::move(transcript);
              ready[k] = true;
            }
            ready_cv.notify_all();
          }
        } catch (...) {
          {
            const std::lock_guard<std::mutex> lock(mutex);
            errors[w] = std::current_exception();
            worker_failed = true;
          }
          ready_cv.notify_all();
        }
      });
    }

    // Deterministic merge: ingest per-episode transition queues in seed
    // order, pipelined with the actors still running later episodes.
    for (std::size_t k = 0; k < count; ++k) {
      EpisodeTranscript transcript;
      {
        std::unique_lock<std::mutex> lock(mutex);
        ready_cv.wait(lock, [&] { return ready[k] || worker_failed; });
        if (worker_failed) break;
        transcript = std::move(transcripts[k]);
      }
      result.curve[round_start + k] = transcript.result;
      result.stats.transitions += transcript.steps.size();
      for (const RecordedStep& step : transcript.steps) learner.ingest(view_of(step));
    }

    for (auto& worker : pool) worker.join();
    for (const auto& error : errors)
      if (error) std::rethrow_exception(error);

    // Round boundaries are the pipeline's only resume-exact cut points: the
    // next round republishes the learner's weights to every actor, exactly
    // what a resumed run reconstructs from the restored learner.
    const std::size_t completed = round_start + count;
    if (options_.checkpoint_every != 0 &&
        completed - last_checkpoint >= options_.checkpoint_every) {
      write_run_checkpoint(learner, result, completed, seconds_since(start),
                           grad_before);
      last_checkpoint = completed;
    }
  }

  result.stats.wall_seconds = seconds_since(start);
  result.stats.episodes = episodes;
  fold_grad_delta(result.stats, grad_before, learner.grad_step_stats());
  return result;
}

}  // namespace vnfm::core
