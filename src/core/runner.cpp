#include "core/runner.hpp"

#include <stdexcept>

#include "core/train_driver.hpp"

namespace vnfm::core {
namespace {

EpisodeResult snapshot(const VnfEnv& env, double total_reward, std::size_t requests) {
  const auto& metrics = env.metrics();
  EpisodeResult result;
  result.total_reward = total_reward;
  result.requests = requests;
  result.cost_per_request = metrics.cost_per_request();
  result.total_cost = metrics.total_cost();
  result.acceptance_ratio = metrics.acceptance_ratio();
  result.mean_latency_ms = metrics.latency_stats().mean();
  result.p95_latency_ms =
      metrics.latency_sketch().count() > 0 ? metrics.latency_sketch().quantile(0.95) : 0.0;
  result.sla_violation_ratio = metrics.sla_violation_ratio();
  result.mean_utilization = metrics.utilization_stats().mean();
  result.deployments = metrics.deployments();
  result.running_cost = metrics.running_cost_total();
  result.revenue = metrics.revenue_total();
  return result;
}

}  // namespace

EpisodeResult run_episode(VnfEnv& env, Manager& manager, const EpisodeOptions& options) {
  env.reset(options.seed);
  manager.set_training(options.training);
  manager.on_episode_start(env);

  double total_reward = 0.0;
  std::size_t requests = 0;

  std::vector<float> state;
  std::vector<std::uint8_t> mask;
  std::vector<float> coarse;

  while (requests < options.max_requests) {
    if (!env.begin_next_request(options.duration_s)) break;
    ++requests;
    bool done = false;
    while (!done) {
      state.assign(env.features().begin(), env.features().end());
      mask = env.action_mask();
      coarse = env.coarse_features();
      const int action = manager.select_action(env);
      const StepResult step = env.step(action);
      total_reward += step.reward;
      done = step.chain_done;
      if (options.training) {
        TransitionView view;
        view.state = state;
        view.mask = mask;
        view.coarse_state = coarse;
        view.action = action;
        view.reward = step.reward;
        view.done = done;
        std::vector<float> next_coarse;
        if (!done) {
          view.next_state = env.features();
          view.next_mask = env.action_mask();
          next_coarse = env.coarse_features();
          view.next_coarse_state = next_coarse;
          manager.observe(view);
        } else {
          manager.observe(view);
        }
      }
    }
    manager.on_chain_end(env);
  }
  return snapshot(env, total_reward, requests);
}

EpisodeResult mean_result(const std::vector<EpisodeResult>& results) {
  if (results.empty())
    throw std::invalid_argument("mean_result needs at least one episode");
  EpisodeResult mean;
  mean.acceptance_ratio = 0.0;  // override the 'no arrivals' default of 1.0
  for (const EpisodeResult& r : results) {
    mean.total_reward += r.total_reward;
    mean.requests += r.requests;
    mean.cost_per_request += r.cost_per_request;
    mean.total_cost += r.total_cost;
    mean.acceptance_ratio += r.acceptance_ratio;
    mean.mean_latency_ms += r.mean_latency_ms;
    mean.p95_latency_ms += r.p95_latency_ms;
    mean.sla_violation_ratio += r.sla_violation_ratio;
    mean.mean_utilization += r.mean_utilization;
    mean.deployments += r.deployments;
    mean.running_cost += r.running_cost;
    mean.revenue += r.revenue;
  }
  const auto n = static_cast<double>(results.size());
  mean.total_reward /= n;
  mean.requests = static_cast<std::size_t>(static_cast<double>(mean.requests) / n);
  mean.cost_per_request /= n;
  mean.total_cost /= n;
  mean.acceptance_ratio /= n;
  mean.mean_latency_ms /= n;
  mean.p95_latency_ms /= n;
  mean.sla_violation_ratio /= n;
  mean.mean_utilization /= n;
  mean.deployments = static_cast<std::uint64_t>(static_cast<double>(mean.deployments) / n);
  mean.running_cost /= n;
  mean.revenue /= n;
  return mean;
}

std::vector<EpisodeResult> train_manager(VnfEnv& env, Manager& manager,
                                         std::size_t episodes, EpisodeOptions options) {
  // Thin wrapper over the TrainDriver's sequential path, which preserves the
  // historical online-learning semantics (the manager acts and learns within
  // each episode). Parallel actor-learner training goes through TrainDriver
  // or Experiment::train_threads directly.
  TrainOptions train;
  train.episodes = episodes;
  train.episode = options;
  return TrainDriver(env.options(), train).run_sequential(manager, &env).curve;
}

EpisodeResult evaluate_manager(VnfEnv& env, Manager& manager, EpisodeOptions options,
                               std::size_t repeats) {
  if (repeats == 0) throw std::invalid_argument("evaluation needs at least one repeat");
  options.training = false;
  const std::uint64_t base_seed = options.seed;
  std::vector<EpisodeResult> results;
  results.reserve(repeats);
  for (std::size_t i = 0; i < repeats; ++i) {
    options.seed = eval_seed(base_seed, i);  // held-out: disjoint from training
    results.push_back(run_episode(env, manager, options));
  }
  return mean_result(results);
}

}  // namespace vnfm::core
