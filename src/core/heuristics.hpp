// Non-learning baseline managers from the NFV placement literature.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "core/manager.hpp"

namespace vnfm::core {

/// Places each VNF on the feasible node minimising incremental latency
/// (propagation into the node + estimated processing/queueing delay).
/// Latency-optimal per hop, blind to deployment and running costs.
class GreedyLatencyManager : public Manager {
 public:
  [[nodiscard]] std::string name() const override { return "greedy_latency"; }
  [[nodiscard]] int select_action(VnfEnv& env) override;
  [[nodiscard]] std::unique_ptr<Manager> clone_for_eval() const override {
    return std::make_unique<GreedyLatencyManager>(*this);
  }
  /// Stateless policy: the tag alone makes checkpoints self-identifying.
  [[nodiscard]] std::string checkpoint_state() const override {
    return "greedy_latency/v1";
  }
};

/// Myopically minimises the immediate objective-cost increment of the hop:
/// deploy cost (if a new instance is needed) + priced latency. This is the
/// strongest myopic baseline — it optimises exactly the one-step reward the
/// DRL agent sees, so any DRL advantage is attributable to foresight.
class MyopicCostManager : public Manager {
 public:
  [[nodiscard]] std::string name() const override { return "myopic_cost"; }
  [[nodiscard]] int select_action(VnfEnv& env) override;
  [[nodiscard]] std::unique_ptr<Manager> clone_for_eval() const override {
    return std::make_unique<MyopicCostManager>(*this);
  }
  /// Stateless policy: the tag alone makes checkpoints self-identifying.
  [[nodiscard]] std::string checkpoint_state() const override {
    return "myopic_cost/v1";
  }
};

/// First-fit consolidation: reuse the lowest-indexed node holding an
/// instance with headroom; deploy on the lowest-indexed node with room
/// otherwise. Minimises instance count, ignores geography.
class FirstFitManager : public Manager {
 public:
  [[nodiscard]] std::string name() const override { return "first_fit"; }
  [[nodiscard]] int select_action(VnfEnv& env) override;
  [[nodiscard]] std::unique_ptr<Manager> clone_for_eval() const override {
    return std::make_unique<FirstFitManager>(*this);
  }
  /// Stateless policy: the tag alone makes checkpoints self-identifying.
  [[nodiscard]] std::string checkpoint_state() const override {
    return "first_fit/v1";
  }
};

/// Uniformly random feasible placement (sanity floor).
class RandomManager : public Manager {
 public:
  explicit RandomManager(std::uint64_t seed = 99) : seed_(seed), rng_(seed) {}
  [[nodiscard]] std::string name() const override { return "random"; }
  /// Reseeds from base seed x episode seed: each episode's action stream is
  /// reproducible on its own, independent of evaluation order, threading,
  /// or how many episodes ran before it — repeats stay decorrelated.
  void on_episode_start(VnfEnv& env) override {
    rng_ = Rng(seed_ ^ (env.episode_seed() * 0x9E3779B97F4A7C15ULL + 1));
  }
  [[nodiscard]] int select_action(VnfEnv& env) override;
  [[nodiscard]] std::unique_ptr<Manager> clone_for_eval() const override {
    return std::make_unique<RandomManager>(*this);
  }

  [[nodiscard]] std::string checkpoint_state() const override { return "random/v1"; }
  /// Serialises the base seed and the live RNG stream.
  void save(Serializer& out) const override;
  void load(Deserializer& in) override;

 private:
  std::uint64_t seed_;
  Rng rng_;
};

/// Static provisioning: pre-deploys `instances_per_type` pinned instances of
/// every VNF type spread over the nodes at episode start, then routes to the
/// nearest node with spare capacity on an existing instance; rejects when
/// all pre-provisioned capacity is exhausted (never scales).
class StaticProvisionManager : public Manager {
 public:
  explicit StaticProvisionManager(int instances_per_type = 2)
      : instances_per_type_(instances_per_type) {}
  [[nodiscard]] std::string name() const override { return "static_provision"; }
  void on_episode_start(VnfEnv& env) override;
  [[nodiscard]] int select_action(VnfEnv& env) override;
  [[nodiscard]] std::unique_ptr<Manager> clone_for_eval() const override {
    return std::make_unique<StaticProvisionManager>(*this);
  }

  [[nodiscard]] std::string checkpoint_state() const override {
    return "static_provision/v1";
  }
  /// Serialises the provisioning knob so a restored baseline matches.
  void save(Serializer& out) const override;
  void load(Deserializer& in) override;

 private:
  int instances_per_type_;
};

}  // namespace vnfm::core
