// Learning managers: the paper's DQN-based VNF manager plus the REINFORCE
// and tabular Q-learning comparators.
#pragma once

#include <iosfwd>
#include <memory>

#include "core/manager.hpp"
#include "rl/actor_critic.hpp"
#include "rl/dqn.hpp"
#include "rl/policy_gradient.hpp"
#include "rl/tabular.hpp"

namespace vnfm::core {

/// The paper's core contribution: a DQN agent deciding per-VNF placement.
/// Each chain is treated as a bounded sub-episode for bootstrapping (the
/// terminal flag is set at chain commit/reject).
class DqnManager : public Manager {
 public:
  /// Fills state/action dims from the environment; other fields of `config`
  /// (learning rate, double/dueling, replay, epsilon) are caller-controlled.
  DqnManager(const VnfEnv& env, rl::DqnConfig config, std::string name = "dqn");

  /// Environment-free construction; state_dim/action_dim must be set.
  explicit DqnManager(rl::DqnConfig config, std::string name = "dqn");

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] int select_action(VnfEnv& env) override;
  /// Batched greedy decisions (serving engine): gathers every environment's
  /// feature row and validity mask and runs one DqnAgent::act_greedy_block
  /// forward — decision-identical to looping select_action, it only
  /// amortises inference cost. In training mode (where ε-greedy consumes
  /// the exploration RNG once per call) it keeps the sequential base loop.
  void select_actions(std::span<VnfEnv* const> envs, std::span<int> actions) override;
  void observe(const TransitionView& transition) override;
  void set_training(bool training) override;
  [[nodiscard]] std::unique_ptr<Manager> clone_for_eval() const override;

  // Actor-learner split (parallel TrainDriver): acting clones carry a
  // DqnActorView weight snapshot; the learner ingests recorded transitions.
  [[nodiscard]] bool supports_parallel_training() const override { return true; }
  [[nodiscard]] std::unique_ptr<Manager> clone_for_acting() const override;
  void ingest(const TransitionView& transition) override;

  // Data-parallel gradient engine (learner-side worker pool).
  void set_learner_threads(std::size_t workers) override {
    agent_->set_learner_threads(workers);
  }
  [[nodiscard]] GradStepStats grad_step_stats() const override {
    return {agent_->gradient_steps(), agent_->grad_seconds()};
  }

  [[nodiscard]] rl::DqnAgent& agent() noexcept { return *agent_; }
  [[nodiscard]] const rl::DqnAgent& agent() const noexcept { return *agent_; }
  [[nodiscard]] double last_loss() const noexcept { return last_loss_; }

  // Legacy weight-only persistence (text format; policy shipping).
  void save(std::ostream& os) const { agent_->save(os); }
  void load(std::istream& is) { agent_->load(is); }

  // Full-state checkpointing (resume-capable; see core/checkpoint.hpp).
  [[nodiscard]] std::string checkpoint_state() const override { return "dqn/v1"; }
  void save(Serializer& out) const override;
  void load(Deserializer& in) override;

 private:
  [[nodiscard]] rl::Transition to_transition(const TransitionView& view) const;

  std::string name_;
  std::unique_ptr<rl::DqnAgent> agent_;
  bool training_ = true;
  double last_loss_ = 0.0;
  // select_actions staging (reused across calls; serving hot path).
  nn::Matrix batch_states_;
  std::vector<const std::vector<std::uint8_t>*> batch_masks_;
};

/// Acting half of the DqnManager split: an ε-greedy policy over a weight
/// snapshot (rl::DqnActorView) that records nothing and learns nothing. The
/// TrainDriver hands one to each actor thread, reseeds it per episode, and
/// re-syncs it from the learner at round boundaries.
class DqnActorManager : public Manager {
 public:
  DqnActorManager(const DqnManager& learner, std::string name);

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] int select_action(VnfEnv& env) override;
  void set_training(bool training) override { view_.set_exploration_enabled(training); }
  void reseed(std::uint64_t seed) override { view_.reseed(seed); }
  void sync_from_learner(const Manager& learner) override;

 private:
  std::string name_;
  rl::DqnActorView view_;
};

/// REINFORCE policy-gradient manager; updates at every chain end.
class ReinforceManager : public Manager {
 public:
  ReinforceManager(const VnfEnv& env, rl::ReinforceConfig config);

  [[nodiscard]] std::string name() const override { return "reinforce"; }
  [[nodiscard]] int select_action(VnfEnv& env) override;
  void observe(const TransitionView& transition) override;
  void on_chain_end(VnfEnv& env) override;
  void set_training(bool training) override;
  [[nodiscard]] std::unique_ptr<Manager> clone_for_eval() const override;

  [[nodiscard]] std::string checkpoint_state() const override { return "reinforce/v1"; }
  void save(Serializer& out) const override;
  void load(Deserializer& in) override;

  // Data-parallel gradient engine (batched per-episode update).
  void set_learner_threads(std::size_t workers) override {
    agent_->set_learner_threads(workers);
  }
  [[nodiscard]] GradStepStats grad_step_stats() const override {
    return {agent_->gradient_steps(), agent_->grad_seconds()};
  }

  [[nodiscard]] rl::ReinforceAgent& agent() noexcept { return *agent_; }

 private:
  ReinforceManager() = default;  // clone_for_eval scaffolding

  std::unique_ptr<rl::ReinforceAgent> agent_;
  bool training_ = true;
};

/// Online one-step advantage actor-critic manager (A2C-style).
class A2cManager : public Manager {
 public:
  A2cManager(const VnfEnv& env, rl::ActorCriticConfig config);

  [[nodiscard]] std::string name() const override { return "actor_critic"; }
  [[nodiscard]] int select_action(VnfEnv& env) override;
  void observe(const TransitionView& transition) override;
  void set_training(bool training) override;
  [[nodiscard]] std::unique_ptr<Manager> clone_for_eval() const override;

  [[nodiscard]] std::string checkpoint_state() const override {
    return "actor_critic/v1";
  }
  void save(Serializer& out) const override;
  void load(Deserializer& in) override;

  // Data-parallel gradient engine (single-row updates: one block).
  void set_learner_threads(std::size_t workers) override {
    agent_->set_learner_threads(workers);
  }
  [[nodiscard]] GradStepStats grad_step_stats() const override {
    return {agent_->updates(), agent_->grad_seconds()};
  }

  [[nodiscard]] rl::ActorCriticAgent& agent() noexcept { return *agent_; }

 private:
  A2cManager() = default;  // clone_for_eval scaffolding

  std::unique_ptr<rl::ActorCriticAgent> agent_;
  bool training_ = true;
};

/// Tabular Q-learning over the environment's coarse feature hash.
class TabularManager : public Manager {
 public:
  TabularManager(const VnfEnv& env, rl::TabularQConfig config, std::size_t buckets = 4);

  [[nodiscard]] std::string name() const override { return "tabular_q"; }
  [[nodiscard]] int select_action(VnfEnv& env) override;
  void observe(const TransitionView& transition) override;
  void set_training(bool training) override;
  [[nodiscard]] std::unique_ptr<Manager> clone_for_eval() const override;

  // Actor-learner split (parallel TrainDriver): acting clones carry a
  // rl::TabularActorView Q-table snapshot; the learner ingests recorded
  // transitions (which also advances the epsilon schedule it no longer
  // drives by acting).
  [[nodiscard]] bool supports_parallel_training() const override { return true; }
  [[nodiscard]] std::unique_ptr<Manager> clone_for_acting() const override;
  void ingest(const TransitionView& transition) override;

  [[nodiscard]] std::string checkpoint_state() const override { return "tabular_q/v1"; }
  void save(Serializer& out) const override;
  void load(Deserializer& in) override;

  [[nodiscard]] rl::TabularQAgent& agent() noexcept { return *agent_; }
  [[nodiscard]] const rl::TabularQAgent& agent() const noexcept { return *agent_; }
  [[nodiscard]] std::size_t buckets() const noexcept { return buckets_; }

 private:
  TabularManager() = default;  // clone_for_eval scaffolding

  std::unique_ptr<rl::TabularQAgent> agent_;
  std::size_t buckets_ = 4;
  bool training_ = true;
};

/// Acting half of the TabularManager split: ε-greedy over a Q-table snapshot
/// (rl::TabularActorView) that records nothing and learns nothing. The
/// TrainDriver hands one to each actor thread, reseeds it per episode, and
/// re-syncs it from the learner at round boundaries.
class TabularActorManager : public Manager {
 public:
  TabularActorManager(const TabularManager& learner, std::string name);

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] int select_action(VnfEnv& env) override;
  void set_training(bool training) override { view_.set_exploration_enabled(training); }
  void reseed(std::uint64_t seed) override { view_.reseed(seed); }
  void sync_from_learner(const Manager& learner) override;

 private:
  std::string name_;
  std::size_t buckets_;
  rl::TabularActorView view_;
};

/// Convenience factory: DQN config tuned for this environment's scale.
[[nodiscard]] rl::DqnConfig default_dqn_config(const VnfEnv& env, std::uint64_t seed = 7);

}  // namespace vnfm::core
