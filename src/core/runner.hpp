// Episode runner: drives a Manager through the environment, feeds learning
// managers their transitions, and extracts per-episode evaluation rows.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/environment.hpp"
#include "core/manager.hpp"

namespace vnfm::core {

struct EpisodeOptions {
  /// Episode ends when simulated time exceeds this horizon...
  double duration_s = 2.0 * edgesim::kSecondsPerHour;
  /// ...or when this many requests have been decided, whichever first.
  std::size_t max_requests = std::numeric_limits<std::size_t>::max();
  bool training = true;
  std::uint64_t seed = 0;
};

/// Metrics snapshot of one finished episode.
struct EpisodeResult {
  double total_reward = 0.0;
  std::size_t requests = 0;
  double cost_per_request = 0.0;
  double total_cost = 0.0;
  double acceptance_ratio = 1.0;
  double mean_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double sla_violation_ratio = 0.0;
  double mean_utilization = 0.0;
  std::uint64_t deployments = 0;
  double running_cost = 0.0;
  double revenue = 0.0;
};

/// Runs one episode; resets the environment with options.seed first.
EpisodeResult run_episode(VnfEnv& env, Manager& manager, const EpisodeOptions& options);

/// Trains for `episodes` episodes (seeds = base_seed + i); returns the
/// learning curve of per-episode results.
std::vector<EpisodeResult> train_manager(VnfEnv& env, Manager& manager,
                                         std::size_t episodes,
                                         EpisodeOptions options);

/// Evaluation run: training/exploration off, averaged over `repeats`
/// episodes with distinct seeds.
EpisodeResult evaluate_manager(VnfEnv& env, Manager& manager, EpisodeOptions options,
                               std::size_t repeats = 3);

}  // namespace vnfm::core
