// Episode runner: drives a Manager through the environment, feeds learning
// managers their transitions, and extracts per-episode evaluation rows.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/environment.hpp"
#include "core/manager.hpp"

namespace vnfm::core {

struct EpisodeOptions {
  /// Episode ends when simulated time exceeds this horizon...
  double duration_s = 2.0 * edgesim::kSecondsPerHour;
  /// ...or when this many requests have been decided, whichever first.
  std::size_t max_requests = std::numeric_limits<std::size_t>::max();
  bool training = true;
  std::uint64_t seed = 0;
};

/// Gap between the training and evaluation seed spaces. Training episode i
/// runs on train_seed(base, i) and evaluation repeat j on eval_seed(base, j);
/// as long as fewer than kEvalSeedOffset training episodes are run (any
/// realistic budget), evaluation workloads are guaranteed held-out.
inline constexpr std::uint64_t kEvalSeedOffset = 1'000'000;

[[nodiscard]] constexpr std::uint64_t train_seed(std::uint64_t base_seed,
                                                 std::size_t episode) noexcept {
  return base_seed + episode;
}

[[nodiscard]] constexpr std::uint64_t eval_seed(std::uint64_t base_seed,
                                                std::size_t repeat) noexcept {
  return base_seed + kEvalSeedOffset + repeat;
}

/// Metrics snapshot of one finished episode.
struct EpisodeResult {
  double total_reward = 0.0;
  std::size_t requests = 0;
  double cost_per_request = 0.0;
  double total_cost = 0.0;
  double acceptance_ratio = 1.0;
  double mean_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double sla_violation_ratio = 0.0;
  double mean_utilization = 0.0;
  std::uint64_t deployments = 0;
  double running_cost = 0.0;
  double revenue = 0.0;
};

/// Field-wise mean of per-episode results (throws on an empty set).
[[nodiscard]] EpisodeResult mean_result(const std::vector<EpisodeResult>& results);

/// Runs one episode; resets the environment with options.seed first.
EpisodeResult run_episode(VnfEnv& env, Manager& manager, const EpisodeOptions& options);

/// Trains for `episodes` episodes (seeds = base_seed + i); returns the
/// learning curve of per-episode results. Thin wrapper over the sequential
/// path of core::TrainDriver (train_driver.hpp), which also provides the
/// deterministic parallel actor-learner pipeline.
std::vector<EpisodeResult> train_manager(VnfEnv& env, Manager& manager,
                                         std::size_t episodes,
                                         EpisodeOptions options);

/// Evaluation run: training/exploration off, averaged over `repeats`
/// episodes with distinct seeds.
EpisodeResult evaluate_manager(VnfEnv& env, Manager& manager, EpisodeOptions options,
                               std::size_t repeats = 3);

}  // namespace vnfm::core
