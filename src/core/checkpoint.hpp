// Training-run checkpoint archives (built on common/serialize).
//
// A checkpoint captures everything needed to continue a training run
// bit-identically: the manager's full learning state (via Manager::save),
// the number of episodes completed, the base seed, the learning curve so
// far, and the accumulated TrainStats. TrainDriver writes one at configured
// episode boundaries (round boundaries on the parallel path); resume rebuilds
// the manager from the same configuration, restores the archive, and trains
// the remaining episodes with TrainOptions::first_episode = episodes_done.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/manager.hpp"
#include "core/runner.hpp"
#include "core/train_driver.hpp"

namespace vnfm::core {

/// Training history stored alongside the manager state in a checkpoint.
struct TrainCheckpoint {
  std::uint64_t episodes_done = 0;   ///< training episodes completed (from 0)
  std::uint64_t base_seed = 0;       ///< episode-seed base of the run
  std::vector<EpisodeResult> curve;  ///< per-episode results [0, episodes_done)
  std::vector<std::uint64_t> seeds;  ///< train_seed of every curve entry
  TrainStats stats;                  ///< accumulated wall-clock / throughput
};

/// Writes manager state + training history to `path` (temp file + rename, so
/// a crash mid-write never leaves a torn checkpoint under the final name).
void write_checkpoint(const std::string& path, const Manager& manager,
                      const TrainCheckpoint& data);

/// Restores `path` into `manager` (which must be freshly constructed with
/// the same configuration) and returns the training history. Throws
/// SerializeError when the archive's policy tag differs from
/// manager.checkpoint_state() or the archive is corrupt.
TrainCheckpoint read_checkpoint(const std::string& path, Manager& manager);

/// Policy tag stored in the archive at `path` (inspection without a manager).
std::string read_checkpoint_policy(const std::string& path);

/// Manager-free view of a checkpoint archive (the vnfmc-inspect CLI):
/// everything read_checkpoint() returns plus the archive meta, without
/// needing — or restoring into — a constructed manager.
struct CheckpointInfo {
  std::uint64_t episodes_done = 0;  ///< training episodes completed
  std::uint64_t base_seed = 0;      ///< episode-seed base of the run
  std::string policy;               ///< Manager::checkpoint_state() tag
  std::vector<EpisodeResult> curve; ///< per-episode results [0, episodes_done)
  std::vector<std::uint64_t> seeds; ///< train_seed of every curve entry
  TrainStats stats;                 ///< accumulated wall-clock / throughput
  std::uint64_t manager_bytes = 0;  ///< size of the opaque manager-state chunk
};

/// Parses the archive at `path` without a manager: meta, curve, and stats
/// chunks are read, the opaque manager chunk is skipped (its payload size is
/// reported), and the v2 xstats suffix is probed like read_checkpoint().
/// Throws SerializeError on a corrupt or non-checkpoint archive.
CheckpointInfo inspect_checkpoint(const std::string& path);

/// Standard checkpoint filename for a run that completed `episodes_done`
/// episodes ("ckpt-<episodes, zero-padded>.vnfmc").
std::string checkpoint_filename(std::uint64_t episodes_done);

/// Path of the checkpoint file with the most completed episodes in `dir`
/// (by the checkpoint_filename naming scheme), or "" when none exists.
std::string latest_checkpoint(const std::string& dir);

/// Deletes all but the newest `keep_last_n` checkpoint archives in `dir`
/// (by the checkpoint_filename naming scheme; other files are untouched)
/// and returns the number removed. keep_last_n == 0 keeps everything.
/// TrainDriver calls this after every write when TrainOptions::keep_last_n
/// is set, so multi-day runs do not accumulate archives without bound.
std::size_t prune_checkpoints(const std::string& dir, std::size_t keep_last_n);

}  // namespace vnfm::core
