#include "core/heuristics.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/serialize.hpp"

namespace vnfm::core {

using edgesim::NodeId;

int GreedyLatencyManager::select_action(VnfEnv& env) {
  const auto& mask = env.action_mask();
  const std::size_t n = env.feature_rows();
  // Per-row feature block layout: [..., est_proc(4), prev_hop_latency(5)].
  const auto features = env.features();
  constexpr std::size_t kPerNode = 6;
  int best = env.reject_action();
  double best_latency = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    if (!mask[i]) continue;
    const double proc = features[i * kPerNode + 4];
    const double hop = features[i * kPerNode + 5];
    const double latency = static_cast<double>(proc) + hop;
    if (latency < best_latency) {
      best_latency = latency;
      best = static_cast<int>(i);
    }
  }
  return best;
}

int MyopicCostManager::select_action(VnfEnv& env) {
  const auto& mask = env.action_mask();
  const auto& cluster = env.cluster();
  const auto& cost = env.cost_model();
  const auto& request = env.pending_request();
  const auto type = env.pending_vnf_type();
  const auto& vnf = env.vnfs().type(type);
  const std::size_t n = env.feature_rows();
  const auto features = env.features();
  constexpr std::size_t kPerNode = 6;
  constexpr double kLatencyNormMs = 200.0;

  int best = env.reject_action();
  double best_cost = cost.rejection_cost();  // rejecting is the fallback
  for (std::size_t i = 0; i < n; ++i) {
    if (!mask[i]) continue;
    const NodeId node = env.candidate_node(static_cast<int>(i));
    const bool needs_deploy = !cluster.has_headroom_instance(node, type, request.rate_rps);
    const double proc = cluster.estimated_proc_delay_ms(node, type, request.rate_rps);
    // Recover the propagation latency from the normalised feature.
    const double hop = static_cast<double>(features[i * kPerNode + 5]) * kLatencyNormMs;
    double step_cost = cost.w_latency_per_ms * (hop + proc);
    if (needs_deploy) step_cost += cost.w_deploy * vnf.deploy_cost;
    if (step_cost < best_cost) {
      best_cost = step_cost;
      best = static_cast<int>(i);
    }
  }
  return best;
}

int FirstFitManager::select_action(VnfEnv& env) {
  const auto& mask = env.action_mask();
  const auto& cluster = env.cluster();
  const auto& request = env.pending_request();
  const auto type = env.pending_vnf_type();
  const std::size_t n = env.feature_rows();
  // Pass 1: reuse an existing instance.
  for (std::size_t i = 0; i < n; ++i) {
    if (!mask[i]) continue;
    const NodeId node = env.candidate_node(static_cast<int>(i));
    if (cluster.has_headroom_instance(node, type, request.rate_rps))
      return static_cast<int>(i);
  }
  // Pass 2: first node with room for a new instance.
  for (std::size_t i = 0; i < n; ++i) {
    if (mask[i]) return static_cast<int>(i);
  }
  return env.reject_action();
}

int RandomManager::select_action(VnfEnv& env) {
  const auto& mask = env.action_mask();
  const std::size_t n = env.feature_rows();
  std::vector<int> feasible;
  feasible.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    if (mask[i]) feasible.push_back(static_cast<int>(i));
  if (feasible.empty()) return env.reject_action();
  return feasible[rng_.uniform_index(feasible.size())];
}

void StaticProvisionManager::on_episode_start(VnfEnv& env) {
  auto& cluster = env.mutable_cluster();
  const std::size_t n = env.topology().node_count();
  for (const auto& vnf : env.vnfs().all()) {
    int deployed = 0;
    // Spread replicas round-robin over the nodes (capacity permitting).
    for (std::size_t offset = 0; offset < n && deployed < instances_per_type_; ++offset) {
      const NodeId node{static_cast<std::uint32_t>(offset % n)};
      if (cluster.can_deploy(node, vnf.id)) {
        cluster.deploy_pinned(node, vnf.id);
        ++deployed;
      }
    }
  }
}

int StaticProvisionManager::select_action(VnfEnv& env) {
  const auto& mask = env.action_mask();
  const auto& cluster = env.cluster();
  const auto& request = env.pending_request();
  const auto type = env.pending_vnf_type();
  const std::size_t n = env.feature_rows();
  const auto features = env.features();
  constexpr std::size_t kPerNode = 6;
  int best = env.reject_action();
  double best_latency = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    if (!mask[i]) continue;
    const NodeId node = env.candidate_node(static_cast<int>(i));
    // Never deploys: only nodes with spare pre-provisioned capacity count.
    if (!cluster.has_headroom_instance(node, type, request.rate_rps)) continue;
    const double latency = static_cast<double>(features[i * kPerNode + 4]) +
                           static_cast<double>(features[i * kPerNode + 5]);
    if (latency < best_latency) {
      best_latency = latency;
      best = static_cast<int>(i);
    }
  }
  return best;
}

void RandomManager::save(Serializer& out) const {
  out.write_u64(seed_);
  save_rng(out, rng_);
}

void RandomManager::load(Deserializer& in) {
  seed_ = in.read_u64();
  load_rng(in, rng_);
}

void StaticProvisionManager::save(Serializer& out) const {
  out.write_i64(instances_per_type_);
}

void StaticProvisionManager::load(Deserializer& in) {
  instances_per_type_ = static_cast<int>(in.read_i64());
}

}  // namespace vnfm::core
