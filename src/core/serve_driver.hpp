// Production serving engine: ServeDriver answers placement requests with a
// frozen policy at high throughput. M shard threads each own a subset of the
// fixed logical environment partitions plus an inference clone of the manager
// (Manager::clone_for_eval), pull requests from a per-shard bounded queue fed
// by an open-loop load generator, and micro-batch the decisions of
// concurrently pending chains through one network forward per round
// (Manager::select_actions) — falling back to the single-row inference path
// whenever a drain yields exactly one request.
//
// Determinism contract (invariant #9): the logical PARTITION — not the shard
// — is the unit of reproducibility. Partition p always serves the
// environment seeded with serve_seed(options.seed, p) and processes its
// requests strictly in arrival order, and batched action selection is
// decision-equivalent to one-by-one selection (the select_actions contract),
// so per-request decisions and the deterministic half of ServeStats
// (requests, decisions, accepted/rejected, cost, decision digest) are a pure
// function of (env options, serve options): bit-identical for ANY shard
// count and ANY batch_max. Shards and batching move only the wall-clock half
// (throughput, latency percentiles, queue depths, batch occupancy).
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "core/environment.hpp"
#include "core/manager.hpp"

namespace vnfm::core {

/// Gap between the training/evaluation seed spaces and the serving seed
/// space (train episode i: base + i; eval repeat j: base + 1'000'000 + j;
/// serve partition p: base + kServeSeedOffset + p), so serving workloads are
/// held out from both training and evaluation for any realistic budget.
inline constexpr std::uint64_t kServeSeedOffset = 2'000'000;

/// Episode seed of serving partition `partition` under base seed `base_seed`.
[[nodiscard]] constexpr std::uint64_t serve_seed(std::uint64_t base_seed,
                                                 std::size_t partition) noexcept {
  return base_seed + kServeSeedOffset + partition;
}

/// Knobs of one serving run.
struct ServeOptions {
  /// Shard worker threads; 0 = hardware concurrency. Clamped to
  /// `partitions` (a shard without partitions would idle). Any value
  /// produces bit-identical deterministic stats — shards move wall-clock
  /// only (see file header).
  std::size_t shards = 1;
  /// Fixed logical environment partitions — the determinism unit. Part of
  /// the workload definition: changing it changes which requests exist.
  /// Partition p is owned by shard (p % shards).
  std::size_t partitions = 4;
  /// Requests served per partition before the run drains and stops.
  std::size_t requests_per_partition = 256;
  /// Adaptive micro-batch ceiling: a shard drains up to this many queued
  /// requests per round and batches their decisions through one network
  /// forward; a drain of one request takes the single-row inference path.
  /// Never changes decisions, only amortises inference cost.
  std::size_t batch_max = 8;
  /// Bounded per-shard queue capacity; a full queue blocks the load
  /// generator (open-loop backpressure, counted per blocked push).
  std::size_t queue_capacity = 64;
  /// Admission control: when true, a full shard queue sheds the request
  /// (count-and-drop, per-partition shed counters) instead of blocking the
  /// generator. Shedding keeps the generator's pacing honest under overload
  /// but makes WHICH requests are served scheduling-dependent, so the
  /// bit-identity guarantee of the deterministic block only holds while no
  /// request was actually shed. Default off: behaviour (and every digest)
  /// is unchanged and shed counts are always zero.
  bool shed_when_full = false;
  /// Arrival pacing: simulated seconds that elapse per wall-clock second in
  /// the load generator (requests are issued at the workload model's
  /// arrival instants scaled by this). 0 = open throttle, no pacing — the
  /// generator pushes as fast as queues accept (throughput benching).
  double time_scale = 0.0;
  /// Base seed of the serving seed slice (see serve_seed()).
  std::uint64_t seed = 0;
};

/// Deterministic per-partition serving outcome: a pure function of
/// (env options, serve options), bit-identical for any shard count and
/// batch_max. operator== is the bit-identity check the bench and tests use.
struct ServePartitionStats {
  std::uint64_t requests = 0;   ///< chain requests resolved
  std::uint64_t decisions = 0;  ///< per-VNF placement decisions taken
  std::uint64_t accepted = 0;   ///< chains fully placed
  std::uint64_t rejected = 0;   ///< chains rejected (policy or infeasible)
  /// Requests dropped at the shard queue under shed_when_full (0 whenever
  /// shedding is off). requests + shed == requests_per_partition always.
  std::uint64_t shed = 0;
  double total_cost = 0.0;      ///< objective cost charged to the partition
  /// FNV-1a fold of every action in decision order — any divergence in any
  /// decision changes it.
  std::uint64_t decision_digest = 14695981039346656037ULL;

  [[nodiscard]] bool operator==(const ServePartitionStats&) const = default;
};

/// Wall-clock observability of one shard thread (NOT part of the
/// bit-identity contract: scheduling-dependent by nature).
struct ServeShardStats {
  std::uint64_t batches = 0;            ///< queue drains processed
  std::uint64_t batched_decisions = 0;  ///< decisions taken via batched rounds
  std::uint64_t single_decisions = 0;   ///< decisions via the single-row path
  std::uint64_t backpressure_waits = 0; ///< generator pushes that blocked
  std::size_t queue_high_water = 0;     ///< max queue depth observed
  LatencyHistogram latency;             ///< per-request decision latency (µs)
};

/// Aggregated outcome of one serving run. The deterministic block merges
/// per-partition stats in ascending partition index and the wall-clock block
/// merges per-shard stats in ascending shard index — fixed merge orders, so
/// equal inputs can never aggregate to different totals.
struct ServeStats {
  // ---- Deterministic block (bit-identical for any shards / batch_max) ----
  std::uint64_t requests = 0;
  std::uint64_t decisions = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;  ///< total requests dropped under shed_when_full
  double total_cost = 0.0;
  /// FNV-1a fold of every partition's deterministic stats in ascending
  /// partition order: one u64 that any cross-run decision divergence flips.
  std::uint64_t decision_digest = 14695981039346656037ULL;
  /// Per-partition deterministic outcomes, ascending partition index.
  std::vector<ServePartitionStats> partitions;

  // ---- Wall-clock block (observability; varies run to run) ---------------
  double wall_seconds = 0.0;
  std::uint64_t batches = 0;
  std::uint64_t batched_decisions = 0;
  std::uint64_t single_decisions = 0;
  std::uint64_t backpressure_waits = 0;
  std::size_t queue_high_water = 0;  ///< max over shards
  LatencyHistogram latency;          ///< merged per-request latency (µs)
  /// Per-shard wall-clock stats, ascending shard index.
  std::vector<ServeShardStats> shards;

  /// Decision throughput over the whole run (0 when instantaneous).
  [[nodiscard]] double decisions_per_second() const noexcept {
    return wall_seconds > 0.0 ? static_cast<double>(decisions) / wall_seconds : 0.0;
  }
  /// Request throughput over the whole run (0 when instantaneous).
  [[nodiscard]] double requests_per_second() const noexcept {
    return wall_seconds > 0.0 ? static_cast<double>(requests) / wall_seconds : 0.0;
  }
  /// Mean wall-clock µs per decision (shared µs/op math with TrainStats).
  [[nodiscard]] double decision_micros() const noexcept {
    return mean_micros_per(wall_seconds, decisions);
  }
  /// Per-request decision-latency quantile in µs (q in [0, 1]).
  [[nodiscard]] double latency_micros(double q) const noexcept {
    return latency.quantile(q);
  }
  /// True when the deterministic blocks of two runs are bit-identical —
  /// the cross-shard-count reproducibility check of bench_serve.
  [[nodiscard]] bool deterministically_equal(const ServeStats& other) const {
    return requests == other.requests && decisions == other.decisions &&
           accepted == other.accepted && rejected == other.rejected &&
           shed == other.shed && total_cost == other.total_cost &&
           decision_digest == other.decision_digest &&
           partitions == other.partitions;
  }
};

/// Drives one serving run: spawns the shard workers, feeds them through the
/// open-loop load generator on the calling thread, and aggregates ServeStats
/// in fixed merge order (see file header for the determinism contract).
class ServeDriver {
 public:
  /// Throws std::invalid_argument on degenerate options (0 partitions,
  /// 0 batch_max, 0 queue_capacity).
  ServeDriver(EnvOptions env_options, ServeOptions options);

  /// Serves options.partitions × options.requests_per_partition requests
  /// with inference clones of `manager` (one per shard, exploration off).
  /// Throws std::invalid_argument when the manager cannot be snapshotted
  /// (clone_for_eval() returns nullptr); rethrows the first shard failure
  /// (ascending shard index) after shutting the run down.
  [[nodiscard]] ServeStats run(const Manager& manager) const;

  [[nodiscard]] const ServeOptions& options() const noexcept { return options_; }

 private:
  EnvOptions env_options_;
  ServeOptions options_;
};

}  // namespace vnfm::core
