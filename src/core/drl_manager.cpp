#include "core/drl_manager.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "common/serialize.hpp"

namespace vnfm::core {

rl::DqnConfig default_dqn_config(const VnfEnv& env, std::uint64_t seed) {
  rl::DqnConfig config;
  // State/action dims require a live decision point to size the featuriser;
  // construct from static layout instead: per-row block + catalogs + globals.
  // feature_rows() is candidate_k under pruning, so model size is independent
  // of cluster scale there.
  config.state_dim = env.feature_rows() * env.per_node_features() +
                     env.vnfs().size() + env.sfcs().size() + 8;
  config.action_dim = static_cast<std::size_t>(env.action_count());
  config.hidden_dims = {64, 64};
  config.learning_rate = 1e-3F;
  config.gamma = 0.9F;
  config.batch_size = 32;
  config.replay_capacity = 50'000;
  config.min_replay_before_training = 500;
  config.train_period = 4;
  config.target_update_period = 250;
  config.double_dqn = true;
  config.dueling = false;
  config.epsilon_start = 1.0;
  config.epsilon_end = 0.05;
  config.epsilon_decay_steps = 15'000;
  config.seed = seed;
  return config;
}

DqnManager::DqnManager(const VnfEnv& env, rl::DqnConfig config, std::string name)
    : name_(std::move(name)) {
  if (config.state_dim == 0) config.state_dim = default_dqn_config(env).state_dim;
  if (config.action_dim == 0) config.action_dim = default_dqn_config(env).action_dim;
  agent_ = std::make_unique<rl::DqnAgent>(config);
}

DqnManager::DqnManager(rl::DqnConfig config, std::string name) : name_(std::move(name)) {
  if (config.state_dim == 0 || config.action_dim == 0)
    throw std::invalid_argument(
        "DqnManager: state_dim and action_dim must be set when constructing "
        "without an environment");
  agent_ = std::make_unique<rl::DqnAgent>(config);
}

std::unique_ptr<Manager> DqnManager::clone_for_eval() const {
  auto clone = std::make_unique<DqnManager>(agent_->config(), name_);
  std::stringstream weights;
  agent_->save(weights);
  clone->agent_->load(weights);
  clone->training_ = training_;
  clone->agent_->set_exploration_enabled(training_);
  return clone;
}

int DqnManager::select_action(VnfEnv& env) {
  if (training_) return agent_->act(env.features(), env.action_mask());
  return agent_->act_greedy(env.features(), env.action_mask());
}

void DqnManager::select_actions(std::span<VnfEnv* const> envs, std::span<int> actions) {
  if (training_) {
    // ε-greedy draws one RNG sample per decision in call order; only the
    // sequential loop preserves that stream.
    Manager::select_actions(envs, actions);
    return;
  }
  const std::size_t n = envs.size();
  if (n == 0) return;
  const std::size_t dim = envs[0]->state_dim();
  if (batch_states_.rows() != n || batch_states_.cols() != dim)
    batch_states_.resize(n, dim);
  batch_masks_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto features = envs[i]->features();
    std::copy(features.begin(), features.end(), batch_states_.row(i).begin());
    batch_masks_[i] = &envs[i]->action_mask();
  }
  agent_->act_greedy_block(batch_states_, batch_masks_, actions);
}

rl::Transition DqnManager::to_transition(const TransitionView& t) const {
  rl::Transition transition;
  transition.state.assign(t.state.begin(), t.state.end());
  transition.action = t.action;
  transition.reward = t.reward;
  transition.done = t.done;
  if (t.done) {
    // Terminal: the next state is never bootstrapped from; store zeros so
    // the replay entry has a consistent shape.
    transition.next_state.assign(t.state.size(), 0.0F);
  } else {
    transition.next_state.assign(t.next_state.begin(), t.next_state.end());
    transition.next_valid.assign(t.next_mask.begin(), t.next_mask.end());
  }
  return transition;
}

void DqnManager::observe(const TransitionView& t) {
  if (!training_) return;
  const auto loss = agent_->observe(to_transition(t));
  if (loss) last_loss_ = *loss;
}

void DqnManager::ingest(const TransitionView& t) {
  if (!training_) return;
  const auto loss = agent_->ingest(to_transition(t));
  if (loss) last_loss_ = *loss;
}

std::unique_ptr<Manager> DqnManager::clone_for_acting() const {
  return std::make_unique<DqnActorManager>(*this, name_);
}

void DqnManager::set_training(bool training) {
  training_ = training;
  agent_->set_exploration_enabled(training);
}

void DqnManager::save(Serializer& out) const {
  out.write_string(name_);
  out.write_bool(training_);
  out.write_f64(last_loss_);
  agent_->save_state(out);
}

void DqnManager::load(Deserializer& in) {
  name_ = in.read_string();
  training_ = in.read_bool();
  last_loss_ = in.read_f64();
  agent_->load_state(in);
}

DqnActorManager::DqnActorManager(const DqnManager& learner, std::string name)
    : name_(std::move(name)), view_(learner.agent()) {}

int DqnActorManager::select_action(VnfEnv& env) {
  return view_.act(env.features(), env.action_mask());
}

void DqnActorManager::sync_from_learner(const Manager& learner) {
  const auto* dqn = dynamic_cast<const DqnManager*>(&learner);
  if (dqn == nullptr)
    throw std::invalid_argument("DqnActorManager can only sync from a DqnManager");
  view_.sync(dqn->agent());
}

ReinforceManager::ReinforceManager(const VnfEnv& env, rl::ReinforceConfig config) {
  if (config.state_dim == 0) config.state_dim = default_dqn_config(env).state_dim;
  if (config.action_dim == 0)
    config.action_dim = static_cast<std::size_t>(env.action_count());
  agent_ = std::make_unique<rl::ReinforceAgent>(config);
}

int ReinforceManager::select_action(VnfEnv& env) {
  if (training_) return agent_->act(env.features(), env.action_mask());
  return agent_->act_greedy(env.features(), env.action_mask());
}

void ReinforceManager::observe(const TransitionView& t) {
  if (!training_) return;
  agent_->record_reward(t.reward);
}

void ReinforceManager::on_chain_end(VnfEnv& env) {
  (void)env;
  if (!training_) return;
  agent_->finish_episode();
}

void ReinforceManager::set_training(bool training) { training_ = training; }

void ReinforceManager::save(Serializer& out) const {
  out.write_bool(training_);
  agent_->save_state(out);
}

void ReinforceManager::load(Deserializer& in) {
  training_ = in.read_bool();
  agent_->load_state(in);
}

std::unique_ptr<Manager> ReinforceManager::clone_for_eval() const {
  auto clone = std::unique_ptr<ReinforceManager>(new ReinforceManager());
  clone->agent_ = std::make_unique<rl::ReinforceAgent>(agent_->config());
  clone->agent_->policy().copy_weights_from(agent_->policy());
  clone->training_ = training_;
  return clone;
}

A2cManager::A2cManager(const VnfEnv& env, rl::ActorCriticConfig config) {
  if (config.state_dim == 0) config.state_dim = default_dqn_config(env).state_dim;
  if (config.action_dim == 0)
    config.action_dim = static_cast<std::size_t>(env.action_count());
  agent_ = std::make_unique<rl::ActorCriticAgent>(config);
}

int A2cManager::select_action(VnfEnv& env) {
  if (training_) return agent_->act(env.features(), env.action_mask());
  return agent_->act_greedy(env.features(), env.action_mask());
}

void A2cManager::observe(const TransitionView& t) {
  if (!training_) return;
  (void)agent_->learn(t.reward, t.next_state, t.done);
}

void A2cManager::set_training(bool training) { training_ = training; }

void A2cManager::save(Serializer& out) const {
  out.write_bool(training_);
  agent_->save_state(out);
}

void A2cManager::load(Deserializer& in) {
  training_ = in.read_bool();
  agent_->load_state(in);
}

std::unique_ptr<Manager> A2cManager::clone_for_eval() const {
  auto clone = std::unique_ptr<A2cManager>(new A2cManager());
  clone->agent_ = std::make_unique<rl::ActorCriticAgent>(agent_->config());
  clone->agent_->actor().copy_weights_from(agent_->actor());
  clone->agent_->critic().copy_weights_from(agent_->critic());
  clone->training_ = training_;
  return clone;
}

TabularManager::TabularManager(const VnfEnv& env, rl::TabularQConfig config,
                               std::size_t buckets)
    : buckets_(buckets) {
  if (config.action_dim == 0)
    config.action_dim = static_cast<std::size_t>(env.action_count());
  agent_ = std::make_unique<rl::TabularQAgent>(config);
}

int TabularManager::select_action(VnfEnv& env) {
  const auto coarse = env.coarse_features();
  const auto key = rl::TabularQAgent::discretize(coarse, buckets_);
  if (training_) return agent_->act(key, env.action_mask());
  return agent_->act_greedy(key, env.action_mask());
}

void TabularManager::observe(const TransitionView& t) {
  if (!training_) return;
  const auto key = rl::TabularQAgent::discretize(t.coarse_state, buckets_);
  const auto next_key =
      t.done ? 0 : rl::TabularQAgent::discretize(t.next_coarse_state, buckets_);
  agent_->update(key, t.action, t.reward, next_key, t.done, t.next_mask);
}

void TabularManager::ingest(const TransitionView& t) {
  if (!training_) return;
  const auto key = rl::TabularQAgent::discretize(t.coarse_state, buckets_);
  const auto next_key =
      t.done ? 0 : rl::TabularQAgent::discretize(t.next_coarse_state, buckets_);
  agent_->ingest(key, t.action, t.reward, next_key, t.done, t.next_mask);
}

std::unique_ptr<Manager> TabularManager::clone_for_acting() const {
  return std::make_unique<TabularActorManager>(*this, name());
}

void TabularManager::set_training(bool training) { training_ = training; }

void TabularManager::save(Serializer& out) const {
  out.write_u64(buckets_);
  out.write_bool(training_);
  agent_->save_state(out);
}

void TabularManager::load(Deserializer& in) {
  buckets_ = in.read_u64();
  training_ = in.read_bool();
  agent_->load_state(in);
}

std::unique_ptr<Manager> TabularManager::clone_for_eval() const {
  auto clone = std::unique_ptr<TabularManager>(new TabularManager());
  clone->agent_ = std::make_unique<rl::TabularQAgent>(*agent_);
  clone->buckets_ = buckets_;
  clone->training_ = training_;
  return clone;
}

TabularActorManager::TabularActorManager(const TabularManager& learner,
                                         std::string name)
    : name_(std::move(name)), buckets_(learner.buckets()), view_(learner.agent()) {}

int TabularActorManager::select_action(VnfEnv& env) {
  const auto key = rl::TabularQAgent::discretize(env.coarse_features(), buckets_);
  return view_.act(key, env.action_mask());
}

void TabularActorManager::sync_from_learner(const Manager& learner) {
  const auto* tabular = dynamic_cast<const TabularManager*>(&learner);
  if (tabular == nullptr)
    throw std::invalid_argument(
        "TabularActorManager can only sync from a TabularManager");
  view_.sync(tabular->agent());
}

}  // namespace vnfm::core
