// The MDP the DRL VNF manager acts in.
//
// VnfEnv embeds the sequential chain-placement decision process into the
// continuing edge-system trajectory: every arriving SFC request opens a
// sub-episode with one decision per chain VNF; the action space is
// {place on node 0..N-1, REJECT}. The environment owns the workload
// generator, the cluster state, the featuriser, the reward model, and the
// metrics, so managers (learning or heuristic) only choose actions.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "edgesim/cluster.hpp"
#include "edgesim/cost.hpp"
#include "edgesim/events.hpp"
#include "edgesim/fault_model.hpp"
#include "edgesim/metrics.hpp"
#include "edgesim/network_model.hpp"
#include "edgesim/topology.hpp"
#include "edgesim/vnf.hpp"
#include "edgesim/workload.hpp"
#include "edgesim/workload_model.hpp"

namespace vnfm::core {

struct EnvOptions {
  edgesim::TopologyOptions topology;
  edgesim::WorkloadOptions workload;
  /// Arrival-process factory invoked on every reset with the episode-derived
  /// seed. Empty = the default Poisson-diurnal model over `workload` (the
  /// legacy generator — request streams stay bit-identical).
  edgesim::WorkloadModelFactory workload_model;
  edgesim::ClusterOptions cluster;
  /// Network model configuration: `network.topology` of "constant" (default)
  /// keeps the legacy geographic-latency behaviour bit-identical; a fabric
  /// name ("two-tier-edge", "fat-tree-k4", ...) makes hop latency emerge
  /// from max-min fair link sharing.
  edgesim::NetworkOptions network;
  /// Network-model factory invoked on every reset; empty = derive the model
  /// from `network` via make_network_model (mirrors workload_model).
  edgesim::NetworkModelFactory network_model;
  edgesim::CostModel cost;
  /// Timed node-failure/recovery and capacity-change events, applied between
  /// request arrivals at fixed simulated instants (deterministic per seed).
  edgesim::EventSchedule events;
  /// Generative fault-process factory invoked on every reset with the
  /// episode-derived fault stream seed. Empty (default) = no generated
  /// faults; the scripted `events` schedule is all the environment replays.
  /// When set, the generated stream is merged with `events` in timestamp
  /// order (scripted first on ties) and applied through the same code path.
  edgesim::FaultModelFactory fault_model;
  /// Fault-visibility feature block: when true every per-node feature row
  /// gains two trailing floats — a failed flag and the node's CPU capacity
  /// scale — in the dense, incremental, and candidate_k pruned layouts
  /// alike. false (default) keeps the legacy layout byte-identical.
  bool fault_features = false;
  /// Rewards are costs scaled by -reward_scale to keep |r| in DQN-friendly
  /// range; the scale cancels out of policy comparisons.
  double reward_scale = 0.25;
  /// Feature-builder mode: false (default) serves the per-node rows from the
  /// cluster's incremental O(1)-amortised caches — bit-identical to the dense
  /// rebuild (determinism invariant #10); true forces the dense O(nodes)
  /// reference scan (cross-check and bench baseline).
  bool dense_features = false;
  /// Candidate-set pruning: 0 (default) keeps the legacy layout (one action
  /// slot per node + reject). k > 0 makes the net see a fixed-width
  /// k-candidate layout — the top-k feasible nodes by a cheap free-CPU score
  /// (bucketed over the incremental aggregates) plus locality anchors — so
  /// model size is independent of cluster scale. Slots remap to real node
  /// ids via candidate_node()/action_for_node().
  std::size_t candidate_k = 0;
  std::uint64_t seed = 1;
};

/// Outcome of one placement decision.
struct StepResult {
  float reward = 0.0F;
  bool chain_done = false;  ///< chain fully placed or rejected
  bool accepted = false;    ///< valid only when chain_done
  bool deployed_new = false;
};

class VnfEnv {
 public:
  explicit VnfEnv(EnvOptions options);

  /// Restarts the system (fresh cluster, workload stream re-seeded with
  /// seed ^ episode_seed) and clears metrics.
  void reset(std::uint64_t episode_seed);

  /// Advances simulation to the next request arrival and opens its chain.
  /// If the next arrival falls beyond `horizon_s`, advances to the horizon
  /// instead, records nothing, and returns false (episode is over).
  /// Must not be called while a chain is pending.
  bool begin_next_request(double horizon_s = std::numeric_limits<double>::infinity());

  [[nodiscard]] bool has_pending_chain() const { return cluster_->has_pending_chain(); }

  // ---- Decision-point views ----------------------------------------------
  /// Feature vector for the current decision (valid while a chain pends).
  [[nodiscard]] std::span<const float> features() const { return features_; }
  /// Validity mask over actions; reject (last action) is always valid.
  [[nodiscard]] const std::vector<std::uint8_t>& action_mask() const { return mask_; }
  [[nodiscard]] std::size_t state_dim() const noexcept { return features_.size(); }
  [[nodiscard]] int action_count() const noexcept;
  [[nodiscard]] int reject_action() const noexcept;

  // ---- Action-slot layout --------------------------------------------------
  /// Per-node feature rows the net sees: candidate_k when pruning is on,
  /// otherwise the cluster's node count.
  [[nodiscard]] std::size_t feature_rows() const noexcept;
  /// Width of one per-node feature row: 6 legacy floats, +2 (failed flag,
  /// capacity scale) when EnvOptions::fault_features is on. Model input dims
  /// are feature_rows() * per_node_features() + the request tail.
  [[nodiscard]] std::size_t per_node_features() const noexcept;
  /// Real node behind action slot `slot` (identity when pruning is off;
  /// throws for pad slots — they are always masked out).
  [[nodiscard]] edgesim::NodeId candidate_node(int slot) const;
  /// Nodes behind the candidate slots this decision, ascending by node id
  /// (empty when pruning is off — slots are node ids then).
  [[nodiscard]] std::span<const edgesim::NodeId> candidate_nodes() const noexcept {
    return candidates_;
  }
  /// Slot currently mapped to `node` (identity when pruning is off);
  /// nullopt if the node is not among this decision's candidates.
  [[nodiscard]] std::optional<int> action_for_node(edgesim::NodeId node) const;

  /// Applies a placement/reject action to the pending chain.
  StepResult step(int action);

  // ---- Introspection -------------------------------------------------------
  [[nodiscard]] const edgesim::ClusterState& cluster() const { return *cluster_; }
  /// Mutable cluster access for provisioning hooks (static baselines).
  [[nodiscard]] edgesim::ClusterState& mutable_cluster() { return *cluster_; }
  [[nodiscard]] const edgesim::Topology& topology() const { return topology_; }
  [[nodiscard]] const edgesim::VnfCatalog& vnfs() const { return vnfs_; }
  [[nodiscard]] const edgesim::SfcCatalog& sfcs() const { return sfcs_; }
  [[nodiscard]] const edgesim::MetricsCollector& metrics() const { return metrics_; }
  [[nodiscard]] const edgesim::WorkloadModel& workload() const { return *workload_; }
  /// The fault script this environment replays (may be empty).
  [[nodiscard]] const edgesim::EventSchedule& event_schedule() const noexcept {
    return options_.events;
  }
  /// Scheduled events applied since the last reset().
  [[nodiscard]] std::size_t events_applied() const noexcept { return next_event_; }
  /// Generated fault events applied since the last reset() (0 when no
  /// fault_model factory is configured).
  [[nodiscard]] std::uint64_t fault_events_applied() const noexcept {
    return fault_events_applied_;
  }
  /// The generative fault process of the current episode; nullptr when no
  /// fault_model factory is configured.
  [[nodiscard]] const edgesim::FaultModel* fault_process() const noexcept {
    return faults_.get();
  }
  [[nodiscard]] edgesim::SimTime now() const { return cluster_->now(); }
  [[nodiscard]] const EnvOptions& options() const noexcept { return options_; }
  /// Seed of the episode the environment was last reset() with.
  [[nodiscard]] std::uint64_t episode_seed() const noexcept { return episode_seed_; }
  /// The workload-stream seed an environment built with `options_seed` and
  /// reset with `episode_seed` derives internally (golden-ratio mix). Public
  /// so external drivers — the serving engine's open-loop load generator —
  /// can instantiate their own WorkloadModel that reproduces this
  /// environment's request-arrival instants exactly.
  [[nodiscard]] static constexpr std::uint64_t stream_seed(
      std::uint64_t options_seed, std::uint64_t episode_seed) noexcept {
    return options_seed ^ (episode_seed * 0x9E3779B97F4A7C15ULL + 1);
  }
  /// The fault-stream seed derived for the same (options_seed, episode_seed)
  /// pair: the workload-stream seed XOR a fixed tag, so fault processes and
  /// the arrival process draw from independent streams on every episode.
  [[nodiscard]] static constexpr std::uint64_t fault_stream_seed(
      std::uint64_t options_seed, std::uint64_t episode_seed) noexcept {
    return stream_seed(options_seed, episode_seed) ^ 0xF4A17D15EA5EED5EULL;
  }
  [[nodiscard]] const edgesim::CostModel& cost_model() const noexcept { return options_.cost; }

  /// Pending request currently being placed (valid while a chain pends).
  [[nodiscard]] const edgesim::Request& pending_request() const {
    return cluster_->pending_request();
  }
  [[nodiscard]] edgesim::VnfTypeId pending_vnf_type() const {
    return cluster_->pending_vnf_type();
  }
  [[nodiscard]] std::size_t pending_position() const { return cluster_->pending_position(); }

  /// Compact feature vector (all entries in [0,1]) for tabular agents.
  [[nodiscard]] std::vector<float> coarse_features() const;

  /// Charges the objective for migrations performed directly on the cluster
  /// (consolidation passes) so metrics stay consistent with the cost model.
  void record_migrations(std::size_t count) { metrics_.on_migrations(count); }

 private:
  void rebuild();
  void refresh_decision_state();
  /// Dense O(nodes) reference feature scan (the legacy builder, verbatim).
  void refresh_dense();
  /// Same rows/mask as refresh_dense, served from the cluster's incremental
  /// caches — bit-identical by construction (invariant #10).
  void refresh_incremental();
  /// Fixed-width k-candidate layout: top-k feasible nodes by score band.
  void refresh_pruned();
  /// Request-scoped tail block (VNF/SFC one-hots + 8 scalars).
  void append_request_tail();
  /// Appends one node's 6-float feature row using the incremental caches.
  void write_node_features(edgesim::NodeId node, edgesim::VnfTypeId type,
                           const edgesim::VnfType& vnf, const edgesim::Request& request);
  /// Rebuilds the pruning score bands from scratch (reset-time).
  void rebuild_bands();
  /// Re-banding of one node after a cluster mutation (dirty-list drain).
  void update_band(std::uint32_t i);
  [[nodiscard]] std::size_t score_band(edgesim::NodeId node) const;
  /// Applies one event to the cluster (shared by scripted and generated
  /// streams).
  void apply_event(const edgesim::ScheduledEvent& event);
  /// Applies every scripted and generated event with time <= up_to in
  /// timestamp order (scripted first on ties), advancing the cluster to each
  /// event's instant first.
  void apply_events_until(double up_to);
  [[nodiscard]] double prev_hop_latency_ms(edgesim::NodeId node) const;

  EnvOptions options_;
  edgesim::Topology topology_;
  edgesim::VnfCatalog vnfs_;
  edgesim::SfcCatalog sfcs_;
  std::unique_ptr<edgesim::WorkloadModel> workload_;
  std::unique_ptr<edgesim::ClusterState> cluster_;
  edgesim::MetricsCollector metrics_;
  std::uint64_t episode_seed_ = 0;
  std::size_t next_event_ = 0;  ///< cursor into options_.events
  std::unique_ptr<edgesim::FaultModel> faults_;  ///< generated stream (may be null)
  std::uint64_t fault_events_applied_ = 0;

  std::vector<float> features_;
  std::vector<std::uint8_t> mask_;
  // Candidate-set pruning state (populated only when options_.candidate_k > 0):
  // the slot -> node remap for the current decision, plus the free-CPU score
  // bands (ordered node-id sets) maintained from the cluster's dirty list.
  std::vector<edgesim::NodeId> candidates_;
  std::vector<std::set<std::uint32_t>> bands_;
  std::vector<std::uint8_t> node_band_;
  double max_nominal_cpu_ = 1.0;
  double pending_deploy_cost_ = 0.0;  ///< raw deploy cost of the pending chain
  double pending_charged_cost_ = 0.0;  ///< objective cost already charged as reward
  std::vector<edgesim::NodeId> pending_nodes_;  ///< nodes chosen so far
};

}  // namespace vnfm::core
