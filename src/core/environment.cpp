#include "core/environment.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numbers>
#include <stdexcept>

namespace vnfm::core {

using edgesim::NodeId;
using edgesim::Request;
using edgesim::SimTime;
using edgesim::VnfTypeId;

namespace {

// Feature normalisation constants; all features are clamped to [0, 1].
constexpr double kLatencyNormMs = 200.0;
constexpr double kProcDelayNormMs = 10.0;
constexpr double kInstanceCountNorm = 8.0;
constexpr double kResidualCapacityNorm = 4.0;  // in units of one instance
constexpr double kRateNormRps = 15.0;
constexpr double kDurationNormS = 1200.0;
constexpr std::size_t kPerNodeFeatures = 6;
// fault_features block: capacity scale is mapped so nominal (1.0) sits at 0.5
// and anything >= 2x nominal saturates.
constexpr double kCapacityScaleNorm = 2.0;

// Candidate-pruning score bands over free effective CPU.
constexpr std::size_t kScoreBands = 64;
constexpr std::uint8_t kNoBand = 0xFF;  // failed node: excluded from bands

float clamp01(double v) noexcept {
  return static_cast<float>(std::clamp(v, 0.0, 1.0));
}

}  // namespace

VnfEnv::VnfEnv(EnvOptions options)
    : options_(options),
      topology_(edgesim::make_world_topology(options.topology)),
      vnfs_(edgesim::VnfCatalog::standard()),
      sfcs_(edgesim::SfcCatalog::standard(vnfs_)),
      metrics_(options.cost) {
  rebuild();
}

void VnfEnv::rebuild() {
  edgesim::WorkloadOptions workload_options = options_.workload;
  workload_options.seed = stream_seed(options_.seed, episode_seed_);
  if (options_.workload_model) {
    workload_ = options_.workload_model(topology_, sfcs_, workload_options);
    if (!workload_) throw std::invalid_argument("workload model factory returned null");
  } else {
    workload_ = std::make_unique<edgesim::PoissonDiurnalModel>(topology_, sfcs_,
                                                               workload_options);
  }
  // REPRO_TRACE_DUMP=<path>: record the episode's request stream to a CSV
  // replayable via the trace-replay scenario (rewritten on every reset, so
  // the file holds the most recent episode).
  if (const char* dump = std::getenv("REPRO_TRACE_DUMP"); dump != nullptr && *dump != '\0')
    workload_ = std::make_unique<edgesim::TraceRecordingModel>(std::move(workload_), dump);
  std::unique_ptr<edgesim::NetworkModel> network =
      options_.network_model ? options_.network_model(topology_)
                             : edgesim::make_network_model(topology_, options_.network);
  if (!network) throw std::invalid_argument("network model factory returned null");
  cluster_ = std::make_unique<edgesim::ClusterState>(topology_, vnfs_, sfcs_,
                                                     options_.cluster, std::move(network));
  if (options_.fault_model) {
    edgesim::FaultContext fault_context;
    fault_context.seed = fault_stream_seed(options_.seed, episode_seed_);
    fault_context.rack_size = options_.network.flow.rack_size;
    faults_ = options_.fault_model(topology_, fault_context);
    if (!faults_) throw std::invalid_argument("fault model factory returned null");
  } else {
    faults_.reset();
  }
  fault_events_applied_ = 0;
  metrics_ = edgesim::MetricsCollector(options_.cost);
  next_event_ = 0;
  pending_deploy_cost_ = 0.0;
  pending_nodes_.clear();
  candidates_.clear();
  if (options_.candidate_k > 0) rebuild_bands();
}

void VnfEnv::reset(std::uint64_t episode_seed) {
  episode_seed_ = episode_seed;
  rebuild();
}

std::size_t VnfEnv::feature_rows() const noexcept {
  return options_.candidate_k > 0 ? options_.candidate_k : topology_.node_count();
}

int VnfEnv::action_count() const noexcept {
  return static_cast<int>(feature_rows()) + 1;
}

int VnfEnv::reject_action() const noexcept {
  return static_cast<int>(feature_rows());
}

edgesim::NodeId VnfEnv::candidate_node(int slot) const {
  if (options_.candidate_k == 0) return NodeId{static_cast<std::uint32_t>(slot)};
  return candidates_.at(static_cast<std::size_t>(slot));
}

std::optional<int> VnfEnv::action_for_node(edgesim::NodeId node) const {
  if (options_.candidate_k == 0) return static_cast<int>(edgesim::index(node));
  for (std::size_t s = 0; s < candidates_.size(); ++s)
    if (candidates_[s] == node) return static_cast<int>(s);
  return std::nullopt;
}

void VnfEnv::apply_event(const edgesim::ScheduledEvent& event) {
  if (event.time_s > cluster_->now()) {
    cluster_->advance_to(event.time_s);
    metrics_.on_running_cost(cluster_->drain_running_cost());
  }
  switch (event.kind) {
    case edgesim::EventKind::kNodeFailure:
      metrics_.on_chains_killed(cluster_->fail_node(event.node));
      break;
    case edgesim::EventKind::kNodeRecovery:
      cluster_->recover_node(event.node);
      break;
    case edgesim::EventKind::kCapacityScale:
      cluster_->set_capacity_scale(event.node, event.factor);
      break;
    case edgesim::EventKind::kLinkFailure:
      metrics_.on_chains_killed(cluster_->fail_rack_uplink(event.node));
      break;
    case edgesim::EventKind::kLinkRecovery:
      cluster_->recover_rack_uplinks(event.node);
      break;
  }
}

void VnfEnv::apply_events_until(double up_to) {
  const auto& events = options_.events.events();
  // Two time-ordered streams — the scripted schedule and the generated fault
  // process — merged on the fly; scripted events win ties so legacy scripts
  // replay exactly as before regardless of what the fault model emits.
  while (true) {
    const bool scripted_ready =
        next_event_ < events.size() && events[next_event_].time_s <= up_to;
    const bool generated_ready = faults_ && faults_->next_time() <= up_to;
    if (scripted_ready &&
        (!generated_ready || events[next_event_].time_s <= faults_->next_time())) {
      apply_event(events[next_event_++]);
    } else if (generated_ready) {
      apply_event(faults_->pop());
      ++fault_events_applied_;
    } else {
      break;
    }
  }
}

bool VnfEnv::begin_next_request(double horizon_s) {
  if (cluster_->has_pending_chain())
    throw std::logic_error("begin_next_request with a chain pending");
  const Request request = workload_->next(cluster_->now());
  apply_events_until(std::min(request.arrival_time, horizon_s));
  if (request.arrival_time > horizon_s) {
    cluster_->advance_to(horizon_s);
    metrics_.on_running_cost(cluster_->drain_running_cost());
    return false;
  }
  cluster_->advance_to(request.arrival_time);
  metrics_.on_running_cost(cluster_->drain_running_cost());
  metrics_.sample_utilization(*cluster_);
  metrics_.on_arrival();
  cluster_->start_chain(request);
  pending_deploy_cost_ = 0.0;
  pending_charged_cost_ = 0.0;
  pending_nodes_.clear();
  refresh_decision_state();
  return true;
}

double VnfEnv::prev_hop_latency_ms(NodeId node) const {
  const Request& request = cluster_->pending_request();
  // Stateless network-model probes: identical to the topology values under
  // the constant model, a contention estimate under the flow model.
  if (pending_nodes_.empty())
    return cluster_->network().user_latency_ms(request.source_region, node);
  return cluster_->network().hop_latency_ms(pending_nodes_.back(), node);
}

std::size_t VnfEnv::per_node_features() const noexcept {
  return kPerNodeFeatures + (options_.fault_features ? 2 : 0);
}

void VnfEnv::refresh_decision_state() {
  features_.clear();
  features_.reserve(feature_rows() * per_node_features() + vnfs_.size() + sfcs_.size() + 8);
  mask_.assign(static_cast<std::size_t>(action_count()), 0);
  if (options_.candidate_k > 0) {
    refresh_pruned();
  } else if (options_.dense_features) {
    refresh_dense();
  } else {
    refresh_incremental();
  }
  mask_.back() = 1;  // reject is always allowed
  append_request_tail();
}

void VnfEnv::refresh_dense() {
  const std::size_t n = topology_.node_count();
  const Request& request = cluster_->pending_request();
  const VnfTypeId type = cluster_->pending_vnf_type();
  const edgesim::VnfType& vnf = vnfs_.type(type);

  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node{static_cast<std::uint32_t>(i)};
    const edgesim::EdgeNode& edge = topology_.node(node);
    features_.push_back(clamp01(cluster_->cpu_utilization(node)));
    features_.push_back(clamp01(cluster_->mem_used(node) / edge.mem_capacity_gb));
    features_.push_back(clamp01(
        static_cast<double>(cluster_->instance_count(node, type)) / kInstanceCountNorm));
    features_.push_back(clamp01(cluster_->residual_capacity_rps(node, type) /
                                (kResidualCapacityNorm * vnf.capacity_rps)));
    const double proc = cluster_->estimated_proc_delay_ms(node, type, request.rate_rps);
    features_.push_back(clamp01(std::isfinite(proc) ? proc / kProcDelayNormMs : 1.0));
    features_.push_back(clamp01(prev_hop_latency_ms(node) / kLatencyNormMs));
    if (options_.fault_features) {
      features_.push_back(cluster_->node_failed(node) ? 1.0F : 0.0F);
      features_.push_back(clamp01(cluster_->capacity_scale(node) / kCapacityScaleNorm));
    }
    const bool link_ok =
        pending_nodes_.empty() ||
        cluster_->can_link(pending_nodes_.back(), node, request.rate_rps);
    mask_[i] = (cluster_->can_serve(node, type, request.rate_rps) && link_ok) ? 1 : 0;
  }
}

void VnfEnv::write_node_features(NodeId node, VnfTypeId type,
                                 const edgesim::VnfType& vnf, const Request& request) {
  const edgesim::EdgeNode& edge = topology_.node(node);
  features_.push_back(clamp01(cluster_->cpu_utilization(node)));
  features_.push_back(clamp01(cluster_->mem_used(node) / edge.mem_capacity_gb));
  features_.push_back(clamp01(
      static_cast<double>(cluster_->instance_count(node, type)) / kInstanceCountNorm));
  features_.push_back(clamp01(cluster_->residual_capacity_cached_rps(node, type) /
                              (kResidualCapacityNorm * vnf.capacity_rps)));
  const double proc =
      cluster_->estimated_proc_delay_cached_ms(node, type, request.rate_rps);
  features_.push_back(clamp01(std::isfinite(proc) ? proc / kProcDelayNormMs : 1.0));
  features_.push_back(clamp01(prev_hop_latency_ms(node) / kLatencyNormMs));
  if (options_.fault_features) {
    features_.push_back(cluster_->node_failed(node) ? 1.0F : 0.0F);
    features_.push_back(clamp01(cluster_->capacity_scale(node) / kCapacityScaleNorm));
  }
}

void VnfEnv::refresh_incremental() {
  const std::size_t n = topology_.node_count();
  const Request& request = cluster_->pending_request();
  const VnfTypeId type = cluster_->pending_vnf_type();
  const edgesim::VnfType& vnf = vnfs_.type(type);

  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node{static_cast<std::uint32_t>(i)};
    write_node_features(node, type, vnf, request);
    const bool link_ok =
        pending_nodes_.empty() ||
        cluster_->can_link(pending_nodes_.back(), node, request.rate_rps);
    mask_[i] =
        (cluster_->can_serve_cached(node, type, request.rate_rps) && link_ok) ? 1 : 0;
  }
}

std::size_t VnfEnv::score_band(NodeId node) const {
  const double free = cluster_->effective_cpu_capacity(node) - cluster_->cpu_used(node);
  const int b = static_cast<int>(free / max_nominal_cpu_ *
                                 static_cast<double>(kScoreBands));
  return static_cast<std::size_t>(std::clamp(b, 0, static_cast<int>(kScoreBands) - 1));
}

void VnfEnv::update_band(std::uint32_t i) {
  const NodeId node{i};
  const std::uint8_t fresh = cluster_->node_failed(node)
                                 ? kNoBand
                                 : static_cast<std::uint8_t>(score_band(node));
  const std::uint8_t current = node_band_[i];
  if (current == fresh) return;
  if (current != kNoBand) bands_[current].erase(i);
  if (fresh != kNoBand) bands_[fresh].insert(i);
  node_band_[i] = fresh;
}

void VnfEnv::rebuild_bands() {
  bands_.assign(kScoreBands, {});
  node_band_.assign(topology_.node_count(), kNoBand);
  max_nominal_cpu_ = 1.0;
  for (const auto& node : topology_.nodes())
    max_nominal_cpu_ = std::max(max_nominal_cpu_, node.cpu_capacity);
  for (std::uint32_t i = 0; i < topology_.node_count(); ++i) update_band(i);
  cluster_->clear_dirty();
}

void VnfEnv::refresh_pruned() {
  const Request& request = cluster_->pending_request();
  const VnfTypeId type = cluster_->pending_vnf_type();
  const edgesim::VnfType& vnf = vnfs_.type(type);
  const double rate = request.rate_rps;
  const std::size_t k = options_.candidate_k;

  // O(dirty): re-band only nodes mutated since the last decision.
  for (const std::uint32_t i : cluster_->dirty_nodes()) update_band(i);
  cluster_->clear_dirty();

  const auto feasible = [&](NodeId node) {
    if (!cluster_->can_serve_cached(node, type, rate)) return false;
    return pending_nodes_.empty() ||
           cluster_->can_link(pending_nodes_.back(), node, rate);
  };

  candidates_.clear();
  // Locality anchors jump the score queue: the previous hop (no WAN cost)
  // and the user's source region (no access latency) dominate good chains.
  NodeId anchors[2];
  std::size_t anchor_count = 0;
  if (!pending_nodes_.empty()) anchors[anchor_count++] = pending_nodes_.back();
  if (anchor_count == 0 || anchors[0] != request.source_region)
    anchors[anchor_count++] = request.source_region;
  for (std::size_t a = 0; a < anchor_count && candidates_.size() < k; ++a)
    if (feasible(anchors[a])) candidates_.push_back(anchors[a]);

  // Fill the remaining slots best-band first, ascending node id within a band.
  for (int b = static_cast<int>(kScoreBands) - 1;
       b >= 0 && candidates_.size() < k; --b) {
    for (const std::uint32_t i : bands_[static_cast<std::size_t>(b)]) {
      const NodeId node{i};
      bool is_anchor = false;
      for (std::size_t a = 0; a < anchor_count; ++a) is_anchor |= anchors[a] == node;
      if (is_anchor || !feasible(node)) continue;
      candidates_.push_back(node);
      if (candidates_.size() >= k) break;
    }
  }
  // Ascending node-id slots: with k >= the feasible-node count this is
  // exactly the legacy ordering restricted to feasible nodes.
  std::sort(candidates_.begin(), candidates_.end(),
            [](NodeId a, NodeId b) { return edgesim::index(a) < edgesim::index(b); });

  for (std::size_t s = 0; s < candidates_.size(); ++s) {
    write_node_features(candidates_[s], type, vnf, request);
    mask_[s] = 1;  // candidates are feasible by construction
  }
  // Pad slots: zero rows, masked out.
  for (std::size_t s = candidates_.size(); s < k; ++s)
    features_.insert(features_.end(), per_node_features(), 0.0F);
}

void VnfEnv::append_request_tail() {
  const Request& request = cluster_->pending_request();
  const VnfTypeId type = cluster_->pending_vnf_type();
  const edgesim::SfcTemplate& sfc = sfcs_.sfc(request.sfc);
  const std::size_t max_len = sfcs_.max_chain_length();

  // VNF type one-hot.
  for (std::size_t v = 0; v < vnfs_.size(); ++v)
    features_.push_back(v == edgesim::index(type) ? 1.0F : 0.0F);
  // SFC one-hot.
  for (std::size_t s = 0; s < sfcs_.size(); ++s)
    features_.push_back(s == edgesim::index(request.sfc) ? 1.0F : 0.0F);

  const std::size_t position = cluster_->pending_position();
  features_.push_back(clamp01(static_cast<double>(position) / static_cast<double>(max_len)));
  features_.push_back(clamp01(static_cast<double>(sfc.chain.size() - position) /
                              static_cast<double>(max_len)));
  features_.push_back(clamp01(request.rate_rps / kRateNormRps));
  features_.push_back(
      clamp01((sfc.sla_latency_ms - cluster_->pending_latency_ms()) / sfc.sla_latency_ms));
  const double day_angle =
      2.0 * std::numbers::pi * std::fmod(cluster_->now(), edgesim::kSecondsPerDay) /
      edgesim::kSecondsPerDay;
  features_.push_back(static_cast<float>(0.5 + 0.5 * std::sin(day_angle)));
  features_.push_back(static_cast<float>(0.5 + 0.5 * std::cos(day_angle)));
  features_.push_back(clamp01(request.duration_s / kDurationNormS));
  features_.push_back(clamp01(workload_->total_rate(cluster_->now()) /
                              workload_->peak_total_rate()));
}

StepResult VnfEnv::step(int action) {
  if (!cluster_->has_pending_chain()) throw std::logic_error("step without pending chain");
  if (action < 0 || action >= action_count()) throw std::out_of_range("action out of range");
  if (!mask_.at(static_cast<std::size_t>(action)))
    throw std::invalid_argument("step with invalid (masked) action");

  const edgesim::CostModel& cost = options_.cost;
  StepResult result;

  if (action == reject_action()) {
    cluster_->abort_chain();
    metrics_.on_reject();
    // Rejecting refunds the per-hop costs already charged for placements
    // that are now rolled back, so the chain's summed reward is exactly
    // -rejection_cost regardless of where in the chain the reject happened.
    result.reward = static_cast<float>(
        (pending_charged_cost_ - cost.rejection_cost()) * options_.reward_scale);
    result.chain_done = true;
    result.accepted = false;
    pending_charged_cost_ = 0.0;
    pending_nodes_.clear();
    return result;
  }

  const NodeId node = candidate_node(action);
  const VnfTypeId type = cluster_->pending_vnf_type();
  const edgesim::PlaceStepResult placed = cluster_->place_next(node);
  pending_nodes_.push_back(node);

  double step_cost = 0.0;
  if (placed.deployed_new) {
    const double deploy = vnfs_.type(type).deploy_cost;
    pending_deploy_cost_ += deploy;
    step_cost += cost.w_deploy * deploy;
    result.deployed_new = true;
  }
  step_cost +=
      cost.w_latency_per_ms * (placed.hop_latency_ms + placed.proc_latency_ms);

  if (cluster_->pending_complete()) {
    const edgesim::ChainPlacement placement = cluster_->commit_chain();
    const edgesim::SfcTemplate& sfc = sfcs_.sfc(placement.sfc);
    // Terminal costs not yet charged on per-hop steps: the return-path
    // latency, the SLA penalty, and the admission revenue.
    step_cost += cost.w_latency_per_ms * placement.return_path_ms;
    if (placement.sla_violated()) step_cost += cost.w_sla_violation;
    step_cost -= cost.w_revenue * sfc.revenue;
    metrics_.on_accept(placement, pending_deploy_cost_, sfc.revenue);
    result.chain_done = true;
    result.accepted = true;
    pending_nodes_.clear();
  } else {
    refresh_decision_state();
  }
  pending_charged_cost_ += step_cost;
  result.reward = static_cast<float>(-step_cost * options_.reward_scale);
  return result;
}

std::vector<float> VnfEnv::coarse_features() const {
  const Request& request = cluster_->pending_request();
  const VnfTypeId type = cluster_->pending_vnf_type();
  std::vector<float> coarse;
  coarse.reserve(5);
  coarse.push_back(static_cast<float>(edgesim::index(type)) /
                   static_cast<float>(vnfs_.size()));
  coarse.push_back(static_cast<float>(cluster_->pending_position()) /
                   static_cast<float>(sfcs_.max_chain_length()));
  coarse.push_back(static_cast<float>(edgesim::index(request.source_region)) /
                   static_cast<float>(topology_.node_count()));
  coarse.push_back(clamp01(cluster_->cpu_utilization(request.source_region)));
  double mean_util = 0.0;
  for (const auto& node : topology_.nodes()) mean_util += cluster_->cpu_utilization(node.id);
  coarse.push_back(clamp01(mean_util / static_cast<double>(topology_.node_count())));
  return coarse;
}

}  // namespace vnfm::core
