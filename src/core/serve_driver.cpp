#include "core/serve_driver.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace vnfm::core {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// FNV-1a style fold of one 64-bit word into a running digest.
constexpr std::uint64_t fnv_fold(std::uint64_t digest, std::uint64_t word) noexcept {
  return (digest ^ word) * kFnvPrime;
}

/// One placement-request token of the open-loop generator: which partition
/// must serve its next request, and when the token entered the queue (the
/// start of the request's decision-latency clock).
struct Token {
  std::uint32_t partition = 0;
  Clock::time_point enqueued;
};

/// Bounded blocking queue between the load generator and one shard worker.
/// push() blocks while full (open-loop backpressure) and fails once closed;
/// pop_batch() drains up to `max` tokens per call — the adaptive micro-batch
/// window — and returns 0 only when the queue is closed AND drained.
/// Outcome of a non-blocking ServeQueue::try_push.
enum class PushResult { kPushed, kFull, kClosed };

class ServeQueue {
 public:
  explicit ServeQueue(std::size_t capacity) : capacity_(capacity) {}

  bool push(const Token& token) {
    std::unique_lock lock(mutex_);
    if (queue_.size() >= capacity_ && !closed_) {
      ++backpressure_waits_;
      not_full_.wait(lock, [&] { return closed_ || queue_.size() < capacity_; });
    }
    if (closed_) return false;
    queue_.push_back(token);
    high_water_ = std::max(high_water_, queue_.size());
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push for shed_when_full: a full queue reports kFull
  /// immediately (the caller counts the shed) instead of waiting.
  PushResult try_push(const Token& token) {
    std::lock_guard lock(mutex_);
    if (closed_) return PushResult::kClosed;
    if (queue_.size() >= capacity_) return PushResult::kFull;
    queue_.push_back(token);
    high_water_ = std::max(high_water_, queue_.size());
    not_empty_.notify_one();
    return PushResult::kPushed;
  }

  std::size_t pop_batch(std::vector<Token>& out, std::size_t max) {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    const std::size_t n = std::min(max, queue_.size());
    out.assign(queue_.begin(), queue_.begin() + static_cast<std::ptrdiff_t>(n));
    queue_.erase(queue_.begin(), queue_.begin() + static_cast<std::ptrdiff_t>(n));
    if (n > 0) not_full_.notify_all();
    return n;
  }

  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t high_water() const {
    std::lock_guard lock(mutex_);
    return high_water_;
  }
  [[nodiscard]] std::uint64_t backpressure_waits() const {
    std::lock_guard lock(mutex_);
    return backpressure_waits_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Token> queue_;
  std::size_t high_water_ = 0;
  std::uint64_t backpressure_waits_ = 0;
  bool closed_ = false;
};

/// Everything one shard worker owns: its partition subset (global indices
/// ascending; partition p has local index p / shard_count), one environment
/// per partition, an inference clone of the manager, its queue, and its
/// stats. Workers write only their own context — no cross-shard state.
struct ShardContext {
  std::vector<std::size_t> partition_ids;
  std::vector<std::unique_ptr<VnfEnv>> envs;
  std::unique_ptr<Manager> policy;
  std::unique_ptr<ServeQueue> queue;
  ServeShardStats stats;
  std::vector<ServePartitionStats> pstats;  ///< parallel to partition_ids
  std::exception_ptr error;
};

/// Shard worker loop: drain a micro-batch of tokens, start the next request
/// on every drained partition (each partition strictly in token order), then
/// resolve the concurrently pending chains in lockstep rounds — one batched
/// select_actions per round over every chain that still has a decision
/// pending. Decisions per partition depend only on that partition's
/// environment trajectory, so the cross-partition batching can never change
/// them (the select_actions decision-equivalence contract).
void run_shard(ShardContext& ctx, std::size_t shard_count, std::size_t batch_max) {
  try {
    const std::size_t nlocal = ctx.envs.size();
    std::vector<Token> drained;
    std::vector<std::deque<Token>> backlog(nlocal);
    std::vector<VnfEnv*> round_envs;
    std::vector<std::size_t> round_local;
    std::vector<Token> round_tokens;
    std::vector<char> round_done;
    std::vector<VnfEnv*> live;
    std::vector<std::size_t> live_round;
    std::vector<int> actions;

    for (;;) {
      const std::size_t n = ctx.queue->pop_batch(drained, batch_max);
      if (n == 0) break;  // closed and fully drained
      ++ctx.stats.batches;
      for (const Token& token : drained)
        backlog[token.partition / shard_count].push_back(token);

      for (;;) {
        round_envs.clear();
        round_local.clear();
        round_tokens.clear();
        // Open the next pending request of every backlogged partition
        // (ascending local order = ascending global partition).
        for (std::size_t i = 0; i < nlocal; ++i) {
          if (backlog[i].empty()) continue;
          round_tokens.push_back(backlog[i].front());
          backlog[i].pop_front();
          VnfEnv& env = *ctx.envs[i];
          if (!env.begin_next_request())
            throw std::runtime_error("serving workload stream ended unexpectedly");
          round_envs.push_back(&env);
          round_local.push_back(i);
        }
        if (round_envs.empty()) break;

        round_done.assign(round_envs.size(), 0);
        std::size_t remaining = round_envs.size();
        while (remaining > 0) {
          live.clear();
          live_round.clear();
          for (std::size_t j = 0; j < round_envs.size(); ++j) {
            if (round_done[j]) continue;
            live.push_back(round_envs[j]);
            live_round.push_back(j);
          }
          actions.resize(live.size());
          ctx.policy->select_actions(live, actions);
          if (live.size() > 1)
            ctx.stats.batched_decisions += live.size();
          else
            ++ctx.stats.single_decisions;
          for (std::size_t k = 0; k < live.size(); ++k) {
            const std::size_t j = live_round[k];
            ServePartitionStats& ps = ctx.pstats[round_local[j]];
            ++ps.decisions;
            ps.decision_digest = fnv_fold(
                ps.decision_digest,
                static_cast<std::uint64_t>(static_cast<std::uint32_t>(actions[k])));
            const StepResult result = live[k]->step(actions[k]);
            if (!result.chain_done) continue;
            round_done[j] = 1;
            --remaining;
            ++ps.requests;
            if (result.accepted)
              ++ps.accepted;
            else
              ++ps.rejected;
            ctx.stats.latency.add(std::chrono::duration<double, std::micro>(
                                      Clock::now() - round_tokens[j].enqueued)
                                      .count());
          }
        }
      }
    }
    // The objective cost is deterministic per partition: it depends on the
    // partition's request stream and decisions only, never on scheduling.
    for (std::size_t i = 0; i < nlocal; ++i)
      ctx.pstats[i].total_cost = ctx.envs[i]->metrics().total_cost();
  } catch (...) {
    ctx.error = std::current_exception();
    ctx.queue->close();  // fail the generator's next push into this shard
  }
}

}  // namespace

ServeDriver::ServeDriver(EnvOptions env_options, ServeOptions options)
    : env_options_(std::move(env_options)), options_(options) {
  if (options_.partitions == 0)
    throw std::invalid_argument("serving needs at least one partition");
  if (options_.batch_max == 0)
    throw std::invalid_argument("serve batch_max must be >= 1");
  if (options_.queue_capacity == 0)
    throw std::invalid_argument("serve queue_capacity must be >= 1");
  if (options_.shards == 0) {
    const std::size_t hw = std::thread::hardware_concurrency();
    options_.shards = hw > 0 ? hw : 1;
  }
  options_.shards = std::min(options_.shards, options_.partitions);
}

ServeStats ServeDriver::run(const Manager& manager) const {
  const std::size_t shard_count = options_.shards;
  const std::size_t partition_count = options_.partitions;

  // Build every shard's context up front so a clone/env failure throws here,
  // before any thread exists.
  std::vector<ShardContext> shards(shard_count);
  for (std::size_t p = 0; p < partition_count; ++p) {
    ShardContext& ctx = shards[p % shard_count];
    ctx.partition_ids.push_back(p);
    auto env = std::make_unique<VnfEnv>(env_options_);
    env->reset(serve_seed(options_.seed, p));
    ctx.envs.push_back(std::move(env));
    ctx.pstats.emplace_back();
  }
  for (ShardContext& ctx : shards) {
    ctx.policy = manager.clone_for_eval();
    if (!ctx.policy)
      throw std::invalid_argument(
          "serving requires a snapshot-able manager (clone_for_eval)");
    ctx.policy->set_training(false);
    ctx.queue = std::make_unique<ServeQueue>(options_.queue_capacity);
  }

  // Per-partition arrival streams, reproducing each partition environment's
  // own workload stream exactly (same model, same derived seed), so the
  // generator issues tokens at the instants the partitions' requests arrive.
  const edgesim::Topology topology = edgesim::make_world_topology(env_options_.topology);
  const edgesim::VnfCatalog vnfs = edgesim::VnfCatalog::standard();
  const edgesim::SfcCatalog sfcs = edgesim::SfcCatalog::standard(vnfs);
  std::vector<std::unique_ptr<edgesim::WorkloadModel>> streams;
  std::vector<double> next_arrival(partition_count, 0.0);
  streams.reserve(partition_count);
  for (std::size_t p = 0; p < partition_count; ++p) {
    edgesim::WorkloadOptions workload_options = env_options_.workload;
    workload_options.seed =
        VnfEnv::stream_seed(env_options_.seed, serve_seed(options_.seed, p));
    if (env_options_.workload_model) {
      streams.push_back(env_options_.workload_model(topology, sfcs, workload_options));
      if (!streams.back())
        throw std::invalid_argument("workload model factory returned null");
    } else {
      streams.push_back(std::make_unique<edgesim::PoissonDiurnalModel>(
          topology, sfcs, workload_options));
    }
    next_arrival[p] = streams[p]->next(0.0).arrival_time;
  }

  const auto start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(shard_count);
  for (ShardContext& ctx : shards)
    workers.emplace_back(
        [&ctx, shard_count, batch_max = options_.batch_max] {
          run_shard(ctx, shard_count, batch_max);
        });

  // Open-loop load generator (caller thread): globally merge the partition
  // arrival streams by earliest instant (ties to the lowest partition) and
  // push each token into the owning shard's queue, blocking when full.
  std::vector<std::uint64_t> issued(partition_count, 0);
  std::vector<std::uint64_t> shed_counts(partition_count, 0);
  for (;;) {
    std::size_t next = partition_count;
    for (std::size_t p = 0; p < partition_count; ++p) {
      if (issued[p] >= options_.requests_per_partition) continue;
      if (next == partition_count || next_arrival[p] < next_arrival[next]) next = p;
    }
    if (next == partition_count) break;  // every partition fully issued
    if (options_.time_scale > 0.0) {
      const auto offset =
          std::chrono::duration<double>(next_arrival[next] / options_.time_scale);
      std::this_thread::sleep_until(
          start + std::chrono::duration_cast<Clock::duration>(offset));
    }
    const Token token{static_cast<std::uint32_t>(next), Clock::now()};
    if (options_.shed_when_full) {
      // Admission control: a full shard queue drops the request on the floor
      // (counted per partition) instead of stalling the generator's pacing.
      const PushResult r = shards[next % shard_count].queue->try_push(token);
      if (r == PushResult::kClosed) break;  // shard failed
      if (r == PushResult::kFull) ++shed_counts[next];
    } else {
      if (!shards[next % shard_count].queue->push(token)) break;  // shard failed
    }
    ++issued[next];
    if (issued[next] < options_.requests_per_partition)
      next_arrival[next] = streams[next]->next(next_arrival[next]).arrival_time;
  }

  for (ShardContext& ctx : shards) ctx.queue->close();
  for (std::thread& worker : workers) worker.join();
  const double wall_seconds = std::chrono::duration<double>(Clock::now() - start).count();

  for (ShardContext& ctx : shards)  // first failure in ascending shard order
    if (ctx.error) std::rethrow_exception(ctx.error);

  // Fixed-merge-order reduction: deterministic block in ascending partition
  // index, wall-clock block in ascending shard index.
  ServeStats stats;
  stats.wall_seconds = wall_seconds;
  stats.partitions.resize(partition_count);
  for (std::size_t p = 0; p < partition_count; ++p) {
    ServePartitionStats& ps = shards[p % shard_count].pstats[p / shard_count];
    ps.shed = shed_counts[p];
    stats.partitions[p] = ps;
    stats.requests += ps.requests;
    stats.decisions += ps.decisions;
    stats.accepted += ps.accepted;
    stats.rejected += ps.rejected;
    stats.shed += ps.shed;
    stats.total_cost += ps.total_cost;
    stats.decision_digest = fnv_fold(stats.decision_digest, ps.requests);
    stats.decision_digest = fnv_fold(stats.decision_digest, ps.decisions);
    stats.decision_digest = fnv_fold(stats.decision_digest, ps.accepted);
    stats.decision_digest = fnv_fold(stats.decision_digest, ps.rejected);
    stats.decision_digest = fnv_fold(stats.decision_digest, ps.shed);
    stats.decision_digest =
        fnv_fold(stats.decision_digest, std::bit_cast<std::uint64_t>(ps.total_cost));
    stats.decision_digest = fnv_fold(stats.decision_digest, ps.decision_digest);
  }
  stats.shards.reserve(shard_count);
  for (ShardContext& ctx : shards) {
    ctx.stats.queue_high_water = ctx.queue->high_water();
    ctx.stats.backpressure_waits = ctx.queue->backpressure_waits();
    stats.batches += ctx.stats.batches;
    stats.batched_decisions += ctx.stats.batched_decisions;
    stats.single_decisions += ctx.stats.single_decisions;
    stats.backpressure_waits += ctx.stats.backpressure_waits;
    stats.queue_high_water = std::max(stats.queue_high_water, ctx.stats.queue_high_water);
    stats.latency.merge(ctx.stats.latency);
    stats.shards.push_back(std::move(ctx.stats));
  }
  return stats;
}

}  // namespace vnfm::core
