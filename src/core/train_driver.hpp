// TrainDriver: the actor-learner training pipeline behind every training
// entry point (core::train_manager, exp::Experiment::train, bench drivers).
//
// Parallel path (managers with supports_parallel_training()):
//   N actor threads each own a private VnfEnv and an acting clone of the
//   policy (Manager::clone_for_acting). Training proceeds in rounds of
//   `sync_period` episodes: at a round boundary the learner republishes its
//   weights to every actor (Manager::sync_from_learner), the actors then run
//   the round's episodes — each reseeded from its core::train_seed — and
//   record their transitions, while the single learner thread ingests the
//   per-episode transition queues in fixed episode-seed order
//   (Manager::ingest), filling replay and taking gradient steps.
//
// Determinism contract: within a round every actor acts on the same frozen
// weight snapshot and an exploration stream derived only from the episode
// seed, and the learner consumes transitions in seed order; therefore the
// learning curve and the final policy are a function of (env options,
// episode options, seeds, sync_period) only — `threads` changes wall-clock,
// never results. threads=1 and threads=K are bit-identical.
//
// Sequential fallback (everything else, e.g. REINFORCE/actor-critic/tabular
// which update inline or at chain end): the classic one-env loop where the
// manager itself acts and observes online; this is also the exact legacy
// behaviour of core::train_manager. Note the parallel path replays only
// observe()-level transitions to the learner — managers whose *learning*
// happens in on_chain_end(env) must keep the sequential fallback.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/environment.hpp"
#include "core/manager.hpp"
#include "core/runner.hpp"

namespace vnfm::core {

/// Timing/throughput summary of one training run.
struct TrainStats {
  double wall_seconds = 0.0;
  std::size_t transitions = 0;  ///< decision steps fed to the learner
  std::size_t episodes = 0;
  std::size_t rounds = 0;  ///< weight republications (parallel path only)
  std::size_t actor_threads = 1;
  bool parallel = false;  ///< actor-learner pipeline vs sequential fallback
  /// Learner-side gradient workers (data-parallel minibatch engine; see
  /// nn/grad_pool.hpp). Like actor_threads, never changes results.
  std::size_t learner_threads = 1;
  std::size_t grad_steps = 0;  ///< batched gradient steps taken this run
  /// Wall-clock spent inside batched gradient steps, end to end: replay
  /// sampling and priority updates included, not just the block-parallel
  /// forward/backward section.
  double grad_seconds = 0.0;

  [[nodiscard]] double steps_per_second() const noexcept {
    return wall_seconds > 0.0 ? static_cast<double>(transitions) / wall_seconds : 0.0;
  }

  /// Mean microseconds per batched gradient step (0 when no step ran);
  /// shared µs/op math with ServeStats (common/stats mean_micros_per).
  [[nodiscard]] double grad_step_micros() const noexcept {
    return mean_micros_per(grad_seconds, grad_steps);
  }

  /// Folds another run's stats into this one (continuation/resume totals):
  /// durations and counts add, thread counts take the max, parallel ORs.
  void accumulate(const TrainStats& other) noexcept {
    wall_seconds += other.wall_seconds;
    transitions += other.transitions;
    episodes += other.episodes;
    rounds += other.rounds;
    if (other.actor_threads > actor_threads) actor_threads = other.actor_threads;
    parallel = parallel || other.parallel;
    if (other.learner_threads > learner_threads) learner_threads = other.learner_threads;
    grad_steps += other.grad_steps;
    grad_seconds += other.grad_seconds;
  }
};

/// Knobs of one training run.
struct TrainOptions {
  /// Number of training episodes (episode i runs on
  /// train_seed(episode.seed, first_episode + i)).
  std::size_t episodes = 0;
  /// Actor worker threads; 0 = hardware concurrency. Any value >= 1 yields
  /// bit-identical results on the parallel path (see file header).
  std::size_t threads = 1;
  /// Episodes per weight republication round on the parallel path. Smaller
  /// values track the learner more tightly; larger values expose more
  /// parallelism. Part of the algorithm definition: changing it changes
  /// results (changing `threads` does not).
  std::size_t sync_period = 4;
  /// Learner-side workers for the data-parallel minibatch gradient engine
  /// (Manager::set_learner_threads); 0 = hardware concurrency. Like
  /// `threads`, any value yields bit-identical curves, weights, and
  /// checkpoint archives (modulo archived wall-clock stats) — it moves
  /// gradient-step wall-clock only.
  std::size_t learner_threads = 1;
  /// Offset into the training seed slice (continuing a previous run).
  std::size_t first_episode = 0;
  /// Per-episode options (duration, request cap, base seed). `training` is
  /// forced on.
  EpisodeOptions episode;

  // ---- Checkpointing (see core/checkpoint.hpp) -----------------------------
  /// Write a resumable checkpoint roughly every N completed episodes into
  /// `checkpoint_dir` (0 = off). Checkpoints land at episode boundaries on
  /// the learner thread; on the parallel path they align to sync_period
  /// round boundaries — the weight-republication points — because only there
  /// is resumed training bit-identical to the uninterrupted run.
  std::size_t checkpoint_every = 0;
  /// Directory for checkpoint files (created on demand).
  std::string checkpoint_dir;
  /// Keep only the newest N checkpoint archives in checkpoint_dir, pruning
  /// older ones after every successful write (0 = unlimited). Multi-day
  /// runs checkpoint thousands of times; without pruning the archives
  /// accumulate without bound.
  std::size_t keep_last_n = 0;
  /// Training history preceding first_episode (continuation/resume):
  /// prepended to the curve stored in every checkpoint so archives always
  /// describe episodes [0, first_episode + k).
  std::vector<EpisodeResult> prior_curve;
  /// Episode seeds aligned with prior_curve.
  std::vector<std::uint64_t> prior_seeds;
  /// Stats accumulated before this run (merged into checkpointed stats).
  TrainStats prior_stats;
};

/// Outcome of one training run.
struct TrainResult {
  std::vector<EpisodeResult> curve;  ///< per-episode results, seed order
  std::vector<std::uint64_t> seeds;  ///< the train_seed of every episode
  TrainStats stats;
};

/// Drives training of one manager over environments built from `env_options`
/// (see file header for the two execution paths and the determinism
/// contract).
class TrainDriver {
 public:
  TrainDriver(EnvOptions env_options, TrainOptions options);

  /// Trains `manager`: the actor-learner pipeline when the manager supports
  /// it, the sequential fallback otherwise.
  TrainResult run(Manager& manager) const;

  /// The sequential one-env loop (legacy train_manager semantics: the
  /// manager acts and learns online within each episode). When `env` is
  /// non-null the episodes run in it; otherwise a private environment is
  /// built from the driver's env options.
  TrainResult run_sequential(Manager& manager, VnfEnv* env = nullptr) const;

 private:
  TrainResult run_pipeline(Manager& learner) const;
  /// Writes a checkpoint for `completed` finished episodes of this run
  /// (absolute index first_episode + completed); no-op when checkpointing is
  /// off. Patches the run's in-progress stats (wall-clock `partial_seconds`,
  /// episode count, gradient work since `grad_before`) onto result.stats
  /// before folding the prior history in; prunes old archives per
  /// keep_last_n afterwards.
  void write_run_checkpoint(const Manager& manager, const TrainResult& result,
                            std::size_t completed, double partial_seconds,
                            const GradStepStats& grad_before) const;

  EnvOptions env_options_;
  TrainOptions options_;
};

}  // namespace vnfm::core
