// The VNF-manager abstraction: anything that can decide where each VNF of an
// arriving chain runs. Learning managers additionally consume transitions.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "core/environment.hpp"

namespace vnfm {
class Serializer;
class Deserializer;
}  // namespace vnfm

namespace vnfm::core {

/// Everything a learning manager needs from one decision step. Views are
/// only valid for the duration of the observe() call.
struct TransitionView {
  std::span<const float> state;
  std::span<const std::uint8_t> mask;
  std::span<const float> coarse_state;  ///< compact features (tabular agents)
  int action = 0;
  float reward = 0.0F;
  bool done = false;
  std::span<const float> next_state;        ///< empty when done
  std::span<const std::uint8_t> next_mask;  ///< empty when done
  std::span<const float> next_coarse_state;
};

/// Lifetime gradient-step accounting a learning manager can expose (count
/// of batched gradient steps and the wall-clock spent inside them); the
/// TrainDriver reports per-run deltas through TrainStats.
struct GradStepStats {
  std::size_t steps = 0;   ///< gradient steps taken so far
  double seconds = 0.0;    ///< wall-clock seconds spent in gradient work
};

/// Interface implemented by the DRL manager and every baseline.
class Manager {
 public:
  virtual ~Manager() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once per episode after env.reset(); lets managers pre-provision.
  virtual void on_episode_start(VnfEnv& env) { (void)env; }

  /// Chooses an action for the environment's current decision point.
  /// Must return an action that is valid under env.action_mask().
  [[nodiscard]] virtual int select_action(VnfEnv& env) = 0;

  /// Batched decision entry point (serving engine): chooses one action per
  /// environment, each at its own pending decision point, writing
  /// actions[i] for envs[i]. MUST be decision-equivalent to calling
  /// select_action(*envs[i]) one by one — batching is an inference-cost
  /// optimisation, never a policy change — so the default does exactly
  /// that loop. Policies with batched inference (DQN) override it to run
  /// all rows through one network forward.
  virtual void select_actions(std::span<VnfEnv* const> envs, std::span<int> actions) {
    for (std::size_t i = 0; i < envs.size(); ++i) actions[i] = select_action(*envs[i]);
  }

  /// Receives the transition produced by the last select_action (only
  /// called by the runner when training is enabled).
  virtual void observe(const TransitionView& transition) { (void)transition; }

  /// Called when the pending chain resolves (accepted or rejected). The
  /// environment reference lets decorators run maintenance passes (e.g.
  /// consolidation migrations) between chains.
  virtual void on_chain_end(VnfEnv& env) { (void)env; }

  /// Toggles exploration / learning (evaluation runs disable it).
  virtual void set_training(bool training) { (void)training; }

  /// Evaluation snapshot: an independent copy that selects the same actions
  /// this manager would in evaluation mode (policy weights and any rng state
  /// that evaluation consumes are copied; learning state — replay buffers,
  /// exploration schedules — need not be). Enables parallel evaluation with
  /// one clone per worker. Returns nullptr when the manager cannot be
  /// snapshotted, in which case callers must evaluate sequentially through
  /// the original instance.
  [[nodiscard]] virtual std::unique_ptr<Manager> clone_for_eval() const {
    return nullptr;
  }

  // ---- Checkpoint/resume hooks (see core/checkpoint.hpp) -------------------

  /// Tag naming this policy's serialized layout (e.g. "dqn/v1"). Written
  /// into checkpoint archives and validated on load, so a checkpoint can
  /// never be restored into a different policy type; bump the suffix when a
  /// policy's save() layout changes.
  [[nodiscard]] virtual std::string checkpoint_state() const {
    return "stateless/v1";
  }

  /// Serialises everything resume needs into the archive: learners write
  /// policy weights, optimizer moments, replay contents, schedule positions,
  /// and RNG streams; stateful heuristics write their counters; stateless
  /// policies keep this default no-op. The bit-identity contract: restoring
  /// into a freshly constructed manager of the same configuration and
  /// continuing training must match an uninterrupted run exactly.
  virtual void save(Serializer& out) const { (void)out; }

  /// Restores state written by save() into this manager.
  virtual void load(Deserializer& in) { (void)in; }

  // ---- Learner-side data-parallel gradient hooks (see nn/grad_pool.hpp) ----

  /// Sizes the worker pool of the manager's data-parallel gradient engine
  /// (block-wise minibatch forward/backward with fixed-order reduction).
  /// The contract: ANY value produces bit-identical learning curves, final
  /// weights, and checkpoint archives (modulo the archives' wall-clock
  /// stats fields) — learner threads move gradient-step wall-clock only.
  /// Runtime execution config, never serialized; the default ignores the
  /// value (policies without batched gradient steps).
  virtual void set_learner_threads(std::size_t workers) { (void)workers; }

  /// Lifetime gradient-step accounting (see GradStepStats); the default
  /// returns zeros for policies without gradient work.
  [[nodiscard]] virtual GradStepStats grad_step_stats() const { return {}; }

  // ---- Parallel-training hooks (actor-learner split; see TrainDriver) ------

  /// True when this manager implements the actor/learner split consumed by
  /// the parallel training driver: clone_for_acting() returns detachable
  /// acting policies and ingest() drives learning from recorded transitions.
  /// Managers that learn inline (REINFORCE, actor-critic, tabular Q) keep the
  /// default and are trained through the driver's sequential fallback.
  [[nodiscard]] virtual bool supports_parallel_training() const { return false; }

  /// Acting-side snapshot for one actor thread: selects actions with this
  /// manager's current policy and exploration schedule but never learns.
  /// Returns nullptr when unsupported.
  [[nodiscard]] virtual std::unique_ptr<Manager> clone_for_acting() const {
    return nullptr;
  }

  /// Re-derives an acting clone's exploration RNG stream. The driver calls
  /// this once per episode with the episode seed so that action streams are
  /// a function of the episode, not of which thread ran it.
  virtual void reseed(std::uint64_t seed) { (void)seed; }

  /// Refreshes an acting clone's policy weights and exploration rate from
  /// the learner (round-boundary weight republication).
  virtual void sync_from_learner(const Manager& learner) { (void)learner; }

  /// Learner-side ingestion of a transition recorded by an acting clone; the
  /// default forwards to observe(). Managers whose learning cadence counts
  /// decision steps inside select_action must advance those counters here,
  /// since an actor-learner learner never selects actions itself.
  virtual void ingest(const TransitionView& transition) { observe(transition); }
};

}  // namespace vnfm::core
