#include "core/migration.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "common/serialize.hpp"

namespace vnfm::core {

using edgesim::ChainPlacement;
using edgesim::ClusterState;
using edgesim::NodeId;
using edgesim::RequestId;

namespace {

/// Estimates the chain's latency if the VNF at `position` moved to `target`
/// (approximate: target queueing uses the least-loaded-fit estimate, other
/// hops use current loads).
double hypothetical_latency_ms(const ClusterState& cluster, const ChainPlacement& chain,
                               std::size_t position, NodeId target) {
  const auto& topo = cluster.topology();
  double latency = 0.0;
  for (std::size_t i = 0; i < chain.nodes.size(); ++i) {
    const NodeId node = i == position ? target : chain.nodes[i];
    const NodeId prev = i == 0 ? NodeId{} : (i - 1 == position ? target : chain.nodes[i - 1]);
    if (i == 0) {
      latency += topo.user_latency_ms(chain.source_region, node);
    } else {
      latency += topo.latency_ms(prev, node);
    }
    if (i == position) {
      const auto& inst = cluster.instance(chain.instances[i]);
      latency += cluster.estimated_proc_delay_ms(target, inst.type, chain.rate_rps);
    } else {
      const auto& inst = cluster.instance(chain.instances[i]);
      const auto& vnf = cluster.vnfs().type(inst.type);
      const double utilization = std::min(inst.load_rps / vnf.capacity_rps, 0.999);
      latency += vnf.proc_delay_ms / (1.0 - utilization);
    }
  }
  const NodeId last =
      position + 1 == chain.nodes.size() ? target : chain.nodes.back();
  latency += topo.user_latency_ms(chain.source_region, last);
  return latency;
}

}  // namespace

std::size_t run_consolidation_pass(ClusterState& cluster,
                                   const ConsolidationOptions& options) {
  const auto& topo = cluster.topology();
  std::size_t migrations = 0;

  // Snapshot the chain keys: migrations mutate the chain table values but
  // not its key set, so iteration over a key copy is safe.
  std::vector<RequestId> chain_ids;
  chain_ids.reserve(cluster.active_chains().size());
  for (const auto& [id, chain] : cluster.active_chains()) chain_ids.push_back(id);

  for (const RequestId id : chain_ids) {
    if (migrations >= options.max_migrations_per_pass) break;
    const auto it = cluster.active_chains().find(id);
    if (it == cluster.active_chains().end()) continue;
    const ChainPlacement chain = it->second;  // copy: we mutate via migrate

    for (std::size_t position = 0; position < chain.nodes.size(); ++position) {
      if (migrations >= options.max_migrations_per_pass) break;
      const NodeId source = chain.nodes[position];
      if (cluster.cpu_utilization(source) >= options.drain_utilization) continue;
      const auto& inst = cluster.instance(chain.instances[position]);

      // Find the best reuse-only target: an existing instance with headroom
      // on a busier node, minimising the post-move latency.
      NodeId best_target{};
      bool found = false;
      double best_latency = std::numeric_limits<double>::infinity();
      for (const auto& node : topo.nodes()) {
        if (node.id == source) continue;
        if (cluster.cpu_utilization(node.id) <= cluster.cpu_utilization(source))
          continue;  // only consolidate toward busier nodes
        if (!cluster.has_headroom_instance(node.id, inst.type, chain.rate_rps)) continue;
        const double latency =
            hypothetical_latency_ms(cluster, chain, position, node.id);
        if (latency > options.sla_headroom * chain.sla_latency_ms) continue;
        if (latency < best_latency) {
          best_latency = latency;
          best_target = node.id;
          found = true;
        }
      }
      if (!found) continue;
      cluster.migrate_chain_vnf(id, position, best_target);
      ++migrations;
      break;  // at most one move per chain per pass limits churn
    }
  }
  return migrations;
}

ConsolidatingManager::ConsolidatingManager(Manager& inner, ConsolidationOptions options,
                                           std::size_t period_chains)
    : inner_(inner), options_(options), period_chains_(std::max<std::size_t>(1, period_chains)) {}

ConsolidatingManager::ConsolidatingManager(std::unique_ptr<Manager> inner,
                                           ConsolidationOptions options,
                                           std::size_t period_chains)
    : owned_inner_(std::move(inner)),
      inner_(*owned_inner_),
      options_(options),
      period_chains_(std::max<std::size_t>(1, period_chains)) {}

std::string ConsolidatingManager::name() const {
  return inner_.name() + "+consolidation";
}

void ConsolidatingManager::on_episode_start(VnfEnv& env) {
  chains_since_pass_ = 0;
  inner_.on_episode_start(env);
}

int ConsolidatingManager::select_action(VnfEnv& env) { return inner_.select_action(env); }

void ConsolidatingManager::observe(const TransitionView& transition) {
  inner_.observe(transition);
}

void ConsolidatingManager::on_chain_end(VnfEnv& env) {
  inner_.on_chain_end(env);
  if (++chains_since_pass_ < period_chains_) return;
  chains_since_pass_ = 0;
  const std::size_t moved = run_consolidation_pass(env.mutable_cluster(), options_);
  if (moved > 0) {
    env.record_migrations(moved);
    migrations_triggered_ += moved;
  }
}

void ConsolidatingManager::set_training(bool training) { inner_.set_training(training); }

std::string ConsolidatingManager::checkpoint_state() const {
  return "consolidating(" + inner_.checkpoint_state() + ")/v1";
}

void ConsolidatingManager::save(Serializer& out) const {
  out.write_u64(chains_since_pass_);
  out.write_u64(migrations_triggered_);
  inner_.save(out);
}

void ConsolidatingManager::load(Deserializer& in) {
  chains_since_pass_ = in.read_u64();
  migrations_triggered_ = in.read_u64();
  inner_.load(in);
}

}  // namespace vnfm::core
