#include "core/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "common/serialize.hpp"

namespace vnfm::core {
namespace {

void save_episode_result(Serializer& out, const EpisodeResult& r) {
  out.write_f64(r.total_reward);
  out.write_u64(r.requests);
  out.write_f64(r.cost_per_request);
  out.write_f64(r.total_cost);
  out.write_f64(r.acceptance_ratio);
  out.write_f64(r.mean_latency_ms);
  out.write_f64(r.p95_latency_ms);
  out.write_f64(r.sla_violation_ratio);
  out.write_f64(r.mean_utilization);
  out.write_u64(r.deployments);
  out.write_f64(r.running_cost);
  out.write_f64(r.revenue);
}

EpisodeResult load_episode_result(Deserializer& in) {
  EpisodeResult r;
  r.total_reward = in.read_f64();
  r.requests = in.read_u64();
  r.cost_per_request = in.read_f64();
  r.total_cost = in.read_f64();
  r.acceptance_ratio = in.read_f64();
  r.mean_latency_ms = in.read_f64();
  r.p95_latency_ms = in.read_f64();
  r.sla_violation_ratio = in.read_f64();
  r.mean_utilization = in.read_f64();
  r.deployments = in.read_u64();
  r.running_cost = in.read_f64();
  r.revenue = in.read_f64();
  return r;
}

}  // namespace

void write_checkpoint(const std::string& path, const Manager& manager,
                      const TrainCheckpoint& data) {
  Serializer out;
  out.begin_chunk("train_checkpoint");

  out.begin_chunk("meta");
  out.write_u64(data.episodes_done);
  out.write_u64(data.base_seed);
  out.write_string(manager.checkpoint_state());
  out.end_chunk();

  out.begin_chunk("curve");
  out.write_u64(data.curve.size());
  for (const EpisodeResult& r : data.curve) save_episode_result(out, r);
  out.write_u64_vec(data.seeds);
  out.end_chunk();

  out.begin_chunk("stats");
  out.write_f64(data.stats.wall_seconds);
  out.write_u64(data.stats.transitions);
  out.write_u64(data.stats.episodes);
  out.write_u64(data.stats.rounds);
  out.write_u64(data.stats.actor_threads);
  out.write_bool(data.stats.parallel);
  out.end_chunk();

  out.begin_chunk("manager");
  manager.save(out);
  out.end_chunk();

  // Format v2: gradient-step accounting in a skippable suffix chunk. New
  // stats ride in suffix chunks (not in "stats") so the v1 chunk sequence
  // stays a prefix of every newer archive — a reader that stops after
  // "manager" still loads cleanly, and this reader probes for the suffix
  // instead of assuming it (v1 archives end at "manager").
  // (stats.learner_threads is deliberately NOT archived, like the rest of
  // the execution configuration: invariant #8 keeps thread counts out of
  // checkpoints, so a resumed run reports only its own thread counts.)
  out.begin_chunk("xstats");
  out.write_u64(data.stats.grad_steps);
  out.write_f64(data.stats.grad_seconds);
  out.end_chunk();

  out.end_chunk();
  out.save_file(path);
}

TrainCheckpoint read_checkpoint(const std::string& path, Manager& manager) {
  Deserializer in = Deserializer::from_file(path);
  in.enter_chunk("train_checkpoint");

  TrainCheckpoint data;
  in.enter_chunk("meta");
  data.episodes_done = in.read_u64();
  data.base_seed = in.read_u64();
  const std::string policy = in.read_string();
  if (policy != manager.checkpoint_state())
    throw SerializeError("checkpoint '" + path + "' holds policy '" + policy +
                         "', cannot restore into '" + manager.checkpoint_state() + "'");
  in.leave_chunk();

  in.enter_chunk("curve");
  const std::uint64_t episodes = in.read_u64();
  in.expect_items(episodes, 96, "learning curve");  // 12 8-byte fields each
  data.curve.resize(episodes);
  for (EpisodeResult& r : data.curve) r = load_episode_result(in);
  data.seeds = in.read_u64_vec();
  in.leave_chunk();

  in.enter_chunk("stats");
  data.stats.wall_seconds = in.read_f64();
  data.stats.transitions = in.read_u64();
  data.stats.episodes = in.read_u64();
  data.stats.rounds = in.read_u64();
  data.stats.actor_threads = in.read_u64();
  data.stats.parallel = in.read_bool();
  in.leave_chunk();

  in.enter_chunk("manager");
  manager.load(in);
  in.leave_chunk();

  // Optional v2 suffix (absent in v1 archives: grad stats default to 0).
  // Unknown later suffix chunks are skipped by the final leave_chunk().
  if (in.remaining_in_chunk() > 0 && in.peek_chunk_tag() == "xstats") {
    in.enter_chunk("xstats");
    data.stats.grad_steps = in.read_u64();
    data.stats.grad_seconds = in.read_f64();
    in.leave_chunk();
  }

  in.leave_chunk();
  return data;
}

std::string read_checkpoint_policy(const std::string& path) {
  Deserializer in = Deserializer::from_file(path);
  in.enter_chunk("train_checkpoint");
  in.enter_chunk("meta");
  (void)in.read_u64();  // episodes_done
  (void)in.read_u64();  // base_seed
  return in.read_string();
}

CheckpointInfo inspect_checkpoint(const std::string& path) {
  Deserializer in = Deserializer::from_file(path);
  in.enter_chunk("train_checkpoint");

  CheckpointInfo info;
  in.enter_chunk("meta");
  info.episodes_done = in.read_u64();
  info.base_seed = in.read_u64();
  info.policy = in.read_string();
  in.leave_chunk();

  in.enter_chunk("curve");
  const std::uint64_t episodes = in.read_u64();
  in.expect_items(episodes, 96, "learning curve");  // 12 8-byte fields each
  info.curve.resize(episodes);
  for (EpisodeResult& r : info.curve) r = load_episode_result(in);
  info.seeds = in.read_u64_vec();
  in.leave_chunk();

  in.enter_chunk("stats");
  info.stats.wall_seconds = in.read_f64();
  info.stats.transitions = in.read_u64();
  info.stats.episodes = in.read_u64();
  info.stats.rounds = in.read_u64();
  info.stats.actor_threads = in.read_u64();
  info.stats.parallel = in.read_bool();
  in.leave_chunk();

  // The manager state is opaque without the policy's loader: report its
  // size and skip it (leave_chunk discards the unread payload).
  in.enter_chunk("manager");
  info.manager_bytes = in.remaining_in_chunk();
  in.leave_chunk();

  if (in.remaining_in_chunk() > 0 && in.peek_chunk_tag() == "xstats") {
    in.enter_chunk("xstats");
    info.stats.grad_steps = in.read_u64();
    info.stats.grad_seconds = in.read_f64();
    in.leave_chunk();
  }

  in.leave_chunk();
  return info;
}

std::string checkpoint_filename(std::uint64_t episodes_done) {
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-%09llu.vnfmc",
                static_cast<unsigned long long>(episodes_done));
  return name;
}

namespace {

/// Checkpoint archives in `dir` by the checkpoint_filename naming scheme,
/// sorted by filename (the zero-padded episode count makes lexicographic
/// order numeric order, oldest first).
std::vector<std::filesystem::path> list_checkpoints(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<fs::path> archives;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt-", 0) != 0 || name.size() < 6) continue;
    if (entry.path().extension() != ".vnfmc") continue;
    archives.push_back(entry.path());
  }
  std::sort(archives.begin(), archives.end(),
            [](const fs::path& a, const fs::path& b) {
              return a.filename().string() < b.filename().string();
            });
  return archives;
}

}  // namespace

std::string latest_checkpoint(const std::string& dir) {
  const auto archives = list_checkpoints(dir);
  return archives.empty() ? std::string{} : archives.back().string();
}

std::size_t prune_checkpoints(const std::string& dir, std::size_t keep_last_n) {
  if (keep_last_n == 0) return 0;
  const auto archives = list_checkpoints(dir);
  if (archives.size() <= keep_last_n) return 0;
  const std::size_t excess = archives.size() - keep_last_n;
  std::size_t removed = 0;
  for (std::size_t i = 0; i < excess; ++i) {
    std::error_code ec;
    if (std::filesystem::remove(archives[i], ec)) ++removed;
  }
  return removed;
}

}  // namespace vnfm::core
