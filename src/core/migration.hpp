// Consolidation migrations: periodically drain under-utilised edge nodes by
// moving live chain VNFs onto nodes that already run instances of the same
// type, so the idle-timeout GC can reclaim the drained capacity. This is the
// "management" half of VNF management that pure placement policies lack.
#pragma once

#include <cstddef>
#include <memory>

#include "core/manager.hpp"
#include "edgesim/cluster.hpp"

namespace vnfm::core {

struct ConsolidationOptions {
  /// Nodes below this CPU utilisation are drain candidates.
  double drain_utilization = 0.35;
  /// Cap on migrations per pass (keeps churn and migration cost bounded).
  std::size_t max_migrations_per_pass = 4;
  /// A move is only taken if the chain's post-move latency stays within
  /// this fraction of its SLA.
  double sla_headroom = 0.9;
};

/// One consolidation pass over the live chains: migrates VNFs off drain
/// nodes onto reuse targets (never deploys new instances), preferring the
/// lowest-latency feasible target. Returns the number of migrations done.
std::size_t run_consolidation_pass(edgesim::ClusterState& cluster,
                                   const ConsolidationOptions& options);

/// Decorator that adds periodic consolidation to any placement manager:
/// after every `period_chains` resolved chains it runs a consolidation pass
/// and charges the migrations to the environment's objective.
class ConsolidatingManager : public Manager {
 public:
  ConsolidatingManager(Manager& inner, ConsolidationOptions options,
                       std::size_t period_chains = 50);

  /// Owning variant: the decorator keeps the wrapped manager alive (used by
  /// factory-built managers, e.g. the experiment registry).
  ConsolidatingManager(std::unique_ptr<Manager> inner, ConsolidationOptions options,
                       std::size_t period_chains = 50);

  [[nodiscard]] std::string name() const override;
  void on_episode_start(VnfEnv& env) override;
  [[nodiscard]] int select_action(VnfEnv& env) override;
  void observe(const TransitionView& transition) override;
  void on_chain_end(VnfEnv& env) override;
  void set_training(bool training) override;

  // The gradient-engine hooks pass straight through to the wrapped policy,
  // so a decorated learner still gets its worker pool and reports its
  // gradient work.
  void set_learner_threads(std::size_t workers) override {
    inner_.set_learner_threads(workers);
  }
  [[nodiscard]] GradStepStats grad_step_stats() const override {
    return inner_.grad_step_stats();
  }

  [[nodiscard]] std::uint64_t migrations_triggered() const noexcept {
    return migrations_triggered_;
  }

  /// Decorator tag wraps the inner policy's tag, so a checkpoint can only be
  /// restored into the same decorator/inner combination.
  [[nodiscard]] std::string checkpoint_state() const override;
  /// Serialises the pass cadence counters, then delegates to the inner
  /// policy's save().
  void save(Serializer& out) const override;
  void load(Deserializer& in) override;

 private:
  std::unique_ptr<Manager> owned_inner_;  ///< set only by the owning ctor
  Manager& inner_;
  ConsolidationOptions options_;
  std::size_t period_chains_;
  std::size_t chains_since_pass_ = 0;
  std::uint64_t migrations_triggered_ = 0;
};

}  // namespace vnfm::core
