// ASCII table rendering for the benchmark harness (paper-style rows).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace vnfm {

/// Accumulates rows of strings and prints an aligned ASCII table.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Convenience for numeric rows; first cell is a label.
  void add_row(const std::string& label, const std::vector<double>& values);

  /// Renders the table with column alignment and a header rule.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vnfm
