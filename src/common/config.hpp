// Tiny key=value configuration store with typed accessors.
//
// Used by examples and bench binaries to override experiment parameters from
// the command line ("key=value" arguments) or the environment.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace vnfm {

/// String-keyed configuration with typed getters and defaults.
class Config {
 public:
  Config() = default;

  /// Inline override sets: Config{{"nodes", "8"}, {"arrival_rate", "2.0"}}.
  Config(std::initializer_list<std::pair<std::string, std::string>> pairs);

  /// Parses "key=value" tokens; ignores tokens without '='.
  static Config from_args(int argc, const char* const* argv);

  void set(const std::string& key, const std::string& value) { values_[key] = value; }

  [[nodiscard]] bool contains(const std::string& key) const { return values_.count(key) > 0; }

  [[nodiscard]] std::string get_string(const std::string& key, const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] int get_int(const std::string& key, int fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;
  [[nodiscard]] std::size_t get_size(const std::string& key, std::size_t fallback) const;
  [[nodiscard]] std::uint64_t get_uint64(const std::string& key, std::uint64_t fallback) const;
  /// Comma-separated doubles ("rates=20,40,60"); empty entries are rejected.
  [[nodiscard]] std::vector<double> get_double_list(const std::string& key,
                                                    std::vector<double> fallback) const;

  [[nodiscard]] const std::map<std::string, std::string>& values() const { return values_; }

 private:
  [[nodiscard]] std::optional<std::string> find(const std::string& key) const;

  std::map<std::string, std::string> values_;
};

/// True when the environment requests full-length (paper-scale) runs.
[[nodiscard]] bool full_run_requested();

}  // namespace vnfm
