// Deterministic pseudo-random number generation for simulation and learning.
//
// All stochastic components in the library draw from vnfm::Rng so that every
// experiment is reproducible from a single 64-bit seed. The generator is
// xoshiro256**, seeded via SplitMix64, which is fast, high quality, and has
// well-understood jump characteristics; we deliberately avoid std::mt19937
// whose distributions are not portable across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace vnfm {

class Serializer;
class Deserializer;

/// xoshiro256** pseudo-random generator with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator so it can interoperate with <random>
/// where needed, but the member distributions below are portable and are the
/// ones used throughout the library.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64 random bits.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (cached second value).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate) noexcept;

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 60 to stay O(1)).
  std::uint64_t poisson(double mean) noexcept;

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) noexcept;

  /// Samples an index according to non-negative weights (linear scan).
  /// Returns weights.size()-1 if rounding pushes past the end.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights) noexcept;

  /// Pareto (Lomax-shifted) heavy-tail sample with minimum x_m and shape a.
  double pareto(double x_m, double shape) noexcept;

  /// Fisher-Yates shuffle of an index permutation [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derives an independent generator (for parallel streams / sub-systems).
  Rng split() noexcept;

  /// Complete generator state (checkpointing): the xoshiro256** words plus
  /// the Box-Muller cached-normal carry.
  struct State {
    std::array<std::uint64_t, 4> words{};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };

  /// Snapshot of the full generator state.
  [[nodiscard]] State state() const noexcept {
    return {state_, cached_normal_, has_cached_normal_};
  }

  /// Restores a state captured by state(); the stream continues bit-exactly.
  void set_state(const State& state) noexcept {
    state_ = state.words;
    cached_normal_ = state.cached_normal;
    has_cached_normal_ = state.has_cached_normal;
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Writes the full generator state (checkpointing; see Rng::state()).
void save_rng(Serializer& out, const Rng& rng);
/// Restores a generator state written by save_rng(); the stream continues
/// bit-exactly from where it was captured.
void load_rng(Deserializer& in, Rng& rng);

}  // namespace vnfm
