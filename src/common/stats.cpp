#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace vnfm {

void RunningStat::add(double x) noexcept {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ = (n1 * mean_ + n2 * other.mean_) / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

QuantileSketch::QuantileSketch(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_state_(seed ? seed : 1) {}

void QuantileSketch::add(double x) {
  ++total_;
  if (capacity_ == 0 || sample_.size() < capacity_) {
    sample_.push_back(x);
    return;
  }
  // Reservoir sampling keeps each seen value with equal probability.
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 7;
  rng_state_ ^= rng_state_ << 17;
  const std::size_t slot = rng_state_ % total_;
  if (slot < capacity_) sample_[slot] = x;
}

double QuantileSketch::quantile(double q) const {
  if (sample_.empty()) throw std::runtime_error("quantile of empty sketch");
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted = sample_;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  if (idx + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(idx);
  return sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac;
}

std::vector<double> QuantileSketch::sorted_sample() const {
  std::vector<double> sorted = sample_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

namespace {

/// Bit width of the linear floor (kSubBuckets == 2^kSubBucketBits).
constexpr std::size_t kSubBucketBits = 5;
static_assert(LatencyHistogram::kSubBuckets == (std::size_t{1} << kSubBucketBits));

}  // namespace

std::size_t LatencyHistogram::bucket_index(double micros) noexcept {
  if (!(micros > 0.0)) return 0;
  const auto u = static_cast<std::uint64_t>(micros);
  if (u < kSubBuckets) return static_cast<std::size_t>(u);
  // exp = floor(log2(u)) >= kSubBucketBits; the octave [2^exp, 2^(exp+1))
  // splits into kSubBuckets equal sub-buckets of width 2^(exp - bits).
  std::size_t exp = kSubBucketBits;
  while ((u >> (exp + 1)) != 0) ++exp;
  const std::size_t octave = exp - kSubBucketBits;
  if (octave >= kOctaves) return kBuckets - 1;
  const auto sub = static_cast<std::size_t>((u >> (exp - kSubBucketBits)) - kSubBuckets);
  return kSubBuckets + octave * kSubBuckets + sub;
}

double LatencyHistogram::bucket_lo(std::size_t i) noexcept {
  if (i < kSubBuckets) return static_cast<double>(i);
  const std::size_t octave = (i - kSubBuckets) / kSubBuckets;
  const std::size_t sub = (i - kSubBuckets) % kSubBuckets;
  const double base = static_cast<double>(std::uint64_t{1} << (kSubBucketBits + octave));
  const double width = base / static_cast<double>(kSubBuckets);
  return base + width * static_cast<double>(sub);
}

double LatencyHistogram::bucket_hi(std::size_t i) noexcept {
  if (i + 1 < kBuckets) return bucket_lo(i + 1);
  return 2.0 * bucket_lo(i);  // the last bucket's nominal top
}

void LatencyHistogram::add(double micros) noexcept {
  ++counts_[bucket_index(micros)];
  ++total_;
  if (micros > max_) max_ = micros;
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  if (other.max_ > max_) max_ = other.max_;
}

double LatencyHistogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // p100 is the exactly-tracked maximum (HDR convention), not a bucket
  // midpoint — the top bucket's midpoint can under-report the true max.
  if (q >= 1.0) return max_;
  // Rank of the requested sample, 1-based (q = 0 -> first, q = 1 -> last).
  const auto target = static_cast<std::uint64_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(total_))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += counts_[i];
    if (cumulative >= target) {
      const double mid = 0.5 * (bucket_lo(i) + bucket_hi(i));
      return std::min(mid, max_);
    }
  }
  return max_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) throw std::invalid_argument("bad histogram range");
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;  // float edge guard
    ++counts_[idx];
  }
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

}  // namespace vnfm
