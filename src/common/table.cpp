#include "common/table.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "common/csv.hpp"

namespace vnfm {

AsciiTable::AsciiTable(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("table needs at least one column");
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) throw std::invalid_argument("table row arity mismatch");
  rows_.push_back(std::move(cells));
}

void AsciiTable::add_row(const std::string& label, const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (const double v : values) cells.push_back(format_number(v));
  add_row(std::move(cells));
}

void AsciiTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  for (std::size_t i = 0; i + 2 < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace vnfm
