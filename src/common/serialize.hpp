// Versioned binary serialization for checkpoint/resume.
//
// Archives are endian-stable (all integers little-endian, floats as IEEE-754
// bit patterns) so a checkpoint written on one machine restores bit-identical
// state on any other. The layout is
//
//   [magic "VNFM"][u32 format version][chunk...]
//
// where every chunk is `[tag][u64 payload length][payload][u32 CRC-32]`.
// Chunks nest freely (a manager chunk contains per-component sub-chunks);
// readers that enter a chunk may stop reading early — leave_chunk() skips any
// unread suffix, which is how newer writers stay loadable by older readers.
// The CRC detects torn or corrupted files before any state is mutated.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace vnfm {

/// Thrown on any malformed archive: bad magic, unsupported version, tag
/// mismatch, checksum failure, or truncation.
class SerializeError : public std::runtime_error {
 public:
  /// Wraps the human-readable reason (already prefixed with context).
  using std::runtime_error::runtime_error;
};

/// Buffered binary archive writer. All state accumulates in memory; call
/// finish() (or save_file()) once every chunk has been closed.
class Serializer {
 public:
  /// Starts an archive: writes the magic and format-version header.
  Serializer();

  /// Opens a typed chunk; every write until the matching end_chunk() lands in
  /// its payload. Chunks nest (LIFO).
  void begin_chunk(std::string_view tag);
  /// Closes the innermost open chunk, patching its length and CRC-32.
  void end_chunk();

  /// Writes one byte.
  void write_u8(std::uint8_t value);
  /// Writes a bool as one byte (0/1).
  void write_bool(bool value);
  /// Writes a 32-bit unsigned integer (little-endian).
  void write_u32(std::uint32_t value);
  /// Writes a 64-bit unsigned integer (little-endian).
  void write_u64(std::uint64_t value);
  /// Writes a 64-bit signed integer (two's-complement, little-endian).
  void write_i64(std::int64_t value);
  /// Writes a float as its IEEE-754 bit pattern (exact round-trip).
  void write_f32(float value);
  /// Writes a double as its IEEE-754 bit pattern (exact round-trip).
  void write_f64(double value);
  /// Writes a length-prefixed byte string.
  void write_string(std::string_view value);
  /// Writes a length-prefixed byte vector.
  void write_u8_vec(std::span<const std::uint8_t> values);
  /// Writes a length-prefixed vector of 64-bit unsigned integers.
  void write_u64_vec(std::span<const std::uint64_t> values);
  /// Writes a length-prefixed vector of floats (exact bit patterns).
  void write_f32_vec(std::span<const float> values);
  /// Writes a length-prefixed vector of doubles (exact bit patterns).
  void write_f64_vec(std::span<const double> values);

  /// The archive bytes written so far (header + closed and open chunks).
  /// Byte-for-byte equality of two archives implies equality of everything
  /// serialized into them — the state-comparison primitive the checkpoint
  /// tests build on.
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buffer_;
  }

  /// Flushes the archive to a stream; throws SerializeError if a chunk is
  /// still open or the stream fails.
  void finish(std::ostream& os) const;
  /// Writes the archive to `path` atomically-ish (temp file + rename).
  void save_file(const std::string& path) const;

 private:
  std::vector<std::uint8_t> buffer_;
  std::vector<std::size_t> open_chunks_;  ///< offsets of length placeholders
};

/// Binary archive reader; the mirror of Serializer. Validates the header at
/// construction and each chunk's tag and CRC-32 on entry.
class Deserializer {
 public:
  /// Reads the whole stream and validates magic + format version.
  explicit Deserializer(std::istream& is);
  /// Parses an in-memory archive (as produced by Serializer::bytes()).
  explicit Deserializer(std::vector<std::uint8_t> bytes);
  /// Opens the archive file at `path`; throws SerializeError when unreadable.
  static Deserializer from_file(const std::string& path);

  /// Enters the chunk at the cursor; throws SerializeError when its tag is
  /// not `tag` or its payload fails the checksum.
  void enter_chunk(std::string_view tag);
  /// Leaves the innermost chunk, skipping any unread payload suffix (forward
  /// compatibility with writers that appended fields).
  void leave_chunk();
  /// Tag of the chunk at the cursor without entering it (archive inspection).
  [[nodiscard]] std::string peek_chunk_tag() const;

  /// Reads one byte.
  [[nodiscard]] std::uint8_t read_u8();
  /// Reads a bool written by write_bool().
  [[nodiscard]] bool read_bool();
  /// Reads a 32-bit unsigned integer.
  [[nodiscard]] std::uint32_t read_u32();
  /// Reads a 64-bit unsigned integer.
  [[nodiscard]] std::uint64_t read_u64();
  /// Reads a 64-bit signed integer.
  [[nodiscard]] std::int64_t read_i64();
  /// Reads a float (exact bit pattern).
  [[nodiscard]] float read_f32();
  /// Reads a double (exact bit pattern).
  [[nodiscard]] double read_f64();
  /// Reads a length-prefixed byte string.
  [[nodiscard]] std::string read_string();
  /// Reads a length-prefixed byte vector.
  [[nodiscard]] std::vector<std::uint8_t> read_u8_vec();
  /// Reads a length-prefixed vector of 64-bit unsigned integers.
  [[nodiscard]] std::vector<std::uint64_t> read_u64_vec();
  /// Reads a length-prefixed vector of floats.
  [[nodiscard]] std::vector<float> read_f32_vec();
  /// Reads a length-prefixed vector of doubles.
  [[nodiscard]] std::vector<double> read_f64_vec();

  /// Archive format version from the header.
  [[nodiscard]] std::uint32_t format_version() const noexcept { return version_; }

  /// Unread payload bytes left in the innermost open chunk (whole remaining
  /// archive when no chunk is open). Version negotiation uses this before
  /// peek_chunk_tag() to probe for optional suffix chunks that older
  /// writers did not emit: 0 means the chunk holds nothing further.
  [[nodiscard]] std::uint64_t remaining_in_chunk() const noexcept {
    const std::size_t bound = chunk_ends_.empty() ? buffer_.size() : chunk_ends_.back();
    return cursor_ > bound ? 0 : bound - cursor_;
  }

  /// Validates that `count` items of at least `min_item_bytes` serialized
  /// bytes each still fit inside the current chunk bounds; throws
  /// SerializeError otherwise. Call before resize()/reserve()-ing containers
  /// from archive-declared counts, so a corrupted count fails cleanly
  /// instead of attempting an enormous allocation.
  void expect_items(std::uint64_t count, std::size_t min_item_bytes,
                    const char* what) const {
    require_items(count, min_item_bytes, what);
  }

 private:
  /// Throws SerializeError unless `count` more bytes fit in the current
  /// bounds (overflow-safe against untrusted counts).
  void require(std::uint64_t count, const char* what) const;
  /// require() for `count` items of `item_size` bytes, guarding against
  /// count * item_size overflow.
  void require_items(std::uint64_t count, std::size_t item_size,
                     const char* what) const;

  std::vector<std::uint8_t> buffer_;
  std::size_t cursor_ = 0;
  std::vector<std::size_t> chunk_ends_;  ///< payload end offsets (LIFO)
  std::uint32_t version_ = 0;
};

/// CRC-32 (IEEE 802.3 polynomial) over a byte range; exposed for tests.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes);

}  // namespace vnfm
