// Minimal CSV writer used by bench binaries to dump figure/table series.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace vnfm {

/// Writes one CSV file with a fixed header; values are formatted with
/// enough precision to round-trip doubles. Throws on I/O failure at open.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void row(const std::vector<double>& values);
  /// Appends one row of preformatted cells (for mixed text/number tables).
  void row(const std::vector<std::string>& cells);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t arity_;
  std::size_t rows_ = 0;
};

/// Formats a double compactly (trailing-zero trimmed, 6 significant digits).
[[nodiscard]] std::string format_number(double value);

}  // namespace vnfm
