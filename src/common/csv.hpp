// Minimal CSV writer/reader used by bench binaries to dump figure/table
// series and by the trace-replay workload model to load recorded traces.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace vnfm {

/// Writes one CSV file with a fixed header; values are formatted with
/// enough precision to round-trip doubles. Throws on I/O failure at open.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void row(const std::vector<double>& values);
  /// Appends one row of preformatted cells (for mixed text/number tables).
  void row(const std::vector<std::string>& cells);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t arity_;
  std::size_t rows_ = 0;
};

/// Formats a double compactly (trailing-zero trimmed, 6 significant digits).
[[nodiscard]] std::string format_number(double value);

/// Joins strings with ", " — the house style for listing known names/keys in
/// error messages.
[[nodiscard]] std::string join_comma(const std::vector<std::string>& items);

/// In-memory CSV contents: one header row plus string cells (callers convert
/// to their own types; parse errors then carry row/column context).
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of the named header column; throws std::invalid_argument listing
  /// the available columns when absent.
  [[nodiscard]] std::size_t column(const std::string& name) const;
};

/// Reads the whole file (same dialect CsvWriter emits: comma-separated, no
/// quoting). Blank lines are skipped; every data row must match the header
/// arity. Throws std::runtime_error on I/O failure or a ragged row.
[[nodiscard]] CsvTable read_csv(const std::string& path);

}  // namespace vnfm
