#include "common/config.hpp"

#include <cstdlib>
#include <stdexcept>

namespace vnfm {

Config Config::from_args(int argc, const char* const* argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    config.set(token.substr(0, eq), token.substr(eq + 1));
  }
  return config;
}

std::optional<std::string> Config::find(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key, const std::string& fallback) const {
  return find(key).value_or(fallback);
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto value = find(key);
  if (!value) return fallback;
  try {
    return std::stod(*value);
  } catch (const std::exception&) {
    throw std::invalid_argument("config key '" + key + "' is not a number: " + *value);
  }
}

int Config::get_int(const std::string& key, int fallback) const {
  const auto value = find(key);
  if (!value) return fallback;
  try {
    return std::stoi(*value);
  } catch (const std::exception&) {
    throw std::invalid_argument("config key '" + key + "' is not an int: " + *value);
  }
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto value = find(key);
  if (!value) return fallback;
  return *value == "1" || *value == "true" || *value == "yes" || *value == "on";
}

bool full_run_requested() {
  const char* env = std::getenv("REPRO_FULL");
  return env != nullptr && std::string(env) != "0" && std::string(env) != "";
}

}  // namespace vnfm
