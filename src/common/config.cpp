#include "common/config.hpp"

#include <cstdlib>
#include <stdexcept>

namespace vnfm {

Config::Config(std::initializer_list<std::pair<std::string, std::string>> pairs) {
  for (const auto& [key, value] : pairs) values_[key] = value;
}

Config Config::from_args(int argc, const char* const* argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    config.set(token.substr(0, eq), token.substr(eq + 1));
  }
  return config;
}

std::optional<std::string> Config::find(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key, const std::string& fallback) const {
  return find(key).value_or(fallback);
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto value = find(key);
  if (!value) return fallback;
  try {
    return std::stod(*value);
  } catch (const std::exception&) {
    throw std::invalid_argument("config key '" + key + "' is not a number: " + *value);
  }
}

int Config::get_int(const std::string& key, int fallback) const {
  const auto value = find(key);
  if (!value) return fallback;
  try {
    return std::stoi(*value);
  } catch (const std::exception&) {
    throw std::invalid_argument("config key '" + key + "' is not an int: " + *value);
  }
}

std::size_t Config::get_size(const std::string& key, std::size_t fallback) const {
  return static_cast<std::size_t>(get_uint64(key, fallback));
}

std::uint64_t Config::get_uint64(const std::string& key, std::uint64_t fallback) const {
  const auto value = find(key);
  if (!value) return fallback;
  try {
    // stoull would silently wrap negatives; reject any leading sign.
    const auto first = value->find_first_not_of(" \t");
    if (first != std::string::npos &&
        ((*value)[first] == '-' || (*value)[first] == '+'))
      throw std::invalid_argument("signed");
    return std::stoull(*value);
  } catch (const std::exception&) {
    throw std::invalid_argument("config key '" + key +
                                "' is not an unsigned integer: " + *value);
  }
}

std::vector<double> Config::get_double_list(const std::string& key,
                                            std::vector<double> fallback) const {
  const auto value = find(key);
  if (!value) return fallback;
  std::vector<double> out;
  std::size_t begin = 0;
  while (begin <= value->size()) {
    auto end = value->find(',', begin);
    if (end == std::string::npos) end = value->size();
    const std::string item = value->substr(begin, end - begin);
    try {
      std::size_t consumed = 0;
      out.push_back(std::stod(item, &consumed));
      if (consumed != item.size()) throw std::invalid_argument(item);
    } catch (const std::exception&) {
      throw std::invalid_argument("config key '" + key +
                                  "' is not a comma-separated number list: " + *value);
    }
    begin = end + 1;
  }
  return out;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto value = find(key);
  if (!value) return fallback;
  return *value == "1" || *value == "true" || *value == "yes" || *value == "on";
}

bool full_run_requested() {
  const char* env = std::getenv("REPRO_FULL");
  return env != nullptr && std::string(env) != "0" && std::string(env) != "";
}

}  // namespace vnfm
