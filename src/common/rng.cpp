#include "common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/serialize.hpp"

namespace vnfm {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire's multiply-shift rejection method: unbiased and branch-light.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto low = static_cast<std::uint64_t>(m);
  if (low < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 60.0) {
    const double limit = std::exp(-mean);
    std::uint64_t count = 0;
    double product = uniform();
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  const double sample = normal(mean, std::sqrt(mean));
  return sample <= 0.0 ? 0 : static_cast<std::uint64_t>(sample + 0.5);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += w;
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

double Rng::pareto(double x_m, double shape) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return x_m / std::pow(u, 1.0 / shape);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_index(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Rng Rng::split() noexcept { return Rng{(*this)()}; }

void save_rng(Serializer& out, const Rng& rng) {
  const Rng::State state = rng.state();
  out.write_u64_vec(state.words);
  out.write_f64(state.cached_normal);
  out.write_bool(state.has_cached_normal);
}

void load_rng(Deserializer& in, Rng& rng) {
  Rng::State state;
  const auto words = in.read_u64_vec();
  if (words.size() != state.words.size())
    throw SerializeError("malformed RNG state in checkpoint");
  std::copy(words.begin(), words.end(), state.words.begin());
  state.cached_normal = in.read_f64();
  state.has_cached_normal = in.read_bool();
  rng.set_state(state);
}

}  // namespace vnfm
