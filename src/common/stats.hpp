// Streaming statistics used by the simulator metrics and experiment harness.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace vnfm {

/// Mean microseconds per operation, 0 when no operation ran: the one µs/op
/// formula shared by TrainStats::grad_step_micros() and the serving engine's
/// ServeStats reporting, so perf numbers in curves, serve reports, and bench
/// JSON can never disagree on rounding or the no-op case.
[[nodiscard]] constexpr double mean_micros_per(double seconds,
                                               std::size_t ops) noexcept {
  return ops > 0 ? seconds * 1e6 / static_cast<double>(ops) : 0.0;
}

/// Numerically stable single-pass mean/variance accumulator (Welford).
class RunningStat {
 public:
  void add(double x) noexcept;
  void merge(const RunningStat& other) noexcept;
  void reset() noexcept { *this = RunningStat{}; }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exponentially weighted moving average; alpha is the weight of new samples.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.1) noexcept : alpha_(alpha) {}

  void add(double x) noexcept {
    value_ = initialized_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
    initialized_ = true;
  }
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] bool initialized() const noexcept { return initialized_; }
  /// Restores a state captured via value()/initialized() (checkpointing).
  void restore(double value, bool initialized) noexcept {
    value_ = value;
    initialized_ = initialized;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Sample reservoir with exact quantiles; bounded memory via reservoir
/// sampling once capacity is reached (capacity 0 means unbounded).
class QuantileSketch {
 public:
  explicit QuantileSketch(std::size_t capacity = 0, std::uint64_t seed = 1);

  void add(double x);
  /// Quantile in [0, 1] by linear interpolation over the retained sample.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] std::size_t count() const noexcept { return total_; }
  /// Sorted copy of the retained sample (for CDF dumps).
  [[nodiscard]] std::vector<double> sorted_sample() const;

 private:
  std::size_t capacity_;
  std::uint64_t rng_state_;
  std::size_t total_ = 0;
  std::vector<double> sample_;
};

/// HDR-style fixed-layout latency histogram (microsecond domain).
///
/// The bucket layout is log-linear and compile-time fixed: values below
/// kSubBuckets µs get 1 µs-wide buckets (exact), and each power-of-two range
/// [2^e, 2^(e+1)) above that is split into kSubBuckets linear sub-buckets, so
/// relative quantile error is bounded by 1/kSubBuckets (~3%) across the full
/// [0, ~2^31 µs] range with a few KiB of counters and O(1) add. Because the
/// layout never depends on the data, two histograms always merge bucket by
/// bucket (integer adds), which makes merged quantiles independent of merge
/// order — the property the serving engine's fixed-order stats reducer
/// relies on. The exact maximum is tracked separately (a tail quantile of a
/// bucketed histogram can never exceed it).
class LatencyHistogram {
 public:
  /// Linear sub-buckets per power-of-two range (also the width-1 µs floor).
  static constexpr std::size_t kSubBuckets = 32;
  /// Power-of-two ranges above the linear floor; the top of the highest
  /// range (2^(5 + kOctaves) µs ≈ 36 minutes) clamps into the last bucket.
  static constexpr std::size_t kOctaves = 26;
  /// Total bucket count of the fixed layout.
  static constexpr std::size_t kBuckets = kSubBuckets + kOctaves * kSubBuckets;

  /// Records one latency sample (negative values count as 0).
  void add(double micros) noexcept;
  /// Adds another histogram's counts and max (bucket-aligned by layout).
  void merge(const LatencyHistogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  /// Exact maximum recorded value in µs (0 when empty).
  [[nodiscard]] double max_micros() const noexcept { return max_; }
  /// Quantile q in [0, 1], in µs: the midpoint of the bucket holding the
  /// rank-⌈q·count⌉ sample (clamped by the exact max); 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;
  /// Raw count of bucket `i` (layout introspection / tests).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return counts_.at(i);
  }
  /// Inclusive lower bound of bucket `i` in µs.
  [[nodiscard]] static double bucket_lo(std::size_t i) noexcept;
  /// Exclusive upper bound of bucket `i` in µs.
  [[nodiscard]] static double bucket_hi(std::size_t i) noexcept;
  /// Index of the bucket that a value in µs lands in.
  [[nodiscard]] static std::size_t bucket_index(double micros) noexcept;

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); under/overflow tracked separately.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace vnfm
