// Streaming statistics used by the simulator metrics and experiment harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace vnfm {

/// Numerically stable single-pass mean/variance accumulator (Welford).
class RunningStat {
 public:
  void add(double x) noexcept;
  void merge(const RunningStat& other) noexcept;
  void reset() noexcept { *this = RunningStat{}; }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exponentially weighted moving average; alpha is the weight of new samples.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.1) noexcept : alpha_(alpha) {}

  void add(double x) noexcept {
    value_ = initialized_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
    initialized_ = true;
  }
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] bool initialized() const noexcept { return initialized_; }
  /// Restores a state captured via value()/initialized() (checkpointing).
  void restore(double value, bool initialized) noexcept {
    value_ = value;
    initialized_ = initialized;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Sample reservoir with exact quantiles; bounded memory via reservoir
/// sampling once capacity is reached (capacity 0 means unbounded).
class QuantileSketch {
 public:
  explicit QuantileSketch(std::size_t capacity = 0, std::uint64_t seed = 1);

  void add(double x);
  /// Quantile in [0, 1] by linear interpolation over the retained sample.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] std::size_t count() const noexcept { return total_; }
  /// Sorted copy of the retained sample (for CDF dumps).
  [[nodiscard]] std::vector<double> sorted_sample() const;

 private:
  std::size_t capacity_;
  std::uint64_t rng_state_;
  std::size_t total_ = 0;
  std::vector<double> sample_;
};

/// Fixed-bin histogram over [lo, hi); under/overflow tracked separately.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace vnfm
