#include "common/csv.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace vnfm {

std::string format_number(double value) {
  if (std::isnan(value)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : path_(path), out_(path), arity_(header.size()) {
  if (!out_) throw std::runtime_error("cannot open CSV file: " + path);
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out_ << ',';
    out_ << header[i];
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& values) {
  if (values.size() != arity_) throw std::invalid_argument("CSV row arity mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << format_number(values[i]);
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != arity_) throw std::invalid_argument("CSV row arity mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
  ++rows_;
}

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string::size_type start = 0;
  for (;;) {
    const auto comma = line.find(',', start);
    if (comma == std::string::npos) {
      cells.push_back(line.substr(start));
      return cells;
    }
    cells.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

}  // namespace

std::string join_comma(const std::vector<std::string>& items) {
  std::string out;
  for (const auto& item : items) {
    if (!out.empty()) out += ", ";
    out += item;
  }
  return out;
}

std::size_t CsvTable::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i)
    if (header[i] == name) return i;
  throw std::invalid_argument("CSV has no column '" + name +
                              "' (columns: " + join_comma(header) + ")");
}

CsvTable read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open CSV file: " + path);
  CsvTable table;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    auto cells = split_csv_line(line);
    if (table.header.empty()) {
      table.header = std::move(cells);
      continue;
    }
    if (cells.size() != table.header.size())
      throw std::runtime_error(path + ":" + std::to_string(line_number) +
                               ": CSV row arity mismatch");
    table.rows.push_back(std::move(cells));
  }
  if (table.header.empty()) throw std::runtime_error("empty CSV file: " + path);
  return table;
}

}  // namespace vnfm
