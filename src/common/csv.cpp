#include "common/csv.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace vnfm {

std::string format_number(double value) {
  if (std::isnan(value)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : path_(path), out_(path), arity_(header.size()) {
  if (!out_) throw std::runtime_error("cannot open CSV file: " + path);
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out_ << ',';
    out_ << header[i];
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& values) {
  if (values.size() != arity_) throw std::invalid_argument("CSV row arity mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << format_number(values[i]);
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != arity_) throw std::invalid_argument("CSV row arity mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
  ++rows_;
}

}  // namespace vnfm
