#include "common/serialize.hpp"

#include <array>
#include <bit>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>

namespace vnfm {
namespace {

constexpr std::array<std::uint8_t, 4> kMagic{'V', 'N', 'F', 'M'};
// Format history:
//   v1 — initial layout (PR 4).
//   v2 — train-run checkpoint archives gained an optional trailing "xstats"
//        chunk (gradient-step accounting; see core/checkpoint.cpp). Readers
//        accept every version up to kFormatVersion: older chunks are always
//        a prefix of newer archives, and unread suffix chunks are skipped.
constexpr std::uint32_t kFormatVersion = 2;

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit)
        c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  std::uint32_t crc = 0xFFFFFFFFU;
  for (const std::uint8_t b : bytes) crc = crc_table()[(crc ^ b) & 0xFFU] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFU;
}

// ---- Serializer ------------------------------------------------------------

Serializer::Serializer() {
  buffer_.reserve(256);
  for (const std::uint8_t byte : kMagic) buffer_.push_back(byte);
  write_u32(kFormatVersion);
}

void Serializer::write_u8(std::uint8_t value) { buffer_.push_back(value); }

void Serializer::write_bool(bool value) { write_u8(value ? 1 : 0); }

void Serializer::write_u32(std::uint32_t value) {
  for (int i = 0; i < 4; ++i) buffer_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

void Serializer::write_u64(std::uint64_t value) {
  for (int i = 0; i < 8; ++i) buffer_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

void Serializer::write_i64(std::int64_t value) {
  write_u64(static_cast<std::uint64_t>(value));
}

void Serializer::write_f32(float value) { write_u32(std::bit_cast<std::uint32_t>(value)); }

void Serializer::write_f64(double value) { write_u64(std::bit_cast<std::uint64_t>(value)); }

void Serializer::write_string(std::string_view value) {
  write_u64(value.size());
  buffer_.insert(buffer_.end(), value.begin(), value.end());
}

void Serializer::write_u8_vec(std::span<const std::uint8_t> values) {
  write_u64(values.size());
  buffer_.insert(buffer_.end(), values.begin(), values.end());
}

void Serializer::write_u64_vec(std::span<const std::uint64_t> values) {
  write_u64(values.size());
  for (const std::uint64_t v : values) write_u64(v);
}

void Serializer::write_f32_vec(std::span<const float> values) {
  write_u64(values.size());
  for (const float v : values) write_f32(v);
}

void Serializer::write_f64_vec(std::span<const double> values) {
  write_u64(values.size());
  for (const double v : values) write_f64(v);
}

void Serializer::begin_chunk(std::string_view tag) {
  write_string(tag);
  open_chunks_.push_back(buffer_.size());
  write_u64(0);  // payload-length placeholder, patched by end_chunk()
}

void Serializer::end_chunk() {
  if (open_chunks_.empty()) throw SerializeError("end_chunk without begin_chunk");
  const std::size_t length_at = open_chunks_.back();
  open_chunks_.pop_back();
  const std::size_t payload_start = length_at + 8;
  const std::uint64_t payload_len = buffer_.size() - payload_start;
  for (int i = 0; i < 8; ++i)
    buffer_[length_at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(payload_len >> (8 * i));
  write_u32(crc32({buffer_.data() + payload_start, payload_len}));
}

void Serializer::finish(std::ostream& os) const {
  if (!open_chunks_.empty())
    throw SerializeError("finish() with " + std::to_string(open_chunks_.size()) +
                         " unclosed chunk(s)");
  os.write(reinterpret_cast<const char*>(buffer_.data()),
           static_cast<std::streamsize>(buffer_.size()));
  if (!os) throw SerializeError("archive write failed");
}

void Serializer::save_file(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw SerializeError("cannot open '" + tmp + "' for writing");
    finish(out);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw SerializeError("cannot rename '" + tmp + "' to '" + path + "'");
}

// ---- Deserializer ----------------------------------------------------------

namespace {

std::vector<std::uint8_t> slurp_stream(std::istream& is) {
  std::vector<std::uint8_t> bytes;
  std::array<char, 4096> block{};
  while (is.read(block.data(), block.size()) || is.gcount() > 0)
    bytes.insert(bytes.end(), block.begin(), block.begin() + is.gcount());
  return bytes;
}

}  // namespace

Deserializer::Deserializer(std::istream& is) : Deserializer(slurp_stream(is)) {}

Deserializer::Deserializer(std::vector<std::uint8_t> bytes) : buffer_(std::move(bytes)) {
  require(4, "magic");
  for (std::size_t i = 0; i < kMagic.size(); ++i) {
    if (buffer_[i] != kMagic[i]) throw SerializeError("bad archive magic");
  }
  cursor_ = kMagic.size();
  version_ = read_u32();
  if (version_ == 0 || version_ > kFormatVersion)
    throw SerializeError("unsupported archive format version " +
                         std::to_string(version_));
}

Deserializer Deserializer::from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SerializeError("cannot open checkpoint '" + path + "'");
  return Deserializer(in);
}

void Deserializer::require(std::uint64_t count, const char* what) const {
  // Overflow-safe: `count` is untrusted (often read from the archive), so
  // compare against the remaining bytes instead of computing cursor_ + count.
  const std::size_t bound = chunk_ends_.empty() ? buffer_.size() : chunk_ends_.back();
  if (cursor_ > bound || count > bound - cursor_)
    throw SerializeError(std::string("truncated archive while reading ") + what);
}

void Deserializer::require_items(std::uint64_t count, std::size_t item_size,
                                 const char* what) const {
  const std::size_t bound = chunk_ends_.empty() ? buffer_.size() : chunk_ends_.back();
  const std::size_t avail = cursor_ > bound ? 0 : bound - cursor_;
  // count * item_size could wrap; divide instead.
  if (count > avail / item_size)
    throw SerializeError(std::string("truncated archive while reading ") + what);
}

std::uint8_t Deserializer::read_u8() {
  require(1, "u8");
  return buffer_[cursor_++];
}

bool Deserializer::read_bool() {
  const std::uint8_t v = read_u8();
  if (v > 1) throw SerializeError("malformed bool");
  return v != 0;
}

std::uint32_t Deserializer::read_u32() {
  require(4, "u32");
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i)
    value |= static_cast<std::uint32_t>(buffer_[cursor_++]) << (8 * i);
  return value;
}

std::uint64_t Deserializer::read_u64() {
  require(8, "u64");
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i)
    value |= static_cast<std::uint64_t>(buffer_[cursor_++]) << (8 * i);
  return value;
}

std::int64_t Deserializer::read_i64() { return static_cast<std::int64_t>(read_u64()); }

float Deserializer::read_f32() { return std::bit_cast<float>(read_u32()); }

double Deserializer::read_f64() { return std::bit_cast<double>(read_u64()); }

std::string Deserializer::read_string() {
  const std::uint64_t size = read_u64();
  require(size, "string");
  std::string value(reinterpret_cast<const char*>(buffer_.data() + cursor_), size);
  cursor_ += size;
  return value;
}

std::vector<std::uint8_t> Deserializer::read_u8_vec() {
  const std::uint64_t size = read_u64();
  require(size, "byte vector");
  std::vector<std::uint8_t> values(buffer_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                                   buffer_.begin() +
                                       static_cast<std::ptrdiff_t>(cursor_ + size));
  cursor_ += size;
  return values;
}

std::vector<std::uint64_t> Deserializer::read_u64_vec() {
  const std::uint64_t size = read_u64();
  require_items(size, 8, "u64 vector");
  std::vector<std::uint64_t> values(size);
  for (auto& v : values) v = read_u64();
  return values;
}

std::vector<float> Deserializer::read_f32_vec() {
  const std::uint64_t size = read_u64();
  require_items(size, 4, "f32 vector");
  std::vector<float> values(size);
  for (auto& v : values) v = read_f32();
  return values;
}

std::vector<double> Deserializer::read_f64_vec() {
  const std::uint64_t size = read_u64();
  require_items(size, 8, "f64 vector");
  std::vector<double> values(size);
  for (auto& v : values) v = read_f64();
  return values;
}

std::string Deserializer::peek_chunk_tag() const {
  // Manual non-mutating parse (copying the whole archive to peek a few
  // bytes would be O(archive size)).
  require(8, "chunk tag length");
  std::uint64_t size = 0;
  for (int i = 0; i < 8; ++i)
    size |= static_cast<std::uint64_t>(buffer_[cursor_ + static_cast<std::size_t>(i)])
            << (8 * i);
  const std::size_t bound = chunk_ends_.empty() ? buffer_.size() : chunk_ends_.back();
  if (size > bound - cursor_ - 8)
    throw SerializeError("truncated archive while reading chunk tag");
  return {reinterpret_cast<const char*>(buffer_.data() + cursor_ + 8),
          static_cast<std::size_t>(size)};
}

void Deserializer::enter_chunk(std::string_view tag) {
  const std::string found = read_string();
  if (found != tag)
    throw SerializeError("expected chunk '" + std::string(tag) + "', found '" + found +
                         "'");
  const std::uint64_t payload_len = read_u64();
  // First bound the untrusted length by the buffer (no wrap possible after
  // this: payload_len <= remaining bytes), then demand room for the CRC too.
  require(payload_len, "chunk payload");
  require(payload_len + 4, "chunk payload");
  const std::size_t payload_start = cursor_;
  // Validate the checksum before handing out any payload bytes.
  const std::uint32_t stored_crc = [&] {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
      value |= static_cast<std::uint32_t>(buffer_[payload_start + payload_len +
                                                  static_cast<std::size_t>(i)])
               << (8 * i);
    return value;
  }();
  const std::uint32_t computed = crc32({buffer_.data() + payload_start, payload_len});
  if (stored_crc != computed)
    throw SerializeError("checksum mismatch in chunk '" + std::string(tag) + "'");
  chunk_ends_.push_back(payload_start + payload_len);
}

void Deserializer::leave_chunk() {
  if (chunk_ends_.empty()) throw SerializeError("leave_chunk without enter_chunk");
  cursor_ = chunk_ends_.back() + 4;  // skip payload remainder + CRC
  chunk_ends_.pop_back();
}

}  // namespace vnfm
