#include "edgesim/link.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace vnfm::edgesim {

namespace {

constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();

/// SplitMix64 finaliser — the deterministic ECMP tie-breaker. Pure integer
/// arithmetic, so routes are identical on every platform and run.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

NetworkGraph::NetworkGraph(std::size_t host_count, std::vector<VertexKind> switch_kinds,
                           std::vector<Link> links)
    : host_count_(host_count), links_(std::move(links)) {
  if (host_count_ == 0) throw std::invalid_argument("network graph needs hosts");
  kinds_.assign(host_count_, VertexKind::kHost);
  kinds_.insert(kinds_.end(), switch_kinds.begin(), switch_kinds.end());
  adjacency_.assign(kinds_.size(), {});
  uplinks_.assign(kinds_.size(), {});
  for (std::size_t i = 0; i < links_.size(); ++i) {
    Link& link = links_[i];
    link.id = static_cast<LinkId>(i);
    if (link.src >= kinds_.size() || link.dst >= kinds_.size())
      throw std::invalid_argument("link endpoint out of range");
    if (link.capacity_gbps <= 0.0)
      throw std::invalid_argument("link capacity must be positive");
    adjacency_[link.src].push_back(link.id);
  }
  // First-hop switch of every host: the destination of its only out-link.
  tor_of_host_.assign(host_count_, 0);
  for (std::size_t h = 0; h < host_count_; ++h) {
    if (adjacency_[h].empty()) throw std::invalid_argument("host without an access link");
    tor_of_host_[h] = links_[adjacency_[h].front()].dst;
  }
  // Uplink pairs of every ToR/edge switch: out-links towards non-host
  // vertices, paired with the reverse link.
  for (std::uint32_t v = static_cast<std::uint32_t>(host_count_); v < kinds_.size(); ++v) {
    if (kinds_[v] != VertexKind::kTor) continue;
    for (const LinkId up : adjacency_[v]) {
      const std::uint32_t peer = links_[up].dst;
      if (peer < host_count_) continue;  // downlink to a host
      for (const LinkId down : adjacency_[peer]) {
        if (links_[down].dst == v) {
          uplinks_[v].emplace_back(up, down);
          break;
        }
      }
    }
  }
}

std::uint32_t NetworkGraph::tor_of(std::uint32_t host) const {
  return tor_of_host_.at(host);
}

const std::vector<std::pair<LinkId, LinkId>>& NetworkGraph::rack_uplinks(
    std::uint32_t host) const {
  return uplinks_.at(tor_of(host));
}

std::vector<LinkId> NetworkGraph::route(std::uint32_t src, std::uint32_t dst,
                                        const std::vector<std::uint8_t>& failed) const {
  if (src == dst) return {};
  // BFS from dst over reverse edges conceptually — implemented as BFS from
  // dst over forward adjacency of the reverse link, which the symmetric
  // fabrics guarantee exists. Simpler and equivalent: BFS distances TO dst
  // computed by BFS FROM dst over the reversed graph; since every cable is
  // two directed links, dist_to_dst(v) equals BFS-from-dst over out-links.
  std::vector<std::uint32_t> dist(kinds_.size(), kUnreached);
  std::vector<std::uint32_t> frontier{dst};
  dist[dst] = 0;
  while (!frontier.empty()) {
    std::vector<std::uint32_t> next;
    for (const std::uint32_t v : frontier) {
      for (const LinkId out : adjacency_[v]) {
        if (!failed.empty() && failed[out]) continue;
        const std::uint32_t peer = links_[out].dst;
        if (dist[peer] != kUnreached) continue;
        dist[peer] = dist[v] + 1;
        next.push_back(peer);
      }
    }
    frontier = std::move(next);
  }
  if (dist[src] == kUnreached) return {};

  // Walk downhill in distance, breaking equal-cost ties by hash — every
  // (src, dst) pair spreads over the ECMP fan-out deterministically.
  std::vector<LinkId> path;
  path.reserve(dist[src]);
  std::uint32_t cur = src;
  while (cur != dst) {
    std::vector<LinkId> candidates;
    for (const LinkId out : adjacency_[cur]) {
      if (!failed.empty() && failed[out]) continue;
      const std::uint32_t peer = links_[out].dst;
      if (dist[peer] != kUnreached && dist[peer] + 1 == dist[cur])
        candidates.push_back(out);
    }
    if (candidates.empty()) return {};  // cannot happen on a consistent mask
    const std::uint64_t h =
        mix64((static_cast<std::uint64_t>(src) << 40) ^
              (static_cast<std::uint64_t>(dst) << 20) ^ cur);
    const LinkId chosen = candidates[h % candidates.size()];
    path.push_back(chosen);
    cur = links_[chosen].dst;
  }
  return path;
}

bool NetworkGraph::reachable(std::uint32_t src, std::uint32_t dst,
                             const std::vector<std::uint8_t>& failed) const {
  if (src == dst) return true;
  return !route(src, dst, failed).empty();
}

NetworkGraph make_two_tier_edge(std::size_t host_count,
                                const FlowNetworkOptions& options) {
  if (options.rack_size == 0) throw std::invalid_argument("rack_size must be >= 1");
  const std::size_t racks = (host_count + options.rack_size - 1) / options.rack_size;
  // Vertices: hosts, then one ToR per rack, then one core switch.
  std::vector<VertexKind> switches(racks, VertexKind::kTor);
  switches.push_back(VertexKind::kCore);
  const auto tor_vertex = [&](std::size_t rack) {
    return static_cast<std::uint32_t>(host_count + rack);
  };
  const auto core_vertex = static_cast<std::uint32_t>(host_count + racks);

  std::vector<Link> links;
  links.reserve(2 * (host_count + racks));
  const auto cable = [&](std::uint32_t a, std::uint32_t b, double gbps) {
    links.push_back({.src = a, .dst = b, .capacity_gbps = gbps,
                     .delay_ms = options.link_delay_ms});
    links.push_back({.src = b, .dst = a, .capacity_gbps = gbps,
                     .delay_ms = options.link_delay_ms});
  };
  for (std::size_t h = 0; h < host_count; ++h)
    cable(static_cast<std::uint32_t>(h), tor_vertex(h / options.rack_size),
          options.link_gbps);
  for (std::size_t r = 0; r < racks; ++r)
    cable(tor_vertex(r), core_vertex, options.core_gbps);
  return NetworkGraph(host_count, std::move(switches), std::move(links));
}

std::size_t fat_tree_k_for(std::size_t host_count, std::size_t min_k) noexcept {
  std::size_t k = std::max<std::size_t>(min_k, 4);
  if (k % 2 != 0) ++k;
  while (k * k * k / 4 < host_count) k += 2;
  return k;
}

NetworkGraph make_fat_tree(std::size_t host_count, std::size_t min_k,
                           const FlowNetworkOptions& options) {
  const std::size_t k = fat_tree_k_for(host_count, min_k);
  const std::size_t half = k / 2;
  const std::size_t edges = k * half;  // k pods x k/2 edge switches
  const std::size_t aggs = k * half;
  const std::size_t cores = half * half;

  std::vector<VertexKind> switches;
  switches.insert(switches.end(), edges, VertexKind::kTor);
  switches.insert(switches.end(), aggs, VertexKind::kAgg);
  switches.insert(switches.end(), cores, VertexKind::kCore);
  const auto edge_vertex = [&](std::size_t e) {
    return static_cast<std::uint32_t>(host_count + e);
  };
  const auto agg_vertex = [&](std::size_t a) {
    return static_cast<std::uint32_t>(host_count + edges + a);
  };
  const auto core_vertex = [&](std::size_t c) {
    return static_cast<std::uint32_t>(host_count + edges + aggs + c);
  };

  std::vector<Link> links;
  const auto cable = [&](std::uint32_t a, std::uint32_t b, double gbps) {
    links.push_back({.src = a, .dst = b, .capacity_gbps = gbps,
                     .delay_ms = options.link_delay_ms});
    links.push_back({.src = b, .dst = a, .capacity_gbps = gbps,
                     .delay_ms = options.link_delay_ms});
  };
  // Hosts fill edge switches sequentially (k/2 slots each).
  for (std::size_t h = 0; h < host_count; ++h)
    cable(static_cast<std::uint32_t>(h), edge_vertex(h / half), options.link_gbps);
  // Pod wiring: full bipartite edge x agg within each pod.
  for (std::size_t pod = 0; pod < k; ++pod)
    for (std::size_t e = 0; e < half; ++e)
      for (std::size_t a = 0; a < half; ++a)
        cable(edge_vertex(pod * half + e), agg_vertex(pod * half + a),
              options.link_gbps);
  // Core wiring: agg j of every pod connects to cores [j*half, (j+1)*half).
  for (std::size_t pod = 0; pod < k; ++pod)
    for (std::size_t a = 0; a < half; ++a)
      for (std::size_t c = 0; c < half; ++c)
        cable(agg_vertex(pod * half + a), core_vertex(a * half + c),
              options.core_gbps);
  return NetworkGraph(host_count, std::move(switches), std::move(links));
}

}  // namespace vnfm::edgesim
