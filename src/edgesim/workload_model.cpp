#include "edgesim/workload_model.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/csv.hpp"

namespace vnfm::edgesim {

namespace {

constexpr std::size_t kTraceRateBuckets = 24;

/// SplitMix64 finaliser: decorrelates consecutive window/loop indices into
/// independent-looking draws without touching any stream RNG state.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

double parse_cell(const std::string& cell, const std::string& path,
                  const std::string& column) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(cell, &consumed);
    if (consumed != cell.size()) throw std::invalid_argument(cell);
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error(path + ": malformed " + column + " value '" + cell + "'");
  }
}

std::uint32_t parse_index_cell(const std::string& cell, const std::string& path,
                               const std::string& column) {
  const double value = parse_cell(cell, path, column);
  // Guard the float->uint32 conversion: out-of-range would be UB, not a wrap.
  if (value < 0.0 || value >= 4294967296.0 || value != std::floor(value))
    throw std::invalid_argument(path + ": " + column + " must be an index in [0, 2^32)");
  return static_cast<std::uint32_t>(value);
}

}  // namespace

WorkloadModelFactory poisson_diurnal_factory() {
  return [](const Topology& topology, const SfcCatalog& sfcs,
            const WorkloadOptions& options) -> std::unique_ptr<WorkloadModel> {
    return std::make_unique<PoissonDiurnalModel>(topology, sfcs, options);
  };
}

// ---- TraceReplayModel ------------------------------------------------------

std::vector<TraceRow> TraceReplayModel::load(const std::string& path) {
  const CsvTable table = read_csv(path);
  const std::size_t c_offset = table.column("offset_s");
  const std::size_t c_region = table.column("region");
  const std::size_t c_sfc = table.column("sfc");
  const std::size_t c_rate = table.column("rate_rps");
  const std::size_t c_duration = table.column("duration_s");

  std::vector<TraceRow> trace;
  trace.reserve(table.rows.size());
  for (const auto& cells : table.rows) {
    TraceRow row;
    row.offset_s = parse_cell(cells[c_offset], path, "offset_s");
    row.region = parse_index_cell(cells[c_region], path, "region");
    row.sfc = parse_index_cell(cells[c_sfc], path, "sfc");
    row.rate_rps = parse_cell(cells[c_rate], path, "rate_rps");
    row.duration_s = parse_cell(cells[c_duration], path, "duration_s");
    if (row.offset_s < 0.0)
      throw std::invalid_argument(path + ": negative trace offset");
    if (row.rate_rps <= 0.0 || row.duration_s <= 0.0)
      throw std::invalid_argument(path + ": trace rates and durations must be positive");
    if (!trace.empty() && row.offset_s < trace.back().offset_s)
      throw std::invalid_argument(path + ": trace offsets must be non-decreasing");
    trace.push_back(row);
  }
  if (trace.empty()) throw std::invalid_argument(path + ": trace has no rows");
  return trace;
}

WorkloadModelFactory TraceReplayModel::factory(const std::string& path) {
  // Eager load: a missing/malformed trace fails at scenario-build time, and
  // every environment (actor threads included) shares one immutable copy.
  auto trace = std::make_shared<const std::vector<TraceRow>>(load(path));
  return [trace](const Topology& topology, const SfcCatalog& sfcs,
                 const WorkloadOptions& options) -> std::unique_ptr<WorkloadModel> {
    return std::make_unique<TraceReplayModel>(topology, sfcs, options, trace);
  };
}

TraceReplayModel::TraceReplayModel(const Topology& topology, const SfcCatalog& sfcs,
                                   WorkloadOptions options,
                                   std::shared_ptr<const std::vector<TraceRow>> trace)
    : topology_(topology),
      sfcs_(sfcs),
      options_(options),
      trace_(std::move(trace)),
      rng_(options.seed) {
  if (!trace_ || trace_->empty()) throw std::invalid_argument("empty trace");
  const double last_offset = trace_->back().offset_s;
  const double mean_gap =
      trace_->size() > 1 ? last_offset / static_cast<double>(trace_->size() - 1) : 1.0;
  span_s_ = std::max(last_offset + std::max(mean_gap, 1e-9), 1e-9);

  // Empirical rate surface: arrivals per region bucketed over the span.
  const std::size_t n = topology_.node_count();
  const double bucket_width = span_s_ / kTraceRateBuckets;
  bucket_rate_.assign(n, std::vector<double>(kTraceRateBuckets, 0.0));
  for (const TraceRow& row : *trace_) {
    const std::size_t region = row.region % n;
    const auto bucket = std::min<std::size_t>(
        kTraceRateBuckets - 1, static_cast<std::size_t>(row.offset_s / bucket_width));
    bucket_rate_[region][bucket] += 1.0 / bucket_width;
  }
  for (std::size_t b = 0; b < kTraceRateBuckets; ++b) {
    double total = 0.0;
    for (std::size_t r = 0; r < n; ++r) total += bucket_rate_[r][b];
    peak_total_rate_ = std::max(peak_total_rate_, total);
  }
}

std::size_t TraceReplayModel::rate_bucket(SimTime t) const {
  const double offset = std::fmod(std::max(t, 0.0), span_s_);
  return std::min<std::size_t>(
      kTraceRateBuckets - 1,
      static_cast<std::size_t>(offset / (span_s_ / kTraceRateBuckets)));
}

double TraceReplayModel::region_rate(NodeId region, SimTime t) const {
  return bucket_rate_.at(index(region)).at(rate_bucket(t));
}

double TraceReplayModel::total_rate(SimTime t) const {
  const std::size_t bucket = rate_bucket(t);
  double total = 0.0;
  for (const auto& region : bucket_rate_) total += region[bucket];
  return total;
}

double TraceReplayModel::peak_total_rate() const { return peak_total_rate_; }

Request TraceReplayModel::next(SimTime now) {
  for (;;) {
    if (cursor_ >= trace_->size()) {
      ++loop_;
      cursor_ = 0;
      // Jittered re-seeding: every replay loop draws from a fresh,
      // loop-derived RNG so repeats are trace-shaped but not verbatim.
      rng_ = Rng(options_.seed ^ mix64(loop_));
    }
    const TraceRow& row = (*trace_)[cursor_++];
    const SimTime t = static_cast<double>(loop_) * span_s_ + row.offset_s;
    // Ties are kept: load() accepts non-decreasing offsets, so rows sharing
    // an offset are emitted back to back (t == now); the advancing cursor
    // guarantees progress. Only genuinely past rows are skipped.
    if (t < now) continue;

    Request request;
    request.id = RequestId{next_request_id_++};
    request.arrival_time = t;
    request.source_region =
        NodeId{static_cast<std::uint32_t>(row.region % topology_.node_count())};
    request.sfc = SfcId{static_cast<std::uint32_t>(row.sfc % sfcs_.size())};
    double rate = row.rate_rps;
    if (loop_ > 0 && options_.rate_jitter > 0.0)
      rate *= 1.0 + options_.rate_jitter * (2.0 * rng_.uniform() - 1.0);
    request.rate_rps = std::max(0.1, rate);
    request.duration_s = row.duration_s;
    return request;
  }
}

// ---- FlashCrowdOverlay -----------------------------------------------------

FlashCrowdOverlay::FlashCrowdOverlay(const Topology& topology, const SfcCatalog& sfcs,
                                     WorkloadOptions options,
                                     std::unique_ptr<WorkloadModel> inner,
                                     FlashCrowdOptions burst)
    : PoissonArrivalModel(topology, sfcs, options),
      inner_(std::move(inner)),
      burst_(burst) {
  if (!inner_) throw std::invalid_argument("flash-crowd overlay needs an inner model");
  if (burst_.magnitude <= 0.0)
    throw std::invalid_argument("flash-crowd magnitude must be positive");
  if (burst_.period_s <= 0.0 || burst_.duration_s <= 0.0 ||
      burst_.duration_s > burst_.period_s)
    throw std::invalid_argument("flash-crowd needs 0 < duration_s <= period_s");
  if (burst_.spread == 0) throw std::invalid_argument("flash-crowd spread must be >= 1");

  // Correlated bursts: each epicentre boosts itself plus its nearest
  // neighbours by propagation latency (geographic correlation).
  const std::size_t n = topology.node_count();
  const std::size_t spread = std::min(burst_.spread, n);
  boosted_.resize(n);
  for (std::size_t e = 0; e < n; ++e) {
    std::vector<std::uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0U);
    const NodeId centre{static_cast<std::uint32_t>(e)};
    std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      return topology.latency_ms(centre, NodeId{a}) <
             topology.latency_ms(centre, NodeId{b});
    });
    boosted_[e].assign(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(spread));
  }
}

FlashCrowdOverlay::FlashCrowdOverlay(const FlashCrowdOverlay& other)
    : PoissonArrivalModel(other),
      inner_(other.inner_->clone()),
      burst_(other.burst_),
      boosted_(other.boosted_) {}

NodeId FlashCrowdOverlay::epicentre(std::uint64_t window) const {
  return NodeId{static_cast<std::uint32_t>(mix64(options().seed ^ window) %
                                           topology().node_count())};
}

bool FlashCrowdOverlay::in_burst(NodeId region, SimTime t) const {
  const double since_start = t - burst_.start_s;
  if (since_start < 0.0) return false;
  const auto window = static_cast<std::uint64_t>(since_start / burst_.period_s);
  const double into_window = since_start - static_cast<double>(window) * burst_.period_s;
  if (into_window >= burst_.duration_s) return false;
  const auto& boosted = boosted_[index(epicentre(window))];
  return std::find(boosted.begin(), boosted.end(), index(region)) != boosted.end();
}

double FlashCrowdOverlay::region_rate(NodeId region, SimTime t) const {
  const double base = inner_->region_rate(region, t);
  return in_burst(region, t) ? base * burst_.magnitude : base;
}

double FlashCrowdOverlay::peak_total_rate() const {
  return inner_->peak_total_rate() * std::max(1.0, burst_.magnitude);
}

// ---- RateScaleOverlay ------------------------------------------------------

RateScaleOverlay::RateScaleOverlay(const Topology& topology, const SfcCatalog& sfcs,
                                   WorkloadOptions options,
                                   std::unique_ptr<WorkloadModel> inner, double factor)
    : PoissonArrivalModel(topology, sfcs, options),
      inner_(std::move(inner)),
      factor_(factor) {
  if (!inner_) throw std::invalid_argument("rate-scale overlay needs an inner model");
  if (factor_ <= 0.0) throw std::invalid_argument("rate-scale factor must be positive");
}

RateScaleOverlay::RateScaleOverlay(const RateScaleOverlay& other)
    : PoissonArrivalModel(other), inner_(other.inner_->clone()), factor_(other.factor_) {}

double RateScaleOverlay::region_rate(NodeId region, SimTime t) const {
  return factor_ * inner_->region_rate(region, t);
}

double RateScaleOverlay::peak_total_rate() const {
  return factor_ * inner_->peak_total_rate();
}

// ---- HotspotOverlay --------------------------------------------------------

HotspotOverlay::HotspotOverlay(const Topology& topology, const SfcCatalog& sfcs,
                               WorkloadOptions options,
                               std::unique_ptr<WorkloadModel> inner,
                               HotspotOptions hotspot)
    : PoissonArrivalModel(topology, sfcs, options),
      inner_(std::move(inner)),
      hotspot_(hotspot),
      region_{static_cast<std::uint32_t>(hotspot.region % topology.node_count())} {
  if (!inner_) throw std::invalid_argument("incast overlay needs an inner model");
  if (hotspot_.magnitude <= 0.0)
    throw std::invalid_argument("incast magnitude must be positive");
  if (hotspot_.start_s < 0.0 || hotspot_.duration_s <= 0.0)
    throw std::invalid_argument("incast needs start_s >= 0 and duration_s > 0");
}

HotspotOverlay::HotspotOverlay(const HotspotOverlay& other)
    : PoissonArrivalModel(other),
      inner_(other.inner_->clone()),
      hotspot_(other.hotspot_),
      region_(other.region_) {}

double HotspotOverlay::region_rate(NodeId region, SimTime t) const {
  const double base = inner_->region_rate(region, t);
  if (region != region_) return base;
  if (t < hotspot_.start_s || t >= hotspot_.start_s + hotspot_.duration_s) return base;
  return base * hotspot_.magnitude;
}

double HotspotOverlay::peak_total_rate() const {
  return inner_->peak_total_rate() * std::max(1.0, hotspot_.magnitude);
}

// ---- TraceRecordingModel ---------------------------------------------------

TraceRecordingModel::TraceRecordingModel(std::unique_ptr<WorkloadModel> inner,
                                         const std::string& path)
    : inner_(std::move(inner)), out_(std::make_shared<std::ofstream>(path)) {
  if (!inner_) throw std::invalid_argument("trace recording needs an inner model");
  if (!out_->is_open())
    throw std::runtime_error("cannot open trace dump file: " + path);
  // Round-trippable doubles: 17 significant digits reproduce the exact bits
  // on parse, so replayed arrival instants match the recorded stream.
  out_->precision(17);
  *out_ << "offset_s,region,sfc,rate_rps,duration_s\n";
  out_->flush();
}

Request TraceRecordingModel::next(SimTime now) {
  const Request request = inner_->next(now);
  // Offsets are absolute arrival times, so a TraceReplayModel over the dump
  // reproduces the arrival instants of this stream exactly (loop 0).
  (*out_) << request.arrival_time << ',' << index(request.source_region) << ','
          << index(request.sfc) << ',' << request.rate_rps << ','
          << request.duration_s << '\n';
  out_->flush();
  ++rows_;
  return request;
}

// ---- Factories -------------------------------------------------------------

WorkloadModelFactory flash_crowd_factory(WorkloadModelFactory inner,
                                         FlashCrowdOptions burst) {
  return [inner, burst](const Topology& topology, const SfcCatalog& sfcs,
                        const WorkloadOptions& options) -> std::unique_ptr<WorkloadModel> {
    std::unique_ptr<WorkloadModel> inner_model;
    if (inner) {
      inner_model = inner(topology, sfcs, options);
    } else {
      inner_model = std::make_unique<PoissonDiurnalModel>(topology, sfcs, options);
    }
    return std::make_unique<FlashCrowdOverlay>(topology, sfcs, options,
                                               std::move(inner_model), burst);
  };
}

WorkloadModelFactory rate_scale_factory(WorkloadModelFactory inner, double factor) {
  return [inner, factor](const Topology& topology, const SfcCatalog& sfcs,
                         const WorkloadOptions& options) -> std::unique_ptr<WorkloadModel> {
    std::unique_ptr<WorkloadModel> inner_model;
    if (inner) {
      inner_model = inner(topology, sfcs, options);
    } else {
      inner_model = std::make_unique<PoissonDiurnalModel>(topology, sfcs, options);
    }
    return std::make_unique<RateScaleOverlay>(topology, sfcs, options,
                                              std::move(inner_model), factor);
  };
}

WorkloadModelFactory hotspot_factory(WorkloadModelFactory inner, HotspotOptions hotspot) {
  return [inner, hotspot](const Topology& topology, const SfcCatalog& sfcs,
                          const WorkloadOptions& options) -> std::unique_ptr<WorkloadModel> {
    std::unique_ptr<WorkloadModel> inner_model;
    if (inner) {
      inner_model = inner(topology, sfcs, options);
    } else {
      inner_model = std::make_unique<PoissonDiurnalModel>(topology, sfcs, options);
    }
    return std::make_unique<HotspotOverlay>(topology, sfcs, options,
                                            std::move(inner_model), hotspot);
  };
}

}  // namespace vnfm::edgesim
