// VNF type and service-function-chain catalogs.
//
// The concrete numbers follow the conventions of the NFV placement
// literature: per-instance CPU/memory footprints, a processing capacity in
// requests/second, a base per-packet processing delay, a one-off deployment
// cost (image transfer + boot) and a running cost per instance-hour.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "edgesim/types.hpp"

namespace vnfm::edgesim {

/// Static description of one virtual network function type.
struct VnfType {
  VnfTypeId id{};
  std::string name;
  double cpu_units = 1.0;        ///< vCPUs per instance
  double mem_gb = 1.0;           ///< memory per instance
  double capacity_rps = 100.0;   ///< request rate one instance can process
  double proc_delay_ms = 0.5;    ///< base processing delay at zero load
  double deploy_cost = 1.0;      ///< $ per deployment (image pull + boot)
  double run_cost_per_hour = 0.2;  ///< $ per instance-hour
};

/// Immutable set of VNF types indexed by VnfTypeId.
class VnfCatalog {
 public:
  explicit VnfCatalog(std::vector<VnfType> types);

  /// The six classic middlebox types used throughout the NFV literature:
  /// firewall, NAT, IDS, load balancer, WAN optimizer, VPN gateway.
  static VnfCatalog standard();

  [[nodiscard]] const VnfType& type(VnfTypeId id) const;
  [[nodiscard]] std::size_t size() const noexcept { return types_.size(); }
  [[nodiscard]] std::span<const VnfType> all() const noexcept { return types_; }
  /// Lookup by name; throws std::out_of_range if absent.
  [[nodiscard]] const VnfType& by_name(const std::string& name) const;

 private:
  std::vector<VnfType> types_;
};

/// An ordered chain of VNF types plus the QoS contract of requests using it.
struct SfcTemplate {
  SfcId id{};
  std::string name;
  std::vector<VnfTypeId> chain;      ///< traversal order
  double sla_latency_ms = 100.0;     ///< end-to-end latency bound
  double mean_rate_rps = 5.0;        ///< mean per-request traffic rate
  double mean_duration_s = 300.0;    ///< mean flow lifetime
  double revenue = 2.0;              ///< $ earned per admitted chain
};

/// Immutable set of SFC templates indexed by SfcId.
class SfcCatalog {
 public:
  explicit SfcCatalog(std::vector<SfcTemplate> templates);

  /// Five chains spanning the latency/size spectrum (web, VoIP, video,
  /// gaming, IoT), referencing VnfCatalog::standard() type names.
  static SfcCatalog standard(const VnfCatalog& vnfs);

  [[nodiscard]] const SfcTemplate& sfc(SfcId id) const;
  [[nodiscard]] std::size_t size() const noexcept { return templates_.size(); }
  [[nodiscard]] std::span<const SfcTemplate> all() const noexcept { return templates_; }
  [[nodiscard]] const SfcTemplate& by_name(const std::string& name) const;
  /// Longest chain length across templates (sizes DQN state layout).
  [[nodiscard]] std::size_t max_chain_length() const noexcept;

 private:
  std::vector<SfcTemplate> templates_;
};

}  // namespace vnfm::edgesim
