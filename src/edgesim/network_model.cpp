#include "edgesim/network_model.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <stdexcept>
#include <string_view>

namespace vnfm::edgesim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Finite probe latency for an unroutable pair — large enough that masked
/// features saturate, small enough to keep rewards finite if it ever leaks.
constexpr double kUnroutableMs = 1.0e4;
/// Saturation threshold of the water-filling loop (absolute, in Gbps).
constexpr double kFillEps = 1.0e-12;

}  // namespace

FlowNetworkModel::FlowNetworkModel(const Topology& topology, NetworkGraph graph,
                                   FlowNetworkOptions options)
    : topology_(topology), graph_(std::move(graph)), options_(options) {
  if (graph_.host_count() < topology_.node_count())
    throw std::invalid_argument("network graph does not cover the topology");
  if (options_.payload_mbit <= 0.0)
    throw std::invalid_argument("payload_mbit must be positive");
  failed_.assign(graph_.link_count(), 0);
  link_flows_.assign(graph_.link_count(), {});
}

const std::vector<LinkId>& FlowNetworkModel::cached_route(std::uint32_t src,
                                                          std::uint32_t dst) const {
  const auto key = std::make_pair(src, dst);
  auto it = route_cache_.find(key);
  if (it == route_cache_.end())
    it = route_cache_.emplace(key, graph_.route(src, dst, failed_)).first;
  return it->second;
}

double FlowNetworkModel::propagation_ms(const std::vector<LinkId>& links) const {
  double ms = 0.0;
  for (const LinkId id : links) ms += graph_.link(id).delay_ms;
  return ms;
}

double FlowNetworkModel::probe_transfer_ms(const std::vector<LinkId>& links) const {
  // Estimate of the fair share a NEW flow over `links` would receive: the
  // tightest link's capacity split among its current flows plus this one.
  double share = kInf;
  for (const LinkId id : links) {
    const double flows_here = static_cast<double>(link_flows_[id].size()) + 1.0;
    share = std::min(share, graph_.link(id).capacity_gbps / flows_here);
  }
  return options_.payload_mbit / share;  // Mbit / Gbps == ms
}

double FlowNetworkModel::hop_latency_ms(NodeId a, NodeId b) const {
  if (a == b) return topology_.latency_ms(a, b);  // intra-node hop
  const auto& links = cached_route(NetworkGraph::host_vertex(a),
                                   NetworkGraph::host_vertex(b));
  if (links.empty()) return kUnroutableMs;
  return propagation_ms(links) + probe_transfer_ms(links);
}

double FlowNetworkModel::user_latency_ms(NodeId region, NodeId target) const {
  // The topology's last-mile constant, recovered without duplicating it.
  const double last_mile = topology_.user_latency_ms(region, region);
  if (region == target) return last_mile;
  const auto& links = cached_route(NetworkGraph::host_vertex(region),
                                   NetworkGraph::host_vertex(target));
  if (links.empty()) return last_mile + kUnroutableMs;
  return last_mile + propagation_ms(links) + probe_transfer_ms(links);
}

double FlowNetworkModel::add_flow(FlowKey key, NodeId a, NodeId b, double) {
  return add_vertex_flow(key, NetworkGraph::host_vertex(a),
                         NetworkGraph::host_vertex(b), kInf, /*user_hop=*/false);
}

double FlowNetworkModel::add_access_flow(FlowKey key, NodeId region, NodeId first,
                                         double) {
  return add_vertex_flow(key, NetworkGraph::host_vertex(region),
                         NetworkGraph::host_vertex(first), kInf, /*user_hop=*/true);
}

double FlowNetworkModel::add_return_flow(FlowKey key, NodeId last, NodeId region,
                                         double) {
  return add_vertex_flow(key, NetworkGraph::host_vertex(last),
                         NetworkGraph::host_vertex(region), kInf, /*user_hop=*/true);
}

double FlowNetworkModel::add_flow_between(FlowKey key, std::uint32_t src,
                                          std::uint32_t dst, double demand_gbps) {
  return add_vertex_flow(key, src, dst, demand_gbps, /*user_hop=*/false);
}

double FlowNetworkModel::add_vertex_flow(FlowKey key, std::uint32_t src,
                                         std::uint32_t dst, double demand_gbps,
                                         bool user_hop) {
  if (flows_.contains(key)) throw std::invalid_argument("duplicate flow key");
  Flow flow{.src = src, .dst = dst, .demand_gbps = demand_gbps,
            .alloc_gbps = 0.0, .user_hop = user_hop};
  if (src != dst) flow.links = cached_route(src, dst);
  const std::vector<LinkId> seeds = flow.links;
  attach(key, std::move(flow));
  reshare_component(seeds);
  return latency_of(flows_.at(key));
}

void FlowNetworkModel::remove_flow(FlowKey key) {
  const auto it = flows_.find(key);
  if (it == flows_.end()) return;  // uniform teardown across models
  const std::vector<LinkId> seeds = it->second.links;
  detach_links(it->second, key);
  flows_.erase(it);
  reshare_component(seeds);
}

void FlowNetworkModel::attach(FlowKey key, Flow flow) {
  for (const LinkId id : flow.links) {
    auto& keys = link_flows_[id];
    keys.insert(std::lower_bound(keys.begin(), keys.end(), key), key);
  }
  flows_.emplace(key, std::move(flow));
}

void FlowNetworkModel::detach_links(const Flow& flow, FlowKey key) {
  for (const LinkId id : flow.links) {
    auto& keys = link_flows_[id];
    keys.erase(std::lower_bound(keys.begin(), keys.end(), key));
  }
}

void FlowNetworkModel::reshare_component(const std::vector<LinkId>& seed_links) {
  if (seed_links.empty()) return;
  // Each seed expands to its full connected component of the flow<->link
  // bipartite graph; components are water-filled independently so a flow's
  // allocation is a pure function of its component's content — incremental
  // recomputes and full rebuilds produce bit-identical numbers.
  std::vector<std::uint8_t> seen_link(graph_.link_count(), 0);
  std::set<FlowKey> seen_flow;
  for (const LinkId seed : seed_links) {
    if (seen_link[seed]) continue;
    std::vector<LinkId> comp_links;
    std::vector<FlowKey> comp_flows;
    std::vector<LinkId> frontier{seed};
    seen_link[seed] = 1;
    while (!frontier.empty()) {
      const LinkId link = frontier.back();
      frontier.pop_back();
      comp_links.push_back(link);
      for (const FlowKey key : link_flows_[link]) {
        if (!seen_flow.insert(key).second) continue;
        comp_flows.push_back(key);
        for (const LinkId other : flows_.at(key).links) {
          if (seen_link[other]) continue;
          seen_link[other] = 1;
          frontier.push_back(other);
        }
      }
    }
    std::sort(comp_links.begin(), comp_links.end());
    std::sort(comp_flows.begin(), comp_flows.end());
    water_fill(comp_links, comp_flows);
  }
}

void FlowNetworkModel::water_fill(const std::vector<LinkId>& comp_links,
                                  const std::vector<FlowKey>& comp_flows) {
  // Progressive filling from zero: raise every unfrozen flow's rate by the
  // largest uniform increment any link or demand allows, freeze the flows
  // that hit a saturated link or their demand, repeat. Every round freezes
  // at least one flow, so the loop terminates in <= |comp_flows| rounds.
  const std::size_t n = comp_flows.size();
  std::vector<Flow*> flows(n);
  std::vector<double> alloc(n, 0.0);
  std::vector<std::uint8_t> frozen(n, 0);
  for (std::size_t i = 0; i < n; ++i) flows[i] = &flows_.at(comp_flows[i]);

  // Component-local link state: remaining capacity + unfrozen flow count.
  // comp_links is sorted, so binary search maps LinkId -> local index.
  const auto local = [&](LinkId id) {
    return static_cast<std::size_t>(
        std::lower_bound(comp_links.begin(), comp_links.end(), id) -
        comp_links.begin());
  };
  std::vector<double> remaining(comp_links.size());
  std::vector<std::size_t> active(comp_links.size(), 0);
  for (std::size_t l = 0; l < comp_links.size(); ++l)
    remaining[l] = graph_.link(comp_links[l]).capacity_gbps;
  for (std::size_t i = 0; i < n; ++i)
    for (const LinkId id : flows[i]->links) ++active[local(id)];

  std::size_t unfrozen = n;
  while (unfrozen > 0) {
    // Largest uniform increment: min over links of remaining/active and over
    // flows of demand headroom.
    double step = kInf;
    for (std::size_t l = 0; l < comp_links.size(); ++l)
      if (active[l] > 0)
        step = std::min(step, remaining[l] / static_cast<double>(active[l]));
    for (std::size_t i = 0; i < n; ++i)
      if (!frozen[i]) step = std::min(step, flows[i]->demand_gbps - alloc[i]);
    for (std::size_t l = 0; l < comp_links.size(); ++l)
      if (active[l] > 0) remaining[l] -= step * static_cast<double>(active[l]);
    for (std::size_t i = 0; i < n; ++i)
      if (!frozen[i]) alloc[i] += step;
    // Freeze flows at demand or crossing a saturated link.
    for (std::size_t i = 0; i < n; ++i) {
      if (frozen[i]) continue;
      bool freeze = alloc[i] >= flows[i]->demand_gbps - kFillEps;
      for (const LinkId id : flows[i]->links)
        if (remaining[local(id)] <= kFillEps) freeze = true;
      if (!freeze) continue;
      frozen[i] = 1;
      --unfrozen;
      for (const LinkId id : flows[i]->links) --active[local(id)];
    }
  }
  for (std::size_t i = 0; i < n; ++i) flows[i]->alloc_gbps = alloc[i];
}

double FlowNetworkModel::latency_of(const Flow& flow) const {
  const double base =
      flow.user_hop
          ? topology_.user_latency_ms(static_cast<NodeId>(flow.src),
                                      static_cast<NodeId>(flow.src))  // last mile
          : 0.0;
  if (flow.links.empty()) {
    if (flow.src == flow.dst)
      return flow.user_hop ? base
                           : topology_.latency_ms(static_cast<NodeId>(flow.src),
                                                  static_cast<NodeId>(flow.dst));
    return base + kUnroutableMs;  // registered but currently unroutable
  }
  return base + propagation_ms(flow.links) +
         options_.payload_mbit / flow.alloc_gbps;
}

bool FlowNetworkModel::can_route(NodeId a, NodeId b) const {
  if (a == b) return true;
  return !cached_route(NetworkGraph::host_vertex(a), NetworkGraph::host_vertex(b))
              .empty();
}

std::vector<FlowKey> FlowNetworkModel::fail_link_at(NodeId anchor) {
  const auto& uplinks = graph_.rack_uplinks(NetworkGraph::host_vertex(anchor));
  const auto next = std::find_if(uplinks.begin(), uplinks.end(), [&](const auto& pair) {
    return !failed_[pair.first];
  });
  if (next == uplinks.end()) return {};  // rack already fully cut
  failed_[next->first] = 1;
  failed_[next->second] = 1;
  route_cache_.clear();

  // Flows crossing either direction of the failed cable, in key order.
  std::vector<FlowKey> crossing = link_flows_[next->first];
  crossing.insert(crossing.end(), link_flows_[next->second].begin(),
                  link_flows_[next->second].end());
  std::sort(crossing.begin(), crossing.end());
  crossing.erase(std::unique(crossing.begin(), crossing.end()), crossing.end());

  std::vector<LinkId> seeds{next->first, next->second};
  std::vector<FlowKey> doomed;
  for (const FlowKey key : crossing) {
    Flow& flow = flows_.at(key);
    seeds.insert(seeds.end(), flow.links.begin(), flow.links.end());
    detach_links(flow, key);
    flow.links = cached_route(flow.src, flow.dst);
    if (flow.links.empty()) {
      // No remaining path: the chain dies fail-stop; the caller tears it
      // down, which removes this (now routeless) flow.
      flow.alloc_gbps = 0.0;
      doomed.push_back(key);
    } else {
      for (const LinkId id : flow.links) {
        auto& keys = link_flows_[id];
        keys.insert(std::lower_bound(keys.begin(), keys.end(), key), key);
      }
      seeds.insert(seeds.end(), flow.links.begin(), flow.links.end());
    }
  }
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
  reshare_component(seeds);
  return doomed;
}

void FlowNetworkModel::recover_link_at(NodeId anchor) {
  const auto& uplinks = graph_.rack_uplinks(NetworkGraph::host_vertex(anchor));
  bool changed = false;
  for (const auto& [up, down] : uplinks) {
    if (!failed_[up]) continue;
    failed_[up] = 0;
    failed_[down] = 0;
    changed = true;
  }
  // Existing flows keep their routes (no traffic moves on recovery); new and
  // rerouted flows see the recovered links via the cleared route cache.
  if (changed) route_cache_.clear();
}

std::string FlowNetworkModel::name() const {
  return "flow-network";
}

const FlowNetworkModel::Flow& FlowNetworkModel::flow(FlowKey key) const {
  return flows_.at(key);
}

double FlowNetworkModel::flow_latency_ms(FlowKey key) const {
  return latency_of(flows_.at(key));
}

double FlowNetworkModel::link_utilization_gbps(LinkId link) const {
  double total = 0.0;
  for (const FlowKey key : link_flows_.at(link)) total += flows_.at(key).alloc_gbps;
  return total;
}

std::size_t FlowNetworkModel::failed_link_count() const {
  return static_cast<std::size_t>(
      std::count(failed_.begin(), failed_.end(), std::uint8_t{1}));
}

std::unique_ptr<NetworkModel> make_network_model(const Topology& topology,
                                                 const NetworkOptions& options) {
  const std::string& name = options.topology;
  if (name.empty() || name == "constant")
    return std::make_unique<ConstantLatencyModel>(topology);
  if (name == "two-tier-edge")
    return std::make_unique<FlowNetworkModel>(
        topology, make_two_tier_edge(topology.node_count(), options.flow),
        options.flow);
  if (constexpr std::string_view prefix = "fat-tree-k"; name.starts_with(prefix)) {
    std::size_t min_k = 0;
    try {
      min_k = std::stoul(name.substr(prefix.size()));
    } catch (const std::exception&) {
      throw std::invalid_argument("bad fat-tree spec: " + name);
    }
    return std::make_unique<FlowNetworkModel>(
        topology, make_fat_tree(topology.node_count(), min_k, options.flow),
        options.flow);
  }
  throw std::invalid_argument("unknown network topology: " + name);
}

NetworkModelFactory network_model_factory(NetworkOptions options) {
  return [options = std::move(options)](const Topology& topology) {
    return make_network_model(topology, options);
  };
}

}  // namespace vnfm::edgesim
