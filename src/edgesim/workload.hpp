// Request workload: Poisson arrivals per region modulated by phase-shifted
// diurnal sinusoids (regions peak at their local daytime), heterogeneous
// chain mixes, exponential flow durations and rate jitter.
//
// This substitutes for the unavailable operator traces: it reproduces the
// two properties the DRL manager must exploit — geographic arrival skew and
// temporal non-stationarity ("follow the sun").
#pragma once

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "edgesim/topology.hpp"
#include "edgesim/vnf.hpp"

namespace vnfm::edgesim {

/// One chain request: who asks, for what, how much, and for how long.
struct Request {
  RequestId id{};
  SimTime arrival_time = 0.0;
  NodeId source_region{};
  SfcId sfc{};
  double rate_rps = 1.0;     ///< traffic rate consumed on every chain VNF
  double duration_s = 60.0;  ///< flow lifetime after admission
};

struct WorkloadOptions {
  double global_arrival_rate = 1.0;  ///< mean requests/second across regions
  double diurnal_amplitude = 0.6;    ///< 0 = flat, 1 = full swing
  bool diurnal_enabled = true;
  double rate_jitter = 0.5;          ///< ± relative jitter on SFC mean rate
  double peak_local_hour = 14.0;     ///< local time of day of peak demand
  std::uint64_t seed = 1234;
};

/// Generates a time-ordered request stream via Poisson thinning against the
/// time-varying regional rate surface.
class WorkloadGenerator {
 public:
  WorkloadGenerator(const Topology& topology, const SfcCatalog& sfcs,
                    WorkloadOptions options);

  /// Next request strictly after `now`; never exhausts.
  [[nodiscard]] Request next(SimTime now);

  /// Instantaneous arrival rate (req/s) of `region` at absolute time t.
  [[nodiscard]] double region_rate(NodeId region, SimTime t) const noexcept;

  /// Sum of regional rates at time t.
  [[nodiscard]] double total_rate(SimTime t) const noexcept;

  /// Upper bound of total_rate over all t (thinning envelope).
  [[nodiscard]] double peak_total_rate() const noexcept;

  [[nodiscard]] const WorkloadOptions& options() const noexcept { return options_; }
  [[nodiscard]] std::uint64_t generated_count() const noexcept { return next_request_id_; }

 private:
  const Topology& topology_;
  const SfcCatalog& sfcs_;
  WorkloadOptions options_;
  Rng rng_;
  std::uint64_t next_request_id_ = 0;
  std::vector<double> region_share_;  ///< normalised traffic weights
  std::vector<double> sfc_weights_;   ///< request-mix weights
};

}  // namespace vnfm::edgesim
