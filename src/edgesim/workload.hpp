// Request workloads: the polymorphic WorkloadModel interface and the default
// Poisson-diurnal process (Poisson arrivals per region modulated by
// phase-shifted diurnal sinusoids — regions peak at their local daytime —
// with heterogeneous chain mixes, exponential flow durations and rate
// jitter).
//
// The Poisson-diurnal model substitutes for the unavailable operator traces:
// it reproduces the two properties the DRL manager must exploit — geographic
// arrival skew and temporal non-stationarity ("follow the sun"). Further
// models (trace replay, burst/scale overlays) live in workload_model.hpp and
// compose through the same interface.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "edgesim/topology.hpp"
#include "edgesim/vnf.hpp"

namespace vnfm::edgesim {

/// One chain request: who asks, for what, how much, and for how long.
struct Request {
  RequestId id{};
  SimTime arrival_time = 0.0;
  NodeId source_region{};
  SfcId sfc{};
  double rate_rps = 1.0;     ///< traffic rate consumed on every chain VNF
  double duration_s = 60.0;  ///< flow lifetime after admission
};

struct WorkloadOptions {
  double global_arrival_rate = 1.0;  ///< mean requests/second across regions
  double diurnal_amplitude = 0.6;    ///< 0 = flat, 1 = full swing
  bool diurnal_enabled = true;
  double rate_jitter = 0.5;          ///< ± relative jitter on SFC mean rate
  double peak_local_hour = 14.0;     ///< local time of day of peak demand
  std::uint64_t seed = 1234;
};

/// Polymorphic arrival process. Implementations produce a time-ordered,
/// never-exhausting request stream plus the instantaneous rate surface the
/// environment featurises (and overlays modulate).
class WorkloadModel {
 public:
  virtual ~WorkloadModel() = default;

  /// Next request at or after `now`; never exhausts. Rate-driven models
  /// return strictly increasing arrival times; trace-driven models may
  /// return ties (rows sharing a recorded offset) but always make progress.
  [[nodiscard]] virtual Request next(SimTime now) = 0;

  /// Instantaneous arrival rate (req/s) of `region` at absolute time t.
  [[nodiscard]] virtual double region_rate(NodeId region, SimTime t) const = 0;

  /// Sum of regional rates at time t.
  [[nodiscard]] virtual double total_rate(SimTime t) const = 0;

  /// Upper bound of total_rate over all t (thinning envelope).
  [[nodiscard]] virtual double peak_total_rate() const = 0;

  /// Deep copy preserving the full stream state (RNG, cursors, id counter).
  [[nodiscard]] virtual std::unique_ptr<WorkloadModel> clone() const = 0;

  /// Human-readable model identity; overlays report "overlay(inner)".
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual const WorkloadOptions& options() const = 0;
  [[nodiscard]] virtual std::uint64_t generated_count() const = 0;
};

/// Shared base for models that realise a time-varying rate surface as a
/// Poisson stream: next() thins candidate arrivals at the envelope rate
/// (peak_total_rate) against total_rate, samples the region by its share of
/// the instantaneous rate, and draws request attributes (SFC mix, rate
/// jitter, exponential duration). The RNG call sequence is bit-identical to
/// the pre-refactor WorkloadGenerator, so any subclass whose rate surface
/// matches the legacy formulas reproduces the legacy stream exactly.
class PoissonArrivalModel : public WorkloadModel {
 public:
  PoissonArrivalModel(const Topology& topology, const SfcCatalog& sfcs,
                      WorkloadOptions options);

  [[nodiscard]] Request next(SimTime now) final;
  [[nodiscard]] double total_rate(SimTime t) const override;
  [[nodiscard]] const WorkloadOptions& options() const noexcept final { return options_; }
  [[nodiscard]] std::uint64_t generated_count() const noexcept final {
    return next_request_id_;
  }

 protected:
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const SfcCatalog& sfcs() const noexcept { return sfcs_; }

 private:
  const Topology& topology_;
  const SfcCatalog& sfcs_;
  WorkloadOptions options_;
  Rng rng_;
  std::uint64_t next_request_id_ = 0;
  std::vector<double> sfc_weights_;  ///< request-mix weights
};

/// The default workload: legacy Poisson-diurnal request streams, bit-identical
/// to the pre-refactor WorkloadGenerator for equal options.
///
/// Rate queries are cached so they stay cheap at 10k nodes: nodes share the
/// timezone offsets of their anchor metros, so the diurnal factor is computed
/// once per (distinct tz, query time) instead of per node, and total_rate(t)
/// is memoised per time instant (the environment featurises the same t once
/// per placement decision of a chain). Both caches reproduce the uncached
/// arithmetic bit-for-bit — same expressions, same node summation order.
class PoissonDiurnalModel final : public PoissonArrivalModel {
 public:
  PoissonDiurnalModel(const Topology& topology, const SfcCatalog& sfcs,
                      WorkloadOptions options);

  [[nodiscard]] double region_rate(NodeId region, SimTime t) const override;
  [[nodiscard]] double total_rate(SimTime t) const override;
  [[nodiscard]] double peak_total_rate() const override;
  [[nodiscard]] std::unique_ptr<WorkloadModel> clone() const override {
    return std::make_unique<PoissonDiurnalModel>(*this);
  }
  [[nodiscard]] std::string name() const override { return "poisson-diurnal"; }

 private:
  /// Recomputes tz_factor_ for time t unless already valid for t.
  void refresh_factors(SimTime t) const;

  std::vector<double> region_share_;    ///< normalised traffic weights
  std::vector<double> base_rate_;       ///< global rate x share, per node
  std::vector<std::uint32_t> tz_group_; ///< node -> index into tz_offsets_
  std::vector<double> tz_offsets_;      ///< distinct tz offsets, first-seen order
  mutable std::vector<double> tz_factor_;  ///< diurnal factor per tz offset
  mutable SimTime factor_time_ = 0.0;
  mutable bool factor_valid_ = false;
  mutable SimTime total_time_ = 0.0;
  mutable double total_value_ = 0.0;
  mutable bool total_valid_ = false;
};

}  // namespace vnfm::edgesim
