#include "edgesim/events.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vnfm::edgesim {

EventSchedule& EventSchedule::add(const ScheduledEvent& event) {
  if (!(event.time_s >= 0.0))
    throw std::invalid_argument("event times must be non-negative");
  if (event.kind == EventKind::kCapacityScale &&
      (!std::isfinite(event.factor) || event.factor <= 0.0))
    throw std::invalid_argument("capacity scale factor must be positive and finite");
  const auto at = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const ScheduledEvent& a, const ScheduledEvent& b) { return a.time_s < b.time_s; });
  events_.insert(at, event);
  return *this;
}

EventSchedule& EventSchedule::fail_node(SimTime time_s, NodeId node) {
  return add({.time_s = time_s, .kind = EventKind::kNodeFailure, .node = node});
}

EventSchedule& EventSchedule::recover_node(SimTime time_s, NodeId node) {
  return add({.time_s = time_s, .kind = EventKind::kNodeRecovery, .node = node});
}

EventSchedule& EventSchedule::scale_capacity(SimTime time_s, NodeId node, double factor) {
  return add(
      {.time_s = time_s, .kind = EventKind::kCapacityScale, .node = node, .factor = factor});
}

EventSchedule& EventSchedule::fail_link(SimTime time_s, NodeId node) {
  return add({.time_s = time_s, .kind = EventKind::kLinkFailure, .node = node});
}

EventSchedule& EventSchedule::recover_link(SimTime time_s, NodeId node) {
  return add({.time_s = time_s, .kind = EventKind::kLinkRecovery, .node = node});
}

EventSchedule& EventSchedule::merge(const EventSchedule& other) {
  for (const ScheduledEvent& event : other.events_) add(event);
  return *this;
}

}  // namespace vnfm::edgesim
