#include "edgesim/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace vnfm::edgesim {

ClusterState::ClusterState(const Topology& topology, const VnfCatalog& vnfs,
                           const SfcCatalog& sfcs, ClusterOptions options,
                           std::unique_ptr<NetworkModel> network)
    : topology_(topology),
      vnfs_(vnfs),
      sfcs_(sfcs),
      network_(network ? std::move(network)
                       : std::make_unique<ConstantLatencyModel>(topology)),
      options_(options) {
  const std::size_t n = topology_.node_count();
  cpu_used_.assign(n, 0.0);
  mem_used_.assign(n, 0.0);
  wan_used_.assign(n, 0.0);
  failed_.assign(n, 0);
  capacity_scale_.assign(n, 1.0);
  by_node_type_.assign(n, std::vector<std::vector<InstanceId>>(vnfs_.size()));
  node_version_.assign(n, 0);
  dirty_flag_.assign(n, 0);
  instances_on_node_.assign(n, 0);
  node_type_stats_.assign(n * vnfs_.size(), NodeTypeStats{});
  for (const auto& node : topology_.nodes())
    total_effective_cpu_capacity_ += node.cpu_capacity;
}

void ClusterState::touch(std::size_t i) {
  node_version_[i] = ++version_;
  if (!dirty_flag_[i]) {
    dirty_flag_[i] = 1;
    dirty_list_.push_back(static_cast<std::uint32_t>(i));
  }
}

void ClusterState::clear_dirty() noexcept {
  for (const std::uint32_t i : dirty_list_) dirty_flag_[i] = 0;
  dirty_list_.clear();
}

const ClusterState::NodeTypeStats& ClusterState::stats(NodeId node,
                                                       VnfTypeId type) const {
  const std::size_t i = index(node);
  NodeTypeStats& s = node_type_stats_[i * vnfs_.size() + index(type)];
  if (s.version != node_version_[i]) {
    const VnfType& vnf = vnfs_.type(type);
    const double usable = vnf.capacity_rps * options_.max_utilization;
    s.residual_rps = 0.0;
    s.min_load_rps = std::numeric_limits<double>::infinity();
    const auto& bucket = by_node_type_[i][index(type)];
    s.count = bucket.size();
    for (const InstanceId id : bucket) {
      const VnfInstance& inst = instances_.at(id);
      s.residual_rps += std::max(0.0, usable - inst.load_rps);
      s.min_load_rps = std::min(s.min_load_rps, inst.load_rps);
    }
    s.version = node_version_[i];
  }
  return s;
}

double ClusterState::residual_capacity_cached_rps(NodeId node, VnfTypeId type) const {
  return stats(node, type).residual_rps;
}

bool ClusterState::can_serve_cached(NodeId node, VnfTypeId type, double rate) const {
  if (failed_.at(index(node))) return false;
  const VnfType& vnf = vnfs_.type(type);
  const double usable = vnf.capacity_rps * options_.max_utilization;
  if (rate > usable) return false;
  // Any instance fits iff the least-loaded one does.
  const NodeTypeStats& s = stats(node, type);
  if (s.count > 0 && s.min_load_rps + rate <= usable) return true;
  return can_deploy(node, type);
}

double ClusterState::estimated_proc_delay_cached_ms(NodeId node, VnfTypeId type,
                                                    double rate) const {
  if (failed_.at(index(node))) return std::numeric_limits<double>::infinity();
  const VnfType& vnf = vnfs_.type(type);
  const double usable = vnf.capacity_rps * options_.max_utilization;
  if (rate > usable) return std::numeric_limits<double>::infinity();
  // When any instance is feasible, the least-loaded feasible instance is the
  // globally least-loaded one, so the dense best_load equals min_load_rps.
  const NodeTypeStats& s = stats(node, type);
  if (s.count > 0 && s.min_load_rps + rate <= usable)
    return queue_delay_ms(vnf, s.min_load_rps + rate);
  if (can_deploy(node, type)) return queue_delay_ms(vnf, rate);
  return std::numeric_limits<double>::infinity();
}

void ClusterState::verify_aggregates() const {
  const auto close = [](double a, double b) {
    return std::abs(a - b) <= 1e-6 * std::max({1.0, std::abs(a), std::abs(b)});
  };
  const std::size_t n = topology_.node_count();
  std::vector<double> cpu(n, 0.0);
  std::vector<double> mem(n, 0.0);
  std::vector<std::size_t> count(n, 0);
  for (const auto& [id, inst] : instances_) {
    const VnfType& vnf = vnfs_.type(inst.type);
    cpu[index(inst.node)] += vnf.cpu_units;
    mem[index(inst.node)] += vnf.mem_gb;
    ++count[index(inst.node)];
  }
  double total_cpu = 0.0;
  double total_mem = 0.0;
  double total_capacity = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node{static_cast<std::uint32_t>(i)};
    if (!close(cpu[i], cpu_used_[i]) || !close(mem[i], mem_used_[i]))
      throw std::logic_error("per-node cpu/mem aggregates diverged");
    if (count[i] != instances_on_node_[i])
      throw std::logic_error("per-node instance count diverged");
    total_cpu += cpu[i];
    total_mem += mem[i];
    total_capacity += topology_.node(node).cpu_capacity * capacity_scale_[i];
  }
  if (!close(total_cpu, total_cpu_used_) || !close(total_mem, total_mem_used_) ||
      !close(total_capacity, total_effective_cpu_capacity_))
    throw std::logic_error("cluster-wide aggregates diverged");
}

double ClusterState::cpu_used(NodeId node) const { return cpu_used_.at(index(node)); }
double ClusterState::mem_used(NodeId node) const { return mem_used_.at(index(node)); }

double ClusterState::cpu_utilization(NodeId node) const {
  return cpu_used(node) / effective_cpu_capacity(node);
}

std::size_t ClusterState::instance_count(NodeId node, VnfTypeId type) const {
  return by_node_type_.at(index(node)).at(index(type)).size();
}

double ClusterState::residual_capacity_rps(NodeId node, VnfTypeId type) const {
  const VnfType& vnf = vnfs_.type(type);
  const double usable = vnf.capacity_rps * options_.max_utilization;
  double residual = 0.0;
  for (const InstanceId id : by_node_type_.at(index(node)).at(index(type))) {
    const VnfInstance& inst = instances_.at(id);
    residual += std::max(0.0, usable - inst.load_rps);
  }
  return residual;
}

bool ClusterState::can_deploy(NodeId node, VnfTypeId type) const {
  if (failed_.at(index(node))) return false;
  const VnfType& vnf = vnfs_.type(type);
  const EdgeNode& n = topology_.node(node);
  return cpu_used(node) + vnf.cpu_units <= effective_cpu_capacity(node) &&
         mem_used(node) + vnf.mem_gb <= n.mem_capacity_gb;
}

bool ClusterState::can_serve(NodeId node, VnfTypeId type, double rate) const {
  if (failed_.at(index(node))) return false;
  const VnfType& vnf = vnfs_.type(type);
  const double usable = vnf.capacity_rps * options_.max_utilization;
  if (rate > usable) return false;  // a single flow larger than one instance
  for (const InstanceId id : by_node_type_.at(index(node)).at(index(type))) {
    if (instances_.at(id).load_rps + rate <= usable) return true;
  }
  return can_deploy(node, type);
}

double ClusterState::queue_delay_ms(const VnfType& type, double load_after) const {
  // M/M/1-style load amplification of the base processing delay; admission
  // control keeps utilisation <= max_utilization so this stays finite.
  const double utilization = std::min(load_after / type.capacity_rps, 0.999);
  return type.proc_delay_ms / (1.0 - utilization);
}

double ClusterState::estimated_proc_delay_ms(NodeId node, VnfTypeId type,
                                             double rate) const {
  if (failed_.at(index(node))) return std::numeric_limits<double>::infinity();
  const VnfType& vnf = vnfs_.type(type);
  const double usable = vnf.capacity_rps * options_.max_utilization;
  if (rate > usable) return std::numeric_limits<double>::infinity();
  // Least-loaded-fit mirrors place_next's instance choice.
  double best_load = std::numeric_limits<double>::infinity();
  for (const InstanceId id : by_node_type_.at(index(node)).at(index(type))) {
    const VnfInstance& inst = instances_.at(id);
    if (inst.load_rps + rate <= usable) best_load = std::min(best_load, inst.load_rps);
  }
  if (best_load != std::numeric_limits<double>::infinity())
    return queue_delay_ms(vnf, best_load + rate);
  if (can_deploy(node, type)) return queue_delay_ms(vnf, rate);
  return std::numeric_limits<double>::infinity();
}

const VnfInstance& ClusterState::instance(InstanceId id) const {
  const auto it = instances_.find(id);
  if (it == instances_.end()) throw std::out_of_range("unknown instance id");
  return it->second;
}

void ClusterState::start_chain(const Request& request) {
  if (pending_) throw std::logic_error("a chain is already pending");
  const SfcTemplate& sfc = sfcs_.sfc(request.sfc);
  PendingChain pending;
  pending.request = request;
  pending.chain = sfc.chain;
  pending.sla_latency_ms = sfc.sla_latency_ms;
  pending.position = 0;
  pending_ = std::move(pending);
}

VnfTypeId ClusterState::pending_vnf_type() const {
  if (!pending_) throw std::logic_error("no pending chain");
  return pending_->chain.at(pending_->position);
}

std::size_t ClusterState::pending_position() const {
  if (!pending_) throw std::logic_error("no pending chain");
  return pending_->position;
}

double ClusterState::pending_latency_ms() const {
  if (!pending_) throw std::logic_error("no pending chain");
  return pending_->latency_ms;
}

const Request& ClusterState::pending_request() const {
  if (!pending_) throw std::logic_error("no pending chain");
  return pending_->request;
}

VnfInstance* ClusterState::find_least_loaded_with_headroom(NodeId node, VnfTypeId type,
                                                           double rate) {
  const VnfType& vnf = vnfs_.type(type);
  const double usable = vnf.capacity_rps * options_.max_utilization;
  VnfInstance* best = nullptr;
  for (const InstanceId id : by_node_type_.at(index(node)).at(index(type))) {
    VnfInstance& inst = instances_.at(id);
    if (inst.load_rps + rate > usable) continue;
    if (best == nullptr || inst.load_rps < best->load_rps) best = &inst;
  }
  return best;
}

InstanceId ClusterState::deploy_instance(NodeId node, VnfTypeId type) {
  const VnfType& vnf = vnfs_.type(type);
  if (!can_deploy(node, type)) throw std::runtime_error("deploy without capacity");
  const InstanceId id{next_instance_id_++};
  VnfInstance inst;
  inst.id = id;
  inst.node = node;
  inst.type = type;
  inst.deployed_at = now_;
  inst.last_active = now_;
  instances_.emplace(id, inst);
  by_node_type_[index(node)][index(type)].push_back(id);
  cpu_used_[index(node)] += vnf.cpu_units;
  mem_used_[index(node)] += vnf.mem_gb;
  total_cpu_used_ += vnf.cpu_units;
  total_mem_used_ += vnf.mem_gb;
  ++instances_on_node_[index(node)];
  touch(index(node));
  ++deployments_;
  return id;
}

void ClusterState::release_instance(InstanceId id) {
  const auto it = instances_.find(id);
  if (it == instances_.end()) throw std::out_of_range("releasing unknown instance");
  const VnfInstance& inst = it->second;
  if (inst.load_rps > 1e-9) throw std::logic_error("releasing a loaded instance");
  const VnfType& vnf = vnfs_.type(inst.type);
  cpu_used_[index(inst.node)] -= vnf.cpu_units;
  mem_used_[index(inst.node)] -= vnf.mem_gb;
  total_cpu_used_ -= vnf.cpu_units;
  total_mem_used_ -= vnf.mem_gb;
  --instances_on_node_[index(inst.node)];
  touch(index(inst.node));
  auto& bucket = by_node_type_[index(inst.node)][index(inst.type)];
  bucket.erase(std::remove(bucket.begin(), bucket.end(), id), bucket.end());
  instances_.erase(it);
  ++releases_;
}

PlaceStepResult ClusterState::place_next(NodeId node) {
  if (!pending_) throw std::logic_error("place_next without pending chain");
  if (pending_complete()) throw std::logic_error("pending chain already complete");
  PendingChain& pending = *pending_;
  const VnfTypeId type = pending.chain.at(pending.position);
  const double rate = pending.request.rate_rps;
  const VnfType& vnf = vnfs_.type(type);

  if (pending.position > 0 && !can_link(pending.nodes.back(), node, rate))
    throw std::runtime_error("place_next exceeds WAN bandwidth");

  PlaceStepResult result;
  VnfInstance* target = find_least_loaded_with_headroom(node, type, rate);
  if (target == nullptr) {
    if (!can_serve(node, type, rate)) throw std::runtime_error("place_next infeasible");
    const InstanceId id = deploy_instance(node, type);
    pending.new_instances.push_back(id);
    target = &instances_.at(id);
    result.deployed_new = true;
  }
  target->load_rps += rate;
  target->last_active = now_;
  touch(index(node));
  result.instance = target->id;
  result.proc_latency_ms = queue_delay_ms(vnf, target->load_rps);

  // Propagation: user -> first node, otherwise previous node -> this node.
  // Each hop is registered as a network flow (the constant model just
  // returns the topology latency without tracking anything).
  const FlowKey hop_key{pending.request.id,
                        static_cast<std::uint32_t>(pending.position)};
  if (pending.position == 0) {
    result.hop_latency_ms = network_->add_access_flow(
        hop_key, pending.request.source_region, node, rate);
  } else {
    result.hop_latency_ms =
        network_->add_flow(hop_key, pending.nodes.back(), node, rate);
    adjust_wan(pending.nodes.back(), node, rate);
  }
  pending.latency_ms += result.hop_latency_ms + result.proc_latency_ms;
  pending.instances.push_back(target->id);
  pending.nodes.push_back(node);
  ++pending.position;
  return result;
}

bool ClusterState::pending_complete() const {
  if (!pending_) throw std::logic_error("no pending chain");
  return pending_->position >= pending_->chain.size();
}

ChainPlacement ClusterState::commit_chain() {
  if (!pending_) throw std::logic_error("commit without pending chain");
  if (!pending_complete()) throw std::logic_error("commit of incomplete chain");
  PendingChain& pending = *pending_;

  ChainPlacement placement;
  placement.request = pending.request.id;
  placement.sfc = pending.request.sfc;
  placement.source_region = pending.request.source_region;
  placement.instances = pending.instances;
  placement.nodes = pending.nodes;
  placement.rate_rps = pending.request.rate_rps;
  placement.admitted_at = now_;
  placement.expires_at = now_ + pending.request.duration_s;
  // Return path: traffic egresses back to the user's region.
  placement.return_path_ms = network_->add_return_flow(
      {pending.request.id, static_cast<std::uint32_t>(pending.chain.size())},
      pending.nodes.back(), pending.request.source_region,
      pending.request.rate_rps);
  placement.latency_ms = pending.latency_ms + placement.return_path_ms;
  placement.sla_latency_ms = pending.sla_latency_ms;
  placement.new_deployments = static_cast<int>(pending.new_instances.size());

  chains_.emplace(placement.request, placement);
  pending_.reset();
  return placement;
}

void ClusterState::abort_chain() {
  if (!pending_) throw std::logic_error("abort without pending chain");
  PendingChain& pending = *pending_;
  // Undo loads in reverse order, then tear down instances we created.
  for (std::size_t i = pending.instances.size(); i-- > 0;) {
    VnfInstance& inst = instances_.at(pending.instances[i]);
    inst.load_rps -= pending.request.rate_rps;
    if (inst.load_rps < 1e-9) inst.load_rps = 0.0;
    touch(index(inst.node));
  }
  for (const InstanceId id : pending.new_instances) release_instance(id);
  release_wan_along(pending.nodes, pending.request.rate_rps);
  // Retire the partial chain's flows (reverse placement order; no return
  // flow exists before commit).
  for (std::size_t i = pending.instances.size(); i-- > 0;)
    network_->remove_flow({pending.request.id, static_cast<std::uint32_t>(i)});
  // Deployment/release counters should not count rolled-back placements.
  deployments_ -= pending.new_instances.size();
  releases_ -= pending.new_instances.size();
  pending_.reset();
#ifndef NDEBUG
  verify_aggregates();
#endif
}

void ClusterState::accumulate_instance_seconds(SimTime from, SimTime to) {
  if (to <= from) return;
  const double dt = to - from;
  for (const auto& [id, inst] : instances_) {
    instance_seconds_ += dt;
    running_cost_accumulator_ +=
        dt / kSecondsPerHour * vnfs_.type(inst.type).run_cost_per_hour;
  }
}

void ClusterState::remove_chain_flows(const ChainPlacement& chain) {
  // Access (0), inter-node hops (1..n-1), and the return hop (n).
  for (std::size_t i = chain.nodes.size() + 1; i-- > 0;)
    network_->remove_flow({chain.request, static_cast<std::uint32_t>(i)});
}

void ClusterState::expire_chain(const ChainPlacement& chain) {
  release_wan_along(chain.nodes, chain.rate_rps);
  remove_chain_flows(chain);
  for (const InstanceId id : chain.instances) {
    const auto it = instances_.find(id);
    if (it == instances_.end()) continue;  // released by a racing GC pass
    VnfInstance& inst = it->second;
    inst.load_rps -= chain.rate_rps;
    if (inst.load_rps < 1e-9) inst.load_rps = 0.0;
    inst.last_active = now_;
    touch(index(inst.node));
  }
  ++expired_chains_;
}

void ClusterState::collect_idle_instances() {
  std::vector<InstanceId> idle;
  for (const auto& [id, inst] : instances_) {
    if (!inst.pinned && inst.load_rps <= 1e-9 &&
        now_ - inst.last_active >= options_.idle_timeout_s)
      idle.push_back(id);
  }
  for (const InstanceId id : idle) release_instance(id);
}

InstanceId ClusterState::deploy_pinned(NodeId node, VnfTypeId type) {
  const InstanceId id = deploy_instance(node, type);
  instances_.at(id).pinned = true;
  return id;
}

bool ClusterState::has_headroom_instance(NodeId node, VnfTypeId type, double rate) const {
  const VnfType& vnf = vnfs_.type(type);
  const double usable = vnf.capacity_rps * options_.max_utilization;
  for (const InstanceId id : by_node_type_.at(index(node)).at(index(type))) {
    if (instances_.at(id).load_rps + rate <= usable) return true;
  }
  return false;
}

std::size_t ClusterState::fail_node(NodeId node) {
  if (failed_.at(index(node))) return 0;
  if (pending_) throw std::logic_error("fail_node with a pending chain");
  failed_[index(node)] = 1;
  touch(index(node));

  // Fail-stop: every live chain crossing the node dies with it. Collect and
  // sort by request id so the teardown order is reproducible.
  std::vector<RequestId> doomed;
  for (const auto& [id, chain] : chains_) {
    if (std::find(chain.nodes.begin(), chain.nodes.end(), node) != chain.nodes.end())
      doomed.push_back(id);
  }
  std::sort(doomed.begin(), doomed.end(),
            [](RequestId a, RequestId b) { return index(a) < index(b); });
  kill_chains(doomed);

  // All load on the node came from the chains just killed, so every one of
  // its instances (pinned included) is idle and tears down cleanly.
  std::vector<InstanceId> on_node;
  for (const auto& bucket : by_node_type_.at(index(node)))
    on_node.insert(on_node.end(), bucket.begin(), bucket.end());
  for (const InstanceId id : on_node) release_instance(id);
#ifndef NDEBUG
  verify_aggregates();
#endif
  return doomed.size();
}

std::size_t ClusterState::kill_chains(const std::vector<RequestId>& doomed) {
  for (const RequestId id : doomed) {
    const ChainPlacement chain = chains_.at(id);
    chains_.erase(id);
    release_wan_along(chain.nodes, chain.rate_rps);
    remove_chain_flows(chain);
    for (const InstanceId instance : chain.instances) {
      const auto it = instances_.find(instance);
      if (it == instances_.end()) continue;
      VnfInstance& inst = it->second;
      inst.load_rps -= chain.rate_rps;
      if (inst.load_rps < 1e-9) inst.load_rps = 0.0;
      inst.last_active = now_;
      touch(index(inst.node));
    }
  }
  chains_killed_ += doomed.size();
  return doomed.size();
}

std::size_t ClusterState::fail_rack_uplink(NodeId anchor) {
  if (pending_) throw std::logic_error("fail_rack_uplink with a pending chain");
  // The network model reroutes what it can and reports the flows left
  // without a path; their chains die fail-stop like fail_node victims.
  const std::vector<FlowKey> stranded = network_->fail_link_at(anchor);
  std::vector<RequestId> doomed;
  for (const FlowKey& key : stranded)
    if (chains_.contains(key.request)) doomed.push_back(key.request);
  std::sort(doomed.begin(), doomed.end(),
            [](RequestId a, RequestId b) { return index(a) < index(b); });
  doomed.erase(std::unique(doomed.begin(), doomed.end()), doomed.end());
  const std::size_t killed = kill_chains(doomed);
#ifndef NDEBUG
  verify_aggregates();
#endif
  return killed;
}

void ClusterState::recover_rack_uplinks(NodeId anchor) {
  network_->recover_link_at(anchor);
}

void ClusterState::recover_node(NodeId node) {
  failed_.at(index(node)) = 0;
  touch(index(node));
}

void ClusterState::set_capacity_scale(NodeId node, double factor) {
  if (!std::isfinite(factor) || factor <= 0.0)
    throw std::invalid_argument("capacity scale factor must be positive and finite");
  double& scale = capacity_scale_.at(index(node));
  total_effective_cpu_capacity_ += (factor - scale) * topology_.node(node).cpu_capacity;
  scale = factor;
  touch(index(node));
#ifndef NDEBUG
  verify_aggregates();
#endif
}

bool ClusterState::node_failed(NodeId node) const {
  return failed_.at(index(node)) != 0;
}

double ClusterState::capacity_scale(NodeId node) const {
  return capacity_scale_.at(index(node));
}

double ClusterState::effective_cpu_capacity(NodeId node) const {
  return topology_.node(node).cpu_capacity * capacity_scale_.at(index(node));
}

double ClusterState::wan_used_rps(NodeId node) const { return wan_used_.at(index(node)); }

bool ClusterState::can_link(NodeId a, NodeId b, double rate) const {
  if (a == b) return true;
  if (!network_->can_route(a, b)) return false;  // always routable if constant
  if (!std::isfinite(options_.wan_bandwidth_rps)) return true;
  return wan_used_.at(index(a)) + rate <= options_.wan_bandwidth_rps &&
         wan_used_.at(index(b)) + rate <= options_.wan_bandwidth_rps;
}

void ClusterState::adjust_wan(NodeId a, NodeId b, double rate) {
  if (a == b) return;
  wan_used_[index(a)] += rate;
  wan_used_[index(b)] += rate;
  if (wan_used_[index(a)] < 1e-9) wan_used_[index(a)] = 0.0;
  if (wan_used_[index(b)] < 1e-9) wan_used_[index(b)] = 0.0;
}

void ClusterState::release_wan_along(const std::vector<NodeId>& nodes, double rate) {
  for (std::size_t i = 1; i < nodes.size(); ++i) adjust_wan(nodes[i - 1], nodes[i], -rate);
}

double ClusterState::recompute_chain_latency(const ChainPlacement& chain) const {
  // Network hops use the model's stateless probes (identical to the topology
  // values under the constant model; a contention estimate under the flow
  // model), processing delays use current instance loads.
  double latency = network_->user_latency_ms(chain.source_region, chain.nodes.front());
  for (std::size_t i = 0; i < chain.instances.size(); ++i) {
    if (i > 0) latency += network_->hop_latency_ms(chain.nodes[i - 1], chain.nodes[i]);
    const VnfInstance& inst = instances_.at(chain.instances[i]);
    latency += queue_delay_ms(vnfs_.type(inst.type), inst.load_rps);
  }
  latency += network_->user_latency_ms(chain.source_region, chain.nodes.back());
  return latency;
}

ClusterState::MigrationResult ClusterState::migrate_chain_vnf(RequestId request,
                                                              std::size_t position,
                                                              NodeId new_node) {
  const auto chain_it = chains_.find(request);
  if (chain_it == chains_.end()) throw std::out_of_range("unknown chain for migration");
  ChainPlacement& chain = chain_it->second;
  if (position >= chain.instances.size())
    throw std::out_of_range("migration position out of range");
  const InstanceId old_id = chain.instances[position];
  VnfInstance& old_inst = instances_.at(old_id);
  if (old_inst.node == new_node)
    throw std::invalid_argument("migration target equals current node");
  const VnfTypeId type = old_inst.type;
  if (!can_serve(new_node, type, chain.rate_rps))
    throw std::runtime_error("migration target cannot serve the flow");
  // WAN feasibility of the re-routed hops (checked conservatively before
  // the old hops are released; can_link is a no-op for intra-node hops).
  const NodeId old_node = old_inst.node;
  if (position > 0 &&
      !can_link(chain.nodes[position - 1], new_node, chain.rate_rps))
    throw std::runtime_error("migration exceeds WAN bandwidth (ingress hop)");
  if (position + 1 < chain.nodes.size() &&
      !can_link(new_node, chain.nodes[position + 1], chain.rate_rps))
    throw std::runtime_error("migration exceeds WAN bandwidth (egress hop)");

  MigrationResult result;
  result.old_latency_ms = recompute_chain_latency(chain);

  // Re-route WAN usage around the moved position.
  if (position > 0) {
    adjust_wan(chain.nodes[position - 1], old_node, -chain.rate_rps);
    adjust_wan(chain.nodes[position - 1], new_node, chain.rate_rps);
  }
  if (position + 1 < chain.nodes.size()) {
    adjust_wan(old_node, chain.nodes[position + 1], -chain.rate_rps);
    adjust_wan(new_node, chain.nodes[position + 1], chain.rate_rps);
  }

  VnfInstance* target = find_least_loaded_with_headroom(new_node, type, chain.rate_rps);
  if (target == nullptr) {
    const InstanceId id = deploy_instance(new_node, type);
    target = &instances_.at(id);
    result.deployed_new = true;
  }
  target->load_rps += chain.rate_rps;
  target->last_active = now_;
  touch(index(new_node));
  result.new_instance = target->id;

  old_inst.load_rps -= chain.rate_rps;
  if (old_inst.load_rps < 1e-9) old_inst.load_rps = 0.0;
  old_inst.last_active = now_;
  touch(index(old_node));

  chain.instances[position] = target->id;
  chain.nodes[position] = new_node;

  // Re-register the network flows whose endpoints moved with the VNF: the
  // hop into `position`, the hop out of it, and the return hop if it was
  // the chain's last VNF (no-ops under the constant model).
  const auto hop_key = [&](std::size_t h) {
    return FlowKey{request, static_cast<std::uint32_t>(h)};
  };
  network_->remove_flow(hop_key(position));
  if (position == 0) {
    network_->add_access_flow(hop_key(0), chain.source_region, new_node,
                              chain.rate_rps);
  } else {
    network_->add_flow(hop_key(position), chain.nodes[position - 1], new_node,
                       chain.rate_rps);
  }
  if (position + 1 < chain.nodes.size()) {
    network_->remove_flow(hop_key(position + 1));
    network_->add_flow(hop_key(position + 1), new_node, chain.nodes[position + 1],
                       chain.rate_rps);
  } else {
    network_->remove_flow(hop_key(chain.nodes.size()));
    chain.return_path_ms = network_->add_return_flow(
        hop_key(chain.nodes.size()), new_node, chain.source_region, chain.rate_rps);
  }

  chain.latency_ms = recompute_chain_latency(chain);
  result.new_latency_ms = chain.latency_ms;
  ++migrations_;
  return result;
}

void ClusterState::advance_to(SimTime to) {
  if (to < now_) throw std::invalid_argument("advance_to into the past");
  if (pending_) throw std::logic_error("advance_to with a pending chain");
  while (true) {
    // Earliest expiry within (now_, to].
    const ChainPlacement* next_chain = nullptr;
    for (const auto& [id, chain] : chains_) {
      if (chain.expires_at > to) continue;
      if (next_chain == nullptr || chain.expires_at < next_chain->expires_at)
        next_chain = &chain;
    }
    if (next_chain == nullptr) break;
    const SimTime t = std::max(next_chain->expires_at, now_);
    accumulate_instance_seconds(now_, t);
    now_ = t;
    const RequestId finished = next_chain->request;
    ChainPlacement chain = chains_.at(finished);
    chains_.erase(finished);
    expire_chain(chain);
    collect_idle_instances();
  }
  accumulate_instance_seconds(now_, to);
  now_ = to;
  collect_idle_instances();
#ifndef NDEBUG
  verify_aggregates();
#endif
}

double ClusterState::drain_running_cost() {
  const double cost = running_cost_accumulator_;
  running_cost_accumulator_ = 0.0;
  return cost;
}

}  // namespace vnfm::edgesim
