// Deterministic infrastructure fault scripts: timed node failures,
// recoveries, and CPU-capacity changes.
//
// An EventSchedule is a plain value (it copies with core::EnvOptions across
// actor and evaluator threads) holding a time-ordered list of events.
// core::VnfEnv applies every event whose time has come between request
// arrivals, so managers face mid-episode faults at exactly the same
// simulated instants on every run — results stay bit-identical for any
// thread count.
#pragma once

#include <cstddef>
#include <vector>

#include "edgesim/types.hpp"

namespace vnfm::edgesim {

enum class EventKind {
  kNodeFailure,    ///< fail-stop: live chains crossing the node are killed,
                   ///< its instances released, and placements masked off
  kNodeRecovery,   ///< the node accepts deployments again (starts empty)
  kCapacityScale,  ///< the node's CPU capacity becomes `factor` x nominal
  kLinkFailure,    ///< rack-correlated: one uplink pair of `node`'s rack ToR
                   ///< fails; crossing chains reroute or die fail-stop
                   ///< (no-op under the constant network model)
  kLinkRecovery,   ///< all failed uplinks of `node`'s rack come back
};

struct ScheduledEvent {
  SimTime time_s = 0.0;
  EventKind kind = EventKind::kNodeFailure;
  NodeId node{};
  double factor = 1.0;  ///< CPU-capacity scale; only read by kCapacityScale
};

/// Time-ordered fault script. add() keeps events sorted by time with
/// insertion-stable ordering for ties, so composing schedules is
/// deterministic regardless of how they were assembled.
class EventSchedule {
 public:
  /// Validates and inserts; throws std::invalid_argument on a negative time
  /// or a non-positive capacity factor.
  EventSchedule& add(const ScheduledEvent& event);

  EventSchedule& fail_node(SimTime time_s, NodeId node);
  EventSchedule& recover_node(SimTime time_s, NodeId node);
  EventSchedule& scale_capacity(SimTime time_s, NodeId node, double factor);
  EventSchedule& fail_link(SimTime time_s, NodeId node);
  EventSchedule& recover_link(SimTime time_s, NodeId node);

  /// Appends every event of `other` (keeping time order).
  EventSchedule& merge(const EventSchedule& other);

  [[nodiscard]] const std::vector<ScheduledEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

 private:
  std::vector<ScheduledEvent> events_;
};

}  // namespace vnfm::edgesim
