#include "edgesim/topology.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace vnfm::edgesim {

double LatencyModel::latency_ms(const GeoPoint& a, const GeoPoint& b) const noexcept {
  const double km = haversine_km(a, b);
  if (km < 1.0) return intra_node_ms;
  return km * per_km_ms * route_inflation + hop_overhead_ms;
}

Topology::Topology(std::vector<EdgeNode> nodes, LatencyModel model)
    : nodes_(std::move(nodes)), model_(model) {
  if (nodes_.empty()) throw std::invalid_argument("topology needs at least one node");
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (index(nodes_[i].id) != i)
      throw std::invalid_argument("topology node ids must be dense and ordered");
  }
  const std::size_t n = nodes_.size();
  if (n <= kDenseLatencyMatrixMaxNodes) {
    latency_matrix_.resize(n * n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        latency_matrix_[i * n + j] =
            i == j ? model_.intra_node_ms
                   : model_.latency_ms(nodes_[i].location, nodes_[j].location);
      }
    }
  }
}

const EdgeNode& Topology::node(NodeId id) const { return nodes_.at(index(id)); }

double Topology::latency_ms(NodeId a, NodeId b) const {
  const std::size_t n = nodes_.size();
  if (!latency_matrix_.empty()) return latency_matrix_.at(index(a) * n + index(b));
  // Large topology: compute on demand, mirroring the matrix construction so
  // the value is bit-identical to what the dense matrix would hold.
  const EdgeNode& na = nodes_.at(index(a));
  const EdgeNode& nb = nodes_.at(index(b));
  return a == b ? model_.intra_node_ms : model_.latency_ms(na.location, nb.location);
}

double Topology::user_latency_ms(NodeId region, NodeId target) const {
  // Users access their metro's edge via a short last-mile hop; reaching a
  // remote node additionally crosses the inter-node WAN distance.
  constexpr double kLastMileMs = 2.0;
  if (region == target) return kLastMileMs;
  return kLastMileMs + latency_ms(region, target);
}

double Topology::total_traffic_weight() const noexcept {
  double total = 0.0;
  for (const auto& node : nodes_) total += node.traffic_weight;
  return total;
}

namespace {

struct Metro {
  const char* name;
  double lat;
  double lon;
  double tz;
  double weight;
};

// Sixteen metros spread over time zones so diurnal peaks are staggered.
constexpr std::array<Metro, 16> kMetros{{
    {"new_york", 40.71, -74.01, -5.0, 1.4},
    {"london", 51.51, -0.13, 0.0, 1.3},
    {"tokyo", 35.68, 139.69, 9.0, 1.4},
    {"frankfurt", 50.11, 8.68, 1.0, 1.1},
    {"singapore", 1.35, 103.82, 8.0, 1.2},
    {"san_francisco", 37.77, -122.42, -8.0, 1.2},
    {"sao_paulo", -23.55, -46.63, -3.0, 1.0},
    {"sydney", -33.87, 151.21, 10.0, 0.9},
    {"mumbai", 19.08, 72.88, 5.5, 1.1},
    {"chicago", 41.88, -87.63, -6.0, 1.0},
    {"paris", 48.86, 2.35, 1.0, 1.0},
    {"seoul", 37.57, 126.98, 9.0, 1.1},
    {"toronto", 43.65, -79.38, -5.0, 0.8},
    {"dubai", 25.20, 55.27, 4.0, 0.8},
    {"johannesburg", -26.20, 28.05, 2.0, 0.7},
    {"amsterdam", 52.37, 4.90, 1.0, 0.9},
}};

}  // namespace

std::size_t world_metro_count() noexcept { return kMetros.size(); }

Topology make_world_topology(const TopologyOptions& options) {
  if (options.node_count == 0)
    throw std::invalid_argument("node_count must be at least 1");
  Rng rng(options.seed);
  std::vector<EdgeNode> nodes;
  nodes.reserve(options.node_count);
  for (std::size_t i = 0; i < options.node_count; ++i) {
    const Metro& metro = kMetros[i % kMetros.size()];
    EdgeNode node;
    node.id = NodeId{static_cast<std::uint32_t>(i)};
    node.name = metro.name;
    node.location = GeoPoint{metro.lat, metro.lon};
    node.tz_offset_hours = metro.tz;
    node.traffic_weight = metro.weight;
    if (i >= kMetros.size()) {
      // Synthetic site near the base metro: a suburb/secondary facility a few
      // degrees away. Drawn after the base metros, so the first 16 nodes stay
      // bit-identical to the small topologies regardless of node_count.
      constexpr double kGeoJitterDeg = 3.0;
      node.name += "_" + std::to_string(i);
      node.location.lat_deg += kGeoJitterDeg * (2.0 * rng.uniform() - 1.0);
      node.location.lon_deg += kGeoJitterDeg * (2.0 * rng.uniform() - 1.0);
    }
    const double jitter = 1.0 + options.capacity_jitter * (2.0 * rng.uniform() - 1.0);
    node.cpu_capacity = options.cpu_capacity_mean * jitter;
    node.mem_capacity_gb = 2.0 * node.cpu_capacity;  // 2 GB per vCPU
    nodes.push_back(std::move(node));
  }
  return Topology(std::move(nodes), LatencyModel{});
}

}  // namespace vnfm::edgesim
