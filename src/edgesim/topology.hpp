// Geo-distributed edge topology: nodes at real metro-area coordinates with
// heterogeneous capacities and a distance-derived latency matrix.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "edgesim/types.hpp"

namespace vnfm::edgesim {

/// One edge cluster co-located with a user population (metro area).
struct EdgeNode {
  NodeId id{};
  std::string name;
  GeoPoint location;
  double cpu_capacity = 32.0;      ///< total vCPUs
  double mem_capacity_gb = 64.0;   ///< total memory
  double tz_offset_hours = 0.0;    ///< local-time phase for diurnal traffic
  double traffic_weight = 1.0;     ///< share of global arrivals from here
};

/// Parameters of the distance-to-latency conversion.
struct LatencyModel {
  double per_km_ms = 0.005;       ///< one-way fibre propagation ≈ 5 µs/km
  double route_inflation = 1.3;   ///< fibre path vs great circle
  double hop_overhead_ms = 0.5;   ///< switching/forwarding per network hop
  double intra_node_ms = 0.05;    ///< hop between instances on one node

  /// One-way latency between two geographic points.
  [[nodiscard]] double latency_ms(const GeoPoint& a, const GeoPoint& b) const noexcept;
};

/// Immutable node set plus precomputed pairwise latencies.
class Topology {
 public:
  Topology(std::vector<EdgeNode> nodes, LatencyModel model);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] const EdgeNode& node(NodeId id) const;
  [[nodiscard]] std::span<const EdgeNode> nodes() const noexcept { return nodes_; }
  [[nodiscard]] const LatencyModel& latency_model() const noexcept { return model_; }

  /// One-way latency between nodes (0 on the diagonal except intra-node hop).
  [[nodiscard]] double latency_ms(NodeId a, NodeId b) const;
  /// Latency from a user in node `region`'s metro area to node `target`.
  [[nodiscard]] double user_latency_ms(NodeId region, NodeId target) const;

  /// Sum of traffic weights (for normalising arrival shares).
  [[nodiscard]] double total_traffic_weight() const noexcept;

 private:
  std::vector<EdgeNode> nodes_;
  LatencyModel model_;
  // Dense row-major node x node matrix, built only for small topologies;
  // empty above kDenseLatencyMatrixMaxNodes, where latency_ms computes the
  // (bit-identical) value directly from the geographic model on demand.
  std::vector<double> latency_matrix_;
};

/// Largest node count for which Topology precomputes the dense n^2 latency
/// matrix; beyond it entries are computed on demand (same values, no O(n^2)
/// memory).
inline constexpr std::size_t kDenseLatencyMatrixMaxNodes = 512;

/// Options for the built-in topology generator.
struct TopologyOptions {
  std::size_t node_count = 8;       ///< first N metros from the world list
  double cpu_capacity_mean = 32.0;
  double capacity_jitter = 0.25;    ///< ± relative heterogeneity
  std::uint64_t seed = 42;
};

/// Builds a topology over a fixed list of world metro areas, with capacities
/// jittered around the mean for heterogeneity. Node counts beyond the metro
/// list synthesise additional sites around the base metros (jittered
/// coordinates, suffixed names); the first world_metro_count() nodes are
/// bit-identical regardless of total node_count.
[[nodiscard]] Topology make_world_topology(const TopologyOptions& options);

/// Number of metros available to make_world_topology.
[[nodiscard]] std::size_t world_metro_count() noexcept;

}  // namespace vnfm::edgesim
