#include "edgesim/workload.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace vnfm::edgesim {

PoissonArrivalModel::PoissonArrivalModel(const Topology& topology, const SfcCatalog& sfcs,
                                         WorkloadOptions options)
    : topology_(topology), sfcs_(sfcs), options_(options), rng_(options.seed) {
  if (options_.global_arrival_rate <= 0.0)
    throw std::invalid_argument("arrival rate must be positive");
  if (options_.diurnal_amplitude < 0.0 || options_.diurnal_amplitude > 1.0)
    throw std::invalid_argument("diurnal amplitude must be in [0, 1]");
  // Request mix: inversely weight very long chains slightly so the mix is
  // dominated by the interactive services (web/voip/gaming).
  sfc_weights_.reserve(sfcs_.size());
  for (const auto& sfc : sfcs_.all())
    sfc_weights_.push_back(1.0 / std::sqrt(static_cast<double>(sfc.chain.size())));
}

double PoissonArrivalModel::total_rate(SimTime t) const {
  double total = 0.0;
  for (std::size_t i = 0; i < topology_.node_count(); ++i)
    total += region_rate(NodeId{static_cast<std::uint32_t>(i)}, t);
  return total;
}

Request PoissonArrivalModel::next(SimTime now) {
  // Poisson thinning: candidate arrivals at the envelope rate, accepted with
  // probability total_rate(t)/envelope; region then sampled by its share of
  // the instantaneous rate.
  const double envelope = peak_total_rate();
  SimTime t = now;
  for (;;) {
    t += rng_.exponential(envelope);
    const double rate = total_rate(t);
    if (rng_.uniform() * envelope <= rate) {
      // Sample region proportional to instantaneous regional rates.
      double target = rng_.uniform() * rate;
      NodeId region{0};
      for (std::size_t i = 0; i < topology_.node_count(); ++i) {
        const NodeId candidate{static_cast<std::uint32_t>(i)};
        target -= region_rate(candidate, t);
        region = candidate;
        if (target < 0.0) break;
      }
      const auto sfc_index = rng_.weighted_index(sfc_weights_);
      const SfcTemplate& sfc = sfcs_.sfc(SfcId{static_cast<std::uint32_t>(sfc_index)});

      Request request;
      request.id = RequestId{next_request_id_++};
      request.arrival_time = t;
      request.source_region = region;
      request.sfc = sfc.id;
      const double jitter =
          1.0 + options_.rate_jitter * (2.0 * rng_.uniform() - 1.0);
      request.rate_rps = std::max(0.1, sfc.mean_rate_rps * jitter);
      request.duration_s = rng_.exponential(1.0 / sfc.mean_duration_s);
      return request;
    }
  }
}

PoissonDiurnalModel::PoissonDiurnalModel(const Topology& topology, const SfcCatalog& sfcs,
                                         WorkloadOptions options)
    : PoissonArrivalModel(topology, sfcs, options) {
  const double total_weight = topology.total_traffic_weight();
  region_share_.reserve(topology.node_count());
  base_rate_.reserve(topology.node_count());
  tz_group_.reserve(topology.node_count());
  for (const auto& node : topology.nodes()) {
    region_share_.push_back(node.traffic_weight / total_weight);
    base_rate_.push_back(this->options().global_arrival_rate * region_share_.back());
    // Synthetic large-scale nodes inherit their anchor metro's tz offset, so
    // the distinct-offset list stays metro-sized even at 10k nodes.
    std::size_t group = tz_offsets_.size();
    for (std::size_t g = 0; g < tz_offsets_.size(); ++g)
      if (tz_offsets_[g] == node.tz_offset_hours) {
        group = g;
        break;
      }
    if (group == tz_offsets_.size()) tz_offsets_.push_back(node.tz_offset_hours);
    tz_group_.push_back(static_cast<std::uint32_t>(group));
  }
  tz_factor_.assign(tz_offsets_.size(), 1.0);
}

void PoissonDiurnalModel::refresh_factors(SimTime t) const {
  if (factor_valid_ && factor_time_ == t) return;
  for (std::size_t g = 0; g < tz_offsets_.size(); ++g) {
    // Local-time diurnal modulation: peak at peak_local_hour local time.
    // Same expressions as the pre-cache per-node formula, so every factor is
    // bit-equal to what the node-by-node evaluation produced.
    const double local_hour =
        std::fmod(t / kSecondsPerHour + tz_offsets_[g] + 48.0, 24.0);
    const double phase =
        2.0 * std::numbers::pi * (local_hour - options().peak_local_hour) / 24.0;
    tz_factor_[g] = 1.0 + options().diurnal_amplitude * std::cos(phase);
  }
  factor_time_ = t;
  factor_valid_ = true;
}

double PoissonDiurnalModel::region_rate(NodeId region, SimTime t) const {
  const double base = base_rate_[index(region)];
  if (!options().diurnal_enabled) return base;
  refresh_factors(t);
  return base * tz_factor_[tz_group_[index(region)]];
}

double PoissonDiurnalModel::total_rate(SimTime t) const {
  if (total_valid_ && total_time_ == t) return total_value_;
  double total = 0.0;
  if (!options().diurnal_enabled) {
    for (const double base : base_rate_) total += base;
  } else {
    refresh_factors(t);
    // Node summation order matches the generic per-node scan bit-for-bit;
    // each term is the rounded product the uncached region_rate returned.
    for (std::size_t i = 0; i < base_rate_.size(); ++i) {
      const double term = base_rate_[i] * tz_factor_[tz_group_[i]];
      total += term;
    }
  }
  total_time_ = t;
  total_value_ = total;
  total_valid_ = true;
  return total;
}

double PoissonDiurnalModel::peak_total_rate() const {
  return options().global_arrival_rate * (1.0 + options().diurnal_amplitude);
}

}  // namespace vnfm::edgesim
