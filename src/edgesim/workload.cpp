#include "edgesim/workload.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace vnfm::edgesim {

PoissonArrivalModel::PoissonArrivalModel(const Topology& topology, const SfcCatalog& sfcs,
                                         WorkloadOptions options)
    : topology_(topology), sfcs_(sfcs), options_(options), rng_(options.seed) {
  if (options_.global_arrival_rate <= 0.0)
    throw std::invalid_argument("arrival rate must be positive");
  if (options_.diurnal_amplitude < 0.0 || options_.diurnal_amplitude > 1.0)
    throw std::invalid_argument("diurnal amplitude must be in [0, 1]");
  // Request mix: inversely weight very long chains slightly so the mix is
  // dominated by the interactive services (web/voip/gaming).
  sfc_weights_.reserve(sfcs_.size());
  for (const auto& sfc : sfcs_.all())
    sfc_weights_.push_back(1.0 / std::sqrt(static_cast<double>(sfc.chain.size())));
}

double PoissonArrivalModel::total_rate(SimTime t) const {
  double total = 0.0;
  for (std::size_t i = 0; i < topology_.node_count(); ++i)
    total += region_rate(NodeId{static_cast<std::uint32_t>(i)}, t);
  return total;
}

Request PoissonArrivalModel::next(SimTime now) {
  // Poisson thinning: candidate arrivals at the envelope rate, accepted with
  // probability total_rate(t)/envelope; region then sampled by its share of
  // the instantaneous rate.
  const double envelope = peak_total_rate();
  SimTime t = now;
  for (;;) {
    t += rng_.exponential(envelope);
    const double rate = total_rate(t);
    if (rng_.uniform() * envelope <= rate) {
      // Sample region proportional to instantaneous regional rates.
      double target = rng_.uniform() * rate;
      NodeId region{0};
      for (std::size_t i = 0; i < topology_.node_count(); ++i) {
        const NodeId candidate{static_cast<std::uint32_t>(i)};
        target -= region_rate(candidate, t);
        region = candidate;
        if (target < 0.0) break;
      }
      const auto sfc_index = rng_.weighted_index(sfc_weights_);
      const SfcTemplate& sfc = sfcs_.sfc(SfcId{static_cast<std::uint32_t>(sfc_index)});

      Request request;
      request.id = RequestId{next_request_id_++};
      request.arrival_time = t;
      request.source_region = region;
      request.sfc = sfc.id;
      const double jitter =
          1.0 + options_.rate_jitter * (2.0 * rng_.uniform() - 1.0);
      request.rate_rps = std::max(0.1, sfc.mean_rate_rps * jitter);
      request.duration_s = rng_.exponential(1.0 / sfc.mean_duration_s);
      return request;
    }
  }
}

PoissonDiurnalModel::PoissonDiurnalModel(const Topology& topology, const SfcCatalog& sfcs,
                                         WorkloadOptions options)
    : PoissonArrivalModel(topology, sfcs, options) {
  const double total_weight = topology.total_traffic_weight();
  region_share_.reserve(topology.node_count());
  for (const auto& node : topology.nodes())
    region_share_.push_back(node.traffic_weight / total_weight);
}

double PoissonDiurnalModel::region_rate(NodeId region, SimTime t) const {
  const double base = options().global_arrival_rate * region_share_[index(region)];
  if (!options().diurnal_enabled) return base;
  // Local-time diurnal modulation: peak at peak_local_hour local time.
  const double tz = topology().node(region).tz_offset_hours;
  const double local_hour = std::fmod(t / kSecondsPerHour + tz + 48.0, 24.0);
  const double phase =
      2.0 * std::numbers::pi * (local_hour - options().peak_local_hour) / 24.0;
  return base * (1.0 + options().diurnal_amplitude * std::cos(phase));
}

double PoissonDiurnalModel::peak_total_rate() const {
  return options().global_arrival_rate * (1.0 + options().diurnal_amplitude);
}

}  // namespace vnfm::edgesim
