// Fundamental identifiers and geographic primitives for the edge simulator.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <functional>

namespace vnfm::edgesim {

/// Index of an edge node (cluster) in the topology.
enum class NodeId : std::uint32_t {};
/// Index of a VNF type in the catalog.
enum class VnfTypeId : std::uint32_t {};
/// Index of an SFC template in the catalog.
enum class SfcId : std::uint32_t {};
/// Monotonically increasing id of a chain request.
enum class RequestId : std::uint64_t {};
/// Monotonically increasing id of a running VNF instance.
enum class InstanceId : std::uint64_t {};

[[nodiscard]] constexpr std::uint32_t index(NodeId id) noexcept {
  return static_cast<std::uint32_t>(id);
}
[[nodiscard]] constexpr std::uint32_t index(VnfTypeId id) noexcept {
  return static_cast<std::uint32_t>(id);
}
[[nodiscard]] constexpr std::uint32_t index(SfcId id) noexcept {
  return static_cast<std::uint32_t>(id);
}
[[nodiscard]] constexpr std::uint64_t index(RequestId id) noexcept {
  return static_cast<std::uint64_t>(id);
}
[[nodiscard]] constexpr std::uint64_t index(InstanceId id) noexcept {
  return static_cast<std::uint64_t>(id);
}

/// WGS-84 latitude/longitude in degrees.
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  auto operator<=>(const GeoPoint&) const = default;
};

/// Great-circle distance in kilometres (haversine, mean Earth radius).
[[nodiscard]] double haversine_km(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Simulation time in seconds (double to allow sub-second epochs).
using SimTime = double;

constexpr SimTime kSecondsPerHour = 3600.0;
constexpr SimTime kSecondsPerDay = 86'400.0;

}  // namespace vnfm::edgesim

template <>
struct std::hash<vnfm::edgesim::InstanceId> {
  std::size_t operator()(vnfm::edgesim::InstanceId id) const noexcept {
    return std::hash<std::uint64_t>{}(static_cast<std::uint64_t>(id));
  }
};

template <>
struct std::hash<vnfm::edgesim::RequestId> {
  std::size_t operator()(vnfm::edgesim::RequestId id) const noexcept {
    return std::hash<std::uint64_t>{}(static_cast<std::uint64_t>(id));
  }
};
