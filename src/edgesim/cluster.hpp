// Mutable state of the geo-distributed edge system: running VNF instances,
// active chains, node resource accounting, and the instance lifecycle
// (deploy on demand, garbage-collect after an idle timeout).
//
// Chains are placed VNF-by-VNF through a pending-chain protocol:
//   start_chain(request) -> place_next(node) x chain-length -> commit_chain()
// or abort_chain() at any point, which rolls back partial placements. This
// mirrors the sequential MDP the DRL manager acts in.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "edgesim/network_model.hpp"
#include "edgesim/topology.hpp"
#include "edgesim/vnf.hpp"
#include "edgesim/workload.hpp"

namespace vnfm::edgesim {

/// One running VNF instance on a node.
struct VnfInstance {
  InstanceId id{};
  NodeId node{};
  VnfTypeId type{};
  double load_rps = 0.0;      ///< sum of assigned flow rates
  SimTime deployed_at = 0.0;
  SimTime last_active = 0.0;  ///< last time load became/was non-zero
  bool pinned = false;        ///< pinned instances are never idle-collected
};

/// A fully placed chain and its admission-time QoS snapshot.
struct ChainPlacement {
  RequestId request{};
  SfcId sfc{};
  NodeId source_region{};
  std::vector<InstanceId> instances;
  std::vector<NodeId> nodes;
  double rate_rps = 0.0;
  SimTime admitted_at = 0.0;
  SimTime expires_at = 0.0;
  double latency_ms = 0.0;
  double sla_latency_ms = 0.0;
  /// Return-path latency snapshotted at commit (already included in
  /// latency_ms); under the flow model it reflects contention at admission.
  double return_path_ms = 0.0;
  int new_deployments = 0;
  [[nodiscard]] bool sla_violated() const noexcept { return latency_ms > sla_latency_ms; }
};

struct ClusterOptions {
  double idle_timeout_s = 120.0;    ///< release instances idle this long
  double max_utilization = 0.95;    ///< admission headroom per instance
  /// Per-node WAN budget for inter-node chain hops (rate units). Each hop
  /// between distinct nodes consumes the flow's rate on both endpoints;
  /// user access hops are not constrained. Infinity disables the limit.
  double wan_bandwidth_rps = std::numeric_limits<double>::infinity();
};

/// Result of placing one VNF of the pending chain.
struct PlaceStepResult {
  InstanceId instance{};
  bool deployed_new = false;
  double hop_latency_ms = 0.0;   ///< propagation into this node
  double proc_latency_ms = 0.0;  ///< processing + queueing at the instance
};

class ClusterState {
 public:
  /// `network` defaults to the constant-latency model over `topology`
  /// (bit-identical legacy behaviour); pass a FlowNetworkModel to make hop
  /// latencies emerge from link contention. The cluster owns the model and
  /// registers every chain hop as a flow for its lifetime.
  ClusterState(const Topology& topology, const VnfCatalog& vnfs, const SfcCatalog& sfcs,
               ClusterOptions options, std::unique_ptr<NetworkModel> network = nullptr);

  // ---- Read-only queries -------------------------------------------------
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const NetworkModel& network() const noexcept { return *network_; }
  [[nodiscard]] const VnfCatalog& vnfs() const noexcept { return vnfs_; }
  [[nodiscard]] const SfcCatalog& sfcs() const noexcept { return sfcs_; }
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  [[nodiscard]] double cpu_used(NodeId node) const;
  [[nodiscard]] double mem_used(NodeId node) const;
  /// CPU used relative to the node's *effective* capacity (capacity scale
  /// applied); can exceed 1 transiently after a capacity-down event.
  [[nodiscard]] double cpu_utilization(NodeId node) const;
  [[nodiscard]] std::size_t instance_count(NodeId node, VnfTypeId type) const;
  [[nodiscard]] std::size_t total_instance_count() const noexcept { return instances_.size(); }
  [[nodiscard]] std::size_t active_chain_count() const noexcept { return chains_.size(); }

  /// Spare processing rate across existing instances of `type` on `node`.
  [[nodiscard]] double residual_capacity_rps(NodeId node, VnfTypeId type) const;
  /// True if node can host a *new* instance of `type` (CPU and memory).
  [[nodiscard]] bool can_deploy(NodeId node, VnfTypeId type) const;
  /// True if `rate` can be served on `node` (existing headroom or deploy).
  [[nodiscard]] bool can_serve(NodeId node, VnfTypeId type, double rate) const;
  /// Queueing+processing delay a flow of `rate` would see on `node` for
  /// `type`, assuming least-loaded-fit; infinity if it cannot be served.
  [[nodiscard]] double estimated_proc_delay_ms(NodeId node, VnfTypeId type,
                                               double rate) const;

  // ---- Incremental queries (O(1) amortised, bit-identical to the dense
  // scans above — backed by a version-stamped per-(node,type) stats cache
  // refreshed lazily when the node was mutated since the last read) ---------
  /// Same value as residual_capacity_rps, served from the stats cache.
  [[nodiscard]] double residual_capacity_cached_rps(NodeId node, VnfTypeId type) const;
  /// Same verdict as can_serve, decided from the cached minimum load.
  [[nodiscard]] bool can_serve_cached(NodeId node, VnfTypeId type, double rate) const;
  /// Same value as estimated_proc_delay_ms, decided from the cached minimum
  /// load (the least-loaded feasible instance is the globally least-loaded
  /// one whenever any instance is feasible).
  [[nodiscard]] double estimated_proc_delay_cached_ms(NodeId node, VnfTypeId type,
                                                      double rate) const;

  // ---- Dirty-node tracking + running aggregates ---------------------------
  /// Node indices mutated (load/instances/failed/capacity) since the last
  /// clear_dirty(), deduplicated, in first-touch order.
  [[nodiscard]] std::span<const std::uint32_t> dirty_nodes() const noexcept {
    return dirty_list_;
  }
  /// Resets the dirty-node list (consumers drain it each decision).
  void clear_dirty() noexcept;
  /// Monotonic per-node mutation stamp (bumps on every mutation of `node`).
  [[nodiscard]] std::uint64_t node_version(NodeId node) const {
    return node_version_.at(index(node));
  }
  /// Cluster-wide CPU units in use (maintained incrementally).
  [[nodiscard]] double total_cpu_used() const noexcept { return total_cpu_used_; }
  /// Cluster-wide memory in use (maintained incrementally).
  [[nodiscard]] double total_mem_used() const noexcept { return total_mem_used_; }
  /// Sum of effective (capacity-scaled) CPU capacity over all nodes.
  [[nodiscard]] double total_effective_cpu_capacity() const noexcept {
    return total_effective_cpu_capacity_;
  }
  /// Cluster-wide CPU utilisation from the running aggregates.
  [[nodiscard]] double total_cpu_utilization() const noexcept {
    return total_cpu_used_ / total_effective_cpu_capacity_;
  }
  /// Instances currently running on `node` (all types), maintained
  /// incrementally.
  [[nodiscard]] std::size_t instances_on_node(NodeId node) const {
    return instances_on_node_.at(index(node));
  }
  /// Full-recompute cross-check of every incrementally maintained aggregate
  /// against the instance table; throws std::logic_error on divergence.
  /// Debug builds run it automatically after state-changing events.
  void verify_aggregates() const;

  [[nodiscard]] const VnfInstance& instance(InstanceId id) const;

  // ---- Pending-chain protocol --------------------------------------------
  /// Begins placement of a request; only one chain may be pending at a time.
  void start_chain(const Request& request);
  [[nodiscard]] bool has_pending_chain() const noexcept { return pending_.has_value(); }
  /// VNF type the pending chain needs next.
  [[nodiscard]] VnfTypeId pending_vnf_type() const;
  /// Position (0-based) within the pending chain.
  [[nodiscard]] std::size_t pending_position() const;
  /// Latency accumulated by the partially placed pending chain.
  [[nodiscard]] double pending_latency_ms() const;
  [[nodiscard]] const Request& pending_request() const;

  /// Places the pending chain's next VNF on `node` (least-loaded instance
  /// with headroom, else deploys). Throws if infeasible — call can_serve.
  PlaceStepResult place_next(NodeId node);

  /// True once every VNF of the pending chain has been placed.
  [[nodiscard]] bool pending_complete() const;

  /// Finalises the pending chain: adds the return-path latency, registers
  /// expiry, and returns the placement record.
  ChainPlacement commit_chain();

  /// Rolls back all placements of the pending chain (loads and deployments).
  void abort_chain();

  /// Deploys a pinned instance outside the chain protocol (static
  /// provisioning baselines). Pinned instances are exempt from idle GC.
  InstanceId deploy_pinned(NodeId node, VnfTypeId type);
  /// Existing instance (any pinnedness) with headroom for `rate`?
  [[nodiscard]] bool has_headroom_instance(NodeId node, VnfTypeId type, double rate) const;

  // ---- Live-chain migration ------------------------------------------------
  /// Result of migrating one VNF of a live chain to another node.
  struct MigrationResult {
    InstanceId new_instance{};
    bool deployed_new = false;
    double old_latency_ms = 0.0;  ///< chain latency before the move
    double new_latency_ms = 0.0;  ///< chain latency after the move
  };

  /// Moves the VNF at `position` of live chain `request` onto `new_node`
  /// (least-loaded instance with headroom, else deploys), releases the old
  /// assignment, and re-snapshots the chain's latency/SLA state.
  /// Throws if the chain is unknown, position out of range, new_node equals
  /// the current node, or the target cannot serve the flow.
  MigrationResult migrate_chain_vnf(RequestId request, std::size_t position,
                                    NodeId new_node);

  /// End-to-end latency of a live chain recomputed from current instance
  /// loads (admission records keep their original snapshot).
  [[nodiscard]] double recompute_chain_latency(const ChainPlacement& chain) const;

  /// Live chains keyed by request (consolidation passes scan this).
  [[nodiscard]] const std::unordered_map<RequestId, ChainPlacement>& active_chains()
      const noexcept {
    return chains_;
  }

  [[nodiscard]] std::uint64_t total_migrations() const noexcept { return migrations_; }

  // ---- Infrastructure faults (edgesim/events.hpp scripts) ------------------
  /// Fail-stop of a node: every live chain crossing it is killed (loads and
  /// WAN usage released everywhere), all its instances — pinned included —
  /// are torn down, and can_serve/can_deploy report false until recovery.
  /// Returns the number of chains killed; no-op (0) if already failed.
  std::size_t fail_node(NodeId node);
  /// Clears the failed flag; the node starts empty but deployable again.
  void recover_node(NodeId node);
  /// Scales the node's effective CPU capacity (1.0 = nominal). Running
  /// instances are not evicted on a scale-down; the node just stops
  /// accepting deployments beyond the new ceiling.
  void set_capacity_scale(NodeId node, double factor);

  /// Rack-correlated link failure (edgesim/events.hpp kLinkFailure): fails
  /// one uplink pair of `anchor`'s rack switch in the network model. Chains
  /// whose flows lose their last path die fail-stop exactly like fail_node
  /// victims; chains with an alternate path are rerouted in place. Returns
  /// the number of chains killed (always 0 under the constant model).
  std::size_t fail_rack_uplink(NodeId anchor);
  /// Recovers every failed uplink of `anchor`'s rack (kLinkRecovery).
  void recover_rack_uplinks(NodeId anchor);

  [[nodiscard]] bool node_failed(NodeId node) const;
  [[nodiscard]] double capacity_scale(NodeId node) const;
  /// Nominal CPU capacity x the current capacity scale.
  [[nodiscard]] double effective_cpu_capacity(NodeId node) const;
  /// Live chains killed by fail_node so far.
  [[nodiscard]] std::uint64_t chains_killed() const noexcept { return chains_killed_; }

  // ---- WAN bandwidth -------------------------------------------------------
  /// Inter-node hop traffic currently charged against `node`'s WAN budget.
  [[nodiscard]] double wan_used_rps(NodeId node) const;
  /// True when a hop of `rate` can be routed between the two nodes (always
  /// true for intra-node hops or with an infinite budget).
  [[nodiscard]] bool can_link(NodeId a, NodeId b, double rate) const;

  // ---- Time --------------------------------------------------------------
  /// Advances simulation time: expires chains, releases idle instances, and
  /// accumulates instance-seconds (for running-cost integration).
  void advance_to(SimTime to);

  /// Instance-seconds × run-cost accumulated since the last call (then reset).
  [[nodiscard]] double drain_running_cost();
  /// Instance-seconds accumulated since the last drain (diagnostic).
  [[nodiscard]] double instance_seconds_accumulated() const noexcept {
    return instance_seconds_;
  }

  [[nodiscard]] std::uint64_t total_deployments() const noexcept { return deployments_; }
  [[nodiscard]] std::uint64_t total_releases() const noexcept { return releases_; }
  [[nodiscard]] std::uint64_t expired_chains() const noexcept { return expired_chains_; }

 private:
  struct PendingChain {
    Request request;
    std::vector<VnfTypeId> chain;
    double sla_latency_ms = 0.0;
    std::size_t position = 0;
    double latency_ms = 0.0;
    std::vector<InstanceId> instances;
    std::vector<NodeId> nodes;
    std::vector<InstanceId> new_instances;  // rollback set
  };

  /// Per-(node,type) bucket summary, recomputed lazily when the owning
  /// node's version moved past the stamp. `residual_rps` accumulates in
  /// bucket order (same order as the dense scan, so the sum is bit-equal);
  /// `min_load_rps` is +infinity for an empty bucket.
  struct NodeTypeStats {
    double residual_rps = 0.0;
    double min_load_rps = std::numeric_limits<double>::infinity();
    std::size_t count = 0;
    std::uint64_t version = std::numeric_limits<std::uint64_t>::max();
  };

  [[nodiscard]] VnfInstance* find_least_loaded_with_headroom(NodeId node, VnfTypeId type,
                                                             double rate);
  /// Marks node index `i` mutated: bumps its version and records it dirty.
  void touch(std::size_t i);
  /// Lazily refreshed stats for (node, type); O(bucket) only when stale.
  [[nodiscard]] const NodeTypeStats& stats(NodeId node, VnfTypeId type) const;
  /// Adds (rate > 0) or releases (rate < 0) WAN usage for hop a -> b.
  void adjust_wan(NodeId a, NodeId b, double rate);
  /// Releases the WAN usage of every inter-node hop along `nodes`.
  void release_wan_along(const std::vector<NodeId>& nodes, double rate);
  /// Tears down live chains (sorted request ids): releases loads, WAN usage,
  /// and network flows. Shared by fail_node and fail_rack_uplink.
  std::size_t kill_chains(const std::vector<RequestId>& doomed);
  /// Retires every network flow of a chain (access + hops + return).
  void remove_chain_flows(const ChainPlacement& chain);
  InstanceId deploy_instance(NodeId node, VnfTypeId type);
  void release_instance(InstanceId id);
  void accumulate_instance_seconds(SimTime from, SimTime to);
  void expire_chain(const ChainPlacement& chain);
  void collect_idle_instances();
  [[nodiscard]] double queue_delay_ms(const VnfType& type, double load_after) const;

  const Topology& topology_;
  const VnfCatalog& vnfs_;
  const SfcCatalog& sfcs_;
  std::unique_ptr<NetworkModel> network_;
  ClusterOptions options_;
  SimTime now_ = 0.0;

  std::vector<double> cpu_used_;
  std::vector<double> mem_used_;
  std::vector<double> wan_used_;
  std::vector<std::uint8_t> failed_;
  std::vector<double> capacity_scale_;
  std::unordered_map<InstanceId, VnfInstance> instances_;
  /// [node][type] -> instance ids (dense index for fast lookup).
  std::vector<std::vector<std::vector<InstanceId>>> by_node_type_;
  std::unordered_map<RequestId, ChainPlacement> chains_;
  std::optional<PendingChain> pending_;

  // Incremental-state machinery: per-node mutation stamps, the deduplicated
  // dirty list, running aggregates, and the lazy per-(node,type) cache.
  std::uint64_t version_ = 0;
  std::vector<std::uint64_t> node_version_;
  std::vector<std::uint32_t> dirty_list_;
  std::vector<std::uint8_t> dirty_flag_;
  double total_cpu_used_ = 0.0;
  double total_mem_used_ = 0.0;
  double total_effective_cpu_capacity_ = 0.0;
  std::vector<std::uint32_t> instances_on_node_;
  mutable std::vector<NodeTypeStats> node_type_stats_;  // [node * T + type]

  std::uint64_t next_instance_id_ = 0;
  std::uint64_t deployments_ = 0;
  std::uint64_t releases_ = 0;
  std::uint64_t expired_chains_ = 0;
  std::uint64_t migrations_ = 0;
  std::uint64_t chains_killed_ = 0;
  double instance_seconds_ = 0.0;
  double running_cost_accumulator_ = 0.0;
};

}  // namespace vnfm::edgesim
