// Explicit network fabric for the flow-level model: links with capacity and
// propagation delay, a node -> ToR -> aggregation vertex graph, and the two
// generated datacenter-style topologies (two-tier edge, fat-tree).
//
// The graph is pure structure: it knows vertices, directed links, and
// deterministic routes, but nothing about flows or bandwidth sharing — that
// lives in network_model.hpp. Every physical cable is represented as two
// directed links (one per direction), so contention is modelled per
// direction, as in real fabrics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "edgesim/types.hpp"

namespace vnfm::edgesim {

/// Index of a directed link in the NetworkGraph.
using LinkId = std::uint32_t;

/// One directed link of the fabric.
struct Link {
  LinkId id = 0;
  std::uint32_t src = 0;  ///< source vertex
  std::uint32_t dst = 0;  ///< destination vertex
  double capacity_gbps = 10.0;
  double delay_ms = 0.05;  ///< propagation across this link
};

/// Role of a graph vertex. Hosts are the edge nodes of the Topology (vertex
/// index == node index); switches follow after the hosts.
enum class VertexKind : std::uint8_t { kHost, kTor, kAgg, kCore };

/// Immutable switched fabric over the topology's nodes: vertices, directed
/// links, adjacency, and deterministic shortest-path routing with hash-based
/// ECMP tie-breaking. Link failure state is owned by the caller (the flow
/// model) and passed into route() as a mask, keeping the graph shareable.
class NetworkGraph {
 public:
  NetworkGraph(std::size_t host_count, std::vector<VertexKind> switch_kinds,
               std::vector<Link> links);

  [[nodiscard]] std::size_t host_count() const noexcept { return host_count_; }
  [[nodiscard]] std::size_t vertex_count() const noexcept { return kinds_.size(); }
  [[nodiscard]] std::size_t link_count() const noexcept { return links_.size(); }
  [[nodiscard]] const Link& link(LinkId id) const { return links_.at(id); }
  [[nodiscard]] const std::vector<Link>& links() const noexcept { return links_; }
  [[nodiscard]] VertexKind kind(std::uint32_t vertex) const { return kinds_.at(vertex); }

  /// Vertex of node `id` (hosts occupy vertices 0..host_count-1).
  [[nodiscard]] static std::uint32_t host_vertex(NodeId id) noexcept { return index(id); }

  /// First-hop switch (ToR / edge switch) of a host vertex.
  [[nodiscard]] std::uint32_t tor_of(std::uint32_t host) const;

  /// Uplink pairs (up LinkId, down LinkId) of the ToR/edge switch serving
  /// `host`'s rack, ascending by up-link id — the unit rack-correlated
  /// link-failure events act on.
  [[nodiscard]] const std::vector<std::pair<LinkId, LinkId>>& rack_uplinks(
      std::uint32_t host) const;

  /// Directed links leaving `vertex` (LinkIds, ascending).
  [[nodiscard]] const std::vector<LinkId>& out_links(std::uint32_t vertex) const {
    return adjacency_.at(vertex);
  }

  /// Shortest route (fewest links) from vertex `src` to vertex `dst`,
  /// skipping links whose id is set in `failed`. Equal-cost choices are
  /// broken by a deterministic hash of (src, dst, current vertex), so the
  /// route is a pure function of the endpoints and the failure mask (ECMP
  /// spreading without RNG state). Returns an empty vector when src == dst
  /// or when dst is unreachable — distinguish via reachable().
  [[nodiscard]] std::vector<LinkId> route(std::uint32_t src, std::uint32_t dst,
                                          const std::vector<std::uint8_t>& failed) const;

  /// True when `dst` is reachable from `src` under the failure mask.
  [[nodiscard]] bool reachable(std::uint32_t src, std::uint32_t dst,
                               const std::vector<std::uint8_t>& failed) const;

 private:
  std::size_t host_count_ = 0;
  std::vector<VertexKind> kinds_;                 ///< per vertex
  std::vector<Link> links_;                       ///< by LinkId
  std::vector<std::vector<LinkId>> adjacency_;    ///< out-links per vertex
  std::vector<std::uint32_t> tor_of_host_;        ///< first-hop switch per host
  /// Uplink (up, down) pairs per switch vertex index (empty for non-ToR).
  std::vector<std::vector<std::pair<LinkId, LinkId>>> uplinks_;
};

/// Capacities and delays of the generated fabrics plus the per-request
/// transfer size the flow model charges on every hop.
struct FlowNetworkOptions {
  std::size_t rack_size = 4;   ///< hosts per ToR (two-tier-edge)
  double link_gbps = 10.0;     ///< host access / edge-layer link capacity
  double core_gbps = 40.0;     ///< aggregation / core link capacity
  double link_delay_ms = 0.05; ///< propagation per directed link
  double payload_mbit = 8.0;   ///< per-request transfer size on every hop
};

/// Two-tier edge fabric: racks of `rack_size` hosts behind one ToR each,
/// every ToR single-homed to one core switch. A rack's ToR has exactly one
/// uplink pair, so failing it disconnects the rack (fail-stop of crossing
/// chains) — the simplest correlated-failure fabric.
[[nodiscard]] NetworkGraph make_two_tier_edge(std::size_t host_count,
                                              const FlowNetworkOptions& options);

/// Folded-Clos fat-tree: k pods of k/2 edge + k/2 aggregation switches, k/2
/// hosts per edge switch, (k/2)^2 core switches — k^3/4 host slots. `min_k`
/// is raised to the smallest even k >= max(min_k, 4) whose slot count covers
/// `host_count`. Edge switches have k/2 uplinks, so single uplink failures
/// reroute instead of disconnecting.
[[nodiscard]] NetworkGraph make_fat_tree(std::size_t host_count, std::size_t min_k,
                                         const FlowNetworkOptions& options);

/// Smallest even k >= max(min_k, 4) with k^3/4 >= host_count.
[[nodiscard]] std::size_t fat_tree_k_for(std::size_t host_count,
                                         std::size_t min_k) noexcept;

}  // namespace vnfm::edgesim
