// Operator objective: the weighted cost the VNF manager minimises.
//
// cost = w_deploy · deployments + running cost (instance-hours priced by the
//        VNF catalog) + w_latency · chain latency + w_sla · SLA violations
//        + w_reject · rejections − revenue of admitted chains
//
// The same model prices both the simulator metrics and the MDP reward, so
// the learning signal and the reported numbers can never diverge.
#pragma once

#include "edgesim/cluster.hpp"

namespace vnfm::edgesim {

struct CostModel {
  double w_deploy = 1.0;        ///< multiplier on per-type deploy cost
  double w_running = 1.0;       ///< multiplier on per-type running cost
  double w_latency_per_ms = 0.01;  ///< $ per ms of admitted-chain latency
  double w_sla_violation = 5.0;    ///< $ per admitted chain breaking its SLA
  double w_rejection = 8.0;        ///< $ per rejected chain
  double w_revenue = 1.0;          ///< multiplier on per-chain revenue
  double w_migration = 0.3;        ///< $ per live-chain VNF migration

  /// Admission-time cost of one placed chain (deployments are priced via
  /// the actual per-type deploy costs passed in; latency and SLA priced
  /// here). Negative values mean the chain was profitable.
  [[nodiscard]] double admission_cost(const ChainPlacement& placement,
                                      double deploy_cost_total, double revenue) const {
    double cost = w_deploy * deploy_cost_total;
    cost += w_latency_per_ms * placement.latency_ms;
    if (placement.sla_violated()) cost += w_sla_violation;
    cost -= w_revenue * revenue;
    return cost;
  }

  [[nodiscard]] double rejection_cost() const { return w_rejection; }

  /// Service-interruption penalty for chains killed mid-life by a node
  /// failure: each is at minimum a broken SLA, so it is priced like one.
  /// Without this, an outage would *improve* reported cost (admission
  /// revenue already credited, running cost stops accruing).
  [[nodiscard]] double interruption_cost(std::size_t killed_chains) const {
    return w_sla_violation * static_cast<double>(killed_chains);
  }

  [[nodiscard]] double running_cost(double raw_running_cost) const {
    return w_running * raw_running_cost;
  }

  [[nodiscard]] double migration_cost(std::size_t migrations) const {
    return w_migration * static_cast<double>(migrations);
  }
};

}  // namespace vnfm::edgesim
